(* Tests for the observability layer (verlib-obs): per-domain sharded
   histograms, multi-domain counter aggregation, trace-ring semantics,
   Chrome trace-event export (golden validation via the Jsonlite
   parser), and the driver's structured obs report. *)

module V = Verlib
module T = Flock.Telemetry
module J = Harness.Jsonlite

(* --- histogram bucketing ---------------------------------------------- *)

let test_bucket_of () =
  let cases =
    [ (min_int, 0); (-1, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3);
      (8, 4); (1023, 10); (1024, 11); (max_int, 62) ]
  in
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b (T.Hist.bucket_of v))
    cases;
  (* bucket bounds are inclusive upper bounds: every value maps to a
     bucket whose bound is >= the value *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "bound covers %d" v)
        true
        (T.Hist.bucket_bound (T.Hist.bucket_of v) >= v))
    [ 0; 1; 2; 3; 5; 100; 4096; 123_456_789 ]

let test_hist_single_domain () =
  let h = T.Hist.make "test_hist_single" in
  List.iter (T.Hist.observe h) [ 1; 2; 3; 100; 1000 ];
  let s = T.Hist.summary h in
  Alcotest.(check int) "count" 5 s.T.Hist.s_count;
  Alcotest.(check int) "sum" 1106 s.T.Hist.s_sum;
  Alcotest.(check int) "max" 1000 s.T.Hist.s_max;
  Alcotest.(check (float 0.001)) "mean" 221.2 (T.Hist.mean s);
  Alcotest.(check bool) "p50 covers median" true (s.T.Hist.s_p50 >= 3);
  Alcotest.(check bool) "p50 below max" true (s.T.Hist.s_p50 < 1000)

(* Multi-domain aggregation must be exact after joining: each of 4
   domains hammers its own shard with a distinct power of two, so every
   per-bucket sum, the count and the arithmetic sum are all checkable
   exactly. *)
let test_hist_multi_domain () =
  let h = T.Hist.make "test_hist_md" in
  let per_domain = 10_000 in
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            let v = 1 lsl i in
            for _ = 1 to per_domain do
              T.Hist.observe h v
            done))
  in
  List.iter Domain.join domains;
  let s = T.Hist.summary h in
  Alcotest.(check int) "count" (4 * per_domain) s.T.Hist.s_count;
  Alcotest.(check int) "sum" (per_domain * (1 + 2 + 4 + 8)) s.T.Hist.s_sum;
  Alcotest.(check int) "max" 8 s.T.Hist.s_max;
  let buckets = T.Hist.buckets h in
  (* values 1,2,4,8 have 1,2,3,4 significant bits *)
  List.iter
    (fun b -> Alcotest.(check int) (Printf.sprintf "bucket %d" b) per_domain buckets.(b))
    [ 1; 2; 3; 4 ];
  Alcotest.(check int) "bucket 0 empty" 0 buckets.(0);
  Alcotest.(check int) "bucket 5 empty" 0 buckets.(5);
  (* rank 20_000 of 40_000 falls in the bucket of value 2 (bound 3) *)
  Alcotest.(check int) "p50 bound" 3 s.T.Hist.s_p50

let test_counter_multi_domain () =
  let c = V.Stats.make "test_ctr_md" in
  let per_domain = 25_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              V.Stats.incr c
            done;
            V.Stats.add c 5))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "exact total" ((4 * per_domain) + 20) (V.Stats.total c)

let test_reset_all () =
  let h = T.Hist.make "test_hist_reset" in
  T.Hist.observe h 42;
  V.Obs.set_tracing true;
  V.Obs.emit V.Obs.ev_shortcut 1;
  V.Obs.set_tracing false;
  Alcotest.(check bool) "hist populated" true ((T.Hist.summary h).T.Hist.s_count > 0);
  let my_slot = Flock.Registry.my_id () in
  Alcotest.(check bool) "ring populated" true (T.events_of_slot my_slot <> []);
  V.Stats.reset_all ();
  Alcotest.(check int) "hist cleared" 0 (T.Hist.summary h).T.Hist.s_count;
  Alcotest.(check (list (triple int int int))) "ring cleared" []
    (T.events_of_slot my_slot);
  Alcotest.(check int) "counters cleared" 0 (V.Stats.total V.Stats.snapshots)

(* --- trace export ------------------------------------------------------ *)

(* Parse an exported trace and validate the Chrome trace-event contract:
   a traceEvents array, required fields per event, per-domain timestamps
   non-decreasing, and B/E spans balanced per domain.  Returns the
   number of non-metadata events. *)
let validate_trace path =
  let j =
    match J.parse_file path with
    | Ok j -> j
    | Error m -> Alcotest.failf "trace does not parse: %s" m
  in
  let events =
    match Option.bind (J.member "traceEvents" j) J.to_list with
    | Some l -> l
    | None -> Alcotest.fail "missing traceEvents array"
  in
  let last_ts = Hashtbl.create 8 in
  let depth = Hashtbl.create 8 in
  let checked = ref 0 in
  List.iter
    (fun ev ->
      let field name =
        match J.member name ev with
        | Some v -> v
        | None -> Alcotest.failf "event missing %S" name
      in
      let str name =
        match J.to_string (field name) with
        | Some s -> s
        | None -> Alcotest.failf "event field %S not a string" name
      in
      let num name =
        match J.to_number (field name) with
        | Some f -> f
        | None -> Alcotest.failf "event field %S not a number" name
      in
      let _ : string = str "name" in
      let ph = str "ph" in
      let _ : float = num "pid" in
      let tid = int_of_float (num "tid") in
      if ph <> "M" then begin
        incr checked;
        let ts = num "ts" in
        Alcotest.(check bool) "ts non-negative" true (ts >= 0.);
        (match Hashtbl.find_opt last_ts tid with
         | Some prev ->
             if ts < prev then
               Alcotest.failf "tid %d time went backwards: %f < %f" tid ts prev
         | None -> ());
        Hashtbl.replace last_ts tid ts;
        let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
        match ph with
        | "B" -> Hashtbl.replace depth tid (d + 1)
        | "E" ->
            if d <= 0 then Alcotest.failf "tid %d: E without matching B" tid;
            Hashtbl.replace depth tid (d - 1)
        | "i" -> ()
        | other -> Alcotest.failf "unexpected phase %S" other
      end)
    events;
  Hashtbl.iter
    (fun tid d ->
      if d <> 0 then Alcotest.failf "tid %d: %d unclosed span(s)" tid d)
    depth;
  !checked

(* Synthetic multi-domain streams, including the two pathologies the
   exporter must repair: a stray end (begin lost to ring wrap) and an
   unclosed begin (end never emitted). *)
let test_trace_golden () =
  V.Stats.reset_all ();
  V.Obs.set_tracing true;
  let emit_stream kind () =
    match kind with
    | `Clean ->
        V.Obs.emit V.Obs.ev_snap_begin 0;
        V.Obs.emit V.Obs.ev_shortcut 3;
        V.Obs.emit V.Obs.ev_snap_end 0;
        V.Obs.emit V.Obs.ev_truncate 7
    | `Stray_end ->
        V.Obs.emit V.Obs.ev_snap_end 0;
        V.Obs.emit V.Obs.ev_indirect_create 0
    | `Unclosed ->
        V.Obs.emit V.Obs.ev_snap_begin 0;
        V.Obs.emit V.Obs.ev_stamp_incr 9
  in
  emit_stream `Clean ();
  let domains =
    List.map (fun k -> Domain.spawn (emit_stream k)) [ `Clean; `Stray_end; `Unclosed ]
  in
  List.iter Domain.join domains;
  V.Obs.set_tracing false;
  let path = Filename.temp_file "verlib_golden" ".json" in
  let streams = V.Obs.export_trace path in
  Alcotest.(check bool) "has streams" true (streams >= 2);
  let n = validate_trace path in
  Alcotest.(check bool) "has events" true (n >= 8);
  Sys.remove path

(* A real traced workload end to end: snapshots, updates, shortcuts. *)
let test_trace_real_run () =
  let spec =
    {
      (Harness.Driver.default_spec (module Dstruct.Btree)) with
      Harness.Driver.n = 300;
      duration = 0.05;
      groups =
        [
          {
            Harness.Driver.g_count = 2;
            g_update_percent = 50;
            g_query = Workload.Opgen.Multifinds 4;
          };
        ];
    }
  in
  V.Obs.set_tracing true;
  let (_ : Harness.Driver.result) = Harness.Driver.run spec in
  V.Obs.set_tracing false;
  let path = Filename.temp_file "verlib_trace_run" ".json" in
  let (_ : int) = V.Obs.export_trace path in
  let n = validate_trace path in
  Alcotest.(check bool) "traced a real run" true (n > 0);
  Sys.remove path

(* --- driver obs report / stats JSON ------------------------------------ *)

let smoke_spec () =
  {
    (Harness.Driver.default_spec (module Dstruct.Btree)) with
    Harness.Driver.n = 300;
    duration = 0.05;
    lat_sample = 4;
    groups =
      [
        {
          Harness.Driver.g_count = 2;
          g_update_percent = 50;
          g_query = Workload.Opgen.Finds;
        };
      ];
    census = true;
  }

let require_stats_shape j =
  let counters =
    match J.member "counters" j with
    | Some (J.Obj kvs) -> kvs
    | _ -> Alcotest.fail "missing counters object"
  in
  Alcotest.(check bool) "has snapshots counter" true
    (List.mem_assoc "snapshots" counters);
  let hists =
    match J.member "histograms" j with
    | Some (J.Obj kvs) -> kvs
    | _ -> Alcotest.fail "missing histograms object"
  in
  (* per-op-kind latency histograms with p50/p99 present *)
  List.iter
    (fun name ->
      match List.assoc_opt name hists with
      | None -> Alcotest.failf "missing histogram %s" name
      | Some h ->
          List.iter
            (fun k ->
              match Option.bind (J.member k h) J.to_number with
              | Some _ -> ()
              | None -> Alcotest.failf "%s missing numeric %s" name k)
            [ "count"; "p50"; "p99"; "max"; "p50_us"; "p99_us" ])
    [
      "lat_find_cycles"; "lat_insert_cycles"; "lat_delete_cycles";
      "lat_range_cycles"; "lat_multifind_cycles";
    ];
  (* the epoch/stamp gauges registered at module init *)
  let gauges =
    match J.member "gauges" j with
    | Some (J.Obj kvs) -> kvs
    | _ -> Alcotest.fail "missing gauges object"
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " gauge present") true
        (List.mem_assoc name gauges))
    [ "epoch_pending"; "epoch_lag"; "stamp_lag" ]

(* `make obs-smoke` runs verlib_run with --census, so the exported stats
   must carry a census block — and the run being quiescent at capture,
   the audit must be clean. *)
let require_census_shape j =
  let census =
    match J.member "census" j with
    | Some c -> c
    | None -> Alcotest.fail "stats JSON missing census block"
  in
  List.iter
    (fun k ->
      match Option.bind (J.member k census) J.to_number with
      | Some _ -> ()
      | None -> Alcotest.failf "census missing numeric %s" k)
    [
      "pointers"; "versions"; "live_versions"; "reclaimable";
      "indirect_links"; "shortcut_ratio"; "chain_p99"; "chain_max";
      "violations";
    ];
  (match Option.bind (J.member "violations" census) J.to_number with
   | Some v -> Alcotest.(check (float 0.)) "census violations" 0. v
   | None -> ());
  (match J.member "census_series" j with
   | Some (J.Arr _) -> ()
   | _ -> Alcotest.fail "missing census_series array");
  match Option.bind (J.member "space" j) (J.member "bytes_per_entry") with
  | Some _ -> ()
  | None -> Alcotest.fail "missing space.bytes_per_entry"

let test_driver_report () =
  let r = Harness.Driver.run (smoke_spec ()) in
  let sampled =
    List.fold_left
      (fun acc (s : T.Hist.summary) ->
        let is_lat =
          match s.T.Hist.s_name with
          | "lat_find_cycles" | "lat_insert_cycles" | "lat_delete_cycles"
          | "lat_range_cycles" | "lat_multifind_cycles" ->
              true
          | _ -> false
        in
        if is_lat then acc + s.T.Hist.s_count else acc)
      0 r.Harness.Driver.obs.V.Obs.hists
  in
  Alcotest.(check bool) "sampled some latencies" true (sampled > 0);
  Alcotest.(check bool) "captured counters" true
    (List.mem_assoc "snapshots" r.Harness.Driver.obs.V.Obs.counters);
  (* quiescent census: present (smoke_spec sets census), non-empty, and
     with a clean audit *)
  (match r.Harness.Driver.census with
   | None -> Alcotest.fail "driver did not take the final census"
   | Some c ->
       Alcotest.(check bool) "census saw versions" true
         (c.V.Chainscan.c_versions > 0);
       Alcotest.(check int) "census violations" 0 c.V.Chainscan.c_violation_count);
  Alcotest.(check bool) "space measured" true
    (r.Harness.Driver.space_bytes_per_entry > 0.);
  (* the JSON rendering of the report round-trips through the parser *)
  let json = Harness.Obs_report.to_json ~extra:[ ("total_mops", "0.5") ]
      r.Harness.Driver.obs
  in
  (match J.parse_result json with
   | Error m -> Alcotest.failf "report JSON does not parse: %s" m
   | Ok j -> require_stats_shape j);
  (* the pretty renderer must not raise *)
  let devnull = open_out (if Sys.win32 then "NUL" else "/dev/null") in
  Harness.Obs_report.pretty_print ~out:devnull r.Harness.Driver.obs;
  close_out devnull

(* `make obs-smoke` runs verlib_run with --stats=json --trace and points
   these env vars at the artefacts; without them the test validates
   freshly generated equivalents, so `dune runtest` exercises the same
   export paths. *)
let test_smoke_artefacts () =
  (match Sys.getenv_opt "OBS_SMOKE_STATS" with
   | Some path -> (
       match J.parse_file path with
       | Error m -> Alcotest.failf "stats JSON (%s) does not parse: %s" path m
       | Ok j ->
           require_stats_shape j;
           require_census_shape j)
   | None ->
       let r = Harness.Driver.run (smoke_spec ()) in
       match J.parse_result (Harness.Obs_report.to_json r.Harness.Driver.obs) with
       | Error m -> Alcotest.failf "stats JSON does not parse: %s" m
       | Ok j -> require_stats_shape j);
  match Sys.getenv_opt "OBS_SMOKE_TRACE" with
  | Some path ->
      let n = validate_trace path in
      Alcotest.(check bool) "trace has events" true (n > 0)
  | None ->
      V.Obs.set_tracing true;
      V.Obs.emit V.Obs.ev_snap_begin 0;
      V.Obs.emit V.Obs.ev_snap_end 0;
      V.Obs.set_tracing false;
      let path = Filename.temp_file "verlib_smoke" ".json" in
      let (_ : int) = V.Obs.export_trace path in
      let n = validate_trace path in
      Alcotest.(check bool) "trace has events" true (n > 0);
      Sys.remove path

(* --- jsonlite ----------------------------------------------------------- *)

let test_jsonlite () =
  let ok s = match J.parse_result s with Ok v -> v | Error m -> Alcotest.fail m in
  (match ok {|{"a":[1,2.5,-3e2],"b":"x\n\"yA","c":{},"d":[],"e":null,"f":true}|} with
   | J.Obj kvs ->
       Alcotest.(check int) "keys" 6 (List.length kvs);
       (match List.assoc "a" kvs with
        | J.Arr [ J.Num a; J.Num b; J.Num c ] ->
            Alcotest.(check (float 0.0001)) "1" 1. a;
            Alcotest.(check (float 0.0001)) "2.5" 2.5 b;
            Alcotest.(check (float 0.0001)) "-300" (-300.) c
        | _ -> Alcotest.fail "array shape");
       (match List.assoc "b" kvs with
        | J.Str s -> Alcotest.(check string) "escapes" "x\n\"yA" s
        | _ -> Alcotest.fail "string shape")
   | _ -> Alcotest.fail "object shape");
  List.iter
    (fun bad ->
      match J.parse_result bad with
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "nul"; "{} x"; "\"unterminated" ]

(* --- request spans: exclusive phase accounting -------------------------- *)

module Span = V.Obs.Span

(* Spin for roughly [us] microseconds of attributable work. *)
let spin_us us =
  let t0 = V.Hwclock.now () in
  while V.Hwclock.to_us (V.Hwclock.now () - t0) < us do
    ()
  done

let test_span_exclusive () =
  V.reset ();
  let sp = Span.start ~cmd:"TEST" () in
  Span.in_phase Span.Parse (fun () -> spin_us 200.);
  (* nested: snapshot inside op must pause op — exclusive accounting *)
  Span.in_phase Span.Op (fun () ->
      spin_us 200.;
      Span.in_phase Span.Snapshot (fun () -> spin_us 400.);
      spin_us 200.);
  Span.finish sp;
  let t = Span.total_ticks sp in
  let sum =
    List.fold_left (fun acc p -> acc + Span.phase_ticks sp p) 0 Span.phases
  in
  Alcotest.(check bool) "phases sum within total" true (sum <= t);
  let us p = V.Hwclock.to_us (Span.phase_ticks sp p) in
  Alcotest.(check bool) "parse ~200us" true (us Span.Parse >= 150.);
  Alcotest.(check bool) "op ~400us exclusive" true
    (us Span.Op >= 300. && us Span.Op < 700.);
  Alcotest.(check bool) "snapshot ~400us" true (us Span.Snapshot >= 300.);
  Alcotest.(check bool) "outcome" true (sp.Span.sp_outcome = "ok");
  (* the finished span landed in the recent ring *)
  Alcotest.(check bool) "in recent ring" true
    (List.exists (fun s -> s.Span.sp_cmd = "TEST") (Span.recent ()))

let test_span_backdate_and_add () =
  V.reset ();
  let t0 = V.Hwclock.now () in
  spin_us 100.;
  let sp = Span.start ~begin_ticks:t0 ~cmd:"BD" () in
  Span.add Span.Queue (V.Hwclock.now () - t0);
  Span.finish sp;
  Alcotest.(check bool) "backdated begin" true (sp.Span.sp_begin = t0);
  Alcotest.(check bool) "queue credited" true
    (V.Hwclock.to_us (Span.phase_ticks sp Span.Queue) >= 80.);
  let sum =
    List.fold_left (fun acc p -> acc + Span.phase_ticks sp p) 0 Span.phases
  in
  Alcotest.(check bool) "credited ticks within total" true
    (sum <= Span.total_ticks sp)

(* A deterministic fault plan (a Pause at a named point) must surface as
   the span's dominant phase via the blocking observer the Obs module
   installs — the chaos-attribution contract. *)
let fp_test_stall = Fault.Point.make "test.obs.stall"

let test_span_stall_attribution () =
  V.reset ();
  Fault.arm (Fault.plan [ { Fault.r_point = "test.obs.stall";
                            r_trigger = Fault.Always;
                            r_action = Fault.Pause 0.03 } ]);
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let sp = Span.start ~cmd:"STALL" () in
  Span.in_phase Span.Op (fun () ->
      spin_us 100.;
      Fault.hit fp_test_stall);
  Span.finish sp;
  let stall = Span.phase_ticks sp Span.Stall in
  Alcotest.(check bool) "stall booked" true (V.Hwclock.to_us stall >= 10_000.);
  let dominant =
    List.fold_left
      (fun best p ->
        match best with
        | Some b when Span.phase_ticks sp b >= Span.phase_ticks sp p -> best
        | _ -> Some p)
      None Span.phases
  in
  Alcotest.(check bool) "stall dominates" true (dominant = Some Span.Stall);
  (* exclusive: the pause inside [op] was subtracted from it *)
  Alcotest.(check bool) "op excludes the stall" true
    (V.Hwclock.to_us (Span.phase_ticks sp Span.Op) < 10_000.)

let test_span_export_trace () =
  V.reset ();
  let sp = Span.start ~trace_id:77 ~cmd:"GET" () in
  Span.in_phase Span.Op (fun () -> spin_us 100.);
  Span.finish sp;
  let path = Filename.temp_file "span_trace" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ())
  @@ fun () ->
  let tracks = V.Obs.export_trace path in
  Alcotest.(check bool) "at least the span track" true (tracks >= 1);
  let ic = open_in path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match J.parse_result raw with
  | Error e -> Alcotest.fail ("trace not valid JSON: " ^ e)
  | Ok j ->
      let events =
        match J.member "traceEvents" j with
        | Some (J.Arr evs) -> evs
        | _ -> Alcotest.fail "no traceEvents"
      in
      let is_span_event ev =
        match (J.member "ph" ev, J.member "name" ev) with
        | Some (J.Str "X"), Some (J.Str "GET") -> true
        | _ -> false
      in
      Alcotest.(check bool) "span exported as X event" true
        (List.exists is_span_event events)

(* --- sampling profiler ---------------------------------------------------- *)

module Pr = Verlib.Obs.Profile
module Act = Flock.Telemetry.Activity

(* Publish a synthetic activity frame, sample it at a high rate, and
   check every export surface: accumulated stacks, per-slot activity,
   collapsed-stack file, JSON snapshot. *)
let test_profile_end_to_end () =
  Verlib.reset ();
  Pr.reset ();
  Pr.start ~hz:500 ();
  Alcotest.(check bool) "running" true (Pr.running ());
  Alcotest.(check int) "hz" 500 (Pr.hz ());
  let op = Act.intern "TESTOP" and site = Act.intern "test.site" in
  Act.set Act.dim_op op;
  Act.set Act.dim_lock_hold site;
  (* wait until the sampler has attributed at least one sample to us,
     bounded so a wedged sampler fails rather than hangs *)
  let deadline = Unix.gettimeofday () +. 5. in
  while Pr.samples_total () = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  Act.clear_my_slot ();
  Pr.stop ();
  Alcotest.(check bool) "stopped" false (Pr.running ());
  Alcotest.(check bool) "samples accumulated" true (Pr.samples_total () > 0);
  let has_frame s frame =
    let n = String.length frame in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = frame || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "stack carries the op and the held site" true
    (List.exists
       (fun (s, c) -> c > 0 && has_frame s "TESTOP" && has_frame s "test.site")
       (Pr.stacks ()));
  (* collapsed-stack export: one "stack count" line per entry *)
  let path = Filename.temp_file "profile" ".collapsed" in
  Pr.write_collapsed path;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check bool) "collapsed non-empty" true (List.length !lines > 0);
  List.iter
    (fun l ->
      match String.rindex_opt l ' ' with
      | None -> Alcotest.failf "collapsed line without count: %s" l
      | Some i -> (
          match
            int_of_string_opt (String.sub l (i + 1) (String.length l - i - 1))
          with
          | Some n when n > 0 -> ()
          | _ -> Alcotest.failf "bad collapsed count: %s" l))
    !lines;
  Sys.remove path;
  (* the JSON snapshot parses and carries every section *)
  let j =
    match Harness.Jsonlite.parse_result (Pr.json ()) with
    | Ok j -> j
    | Error e -> Alcotest.fail ("PROFILE json rejected: " ^ e)
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true
        (Harness.Jsonlite.member k j <> None))
    [ "clock_source"; "running"; "hz"; "samples"; "stacks"; "activity";
      "lock_sites"; "gc" ];
  Pr.reset ();
  Alcotest.(check int) "reset clears" 0 (Pr.samples_total ())

(* A contended instrumented lock surfaces at its site in the
   contention table, with wait time and the waits-on edge map.  A
   blocking-mode lock: lock-free mode can resolve contention by helping
   (no failed try_lock), which keeps the contended column legitimately
   at zero.  Contention is staged deterministically — a holder parks
   inside its critical section (sleeping, so this works on one CPU)
   while waiters bang on the lock — because a pure throughput race can
   legitimately serialise on a single-core box. *)
let test_lock_site_contention () =
  Verlib.reset ();
  Flock.Lock.reset_sites ();
  let lk = Flock.Lock.create ~mode:Flock.Lock.Blocking ~site:"unit.lock" () in
  let held = Atomic.make false in
  let release = Atomic.make false in
  let holder =
    Domain.spawn (fun () ->
        Flock.Lock.with_lock lk (fun () ->
            Atomic.set held true;
            while not (Atomic.get release) do
              Unix.sleepf 0.001
            done))
  in
  while not (Atomic.get held) do
    Unix.sleepf 0.001
  done;
  let waiter () =
    for _ = 1 to 100 do
      Flock.Lock.with_lock lk ignore
    done
  in
  let ws = List.init 2 (fun _ -> Domain.spawn waiter) in
  Unix.sleepf 0.03;
  Atomic.set release true;
  List.iter Domain.join ws;
  Domain.join holder;
  let sm =
    List.find_opt
      (fun s -> s.Flock.Lock.sm_site = "unit.lock")
      (Flock.Lock.site_summaries ())
  in
  match sm with
  | None -> Alcotest.fail "site unit.lock missing from summaries"
  | Some sm ->
      Alcotest.(check int) "every acquire counted" 201
        sm.Flock.Lock.sm_acquires;
      Alcotest.(check bool) "contention observed" true
        (sm.Flock.Lock.sm_contended > 0);
      Alcotest.(check bool) "wait cycles accumulated" true
        (sm.Flock.Lock.sm_wait_cycles > 0);
      Flock.Lock.reset_sites ();
      Alcotest.(check bool) "reset clears the table" true
        (List.for_all
           (fun s -> s.Flock.Lock.sm_acquires = 0)
           (Flock.Lock.site_summaries ()))

let () =
  Alcotest.run "obs"
    [
      ( "hist",
        [
          Alcotest.test_case "bucket_of" `Quick test_bucket_of;
          Alcotest.test_case "single-domain exact" `Quick test_hist_single_domain;
          Alcotest.test_case "multi-domain exact" `Quick test_hist_multi_domain;
        ] );
      ( "counters",
        [
          Alcotest.test_case "multi-domain exact" `Quick test_counter_multi_domain;
          Alcotest.test_case "reset_all clears telemetry" `Quick test_reset_all;
        ] );
      ( "trace",
        [
          Alcotest.test_case "golden export validates" `Quick test_trace_golden;
          Alcotest.test_case "real traced run validates" `Quick test_trace_real_run;
        ] );
      ( "jsonlite",
        [ Alcotest.test_case "parse and reject" `Quick test_jsonlite ] );
      ( "span",
        [
          Alcotest.test_case "exclusive accounting" `Quick test_span_exclusive;
          Alcotest.test_case "backdate and credited ticks" `Quick
            test_span_backdate_and_add;
          Alcotest.test_case "stall fault attribution" `Quick
            test_span_stall_attribution;
          Alcotest.test_case "span in chrome export" `Quick
            test_span_export_trace;
        ] );
      ( "smoke",
        [
          Alcotest.test_case "driver obs report" `Quick test_driver_report;
          Alcotest.test_case "exported artefacts" `Quick test_smoke_artefacts;
        ] );
      ( "profile",
        [
          Alcotest.test_case "sampler end to end" `Quick
            test_profile_end_to_end;
          Alcotest.test_case "lock-site contention" `Quick
            test_lock_site_contention;
        ] );
    ]
