(* Transaction-layer tests (lib/txn).

   Three families:

   - serializability: racing domains run random multi-key transactions;
     every committed outcome is recorded with its versionstamp, and an
     offline checker replays the log in versionstamp order against a
     sequential model.  Every recorded step must match what the model
     would have returned at that point, and the final model must equal
     the structure's contents.  If commits were not serializable in
     versionstamp order, some step (or the final state) disagrees.

   - exactly-once tokens: a token already committed replays the cached
     (versionstamp, steps) without re-executing, including under a
     concurrent same-token race.

   - abort-storm chaos: with the [abort-storm] fault plan armed, bank
     transfers either commit fully or abort without effect — pair sums
     stay exact under concurrent serialized reads, and every stripe
     latch is released when the storm ends. *)

module T = Txn
module F = Fault
module Splitmix = Workload.Splitmix

let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Sequential model: replay one op against a Hashtbl, producing the
   step a serial execution would observe.  Mirrors the insert-only PUT
   and read-your-writes overlay semantics of [Txn.exec]. *)

let sim_step model op =
  match op with
  | T.Get k ->
      (match Hashtbl.find_opt model k with
       | Some v -> T.S_int v
       | None -> T.S_nil)
  | T.Put (k, v) ->
      if Hashtbl.mem model k then T.S_exists
      else begin
        Hashtbl.replace model k v;
        T.S_ok
      end
  | T.Del k ->
      if Hashtbl.mem model k then begin
        Hashtbl.remove model k;
        T.S_int 1
      end
      else T.S_int 0
  | T.Mget ks ->
      T.S_vals (Array.to_list (Array.map (fun k -> Hashtbl.find_opt model k) ks))
  | T.Range (lo, hi) ->
      T.S_pairs
        (Hashtbl.fold
           (fun k v acc -> if lo <= k && k <= hi then (k, v) :: acc else acc)
           model []
        |> List.sort compare)
  | T.Rangecount (lo, hi) ->
      T.S_int
        (Hashtbl.fold
           (fun k _ n -> if lo <= k && k <= hi then n + 1 else n)
           model 0)

(* A transaction takes the writer commit path (unique versionstamp via
   fetch-and-add) only when its write buffer ends non-empty; otherwise
   it commits on the read-only path and its stamp equals some writer's,
   so ties must order the (unique) effective writer first.  Whether the
   buffer ended non-empty is exactly reconstructible from ops + steps
   by mirroring [Txn.exec]'s bookkeeping: a PUT answering [S_ok] on a
   key with no underlying binding cancels against a later DEL of the
   same key (the pair drops out of the buffer), while writes that
   no-op ([S_exists], DEL answering 0) never enter it. *)
let effective_writer ops steps =
  let buf = Hashtbl.create 4 in
  List.iter2
    (fun o s ->
      match (o, s) with
      | T.Put (k, _), T.S_ok ->
          let underlying = Hashtbl.find_opt buf k = Some `Del in
          Hashtbl.replace buf k (`Put underlying)
      | T.Del k, T.S_int 1 -> (
          match Hashtbl.find_opt buf k with
          | Some (`Put true) -> Hashtbl.replace buf k `Del
          | Some (`Put false) -> Hashtbl.remove buf k
          | Some `Del | None -> Hashtbl.replace buf k `Del)
      | _ -> ())
    ops steps;
  Hashtbl.length buf > 0

let gen_ops rng ~universe ~ranges_ok =
  let nops = 2 + Splitmix.below rng 4 in
  let key () = 1 + Splitmix.below rng universe in
  List.init nops (fun _ ->
      match Splitmix.below rng (if ranges_ok then 6 else 4) with
      | 0 -> T.Get (key ())
      | 1 -> T.Put (key (), Splitmix.below rng 1000)
      | 2 -> T.Del (key ())
      | 3 -> T.Mget (Array.init (1 + Splitmix.below rng 3) (fun _ -> key ()))
      | 4 ->
          let a = key () and b = key () in
          T.Range (min a b, max a b)
      | _ ->
          let a = key () and b = key () in
          T.Rangecount (min a b, max a b))

(* Run the race and return the number of violations found by the
   offline checker (step mismatches + final-state mismatch). *)
let run_race (module M : Dstruct.Map_intf.MAP) ~seed ~domains ~ntxn ~universe =
  Verlib.reset ();
  let h = M.create ~n_hint:universe () in
  let store = T.Store.create (module M) h in
  let ranges_ok = M.range_capability = Dstruct.Map_intf.Ordered_range in
  (* Pre-fill through the store so the checker sees these commits too. *)
  let prefill = ref [] in
  for k = 1 to universe do
    if k mod 2 = 0 then
      match T.exec store [ T.Put (k, k * 10) ] with
      | T.Committed { vs; steps; _ } ->
          prefill := (vs, [ T.Put (k, k * 10) ], steps) :: !prefill
      | T.Aborted _ -> Alcotest.fail "prefill aborted with no contention"
  done;
  let worker i () =
    let rng = Splitmix.create ((seed * 1_000_003) + i) in
    let acc = ref [] in
    for _ = 1 to ntxn do
      let ops = gen_ops rng ~universe ~ranges_ok in
      match T.exec ~max_attempts:64 store ops with
      | T.Committed { vs; steps; _ } -> acc := (vs, ops, steps) :: !acc
      | T.Aborted _ -> ()
    done;
    !acc
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker (i + 1))) in
  let logs = List.concat_map Domain.join ds in
  (* Versionstamp order; a read-only transaction committing at clock
     value [c] observed every writer with vs <= c, so on ties the
     writer (unique per vs) sorts first. *)
  let sorted =
    List.sort
      (fun (v1, o1, s1) (v2, o2, s2) ->
        match compare v1 v2 with
        | 0 -> compare (effective_writer o2 s2) (effective_writer o1 s1)
        | c -> c)
      (!prefill @ logs)
  in
  let model = Hashtbl.create 64 in
  let violations = ref 0 in
  List.iter
    (fun (vs, ops, steps) ->
      let expect = List.map (sim_step model) ops in
      if expect <> steps then begin
        incr violations;
        Printf.printf "  [%s] vs=%d: recorded steps disagree with model replay\n"
          M.name vs
      end)
    sorted;
  let final =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare
  in
  if final <> M.to_sorted_list h then begin
    incr violations;
    Printf.printf "  [%s] final structure contents diverge from model\n" M.name
  end;
  if not (T.Store.quiescent store) then begin
    incr violations;
    Printf.printf "  [%s] store not quiescent after race\n" M.name
  end;
  M.check h;
  !violations

let serializability_tests =
  let prop map seed =
    let module M = (val map : Dstruct.Map_intf.MAP) in
    run_race (module M) ~seed ~domains:4 ~ntxn:150 ~universe:24 = 0
  in
  List.map
    (fun (name, map) ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~count:3
           ~name:(Printf.sprintf "serializable in versionstamp order (%s)" name)
           QCheck.(int_range 1 100_000)
           (prop map)))
    [
      ("btree", (module Dstruct.Btree : Dstruct.Map_intf.MAP));
      ("hashtable", (module Dstruct.Hashtable));
      ("sharded-btree:4", Harness.Registry.find "sharded-btree:4");
    ]

(* ------------------------------------------------------------------ *)
(* Exactly-once tokens. *)

let test_token_replay () =
  Verlib.reset ();
  let h = Dstruct.Btree.create ~n_hint:64 () in
  let store = T.Store.create (module Dstruct.Btree) h in
  let r0 = T.replays () in
  let vs1, steps1 =
    match T.exec ~token:42 store [ T.Put (1, 7) ] with
    | T.Committed { vs; steps; attempts } ->
        Alcotest.(check bool) "live commit has attempts" true (attempts > 0);
        (vs, steps)
    | T.Aborted _ -> Alcotest.fail "uncontended commit aborted"
  in
  (* Same token, different body: the cached outcome must be replayed
     verbatim and the body must NOT run (PUT 1 would answer EXISTS). *)
  (match T.exec ~token:42 store [ T.Put (1, 999) ] with
   | T.Committed { vs; steps; attempts } ->
       Alcotest.(check int) "replayed versionstamp" vs1 vs;
       Alcotest.(check bool) "replayed steps" true (steps = steps1);
       Alcotest.(check int) "replay marked attempts=0" 0 attempts
   | T.Aborted _ -> Alcotest.fail "token replay aborted");
  Alcotest.(check (option int)) "effect applied once" (Some 7) (T.get store 1);
  Alcotest.(check bool) "replay counter moved" true (T.replays () - r0 >= 1)

let test_token_race () =
  Verlib.reset ();
  let h = Dstruct.Btree.create ~n_hint:64 () in
  let store = T.Store.create (module Dstruct.Btree) h in
  (match T.exec store [ T.Put (5, 0) ] with
   | T.Committed _ -> ()
   | T.Aborted _ -> Alcotest.fail "seed aborted");
  let n = 4 in
  let ready = Atomic.make 0 in
  let worker () =
    Atomic.incr ready;
    while Atomic.get ready < n do
      Domain.cpu_relax ()
    done;
    T.exec ~token:777 store [ T.Del 5; T.Put (5, 1) ]
  in
  let outs = List.map Domain.join (List.init n (fun _ -> Domain.spawn worker)) in
  let stamps =
    List.map
      (function
        | T.Committed { vs; steps; _ } ->
            Alcotest.(check bool) "race steps" true
              (steps = [ T.S_int 1; T.S_ok ]);
            vs
        | T.Aborted _ -> Alcotest.fail "token race aborted")
      outs
  in
  (match stamps with
   | vs :: rest ->
       List.iter (Alcotest.(check int) "all callers see one versionstamp" vs) rest
   | [] -> assert false);
  Alcotest.(check (option int)) "counter bumped exactly once" (Some 1)
    (T.get store 5)

(* ------------------------------------------------------------------ *)
(* Abort-storm chaos: transfers are all-or-nothing, reads stay exact,
   and no stripe latch leaks past the storm. *)

let test_abort_storm () =
  Verlib.reset ();
  let h = Dstruct.Btree.create ~n_hint:64 () in
  let store = T.Store.create (module Dstruct.Btree) h in
  let writers = 3 and per = 200 and base = 1000 in
  for k = 1 to 2 * writers do
    match T.exec store [ T.Put (k, base) ] with
    | T.Committed _ -> ()
    | T.Aborted _ -> Alcotest.fail "seed aborted"
  done;
  (match F.find_plan "abort-storm" with
   | Ok p -> F.arm p
   | Error e -> Alcotest.fail ("abort-storm preset missing: " ^ e));
  let stop = Atomic.make false in
  let writer i () =
    let a = (2 * i) + 1 and b = (2 * i) + 2 in
    let va = ref base and vb = ref base in
    let rng = Splitmix.create (0x5eed + i) in
    let committed = ref 0 and aborted = ref 0 in
    for _ = 1 to per do
      let amt = Splitmix.below rng 21 - 10 in
      let na = !va - amt and nb = !vb + amt in
      match
        T.exec store [ T.Del a; T.Put (a, na); T.Del b; T.Put (b, nb) ]
      with
      | T.Committed { steps = [ T.S_int 1; T.S_ok; T.S_int 1; T.S_ok ]; _ } ->
          va := na;
          vb := nb;
          incr committed
      | T.Committed _ -> Alcotest.fail "transfer saw unexpected steps"
      | T.Aborted _ -> incr aborted (* all-or-nothing: shadows unchanged *)
    done;
    (!committed, !aborted)
  in
  let reader () =
    (* Serialized plain reads must never see a transfer mid-install. *)
    let viol = ref 0 and looks = ref 0 in
    while not (Atomic.get stop) do
      for i = 0 to writers - 1 do
        let a = (2 * i) + 1 and b = (2 * i) + 2 in
        incr looks;
        (match T.mget store [| a; b |] with
         | [| Some x; Some y |] -> if x + y <> 2 * base then incr viol
         | _ -> incr viol);
        let pairs = T.range store a b in
        (match pairs with
         | [ (_, x); (_, y) ] -> if x + y <> 2 * base then incr viol
         | _ -> incr viol)
      done
    done;
    (!viol, !looks)
  in
  let r = Domain.spawn reader in
  let ws = List.init writers (fun i -> Domain.spawn (writer i)) in
  let results = List.map Domain.join ws in
  Atomic.set stop true;
  let viol, looks = Domain.join r in
  let fired = F.fired_at "txn.validate" + F.fired_at "txn.commit" in
  F.disarm ();
  let committed = List.fold_left (fun s (c, _) -> s + c) 0 results in
  Alcotest.(check bool) "storm actually fired" true (fired > 0);
  Alcotest.(check bool) "some transfers still commit" true (committed > 0);
  Alcotest.(check bool) "reader observed state" true (looks > 0);
  Alcotest.(check int) "reader saw exact pair sums" 0 viol;
  Alcotest.(check bool) "no stripe latch leaked" true (T.Store.quiescent store);
  let total =
    List.fold_left (fun s (_, v) -> s + v) 0 (Dstruct.Btree.to_sorted_list h)
  in
  Alcotest.(check int) "money conserved exactly" (2 * writers * base) total;
  Dstruct.Btree.check h

let () =
  Alcotest.run "txn"
    [
      ("serializability", serializability_tests);
      ( "tokens",
        [ case "replay is exactly-once" test_token_replay;
          case "concurrent same-token race" test_token_race ] );
      ("chaos", [ case "abort-storm: exact sums, no leaks" test_abort_storm ]);
    ]
