(* Tests for the replication plane (lib/repl and the server's
   SUBSCRIBE/SYNC/REPLSTATS/PROMOTE machinery): feed capture at the
   commit tap (single writes and batch-atomic MULTI/EXEC records), the
   bounded log's laggard/resync contract, the apply engine's dedup and
   gap resequencing, watermark monotonicity under a fault-plan-driven
   dup/reorder chaos sender, and a live primary→replica pair: SYNC
   bootstrap, streamed convergence, READONLY refusal, WATCH, REPLSTATS
   and PROMOTE failover. *)

module S = Server
module P = Server.Protocol
module C = Server.Client
module F = Fault

let mk_store ?(n_hint = 1024) () =
  let h = Dstruct.Btree.create ~n_hint () in
  Txn.Store.create (module Dstruct.Btree) h

(* --- the commit tap ------------------------------------------------------ *)

let test_feed_capture () =
  Verlib.reset ();
  let store = mk_store () in
  let log = Repl.Log.create ~capacity:64 () in
  Repl.Log.tap log store;
  ignore (Txn.put store 1 10);
  ignore (Txn.put store 2 20);
  ignore (Txn.del store 2);
  (* a whole MULTI/EXEC batch must land as ONE record at its stamp *)
  (match Txn.exec store [ Txn.Put (3, 30); Txn.Put (4, 40); Txn.Del 1 ] with
   | Txn.Committed _ -> ()
   | Txn.Aborted _ -> Alcotest.fail "uncontended batch aborted");
  (match Repl.Log.read_after log ~seq:0 with
   | `Resync -> Alcotest.fail "resync on a fresh log"
   | `Records rs ->
       Alcotest.(check int) "four records" 4 (List.length rs);
       (* dense seqs; strictly increasing stamps (single writer) *)
       ignore
         (List.fold_left
            (fun (seq, stamp) r ->
              Alcotest.(check int) "dense seq" (seq + 1) r.Repl.r_seq;
              Alcotest.(check bool)
                "stamps increase" true
                (r.Repl.r_stamp > stamp);
              (r.Repl.r_seq, r.Repl.r_stamp))
            (0, 0) rs);
       let batch = List.nth rs 3 in
       Alcotest.(check int) "batch-atomic record" 3
         (List.length batch.Repl.r_writes);
       Alcotest.(check bool) "delete rides as None" true
         (List.exists (fun (k, v) -> k = 1 && v = None) batch.Repl.r_writes));
  Txn.clear_commit_observer store

let test_log_resync_when_trimmed () =
  let log = Repl.Log.create ~capacity:16 () in
  for i = 1 to 100 do
    Repl.Log.append log ~stamp:i [ (i, Some i) ]
  done;
  Alcotest.(check int) "tail seq" 100 (Repl.Log.tail_seq log);
  (match Repl.Log.read_after log ~seq:0 with
   | `Resync -> ()
   | `Records _ -> Alcotest.fail "laggard below the trim must resync");
  match Repl.Log.read_after log ~seq:95 with
  | `Records rs -> Alcotest.(check int) "recent suffix" 5 (List.length rs)
  | `Resync -> Alcotest.fail "recent cursor forced to resync"

(* --- the apply engine ---------------------------------------------------- *)

let record seq stamp writes =
  { Repl.r_seq = seq; r_stamp = stamp; r_writes = writes }

let test_apply_dedup_and_gap () =
  Verlib.reset ();
  let store = mk_store () in
  let a = Repl.Apply.create store in
  let dup0 = Repl.dup_dropped_total () in
  (match Repl.Apply.offer a (record 1 5 [ (1, Some 10) ]) with
   | `Applied 1 -> ()
   | _ -> Alcotest.fail "r1 not applied");
  (match Repl.Apply.offer a (record 1 5 [ (1, Some 10) ]) with
   | `Dup -> ()
   | _ -> Alcotest.fail "duplicate not dropped");
  Alcotest.(check int) "repl_dup_dropped counts" (dup0 + 1)
    (Repl.dup_dropped_total ());
  (match Repl.Apply.offer a (record 3 9 [ (3, Some 30) ]) with
   | `Buffered -> ()
   | _ -> Alcotest.fail "gap not buffered");
  Alcotest.(check int) "one pending" 1 (Repl.Apply.pending_count a);
  (match Repl.Apply.offer a (record 2 7 [ (2, Some 20) ]) with
   | `Applied 2 -> ()
   | _ -> Alcotest.fail "gap fill did not drain the buffer");
  Alcotest.(check int) "cursor" 3 (Repl.Apply.last_seq a);
  Alcotest.(check int) "watermark" 9 (Repl.Apply.watermark a);
  Alcotest.(check int) "pending drained" 0 (Repl.Apply.pending_count a);
  Alcotest.(check bool) "state installed" true (Txn.get store 2 = Some 20)

let test_apply_overflow () =
  Verlib.reset ();
  let store = mk_store () in
  let a = Repl.Apply.create store in
  let out = ref `Buffered in
  (try
     (* seq 1 never arrives: everything buffers until the bound trips *)
     for i = 2 to 1000 do
       match Repl.Apply.offer a (record i i [ (i, Some i) ]) with
       | `Buffered -> ()
       | x ->
           out := x;
           raise Exit
     done
   with Exit -> ());
  match !out with
  | `Overflow -> ()
  | _ -> Alcotest.fail "reorder buffer never overflowed"

(* --- satellite: watermark monotonicity under dup/reorder chaos ------------ *)

(* A fault plan drives the same dup/reorder interpretation the server's
   stream loop uses; the replica's applied-stamp sequence must stay
   strictly increasing (dedup on seq, resequencing on gaps) and the
   final state must converge exactly. *)
let test_watermark_monotone_under_chaos () =
  Verlib.reset ();
  let primary = mk_store () in
  let log = Repl.Log.create ~capacity:4096 () in
  Repl.Log.tap log primary;
  let n = 64 in
  for i = 0 to n - 1 do
    ignore (Txn.put primary i 100)
  done;
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 400 do
    let a = Random.State.int rng n and b = Random.State.int rng n in
    if a <> b then begin
      let va = Option.value ~default:0 (Txn.get primary a) in
      let vb = Option.value ~default:0 (Txn.get primary b) in
      match
        Txn.exec primary
          [ Txn.Del a; Txn.Put (a, va - 1); Txn.Del b; Txn.Put (b, vb + 1) ]
      with
      | Txn.Committed _ | Txn.Aborted _ -> ()
    end
  done;
  let records =
    match Repl.Log.read_after log ~seq:0 with
    | `Records rs -> rs
    | `Resync -> Alcotest.fail "log trimmed under capacity 4096"
  in
  (match
     F.plan_of_string "seed=11;repl.send:dup@p=0.2;repl.send:reorder@p=0.2"
   with
   | Error e -> Alcotest.fail e
   | Ok p -> F.arm p);
  let replica = mk_store () in
  let a = Repl.Apply.create replica in
  let dup0 = Repl.dup_dropped_total () in
  let last = ref 0 in
  let offer r =
    match Repl.Apply.offer a r with
    | `Applied _ ->
        let s = Repl.Apply.last_stamp a in
        Alcotest.(check bool)
          "applied stamps strictly increase" true (s > !last);
        last := s
    | `Dup | `Buffered -> ()
    | `Overflow -> Alcotest.fail "overflow under 1-deep reorder"
  in
  let held = ref None in
  let release () =
    match !held with
    | Some r ->
        held := None;
        offer r
    | None -> ()
  in
  List.iter
    (fun r ->
      match F.feed_check Repl.fp_send with
      | Some F.Dup ->
          offer r;
          offer r;
          release ()
      | Some F.Reorder when !held = None -> held := Some r
      | _ ->
          offer r;
          release ())
    records;
  release ();
  F.disarm ();
  Alcotest.(check bool) "duplicates were dropped (repl_dup_dropped)" true
    (Repl.dup_dropped_total () > dup0);
  Alcotest.(check int) "cursor reached the tail" (Repl.Log.tail_seq log)
    (Repl.Apply.last_seq a);
  let sum = ref 0 in
  for i = 0 to n - 1 do
    let pv = Txn.get primary i and rv = Txn.get replica i in
    Alcotest.(check bool) (Printf.sprintf "key %d equal" i) true (pv = rv);
    sum := !sum + Option.value ~default:0 rv
  done;
  Alcotest.(check int) "conservation on the replica" (100 * n) !sum;
  Txn.clear_commit_observer primary

(* --- live: primary → replica pair ----------------------------------------- *)

(* A streaming subscriber pins a worker for the life of its connection
   (connection-per-worker pool), and so does a parked WATCH — so the
   primary needs headroom beyond the replica's one stream: workers for
   the test clients too.  docs/REPLICATION.md spells out the sizing
   rule for deployments. *)
let with_pair f =
  Verlib.reset ();
  let pmount = S.Mount.mount ~n_hint:1024 (module Dstruct.Btree) in
  let pconfig =
    { S.default_config with S.port = 0; domains = 4; queue_depth = 16 }
  in
  let primary = S.create ~config:pconfig pmount in
  S.start primary;
  let rmount = S.Mount.mount ~n_hint:1024 (module Dstruct.Btree) in
  let rconfig =
    {
      S.default_config with
      S.port = 0;
      domains = 2;
      queue_depth = 16;
      replica_of = Some ("127.0.0.1", S.port primary);
    }
  in
  let replica = S.create ~config:rconfig rmount in
  S.start replica;
  let finally () =
    S.stop replica;
    S.stop primary
  in
  Fun.protect ~finally (fun () -> f (S.port primary) (S.port replica))

let req conn c =
  match C.request conn c with
  | Ok r -> r
  | Error e -> Alcotest.fail ("request: " ^ e)

let await ?(timeout = 10.) msg pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail ("timed out awaiting " ^ msg)
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_pair_converges_readonly_promote () =
  with_pair @@ fun pport rport ->
  let pc = C.connect ~retries:20 ~port:pport () in
  let rc = C.connect ~retries:20 ~port:rport () in
  Fun.protect
    ~finally:(fun () ->
      C.close pc;
      C.close rc)
  @@ fun () ->
  for i = 1 to 50 do
    ignore (req pc (P.Put (i, i * 10)))
  done;
  (* one batch, appended last: once its effect is visible on the replica
     every earlier record has been applied (seq order) *)
  (match C.pipeline pc [ P.Multi; P.Del 1; P.Put (1, 111); P.Exec 0 ] with
   | Ok [ P.Ok_; P.Queued; P.Queued; P.Arr (P.Int _ :: _) ] -> ()
   | Ok rs ->
       Alcotest.fail
         ("batch: " ^ String.concat "," (List.map P.pp_reply rs))
   | Error e -> Alcotest.fail e);
  await "replica convergence" (fun () -> req rc (P.Get 1) = P.Int 111);
  for i = 2 to 50 do
    Alcotest.(check bool)
      (Printf.sprintf "replica key %d" i)
      true
      (req rc (P.Get i) = P.Int (i * 10))
  done;
  (* replica refuses writes until promoted *)
  (match req rc (P.Put (9, 9)) with
   | P.Err msg ->
       Alcotest.(check bool) "READONLY refusal" true (contains msg "READONLY")
   | r -> Alcotest.fail ("replica accepted a write: " ^ P.pp_reply r));
  (match C.pipeline rc [ P.Multi; P.Del 2; P.Put (2, 0); P.Exec 0 ] with
   | Ok [ P.Ok_; P.Queued; P.Queued; P.Err msg ] ->
       Alcotest.(check bool) "READONLY EXEC" true (contains msg "READONLY")
   | Ok rs ->
       Alcotest.fail
         ("replica EXEC: " ^ String.concat "," (List.map P.pp_reply rs))
   | Error e -> Alcotest.fail e);
  (* both ends introspect their role *)
  (match req rc P.Replstats with
   | P.Bulk json ->
       Alcotest.(check bool) "replica role" true
         (contains json "\"role\":\"replica\"")
   | r -> Alcotest.fail ("replica REPLSTATS: " ^ P.pp_reply r));
  (match req pc P.Replstats with
   | P.Bulk json ->
       Alcotest.(check bool) "primary role" true
         (contains json "\"role\":\"primary\"");
       Alcotest.(check bool) "primary sees a subscriber" true
         (contains json "\"subscribers\":0" = false)
   | r -> Alcotest.fail ("primary REPLSTATS: " ^ P.pp_reply r));
  (* failover: promote, then writes land *)
  Alcotest.(check bool) "promote" true (req rc P.Promote = P.Ok_);
  Alcotest.(check bool) "promote idempotent" true (req rc P.Promote = P.Ok_);
  Alcotest.(check bool) "post-promote write" true
    (req rc (P.Put (1000, 1)) = P.Ok_);
  match req rc P.Replstats with
  | P.Bulk json ->
      Alcotest.(check bool) "promoted role" true
        (contains json "\"role\":\"primary\"")
  | r -> Alcotest.fail ("post-promote REPLSTATS: " ^ P.pp_reply r)

(* Failover drill: kill the primary mid-flight, PROMOTE the replica,
   and watch a retrying client armed with both endpoints land its next
   write on the promoted side with zero surfaced errors — the rotation
   shows up in [failover_total]. *)
let test_client_failover () =
  Verlib.reset ();
  let pmount = S.Mount.mount ~n_hint:1024 (module Dstruct.Btree) in
  let primary =
    S.create
      ~config:{ S.default_config with S.port = 0; domains = 4; queue_depth = 16 }
      pmount
  in
  S.start primary;
  let rmount = S.Mount.mount ~n_hint:1024 (module Dstruct.Btree) in
  let replica =
    S.create
      ~config:
        {
          S.default_config with
          S.port = 0;
          domains = 4;
          queue_depth = 16;
          replica_of = Some ("127.0.0.1", S.port primary);
        }
      rmount
  in
  S.start replica;
  Fun.protect
    ~finally:(fun () ->
      S.stop replica;
      S.stop primary (* idempotent: already stopped mid-test *))
  @@ fun () ->
  let rport = S.port replica in
  let rt =
    C.connect_rt ~port:(S.port primary)
      ~endpoints:[ ("127.0.0.1", rport) ]
      ~seed:7 ()
  in
  Fun.protect ~finally:(fun () -> C.rt_close rt) @@ fun () ->
  (match C.rt_request rt (P.Put (1, 10)) with
   | Ok P.Ok_ -> ()
   | Ok r -> Alcotest.fail ("pre-failover PUT: " ^ P.pp_reply r)
   | Error e -> Alcotest.fail ("pre-failover PUT: " ^ e));
  let rc = C.connect ~retries:20 ~port:rport () in
  Fun.protect ~finally:(fun () -> C.close rc) @@ fun () ->
  (* the write must reach the replica before we promote it, or the
     promoted store would be missing history *)
  await "replicated before the kill" (fun () -> req rc (P.Get 1) = P.Int 10);
  let f0 = C.failover_total () in
  S.stop primary;
  Alcotest.(check bool) "promote" true (req rc P.Promote = P.Ok_);
  (match C.rt_request rt (P.Put (2, 20)) with
   | Ok P.Ok_ -> ()
   | Ok r -> Alcotest.fail ("post-failover PUT: " ^ P.pp_reply r)
   | Error e -> Alcotest.fail ("post-failover PUT: " ^ e));
  Alcotest.(check bool) "rotation counted" true (C.failover_total () > f0);
  Alcotest.(check bool) "write landed on the promoted side" true
    (req rc (P.Get 2) = P.Int 20)

let test_watch_over_wire () =
  with_pair @@ fun pport _rport ->
  let wc = C.connect ~retries:20 ~port:pport () in
  Fun.protect ~finally:(fun () -> C.close wc) @@ fun () ->
  (* timeout path: nothing touches [500, 600] *)
  (match req wc (P.Watch (500, 600, 100)) with
   | P.Nil -> ()
   | r -> Alcotest.fail ("WATCH timeout: " ^ P.pp_reply r));
  (* event path: a writer fires after a beat *)
  let d =
    Domain.spawn (fun () ->
        let c = C.connect ~retries:20 ~port:pport () in
        Unix.sleepf 0.15;
        let r = C.request c (P.Put (555, 5)) in
        C.close c;
        r)
  in
  let reply = req wc (P.Watch (500, 600, 5000)) in
  (match Domain.join d with
   | Ok P.Ok_ -> ()
   | _ -> Alcotest.fail "writer PUT failed");
  match P.record_of_reply reply with
  | Ok r ->
      Alcotest.(check bool) "record touches the range" true
        (Repl.touches 500 600 r);
      Alcotest.(check bool) "the write is in the record" true
        (List.mem (555, Some 5) r.Repl.r_writes)
  | Error e -> Alcotest.fail ("WATCH reply: " ^ e ^ " " ^ P.pp_reply reply)

(* Speak the stream protocol by hand: SUBSCRIBE from seq 0, collect the
   pushed records (skipping +OK heartbeats), ACK, and QUIT cleanly. *)
let test_subscribe_stream () =
  with_pair @@ fun pport _rport ->
  let pc = C.connect ~retries:20 ~port:pport () in
  let sc = C.connect ~retries:20 ~port:pport () in
  Fun.protect
    ~finally:(fun () ->
      C.close sc;
      C.close pc)
  @@ fun () ->
  for i = 1 to 5 do
    ignore (req pc (P.Put (i, i)))
  done;
  Alcotest.(check bool) "subscribe ok" true
    (req sc (P.Subscribe (1, 1000, 0)) = P.Ok_);
  let got = ref [] in
  let deadline = Unix.gettimeofday () +. 10. in
  while List.length !got < 5 && Unix.gettimeofday () < deadline do
    match C.read_reply sc with
    | Ok P.Ok_ -> () (* heartbeat *)
    | Ok r -> (
        match P.record_of_reply r with
        | Ok rc -> got := rc :: !got
        | Error e -> Alcotest.fail ("stream frame: " ^ e))
    | Error e -> Alcotest.fail ("stream read: " ^ e)
  done;
  let got = List.rev !got in
  Alcotest.(check int) "five records" 5 (List.length got);
  ignore
    (List.fold_left
       (fun prev r ->
         Alcotest.(check bool) "seq order" true (r.Repl.r_seq > prev);
         r.Repl.r_seq)
       0 got);
  (* ack the tail; the primary's lag gauges drain *)
  let last = List.nth got 4 in
  C.send_raw sc (Printf.sprintf "ACK %d %d\r\n" last.Repl.r_seq last.Repl.r_stamp);
  await "acked lag drains" (fun () ->
      match req pc P.Replstats with
      | P.Bulk json -> contains json "\"lag_stamps\":0"
      | _ -> false);
  C.send_raw sc "QUIT\r\n"

let () =
  Alcotest.run "repl"
    [
      ( "feed",
        [
          Alcotest.test_case "commit tap captures records" `Quick
            test_feed_capture;
          Alcotest.test_case "laggard below trim resyncs" `Quick
            test_log_resync_when_trimmed;
        ] );
      ( "apply",
        [
          Alcotest.test_case "dedup + gap resequencing" `Quick
            test_apply_dedup_and_gap;
          Alcotest.test_case "reorder buffer overflow" `Quick
            test_apply_overflow;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "watermark monotone under dup/reorder" `Quick
            test_watermark_monotone_under_chaos;
        ] );
      ( "wire",
        [
          Alcotest.test_case "pair converges, READONLY, PROMOTE" `Quick
            test_pair_converges_readonly_promote;
          Alcotest.test_case "client fails over to a promoted replica" `Quick
            test_client_failover;
          Alcotest.test_case "WATCH one-shot" `Quick test_watch_over_wire;
          Alcotest.test_case "SUBSCRIBE stream + ACK" `Quick
            test_subscribe_stream;
        ] );
    ]
