(* Chainscan: census counts and invariant audit on handcrafted chains
   (vtypes is interface-free precisely so tests can build broken chains
   the real algorithms never produce), plus a qcheck property running
   the census concurrently with mutators — the walker must neither
   crash nor report violations on correct executions.

   [Vtypes.meta.prev] is written before publication and read-only after,
   so poking it directly from a single-threaded test is representation-
   faithful, not a cheat. *)

module V = Verlib
module C = Verlib.Chainscan

type obj = { v : int; meta : obj V.Vtypes.meta }

let mk v = { v; meta = V.Vtypes.fresh_meta () }

let desc mode = V.Vptr.make_desc ~meta_of:(fun o -> o.meta) ~mode

(* Build an object chain [stamps = [s0; s1; ...]] with s0 the head
   version; returns the head object.  [tbd] stamps stay unset. *)
let build_chain stamps =
  match stamps with
  | [] -> invalid_arg "build_chain"
  | s0 :: rest ->
      let head = mk 0 in
      Atomic.set head.meta.stamp s0;
      let rec extend (prev : obj) i = function
        | [] -> ()
        | s :: rest ->
            let o = mk i in
            Atomic.set o.meta.stamp s;
            prev.meta.prev <- V.Vtypes.Cval (Some o);
            extend o (i + 1) rest
      in
      extend head 1 rest;
      head

(* [Vptr.make] only claims a TBD stamp, so crafted heads (whose stamps
   are already set) are installed untouched, chain and all. *)
let vptr_of_head mode head = V.Vptr.make (desc mode) (Some head)

let census_of p = C.census_of_targets [ C.Target p ]

let codes c = List.map C.violation_code c.C.c_violations

(* --- clean chains -------------------------------------------------------- *)

let test_sorted_chain () =
  V.reset ();
  let head = build_chain [ 30; 20; 20; 10 ] in
  let c = census_of (vptr_of_head V.Vptr.Ind_on_need head) in
  Alcotest.(check int) "pointers" 1 c.C.c_pointers;
  Alcotest.(check int) "versions" 4 c.C.c_versions;
  Alcotest.(check int) "max chain" 4 c.C.c_max_chain;
  Alcotest.(check int) "no violations" 0 c.C.c_violation_count;
  Alcotest.(check int) "live + reclaimable = versions" 4
    (c.C.c_live_versions + c.C.c_reclaimable);
  Alcotest.(check int) "direct head" 1 c.C.c_direct_heads

let test_empty_and_plain () =
  V.reset ();
  let empty = V.Vptr.make (desc V.Vptr.Ind_on_need) None in
  let c = census_of empty in
  Alcotest.(check int) "nil head" 1 c.C.c_nil_heads;
  Alcotest.(check int) "no versions" 0 c.C.c_versions;
  let plain = V.Vptr.make (desc V.Vptr.Plain) (Some (mk 1)) in
  let c = census_of plain in
  Alcotest.(check int) "plain pointer counted" 1 c.C.c_plain_pointers;
  Alcotest.(check int) "plain is one version" 1 c.C.c_versions;
  Alcotest.(check int) "plain audits nothing" 0 c.C.c_violation_count

(* --- handcrafted violations ---------------------------------------------- *)

let test_unsorted_stamps () =
  V.reset ();
  (* stamp rises from 10 to 50 walking towards older versions *)
  let head = build_chain [ 10; 50; 5 ] in
  let c = census_of (vptr_of_head V.Vptr.Ind_on_need head) in
  Alcotest.(check bool) "unsorted detected" true (List.mem 1 (codes c));
  Alcotest.(check bool) "counted" true (c.C.c_violation_count >= 1);
  match
    List.find_opt (function C.Unsorted _ -> true | _ -> false) c.C.c_violations
  with
  | Some (C.Unsorted { newer; older; depth }) ->
      Alcotest.(check int) "newer stamp" 10 newer;
      Alcotest.(check int) "older stamp" 50 older;
      Alcotest.(check int) "at depth" 1 depth
  | _ -> Alcotest.fail "no Unsorted detail retained"

let test_buried_tbd () =
  V.reset ();
  let head = build_chain [ 10 ] in
  let tbd = mk 1 in
  (* fresh_meta leaves the stamp TBD *)
  head.meta.prev <- V.Vtypes.Cval (Some tbd) ;
  let c = census_of (vptr_of_head V.Vptr.Ind_on_need head) in
  Alcotest.(check bool) "buried TBD detected" true (List.mem 2 (codes c));
  (* a TBD *head* is legal: an in-flight CAS publishes with TBD and
     relies on set-stamp helping, which the passive census must not do *)
  let p = V.Vptr.make (desc V.Vptr.Ind_on_need) None in
  ignore (V.Vptr.cas p None (Some (mk 3)));
  let c = census_of p in
  Alcotest.(check int) "no violation for head-stamp states" 0
    c.C.c_violation_count

let test_dangling_link () =
  V.reset ();
  let a = mk 1 and b = mk 2 in
  (* a link whose precomputed direct cell holds a DIFFERENT value than
     the link — shortcutting it would change the observable value *)
  let bad : obj V.Vtypes.link =
    {
      V.Vtypes.lmeta =
        { V.Vtypes.stamp = Atomic.make 7; prev = V.Vtypes.Cval None };
      lvalue = Some a;
      ldirect = V.Vtypes.Cval (Some b);
    }
  in
  let head = build_chain [ 9 ] in
  head.meta.prev <- V.Vtypes.Clink bad;
  let c = census_of (vptr_of_head V.Vptr.Ind_on_need head) in
  Alcotest.(check bool) "dangling link detected" true (List.mem 3 (codes c));
  Alcotest.(check int) "link counted" 1 c.C.c_indirect_links;
  (* the well-formed link built by make_link passes the same audit *)
  let good = V.Vtypes.make_link ~stamp:8 ~prev:(V.Vtypes.Cval None) (Some a) in
  let head2 = build_chain [ 9 ] in
  head2.meta.prev <- V.Vtypes.Clink good;
  let c2 = census_of (vptr_of_head V.Vptr.Ind_on_need head2) in
  Alcotest.(check int) "well-formed link is clean" 0 c2.C.c_violation_count;
  Alcotest.(check int) "link still counted" 1 c2.C.c_indirect_links

let test_depth_cap () =
  V.reset ();
  let head = build_chain (List.init 100 (fun i -> 1000 - i)) in
  let c =
    C.census_of_iter ~max_depth:10 (fun emit ->
        emit (C.Target (vptr_of_head V.Vptr.Ind_on_need head)))
  in
  Alcotest.(check int) "walk truncated" 1 c.C.c_truncated_walks;
  Alcotest.(check int) "capped versions" 10 c.C.c_versions

(* --- shortcut accounting on the real mechanism --------------------------- *)

(* Drive a real Ind_on_need pointer through claimed stores (the Figure 1
   situation that creates indirect links), then check the census sees the
   link and that the shortcut ratio moves once shortcutting runs. *)
let test_shortcut_effectiveness () =
  V.reset ();
  let d = desc V.Vptr.Ind_on_need in
  let shared = mk 42 in
  let p = V.Vptr.make d (Some (mk 1)) in
  let q = V.Vptr.make d (Some (mk 2)) in
  (* storing [shared] into both pointers forces the second store to take
     the indirection fallback: the object's meta is already claimed *)
  V.Vptr.store_norace p (Some shared);
  V.Vptr.store_norace q (Some shared);
  let c = C.census_of_targets [ C.Target p; C.Target q ] in
  Alcotest.(check bool) "indirect link created" true
    (c.C.c_indirect_links >= 1 || c.C.c_indirect_created >= 1);
  Alcotest.(check int) "clean audit" 0 c.C.c_violation_count;
  (* loads shortcut resolved links out once the stamp is old enough *)
  ignore (V.Vptr.load p);
  ignore (V.Vptr.load q);
  let c2 = C.census_of_targets [ C.Target p; C.Target q ] in
  Alcotest.(check bool) "shortcut ratio in [0,1]" true
    (C.shortcut_ratio c2 >= 0. && C.shortcut_ratio c2 <= 1.)

(* --- registry ------------------------------------------------------------ *)

let test_registry () =
  V.reset ();
  let p = V.Vptr.make (desc V.Vptr.Ind_on_need) (Some (mk 1)) in
  let before = List.length (C.registered ()) in
  let r = C.register ~name:"t1" (fun emit -> emit (C.Target p)) in
  Alcotest.(check int) "registered" (before + 1) (List.length (C.registered ()));
  let all = C.census_all () in
  Alcotest.(check bool) "census_all includes t1" true
    (List.exists (fun (n, c) -> n = "t1" && c.C.c_pointers = 1) all);
  C.unregister r;
  Alcotest.(check int) "unregistered" before (List.length (C.registered ()))

(* --- concurrent censuses (qcheck) ---------------------------------------- *)

(* Property: a census running concurrently with real mutators never
   crashes and never reports violations — on a correct implementation,
   set-stamp runs before a successor is published and truncation only
   severs edges, so even racing walks see well-formed chains.  Runs on
   the hashtable (versioned cells) and the vbst (no versioned pointers:
   the census must come back empty rather than wander). *)
let concurrent_census_prop (module M : Dstruct.Map_intf.MAP) seed =
  V.reset ();
  let mode = if M.supports_mode V.Vptr.Ind_on_need then V.Vptr.Ind_on_need else V.Vptr.Plain in
  let t = M.create ~mode ~n_hint:256 () in
  for k = 1 to 64 do
    ignore (M.insert t k k)
  done;
  let stop = Atomic.make false in
  let mutator i () =
    let rng = Workload.Splitmix.create (seed + (i * 77)) in
    while not (Atomic.get stop) do
      let k = 1 + Workload.Splitmix.below rng 128 in
      if Workload.Splitmix.below rng 2 = 0 then ignore (M.insert t k k)
      else ignore (M.delete t k)
    done
  in
  let domains = List.init 2 (fun i -> Domain.spawn (mutator i)) in
  let ok = ref true in
  for _ = 1 to 20 do
    let c = C.census_of_iter (fun emit -> M.iter_vptrs t emit) in
    if c.C.c_violation_count <> 0 then ok := false;
    if c.C.c_versions < 0 || c.C.c_live_versions + c.C.c_reclaimable <> c.C.c_versions
    then ok := false
  done;
  Atomic.set stop true;
  List.iter Domain.join domains;
  (* quiescent census for good measure *)
  let c = C.census_of_iter (fun emit -> M.iter_vptrs t emit) in
  !ok && c.C.c_violation_count = 0

let qcheck_concurrent =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:5 ~name:"census concurrent with hashtable mutators"
         QCheck.small_nat
         (concurrent_census_prop (module Dstruct.Hashtable)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:3 ~name:"census concurrent with vbst mutators (empty census)"
         QCheck.small_nat
         (fun seed ->
           concurrent_census_prop (module Dstruct.Vbst) seed
           &&
           let t = Dstruct.Vbst.create ~n_hint:8 () in
           let c =
             C.census_of_iter (fun emit -> Dstruct.Vbst.iter_vptrs t emit)
           in
           c.C.c_pointers = 0 && c.C.c_versions = 0));
  ]

let () =
  Alcotest.run "chainscan"
    [
      ( "census",
        [
          Alcotest.test_case "sorted chain counts" `Quick test_sorted_chain;
          Alcotest.test_case "empty and plain pointers" `Quick test_empty_and_plain;
          Alcotest.test_case "depth cap" `Quick test_depth_cap;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "audit",
        [
          Alcotest.test_case "unsorted stamps" `Quick test_unsorted_stamps;
          Alcotest.test_case "buried TBD" `Quick test_buried_tbd;
          Alcotest.test_case "dangling indirect link" `Quick test_dangling_link;
          Alcotest.test_case "shortcut effectiveness" `Quick test_shortcut_effectiveness;
        ] );
      ("concurrent", qcheck_concurrent);
    ]
