(* Tests for the Verlib core: timestamp schemes, versioned pointers in all
   modes, snapshot reads, shortcutting, idempotent CAS, and the done
   stamp. *)

module V = Verlib

type obj = { v : int; meta : obj V.Vtypes.meta }

let mk v = { v; meta = V.Vtypes.fresh_meta () }

let desc mode = V.Vptr.make_desc ~meta_of:(fun o -> o.meta) ~mode

let value_of = function None -> None | Some o -> Some o.v

let reset ?(scheme = V.Stamp.Query_ts) () = V.reset ~scheme ()

(* Read the pointer as a snapshot at stamp [ts] would.  Announces the
   stamp first, as the library protocol requires. *)
let load_at p ts =
  V.Done_stamp.announce ts;
  V.Snapctx.set_local_stamp ts;
  let r = V.Vptr.load p in
  V.Snapctx.clear_local_stamp ();
  V.Done_stamp.withdraw ();
  r

(* --- Stamp ------------------------------------------------------------ *)

let test_query_ts () =
  reset ();
  let s1 = V.Stamp.take () in
  let s2 = V.Stamp.take () in
  Alcotest.(check bool) "query stamps increase" true (s2 > s1);
  Alcotest.(check bool) "read sees advanced clock" true (V.Stamp.read () > s2)

let test_update_ts () =
  reset ~scheme:V.Stamp.Update_ts ();
  let s1 = V.Stamp.take () in
  let s2 = V.Stamp.take () in
  Alcotest.(check int) "queries do not advance" s1 s2;
  V.Stamp.on_update ();
  Alcotest.(check bool) "updates advance" true (V.Stamp.take () > s2)

let test_hw_ts () =
  reset ~scheme:V.Stamp.Hw_ts ();
  let s1 = V.Stamp.take () in
  let s2 = V.Stamp.take () in
  Alcotest.(check bool) "hardware clock monotone" true (s2 >= s1);
  Alcotest.(check bool) "positive" true (s1 > V.Stamp.zero)

let test_no_stamp () =
  reset ~scheme:V.Stamp.No_stamp ();
  let s1 = V.Stamp.take () in
  V.Stamp.on_update ();
  let s2 = V.Stamp.take () in
  Alcotest.(check int) "clock frozen" s1 s2

let test_tl2_ts () =
  reset ~scheme:V.Stamp.Tl2_ts ();
  let s1 = V.Stamp.take () in
  let s2 = V.Stamp.take () in
  Alcotest.(check bool) "tl2 stamps non-decreasing" true (s2 >= s1)

(* --- Vptr basics (parameterised over versioned modes) ----------------- *)

let versioned_modes = V.Vptr.[ Indirect; No_shortcut; Ind_on_need; Rec_once ]

let test_load_store_cas mode () =
  reset ();
  let d = desc mode in
  let a = mk 1 and b = mk 2 in
  let p = V.Vptr.make d (Some a) in
  Alcotest.(check (option int)) "initial" (Some 1) (value_of (V.Vptr.load p));
  Alcotest.(check bool) "cas wrong expected fails" false (V.Vptr.cas p None (Some b));
  Alcotest.(check bool) "cas succeeds" true (V.Vptr.cas p (Some a) (Some b));
  Alcotest.(check (option int)) "after cas" (Some 2) (value_of (V.Vptr.load p));
  Alcotest.(check bool) "stale cas fails" false (V.Vptr.cas p (Some a) (Some (mk 3)));
  Alcotest.(check (option int)) "unchanged" (Some 2) (value_of (V.Vptr.load p))

let test_null_handling mode () =
  reset ();
  if mode = V.Vptr.Rec_once then () (* RecOnce does not support null stores *)
  else begin
    let d = desc mode in
    let p = V.Vptr.make d None in
    Alcotest.(check (option int)) "initial nil" None (value_of (V.Vptr.load p));
    let a = mk 7 in
    Alcotest.(check bool) "cas from nil" true (V.Vptr.cas p None (Some a));
    Alcotest.(check (option int)) "non-nil" (Some 7) (value_of (V.Vptr.load p));
    V.Vptr.store p None;
    Alcotest.(check (option int)) "store nil" None (value_of (V.Vptr.load p))
  end

let test_noop_cas mode () =
  reset ();
  let d = desc mode in
  let a = mk 1 in
  let p = V.Vptr.make d (Some a) in
  let depth = V.Vptr.version_depth p in
  Alcotest.(check bool) "cas to same value succeeds" true (V.Vptr.cas p (Some a) (Some a));
  Alcotest.(check int) "no version added" depth (V.Vptr.version_depth p)

(* --- Indirection decisions -------------------------------------------- *)

let test_fresh_object_direct () =
  reset ();
  let d = desc V.Vptr.Ind_on_need in
  let p = V.Vptr.make d (Some (mk 1)) in
  Alcotest.(check bool) "fresh install is direct" true
    (V.Vptr.cas p (V.Vptr.load p) (Some (mk 2)));
  (match V.Vptr.head_kind p with
   | `Direct -> ()
   | `Indirect | `Nil -> Alcotest.fail "expected direct head for fresh object")

let test_reused_object_indirect () =
  reset ();
  (* Pin the done stamp low so the shortcut cannot hide the link. *)
  V.Done_stamp.announce (V.Stamp.read ());
  let d = desc V.Vptr.No_shortcut in
  let a = mk 1 and b = mk 2 in
  let p = V.Vptr.make d (Some a) in
  let q = V.Vptr.make d (Some b) in
  ignore q;
  (* [b] was claimed by [q]'s initialisation, so swinging [p] to it needs
     indirection (Figure 1's sharing problem). *)
  Alcotest.(check bool) "cas to claimed object" true (V.Vptr.cas p (Some a) (Some b));
  (match V.Vptr.head_kind p with
   | `Indirect -> ()
   | `Direct | `Nil -> Alcotest.fail "expected indirect head for reused object");
  V.Done_stamp.withdraw ()

let test_initialisation_shares_meta () =
  reset ();
  let d = desc V.Vptr.Ind_on_need in
  let a = mk 1 in
  let p = V.Vptr.make d (Some a) in
  ignore p;
  (* initialising a second pointer to the same (claimed) object must stay
     direct: it is the oldest version of the new pointer's list (§5) *)
  let q = V.Vptr.make d (Some a) in
  (match V.Vptr.head_kind q with
   | `Direct -> ()
   | `Indirect | `Nil -> Alcotest.fail "init should share metadata directly");
  Alcotest.(check (option int)) "value readable" (Some 1) (value_of (V.Vptr.load q))

let test_shortcut_removes_indirection () =
  reset ();
  let d = desc V.Vptr.Ind_on_need in
  let a = mk 1 and b = mk 2 in
  let p = V.Vptr.make d (Some a) in
  let q = V.Vptr.make d (Some b) in
  ignore q;
  Alcotest.(check bool) "cas ok" true (V.Vptr.cas p (Some a) (Some b));
  (* no snapshot is active, so loads shortcut the link out promptly (the
     done-stamp cache refreshes within a bounded number of calls) *)
  for _ = 1 to 64 do
    ignore (V.Vptr.load p)
  done;
  (match V.Vptr.head_kind p with
   | `Direct -> ()
   | `Indirect -> Alcotest.fail "link should have been shortcut"
   | `Nil -> Alcotest.fail "unexpected nil");
  Alcotest.(check (option int)) "value survives shortcut" (Some 2)
    (value_of (V.Vptr.load p))

let test_no_shortcut_mode_keeps_link () =
  reset ();
  let d = desc V.Vptr.No_shortcut in
  let a = mk 1 and b = mk 2 in
  let p = V.Vptr.make d (Some a) in
  let q = V.Vptr.make d (Some b) in
  ignore q;
  Alcotest.(check bool) "cas ok" true (V.Vptr.cas p (Some a) (Some b));
  ignore (V.Vptr.load p);
  (match V.Vptr.head_kind p with
   | `Indirect -> ()
   | `Direct | `Nil -> Alcotest.fail "NoShortcut must keep the link")

let test_shortcut_blocked_by_snapshot () =
  reset ();
  let d = desc V.Vptr.Ind_on_need in
  let a = mk 1 and b = mk 2 in
  let p = V.Vptr.make d (Some a) in
  let q = V.Vptr.make d (Some b) in
  ignore q;
  (* an ongoing snapshot pins the done stamp below the link's stamp *)
  let ts = V.Stamp.take () in
  V.Done_stamp.announce ts;
  Alcotest.(check bool) "cas ok" true (V.Vptr.cas p (Some a) (Some b));
  ignore (V.Vptr.load p);
  (match V.Vptr.head_kind p with
   | `Indirect -> ()
   | `Direct | `Nil -> Alcotest.fail "shortcut must wait for the snapshot");
  V.Done_stamp.withdraw ();
  (* after the snapshot retires, loads clean it up (cache refresh lag is
     bounded by the refresh interval, so poke it a few times) *)
  for _ = 1 to 64 do
    ignore (V.Vptr.load p)
  done;
  (match V.Vptr.head_kind p with
   | `Direct -> ()
   | `Indirect -> Alcotest.fail "link should be shortcut after snapshot ends"
   | `Nil -> Alcotest.fail "unexpected nil")

(* --- Snapshot reads ---------------------------------------------------- *)

let test_snapshot_reads_history mode () =
  reset ();
  (* Pin history: announce the current stamp as an ongoing snapshot so
     shortcutting cannot splice away versions the test reads back. *)
  let pin = V.Stamp.read () in
  V.Done_stamp.announce pin;
  let d = desc mode in
  let p = V.Vptr.make d (Some (mk 0)) in
  let n = 10 in
  let stamps =
    List.init n (fun i ->
        let ts = V.Stamp.take () in
        let prev = V.Vptr.load p in
        Alcotest.(check bool) "update ok" true (V.Vptr.cas p prev (Some (mk (i + 1))));
        ts)
  in
  V.Done_stamp.withdraw ();
  List.iteri
    (fun i ts ->
      Alcotest.(check (option int))
        (Printf.sprintf "state before update %d" (i + 1))
        (Some i)
        (value_of (load_at p ts)))
    stamps;
  Alcotest.(check (option int)) "current state" (Some n) (value_of (V.Vptr.load p))

let test_with_snapshot_basic () =
  reset ();
  let d = desc V.Vptr.Ind_on_need in
  let p = V.Vptr.make d (Some (mk 1)) in
  let r = V.with_snapshot (fun () -> value_of (V.Vptr.load p)) in
  Alcotest.(check (option int)) "snapshot sees current" (Some 1) r

let test_with_snapshot_nested () =
  reset ();
  let d = desc V.Vptr.Ind_on_need in
  let p = V.Vptr.make d (Some (mk 1)) in
  let r =
    V.with_snapshot (fun () ->
        let outer = V.Snapshot.current_stamp () in
        V.with_snapshot (fun () ->
            Alcotest.(check (option int)) "inner shares stamp" outer
              (V.Snapshot.current_stamp ());
            value_of (V.Vptr.load p)))
  in
  Alcotest.(check (option int)) "nested result" (Some 1) r

let test_optimistic_abort_and_rerun () =
  reset ~scheme:V.Stamp.Opt_ts ();
  let d = desc V.Vptr.Ind_on_need in
  let p = V.Vptr.make d (Some (mk 1)) in
  (* Under OptTS the clock never moves on updates, so this fresh version
     carries a stamp equal to the clock — precisely the equal-stamp case
     that must abort an optimistic snapshot. *)
  V.Vptr.store p (Some (mk 2));
  let before = V.Stats.total V.Stats.snapshot_aborts in
  let runs = ref 0 in
  let r =
    V.with_snapshot (fun () ->
        incr runs;
        value_of (V.Vptr.load p))
  in
  Alcotest.(check (option int)) "result correct" (Some 2) r;
  Alcotest.(check int) "ran twice" 2 !runs;
  Alcotest.(check int) "abort counted" (before + 1)
    (V.Stats.total V.Stats.snapshot_aborts);
  (* the re-run bumped the clock past our stamp, so a second snapshot of
     the same state runs once *)
  let runs2 = ref 0 in
  ignore (V.with_snapshot (fun () -> incr runs2; V.Vptr.load p));
  Alcotest.(check int) "second snapshot optimistic pass" 1 !runs2

let test_check_abort_early_exit () =
  reset ~scheme:V.Stamp.Opt_ts ();
  let d = desc V.Vptr.Ind_on_need in
  let p = V.Vptr.make d (Some (mk 1)) in
  V.Vptr.store p (Some (mk 2));
  let reached_tail = ref 0 in
  let r =
    V.with_snapshot (fun () ->
        let v = value_of (V.Vptr.load p) in
        V.Snapshot.check_abort ();
        incr reached_tail;
        v)
  in
  Alcotest.(check (option int)) "result" (Some 2) r;
  Alcotest.(check int) "first pass exited early" 1 !reached_tail

(* --- Idempotent CAS under replay (Theorem 6.1) ------------------------- *)

let test_cas_replay_consistent () =
  reset ();
  let d = desc V.Vptr.Ind_on_need in
  let a = mk 1 and b = mk 2 in
  let p = V.Vptr.make d (Some a) in
  let log = Flock.Idem.create_log () in
  Flock.Idem.enter log;
  let r1 = V.Vptr.cas p (Some a) (Some b) in
  Flock.Idem.exit ();
  Alcotest.(check bool) "first run succeeds" true r1;
  let depth = V.Vptr.version_depth p in
  Flock.Idem.enter log;
  let r2 = V.Vptr.cas p (Some a) (Some b) in
  Flock.Idem.exit ();
  Alcotest.(check bool) "replay reports the same success" true r2;
  Alcotest.(check int) "replay installs nothing new" depth (V.Vptr.version_depth p);
  Alcotest.(check (option int)) "value" (Some 2) (value_of (V.Vptr.load p))

let test_cas_replay_after_subsequent_update () =
  reset ();
  let d = desc V.Vptr.Ind_on_need in
  let a = mk 1 and b = mk 2 and c = mk 3 in
  let p = V.Vptr.make d (Some a) in
  let log = Flock.Idem.create_log () in
  Flock.Idem.enter log;
  let r1 = V.Vptr.cas p (Some a) (Some b) in
  Flock.Idem.exit ();
  Alcotest.(check bool) "first run succeeds" true r1;
  (* the location moves on… *)
  Alcotest.(check bool) "subsequent cas" true (V.Vptr.cas p (Some b) (Some c));
  (* …and a lagging helper replays the original critical section *)
  Flock.Idem.enter log;
  let r2 = V.Vptr.cas p (Some a) (Some b) in
  Flock.Idem.exit ();
  Alcotest.(check bool) "lagging replay still reports success" true r2;
  Alcotest.(check (option int)) "later update not clobbered" (Some 3)
    (value_of (V.Vptr.load p))

let test_store_norace_replay () =
  reset ();
  let d = desc V.Vptr.Ind_on_need in
  let p = V.Vptr.make d (Some (mk 1)) in
  let b = mk 2 and c = mk 3 in
  let log = Flock.Idem.create_log () in
  Flock.Idem.enter log;
  V.Vptr.store_norace p (Some b);
  Flock.Idem.exit ();
  V.Vptr.store_norace p (Some c);
  Flock.Idem.enter log;
  V.Vptr.store_norace p (Some b);
  Flock.Idem.exit ();
  Alcotest.(check (option int)) "lagging norace store is inert" (Some 3)
    (value_of (V.Vptr.load p))

(* Regression: the side-effect counters inside critical sections must be
   {e exact} under helping, not merely approximate.  Every helper replays
   the same section with the same Idem log, so the gauge-bearing effects
   (indirect links created, retirements, truncations) are gated through
   {!Flock.Idem.claim} — exactly one pass per log position wins.  Before
   that gate, each replay re-incremented the counters, which skewed the
   reclamation gauges the observability layer exports. *)
let test_helping_counters_exact () =
  reset ();
  let d = desc V.Vptr.Indirect in
  let a = mk 1 and b = mk 2 and c = mk 3 in
  let p = V.Vptr.make d (Some a) in
  (* one committed update so the head is an indirect link: the section
     under test then both creates a link and retires the old one *)
  Alcotest.(check bool) "setup cas" true (V.Vptr.cas p (Some a) (Some b));
  let log = Flock.Idem.create_log () in
  Flock.Idem.enter log;
  let r1 = V.Vptr.cas p (Some b) (Some c) in
  Flock.Idem.exit ();
  Alcotest.(check bool) "section succeeds" true r1;
  let ind = V.Stats.total V.Stats.indirect_created in
  let ret = Flock.Lock.retire_count () in
  let trunc = V.Stats.total V.Stats.truncations in
  Alcotest.(check bool) "section created an indirect link" true (ind > 0);
  (* three lagging helpers replay the identical critical section *)
  for _ = 1 to 3 do
    Flock.Idem.enter log;
    ignore (V.Vptr.cas p (Some b) (Some c));
    Flock.Idem.exit ()
  done;
  Alcotest.(check int) "indirect_created exact under helping" ind
    (V.Stats.total V.Stats.indirect_created);
  Alcotest.(check int) "retires exact under helping" ret
    (Flock.Lock.retire_count ());
  Alcotest.(check int) "truncations exact under helping" trunc
    (V.Stats.total V.Stats.truncations)

(* Same gate on the direct-install counter: a Plain-mode replayed store
   must not recount its installation. *)
let test_helping_direct_installed_exact () =
  reset ();
  let d = desc V.Vptr.Plain in
  let p = V.Vptr.make d (Some (mk 1)) in
  let log = Flock.Idem.create_log () in
  Flock.Idem.enter log;
  V.Vptr.store_norace p (Some (mk 2));
  Flock.Idem.exit ();
  let direct = V.Stats.total V.Stats.direct_installed in
  for _ = 1 to 3 do
    Flock.Idem.enter log;
    V.Vptr.store_norace p (Some (mk 2));
    Flock.Idem.exit ()
  done;
  Alcotest.(check int) "direct_installed exact under helping" direct
    (V.Stats.total V.Stats.direct_installed)

(* --- Version-chain truncation ------------------------------------------ *)

let test_truncation_bounds_chains () =
  reset ();
  let d = desc V.Vptr.Ind_on_need in
  let p = V.Vptr.make d (Some (mk 0)) in
  for i = 1 to 500 do
    V.Vptr.store_norace p (Some (mk i));
    ignore (V.Vptr.load p)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "chain stays short (depth %d)" (V.Vptr.version_depth p))
    true
    (V.Vptr.version_depth p <= 4);
  Alcotest.(check bool) "truncations happened" true
    (V.Stats.total V.Stats.truncations > 0)

let test_truncation_respects_snapshots () =
  reset ();
  let d = desc V.Vptr.Ind_on_need in
  let p = V.Vptr.make d (Some (mk 0)) in
  let pin = V.Stamp.take () in
  V.Done_stamp.announce pin;
  for i = 1 to 50 do
    ignore (V.Stamp.take ());
    V.Vptr.store_norace p (Some (mk i));
    ignore (V.Vptr.load p)
  done;
  (* the pinned snapshot still sees the original value *)
  Alcotest.(check (option int)) "pinned snapshot intact" (Some 0)
    (value_of (load_at p pin));
  V.Done_stamp.withdraw ();
  Alcotest.(check bool) "history retained while pinned" true
    (V.Vptr.version_depth p > 10)

(* --- Done stamp -------------------------------------------------------- *)

let test_done_stamp_bounds () =
  reset ();
  let d0 = V.Done_stamp.refresh () in
  Alcotest.(check bool) "bounded by clock" true (d0 <= V.Stamp.read ());
  let ts = V.Stamp.take () in
  V.Done_stamp.announce ts;
  Alcotest.(check bool) "bounded by active snapshot" true (V.Done_stamp.refresh () <= ts);
  V.Done_stamp.withdraw ();
  ignore (V.Stamp.take ());
  Alcotest.(check bool) "advances after withdraw" true (V.Done_stamp.refresh () > ts - 1)

let test_done_stamp_monotone () =
  reset ();
  let a = V.Done_stamp.refresh () in
  ignore (V.Stamp.take ());
  let b = V.Done_stamp.refresh () in
  Alcotest.(check bool) "monotone" true (b >= a)

(* --- Concurrent snapshot guarantees ------------------------------------ *)

(* Verlib's contract: every load inside a with_snapshot observes the value
   its location held at one fixed stamp.  Three consequences are tested
   under concurrency, for each timestamp scheme:

   1. re-reading a location within one snapshot yields the same value even
      while a writer keeps updating it (per-location fixed point);
   2. for two locations updated in the strict sequence p:=i then q:=i,
      every snapshot sees q <= p <= q + 1 (a consistent temporal cut);
   3. a multi-field invariant published through a single versioned write
      is always seen intact (atomic publication, the pattern all the
      paper's data structures use for their linearization points). *)

type pair = { left : int; right : int; pmeta : pair V.Vtypes.meta }

let mk_pair l r = { left = l; right = r; pmeta = V.Vtypes.fresh_meta () }

let pair_desc () = V.Vptr.make_desc ~meta_of:(fun p -> p.pmeta) ~mode:V.Vptr.Ind_on_need

let run_writer_readers ~writer ~reader =
  let stop = Atomic.make false in
  let w = Domain.spawn (fun () -> writer stop) in
  let r2 = Domain.spawn (fun () -> reader ()) in
  let v1 = reader () in
  let v2 = Domain.join r2 in
  Atomic.set stop true;
  Domain.join w;
  v1 + v2

let test_snapshot_fixed_point scheme () =
  reset ~scheme ();
  let d = desc V.Vptr.Ind_on_need in
  let p = V.Vptr.make d (Some (mk 0)) in
  let writer stop =
    let i = ref 1 in
    while not (Atomic.get stop) do
      V.Vptr.store p (Some (mk !i));
      incr i
    done
  in
  let reader () =
    let violations = ref 0 in
    for _ = 1 to 2000 do
      (* the torn-check must be the snapshot's result: under OptTS an
         aborted optimistic pass may legitimately observe a torn state
         before the pessimistic re-run *)
      let consistent =
        V.with_snapshot (fun () ->
            let a = value_of (V.Vptr.load p) in
            Thread.yield ();
            let b = value_of (V.Vptr.load p) in
            a = b)
      in
      if not consistent then incr violations
    done;
    !violations
  in
  Alcotest.(check int) "value fixed within a snapshot" 0
    (run_writer_readers ~writer ~reader)

let test_snapshot_temporal_cut scheme () =
  reset ~scheme ();
  let d = desc V.Vptr.Ind_on_need in
  let p = V.Vptr.make d (Some (mk 0)) in
  let q = V.Vptr.make d (Some (mk 0)) in
  let writer stop =
    let i = ref 1 in
    while not (Atomic.get stop) do
      V.Vptr.store p (Some (mk !i));
      V.Vptr.store q (Some (mk !i));
      incr i
    done
  in
  let reader () =
    let violations = ref 0 in
    for _ = 1 to 2000 do
      let consistent =
        V.with_snapshot (fun () ->
            (* read in the order that makes stale values visible *)
            let b = value_of (V.Vptr.load q) in
            let a = value_of (V.Vptr.load p) in
            match (a, b) with
            | Some a, Some b -> b <= a && a <= b + 1
            | _ -> false)
      in
      if not consistent then incr violations
    done;
    !violations
  in
  Alcotest.(check int) "snapshots are consistent cuts" 0
    (run_writer_readers ~writer ~reader)

let test_snapshot_atomic_publication scheme () =
  reset ~scheme ();
  let d = pair_desc () in
  let p = V.Vptr.make d (Some (mk_pair 40 60)) in
  let writer stop =
    let r = ref 1 in
    while not (Atomic.get stop) do
      let x = 1 + (!r * 7919 mod 99) in
      incr r;
      V.Vptr.store p (Some (mk_pair x (100 - x)))
    done
  in
  let reader () =
    let violations = ref 0 in
    for _ = 1 to 2000 do
      let sum =
        V.with_snapshot (fun () ->
            match V.Vptr.load p with
            | Some pr -> pr.left + pr.right
            | None -> -1)
      in
      if sum <> 100 then incr violations
    done;
    !violations
  in
  Alcotest.(check int) "single-swing publication is atomic" 0
    (run_writer_readers ~writer ~reader)

(* --- qcheck: model-based history semantics ------------------------------ *)

(* A random single-threaded program over one versioned pointer, recording
   after every operation the stamp at which the resulting state became
   observable.  Replaying every recorded stamp through load_at must
   reproduce the exact history.  Object reuse is included so the property
   also exercises indirect links and metadata sharing. *)
type vcmd = Store_fresh of int | Store_reused | Store_null | Cas_fresh of int

let vcmd_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun v -> Store_fresh v) (int_bound 1000));
        (2, return Store_reused);
        (1, return Store_null);
        (3, map (fun v -> Cas_fresh v) (int_bound 1000));
      ])

let vcmd_print = function
  | Store_fresh v -> Printf.sprintf "store (fresh %d)" v
  | Store_reused -> "store (reused)"
  | Store_null -> "store null"
  | Cas_fresh v -> Printf.sprintf "cas (fresh %d)" v

let vcmds_arb =
  QCheck.make
    ~print:QCheck.Print.(list vcmd_print)
    QCheck.Gen.(list_size (int_bound 60) vcmd_gen)

let history_faithful mode cmds =
  reset ();
  (* pin the done stamp so truncation/shortcutting cannot reclaim the
     history this test replays *)
  let pin = V.Stamp.read () in
  V.Done_stamp.announce pin;
  let d = desc mode in
  let p = V.Vptr.make d (Some (mk 0)) in
  (* a second pointer supplies already-claimed objects for reuse *)
  let donor = ref [ mk 7777 ] in
  List.iter (fun o -> ignore (V.Vptr.make d (Some o))) !donor;
  let history = ref [] in
  let record () = history := (V.Stamp.take (), value_of (V.Vptr.load p)) :: !history in
  record ();
  List.iter
    (fun c ->
      (match c with
       | Store_fresh v ->
           let o = mk v in
           V.Vptr.store p (Some o);
           donor := o :: !donor
       | Store_reused ->
           let o = List.nth !donor 0 in
           V.Vptr.store p (Some o)
       | Store_null -> V.Vptr.store p None
       | Cas_fresh v ->
           let cur = V.Vptr.load p in
           ignore (V.Vptr.cas p cur (Some (mk v))));
      record ())
    cmds;
  (* Replay oldest-first: [load_at] announces the replayed stamp in this
     domain's (single) announcement slot, displacing the pin, so the done
     stamp may legitimately rise to each replayed stamp — after which
     versions older than it may be truncated.  Real programs never hold
     two snapshots in one domain, so this ordering mirrors legal usage. *)
  let chronological = List.sort compare (List.rev !history) in
  let ok =
    List.for_all (fun (ts, expect) -> value_of (load_at p ts) = expect) chronological
  in
  V.Done_stamp.withdraw ();
  ok

let qcheck_history_tests =
  List.map
    (fun mode ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:("history faithful (" ^ V.Vptr.mode_name mode ^ ")")
           ~count:80 vcmds_arb (history_faithful mode)))
    V.Vptr.[ Indirect; No_shortcut; Ind_on_need ]

let case name f = Alcotest.test_case name `Quick f

let mode_cases name f =
  List.map
    (fun m -> case (Printf.sprintf "%s (%s)" name (V.Vptr.mode_name m)) (f m))
    versioned_modes

let () =
  Alcotest.run "verlib"
    [
      ( "stamp",
        [
          case "QueryTS" test_query_ts;
          case "UpdateTS" test_update_ts;
          case "HwTS" test_hw_ts;
          case "NoStamp" test_no_stamp;
          case "TL2-TS" test_tl2_ts;
        ] );
      ( "vptr-basics",
        mode_cases "load/store/cas" test_load_store_cas
        @ mode_cases "null handling" test_null_handling
        @ mode_cases "no-op cas" test_noop_cas
        @ [
            case "load/store/cas (Non-versioned)"
              (test_load_store_cas V.Vptr.Plain);
          ] );
      ( "indirection",
        [
          case "fresh object installs direct" test_fresh_object_direct;
          case "reused object needs a link" test_reused_object_indirect;
          case "initialisation shares metadata" test_initialisation_shares_meta;
          case "shortcut removes indirection" test_shortcut_removes_indirection;
          case "NoShortcut keeps the link" test_no_shortcut_mode_keeps_link;
          case "shortcut blocked by live snapshot" test_shortcut_blocked_by_snapshot;
        ] );
      ( "snapshot",
        [
          case "history (Indirect)" (test_snapshot_reads_history V.Vptr.Indirect);
          case "history (NoShortcut)" (test_snapshot_reads_history V.Vptr.No_shortcut);
          case "history (IndOnNeed, pinned)"
            (test_snapshot_reads_history V.Vptr.Ind_on_need);
          case "with_snapshot basic" test_with_snapshot_basic;
          case "with_snapshot nested" test_with_snapshot_nested;
          case "optimistic abort and re-run" test_optimistic_abort_and_rerun;
          case "check_abort early exit" test_check_abort_early_exit;
        ] );
      ( "idempotent-cas",
        [
          case "replay agrees" test_cas_replay_consistent;
          case "lagging replay after later update" test_cas_replay_after_subsequent_update;
          case "lagging store_norace is inert" test_store_norace_replay;
          case "counters exact under helping" test_helping_counters_exact;
          case "direct_installed exact under helping"
            test_helping_direct_installed_exact;
        ] );
      ("qcheck-history", qcheck_history_tests);
      ( "truncation",
        [
          case "bounds chains without snapshots" test_truncation_bounds_chains;
          case "respects live snapshots" test_truncation_respects_snapshots;
        ] );
      ( "done-stamp",
        [
          case "bounds" test_done_stamp_bounds;
          case "monotone" test_done_stamp_monotone;
        ] );
      ( "atomicity",
        List.concat_map
          (fun scheme ->
            let n = V.Stamp.scheme_name scheme in
            [
              case (n ^ ": fixed point") (test_snapshot_fixed_point scheme);
              case (n ^ ": temporal cut") (test_snapshot_temporal_cut scheme);
              case (n ^ ": atomic publication")
                (test_snapshot_atomic_publication scheme);
            ])
          V.Stamp.[ Query_ts; Update_ts; Hw_ts; Tl2_ts; Opt_ts ] );
    ]
