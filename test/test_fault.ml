(* Tests for the chaos layer (lib/fault) and the resilience machinery
   it exercises: plan grammar round-trips, deterministic seeded replay
   (qcheck), trigger semantics, the Theorem 6.1 crash-stop-locker
   schedule (peers progress via helping), a stalled reclaimer driving
   [epoch_lag] up and back down, wire-fault fuzz against a live server
   proving effective exactly-once for idempotent commands, and the
   [-BUSY] admission door with recovery. *)

module F = Fault
module S = Server
module P = Server.Protocol
module C = Server.Client

(* A private point for trigger tests — never hit by library code. *)
let tp = F.Point.make "test.point"

let mkplan ?(seed = 1) rules = F.plan ~name:"test" ~seed rules

let rule point trigger action =
  { F.r_point = point; r_trigger = trigger; r_action = action }

(* --- plan grammar ------------------------------------------------------- *)

let test_plan_roundtrip () =
  (* every preset round-trips through the grammar *)
  List.iter
    (fun (name, spec) ->
      match F.plan_of_string spec with
      | Error e -> Alcotest.fail (name ^ ": " ^ e)
      | Ok p -> (
          let s = F.plan_to_string p in
          match F.plan_of_string s with
          | Error e -> Alcotest.fail (name ^ " (canonical): " ^ e)
          | Ok p' ->
              Alcotest.(check string)
                (name ^ " canonical fixpoint") s (F.plan_to_string p')))
    F.presets;
  (* a spec exercising every action and trigger *)
  let spec =
    "seed=9;a:pause=5@once;b:stall@nth=3;c:yield=7@every=2;d:fail=boom@p=0.25;\
     e:shortwrite=4;f:econnreset@always;g:eagain=2;h:partition=250;\
     i:dup@p=0.5;j:reorder"
  in
  match F.plan_of_string spec with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int) "seed parsed" 9 p.F.p_seed;
      Alcotest.(check int) "ten rules" 10 (List.length p.F.p_rules);
      let s = F.plan_to_string p in
      (match F.plan_of_string s with
       | Ok p' ->
           Alcotest.(check string) "canonical fixpoint" s (F.plan_to_string p')
       | Error e -> Alcotest.fail e)

let test_plan_errors () =
  let bad spec =
    match F.plan_of_string spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted bad spec: " ^ spec)
  in
  bad "";
  bad "point-without-action";
  bad "x:frobnicate";
  bad "x:pause=notanumber";
  bad "x:stall@p=2.5";
  bad "x:stall@nth=0";
  bad "x:partition=0";
  bad "x:partition=nope";
  (* One action per rule: a comma'd action list is rejected, and the
     error names the offending point and the repeated-point rewrite
     (the grammar's documented limitation, docs/RESILIENCE.md). *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match F.plan_of_string "seed=1;repl.send:dup,reorder" with
   | Ok _ -> Alcotest.fail "accepted a comma'd action list"
   | Error e ->
       Alcotest.(check bool)
         ("error names the point: " ^ e)
         true
         (contains e "repl.send" && contains e "exactly one action"));
  (match F.find_plan "no-such-preset" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "find_plan accepted an unknown name");
  match F.find_plan "crash-stop-locker" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("preset lookup: " ^ e)

(* --- trigger semantics -------------------------------------------------- *)

let count_fires plan n =
  F.arm plan;
  let before = F.fired_at "test.point" in
  for _ = 1 to n do
    F.hit tp
  done;
  F.disarm ();
  F.fired_at "test.point" - before

let test_trigger_once () =
  Alcotest.(check int) "once fires once" 1
    (count_fires (mkplan [ rule "test.point" F.Once (F.Pause 0.) ]) 10)

let test_trigger_nth_every () =
  Alcotest.(check int) "nth=3 fires once in 10" 1
    (count_fires (mkplan [ rule "test.point" (F.Nth 3) (F.Pause 0.) ]) 10);
  Alcotest.(check int) "nth=3 never fires in 2" 0
    (count_fires (mkplan [ rule "test.point" (F.Nth 3) (F.Pause 0.) ]) 2);
  Alcotest.(check int) "every=4 fires thrice in 12" 3
    (count_fires (mkplan [ rule "test.point" (F.Every 4) (F.Pause 0.) ]) 12)

let test_pattern_match () =
  Alcotest.(check int) "prefix pattern matches" 10
    (count_fires (mkplan [ rule "test.*" F.Always (F.Pause 0.) ]) 10);
  Alcotest.(check int) "wildcard matches" 10
    (count_fires (mkplan [ rule "*" F.Always (F.Pause 0.) ]) 10);
  Alcotest.(check int) "other point does not" 0
    (count_fires (mkplan [ rule "lock.acquire" F.Always (F.Pause 0.) ]) 10)

let test_partition_latch () =
  F.arm (mkplan [ rule "test.point" F.Once (F.Partition 0.25) ]);
  (match F.hit tp with
   | () -> Alcotest.fail "partition did not raise"
   | exception F.Injected _ -> ());
  (* the point stays down for the window: every hit and feed_check
     raises, not just the triggering one (reconnects must fail too) *)
  (match F.hit tp with
   | () -> Alcotest.fail "down window did not hold"
   | exception F.Injected _ -> ());
  (match F.feed_check tp with
   | exception F.Injected _ -> ()
   | _ -> Alcotest.fail "feed_check ignored the down window");
  Unix.sleepf 0.3;
  (* window elapsed; the Once trigger is consumed, so the point heals *)
  F.hit tp;
  F.disarm ();
  (* disarm heals a still-open window (generation scoped) *)
  F.arm (mkplan [ rule "test.point" F.Once (F.Partition 60.) ]);
  (match F.hit tp with
   | () -> Alcotest.fail "partition did not raise"
   | exception F.Injected _ -> ());
  F.disarm ();
  F.arm (mkplan [ rule "test.point" (F.Nth 99) (F.Pause 0.) ]);
  F.hit tp;
  F.disarm ()

let test_feed_check_surfaces_stream_actions () =
  F.arm (mkplan [ rule "test.point" F.Always F.Dup ]);
  (match F.feed_check tp with
   | Some F.Dup -> ()
   | _ -> Alcotest.fail "expected Some Dup");
  (* [hit] treats the stream-layer actions as no-ops *)
  F.hit tp;
  F.disarm ();
  F.arm (mkplan [ rule "test.point" F.Always F.Reorder ]);
  (match F.feed_check tp with
   | Some F.Reorder -> ()
   | _ -> Alcotest.fail "expected Some Reorder");
  F.disarm ();
  (match F.feed_check tp with
   | None -> ()
   | Some _ -> Alcotest.fail "disarmed feed_check must be None")

let test_fail_action () =
  F.arm (mkplan [ rule "test.point" F.Always (F.Fail (F.Injected "boom")) ]);
  (match F.hit tp with
   | () -> Alcotest.fail "fail rule did not raise"
   | exception F.Injected m -> Alcotest.(check string) "message" "boom" m);
  F.disarm ()

let test_io_check () =
  F.arm (mkplan [ rule "test.point" F.Always (F.Short_write 5) ]);
  (match F.io_check tp with
   | Some (F.Short_write 5) -> ()
   | _ -> Alcotest.fail "io_check did not surface the short write");
  (* [hit] ignores I/O actions: no raise, still counted *)
  let before = F.fired_at "test.point" in
  F.hit tp;
  Alcotest.(check int) "hit counts I/O rules" (before + 1)
    (F.fired_at "test.point");
  F.disarm ();
  Alcotest.(check bool) "disarmed io_check is None" true (F.io_check tp = None)

let test_disarmed_noop () =
  F.disarm ();
  let before = F.fired_total () in
  for _ = 1 to 10_000 do
    F.hit tp
  done;
  Alcotest.(check int) "no fires while disarmed" before (F.fired_total ());
  Alcotest.(check int) "nobody parked" 0 (F.stalled_now ())

(* --- qcheck: seeded replay determinism ---------------------------------- *)

let fire_bits plan n =
  F.arm plan;
  let bits = Array.make n false in
  let before = ref (F.fired_at "test.point") in
  for i = 0 to n - 1 do
    F.hit tp;
    let now = F.fired_at "test.point" in
    bits.(i) <- now > !before;
    before := now
  done;
  F.disarm ();
  bits

let test_prob_replay_deterministic =
  QCheck.Test.make ~count:50 ~name:"seeded Prob plans replay identically"
    QCheck.(pair small_nat (float_range 0.05 0.95))
    (fun (seed, p) ->
      let plan = mkplan ~seed [ rule "test.point" (F.Prob p) (F.Pause 0.) ] in
      fire_bits plan 100 = fire_bits plan 100)

let test_prob_rate_sane () =
  let plan = mkplan ~seed:42 [ rule "test.point" (F.Prob 0.5) (F.Pause 0.) ] in
  let fired =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
      (fire_bits plan 400)
  in
  Alcotest.(check bool) "p=0.5 fires roughly half the time" true
    (fired > 100 && fired < 300)

(* --- Theorem 6.1: crash-stop locker, peers progress via helping --------- *)

let wait_until ?(timeout = 5.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

let test_crash_stop_helping () =
  let open Flock in
  let lock = Lock.create ~mode:Lock.Lock_free () in
  let counter = Fatomic.make 0 in
  let incr_cs () = Fatomic.store counter (Fatomic.load counter + 1) in
  F.arm (mkplan [ rule "lock.acquire" F.Once F.Stall_forever ]);
  let victim = Domain.spawn (fun () -> Lock.with_lock lock incr_cs) in
  Alcotest.(check bool) "victim parked inside its critical section" true
    (wait_until (fun () -> F.stalled_now () = 1));
  let helps0 = Lock.help_count () in
  let peers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 50 do
              Lock.with_lock lock incr_cs
            done))
  in
  List.iter Domain.join peers;
  (* peers finished while the lock owner is still crash-stopped: the
     first peer helped the victim's section through, then everyone made
     their own progress — Theorem 6.1's liveness claim. *)
  Alcotest.(check int) "victim still parked" 1 (F.stalled_now ());
  Alcotest.(check int) "every increment exactly once" 151
    (Fatomic.load counter);
  Alcotest.(check bool) "the helping path ran" true
    (Lock.help_count () > helps0);
  F.disarm ();
  Domain.join victim;
  Alcotest.(check int) "victim released on disarm" 0 (F.stalled_now ())

(* --- stalled reclaimer: epoch_lag climbs, then recovers ----------------- *)

let test_stalled_reclaimer () =
  let open Flock in
  let fired0 = F.fired_at "epoch.enter" in
  F.arm (mkplan [ rule "epoch.enter" F.Once (F.Pause 0.3) ]);
  let laggard = Domain.spawn (fun () -> Epoch.with_epoch (fun () -> ())) in
  Alcotest.(check bool) "laggard pinned its epoch" true
    (wait_until (fun () -> F.fired_at "epoch.enter" > fired0));
  (* churn epochs from the main domain while the laggard is pinned *)
  let max_lag = ref 0 in
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < 0.2 do
    Epoch.with_epoch (fun () -> ());
    max_lag := max !max_lag (Epoch.epoch_lag ())
  done;
  Domain.join laggard;
  F.disarm ();
  Alcotest.(check bool) "epoch_lag climbed while the reclaimer stalled" true
    (!max_lag >= 1);
  for _ = 1 to 4 do
    Epoch.with_epoch (fun () -> ())
  done;
  Alcotest.(check int) "epoch_lag recovered after release" 0 (Epoch.epoch_lag ())

(* --- live server helpers ------------------------------------------------ *)

let start_server ?(domains = 4) ?(census_interval = 0.) ?(max_conns = 0) map =
  Verlib.reset ();
  let mount = S.Mount.mount ~n_hint:1024 map in
  let config =
    {
      S.default_config with
      S.port = 0;
      domains;
      queue_depth = 16;
      census_interval;
      max_conns;
    }
  in
  let srv = S.create ~config mount in
  S.start srv;
  srv

(* --- wire-fault fuzz: idempotent retry is effectively exactly-once ------ *)

let test_wire_fuzz_exactly_once () =
  let srv = start_server (module Dstruct.Btree) in
  let port = S.port srv in
  let finally () =
    F.disarm ();
    S.stop srv
  in
  Fun.protect ~finally @@ fun () ->
  F.arm
    (mkplan ~seed:23
       [
         rule "client.write" (F.Prob 0.12) F.Econnreset;
         rule "client.read" (F.Prob 0.12) F.Econnreset;
         rule "server.write" (F.Prob 0.08) (F.Short_write 7);
       ]);
  let rt = C.connect_rt ~port ~read_timeout:1.0 ~max_attempts:40 ~seed:7 () in
  let n = 120 in
  for k = 1 to n do
    match C.rt_request rt (P.Put (k, k * 10)) with
    | Ok (P.Ok_ | P.Exists) -> ()
    | Ok r -> Alcotest.fail ("PUT: " ^ P.pp_reply r)
    | Error e -> Alcotest.fail ("PUT: " ^ e)
  done;
  for k = 1 to n do
    match C.rt_request rt (P.Get k) with
    | Ok (P.Int v) ->
        if v <> k * 10 then
          Alcotest.failf "GET %d: value %d survived as the wrong version" k v
    | Ok r -> Alcotest.fail ("GET: " ^ P.pp_reply r)
    | Error e -> Alcotest.fail ("GET: " ^ e)
  done;
  let retries, _busy = C.rt_stats rt in
  C.rt_close rt;
  F.disarm ();
  (* audit over a clean connection: every key exactly once *)
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  (match C.request conn P.Size with
   | Ok (P.Int sz) -> Alcotest.(check int) "every key exactly once" n sz
   | Ok r -> Alcotest.fail ("SIZE: " ^ P.pp_reply r)
   | Error e -> Alcotest.fail ("SIZE: " ^ e));
  Alcotest.(check bool) "the flaky wire actually forced retries" true
    (retries > 0)

(* --- crash-stop locker against a live served structure ------------------ *)

let test_crash_stop_served_census () =
  let srv =
    start_server ~domains:4 ~census_interval:0.02 (module Dstruct.Btree)
  in
  let port = S.port srv in
  (match F.find_plan "crash-stop-locker" with
   | Ok p -> F.arm p
   | Error e -> Alcotest.fail e);
  let failed = ref 0 in
  (Fun.protect ~finally:F.disarm @@ fun () ->
   let rt = C.connect_rt ~port ~read_timeout:0.5 ~max_attempts:40 ~seed:3 () in
   for k = 1 to 200 do
     match C.rt_request rt (P.Put (k, k)) with
     | Ok (P.Ok_ | P.Exists) -> ()
     | _ -> incr failed
   done;
   C.rt_close rt);
  (* disarmed: the parked worker resumes, the drain below joins it *)
  Unix.sleepf 0.05;
  S.stop srv;
  Alcotest.(check int) "puts landed despite the crash-stopped locker" 0 !failed;
  Alcotest.(check bool) "the fault fired" true (F.fired_at "lock.acquire" > 0);
  Alcotest.(check int) "no one left parked" 0 (F.stalled_now ());
  Alcotest.(check int) "census clean" 0 (S.census_violations_total srv)

(* --- the -BUSY admission door + recovery -------------------------------- *)

let test_busy_door () =
  let srv = start_server ~domains:1 ~max_conns:1 (module Dstruct.Btree) in
  let port = S.port srv in
  Fun.protect ~finally:(fun () -> S.stop srv) @@ fun () ->
  let held = C.connect ~retries:20 ~port () in
  (match C.request held P.Ping with
   | Ok P.Pong -> ()
   | _ -> Alcotest.fail "held connection ping");
  (* the door refuses a second simultaneous connection with -BUSY *)
  let c2 = C.connect ~port () in
  (match C.read_reply c2 with
   | Ok (P.Busy ms) ->
       Alcotest.(check bool) "retry hint present" true (ms >= 0)
   | Ok r -> Alcotest.fail ("expected -BUSY at the door, got " ^ P.pp_reply r)
   | Error e -> Alcotest.fail ("door reply: " ^ e));
  C.close c2;
  Alcotest.(check bool) "shed counted" true (S.shed_count srv >= 1);
  (* release the held connection: the next arrival is served (recovery) *)
  ignore (C.request held P.Quit);
  C.close held;
  let recovered =
    wait_until ~timeout:5.0 (fun () ->
        let c = C.connect ~retries:20 ~port () in
        let ok =
          match C.request c P.Ping with Ok P.Pong -> true | _ -> false
        in
        C.close c;
        ok)
  in
  Alcotest.(check bool) "served again after the held conn quit" true recovered

(* --- suite -------------------------------------------------------------- *)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ test_prob_replay_deterministic ]

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "grammar round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "grammar rejects junk" `Quick test_plan_errors;
        ] );
      ( "triggers",
        [
          Alcotest.test_case "once" `Quick test_trigger_once;
          Alcotest.test_case "nth / every" `Quick test_trigger_nth_every;
          Alcotest.test_case "point patterns" `Quick test_pattern_match;
          Alcotest.test_case "fail raises" `Quick test_fail_action;
          Alcotest.test_case "partition latches a down window" `Quick
            test_partition_latch;
          Alcotest.test_case "feed_check surfaces stream actions" `Quick
            test_feed_check_surfaces_stream_actions;
          Alcotest.test_case "io_check surfaces I/O actions" `Quick
            test_io_check;
          Alcotest.test_case "disarmed is a no-op" `Quick test_disarmed_noop;
        ] );
      ("determinism", qsuite @ [ Alcotest.test_case "p=0.5 rate sane" `Quick test_prob_rate_sane ]);
      ( "crash-stop",
        [
          Alcotest.test_case "peers progress via helping (Thm 6.1)" `Quick
            test_crash_stop_helping;
          Alcotest.test_case "served structure, census clean" `Quick
            test_crash_stop_served_census;
        ] );
      ( "reclamation",
        [
          Alcotest.test_case "stalled reclaimer: lag up then down" `Quick
            test_stalled_reclaimer;
        ] );
      ( "wire",
        [
          Alcotest.test_case "flaky wire is exactly-once in effect" `Quick
            test_wire_fuzz_exactly_once;
          Alcotest.test_case "-BUSY door + recovery" `Quick test_busy_door;
        ] );
    ]
