(* Tests for the FLOCK substrate: idempotence logs, idempotent atomics,
   blocking and lock-free locks, helping, and epochs. *)

let test_backoff () =
  let b = Flock.Backoff.create ~limit:3 () in
  for _ = 1 to 10 do
    Flock.Backoff.once b
  done;
  Flock.Backoff.reset b;
  Flock.Backoff.once b

let test_registry_id_stable () =
  let id1 = Flock.Registry.my_id () in
  let id2 = Flock.Registry.my_id () in
  Alcotest.(check int) "same id within a domain" id1 id2;
  Alcotest.(check bool) "registered" true (Flock.Registry.registered_count () >= 1)

let test_registry_distinct_ids () =
  let id_main = Flock.Registry.my_id () in
  let other = Domain.spawn (fun () -> Flock.Registry.my_id ()) in
  let id_other = Domain.join other in
  Alcotest.(check bool) "distinct ids" true (id_main <> id_other)

let test_registry_id_recycled () =
  let d = Domain.spawn (fun () -> Flock.Registry.my_id ()) in
  let id1 = Domain.join d in
  let d2 = Domain.spawn (fun () -> Flock.Registry.my_id ()) in
  let id2 = Domain.join d2 in
  Alcotest.(check int) "slot recycled after domain exit" id1 id2

(* --- Idem ------------------------------------------------------------ *)

let test_once_outside_frame () =
  let calls = ref 0 in
  let v = Flock.Idem.once (fun () -> incr calls; 42) in
  Alcotest.(check int) "value" 42 v;
  Alcotest.(check int) "runs directly outside a frame" 1 !calls

let test_once_replay_agrees () =
  (* Two sequential replays of the same log must see the first replay's
     values, even if the underlying computation would now differ. *)
  let log = Flock.Idem.create_log () in
  let source = ref 10 in
  Flock.Idem.enter log;
  let a = Flock.Idem.once (fun () -> !source) in
  let b = Flock.Idem.once (fun () -> !source + 1) in
  Flock.Idem.exit ();
  source := 99;
  Flock.Idem.enter log;
  let a' = Flock.Idem.once (fun () -> !source) in
  let b' = Flock.Idem.once (fun () -> !source + 1) in
  Flock.Idem.exit ();
  Alcotest.(check int) "first slot replayed" a a';
  Alcotest.(check int) "second slot replayed" b b';
  Alcotest.(check int) "original first" 10 a;
  Alcotest.(check int) "original second" 11 b

let test_once_many_slots_cross_chunks () =
  let log = Flock.Idem.create_log () in
  let n = 200 (* > chunk size, forces chunk chaining *) in
  Flock.Idem.enter log;
  let xs = List.init n (fun i -> Flock.Idem.once (fun () -> i * 3)) in
  Flock.Idem.exit ();
  Flock.Idem.enter log;
  let ys = List.init n (fun i -> Flock.Idem.once (fun () -> i * 1000)) in
  Flock.Idem.exit ();
  Alcotest.(check (list int)) "replay across chunks" xs ys;
  Alcotest.(check (list int)) "values from first run" (List.init n (fun i -> i * 3)) xs

let test_frame_nesting () =
  let outer = Flock.Idem.create_log () in
  let inner = Flock.Idem.create_log () in
  Alcotest.(check int) "depth 0" 0 (Flock.Idem.frame_depth ());
  Flock.Idem.enter outer;
  Alcotest.(check int) "depth 1" 1 (Flock.Idem.frame_depth ());
  let a = Flock.Idem.once (fun () -> 1) in
  Flock.Idem.enter inner;
  let b = Flock.Idem.once (fun () -> 2) in
  Flock.Idem.exit ();
  let c = Flock.Idem.once (fun () -> 3) in
  Flock.Idem.exit ();
  Alcotest.(check (list int)) "nested values" [ 1; 2; 3 ] [ a; b; c ];
  (* replay: outer log must hold slots for a and c only *)
  Flock.Idem.enter outer;
  let a' = Flock.Idem.once (fun () -> 100) in
  let c' = Flock.Idem.once (fun () -> 300) in
  Flock.Idem.exit ();
  Alcotest.(check (list int)) "outer replay skips inner slots" [ 1; 3 ] [ a'; c' ]

(* --- Fatomic --------------------------------------------------------- *)

let test_fatomic_basic () =
  let c = Flock.Fatomic.make 5 in
  Alcotest.(check int) "initial" 5 (Flock.Fatomic.load c);
  Flock.Fatomic.store c 7;
  Alcotest.(check int) "stored" 7 (Flock.Fatomic.load c)

let test_fatomic_cam () =
  let c = Flock.Fatomic.make 1 in
  Flock.Fatomic.cam c ~old_v:1 ~new_v:2;
  Alcotest.(check int) "cam hit" 2 (Flock.Fatomic.load c);
  Flock.Fatomic.cam c ~old_v:1 ~new_v:3;
  Alcotest.(check int) "cam miss leaves value" 2 (Flock.Fatomic.load c)

let test_fatomic_store_exactly_once_under_replay () =
  (* A store replayed through the same log must not clobber later writes. *)
  let c = Flock.Fatomic.make 0 in
  let log = Flock.Idem.create_log () in
  Flock.Idem.enter log;
  Flock.Fatomic.store c 1;
  Flock.Idem.exit ();
  (* a later, unrelated store *)
  Flock.Fatomic.store c 2;
  (* lagging helper replays the first critical section *)
  Flock.Idem.enter log;
  Flock.Fatomic.store c 1;
  Flock.Idem.exit ();
  Alcotest.(check int) "replayed store does not reapply" 2 (Flock.Fatomic.load c)

(* --- Locks ----------------------------------------------------------- *)

let test_lock_basic = fun mode () ->
  let l = Flock.Lock.create ~mode () in
  let r = Flock.Lock.try_lock l (fun () -> 41 + 1) in
  Alcotest.(check (option int)) "uncontended try_lock runs" (Some 42) r;
  let r2 = Flock.Lock.with_lock l (fun () -> "done") in
  Alcotest.(check string) "with_lock" "done" r2

let test_lock_exception_released = fun mode () ->
  let l = Flock.Lock.create ~mode () in
  (try ignore (Flock.Lock.with_lock l (fun () -> failwith "boom"))
   with Failure _ -> ());
  (* lock must be free again *)
  let r = Flock.Lock.try_lock l (fun () -> true) in
  Alcotest.(check (option bool)) "released after raise" (Some true) r

let test_lock_mutual_exclusion = fun mode () ->
  (* Shared state inside lock-free critical sections must go through
     Fatomic (the FLOCK contract); a plain ref would be re-read by lagging
     helpers and double-applied.  The blocking variant exercises plain
     state too, since no helping occurs there. *)
  let l = Flock.Lock.create ~mode () in
  let counter = Flock.Fatomic.make 0 in
  let plain = ref 0 in
  let iters = 2000 in
  let work () =
    for _ = 1 to iters do
      ignore
        (Flock.Lock.with_lock l (fun () ->
             let v = Flock.Fatomic.load counter in
             (* widen the race window *)
             if v mod 64 = 0 then Thread.yield ();
             if mode = Flock.Lock.Blocking then incr plain;
             Flock.Fatomic.store counter (v + 1)))
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn work) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" (4 * iters) (Flock.Fatomic.load counter);
  if mode = Flock.Lock.Blocking then
    Alcotest.(check int) "plain state exact under blocking" (4 * iters) !plain

let test_lock_free_critical_section_idempotent () =
  (* Effects inside a lock-free critical section must happen exactly once
     even under heavy contention/helping.  Uses Fatomic cells as the
     FLOCK contract requires. *)
  let l = Flock.Lock.create ~mode:Flock.Lock.Lock_free () in
  let cell = Flock.Fatomic.make 0 in
  let iters = 1000 in
  let work () =
    for _ = 1 to iters do
      let rec attempt () =
        let before = Flock.Fatomic.load cell in
        let ok =
          Flock.Lock.try_lock_bool l (fun () ->
              let v = Flock.Fatomic.load cell in
              if v <> before then false
              else begin
                Flock.Fatomic.store cell (v + 1);
                true
              end)
        in
        if not ok then attempt ()
      in
      attempt ()
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn work) in
  List.iter Domain.join domains;
  Alcotest.(check int) "exactly-once increments" (4 * iters) (Flock.Fatomic.load cell)

let test_nested_locks () =
  let outer = Flock.Lock.create ~mode:Flock.Lock.Lock_free () in
  let inner = Flock.Lock.create ~mode:Flock.Lock.Lock_free () in
  let cell = Flock.Fatomic.make 0 in
  let r =
    Flock.Lock.with_lock outer (fun () ->
        Flock.Lock.with_lock inner (fun () ->
            Flock.Fatomic.store cell 9;
            Flock.Fatomic.load cell))
  in
  Alcotest.(check int) "nested result" 9 r;
  Alcotest.(check int) "nested effect" 9 (Flock.Fatomic.load cell)

let test_helping_observable () =
  (* Deterministic helping: the owner parks inside its critical section on
     a gate; a contender that arrives meanwhile must execute the owner's
     thunk (and park on the same gate) rather than block.  Opening the
     gate lets both complete; the effect must apply exactly once. *)
  let rec scenario attempts =
    let before = Flock.Lock.help_count () in
    let l = Flock.Lock.create ~mode:Flock.Lock.Lock_free () in
    let cell = Flock.Fatomic.make 0 in
    let entries = Atomic.make 0 in
    let gate = Atomic.make false in
    let owner =
      Domain.spawn (fun () ->
          Flock.Lock.with_lock l (fun () ->
              (* non-idempotent instrumentation: counts replicas inside *)
              Atomic.incr entries;
              (* plain spin: performs no logged operations, so replicas
                 re-align once the gate opens *)
              while not (Atomic.get gate) do
                Domain.cpu_relax ()
              done;
              Flock.Fatomic.store cell (Flock.Fatomic.load cell + 1);
              42))
    in
    while Atomic.get entries = 0 do
      Thread.yield ()
    done;
    let helper_done = Atomic.make false in
    let helper =
      Domain.spawn (fun () ->
          (* if the lock is (still) held, this helps run the parked thunk *)
          let r = Flock.Lock.try_lock l (fun () -> 0) in
          Atomic.set helper_done true;
          r)
    in
    (* wait until the helper provably joined the owner inside the thunk,
       or provably missed the window *)
    while Atomic.get entries < 2 && not (Atomic.get helper_done) do
      Thread.yield ()
    done;
    let joined = Atomic.get entries >= 2 in
    Atomic.set gate true;
    let owner_result = Domain.join owner in
    ignore (Domain.join helper);
    if joined then begin
      Alcotest.(check int) "owner result" 42 owner_result;
      Alcotest.(check int) "effect applied exactly once" 1 (Flock.Fatomic.load cell);
      Alcotest.(check bool) "helping occurred" true (Flock.Lock.help_count () > before)
    end
    else if attempts > 1 then scenario (attempts - 1)
    else Alcotest.fail "helper never caught the owner in 10 attempts"
  in
  scenario 10

let test_exception_under_contention () =
  (* A raising critical section must deliver the exception to its owner
     and leave both the lock and concurrent operations healthy. *)
  let l = Flock.Lock.create ~mode:Flock.Lock.Lock_free () in
  let cell = Flock.Fatomic.make 0 in
  let failures = Atomic.make 0 in
  let work seed () =
    for i = 1 to 2000 do
      try
        ignore
          (Flock.Lock.with_lock l (fun () ->
               let v = Flock.Fatomic.load cell in
               if (i + seed) mod 97 = 0 then failwith "planned";
               Flock.Fatomic.store cell (v + 1)))
      with Failure _ -> Atomic.incr failures
    done
  in
  let ds = List.init 3 (fun i -> Domain.spawn (work i)) in
  List.iter Domain.join ds;
  Alcotest.(check bool) "exceptions delivered" true (Atomic.get failures > 0);
  Alcotest.(check int) "non-failing sections all applied"
    (6000 - Atomic.get failures)
    (Flock.Fatomic.load cell);
  (* lock still usable *)
  Alcotest.(check (option bool)) "lock healthy" (Some true)
    (Flock.Lock.try_lock l (fun () -> true))

let test_new_obj_idempotent () =
  let log = Flock.Idem.create_log () in
  Flock.Idem.enter log;
  let a = Flock.Lock.new_obj (fun () -> ref 1) in
  Flock.Idem.exit ();
  Flock.Idem.enter log;
  let b = Flock.Lock.new_obj (fun () -> ref 2) in
  Flock.Idem.exit ();
  Alcotest.(check bool) "same allocation across replays" true (a == b)

(* --- Idem.claim ------------------------------------------------------- *)

let test_claim_outside_frame () =
  (* no helping outside a frame: the caller is trivially the winner *)
  Alcotest.(check bool) "outside" true (Flock.Idem.claim ());
  Alcotest.(check bool) "outside again" true (Flock.Idem.claim ())

let test_claim_once_per_position () =
  let log = Flock.Idem.create_log () in
  Flock.Idem.enter log;
  let w1 = Flock.Idem.claim () in
  let w2 = Flock.Idem.claim () in
  Flock.Idem.exit ();
  (* a lagging helper replays the identical section over the same log *)
  Flock.Idem.enter log;
  let r1 = Flock.Idem.claim () in
  let r2 = Flock.Idem.claim () in
  Flock.Idem.exit ();
  Alcotest.(check bool) "first pass wins position 0" true w1;
  Alcotest.(check bool) "first pass wins position 1" true w2;
  Alcotest.(check bool) "replay loses position 0" false r1;
  Alcotest.(check bool) "replay loses position 1" false r2

let test_claim_consumes_one_slot () =
  (* claim must advance the log by exactly one slot so surrounding onces
     stay position-aligned across replays *)
  let log = Flock.Idem.create_log () in
  Flock.Idem.enter log;
  let a = Flock.Idem.once (fun () -> 10) in
  let w = Flock.Idem.claim () in
  let b = Flock.Idem.once (fun () -> 20) in
  Flock.Idem.exit ();
  Flock.Idem.enter log;
  let a' = Flock.Idem.once (fun () -> 111) in
  let w' = Flock.Idem.claim () in
  let b' = Flock.Idem.once (fun () -> 222) in
  Flock.Idem.exit ();
  Alcotest.(check int) "once before claim replays" a a';
  Alcotest.(check int) "once after claim replays" b b';
  Alcotest.(check bool) "claim winner" true w;
  Alcotest.(check bool) "claim loser" false w';
  Alcotest.(check int) "values" 30 (a + b)

let test_claim_concurrent_single_winner () =
  (* many domains replaying the same log position: exactly one winner *)
  let log = Flock.Idem.create_log () in
  let wins = Atomic.make 0 in
  let go = Atomic.make false in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            Flock.Idem.enter log;
            if Flock.Idem.claim () then Atomic.incr wins;
            Flock.Idem.exit ()))
  in
  Atomic.set go true;
  List.iter Domain.join ds;
  Alcotest.(check int) "exactly one winner" 1 (Atomic.get wins)

(* --- Epoch ----------------------------------------------------------- *)

let test_epoch_nesting () =
  Alcotest.(check bool) "outside" false (Flock.Epoch.in_epoch ());
  Flock.with_epoch (fun () ->
      Alcotest.(check bool) "inside" true (Flock.Epoch.in_epoch ());
      Flock.with_epoch (fun () ->
          Alcotest.(check bool) "nested inside" true (Flock.Epoch.in_epoch ())));
  Alcotest.(check bool) "outside again" false (Flock.Epoch.in_epoch ())

let test_epoch_defer_runs_after_quiescence () =
  let ran = ref false in
  Flock.with_epoch (fun () ->
      Flock.Epoch.defer (fun () -> ran := true);
      Alcotest.(check bool) "not yet (same epoch active)" false !ran);
  (* leaving the epoch flushes; a following epoch ensures advancement *)
  Flock.with_epoch (fun () -> ());
  Flock.Epoch.flush ();
  Alcotest.(check bool) "deferred ran after quiescence" true !ran

let test_epoch_defer_blocked_by_active_domain () =
  let ran = ref false in
  let gate_in = Atomic.make false in
  let gate_out = Atomic.make false in
  let blocker =
    Domain.spawn (fun () ->
        Flock.with_epoch (fun () ->
            Atomic.set gate_in true;
            while not (Atomic.get gate_out) do
              Thread.yield ()
            done))
  in
  while not (Atomic.get gate_in) do
    Thread.yield ()
  done;
  Flock.with_epoch (fun () -> Flock.Epoch.defer (fun () -> ran := true));
  Flock.Epoch.flush ();
  Alcotest.(check bool) "blocked while another domain is in the epoch" false !ran;
  Atomic.set gate_out true;
  Domain.join blocker;
  Flock.with_epoch (fun () -> ());
  Flock.Epoch.flush ();
  Alcotest.(check bool) "runs once the blocker leaves" true !ran

(* --- Epoch buckets (per-domain deferral) ------------------------------ *)

let test_epoch_pending_accounting () =
  Flock.with_epoch (fun () -> ());
  Flock.Epoch.flush ();
  let base = Flock.Epoch.pending_count () in
  Flock.with_epoch (fun () ->
      for _ = 1 to 5 do
        Flock.Epoch.defer (fun () -> ())
      done;
      Alcotest.(check int) "pending counts in-epoch defers" (base + 5)
        (Flock.Epoch.pending_count ()));
  Flock.with_epoch (fun () -> ());
  Flock.Epoch.flush ();
  Alcotest.(check int) "drained" base (Flock.Epoch.pending_count ())

let test_epoch_flush_exactly_once () =
  Flock.with_epoch (fun () -> ());
  Flock.Epoch.flush ();
  let runs = Array.make 20 0 in
  Flock.with_epoch (fun () ->
      Array.iteri
        (fun i _ -> Flock.Epoch.defer (fun () -> runs.(i) <- runs.(i) + 1))
        runs);
  Flock.with_epoch (fun () -> ());
  Flock.Epoch.flush ();
  Flock.Epoch.flush ();
  Array.iteri
    (fun i n ->
      Alcotest.(check int) (Printf.sprintf "callback %d exactly once" i) 1 n)
    runs

let test_epoch_flush_covers_foreign_buckets () =
  (* Deferred work lives in per-domain buckets; a global flush must drain
     buckets whose owning domain has since exited (its registry slot may
     even be recycled).  A blocker pins the epoch so the deferring
     domain's own exit flush cannot run the callback. *)
  Flock.with_epoch (fun () -> ());
  Flock.Epoch.flush ();
  let ran = Atomic.make 0 in
  let hold_in = Atomic.make false and hold_out = Atomic.make false in
  let blocker =
    Domain.spawn (fun () ->
        Flock.with_epoch (fun () ->
            Atomic.set hold_in true;
            while not (Atomic.get hold_out) do
              Thread.yield ()
            done))
  in
  while not (Atomic.get hold_in) do
    Thread.yield ()
  done;
  let d =
    Domain.spawn (fun () ->
        Flock.with_epoch (fun () ->
            Flock.Epoch.defer (fun () -> Atomic.incr ran)))
  in
  Domain.join d;
  Alcotest.(check int) "pinned epoch: callback held" 0 (Atomic.get ran);
  Alcotest.(check bool) "pinned epoch: still accounted" true
    (Flock.Epoch.pending_count () >= 1);
  Atomic.set hold_out true;
  Domain.join blocker;
  Flock.with_epoch (fun () -> ());
  Flock.Epoch.flush ();
  Alcotest.(check int) "foreign bucket drained by global flush" 1
    (Atomic.get ran)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "flock"
    [
      ("backoff", [ case "spin and yield" test_backoff ]);
      ( "registry",
        [
          case "id stable" test_registry_id_stable;
          case "distinct ids" test_registry_distinct_ids;
          case "id recycled" test_registry_id_recycled;
        ] );
      ( "idem",
        [
          case "once outside frame" test_once_outside_frame;
          case "replay agrees" test_once_replay_agrees;
          case "chunk chaining" test_once_many_slots_cross_chunks;
          case "frame nesting" test_frame_nesting;
        ] );
      ( "idem-claim",
        [
          case "outside frame" test_claim_outside_frame;
          case "once per position" test_claim_once_per_position;
          case "consumes one slot" test_claim_consumes_one_slot;
          case "single winner under helping" test_claim_concurrent_single_winner;
        ] );
      ( "fatomic",
        [
          case "load/store" test_fatomic_basic;
          case "cam" test_fatomic_cam;
          case "exactly-once store" test_fatomic_store_exactly_once_under_replay;
        ] );
      ( "lock-blocking",
        [
          case "basic" (test_lock_basic Flock.Lock.Blocking);
          case "exception releases" (test_lock_exception_released Flock.Lock.Blocking);
          case "mutual exclusion" (test_lock_mutual_exclusion Flock.Lock.Blocking);
        ] );
      ( "lock-free",
        [
          case "basic" (test_lock_basic Flock.Lock.Lock_free);
          case "exception releases" (test_lock_exception_released Flock.Lock.Lock_free);
          case "mutual exclusion" (test_lock_mutual_exclusion Flock.Lock.Lock_free);
          case "idempotent critical section" test_lock_free_critical_section_idempotent;
          case "nested locks" test_nested_locks;
          case "helping observable" test_helping_observable;
          case "exceptions under contention" test_exception_under_contention;
          case "new_obj idempotent" test_new_obj_idempotent;
        ] );
      ( "epoch",
        [
          case "nesting" test_epoch_nesting;
          case "defer after quiescence" test_epoch_defer_runs_after_quiescence;
          case "defer blocked by active domain" test_epoch_defer_blocked_by_active_domain;
          case "pending accounting" test_epoch_pending_accounting;
          case "flush exactly once" test_epoch_flush_exactly_once;
          case "flush covers foreign buckets" test_epoch_flush_covers_foreign_buckets;
        ] );
    ]
