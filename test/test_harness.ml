(* Tests for the benchmark harness: registry, driver end-to-end, table
   formatting and space accounting. *)

let test_registry_complete () =
  List.iter
    (fun name ->
      let (module M : Dstruct.Map_intf.MAP) = Harness.Registry.find name in
      Alcotest.(check string) "name matches" name M.name)
    Harness.Registry.names;
  Alcotest.(check bool) "has all seven structures" true
    (List.length Harness.Registry.names = 7)

let test_registry_unknown () =
  match Harness.Registry.find "nope" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure for unknown structure"

let smoke_spec map =
  {
    (Harness.Driver.default_spec map) with
    Harness.Driver.n = 500;
    duration = 0.05;
    groups =
      [
        {
          Harness.Driver.g_count = 2;
          g_update_percent = 50;
          g_query = Workload.Opgen.Finds;
        };
      ];
  }

let test_driver_end_to_end () =
  List.iter
    (fun name ->
      let map = Harness.Registry.find name in
      let r = Harness.Driver.run (smoke_spec map) in
      Alcotest.(check bool)
        (name ^ " made progress")
        true
        (r.Harness.Driver.total_mops > 0.);
      (* fill + balanced insert/delete mix keeps size near n *)
      Alcotest.(check bool)
        (Printf.sprintf "%s size stays near n (%d)" name r.Harness.Driver.final_size)
        true
        (abs (r.Harness.Driver.final_size - 500) < 250))
    Harness.Registry.names

let test_driver_group_split () =
  let map = Harness.Registry.find "hashtable" in
  let spec =
    {
      (smoke_spec map) with
      Harness.Driver.groups =
        [
          { Harness.Driver.g_count = 1; g_update_percent = 100; g_query = Workload.Opgen.Finds };
          { Harness.Driver.g_count = 1; g_update_percent = 0; g_query = Workload.Opgen.Multifinds 4 };
        ];
    }
  in
  let r = Harness.Driver.run spec in
  Alcotest.(check int) "one throughput per group" 2
    (List.length r.Harness.Driver.group_mops);
  List.iter
    (fun m -> Alcotest.(check bool) "each group progressed" true (m > 0.))
    r.Harness.Driver.group_mops

let test_driver_repeats_average () =
  let map = Harness.Registry.find "hashtable" in
  let r = Harness.Driver.run { (smoke_spec map) with Harness.Driver.repeats = 2 } in
  Alcotest.(check bool) "averaged result present" true (r.Harness.Driver.total_mops > 0.)

let test_table_alignment () =
  let buf_name = Filename.temp_file "table" ".txt" in
  let oc = open_out buf_name in
  Harness.Table.print ~out:oc ~title:"t" ~header:[ "a"; "bb" ]
    [ [ "xxx"; "y" ]; [ "1" ] ];
  close_out oc;
  let ic = open_in buf_name in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove buf_name;
  let lines = List.rev !lines in
  Alcotest.(check bool) "has title" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = '=') lines);
  (* all data rows share the same column offset *)
  Alcotest.(check int) "five lines (blank, title, header, rule, rows)" 6
    (List.length lines)

let test_mops_formatting () =
  Alcotest.(check string) "small" "0.123" (Harness.Table.mops 0.1234);
  Alcotest.(check string) "unit" "1.23" (Harness.Table.mops 1.234);
  Alcotest.(check string) "tens" "12.3" (Harness.Table.mops 12.34);
  Alcotest.(check string) "hundreds" "123" (Harness.Table.mops 123.4)

let test_space_accounting () =
  let arr = Array.make 1024 0 in
  let b = Harness.Space.bytes_per_entry ~root:(Obj.repr arr) ~entries:1024 in
  (* an int array costs one word per element plus a header *)
  Alcotest.(check bool) "about one word per entry" true (b >= 8. && b < 9.);
  Alcotest.(check (float 0.01)) "zero entries" 0.
    (Harness.Space.bytes_per_entry ~root:(Obj.repr arr) ~entries:0)

(* --- BENCH json (Bench_json): round trip + regression gate -------------- *)

module B = Harness.Bench_json

let sample_row ?(figure = "fig8a") ?(label = "update%20 IndOnNeed")
    ?(mops = 1.25) ?(p99 = 40.) ?(space = 120.5) ?(violations = 0)
    ?(alloc = 0.) ?(gc_minor = 0) ?(gc_major = 0) () =
  {
    B.r_figure = figure;
    r_label = label;
    r_mops = mops;
    r_p50_us = 10.5;
    r_p99_us = p99;
    r_chain_max = 4;
    r_chain_p99 = 2;
    r_indirect_links = 7;
    r_reclaimable = 3;
    r_violations = violations;
    r_space_bytes = space;
    r_retries = 0;
    r_shed = 0;
    r_giveups = 0;
    r_walk_saturation = 0;
    r_phases = [];
    r_alloc_bytes_per_op = alloc;
    r_gc_minor = gc_minor;
    r_gc_major = gc_major;
  }

let test_bench_json_roundtrip () =
  let rows =
    [
      sample_row ();
      sample_row ~figure:"fig12" ~label:"btree \"quoted\"" ~mops:0. ~space:98.7 ();
    ]
  in
  let doc = B.make_doc ~label:"round trip" ~scale:"ci" rows in
  let doc2 =
    match B.of_string (B.to_json doc) with
    | Ok d -> d
    | Error e -> Alcotest.failf "BENCH json does not round-trip: %s" e
  in
  Alcotest.(check int) "schema" B.schema_version doc2.B.d_schema;
  Alcotest.(check string) "label" "round trip" doc2.B.d_label;
  Alcotest.(check string) "scale" "ci" doc2.B.d_scale;
  Alcotest.(check int) "rows" 2 (List.length doc2.B.d_rows);
  let r = List.hd doc2.B.d_rows and r0 = List.hd rows in
  Alcotest.(check string) "figure" r0.B.r_figure r.B.r_figure;
  Alcotest.(check string) "row label" r0.B.r_label r.B.r_label;
  Alcotest.(check (float 1e-5)) "mops" r0.B.r_mops r.B.r_mops;
  Alcotest.(check (float 1e-2)) "p99" r0.B.r_p99_us r.B.r_p99_us;
  Alcotest.(check int) "chain max" r0.B.r_chain_max r.B.r_chain_max;
  Alcotest.(check (float 0.05)) "space" r0.B.r_space_bytes r.B.r_space_bytes;
  (* escaped label survives *)
  Alcotest.(check bool) "quoted label" true
    (B.find doc2 ~figure:"fig12" ~label:"btree \"quoted\"" <> None);
  (* file round trip (what bench-check reads back) *)
  let path = Filename.temp_file "bench_rt" ".json" in
  B.write_file path doc;
  (match B.read_file path with
   | Ok d -> Alcotest.(check int) "file rows" 2 (List.length d.B.d_rows)
   | Error e -> Alcotest.failf "file round trip: %s" e);
  Sys.remove path;
  (* malformed and wrong-schema inputs are rejected *)
  (match B.of_string "{\"schema\":1,\"rows\":" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "accepted malformed json");
  match
    B.of_string
      "{\"schema\":99,\"label\":\"\",\"created\":\"\",\"scale\":\"\",\"rows\":[]}"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted wrong schema version"

(* The PR7 columns (allocation per op, GC collection counts) survive a
   serialize/parse cycle and the alloc column gates like mops does. *)
let test_bench_json_gc_columns () =
  let rows = [ sample_row ~alloc:184.5 ~gc_minor:12 ~gc_major:3 () ] in
  let doc = B.make_doc ~label:"gc" ~scale:"ci" rows in
  (match B.of_string (B.to_json doc) with
   | Error e -> Alcotest.failf "gc columns do not round-trip: %s" e
   | Ok d ->
       let r = List.hd d.B.d_rows in
       Alcotest.(check (float 0.05)) "alloc round-trips" 184.5
         r.B.r_alloc_bytes_per_op;
       Alcotest.(check int) "gc_minor round-trips" 12 r.B.r_gc_minor;
       Alcotest.(check int) "gc_major round-trips" 3 r.B.r_gc_major);
  (* zero alloc stays off the wire (byte-stable committed baselines) *)
  let plain = B.to_json (B.make_doc ~scale:"ci" [ sample_row () ]) in
  Alcotest.(check bool) "zero alloc omitted" false
    (let needle = "alloc_bytes_per_op" in
     let n = String.length needle in
     let rec has i =
       i + n <= String.length plain
       && (String.sub plain i n = needle || has (i + 1))
     in
     has 0);
  (* allocation growth past the threshold is a gated regression *)
  let base = B.make_doc ~scale:"ci" [ sample_row ~alloc:100. () ] in
  let fat = B.make_doc ~scale:"ci" [ sample_row ~alloc:130. () ] in
  Alcotest.(check bool) "alloc regression caught" true
    (List.exists
       (function
         | B.Regression { metric = "alloc_bytes_per_op"; _ } -> true
         | _ -> false)
       (B.diff ~threshold:10. base fat));
  Alcotest.(check int) "small alloc drift tolerated" 0
    (List.length
       (B.diff ~threshold:10. base
          (B.make_doc ~scale:"ci" [ sample_row ~alloc:105. () ])));
  (* rows without an alloc figure (older baselines) are never gated *)
  Alcotest.(check int) "no baseline alloc, no gate" 0
    (List.length
       (B.diff ~threshold:10.
          (B.make_doc ~scale:"ci" [ sample_row () ])
          fat))

let test_bench_diff_gate () =
  let base =
    B.make_doc ~scale:"ci" [ sample_row (); sample_row ~figure:"fig9" () ]
  in
  (* identical: clean *)
  Alcotest.(check int) "self diff clean" 0 (List.length (B.diff base base));
  (* small drift within the threshold: clean *)
  let drift =
    B.make_doc ~scale:"ci" [ sample_row ~mops:1.0 (); sample_row ~figure:"fig9" () ]
  in
  Alcotest.(check int) "20% drift tolerated at 50%" 0
    (List.length (B.diff ~threshold:50. base drift));
  (* injected throughput collapse: caught *)
  let collapsed =
    B.make_doc ~scale:"ci" [ sample_row ~mops:0.2 (); sample_row ~figure:"fig9" () ]
  in
  let issues = B.diff ~threshold:50. base collapsed in
  Alcotest.(check bool) "mops regression caught" true
    (List.exists
       (function B.Regression { metric = "mops"; _ } -> true | _ -> false)
       issues);
  (* latency and space growth *)
  let slower =
    B.make_doc ~scale:"ci"
      [ sample_row ~p99:200. ~space:400. (); sample_row ~figure:"fig9" () ]
  in
  let issues = B.diff ~threshold:50. ~lat_threshold:50. base slower in
  Alcotest.(check bool) "p99 regression caught when gated" true
    (List.exists
       (function B.Regression { metric = "p99_us"; _ } -> true | _ -> false)
       issues);
  Alcotest.(check bool) "space regression caught" true
    (List.exists
       (function B.Regression { metric = "space_bytes"; _ } -> true | _ -> false)
       issues);
  (* latency is informational by default: only the space issue remains *)
  Alcotest.(check bool) "p99 not gated by default" false
    (List.exists
       (function B.Regression { metric = "p99_us"; _ } -> true | _ -> false)
       (B.diff ~threshold:50. base slower));
  (* a vanished row: caught *)
  let missing = B.make_doc ~scale:"ci" [ sample_row () ] in
  Alcotest.(check bool) "missing row caught" true
    (List.exists
       (function B.Missing_row { figure = "fig9"; _ } -> true | _ -> false)
       (B.diff base missing));
  (* census violations fail at any threshold *)
  let broken =
    B.make_doc ~scale:"ci"
      [ sample_row ~violations:2 (); sample_row ~figure:"fig9" () ]
  in
  Alcotest.(check bool) "violations caught" true
    (List.exists
       (function B.Violations { count = 2; _ } -> true | _ -> false)
       (B.diff ~threshold:1000. base broken));
  (* every issue renders *)
  List.iter
    (fun i ->
      Alcotest.(check bool) "describe" true (String.length (B.describe_issue i) > 0))
    (B.diff ~threshold:50. base slower)

(* The committed baseline, when reachable from the test's cwd, must
   parse and carry the gate's sections — this keeps BENCH_PR7.json
   honest as the schema evolves. *)
let test_committed_baseline () =
  let candidates = [ "BENCH_PR7.json"; "../../../BENCH_PR7.json" ] in
  match List.find_opt Sys.file_exists candidates with
  | None -> ()
  | Some path -> (
      match B.read_file path with
      | Error e -> Alcotest.failf "committed baseline does not parse: %s" e
      | Ok d ->
          Alcotest.(check bool) "baseline has rows" true
            (List.length d.B.d_rows > 0);
          List.iter
            (fun fig ->
              Alcotest.(check bool) (fig ^ " present") true
                (List.exists (fun r -> r.B.r_figure = fig) d.B.d_rows))
            [ "fig8a"; "fig9"; "fig12"; "extra_skiplist" ])

(* --- Prometheus exposition ------------------------------------------------ *)

module OR = Harness.Obs_report

let test_prometheus_roundtrip () =
  Verlib.reset ();
  (* put something in a histogram and a counter so the exposition has
     non-trivial bucket series to validate *)
  let sp = Verlib.Obs.Span.start ~cmd:"X" () in
  Verlib.Obs.Span.in_phase Verlib.Obs.Span.Op (fun () -> ());
  Verlib.Obs.Span.finish sp;
  let text = OR.prometheus ~extra:[ ("test_extra_gauge", 42) ] () in
  match OR.parse_prometheus text with
  | Error e -> Alcotest.fail ("own exposition rejected: " ^ e)
  | Ok samples ->
      Alcotest.(check bool) "samples present" true (List.length samples > 0);
      Alcotest.(check (option (float 0.001)))
        "extra gauge surfaces, prefixed" (Some 42.)
        (OR.prom_find samples "verlib_test_extra_gauge");
      (* the span total histogram converted to µs with its _us rename *)
      Alcotest.(check bool) "span hist count" true
        (match OR.prom_find samples "verlib_span_total_us_count" with
         | Some c -> c >= 1.
         | None -> false)

let test_prometheus_rejects_malformed () =
  List.iter
    (fun bad ->
      match OR.parse_prometheus bad with
      | Ok _ -> Alcotest.failf "accepted malformed exposition %S" bad
      | Error _ -> ())
    [
      "metric_without_value\n";
      "bad name 1 2 3\n";
      "{label=\"only\"} 1\n";
      "m{unclosed=\"v\" 1\n";
      "m NaNope\n";
      (* NaN is a syntactically valid float, semantically meaningless *)
      "m NaN\n";
      "m nan\n";
      (* a counter may never go negative; the TYPE header arms the check *)
      "# TYPE m counter\nm -3\n";
      (* histogram with decreasing cumulative buckets *)
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
       h_sum 1\nh_count 5\n";
      (* count disagrees with the +Inf bucket *)
      "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n";
    ]

(* Label values carry the three exposition escapes (backslash,
   double-quote, newline); a decoder that mishandles any of them either
   errors on the closing quote or corrupts the value. *)
let test_prometheus_label_escapes () =
  let text = "m{path=\"a\\\\b\",msg=\"say \\\"hi\\\"\",nl=\"x\\ny\"} 7\n" in
  match OR.parse_prometheus text with
  | Error e -> Alcotest.fail ("escaped labels rejected: " ^ e)
  | Ok [ s ] ->
      Alcotest.(check string) "name" "m" s.OR.m_name;
      Alcotest.(check (float 0.001)) "value" 7. s.OR.m_value;
      Alcotest.(check (option string)) "backslash" (Some "a\\b")
        (List.assoc_opt "path" s.OR.m_labels);
      Alcotest.(check (option string)) "quote" (Some "say \"hi\"")
        (List.assoc_opt "msg" s.OR.m_labels);
      Alcotest.(check (option string)) "newline" (Some "x\ny")
        (List.assoc_opt "nl" s.OR.m_labels)
  | Ok l -> Alcotest.failf "expected 1 sample, got %d" (List.length l)

(* Edge cases that MUST parse: a histogram that never observed
   anything (all-zero buckets), and a negative value on a metric not
   declared as a counter (gauges go negative legitimately). *)
let test_prometheus_accepts_edge_cases () =
  List.iter
    (fun good ->
      match OR.parse_prometheus good with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "rejected valid exposition %S: %s" good e)
    [
      "h_bucket{le=\"1\"} 0\nh_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\n";
      "# TYPE g gauge\ng -42\n";
      "delta -1.5\n";
    ]

(* --- flight recorder ------------------------------------------------------ *)

module F = Harness.Flight

let tmpdir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flight_test_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  d

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let test_flight_deadline_dump () =
  Verlib.reset ();
  (* retire one span so the dump carries it *)
  let sp = Verlib.Obs.Span.start ~cmd:"GET" () in
  Verlib.Obs.Span.in_phase Verlib.Obs.Span.Op (fun () ->
      let t0 = Verlib.Hwclock.now () in
      while Verlib.Hwclock.to_us (Verlib.Hwclock.now () - t0) < 100. do () done);
  Verlib.Obs.Span.finish sp;
  let t = F.create ~min_interval:0. ~dir:(tmpdir ()) () in
  match
    F.record t ~trigger:F.Deadline_kill
      ~extra:[ ("queue_depth", "3") ] ()
  with
  | None -> Alcotest.fail "deadline-kill dump suppressed"
  | Some path ->
      Alcotest.(check int) "dump counted" 1 (F.dump_count t);
      Alcotest.(check (option string)) "last path" (Some path) (F.last_path t);
      Alcotest.(check bool) "named after trigger" true
        (let b = Filename.basename path in
         let prefix = "flight-" and suffix = "-deadline-kill.json" in
         String.length b > String.length prefix + String.length suffix
         && String.sub b 0 (String.length prefix) = prefix
         && String.sub b
              (String.length b - String.length suffix)
              (String.length suffix)
            = suffix);
      let j =
        match Harness.Jsonlite.parse_result (read_file path) with
        | Ok j -> j
        | Error e -> Alcotest.fail ("dump not valid JSON: " ^ e)
      in
      let str k =
        Option.bind (Harness.Jsonlite.member k j) Harness.Jsonlite.to_string
      in
      Alcotest.(check (option string)) "trigger recorded"
        (Some "deadline-kill") (str "trigger");
      Alcotest.(check bool) "extra at top level" true
        (Harness.Jsonlite.member "queue_depth" j <> None);
      Alcotest.(check bool) "spans included" true
        (match Harness.Jsonlite.member "spans" j with
         | Some (Harness.Jsonlite.Arr (_ :: _)) -> true
         | _ -> false);
      Alcotest.(check bool) "profile section included" true
        (match Harness.Jsonlite.member "profile" j with
         | Some (Harness.Jsonlite.Obj _) -> true
         | _ -> false);
      (* the only retained span is all [op], so it dominates *)
      Alcotest.(check (option string)) "dominant phase" (Some "op")
        (str "dominant_phase")

let test_flight_census_violation () =
  Verlib.reset ();
  let c = Verlib.Chainscan.census_of_iter (fun _emit -> ()) in
  let t = F.create ~min_interval:0. ~dir:(tmpdir ()) () in
  match F.record t ~trigger:F.Census_violation ~census:c () with
  | None -> Alcotest.fail "census-violation dump suppressed"
  | Some path ->
      let j =
        match Harness.Jsonlite.parse_result (read_file path) with
        | Ok j -> j
        | Error e -> Alcotest.fail ("dump not valid JSON: " ^ e)
      in
      Alcotest.(check (option string)) "trigger"
        (Some "census-violation")
        (Option.bind (Harness.Jsonlite.member "trigger" j)
           Harness.Jsonlite.to_string);
      Alcotest.(check bool) "census block present" true
        (Harness.Jsonlite.member "census" j <> None)

let test_flight_cooldown_and_cap () =
  Verlib.reset ();
  let t = F.create ~min_interval:3600. ~max_dumps:16 ~dir:(tmpdir ()) () in
  Alcotest.(check bool) "first fires" true
    (F.record t ~trigger:F.Hard_shed () <> None);
  Alcotest.(check bool) "second suppressed by cooldown" true
    (F.record t ~trigger:F.Hard_shed () = None);
  Alcotest.(check int) "suppression counted" 1 (F.suppressed_count t);
  let t2 = F.create ~min_interval:0. ~max_dumps:2 ~dir:(tmpdir ()) () in
  let p1 = F.record t2 ~trigger:F.Hard_shed () in
  let p2 = F.record t2 ~trigger:F.Hard_shed () in
  Alcotest.(check bool) "cap suppresses" true
    (F.record t2 ~trigger:F.Hard_shed () = None);
  Alcotest.(check int) "capped at max_dumps" 2 (F.dump_count t2);
  (* filenames carry the monotonic dump sequence, so two dumps in the
     same millisecond cannot overwrite each other *)
  let seq_suffix n p =
    match p with
    | None -> false
    | Some p ->
        let b = Filename.basename p in
        let suffix = Printf.sprintf "-%d-hard-shed.json" n in
        String.length b >= String.length suffix
        && String.sub b
             (String.length b - String.length suffix)
             (String.length suffix)
           = suffix
  in
  Alcotest.(check bool) "first dump is seq 1" true (seq_suffix 1 p1);
  Alcotest.(check bool) "second dump is seq 2" true (seq_suffix 2 p2)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "harness"
    [
      ( "registry",
        [ case "complete" test_registry_complete; case "unknown" test_registry_unknown ] );
      ( "driver",
        [
          case "end-to-end all structures" test_driver_end_to_end;
          case "group split" test_driver_group_split;
          case "repeats averaged" test_driver_repeats_average;
        ] );
      ( "table",
        [ case "alignment" test_table_alignment; case "mops format" test_mops_formatting ] );
      ("space", [ case "accounting" test_space_accounting ]);
      ( "bench-json",
        [
          case "round trip" test_bench_json_roundtrip;
          case "gc columns" test_bench_json_gc_columns;
          case "regression gate" test_bench_diff_gate;
          case "committed baseline" test_committed_baseline;
        ] );
      ( "prometheus",
        [
          case "render/parse round trip" test_prometheus_roundtrip;
          case "rejects malformed" test_prometheus_rejects_malformed;
          case "label escapes" test_prometheus_label_escapes;
          case "accepts edge cases" test_prometheus_accepts_edge_cases;
        ] );
      ( "flight",
        [
          case "deadline-kill dump" test_flight_deadline_dump;
          case "census-violation dump" test_flight_census_violation;
          case "cooldown and cap" test_flight_cooldown_and_cap;
        ] );
    ]
