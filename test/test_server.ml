(* Tests for the wire subsystem (lib/server): protocol round-trips and
   parser fuzz (qcheck), the bounded handoff queue, capability-typed
   command dispatch, and live-socket tests on an ephemeral port — ending
   with the bank-transfer snapshot-consistency invariant driven from
   concurrent client domains. *)

module S = Server
module P = Server.Protocol
module C = Server.Client

(* --- qcheck: command round-trip ---------------------------------------- *)

let gen_key = QCheck.Gen.int_range (-1000) 100_000

let gen_command =
  let open QCheck.Gen in
  oneof
    [
      return P.Ping;
      map (fun k -> P.Get k) gen_key;
      map2 (fun k v -> P.Put (k, v)) gen_key gen_key;
      map (fun k -> P.Del k) gen_key;
      map
        (fun ks -> P.Mget (Array.of_list ks))
        (list_size (int_range 1 12) gen_key);
      map2 (fun a b -> P.Range (a, b)) gen_key gen_key;
      map2 (fun a b -> P.Rangecount (a, b)) gen_key gen_key;
      map (fun n -> P.Scan n) (int_range 0 1000);
      return P.Size;
      return P.Stats;
      return P.Multi;
      (* EXEC renders bare for token 0 and "EXEC <t>" otherwise; both
         forms must round-trip. *)
      map (fun t -> P.Exec t) (int_range 0 1_000_000);
      return P.Discard;
      (* SUBSCRIBE/WATCH render bare for seq/timeout 0 and with the
         third token otherwise; both forms must round-trip. *)
      map3 (fun a b s -> P.Subscribe (a, b, s)) gen_key gen_key
        (int_range 0 1_000_000);
      map3 (fun a b ms -> P.Watch (a, b, ms)) gen_key gen_key
        (int_range 0 60_000);
      return P.Sync;
      return P.Replstats;
      return P.Promote;
      map2 (fun s st -> P.Ack (s, st)) (int_range 0 1_000_000)
        (int_range 0 1_000_000);
      return P.Quit;
    ]

let command_eq a b =
  match (a, b) with
  | P.Mget x, P.Mget y -> x = y
  | a, b -> a = b

let arb_command = QCheck.make ~print:P.command_line gen_command

let test_command_roundtrip =
  QCheck.Test.make ~count:500 ~name:"render/parse command round-trip"
    arb_command (fun c ->
      let line = P.command_line c in
      (* the renderer terminates with CRLF; the server's line splitter
         hands the parser the line without the \n, with or without the
         \r — check both forms *)
      let body = String.sub line 0 (String.length line - 2) in
      match (P.parse_command body, P.parse_command (body ^ "\r")) with
      | Ok c1, Ok c2 -> command_eq c c1 && command_eq c c2
      | _ -> false)

(* --- qcheck: TRACE prefix round-trip ------------------------------------ *)

(* [TRACE <id> CMD...] must parse back to [(Some id, cmd)] and a bare
   line to [(None, cmd)] — and the prefix must never change how the
   command itself parses. *)
let test_trace_prefix_roundtrip =
  QCheck.Test.make ~count:500 ~name:"TRACE prefix round-trip"
    (QCheck.pair (QCheck.make QCheck.Gen.(int_range 0 1_000_000)) arb_command)
    (fun (id, c) ->
      let line = P.command_line ~trace_id:id c in
      let body = String.sub line 0 (String.length line - 2) in
      match P.parse_command_traced body with
      | Ok (tid, c') ->
          command_eq c c'
          && tid = (if id > 0 then Some id else None)
      | Error _ -> false)

let test_trace_prefix_rejects_garbage () =
  List.iter
    (fun line ->
      match P.parse_command_traced line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [ "TRACE"; "TRACE GET 1"; "TRACE 0 GET 1"; "TRACE -3 GET 1"; "TRACE 7" ]

(* --- qcheck: trace-info frame round-trip --------------------------------- *)

let gen_trace_info =
  let open QCheck.Gen in
  let gen_us = map (fun n -> float_of_int n /. 1000.) (int_range 0 10_000_000) in
  let phase_names =
    List.map Verlib.Obs.Span.phase_name Verlib.Obs.Span.phases
  in
  let gen_phases =
    (* a strictly positive µs value per chosen phase: the renderer emits
       non-zero phases only, so zero entries would not round-trip *)
    List.map
      (fun name ->
        map
          (fun v -> (name, float_of_int (v + 1) /. 1000.))
          (int_range 0 10_000_000))
      phase_names
    |> flatten_l
  in
  map2
    (fun (id, total, fanout) phases ->
      {
        P.t_id = id + 1;
        t_total_us = total;
        t_outcome = "ok";
        t_fanout = fanout;
        t_phase_us = phases;
      })
    (triple (int_range 0 1_000_000) gen_us (int_range 0 64))
    gen_phases

let trace_info_approx_eq a b =
  let feq x y = Float.abs (x -. y) < 0.001 in
  a.P.t_id = b.P.t_id
  && feq a.P.t_total_us b.P.t_total_us
  && a.P.t_outcome = b.P.t_outcome
  && a.P.t_fanout = b.P.t_fanout
  && List.length a.P.t_phase_us = List.length b.P.t_phase_us
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> n1 = n2 && feq v1 v2)
       a.P.t_phase_us b.P.t_phase_us

let test_trace_frame_roundtrip =
  QCheck.Test.make ~count:500 ~name:"trace frame render/parse round-trip"
    (QCheck.make ~print:P.trace_line gen_trace_info)
    (fun t ->
      let line = P.trace_line t in
      (* "@" body "\r\n" *)
      let body = String.sub line 1 (String.length line - 3) in
      match P.parse_trace body with
      | Ok t' -> trace_info_approx_eq t t'
      | Error _ -> false)

(* --- qcheck: reply round-trip ------------------------------------------ *)

(* Err text must survive the sanitiser (control bytes become spaces), so
   generate printable payloads for Err; Bulk payloads are arbitrary
   bytes — the length-prefixed framing must carry anything. *)
let gen_printable =
  QCheck.Gen.(string_size (int_range 0 24) ~gen:(map Char.chr (int_range 32 126)))

let gen_bytes =
  QCheck.Gen.(string_size (int_range 0 64) ~gen:(map Char.chr (int_range 0 255)))

let gen_reply =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return P.Ok_;
            return P.Pong;
            return P.Exists;
            return P.Nil;
            map (fun n -> P.Int n) small_signed_int;
            map (fun s -> P.Err s) gen_printable;
            map (fun s -> P.Bulk s) gen_bytes;
            return P.Queued;
            (* -ABORT clamps to non-negative on the wire, so only
               non-negative counts round-trip. *)
            map (fun n -> P.Aborted n) (int_range 0 1000);
          ]
      in
      if n = 0 then leaf
      else
        frequency
          [
            (3, leaf);
            (1, map (fun rs -> P.Arr rs) (list_size (int_range 0 4) (self (n / 2))));
          ])

let arb_reply = QCheck.make ~print:P.pp_reply gen_reply

let render_reply_string r =
  let b = Buffer.create 64 in
  P.render_reply b r;
  Buffer.contents b

let test_reply_roundtrip =
  QCheck.Test.make ~count:500 ~name:"render/read reply round-trip" arb_reply
    (fun r ->
      let reader = P.Reader.of_string (render_reply_string r) in
      match P.Reader.reply reader with
      | Ok r' -> P.reply_equal r r'
      | Error _ -> false)

(* --- qcheck: fuzz — garbage never raises -------------------------------- *)

let arb_garbage =
  QCheck.make
    ~print:(Printf.sprintf "%S")
    QCheck.Gen.(string_size (int_range 0 80) ~gen:(map Char.chr (int_range 0 255)))

let test_parse_never_raises =
  QCheck.Test.make ~count:1000 ~name:"parse_command never raises" arb_garbage
    (fun s ->
      match P.parse_command s with Ok _ | Error _ -> true)

let test_reader_never_raises =
  QCheck.Test.make ~count:1000 ~name:"Reader.reply never raises on garbage"
    arb_garbage (fun s ->
      let reader = P.Reader.of_string s in
      match P.Reader.reply reader with Ok _ | Error _ -> true)

(* split delivery: framing must survive one-byte reads *)
let test_reader_split_delivery () =
  let r = P.Arr [ P.Bulk "hello\r\nworld"; P.Int 42; P.Nil; P.Err "boom" ] in
  let s = render_reply_string r in
  let pos = ref 0 in
  let reader =
    P.Reader.create (fun b p _l ->
        if !pos >= String.length s then 0
        else begin
          Bytes.set b p s.[!pos];
          incr pos;
          1
        end)
  in
  match P.Reader.reply reader with
  | Ok r' -> Alcotest.(check bool) "equal" true (P.reply_equal r r')
  | Error e -> Alcotest.fail e

(* --- qcheck: change-record frame round-trip ------------------------------ *)

(* The replication stream rides the reply framing (reply_of_record /
   record_of_reply): every record must survive render → incremental
   Reader → parse, including Nil values (deletes). *)
let gen_record =
  let open QCheck.Gen in
  map3
    (fun seq stamp writes ->
      { Repl.r_seq = seq + 1; r_stamp = stamp + 1; r_writes = writes })
    (int_range 0 1_000_000) (int_range 0 1_000_000)
    (list_size (int_range 1 8)
       (pair gen_key (oneof [ return None; map Option.some gen_key ])))

let test_record_frame_roundtrip =
  QCheck.Test.make ~count:500 ~name:"change-record frame round-trip"
    (QCheck.make
       ~print:(fun r -> P.pp_reply (P.reply_of_record r))
       gen_record)
    (fun r ->
      let reader = P.Reader.of_string (render_reply_string (P.reply_of_record r)) in
      match P.Reader.reply reader with
      | Ok frame -> (
          match P.record_of_reply frame with
          | Ok r' -> r = r'
          | Error _ -> false)
      | Error _ -> false)

let test_record_of_reply_total =
  QCheck.Test.make ~count:500 ~name:"record_of_reply rejects non-records"
    arb_reply (fun r ->
      match P.record_of_reply r with Ok _ | Error _ -> true)

(* A streamed record must survive one-byte delivery: replicas read the
   push stream through the incremental Reader, and the TCP segmentation
   under a chaos plan is arbitrary. *)
let test_record_split_delivery () =
  let r =
    { Repl.r_seq = 41; r_stamp = 977; r_writes = [ (3, Some 30); (9, None) ] }
  in
  let s = render_reply_string (P.reply_of_record r) in
  let pos = ref 0 in
  let reader =
    P.Reader.create (fun b p _l ->
        if !pos >= String.length s then 0
        else begin
          Bytes.set b p s.[!pos];
          incr pos;
          1
        end)
  in
  match P.Reader.reply reader with
  | Ok frame -> (
      match P.record_of_reply frame with
      | Ok r' -> Alcotest.(check bool) "record equal" true (r = r')
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

(* --- bounded queue ------------------------------------------------------ *)

let test_bqueue_order_and_close () =
  let q = S.Bqueue.create 4 in
  Alcotest.(check bool) "push 1" true (S.Bqueue.push q 1);
  Alcotest.(check bool) "push 2" true (S.Bqueue.push q 2);
  Alcotest.(check int) "length" 2 (S.Bqueue.length q);
  S.Bqueue.close q;
  Alcotest.(check bool) "push after close" false (S.Bqueue.push q 3);
  Alcotest.(check (option int)) "pop 1" (Some 1) (S.Bqueue.pop q);
  Alcotest.(check (option int)) "pop 2" (Some 2) (S.Bqueue.pop q);
  Alcotest.(check (option int)) "drained" None (S.Bqueue.pop q)

let test_bqueue_backpressure () =
  let q = S.Bqueue.create 1 in
  Alcotest.(check bool) "fill" true (S.Bqueue.push q 0);
  let consumer =
    Domain.spawn (fun () ->
        (* drain slowly so the producer must block at least once *)
        let got = ref [] in
        for _ = 1 to 4 do
          Unix.sleepf 0.01;
          match S.Bqueue.pop q with
          | Some v -> got := v :: !got
          | None -> ()
        done;
        List.rev !got)
  in
  for i = 1 to 3 do
    Alcotest.(check bool) "push blocks then succeeds" true (S.Bqueue.push q i)
  done;
  let got = Domain.join consumer in
  Alcotest.(check (list int)) "fifo under backpressure" [ 0; 1; 2; 3 ] got

(* --- Linebuf: stateful '\n'-framed reassembly ---------------------------- *)

let test_linebuf_split_feeds () =
  let lb = P.Linebuf.create () in
  P.Linebuf.feed_string lb "GET 1\r\nPU";
  Alcotest.(check (option string)) "first line" (Some "GET 1")
    (P.Linebuf.next lb);
  Alcotest.(check (option string)) "partial tail held back" None
    (P.Linebuf.next lb);
  Alcotest.(check int) "pending counts the tail" 2 (P.Linebuf.pending lb);
  P.Linebuf.feed_string lb "T 2 3\n";
  Alcotest.(check (option string)) "tail completed across feeds"
    (Some "PUT 2 3") (P.Linebuf.next lb);
  String.iter (fun c -> P.Linebuf.feed_string lb (String.make 1 c)) "PING\r\n";
  Alcotest.(check (option string)) "byte-at-a-time delivery" (Some "PING")
    (P.Linebuf.next lb);
  P.Linebuf.feed_string lb "\n\nSIZE\n";
  Alcotest.(check (option string)) "empty line 1" (Some "") (P.Linebuf.next lb);
  Alcotest.(check (option string)) "empty line 2" (Some "") (P.Linebuf.next lb);
  Alcotest.(check (option string)) "bare-LF line" (Some "SIZE")
    (P.Linebuf.next lb);
  Alcotest.(check int) "fully drained" 0 (P.Linebuf.pending lb);
  P.Linebuf.feed_string lb "A\nB\nC\nD";
  let got = ref [] in
  P.Linebuf.drain lb (fun l -> got := l :: !got);
  Alcotest.(check (list string)) "drain order" [ "A"; "B"; "C" ]
    (List.rev !got);
  Alcotest.(check int) "partial survives drain" 1 (P.Linebuf.pending lb)

(* --- Evpoll: poll(2) readiness ------------------------------------------- *)

let test_evpoll_pipe () =
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      Unix.close r;
      Unix.close w)
  @@ fun () ->
  Alcotest.(check bool) "empty pipe not readable" false
    (S.Evpoll.readable ~timeout:0. r);
  Alcotest.(check bool) "pipe writable" true (S.Evpoll.writable ~timeout:0. w);
  Alcotest.(check int) "wrote" 1 (Unix.write_substring w "x" 0 1);
  Alcotest.(check bool) "now readable" true (S.Evpoll.readable ~timeout:1. r);
  (* Set-based poll: the readable fd's slot reports ev_in *)
  let set = S.Evpoll.Set.create () in
  let slot_r = S.Evpoll.Set.add set r ~interest:S.Evpoll.ev_in in
  let ready = S.Evpoll.Set.poll set ~timeout_ms:1000 in
  Alcotest.(check bool) "at least one ready" true (ready >= 1);
  Alcotest.(check bool) "ev_in on the slot" true
    (S.Evpoll.has (S.Evpoll.Set.revents set slot_r) S.Evpoll.ev_in)

(* --- mount dispatch (no sockets) ---------------------------------------- *)

let test_mount_capability () =
  Verlib.reset ();
  let m = S.Mount.mount ~n_hint:64 (module Dstruct.Hashtable) in
  Alcotest.(check bool) "unordered" true
    (S.Mount.range_capability m = Dstruct.Map_intf.Unordered);
  (match S.Mount.exec m (P.Range (1, 9)) with
   | P.Err msg ->
       Alcotest.(check bool) "typed unsupported error" true
         (String.length msg >= 11 && String.sub msg 0 11 = "unsupported")
   | r -> Alcotest.fail ("RANGE on hashtable: " ^ P.pp_reply r));
  (* MGET and SCAN still work on unordered structures *)
  ignore (S.Mount.exec m (P.Put (1, 10)));
  ignore (S.Mount.exec m (P.Put (2, 20)));
  (match S.Mount.exec m (P.Mget [| 1; 2; 3 |]) with
   | P.Arr [ P.Int 10; P.Int 20; P.Nil ] -> ()
   | r -> Alcotest.fail ("MGET: " ^ P.pp_reply r));
  match S.Mount.exec m (P.Scan 0) with
  | P.Arr items -> Alcotest.(check int) "scan k;v pairs" 4 (List.length items)
  | r -> Alcotest.fail ("SCAN: " ^ P.pp_reply r)

(* --- live server helpers ------------------------------------------------ *)

let with_server ?(domains = 4) ?(census_interval = 0.) map f =
  Verlib.reset ();
  let mount = S.Mount.mount ~n_hint:1024 map in
  let config =
    { S.default_config with S.port = 0; domains; queue_depth = 16; census_interval }
  in
  let srv = S.create ~config mount in
  S.start srv;
  let finally () = S.stop srv in
  Fun.protect ~finally (fun () -> f srv (S.port srv))

let req conn c =
  match C.request conn c with
  | Ok r -> r
  | Error e -> Alcotest.fail ("request: " ^ e)

let await ?(timeout = 10.) msg pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail ("timed out awaiting " ^ msg)
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- live: basic semantics over the wire -------------------------------- *)

let test_wire_basics () =
  with_server (module Dstruct.Btree) @@ fun _srv port ->
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  Alcotest.(check bool) "ping" true (req conn P.Ping = P.Pong);
  Alcotest.(check bool) "put" true (req conn (P.Put (1, 10)) = P.Ok_);
  Alcotest.(check bool) "put dup" true (req conn (P.Put (1, 99)) = P.Exists);
  Alcotest.(check bool) "get" true (req conn (P.Get 1) = P.Int 10);
  Alcotest.(check bool) "get absent" true (req conn (P.Get 7) = P.Nil);
  Alcotest.(check bool) "del" true (req conn (P.Del 1) = P.Int 1);
  Alcotest.(check bool) "del absent" true (req conn (P.Del 1) = P.Int 0);
  ignore (req conn (P.Put (5, 50)));
  ignore (req conn (P.Put (6, 60)));
  Alcotest.(check bool) "size" true (req conn P.Size = P.Int 2);
  Alcotest.(check bool) "rangecount" true
    (req conn (P.Rangecount (0, 100)) = P.Int 2);
  (match req conn (P.Range (0, 100)) with
   | P.Arr [ P.Int 5; P.Int 50; P.Int 6; P.Int 60 ] -> ()
   | r -> Alcotest.fail ("range: " ^ P.pp_reply r));
  Alcotest.(check bool) "quit" true (req conn P.Quit = P.Ok_)

let test_wire_pipelining_order () =
  with_server (module Dstruct.Skiplist) @@ fun _srv port ->
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  let cmds =
    [ P.Put (1, 1); P.Put (2, 2); P.Get 1; P.Get 2; P.Get 3; P.Size; P.Ping ]
  in
  match C.pipeline conn cmds with
  | Ok [ P.Ok_; P.Ok_; P.Int 1; P.Int 2; P.Nil; P.Int 2; P.Pong ] -> ()
  | Ok rs ->
      Alcotest.fail
        ("pipeline order: " ^ String.concat " " (List.map P.pp_reply rs))
  | Error e -> Alcotest.fail e

(* A protocol error must poison neither the connection nor the server. *)
let test_wire_errors_keep_connection () =
  with_server (module Dstruct.Hashtable) @@ fun _srv port ->
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  (* unsupported capability *)
  (match req conn (P.Range (1, 9)) with
   | P.Err _ -> ()
   | r -> Alcotest.fail ("expected -ERR, got " ^ P.pp_reply r));
  Alcotest.(check bool) "usable after capability error" true
    (req conn P.Ping = P.Pong);
  (* garbage lines: every one answered with -ERR, connection survives *)
  List.iter
    (fun garbage ->
      C.send_raw conn (garbage ^ "\r\n");
      match C.read_reply conn with
      | Ok (P.Err _) -> ()
      | Ok r -> Alcotest.fail ("garbage got " ^ P.pp_reply r)
      | Error e -> Alcotest.fail ("garbage killed connection: " ^ e))
    [
      "";
      "   ";
      "FROB 1 2 3";
      "GET";
      "GET not-a-number";
      "PUT 1";
      "MGET";
      "\x01\x02\x03binary";
      String.make 300 'X';
    ];
  Alcotest.(check bool) "usable after garbage" true (req conn P.Ping = P.Pong);
  ignore (req conn (P.Put (3, 33)));
  Alcotest.(check bool) "state intact" true (req conn (P.Get 3) = P.Int 33)

let test_wire_stats_json () =
  with_server ~census_interval:0.05 (module Dstruct.Btree) @@ fun srv port ->
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  for k = 1 to 50 do
    ignore (req conn (P.Put (k, k)))
  done;
  Unix.sleepf 0.15;
  (* let the census domain sample *)
  match req conn P.Stats with
  | P.Bulk raw -> (
      match Harness.Jsonlite.parse_result raw with
      | Error e -> Alcotest.fail ("STATS is not valid JSON: " ^ e)
      | Ok j ->
          let num k =
            Option.bind (Harness.Jsonlite.member k j) Harness.Jsonlite.to_number
          in
          Alcotest.(check (option string))
            "structure" (Some "btree")
            (Option.bind
               (Harness.Jsonlite.member "structure" j)
               Harness.Jsonlite.to_string);
          Alcotest.(check bool) "size reported" true (num "size" = Some 50.);
          Alcotest.(check bool) "commands counted" true
            (match num "commands_total" with Some c -> c >= 50. | None -> false);
          Alcotest.(check bool) "census present" true
            (Harness.Jsonlite.member "census" j <> None);
          Alcotest.(check bool) "no census violations" true
            (Option.bind
               (Harness.Jsonlite.member "census" j)
               (fun c ->
                 Option.map int_of_float
                   (Option.bind
                      (Harness.Jsonlite.member "violations" c)
                      Harness.Jsonlite.to_number))
            = Some 0);
          ignore srv)
  | r -> Alcotest.fail ("STATS: " ^ P.pp_reply r)

(* Traced requests over a live socket: the @-frame arrives ahead of the
   data reply, echoes the client's id, and its exclusive phase µs nest
   inside the whole-span total. *)
let test_wire_traced_request () =
  with_server (module Dstruct.Btree) @@ fun _srv port ->
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  ignore (req conn (P.Put (1, 10)));
  (match C.request_traced conn ~trace_id:4242 (P.Get 1) with
   | Ok (P.Int 10), Some t ->
       Alcotest.(check int) "id echoed" 4242 t.P.t_id;
       Alcotest.(check string) "outcome" "ok" t.P.t_outcome;
       Alcotest.(check bool) "total positive" true (t.P.t_total_us > 0.);
       let sum = List.fold_left (fun a (_, v) -> a +. v) 0. t.P.t_phase_us in
       Alcotest.(check bool) "phases nest in total" true
         (sum <= t.P.t_total_us +. 0.01);
       Alcotest.(check bool) "op phase present" true
         (List.mem_assoc "op" t.P.t_phase_us)
   | Ok r, Some _ -> Alcotest.fail ("traced GET: " ^ P.pp_reply r)
   | Ok _, None -> Alcotest.fail "no trace frame arrived"
   | Error e, _ -> Alcotest.fail e);
  (* untraced requests on the same connection carry no frame *)
  (match C.request_traced conn ~trace_id:0 (P.Get 1) with
   | Ok (P.Int 10), None -> ()
   | Ok _, Some _ -> Alcotest.fail "frame on an untraced request"
   | Ok r, None -> Alcotest.fail ("untraced GET: " ^ P.pp_reply r)
   | Error e, _ -> Alcotest.fail e);
  (* tracing is per-request and does not poison pipelining *)
  match C.pipeline conn [ P.Get 1; P.Size ] with
  | Ok [ P.Int 10; P.Int 1 ] -> ()
  | Ok rs ->
      Alcotest.fail
        ("pipeline after trace: " ^ String.concat " " (List.map P.pp_reply rs))
  | Error e -> Alcotest.fail e

let test_wire_metrics () =
  with_server (module Dstruct.Btree) @@ fun srv port ->
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  for k = 1 to 20 do
    ignore (req conn (P.Put (k, k)))
  done;
  match req conn P.Metrics with
  | P.Bulk text -> (
      match Harness.Obs_report.parse_prometheus text with
      | Error e -> Alcotest.fail ("METRICS exposition rejected: " ^ e)
      | Ok samples ->
          let find = Harness.Obs_report.prom_find samples in
          Alcotest.(check bool) "commands counted" true
            (match find "verlib_server_commands_total" with
             | Some c -> c >= 20.
             | None -> false);
          Alcotest.(check bool) "uptime gauge" true
            (find "verlib_server_uptime_s" <> None);
          (* request-phase histograms ride along, µs-converted *)
          Alcotest.(check bool) "phase hist exported" true
            (match find "verlib_phase_op_us_count" with
             | Some c -> c >= 20.
             | None -> false);
          Alcotest.(check bool) "server text matches helper" true
            (String.length (S.metrics_text srv) > 0))
  | r -> Alcotest.fail ("METRICS: " ^ P.pp_reply r)

(* STATS against a sharded mount must break the census down per shard. *)
let test_wire_stats_shards () =
  with_server (Harness.Registry.find "sharded-btree:4") @@ fun _srv port ->
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  for k = 1 to 64 do
    ignore (req conn (P.Put (k, k)))
  done;
  match req conn P.Stats with
  | P.Bulk raw -> (
      match Harness.Jsonlite.parse_result raw with
      | Error e -> Alcotest.fail ("STATS json: " ^ e)
      | Ok j -> (
          match Harness.Jsonlite.member "census_shards" j with
          | Some (Harness.Jsonlite.Obj members) ->
              Alcotest.(check int) "one census per shard" 4
                (List.length members);
              List.iter
                (fun (name, shard) ->
                  Alcotest.(check bool)
                    (name ^ " is shard-<i>")
                    true
                    (String.length name > 6
                    && String.sub name 0 6 = "shard-");
                  Alcotest.(check bool)
                    (name ^ " carries versions")
                    true
                    (Harness.Jsonlite.member "versions" shard <> None))
                members
          | Some _ -> Alcotest.fail "census_shards is not an object"
          | None -> Alcotest.fail "no census_shards for a sharded mount"))
  | r -> Alcotest.fail ("STATS: " ^ P.pp_reply r)

(* A connection idling past [idle_timeout] is killed — and with the
   flight recorder armed, the kill files a dump naming the trigger. *)
let test_flight_on_deadline_kill () =
  Verlib.reset ();
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flight_wire_%d" (Unix.getpid ()))
  in
  let mount = S.Mount.mount ~n_hint:64 (module Dstruct.Btree) in
  let config =
    {
      S.default_config with
      S.port = 0;
      domains = 2;
      idle_timeout = 0.1;
      flight_dir = dir;
      flight_min_interval = 0.;
    }
  in
  let srv = S.create ~config mount in
  S.start srv;
  Fun.protect ~finally:(fun () -> S.stop srv) @@ fun () ->
  let conn = C.connect ~retries:20 ~port:(S.port srv) () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  ignore (req conn P.Ping);
  (* idle past the deadline; the worker kills the connection *)
  let deadline = Unix.gettimeofday () +. 5. in
  while S.flight_dump_count srv = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.02
  done;
  Alcotest.(check bool) "kill recorded" true (S.deadline_kill_count srv >= 1);
  Alcotest.(check bool) "dump filed" true (S.flight_dump_count srv >= 1);
  match S.flight_last_path srv with
  | None -> Alcotest.fail "no dump path"
  | Some path -> (
      let ic = open_in path in
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Harness.Jsonlite.parse_result raw with
      | Error e -> Alcotest.fail ("dump json: " ^ e)
      | Ok j ->
          Alcotest.(check (option string)) "trigger" (Some "deadline-kill")
            (Option.bind
               (Harness.Jsonlite.member "trigger" j)
               Harness.Jsonlite.to_string))

let test_wire_graceful_stop () =
  Verlib.reset ();
  let mount = S.Mount.mount ~n_hint:256 (module Dstruct.Btree) in
  let config =
    { S.default_config with S.port = 0; domains = 2; census_interval = 0.05 }
  in
  let srv = S.create ~config mount in
  S.start srv;
  let port = S.port srv in
  let conn = C.connect ~retries:20 ~port () in
  for k = 1 to 20 do
    ignore (req conn (P.Put (k, k)))
  done;
  C.close conn;
  S.stop srv;
  Alcotest.(check bool) "stopped" false (S.running srv);
  (match S.final_census srv with
   | None -> Alcotest.fail "no final census"
   | Some c ->
       Alcotest.(check int) "quiescent audit clean" 0
         c.Verlib.Chainscan.c_violation_count);
  Alcotest.(check int) "no violations overall" 0 (S.census_violations_total srv);
  (* idempotent *)
  S.stop srv

(* --- live: the event loop past the old architectural ceilings ------------ *)

(* Regression for the FD_SETSIZE bug: burn >1100 fds so every socket the
   server and client open lands above select(2)'s 1024-fd ceiling, then
   do real round-trips.  The select-based server dies here (fd_set
   overflow is undefined behaviour — in practice a crash or a wedge). *)
let test_wire_beyond_fd_setsize () =
  let burn = Array.init 560 (fun _ -> Unix.pipe ~cloexec:true ()) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun (r, w) ->
          Unix.close r;
          Unix.close w)
        burn)
  @@ fun () ->
  with_server (module Dstruct.Btree) @@ fun _srv port ->
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  Alcotest.(check bool) "ping above fd 1024" true (req conn P.Ping = P.Pong);
  Alcotest.(check bool) "put" true (req conn (P.Put (7, 70)) = P.Ok_);
  (match req conn (P.Get 7) with
   | P.Int 70 -> ()
   | r -> Alcotest.fail ("GET past FD_SETSIZE: " ^ P.pp_reply r));
  match C.pipeline conn [ P.Ping; P.Size; P.Get 7 ] with
  | Ok [ P.Pong; P.Int _; P.Int 70 ] -> ()
  | Ok rs ->
      Alcotest.fail
        ("pipeline past FD_SETSIZE: "
        ^ String.concat ";" (List.map P.pp_reply rs))
  | Error e -> Alcotest.fail ("pipeline past FD_SETSIZE: " ^ e)

(* Far more simultaneous connections than worker domains: under
   thread-per-connection serving with 2 domains, connection #3 would
   never be accepted and the round-robin below would wedge.  The loop
   holds all 64 and multiplexes batches onto the 2 workers. *)
let test_wire_conns_exceed_domains () =
  with_server ~domains:2 (module Dstruct.Btree) @@ fun _srv port ->
  let conns = Array.init 64 (fun _ -> C.connect ~retries:20 ~port ()) in
  Fun.protect ~finally:(fun () -> Array.iter C.close conns) @@ fun () ->
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) "ping all" true (req c P.Ping = P.Pong);
      Alcotest.(check bool) "put all" true (req c (P.Put (i, i * 10)) = P.Ok_))
    conns;
  (* every connection reads a key written on a different connection *)
  Array.iteri
    (fun i c ->
      let k = (i + 1) mod Array.length conns in
      match req c (P.Get k) with
      | P.Int v -> Alcotest.(check int) "cross-connection read" (k * 10) v
      | r -> Alcotest.fail ("GET: " ^ P.pp_reply r))
    conns

(* Split-delivery ACK framing: an ACK line that arrives in two TCP
   segments must be reassembled, not dropped — the drain_acks partial
   line audit.  Write "ACK <seq> " and the rest after a pause; the
   primary's lag gauge draining to 0 proves the cursor advanced. *)
let test_wire_split_ack () =
  with_server (module Dstruct.Btree) @@ fun _srv port ->
  let pc = C.connect ~retries:20 ~port () in
  let sc = C.connect ~retries:20 ~port () in
  Fun.protect
    ~finally:(fun () ->
      C.close sc;
      C.close pc)
  @@ fun () ->
  Alcotest.(check bool) "subscribe ok" true
    (req sc (P.Subscribe (1, 1000, 0)) = P.Ok_);
  ignore (req pc (P.Put (42, 4200)));
  let record = ref None in
  let deadline = Unix.gettimeofday () +. 10. in
  while !record = None && Unix.gettimeofday () < deadline do
    match C.read_reply sc with
    | Ok P.Ok_ -> () (* heartbeat *)
    | Ok r -> (
        match P.record_of_reply r with
        | Ok rc -> record := Some rc
        | Error e -> Alcotest.fail ("stream frame: " ^ e))
    | Error e -> Alcotest.fail ("stream read: " ^ e)
  done;
  match !record with
  | None -> Alcotest.fail "no change record streamed"
  | Some rc ->
      let line = Printf.sprintf "ACK %d %d\r\n" rc.Repl.r_seq rc.Repl.r_stamp in
      let cut = 2 (* split inside the "ACK" keyword itself *) in
      C.send_raw sc (String.sub line 0 cut);
      Unix.sleepf 0.1;
      C.send_raw sc (String.sub line cut (String.length line - cut));
      await "split-delivered ACK drains the lag" (fun () ->
          match req pc P.Replstats with
          | P.Bulk json -> contains json "\"lag_stamps\":0"
          | _ -> false);
      C.send_raw sc "QUIT\r\n"

(* --- live: MULTI/EXEC transactions over the wire ------------------------ *)

let test_wire_txn_basics () =
  with_server (module Dstruct.Btree) @@ fun _srv port ->
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  ignore (req conn (P.Put (1, 10)));
  ignore (req conn (P.Put (2, 20)));
  (* queue a read-modify sequence and commit it *)
  Alcotest.(check bool) "multi" true (req conn P.Multi = P.Ok_);
  Alcotest.(check bool) "queued get" true (req conn (P.Get 1) = P.Queued);
  Alcotest.(check bool) "queued del" true (req conn (P.Del 1) = P.Queued);
  Alcotest.(check bool) "queued put" true (req conn (P.Put (1, 11)) = P.Queued);
  (match req conn (P.Exec 1) with
   | P.Arr (P.Int vs :: steps) ->
       Alcotest.(check bool) "versionstamp positive" true (vs > 0);
       Alcotest.(check bool) "steps" true
         (steps = [ P.Int 10; P.Int 1; P.Ok_ ])
   | r -> Alcotest.fail ("exec: " ^ P.pp_reply r));
  Alcotest.(check bool) "committed" true (req conn (P.Get 1) = P.Int 11);
  (* DISCARD drops the queue without executing *)
  ignore (req conn P.Multi);
  Alcotest.(check bool) "queued" true (req conn (P.Del 2) = P.Queued);
  Alcotest.(check bool) "discard" true (req conn P.Discard = P.Ok_);
  Alcotest.(check bool) "discarded" true (req conn (P.Get 2) = P.Int 20);
  (* state errors *)
  (match req conn (P.Exec 0) with
   | P.Err e ->
       Alcotest.(check bool) "exec without multi" true
         (String.length e >= 4 && String.sub e 0 4 = "EXEC")
   | r -> Alcotest.fail ("exec outside multi: " ^ P.pp_reply r));
  (match req conn P.Discard with
   | P.Err _ -> ()
   | r -> Alcotest.fail ("discard outside multi: " ^ P.pp_reply r));
  (* nested MULTI and non-queueable commands poison the transaction *)
  ignore (req conn P.Multi);
  (match req conn P.Multi with
   | P.Err _ -> ()
   | r -> Alcotest.fail ("nested multi: " ^ P.pp_reply r));
  (match req conn (P.Exec 0) with
   | P.Err e ->
       Alcotest.(check bool) "execabort" true
         (String.length e >= 9 && String.sub e 0 9 = "EXECABORT")
   | r -> Alcotest.fail ("exec on dirty: " ^ P.pp_reply r));
  ignore (req conn P.Multi);
  (match req conn P.Stats with
   | P.Err _ -> ()
   | r -> Alcotest.fail ("STATS in multi: " ^ P.pp_reply r));
  (match req conn (P.Exec 0) with
   | P.Err _ -> ()
   | r -> Alcotest.fail ("exec after poison: " ^ P.pp_reply r));
  (* the connection recovers fully after an EXECABORT *)
  ignore (req conn P.Multi);
  Alcotest.(check bool) "recovered" true (req conn (P.Get 2) = P.Queued);
  (match req conn (P.Exec 0) with
   | P.Arr [ P.Int _; P.Int 20 ] -> ()
   | r -> Alcotest.fail ("exec after recovery: " ^ P.pp_reply r))

let test_wire_txn_range_unordered () =
  with_server (module Dstruct.Hashtable) @@ fun _srv port ->
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  ignore (req conn P.Multi);
  (* RANGE can never execute on an unordered mount: rejected at queue
     time, poisoning the transaction. *)
  (match req conn (P.Range (1, 9)) with
   | P.Err _ -> ()
   | r -> Alcotest.fail ("range in multi: " ^ P.pp_reply r));
  (match req conn (P.Exec 0) with
   | P.Err e ->
       Alcotest.(check bool) "execabort after range" true
         (String.length e >= 9 && String.sub e 0 9 = "EXECABORT")
   | r -> Alcotest.fail ("exec: " ^ P.pp_reply r))

let test_wire_txn_token_replay () =
  with_server (module Dstruct.Btree) @@ fun _srv port ->
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  let run_txn () =
    ignore (req conn P.Multi);
    ignore (req conn (P.Put (5, 50)));
    req conn (P.Exec 777)
  in
  let first = run_txn () in
  (match first with
   | P.Arr [ P.Int _; P.Ok_ ] -> ()
   | r -> Alcotest.fail ("first exec: " ^ P.pp_reply r));
  (* Re-sending the same token must replay the cached reply verbatim —
     a live re-execution would answer EXISTS for the PUT. *)
  let second = run_txn () in
  Alcotest.(check bool) "token replay identical" true (first = second);
  Alcotest.(check bool) "effect once" true (req conn (P.Get 5) = P.Int 50)

let test_wire_txn_rt_helper () =
  with_server (module Dstruct.Btree) @@ fun _srv port ->
  let rt = C.connect_rt ~seed:11 ~port () in
  Fun.protect ~finally:(fun () -> C.rt_close rt) @@ fun () ->
  (match C.rt_txn rt [ P.Put (8, 80); P.Put (9, 90) ] with
   | Ok (vs, [ P.Ok_; P.Ok_ ]) ->
       Alcotest.(check bool) "rt_txn vs" true (vs > 0)
   | Ok (_, rs) ->
       Alcotest.fail
         ("rt_txn steps: " ^ String.concat " " (List.map P.pp_reply rs))
   | Error e -> Alcotest.fail ("rt_txn: " ^ e));
  match C.rt_request rt (P.Get 8) with
  | Ok (P.Int 80) -> ()
  | Ok r -> Alcotest.fail ("rt_txn committed: " ^ P.pp_reply r)
  | Error e -> Alcotest.fail ("get after rt_txn: " ^ e)

(* --- live: bank-transfer snapshot invariant ----------------------------- *)

(* Writer domains own disjoint account pairs (a = 2i+1, b = 2i+2, both
   seeded with [base]) and move one unit per transfer with a pipelined
   [DEL a; PUT a (va-1); DEL b; PUT b (vb+1)].  Readers MGET (and RANGE,
   on ordered structures) a pair in one snapshot: with both accounts
   present the sum must be 2*base (no transfer in flight) or 2*base - 1
   (between the two PUTs).  Because va only decreases and vb only
   increases, a non-atomic multi-read drifts outside that window. *)
let bank_over_wire map ~use_range =
  let base = 1_000 in
  let pairs = 8 in
  let nwriters = 2 and nreaders = 2 in
  with_server ~domains:(nwriters + nreaders + 1) map @@ fun _srv port ->
  (let conn = C.connect ~retries:20 ~port () in
   Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
   for i = 0 to pairs - 1 do
     ignore (req conn (P.Put ((2 * i) + 1, base)));
     ignore (req conn (P.Put ((2 * i) + 2, base)))
   done);
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let checks = Atomic.make 0 in
  let transfers = Atomic.make 0 in
  let writer w () =
    let conn = C.connect ~retries:20 ~port () in
    Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
    let owned =
      List.init pairs Fun.id |> List.filter (fun i -> i mod nwriters = w)
    in
    let va = Hashtbl.create 8 and vb = Hashtbl.create 8 in
    List.iter
      (fun i ->
        Hashtbl.replace va i base;
        Hashtbl.replace vb i base)
      owned;
    let rng = Workload.Splitmix.create (100 + w) in
    let owned = Array.of_list owned in
    while not (Atomic.get stop) do
      let i = owned.(Workload.Splitmix.below rng (Array.length owned)) in
      let a = (2 * i) + 1 and b = (2 * i) + 2 in
      let na = Hashtbl.find va i - 1 and nb = Hashtbl.find vb i + 1 in
      match
        C.pipeline conn [ P.Del a; P.Put (a, na); P.Del b; P.Put (b, nb) ]
      with
      | Ok [ _; P.Ok_; _; P.Ok_ ] ->
          Hashtbl.replace va i na;
          Hashtbl.replace vb i nb;
          Atomic.incr transfers
      | Ok _ | Error _ -> Atomic.set stop true
    done
  in
  let reader r () =
    let conn = C.connect ~retries:20 ~port () in
    Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
    let rng = Workload.Splitmix.create (200 + r) in
    while not (Atomic.get stop) do
      let i = Workload.Splitmix.below rng pairs in
      let a = (2 * i) + 1 and b = (2 * i) + 2 in
      let ranged = use_range && Workload.Splitmix.below rng 2 = 0 in
      let sum =
        if ranged then
          match C.request conn (P.Range (a, b)) with
          | Ok (P.Arr items) ->
              let rec kvs = function
                | P.Int k :: P.Int v :: rest -> (k, v) :: kvs rest
                | _ -> []
              in
              let kvs = kvs items in
              (match (List.assoc_opt a kvs, List.assoc_opt b kvs) with
               | Some x, Some y -> Some (x + y)
               | _ -> None)
          | _ -> None
        else
          match C.request conn (P.Mget [| a; b |]) with
          | Ok (P.Arr [ P.Int x; P.Int y ]) -> Some (x + y)
          | _ -> None
      in
      match sum with
      | None -> () (* an account is mid-transfer: visible DEL, skip *)
      | Some s ->
          Atomic.incr checks;
          if s <> 2 * base && s <> (2 * base) - 1 then Atomic.incr violations
    done
  in
  let ds =
    List.init nwriters (fun w -> Domain.spawn (writer w))
    @ List.init nreaders (fun r -> Domain.spawn (reader r))
  in
  Unix.sleepf 0.4;
  Atomic.set stop true;
  List.iter Domain.join ds;
  Alcotest.(check int) "no snapshot violations" 0 (Atomic.get violations);
  Alcotest.(check bool) "made transfers" true (Atomic.get transfers > 0);
  Alcotest.(check bool) "made atomic checks" true (Atomic.get checks > 0);
  (* quiescent audit: money is conserved exactly *)
  let conn = C.connect ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  let keys = Array.init (2 * pairs) (fun j -> j + 1) in
  match C.request conn (P.Mget keys) with
  | Ok (P.Arr items) ->
      let total =
        List.fold_left
          (fun acc r ->
            match r with
            | P.Int v -> acc + v
            | _ -> Alcotest.fail "account missing at quiescence")
          0 items
      in
      Alcotest.(check int) "total conserved" (2 * base * pairs) total
  | Ok r -> Alcotest.fail ("audit: " ^ P.pp_reply r)
  | Error e -> Alcotest.fail ("audit: " ^ e)

let test_bank_btree () = bank_over_wire (module Dstruct.Btree) ~use_range:true

let test_bank_hashtable () =
  bank_over_wire (module Dstruct.Hashtable) ~use_range:false

(* --- suite -------------------------------------------------------------- *)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      test_command_roundtrip;
      test_trace_prefix_roundtrip;
      test_trace_frame_roundtrip;
      test_reply_roundtrip;
      test_parse_never_raises;
      test_reader_never_raises;
      test_record_frame_roundtrip;
      test_record_of_reply_total;
    ]

let () =
  Alcotest.run "server"
    [
      ("protocol", qsuite);
      ( "protocol-framing",
        [
          Alcotest.test_case "split delivery" `Quick test_reader_split_delivery;
          Alcotest.test_case "record split delivery" `Quick
            test_record_split_delivery;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "order and close" `Quick test_bqueue_order_and_close;
          Alcotest.test_case "backpressure" `Quick test_bqueue_backpressure;
        ] );
      ( "evloop",
        [
          Alcotest.test_case "Linebuf split feeds" `Quick
            test_linebuf_split_feeds;
          Alcotest.test_case "Evpoll pipe readiness" `Quick test_evpoll_pipe;
          Alcotest.test_case "serving past FD_SETSIZE" `Quick
            test_wire_beyond_fd_setsize;
          Alcotest.test_case "64 connections on 2 domains" `Quick
            test_wire_conns_exceed_domains;
          Alcotest.test_case "split-delivery ACK framing" `Quick
            test_wire_split_ack;
        ] );
      ( "mount",
        [ Alcotest.test_case "typed capability" `Quick test_mount_capability ] );
      ( "wire",
        [
          Alcotest.test_case "basics" `Quick test_wire_basics;
          Alcotest.test_case "pipelining order" `Quick test_wire_pipelining_order;
          Alcotest.test_case "errors keep connection" `Quick
            test_wire_errors_keep_connection;
          Alcotest.test_case "stats json" `Quick test_wire_stats_json;
          Alcotest.test_case "graceful stop" `Quick test_wire_graceful_stop;
        ] );
      ( "txn-wire",
        [
          Alcotest.test_case "MULTI/EXEC/DISCARD state machine" `Quick
            test_wire_txn_basics;
          Alcotest.test_case "RANGE rejected at queue time (unordered)" `Quick
            test_wire_txn_range_unordered;
          Alcotest.test_case "EXEC token replay" `Quick
            test_wire_txn_token_replay;
          Alcotest.test_case "rt_txn helper" `Quick test_wire_txn_rt_helper;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "TRACE prefix rejects garbage" `Quick
            test_trace_prefix_rejects_garbage;
          Alcotest.test_case "traced request over the wire" `Quick
            test_wire_traced_request;
          Alcotest.test_case "METRICS exposition" `Quick test_wire_metrics;
          Alcotest.test_case "per-shard STATS census" `Quick
            test_wire_stats_shards;
          Alcotest.test_case "flight dump on deadline kill" `Quick
            test_flight_on_deadline_kill;
        ] );
      ( "bank-invariant",
        [
          Alcotest.test_case "btree (mget+range)" `Quick test_bank_btree;
          Alcotest.test_case "hashtable (mget)" `Quick test_bank_hashtable;
        ] );
    ]
