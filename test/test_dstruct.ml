(* Tests shared across the concurrent maps: sequential semantics against a
   model, structural invariants, qcheck model-based random testing, and
   multi-domain stress with linearizability checks on snapshots. *)

module V = Verlib

module type MAP = Dstruct.Map_intf.MAP

(* Sharded instances run the same battery as their bases: the combinator
   must be indistinguishable from a single map.  Two bases (one ordered,
   one unordered) at two shard counts each, one of them deliberately not
   a divisor of anything, to exercise interval clamping. *)
module Sharded_hashtable_2 = Dstruct.Sharded.Make (struct
  module Base = Dstruct.Hashtable

  let shards = 2
end)

module Sharded_hashtable_5 = Dstruct.Sharded.Make (struct
  module Base = Dstruct.Hashtable

  let shards = 5
end)

module Sharded_btree_2 = Dstruct.Sharded.Make (struct
  module Base = Dstruct.Btree

  let shards = 2
end)

module Sharded_btree_8 = Dstruct.Sharded.Make (struct
  module Base = Dstruct.Btree

  let shards = 8
end)

let maps : (module MAP) list =
  [
    (module Dstruct.Dlist);
    (module Dstruct.Hashtable);
    (module Dstruct.Btree);
    (module Dstruct.Arttree);
    (module Dstruct.Skiplist);
    (module Dstruct.Vbst);
    (module Dstruct.Coarse_map);
    (module Sharded_hashtable_2);
    (module Sharded_hashtable_5);
    (module Sharded_btree_2);
    (module Sharded_btree_8);
  ]

let modes_for (module M : MAP) =
  List.filter M.supports_mode
    V.Vptr.[ Ind_on_need; Indirect; No_shortcut; Rec_once; Plain ]

(* --- sequential semantics --------------------------------------------- *)

let test_sequential_basic (module M : MAP) mode () =
  V.reset ();
  let t = M.create ~mode ~n_hint:64 () in
  Alcotest.(check (option int)) "find on empty" None (M.find t 5);
  Alcotest.(check bool) "insert new" true (M.insert t 5 50);
  Alcotest.(check bool) "insert duplicate" false (M.insert t 5 99);
  Alcotest.(check (option int)) "find present" (Some 50) (M.find t 5);
  Alcotest.(check bool) "delete present" true (M.delete t 5);
  Alcotest.(check bool) "delete absent" false (M.delete t 5);
  Alcotest.(check (option int)) "find after delete" None (M.find t 5);
  M.check t

let test_sequential_bulk (module M : MAP) mode () =
  V.reset ();
  let t = M.create ~mode ~n_hint:1024 () in
  let n = 1000 in
  let keys = Array.init n (fun i -> (i * 7919) mod 10007) in
  let inserted = Hashtbl.create n in
  Array.iter
    (fun k ->
      let fresh = not (Hashtbl.mem inserted k) in
      Alcotest.(check bool) "insert agrees with model" fresh (M.insert t k (k * 2));
      Hashtbl.replace inserted k ())
    keys;
  Alcotest.(check int) "size" (Hashtbl.length inserted) (M.size t);
  M.check t;
  Hashtbl.iter
    (fun k () ->
      Alcotest.(check (option int)) "find each" (Some (k * 2)) (M.find t k))
    inserted;
  (* delete every other key *)
  let removed = ref 0 in
  Hashtbl.iter
    (fun k () ->
      if k mod 2 = 0 then begin
        Alcotest.(check bool) "delete" true (M.delete t k);
        incr removed
      end)
    inserted;
  Alcotest.(check int) "size after deletes" (Hashtbl.length inserted - !removed) (M.size t);
  M.check t

let test_sorted_order (module M : MAP) () =
  if M.range_capability = Dstruct.Map_intf.Unordered then ()
  else begin
    V.reset ();
    let t = M.create ~n_hint:256 () in
    let keys = [ 42; 7; 99; 1; 63; 55; 13; 27; 88; 5 ] in
    List.iter (fun k -> ignore (M.insert t k k)) keys;
    let got = List.map fst (M.to_sorted_list t) in
    Alcotest.(check (list int)) "sorted" (List.sort compare keys) got
  end

let test_range_semantics (module M : MAP) () =
  if M.range_capability = Dstruct.Map_intf.Unordered then ()
  else begin
    V.reset ();
    let t = M.create ~n_hint:256 () in
    for k = 0 to 100 do
      ignore (M.insert t (k * 2) k) (* even keys 0..200 *)
    done;
    let r = M.range t 10 20 in
    Alcotest.(check (list (pair int int)))
      "inclusive range"
      [ (10, 5); (12, 6); (14, 7); (16, 8); (18, 9); (20, 10) ]
      r;
    Alcotest.(check int) "range_count" 6 (M.range_count t 10 20);
    Alcotest.(check int) "empty range" 0 (M.range_count t 11 11);
    Alcotest.(check int) "full range" 101 (M.range_count t min_int max_int)
  end

let test_multifind (module M : MAP) () =
  V.reset ();
  let t = M.create ~n_hint:64 () in
  for k = 0 to 20 do
    ignore (M.insert t k (100 + k))
  done;
  let res = M.multifind t [| 3; 99; 0; 20; -5 |] in
  Alcotest.(check (array (option int)))
    "multifind" [| Some 103; None; Some 100; Some 120; None |] res

(* --- qcheck model-based ------------------------------------------------ *)

module IntMap = Map.Make (Int)

type cmd = Cins of int * int | Cdel of int | Cfind of int

let cmd_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Cins (k, v)) (int_bound 400) (int_bound 10000));
        (3, map (fun k -> Cdel k) (int_bound 400));
        (2, map (fun k -> Cfind k) (int_bound 400));
      ])

let cmd_print = function
  | Cins (k, v) -> Printf.sprintf "insert %d %d" k v
  | Cdel k -> Printf.sprintf "delete %d" k
  | Cfind k -> Printf.sprintf "find %d" k

let cmds_arb = QCheck.make ~print:QCheck.Print.(list cmd_print) QCheck.Gen.(list_size (int_bound 200) cmd_gen)

let model_agrees (module M : MAP) mode cmds =
  V.reset ();
  let t = M.create ~mode ~n_hint:64 () in
  let model = ref IntMap.empty in
  List.for_all
    (fun c ->
      match c with
      | Cins (k, v) ->
          let expect = not (IntMap.mem k !model) in
          if expect then model := IntMap.add k v !model;
          M.insert t k v = expect
      | Cdel k ->
          let expect = IntMap.mem k !model in
          model := IntMap.remove k !model;
          M.delete t k = expect
      | Cfind k -> M.find t k = IntMap.find_opt k !model)
    cmds
  &&
  (M.check t;
   let range_ok =
     if M.range_capability = Dstruct.Map_intf.Unordered then true
     else
       let lo = 50 and hi = 270 in
       let expected =
         List.filter (fun (k, _) -> k >= lo && k <= hi) (IntMap.bindings !model)
       in
       M.range t lo hi = expected
   in
   range_ok
   && M.size t = IntMap.cardinal !model
   && M.to_sorted_list t = IntMap.bindings !model)

let qcheck_model_tests =
  List.concat_map
    (fun (module M : MAP) ->
      List.map
        (fun mode ->
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make
               ~name:(Printf.sprintf "%s/%s agrees with Map" M.name (V.Vptr.mode_name mode))
               ~count:60 cmds_arb
               (model_agrees (module M) mode)))
        (modes_for (module M)))
    maps

(* --- concurrent stress -------------------------------------------------- *)

(* Random concurrent ops, then quiescent validation: invariants hold and
   contents is a plausible outcome (every key maps to a value some thread
   actually wrote for it). *)
let test_concurrent_updates (module M : MAP) mode lock_mode () =
  let mode = if M.supports_mode mode then mode else V.Vptr.Plain in
  V.reset ~lock_mode ();
  let t = M.create ~mode ~lock_mode ~n_hint:256 () in
  let key_space = 128 in
  let domains = 4 and per_domain = 2500 in
  let worker seed () =
    let st = Random.State.make [| seed |] in
    for _ = 1 to per_domain do
      let k = Random.State.int st key_space in
      match Random.State.int st 3 with
      | 0 -> ignore (M.insert t k ((k * 1000) + seed))
      | 1 -> ignore (M.delete t k)
      | _ -> ignore (M.find t k)
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join ds;
  M.check t;
  List.iter
    (fun (k, v) ->
      if not (k >= 0 && k < key_space) then Alcotest.fail "key out of space";
      if v / 1000 <> k then Alcotest.fail "value not written by any thread")
    (M.to_sorted_list t)

(* Writers insert increasing keys; snapshots must see a prefix: if key k
   is visible, every key written before it (same writer) is too, unless
   deleted — here nothing is deleted, so visibility must be a prefix per
   writer.  This is a direct linearizability probe for range queries. *)
let test_range_prefix_linearizable (module M : MAP) mode () =
  let mode = if M.supports_mode mode then mode else V.Vptr.Plain in
  if M.range_capability = Dstruct.Map_intf.Unordered then ()
  else begin
    V.reset ();
    let t = M.create ~mode ~n_hint:4096 () in
    let writers = 2 and keys_per_writer = 1500 in
    let key writer i = (i * 8) + writer in
    let writer_fn w () =
      for i = 0 to keys_per_writer - 1 do
        ignore (M.insert t (key w i) i)
      done
    in
    let violations = ref 0 in
    let reader () =
      for _ = 1 to 150 do
        let visible = M.range t min_int max_int in
        (* per writer, the observed keys must form a prefix of its
           insertion sequence *)
        for w = 0 to writers - 1 do
          let ks =
            List.filter_map
              (fun (k, _) -> if k mod 8 = w then Some ((k - w) / 8) else None)
              visible
          in
          let sorted = List.sort compare ks in
          let n = List.length sorted in
          let expected = List.init n (fun i -> i) in
          if sorted <> expected then incr violations
        done
      done
    in
    let ws = List.init writers (fun w -> Domain.spawn (writer_fn w)) in
    let r = Domain.spawn reader in
    reader ();
    List.iter Domain.join ws;
    Domain.join r;
    Alcotest.(check int) "ranges see per-writer prefixes" 0 !violations;
    M.check t
  end

(* Multifind atomicity: a writer keeps a pair of keys in sync (deletes
   one, inserts the other, values always equal); a multifind over both
   must never see matching presence with mismatched values. *)
let test_multifind_atomic (module M : MAP) mode () =
  let mode = if M.supports_mode mode then mode else V.Vptr.Plain in
  V.reset ();
  let t = M.create ~mode ~n_hint:64 () in
  ignore (M.insert t 1 0);
  ignore (M.insert t 2 0);
  let stop = Atomic.make false in
  let writer () =
    let i = ref 1 in
    while not (Atomic.get stop) do
      (* each key's value only grows; snapshot must see consistent values *)
      ignore (M.delete t 1);
      ignore (M.insert t 1 !i);
      ignore (M.delete t 2);
      ignore (M.insert t 2 !i);
      incr i
    done
  in
  let violations = ref 0 in
  let reader () =
    for _ = 1 to 4000 do
      match M.multifind t [| 1; 2 |] with
      | [| Some v1; Some v2 |] ->
          (* key 2 is updated after key 1, so v2 <= v1 <= v2 + 1 *)
          if not (v2 <= v1 && v1 <= v2 + 1) then incr violations
      | [| None; Some _ |] | [| _; None |] -> () (* mid-delete states are fine *)
      | _ -> incr violations
    done
  in
  let w = Domain.spawn writer in
  let r = Domain.spawn reader in
  reader ();
  Atomic.set stop true;
  Domain.join r;
  Domain.join w;
  Alcotest.(check int) "multifind sees consistent cuts" 0 !violations

(* --- cross-shard bank atomicity (qcheck-randomized) -------------------- *)

(* The sharded combinator's headline claim under test: a multi-point
   read spanning shards is one atomic snapshot.  Bank invariant, as in
   test_server's wire variant: pair [i] is the accounts
   [a = 2i + 1] (low keys) and [b = a + 100] (high keys), both seeded
   with [base].  Writers own disjoint pairs and move one unit per
   transfer with the deliberately non-atomic sequence
   [DEL a; INS a (va-1); DEL b; INS b (vb+1)], so [va] only decreases
   and [vb] only increases.  A snapshot that sees both members must see
   [va + vb] in {2*base - 1, 2*base}; a torn per-shard read drifts
   below the window and stays there.

   Pair placement straddles shards: deterministically for the
   range-partitioned btree (with [n_hint = 64] and 8 shards the
   combinator carves [0, 128) into width-16 intervals, and the members
   differ by 100 > 6 intervals), probabilistically for the
   hash-partitioned table (splitmix placement scatters the members).

   Readers audit both cross-shard read paths: [multifind] on one pair,
   and a whole-map [scan] whose single snapshot must show EVERY pair
   inside the window at once.  4 domains beyond the main one: 2 writers
   + 2 readers, all racing on a single core so domains preempt one
   another mid-transfer constantly. *)
let bank_violations (module M : MAP) ~seed ~pairs =
  V.reset ();
  let base = 1_000 in
  let t = M.create ~mode:V.Vptr.Ind_on_need ~n_hint:64 () in
  let key_a i = (2 * i) + 1 in
  let key_b i = key_a i + 100 in
  for i = 0 to pairs - 1 do
    assert (M.insert t (key_a i) base);
    assert (M.insert t (key_b i) base)
  done;
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let readers_done = Atomic.make 0 in
  let nwriters = 2 and nreaders = 2 in
  let writer w () =
    let owned =
      List.init pairs Fun.id
      |> List.filter (fun i -> i mod nwriters = w)
      |> Array.of_list
    in
    let va = Array.make pairs base and vb = Array.make pairs base in
    let rng = Workload.Splitmix.create (seed + (w * 7919)) in
    while not (Atomic.get stop) do
      let i = owned.(Workload.Splitmix.below rng (Array.length owned)) in
      let na = va.(i) - 1 and nb = vb.(i) + 1 in
      ignore (M.delete t (key_a i));
      ignore (M.insert t (key_a i) na);
      ignore (M.delete t (key_b i));
      ignore (M.insert t (key_b i) nb);
      va.(i) <- na;
      vb.(i) <- nb
    done
  in
  let audit_sum = function
    | Some x, Some y ->
        if not (x + y = 2 * base || x + y = (2 * base) - 1) then
          Atomic.incr violations
    | _ -> () (* a member mid-delete: no sum to audit *)
  in
  let reader r () =
    let rng = Workload.Splitmix.create (seed + 104729 + (r * 31)) in
    for check = 1 to 600 do
      if check land 1 = 0 then begin
        (* point audit: one pair through the snapshot multifind *)
        let i = Workload.Splitmix.below rng pairs in
        match M.multifind t [| key_a i; key_b i |] with
        | [| a; b |] -> audit_sum (a, b)
        | _ -> Atomic.incr violations
      end
      else begin
        (* global audit: one scan snapshot must show every pair coherent *)
        let kvs = M.scan t ~init:[] ~f:(fun acc k v -> (k, v) :: acc) in
        for i = 0 to pairs - 1 do
          audit_sum (List.assoc_opt (key_a i) kvs, List.assoc_opt (key_b i) kvs)
        done
      end
    done;
    if Atomic.fetch_and_add readers_done 1 = nreaders - 1 then
      Atomic.set stop true
  in
  let ws = List.init nwriters (fun w -> Domain.spawn (writer w)) in
  let rs = List.init nreaders (fun r -> Domain.spawn (reader r)) in
  List.iter Domain.join rs;
  List.iter Domain.join ws;
  M.check t;
  Atomic.get violations

let bank_qcheck_tests =
  List.map
    (fun (m : (module MAP)) ->
      let module M = (val m) in
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~count:3
           ~name:(M.name ^ " cross-shard bank atomicity")
           QCheck.(pair small_nat (int_range 4 10))
           (fun (seed, pairs) -> bank_violations m ~seed ~pairs = 0)))
    [ (module Sharded_btree_8 : MAP); (module Sharded_hashtable_5 : MAP) ]

let case name f = Alcotest.test_case name `Quick f

let per_map_cases (module M : MAP) =
  let modes = modes_for (module M) in
  List.concat
    [
      List.map
        (fun m ->
          case
            (Printf.sprintf "%s basics (%s)" M.name (V.Vptr.mode_name m))
            (test_sequential_basic (module M) m))
        modes;
      [
        case (M.name ^ " bulk") (test_sequential_bulk (module M) V.Vptr.Ind_on_need);
        case (M.name ^ " sorted order") (test_sorted_order (module M));
        case (M.name ^ " range semantics") (test_range_semantics (module M));
        case (M.name ^ " multifind") (test_multifind (module M));
        case
          (M.name ^ " concurrent (lock-free)")
          (test_concurrent_updates (module M) V.Vptr.Ind_on_need Flock.Lock.Lock_free);
        case
          (M.name ^ " concurrent (blocking)")
          (test_concurrent_updates (module M) V.Vptr.Ind_on_need Flock.Lock.Blocking);
        case
          (M.name ^ " range prefix linearizable")
          (test_range_prefix_linearizable (module M) V.Vptr.Ind_on_need);
        case (M.name ^ " multifind atomic")
          (test_multifind_atomic (module M) V.Vptr.Ind_on_need);
        case (M.name ^ " multifind atomic (Indirect)")
          (test_multifind_atomic (module M) V.Vptr.Indirect);
      ];
    ]

let () =
  Alcotest.run "dstruct"
    [
      ("maps", List.concat_map per_map_cases maps);
      ("qcheck-model", qcheck_model_tests);
      ("sharded-bank", bank_qcheck_tests);
    ]
