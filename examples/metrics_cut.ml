(* Consistent metric snapshots on the versioned hash table.

   A collector ingests monotonically increasing counters for a set of
   metrics, always writing "requests" before "responses" for each tick.
   Dashboards read both counters in one with_snapshot: the versioned hash
   table guarantees each read pair is a consistent temporal cut, so
   responses can never appear to exceed requests — the invariant this
   example verifies under sustained concurrency (and which fails on the
   non-versioned baseline).

   It doubles as the documented usage example of the verlib-obs API
   (Verlib.Obs): after the versioned run it prints the snapshot
   dwell-time histogram and the mechanism counters the library recorded
   along the way, instead of leaving observability to ad-hoc printf.

   Run with:  dune exec examples/metrics_cut.exe *)

module Metrics = Dstruct.Hashtable

let requests = 1

let responses = 2

let run mode =
  Verlib.reset ();
  let m = Metrics.create ~mode ~n_hint:64 () in
  ignore (Metrics.insert m requests 0);
  ignore (Metrics.insert m responses 0);
  let stop = Atomic.make false in
  let collector () =
    let tick = ref 1 in
    while not (Atomic.get stop) do
      (* value replacement = delete + insert (no blind updates in the map
         API); each counter individually only ever grows *)
      ignore (Metrics.delete m requests);
      ignore (Metrics.insert m requests !tick);
      ignore (Metrics.delete m responses);
      ignore (Metrics.insert m responses !tick);
      incr tick
    done
  in
  let c = Domain.spawn collector in
  let inversions = ref 0 in
  let reads = 10_000 in
  for _ = 1 to reads do
    match Metrics.multifind m [| requests; responses |] with
    | [| Some req; Some rsp |] ->
        (* responses is written after requests with the same tick, so a
           consistent cut has rsp <= req <= rsp + 1 *)
        if not (rsp <= req && req <= rsp + 1) then incr inversions
    | _ -> () (* mid-replacement: the key is legitimately absent *)
  done;
  Atomic.set stop true;
  Domain.join c;
  !inversions

(* The obs API in three calls: summarise one histogram, read the flat
   counters, convert cycle values to wall time. *)
let print_obs () =
  let open Verlib in
  let d = Obs.Hist.summary Obs.snap_dwell in
  Printf.printf
    "  snapshot dwell (sampled %d of %d snapshots): p50=%.1fus p90=%.1fus \
     p99=%.1fus max=%.1fus\n"
    d.Obs.Hist.s_count
    (Stats.total Stats.snapshots)
    (Hwclock.to_us d.Obs.Hist.s_p50)
    (Hwclock.to_us d.Obs.Hist.s_p90)
    (Hwclock.to_us d.Obs.Hist.s_p99)
    (Hwclock.to_us d.Obs.Hist.s_max);
  Printf.printf
    "  versioning mechanisms: %d direct installs, %d indirect links, %d \
     shortcuts, %d truncations\n"
    (Stats.total Stats.direct_installed)
    (Stats.total Stats.indirect_created)
    (Stats.total Stats.shortcuts)
    (Stats.total Stats.truncations)

let () =
  let versioned = run Verlib.Vptr.Ind_on_need in
  Printf.printf "versioned hash table:    %d inconsistent dashboards\n" versioned;
  print_obs ();
  assert (versioned = 0);
  let plain = run Verlib.Vptr.Plain in
  Printf.printf "non-versioned baseline:  %d inconsistent dashboards (expected > 0 under load)\n"
    plain;
  print_endline "metrics_cut OK"
