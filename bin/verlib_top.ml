(* verlib_top: a terminal dashboard for a running verlib_serve.  Polls
   the three observability wire commands — STATS (counters, phase
   histograms, gauges), METRICS (Prometheus plane, validated), PROFILE
   (sampling-profiler snapshot: per-domain activity, heaviest stacks,
   lock-site contention, GC counters) — and renders one screen per
   interval: throughput and shed rates, phase p50/p99, what every
   domain is doing right now, the most contended lock sites with their
   waits-on edges, and GC churn.

   [--once] renders a single plain snapshot and exits — the scripting /
   smoke mode.  With [--expect-lock-site] (and optionally
   [--expect-percent]) it turns into an assertion: exit 1 unless the
   named site is the top contention entry (and at least the given
   percent of profile samples mention it), which is how
   [make profile-smoke] gates convoy attribution.

   Keys (interactive mode): q quits, any other key refreshes early. *)

open Cmdliner
module P = Server.Protocol
module C = Server.Client
module J = Harness.Jsonlite

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Server host.")

let port =
  Arg.(required & opt (some int) None
       & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let interval =
  Arg.(value & opt float 1.0
       & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh interval.")

let once =
  Arg.(value & flag
       & info [ "once" ]
           ~doc:"Render one snapshot to stdout (no screen control, no \
                 keyboard) and exit — for scripts and the profile smoke.")

let expect_site =
  Arg.(value & opt (some string) None
       & info [ "expect-lock-site" ] ~docv:"SITE"
           ~doc:"With $(b,--once): exit 1 unless $(docv) is the most \
                 contended lock site (failed acquire attempts, then booked \
                 wait time) in the PROFILE snapshot.")

let expect_percent =
  Arg.(value & opt float 0.
       & info [ "expect-percent" ] ~docv:"PCT"
           ~doc:"With $(b,--expect-lock-site): additionally require at \
                 least $(docv) percent of profile samples to mention the \
                 site (held or waited on).")

(* --- wire ----------------------------------------------------------------- *)

type snap = {
  s_stats : J.t;
  s_profile : J.t;
  s_metrics : (int, string) result;  (* validated sample count *)
  s_time : float;
}

let poll ~host ~port =
  match C.connect ~host ~retries:5 ~port () with
  | exception e -> Error (Printexc.to_string e)
  | conn ->
      Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
      let bulk cmd =
        match C.request conn cmd with
        | Ok (P.Bulk s) -> Ok s
        | Ok r -> Error (P.pp_reply r)
        | Error e -> Error e
      in
      let ( let* ) = Result.bind in
      let* stats_raw = Result.map_error (( ^ ) "STATS: ") (bulk P.Stats) in
      let* stats = Result.map_error (( ^ ) "STATS: ") (J.parse_result stats_raw) in
      let* profile_raw =
        Result.map_error (( ^ ) "PROFILE: ") (bulk (P.Profile 0))
      in
      let* profile =
        Result.map_error (( ^ ) "PROFILE: ") (J.parse_result profile_raw)
      in
      let metrics =
        match bulk P.Metrics with
        | Error e -> Error e
        | Ok text -> (
            match Harness.Obs_report.parse_prometheus text with
            | Ok samples -> Ok (List.length samples)
            | Error e -> Error e)
      in
      Ok
        {
          s_stats = stats;
          s_profile = profile;
          s_metrics = metrics;
          s_time = Unix.gettimeofday ();
        }

(* --- JSON helpers --------------------------------------------------------- *)

let jnum k j = Option.value ~default:0. (Option.bind (J.member k j) J.to_number)

let jint k j = int_of_float (jnum k j)

let jstr k j = Option.value ~default:"" (Option.bind (J.member k j) J.to_string)

let jlist k j = Option.value ~default:[] (Option.bind (J.member k j) J.to_list)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- derived views -------------------------------------------------------- *)

(* Lock sites from the PROFILE snapshot, most contended first.
   Contended attempts are the primary key because wait time is only
   booked once an acquire finally succeeds — during a live convoy the
   convoyed site has enormous contended counts and near-zero booked
   wait; the tie-break on wait time orders quiescent snapshots. *)
let lock_sites profile =
  jlist "lock_sites" profile
  |> List.map (fun s ->
         ( jstr "site" s,
           jint "acquires" s,
           jint "contended" s,
           jnum "wait_us" s,
           jint "helps" s,
           jlist "edges" s ))
  |> List.sort (fun (_, _, c1, w1, _, _) (_, _, c2, w2, _, _) ->
         match compare c2 c1 with 0 -> compare w2 w1 | n -> n)

(* Percent of profile samples whose stack mentions [site].  Site
   activities are interned as "lock:<site>", so a holder frame renders
   as ";lock:<site>" and a waiter frame as ";wait:lock:<site>" — both
   contain "lock:<site>". *)
let site_sample_percent profile site =
  let total = jnum "samples" profile in
  if total <= 0. then 0.
  else
    let hit =
      List.fold_left
        (fun acc s ->
          let stack = jstr "stack" s in
          if contains stack ("lock:" ^ site)
          then acc +. jnum "count" s
          else acc)
        0. (jlist "stacks" profile)
    in
    100. *. hit /. total

let fmt_count v =
  if v >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

(* --- renderer ------------------------------------------------------------- *)

(* [prev] enables rate columns (commands/s, alloc/s, GC/s); [--once]
   has no previous snapshot and renders cumulative figures only. *)
let render ~host ~port ~prev snap =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let st = snap.s_stats and pr = snap.s_profile in
  let gc = Option.value ~default:J.Null (J.member "gc" pr) in
  let rate cur get =
    match prev with
    | Some p when snap.s_time -. p.s_time > 1e-3 ->
        let dt = snap.s_time -. p.s_time in
        Printf.sprintf "%s/s" (fmt_count ((cur -. get p) /. dt))
    | _ -> "-"
  in
  line "verlib_top — %s:%d  uptime %ds  domains %d  structure sz %s  clock %s"
    host port (jint "uptime_s" st) (jint "domains" st)
    (fmt_count (jnum "size" st))
    (jstr "clock_source" st);
  let running = J.member "running" pr = Some (J.Bool true) in
  line "profiler: %s hz=%d samples=%s   metrics: %s"
    (if running then "ON" else "off")
    (jint "hz" pr)
    (fmt_count (jnum "samples" pr))
    (match snap.s_metrics with
     | Ok n -> Printf.sprintf "%d samples ok" n
     | Error e -> "FAIL " ^ e);
  line "commands %s (%s)  conns %d/%d  shed %s  deadline_kills %s  proto_errors %s"
    (fmt_count (jnum "commands_total" st))
    (rate (jnum "commands_total" st) (fun p -> jnum "commands_total" p.s_stats))
    (jint "connections_active" st)
    (jint "connections_total" st)
    (fmt_count (jnum "shed" st))
    (fmt_count (jnum "deadline_kills" st))
    (fmt_count (jnum "protocol_errors" st));
  (* Transactions, from the txn_* gauges: commit rate, the abort share
     of finished transactions, mean validation retries per commit (the
     OCC contention signal) and exactly-once replays served from the
     token cache.  Hidden entirely until the first MULTI/EXEC. *)
  let gauges j = Option.value ~default:J.Null (J.member "gauges" j) in
  let g name = jnum name (gauges st) in
  let tc = g "txn_commits" and ta = g "txn_aborts" in
  if tc +. ta > 0. then
    line "txn: commits %s (%s)  abort%% %.2f  val-retries/commit %.2f  replays %s"
      (fmt_count tc)
      (rate tc (fun p -> jnum "txn_commits" (gauges p.s_stats)))
      (100. *. ta /. (tc +. ta))
      (if tc > 0. then g "txn_validation_retries" /. tc else 0.)
      (fmt_count (g "txn_replays"));
  (* Replication, from the repl_* gauges: feed rate, subscriber lag in
     stamps and bytes (both ~0 on a healthy pair, rising through a
     partition), applied records and the replica watermark, dropped
     duplicates and snapshot resyncs.  Hidden until the feed carries a
     record or a replica applies one. *)
  let rr = g "repl_records_total" and ra = g "repl_applied_total" in
  if rr +. ra > 0. then
    line
      "repl: records %s (%s)  lag %s stamps / %sB  applied %s  wm %s  dups %s  \
       resyncs %s"
      (fmt_count rr)
      (rate rr (fun p -> jnum "repl_records_total" (gauges p.s_stats)))
      (fmt_count (g "repl_lag_stamps"))
      (fmt_count (g "repl_lag_bytes"))
      (fmt_count ra)
      (fmt_count (g "repl_watermark"))
      (fmt_count (g "repl_dup_dropped"))
      (fmt_count (g "repl_resyncs"));
  line "gc: alloc %sB (%s)  minor %s (%s)  major %s (%s)  heap %s words"
    (fmt_count (jnum "alloc_bytes" gc))
    (rate (jnum "alloc_bytes" gc) (fun p ->
         jnum "alloc_bytes" (Option.value ~default:J.Null (J.member "gc" p.s_profile))))
    (fmt_count (jnum "minor_collections" gc))
    (rate (jnum "minor_collections" gc) (fun p ->
         jnum "minor_collections"
           (Option.value ~default:J.Null (J.member "gc" p.s_profile))))
    (fmt_count (jnum "major_collections" gc))
    (rate (jnum "major_collections" gc) (fun p ->
         jnum "major_collections"
           (Option.value ~default:J.Null (J.member "gc" p.s_profile))))
    (fmt_count (jnum "heap_words" gc));
  (* Phase / latency histograms, busiest first; tick-valued ones carry
     pre-converted *_us percentiles. *)
  let hists =
    match J.member "histograms" st with Some (J.Obj kvs) -> kvs | _ -> []
  in
  let hists =
    hists
    |> List.filter (fun (_, v) -> jnum "count" v > 0.)
    |> List.sort (fun (_, a) (_, b) -> compare (jnum "count" b) (jnum "count" a))
  in
  if hists <> [] then begin
    line "";
    line "%-28s %10s %12s %12s" "histogram" "count" "p50" "p99";
    List.iteri
      (fun i (name, v) ->
        if i < 10 then
          let pct k k_us =
            match J.member k_us v with
            | Some (J.Num us) -> Printf.sprintf "%.1fus" us
            | _ -> fmt_count (jnum k v)
          in
          line "%-28s %10s %12s %12s" name
            (fmt_count (jnum "count" v))
            (pct "p50" "p50_us") (pct "p99" "p99_us"))
      hists
  end;
  let sites = lock_sites pr in
  if sites <> [] then begin
    line "";
    line "%-24s %10s %10s %12s %7s  %s" "lock site" "acquires" "contended"
      "wait" "helps" "waits-on";
    List.iteri
      (fun i (site, acq, cont, wait_us, helps, edges) ->
        if i < 8 then
          let edge =
            match
              List.sort
                (fun a b -> compare (jnum "waits" b) (jnum "waits" a))
                edges
            with
            | [] -> "-"
            | e :: _ ->
                Printf.sprintf "holder %d (%s waits)" (jint "holder" e)
                  (fmt_count (jnum "waits" e))
          in
          line "%-24s %10s %10s %10.0fus %7s  %s" site
            (fmt_count (float_of_int acq))
            (fmt_count (float_of_int cont))
            wait_us
            (fmt_count (float_of_int helps))
            edge)
      sites
  end;
  let activity = jlist "activity" pr in
  if activity <> [] then begin
    line "";
    line "per-domain activity (last sample):";
    List.iter
      (fun a -> line "  slot %2d  %s" (jint "slot" a) (jstr "stack" a))
      activity
  end;
  let stacks = jlist "stacks" pr in
  if stacks <> [] then begin
    let total = jnum "samples" pr in
    line "";
    line "hottest stacks:";
    List.iteri
      (fun i s ->
        if i < 8 then
          let n = jnum "count" s in
          line "  %5.1f%%  %s"
            (if total > 0. then 100. *. n /. total else 0.)
            (jstr "stack" s))
      stacks
  end;
  Buffer.contents b

(* --- assertions (smoke mode) ---------------------------------------------- *)

let check_expectations profile expect_site expect_percent =
  match expect_site with
  | None -> true
  | Some site ->
      let ok_top =
        match lock_sites profile with
        | (top, _, _, _, _, _) :: _ when top = site ->
            Printf.printf "expect: OK — %s is the top contended site\n" site;
            true
        | (top, _, _, _, _, _) :: _ ->
            Printf.printf
              "expect: FAIL — top contended site is %s, wanted %s\n" top site;
            false
        | [] ->
            Printf.printf "expect: FAIL — no lock sites in profile\n";
            false
      in
      let ok_pct =
        if expect_percent <= 0. then true
        else begin
          let pct = site_sample_percent profile site in
          Printf.printf "expect: %.1f%% of samples mention %s (want >= %.1f%%)\n"
            pct site expect_percent;
          pct >= expect_percent
        end
      in
      ok_top && ok_pct

(* --- keyboard (interactive mode) ------------------------------------------ *)

let setup_tty () =
  if Unix.isatty Unix.stdin then
    match Unix.tcgetattr Unix.stdin with
    | exception _ -> ()
    | t ->
        let raw = { t with Unix.c_icanon = false; c_echo = false } in
        (try Unix.tcsetattr Unix.stdin Unix.TCSANOW raw with _ -> ());
        at_exit (fun () ->
            try Unix.tcsetattr Unix.stdin Unix.TCSANOW t with _ -> ())

(* Sleep up to [interval], returning the key pressed, if any.  Poll-
   based readiness (Server.Evpoll): stdin's fd number is 0 here, but no
   select call survives in the tree — FD_SETSIZE bites any process
   holding a thousand fds, and the dashboard may run inside one. *)
let wait_key interval =
  match Server.Evpoll.readable ~timeout:interval Unix.stdin with
  | true ->
      let buf = Bytes.create 1 in
      if (try Unix.read Unix.stdin buf 0 1 with _ -> 0) = 1 then
        Some (Bytes.get buf 0)
      else None
  | false -> None
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> None

(* --- driver ---------------------------------------------------------------- *)

let run host port interval once expect_site expect_percent =
  if once then begin
    match poll ~host ~port with
    | Error e ->
        Printf.eprintf "verlib_top: %s\n" e;
        exit 1
    | Ok snap ->
        print_string (render ~host ~port ~prev:None snap);
        if not (check_expectations snap.s_profile expect_site expect_percent)
        then exit 1
  end
  else begin
    setup_tty ();
    let prev = ref None in
    let quit = ref false in
    let failures = ref 0 in
    while not !quit do
      (match poll ~host ~port with
       | Error e ->
           incr failures;
           Printf.printf "\027[H\027[2Jverlib_top: %s (retry %d/5)\n%!" e
             !failures;
           if !failures >= 5 then exit 1
       | Ok snap ->
           failures := 0;
           let screen = render ~host ~port ~prev:!prev snap in
           Printf.printf "\027[H\027[2J%s(q quits)\n%!" screen;
           prev := Some snap);
      match wait_key (max 0.05 interval) with
      | Some ('q' | 'Q') -> quit := true
      | Some _ | None -> ()
    done
  end

let cmd =
  let doc = "live terminal dashboard for a running verlib_serve" in
  Cmd.v
    (Cmd.info "verlib_top" ~doc)
    Term.(
      const run $ host $ port $ interval $ once $ expect_site $ expect_percent)

let () = exit (Cmd.eval cmd)
