(* Compare two BENCH json files (Harness.Bench_json) and fail on
   regressions: throughput drops, latency/space growth beyond the
   threshold, rows that disappeared, or census invariant violations.

   Usage: bench_diff BASE.json CURRENT.json [--threshold PCT]
                     [--lat-threshold PCT] [--figures f1,f2,...]

   --figures restricts the comparison to the listed figure ids on both
   sides — how the serve-smoke target gates only the served-throughput
   rows against the full committed baseline.

   Exit codes: 0 = within threshold, 1 = regression or missing rows,
   2 = unreadable input / usage error.  The threshold defaults to 50%
   and should stay generous: the CI scale runs fractions of a second on
   a time-shared core, so run-to-run throughput noise is large; the gate
   exists to catch collapses and invariant breaks, not 5% drift.
   Latency percentiles are informational unless --lat-threshold is
   passed — on an oversubscribed core they measure the scheduler. *)

let usage () =
  prerr_endline
    "usage: bench_diff BASE.json CURRENT.json [--threshold PCT] [--lat-threshold PCT] [--figures f1,f2,...]";
  exit 2

let () =
  let base_path = ref None and cur_path = ref None and threshold = ref 50. in
  let lat_threshold = ref None in
  let figures = ref None in
  let parse_pct flag v =
    match float_of_string_opt v with
    | Some t when t > 0. -> t
    | Some _ | None ->
        Printf.eprintf "bad %s %S\n" flag v;
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        threshold := parse_pct "threshold" v;
        parse rest
    | "--lat-threshold" :: v :: rest ->
        lat_threshold := Some (parse_pct "lat-threshold" v);
        parse rest
    | "--figures" :: v :: rest ->
        figures := Some (String.split_on_char ',' v |> List.filter (( <> ) ""));
        parse rest
    | ("--threshold" | "--lat-threshold" | "--figures") :: [] -> usage ()
    | a :: rest ->
        (if !base_path = None then base_path := Some a
         else if !cur_path = None then cur_path := Some a
         else usage ());
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base_path, cur_path =
    match (!base_path, !cur_path) with
    | Some b, Some c -> (b, c)
    | _ -> usage ()
  in
  let load path =
    match Harness.Bench_json.read_file path with
    | Ok d -> d
    | Error e ->
        Printf.eprintf "bench_diff: %s\n" e;
        exit 2
  in
  let base = load base_path and cur = load cur_path in
  let restrict (d : Harness.Bench_json.doc) =
    match !figures with
    | None -> d
    | Some fs ->
        {
          d with
          Harness.Bench_json.d_rows =
            List.filter
              (fun r -> List.mem r.Harness.Bench_json.r_figure fs)
              d.Harness.Bench_json.d_rows;
        }
  in
  let base = restrict base and cur = restrict cur in
  let issues =
    Harness.Bench_json.diff ~threshold:!threshold ?lat_threshold:!lat_threshold
      base cur
  in
  Printf.printf
    "bench_diff: %d baseline row(s) [%s %s] vs %d current row(s) [%s %s], threshold %.0f%%\n"
    (List.length base.Harness.Bench_json.d_rows)
    base.Harness.Bench_json.d_scale base.Harness.Bench_json.d_created
    (List.length cur.Harness.Bench_json.d_rows)
    cur.Harness.Bench_json.d_scale cur.Harness.Bench_json.d_created !threshold;
  match issues with
  | [] ->
      print_endline "bench_diff: OK — no regressions";
      exit 0
  | issues ->
      List.iter
        (fun i -> print_endline ("  " ^ Harness.Bench_json.describe_issue i))
        issues;
      Printf.printf "bench_diff: FAIL — %d issue(s)\n" (List.length issues);
      exit 1
