(* CLI for running a single Verlib experiment with custom parameters —
   the counterpart of the paper artifact's experiment-customisation entry
   point (Appendix A.7). *)

open Cmdliner

let structure =
  let doc =
    Printf.sprintf "Data structure to benchmark: %s."
      Harness.Registry.spec_help
  in
  Arg.(value & opt string "btree" & info [ "s"; "structure" ] ~docv:"NAME" ~doc)

let mode =
  let alist =
    [
      ("indonneed", Verlib.Vptr.Ind_on_need);
      ("indirect", Verlib.Vptr.Indirect);
      ("noshortcut", Verlib.Vptr.No_shortcut);
      ("reconce", Verlib.Vptr.Rec_once);
      ("plain", Verlib.Vptr.Plain);
    ]
  in
  let doc = "Versioned pointer implementation: indonneed, indirect, noshortcut, reconce, plain." in
  Arg.(value & opt (enum alist) Verlib.Vptr.Ind_on_need & info [ "m"; "mode" ] ~doc)

let scheme =
  let alist =
    [
      ("query", Verlib.Stamp.Query_ts);
      ("update", Verlib.Stamp.Update_ts);
      ("hw", Verlib.Stamp.Hw_ts);
      ("tl2", Verlib.Stamp.Tl2_ts);
      ("opt", Verlib.Stamp.Opt_ts);
      ("nostamp", Verlib.Stamp.No_stamp);
    ]
  in
  let doc = "Timestamp scheme: query, update, hw, tl2, opt, nostamp." in
  Arg.(value & opt (enum alist) Verlib.Stamp.Query_ts & info [ "ts" ] ~doc)

let lock_mode =
  let alist = [ ("lockfree", Flock.Lock.Lock_free); ("blocking", Flock.Lock.Blocking) ] in
  Arg.(
    value
    & opt (enum alist) Flock.Lock.Lock_free
    & info [ "locks" ] ~doc:"Lock implementation: lockfree or blocking.")

let threads =
  Arg.(value & opt int 4 & info [ "t"; "threads" ] ~doc:"Number of worker domains.")

let size = Arg.(value & opt int 10_000 & info [ "n"; "size" ] ~doc:"Structure size.")

let updates =
  Arg.(value & opt int 20 & info [ "u"; "updates" ] ~doc:"Update percentage (0-100).")

let query =
  let doc = "Query kind for non-update operations: find, range:SIZE, multifind:K." in
  Arg.(value & opt string "multifind:16" & info [ "q"; "query" ] ~doc)

let theta =
  Arg.(value & opt float 0. & info [ "z"; "zipf" ] ~doc:"Zipfian parameter (0 = uniform).")

let duration =
  Arg.(value & opt float 1.0 & info [ "d"; "duration" ] ~doc:"Seconds per run.")

let repeats = Arg.(value & opt int 3 & info [ "r"; "repeats" ] ~doc:"Runs to average.")

let stats_fmt =
  let alist = [ ("none", `None); ("pretty", `Pretty); ("json", `Json) ] in
  let doc =
    "Observability report: pretty (aligned tables) or json (machine readable, \
     stdout carries only the JSON).  Enables 1-in-64 per-operation latency \
     sampling."
  in
  Arg.(value & opt (enum alist) `None & info [ "stats" ] ~docv:"FMT" ~doc)

let trace_file =
  let doc =
    "Record typed events (snapshots, shortcuts, truncations, stamp increments, \
     lock traffic) and export them as Chrome trace-event JSON to $(docv) — \
     loadable in Perfetto or chrome://tracing.  Off by default; the run keeps \
     only the last repeat's events."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let profile_out =
  let doc =
    "Run the continuous sampling profiler ([Verlib.Obs.Profile], default \
     rate) for the duration of the run and write the accumulated \
     collapsed-stack profile (flamegraph.pl / speedscope compatible) to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)

let profile_hz =
  let doc = "Sampling rate for $(b,--profile-out); 0 uses the default (97)." in
  Arg.(value & opt int 0 & info [ "profile-hz" ] ~docv:"HZ" ~doc)

let census =
  let doc =
    "Register the structure with the chain-census registry, take a quiescent \
     final census after the run (chain-length distribution, live vs. \
     reclaimable versions, indirect links, shortcut ratio) and audit the \
     chain invariants; reported in the stats output."
  in
  Arg.(value & flag & info [ "census" ] ~doc)

let census_interval =
  let doc =
    "With $(b,--census), additionally sample a census every $(docv) seconds \
     from a background domain while the workers run, reporting a time series \
     (chain growth and reclamation lag over time).  0 disables the sampler."
  in
  Arg.(value & opt float 0. & info [ "census-interval" ] ~docv:"SECONDS" ~doc)

let lat_sample_of_stats = function `None -> 0 | `Pretty | `Json -> 64

let parse_query s =
  match String.split_on_char ':' s with
  | [ "find" ] | [ "finds" ] -> Ok Workload.Opgen.Finds
  | [ "range"; n ] -> Ok (Workload.Opgen.Ranges (int_of_string n))
  | [ "multifind"; n ] -> Ok (Workload.Opgen.Multifinds (int_of_string n))
  | _ -> Error (`Msg (Printf.sprintf "bad query spec %S" s))

(* First SIGINT/SIGTERM: cooperative stop — the driver winds the run
   down (workers joined, background census domain stopped) and the
   stats / census / trace reports are still written in full, instead of
   the process dying mid-write.  A second signal force-exits. *)
let install_signal_handlers () =
  let signalled = ref false in
  let handle _ =
    if !signalled then exit 130
    else begin
      signalled := true;
      prerr_endline "verlib_run: stopping (again to force-quit)...";
      Harness.Driver.request_stop ()
    end
  in
  List.iter
    (fun s -> try Sys.set_signal s (Sys.Signal_handle handle) with _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let run structure mode scheme lock_mode threads size updates query theta duration repeats
    stats_fmt trace_file profile_out profile_hz census census_interval =
  install_signal_handlers ();
  match parse_query query with
  | Error (`Msg m) ->
      prerr_endline m;
      exit 2
  | Ok q ->
      let map = Harness.Registry.find structure in
      let module M = (val map : Dstruct.Map_intf.MAP) in
      if not (M.supports_mode mode) then begin
        Printf.eprintf "%s does not support mode %s\n" structure
          (Verlib.Vptr.mode_name mode);
        exit 2
      end;
      let spec =
        {
          Harness.Driver.map;
          mode;
          lock_mode;
          scheme;
          direct_stores = true;
          n = size;
          theta;
          groups = [ { Harness.Driver.g_count = threads; g_update_percent = updates; g_query = q } ];
          duration;
          repeats;
          seed = 42;
          lat_sample = lat_sample_of_stats stats_fmt;
          census;
          census_interval;
        }
      in
      if trace_file <> None then Verlib.Obs.set_tracing true;
      if profile_out <> None then
        Verlib.Obs.Profile.start
          ~hz:(if profile_hz > 0 then profile_hz
               else Verlib.Obs.Profile.default_hz)
          ();
      let r = Harness.Driver.run spec in
      if profile_out <> None then Verlib.Obs.Profile.stop ();
      Verlib.Obs.set_tracing false;
      let locks_name =
        match lock_mode with Flock.Lock.Lock_free -> "lock-free" | Blocking -> "blocking"
      in
      (match stats_fmt with
       | `Json ->
           (* stdout carries only the JSON report, so it pipes into jq or
              the smoke validator unchanged. *)
           let extra =
             [
               ("structure", Printf.sprintf "%S" structure);
               ("mode", Printf.sprintf "%S" (Verlib.Vptr.mode_name mode));
               ("scheme", Printf.sprintf "%S" (Verlib.Stamp.scheme_name scheme));
               ("locks", Printf.sprintf "%S" locks_name);
               ("threads", string_of_int threads);
               ("n", string_of_int size);
               ("update_percent", string_of_int updates);
               ("zipf", Printf.sprintf "%.2f" theta);
               ("duration_s", Printf.sprintf "%.3f" duration);
               ("repeats", string_of_int repeats);
               ("total_mops", Printf.sprintf "%.6f" r.Harness.Driver.total_mops);
               ("final_size", string_of_int r.Harness.Driver.final_size);
               ("clock_increments", string_of_int r.Harness.Driver.increments);
               ("optimistic_aborts", string_of_int r.Harness.Driver.aborts);
               ( "space",
                 Printf.sprintf "{\"bytes_per_entry\":%.1f}"
                   r.Harness.Driver.space_bytes_per_entry );
             ]
           in
           let extra =
             match r.Harness.Driver.census with
             | None -> extra
             | Some c ->
                 let series =
                   r.Harness.Driver.census_series
                   |> List.map (fun (t, c) ->
                          Printf.sprintf "{\"t_s\":%.3f,\"census\":%s}" t
                            (Harness.Obs_report.json_of_census c))
                   |> String.concat ","
                 in
                 extra
                 @ [
                     ("census", Harness.Obs_report.json_of_census c);
                     ("census_series", Printf.sprintf "[%s]" series);
                   ]
           in
           print_endline (Harness.Obs_report.to_json ~extra r.Harness.Driver.obs)
       | `None | `Pretty ->
           Printf.printf
             "%s mode=%s ts=%s locks=%s threads=%d n=%d updates=%d%% zipf=%.2f\n"
             structure
             (Verlib.Vptr.mode_name mode)
             (Verlib.Stamp.scheme_name scheme)
             locks_name threads size updates theta;
           Printf.printf "throughput: %.3f Mop/s (final size %d)\n"
             r.Harness.Driver.total_mops r.Harness.Driver.final_size;
           Printf.printf "clock increments: %d, optimistic aborts: %d\n"
             r.Harness.Driver.increments r.Harness.Driver.aborts;
           Printf.printf "space: %.1f bytes/entry\n"
             r.Harness.Driver.space_bytes_per_entry;
           if stats_fmt = `Pretty then
             Harness.Obs_report.pretty_print r.Harness.Driver.obs;
           (match r.Harness.Driver.census with
            | None -> ()
            | Some c ->
                Harness.Obs_report.pretty_census c;
                List.iter
                  (fun (t, (c : Verlib.Chainscan.census)) ->
                    Printf.printf
                      "census @ %.2fs: versions=%d reclaimable=%d \
                       indirect_links=%d max_chain=%d violations=%d\n"
                      t c.Verlib.Chainscan.c_versions c.c_reclaimable
                      c.c_indirect_links c.c_max_chain c.c_violation_count)
                  r.Harness.Driver.census_series));
      (match profile_out with
       | None -> ()
       | Some path ->
           Verlib.Obs.Profile.write_collapsed path;
           Printf.eprintf "profile: %d sample(s) -> %s\n%!"
             (Verlib.Obs.Profile.samples_total ())
             path);
      match trace_file with
      | None -> ()
      | Some path ->
          let streams = Verlib.Obs.export_trace path in
          Printf.eprintf "trace: %d domain stream(s) written to %s\n%!" streams path

let cmd =
  let doc = "run one Verlib experiment with custom parameters" in
  Cmd.v
    (Cmd.info "verlib_run" ~doc)
    Term.(
      const run $ structure $ mode $ scheme $ lock_mode $ threads $ size $ updates
      $ query $ theta $ duration $ repeats $ stats_fmt $ trace_file
      $ profile_out $ profile_hz $ census $ census_interval)

let () = exit (Cmd.eval cmd)
