(* verlib-loadgen: multi-domain closed-loop client for verlib-serve.

   Two mixes:

   - [--mix opgen] (default): each client domain owns one connection and
     one [Workload.Opgen] stream (finds / range counts / multifinds plus
     updates, uniform or Zipfian keys), sends batches of [--pipeline]
     commands and reads the replies back-to-back.  Batch round-trip
     latency is recorded into the existing [Verlib.Obs] histograms
     (attributed to the batch's first command kind), so the report and
     JSON plumbing is shared with the in-process harness.  With [--json]
     the run emits [Harness.Bench_json] schema-v1 rows (figure "serve"
     by default) that gate through bench_diff like any other benchmark.

   - [--mix bank]: the serializability workload.  Writer domains own
     disjoint account pairs (a = 2i+1, b = 2i+2, both seeded with BASE)
     and move one unit per transfer with one server-side transaction
     [MULTI; DEL a; PUT a (va-1); DEL b; PUT b (vb+1); EXEC token].
     The server commits the four effects atomically at a single
     versionstamp, exactly once per token, so there is no settle/replay
     pass and no partially-applied transfer to repair.  Reader domains
     audit the pair sum through read-only transactions, MGET and (on
     ordered structures) RANGE; every observed pair must sum to
     {e exactly} 2*BASE — the old 2*BASE-1 "between the two PUTs"
     window and the visible in-flight DEL are gone.  On shutdown a
     quiescent MGET of every account must sum to exactly 2*BASE*pairs.

   Exit codes: 0 = clean; 1 = invariant violation, reply errors, or
   census violations reported by the server's STATS; 2 = usage. *)

open Cmdliner
module P = Server.Protocol
module C = Server.Client

(* --- CLI ------------------------------------------------------------------ *)

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Server address.")

let port =
  Arg.(value & opt int 7379 & info [ "port" ] ~doc:"Server TCP port.")

let host_port =
  let parse s =
    let bad () = Error (`Msg (Printf.sprintf "expected HOST:PORT, got %S" s)) in
    let mk h p = if p >= 1 && p <= 65535 then Ok (h, p) else bad () in
    match String.rindex_opt s ':' with
    | None -> ( match int_of_string_opt s with
        | Some p -> mk "127.0.0.1" p
        | None -> bad ())
    | Some i -> (
        let h = String.sub s 0 i
        and rest = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt rest with
        | Some p when h <> "" -> mk h p
        | _ -> bad ())
  in
  let print fmt (h, p) = Format.fprintf fmt "%s:%d" h p in
  Arg.conv (parse, print)

let failover_to =
  Arg.(value & opt_all host_port [] & info [ "failover-to" ] ~docv:"HOST:PORT"
       ~doc:"Failover candidate endpoint behind --host/--port (repeatable). \
             Client transports rotate through the ring on transport failure \
             and on -ERR READONLY refusals, so a PROMOTE'd replica picks up \
             the load without restarting the generator.")

(* Failover candidates behind --host/--port, set once in [run] and read at
   every [connect_rt] site — a module-level ref beats threading one more
   parameter through every worker signature. *)
let failover_eps : (string * int) list ref = ref []

let threads =
  Arg.(value & opt int 4 & info [ "t"; "threads" ]
       ~doc:"Client domains (one connection each).")

let depth =
  Arg.(value & opt int 16 & info [ "p"; "pipeline" ]
       ~doc:"Pipelining depth: commands per batch before reading replies.")

let size =
  Arg.(value & opt int 10_000 & info [ "n"; "size" ]
       ~doc:"Intended structure size (the opgen key universe is 2n).")

let updates =
  Arg.(value & opt int 20 & info [ "u"; "updates" ]
       ~doc:"Update percentage (0-100) for the opgen mix.")

let query =
  Arg.(value & opt string "multifind:16" & info [ "q"; "query" ]
       ~doc:"Query kind for non-update operations: find, range:SIZE, multifind:K.")

let theta =
  Arg.(value & opt float 0. & info [ "z"; "zipf" ]
       ~doc:"Zipfian parameter (0 = uniform).")

let duration =
  Arg.(value & opt float 1.0 & info [ "d"; "duration" ] ~doc:"Seconds to run.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let mix =
  let alist = [ ("opgen", `Opgen); ("bank", `Bank) ] in
  Arg.(value & opt (enum alist) `Opgen & info [ "mix" ]
       ~doc:"Workload: opgen (throughput) or bank (snapshot invariant).")

let pairs =
  Arg.(value & opt int 64 & info [ "pairs" ]
       ~doc:"Account pairs for the bank mix.")

let no_fill =
  Arg.(value & flag & info [ "no-fill" ]
       ~doc:"Skip the pipelined fill phase (opgen mix).")

let ci =
  Arg.(value & flag & info [ "ci" ]
       ~doc:"Smoke scale: clamps size to 1000 and duration to 0.5s.")

let json_out =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
       ~doc:"Write Bench_json schema-v1 rows (figure $(b,--figure)) to $(docv).")

let merge_into =
  Arg.(value & opt (some string) None & info [ "merge-into" ] ~docv:"BASE"
       ~doc:"With $(b,--json), merge the rows into the doc read from \
             $(docv) (replacing same figure+label rows) instead of \
             writing a fresh doc.")

let figure =
  Arg.(value & opt string "serve" & info [ "figure" ]
       ~doc:"Figure id for emitted Bench_json rows.")

let stats_out =
  Arg.(value & opt (some string) None & info [ "stats-out" ] ~docv:"FILE"
       ~doc:"Write the server's raw STATS JSON (post-run) to $(docv).")

let trace_sample =
  Arg.(value & opt int 0 & info [ "trace-sample" ] ~docv:"N"
       ~doc:"Opgen mix: after every $(docv)th batch each worker sends one \
             extra command singly under a TRACE prefix and joins the \
             server's phase decomposition with its own measured RTT \
             (docs/OBSERVABILITY.md).  The run fails if any sample's phase \
             sum exceeds its RTT by more than 5% — the decomposition must \
             nest inside the client-observed latency.  0 = off.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
       ~doc:"Write the joined trace samples (client RTT plus server phase \
             breakdown, one JSON object) to $(docv).")

let metrics_out =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
       ~doc:"Fetch METRICS after the run, validate the Prometheus text \
             exposition with the strict line parser, and write it to \
             $(docv).  A malformed exposition fails the run.")

let profile_out =
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE"
       ~doc:"Fetch PROFILE after the run (cumulative sampling-profiler \
             snapshot: activity stacks, lock-site contention, GC rates), \
             validate the JSON parses, and write it to $(docv).  A malformed \
             snapshot fails the run.  The server must sample \
             ($(b,verlib_serve --profile-hz)).")

let rt_attempts =
  Arg.(value & opt int 0 & info [ "rt-attempts" ] ~docv:"N"
       ~doc:"Bound the retrying transport's reconnect-and-replay budget for \
             opgen workers (0 = library default).  Use 1 against a \
             deliberately wedged server (e.g. the blocking-convoy profile \
             smoke) so each client connection parks at most one server \
             worker instead of replaying onto ten.")

let faults =
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"PLAN"
       ~doc:"Arm a fault plan (preset name or spec, see docs/RESILIENCE.md) \
             in $(b,this) process for the measured window — exercises the \
             client.read/client.write injection points, i.e. a flaky wire \
             as seen from the client.  The retry layer must mask it; \
             disarmed again before the audit/STATS phase.")

let idle_conns =
  Arg.(value & opt int 0 & info [ "idle-conns" ] ~docv:"N"
       ~doc:"Open N extra raw connections before the workload, PING each \
             once, then hold them idle for the whole run while the hot set \
             hammers the server — the c10k posture.  After the workload \
             every held connection is PINGed again; any that died fails \
             the run.  Requires an event-loop server: N is bounded by \
             $(b,ulimit -n), not by the server's domain count.")

(* --- shared machinery ----------------------------------------------------- *)

let stop = Atomic.make false

let go = Atomic.make false

let ready = Atomic.make 0

let install_signal_handlers () =
  let handle _ = Atomic.set stop true in
  List.iter
    (fun s -> try Sys.set_signal s (Sys.Signal_handle handle) with _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let wait_go () =
  Atomic.incr ready;
  while not (Atomic.get go || Atomic.get stop) do
    Domain.cpu_relax ()
  done

let parse_query s =
  match String.split_on_char ':' s with
  | [ "find" ] | [ "finds" ] -> Ok Workload.Opgen.Finds
  | [ "range"; n ] -> Ok (Workload.Opgen.Ranges (int_of_string n))
  | [ "multifind"; n ] -> Ok (Workload.Opgen.Multifinds (int_of_string n))
  | _ -> Error (`Msg (Printf.sprintf "bad query spec %S" s))

type kind = K_find | K_insert | K_delete | K_range | K_multifind

let kind_index = function
  | K_find -> 0 | K_insert -> 1 | K_delete -> 2 | K_range -> 3 | K_multifind -> 4

let kind_name = function
  | K_find -> "find" | K_insert -> "insert" | K_delete -> "delete"
  | K_range -> "range" | K_multifind -> "multifind"

let hist_of_kind = function
  | K_find -> Verlib.Obs.lat_find
  | K_insert -> Verlib.Obs.lat_insert
  | K_delete -> Verlib.Obs.lat_delete
  | K_range -> Verlib.Obs.lat_range
  | K_multifind -> Verlib.Obs.lat_multifind

let translate = function
  | Workload.Opgen.Insert (k, v) -> (P.Put (k, v), K_insert)
  | Workload.Opgen.Delete k -> (P.Del k, K_delete)
  | Workload.Opgen.Find k -> (P.Get k, K_find)
  | Workload.Opgen.Range (a, b) -> (P.Rangecount (a, b), K_range)
  | Workload.Opgen.Multifind ks -> (P.Mget ks, K_multifind)

(* One traced request joined with its client-measured round trip: the
   server's phase decomposition (the [@]-frame) must nest inside the
   RTT — phases are exclusive and the span begins at request-byte
   arrival, so [phase sum <= rtt] up to µs-conversion rounding. *)
type tsample = {
  ts_cmd : string;
  ts_rtt_us : float;
  ts_trace : P.trace_info;
}

type wstats = {
  ops : int array;  (** per {!kind} index *)
  mutable errors : int;
  mutable first_error : string option;
  mutable retries : int;  (** wire retries the rt client absorbed *)
  mutable shed : int;  (** [-BUSY] replies the rt client observed *)
  mutable samples : tsample list;  (** traced requests, newest first *)
}

let new_wstats () =
  { ops = Array.make 5 0; errors = 0; first_error = None; retries = 0;
    shed = 0; samples = [] }

let note_error st msg =
  st.errors <- st.errors + 1;
  if st.first_error = None then st.first_error <- Some msg

(* --- opgen mix ------------------------------------------------------------ *)

let fill_over_wire conn gen rng =
  let batch = ref [] and count = ref 0 in
  let flush () =
    if !batch <> [] then begin
      (match C.pipeline conn (List.rev !batch) with
       | Ok _ -> ()
       | Error e -> failwith ("loadgen fill: " ^ e));
      batch := [];
      count := 0
    end
  in
  Workload.Opgen.fill gen rng ~insert:(fun k v ->
      batch := P.Put (k, v) :: !batch;
      incr count;
      if !count >= 512 then flush ();
      true);
  flush ()

let opgen_worker ~host ~port ~depth ~gen_of ~trace_sample ~rt_attempts ~wid st
    () =
  (* The retrying transport: reconnects and re-issues after wire faults
     (every opgen command is idempotent), honours [-BUSY] shedding.
     [rt_attempts] bounds the reconnect-and-replay budget: against a
     deliberately convoyed server (blocking-convoy smoke) the default
     budget would wedge up to 10 fresh workers per client connection. *)
  let rt =
    match rt_attempts with
    | Some n ->
        C.connect_rt ~host ~port ~endpoints:!failover_eps ~max_attempts:n
          ~seed:(0x10adc0de + (wid * 7919)) ()
    | None ->
        C.connect_rt ~host ~port ~endpoints:!failover_eps
          ~seed:(0x10adc0de + (wid * 7919)) ()
  in
  let gen = gen_of wid in
  let rng = Workload.Splitmix.create (0x10adc0de + (wid * 7919)) in
  let batches = ref 0 in
  (* One traced request, sent singly (not pipelined) so the RTT it joins
     against measures exactly one server-side span.  Shed or errored
     replies carry no usable decomposition and are dropped. *)
  let trace_one () =
    let c, k = translate (Workload.Opgen.next gen rng) in
    let id = ((wid + 1) * 1_000_000) + !batches in
    let t0 = Verlib.Hwclock.now () in
    match C.rt_request_traced rt ~trace_id:id c with
    | Ok r, tr ->
        let t1 = Verlib.Hwclock.now () in
        (match r with
         | P.Err msg -> note_error st msg
         | P.Busy _ -> ()
         | _ ->
             let i = kind_index k in
             st.ops.(i) <- st.ops.(i) + 1;
             (match tr with
              | Some t ->
                  st.samples <-
                    { ts_cmd = kind_name k;
                      ts_rtt_us = Verlib.Hwclock.to_us (t1 - t0);
                      ts_trace = t }
                    :: st.samples
              | None -> ()))
    | Error e, _ ->
        if not (Atomic.get stop) then note_error st e;
        Atomic.set stop true
  in
  wait_go ();
  (try
     while not (Atomic.get stop) do
       let cmds = ref [] and kinds = ref [] in
       for _ = 1 to depth do
         let c, k = translate (Workload.Opgen.next gen rng) in
         cmds := c :: !cmds;
         kinds := k :: !kinds
       done;
       let cmds = List.rev !cmds and kinds = List.rev !kinds in
       let t0 = Verlib.Hwclock.now () in
       (match C.rt_pipeline rt cmds with
        | Ok replies ->
            let t1 = Verlib.Hwclock.now () in
            (match kinds with
             | k :: _ ->
                 Verlib.Obs.Hist.observe (hist_of_kind k) (t1 - t0)
             | [] -> ());
            List.iter2
              (fun k r ->
                match r with
                | P.Err msg -> note_error st msg
                | P.Busy _ ->
                    (* shed even after the retry budget: not executed,
                       not an op, not an error *)
                    ()
                | _ ->
                    let i = kind_index k in
                    st.ops.(i) <- st.ops.(i) + 1)
              kinds replies
        | Error e ->
            if not (Atomic.get stop) then note_error st e;
            Atomic.set stop true);
       incr batches;
       if
         trace_sample > 0
         && !batches mod trace_sample = 0
         && not (Atomic.get stop)
       then trace_one ()
     done
   with e -> note_error st (Printexc.to_string e));
  let r, b = C.rt_stats rt in
  st.retries <- r;
  st.shed <- b;
  C.rt_close rt

(* --- bank mix ------------------------------------------------------------- *)

let bank_base = 1_000_000

type bank_stats = {
  mutable transfers : int;
  mutable checks : int;
  mutable skipped : int;  (** a read shed past the retry budget ([-BUSY]) *)
  mutable violations : int;
  mutable berrors : int;
  mutable giveups : int;
      (** transactional transport exhausted its retry budget — asserted
          {e zero} by the driver: EXEC tokens make wholesale retries
          exactly-once, so under the shipped fault plans no transfer or
          audit read should ever run out of attempts *)
  mutable detail : string option;
  mutable bretries : int;
  mutable bshed : int;
}

let new_bank_stats () =
  { transfers = 0; checks = 0; skipped = 0; violations = 0; berrors = 0;
    giveups = 0; detail = None; bretries = 0; bshed = 0 }

let bank_note_violation st msg =
  st.violations <- st.violations + 1;
  if st.detail = None then st.detail <- Some msg

let bank_note_error st msg =
  st.berrors <- st.berrors + 1;
  if st.detail = None then st.detail <- Some msg

(* Writer [w] owns pairs {i | i mod nwriters = w}; local shadows of the
   two balances make every transfer a blind transactional write. *)
let bank_writer ~host ~port ~pairs ~nwriters ~wid st () =
  (* Each transfer is one server-side transaction
     [MULTI; DEL a; PUT a na; DEL b; PUT b nb; EXEC token]: the server
     installs all four effects atomically at a single versionstamp or
     none of them, and the fresh token makes the commit exactly-once, so
     an ambiguous wire failure is retried wholesale by [rt_txn] without
     risk of double-apply.  The old settle loop — replaying a possibly
     half-applied pipelined sequence until it converged — is gone;
     there is no half-applied state to settle (docs/TRANSACTIONS.md). *)
  let rt =
    C.connect_rt ~host ~port ~endpoints:!failover_eps
      ~seed:(0xba9c + (wid * 104729)) ()
  in
  let owned =
    List.init pairs Fun.id
    |> List.filter (fun i -> i mod nwriters = wid)
    |> Array.of_list
  in
  let va = Hashtbl.create 16 and vb = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      Hashtbl.replace va i bank_base;
      Hashtbl.replace vb i bank_base)
    owned;
  let rng = Workload.Splitmix.create (0xba9c + (wid * 104729)) in
  wait_go ();
  (try
     while not (Atomic.get stop) && Array.length owned > 0 do
       let i = owned.(Workload.Splitmix.below rng (Array.length owned)) in
       let a = (2 * i) + 1 and b = (2 * i) + 2 in
       let na = Hashtbl.find va i - 1 and nb = Hashtbl.find vb i + 1 in
       (match
          C.rt_txn rt [ P.Del a; P.Put (a, na); P.Del b; P.Put (b, nb) ]
        with
       | Ok (_vs, [ P.Int 1; P.Ok_; P.Int 1; P.Ok_ ]) ->
           (* Both accounts were present and both re-inserts landed —
              the only step shape a committed transfer can have. *)
           Hashtbl.replace va i na;
           Hashtbl.replace vb i nb;
           st.transfers <- st.transfers + 1
       | Ok (_, rs) ->
           bank_note_error st
             ("transfer steps: " ^ String.concat " " (List.map P.pp_reply rs));
           Atomic.set stop true
       | Error e ->
           (* The transactional transport ran out of attempts.  Unlike
              the old pipelined bank there is nothing to settle — the
              commit either claimed the token or it didn't — but the
              writer's shadow balances are now one transfer ambiguous,
              so the run stops and the driver fails on [giveups > 0].
              Under the shipped plans (abort-storm, flaky-wire) the
              retry budget makes this probabilistically unreachable. *)
           st.giveups <- st.giveups + 1;
           bank_note_error st ("transfer gave up: " ^ e);
           Atomic.set stop true)
     done
   with e -> bank_note_error st (Printexc.to_string e));
  let r, b = C.rt_stats rt in
  st.bretries <- r;
  st.bshed <- b;
  C.rt_close rt

(* Transfers commit atomically, so every observed pair must sum to
   {e exactly} 2*BASE: the pipelined bank's 2*BASE-1 "between the two
   PUTs" window and its visible in-flight DEL no longer exist, and an
   absent account or an off-by-one sum is a serializability
   violation, not a skip. *)
let check_pair_sum st ~via a b = function
  | None ->
      bank_note_violation st
        (Printf.sprintf
           "%s pair (%d,%d): account absent — transfer observed mid-flight"
           via a b)
  | Some sum ->
      st.checks <- st.checks + 1;
      if sum <> 2 * bank_base then
        bank_note_violation st
          (Printf.sprintf
             "%s pair (%d,%d): sum %d <> %d — non-atomic multi-read" via a b
             sum (2 * bank_base))

(* Extract both balances from an MGET reply ([Int|Nil; Int|Nil]). *)
let sum_of_mget = function
  | P.Arr [ P.Int x; P.Int y ] -> Ok (Some (x + y))
  | P.Arr [ _; _ ] -> Ok None  (* an account is mid-transfer *)
  | r -> Error ("MGET reply: " ^ P.pp_reply r)

(* Extract both balances from a RANGE a b reply (flat [k;v;...]). *)
let sum_of_range a b = function
  | P.Arr items ->
      let rec pairs = function
        | P.Int k :: P.Int v :: rest -> ((k, v) :: pairs rest)
        | [] -> []
        | _ -> raise Exit
      in
      (try
         let kvs = pairs items in
         (match (List.assoc_opt a kvs, List.assoc_opt b kvs) with
          | Some x, Some y -> Ok (Some (x + y))
          | _ -> Ok None)
       with Exit -> Error "RANGE reply: odd k/v framing")
  | P.Err e -> Error ("RANGE: " ^ e) (* capability was probed at start *)
  | r -> Error ("RANGE reply: " ^ P.pp_reply r)

let bank_reader ~host ~port ~pairs ~rid st () =
  let rt =
    C.connect_rt ~host ~port ~endpoints:!failover_eps
      ~seed:(0x5ead + (rid * 65537)) ()
  in
  (* Probe once whether RANGE is supported (ordered structure). *)
  let ranges_ok =
    match C.rt_request rt (P.Range (1, 2)) with
    | Ok (P.Err _) -> false
    | Ok _ -> true
    | Error _ -> false
  in
  let rng = Workload.Splitmix.create (0x5ead + (rid * 65537)) in
  wait_go ();
  (try
     while not (Atomic.get stop) do
       let i = Workload.Splitmix.below rng pairs in
       let a = (2 * i) + 1 and b = (2 * i) + 2 in
       (* Three audit paths, all held to the exact-sum invariant: a
          read-only transaction (validated against the commit clock),
          an atomic MGET, and — on ordered structures — a RANGE over
          the pair's snapshot. *)
       let die = Workload.Splitmix.below rng (if ranges_ok then 3 else 2) in
       if die = 0 then (
         match C.rt_txn rt [ P.Get a; P.Get b ] with
         | Ok (_vs, [ P.Int x; P.Int y ]) ->
             check_pair_sum st ~via:"TXN" a b (Some (x + y))
         | Ok (_, _) -> check_pair_sum st ~via:"TXN" a b None
         | Error e ->
             (* Reads carry no effects, but a read that runs out of
                attempts still counts against the zero-giveups
                assertion — the retry budget is sized so it never
                should. *)
             st.giveups <- st.giveups + 1;
             bank_note_error st ("TXN read gave up: " ^ e))
       else
         let use_range = die = 2 in
         let cmd = if use_range then P.Range (a, b) else P.Mget [| a; b |] in
         match C.rt_request rt cmd with
         | Ok (P.Busy _) ->
             (* shed past the retry budget: nothing executed, skip *)
             st.skipped <- st.skipped + 1
         | Ok r -> (
             let sum =
               if use_range then sum_of_range a b r else sum_of_mget r
             in
             match sum with
             | Ok s ->
                 check_pair_sum st
                   ~via:(if use_range then "RANGE" else "MGET")
                   a b s
             | Error e ->
                 (* a malformed reply is a real protocol violation *)
                 bank_note_error st e;
                 Atomic.set stop true)
         | Error e ->
             st.giveups <- st.giveups + 1;
             bank_note_error st ("read gave up: " ^ e)
     done
   with e -> bank_note_error st (Printexc.to_string e));
  let r, b = C.rt_stats rt in
  st.bretries <- r;
  st.bshed <- b;
  C.rt_close rt

(* Quiescent audit: after every domain is joined, the sum over all
   accounts must be exactly 2*BASE*pairs (each pipelined transfer runs
   to completion before the writer observes the stop flag). *)
let bank_final_audit ~host ~port ~pairs =
  let conn = C.connect ~host ~retries:20 ~port () in
  Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
  let keys = Array.init (2 * pairs) (fun j -> j + 1) in
  match C.request conn (P.Mget keys) with
  | Ok (P.Arr items) ->
      let missing = ref 0 and total = ref 0 in
      List.iter
        (function
          | P.Int v -> total := !total + v
          | _ -> incr missing)
        items;
      if !missing > 0 then
        Error (Printf.sprintf "final audit: %d account(s) missing" !missing)
      else if !total <> 2 * bank_base * pairs then
        Error
          (Printf.sprintf "final audit: total %d, expected %d (money %s)"
             !total
             (2 * bank_base * pairs)
             (if !total < 2 * bank_base * pairs then "destroyed" else "created"))
      else Ok !total
  | Ok r -> Error ("final audit reply: " ^ P.pp_reply r)
  | Error e -> Error ("final audit: " ^ e)

(* --- server STATS --------------------------------------------------------- *)

type server_census = {
  sc_chain_max : int;
  sc_chain_p99 : int;
  sc_indirect : int;
  sc_reclaimable : int;
  sc_violations : int;
}

let fetch_stats ~host ~port =
  match C.connect ~host ~retries:5 ~port () with
  | exception e -> Error (Printexc.to_string e)
  | conn ->
      Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
      (match C.request conn P.Stats with
       | Ok (P.Bulk s) -> Ok s
       | Ok r -> Error ("STATS reply: " ^ P.pp_reply r)
       | Error e -> Error e)

let fetch_metrics ~host ~port =
  match C.connect ~host ~retries:5 ~port () with
  | exception e -> Error (Printexc.to_string e)
  | conn ->
      Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
      (match C.request conn P.Metrics with
       | Ok (P.Bulk s) -> Ok s
       | Ok r -> Error ("METRICS reply: " ^ P.pp_reply r)
       | Error e -> Error e)

let fetch_profile ~host ~port =
  match C.connect ~host ~retries:5 ~port () with
  | exception e -> Error (Printexc.to_string e)
  | conn ->
      Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
      (match C.request conn (P.Profile 0) with
       | Ok (P.Bulk s) -> Ok s
       | Ok r -> Error ("PROFILE reply: " ^ P.pp_reply r)
       | Error e -> Error e)

(* A named gauge out of the STATS JSON ("gauges" object); 0 when absent
   or unparsable — gauges are advisory. *)
let gauge_of_stats raw name =
  match Harness.Jsonlite.parse_result raw with
  | Error _ -> 0
  | Ok j -> (
      match
        Option.bind (Harness.Jsonlite.member "gauges" j) (fun g ->
            Option.bind (Harness.Jsonlite.member name g)
              Harness.Jsonlite.to_number)
      with
      | Some f -> int_of_float f
      | None -> 0)

(* A top-level numeric field of the STATS JSON; 0. when absent. *)
let top_of_stats raw name =
  match Harness.Jsonlite.parse_result raw with
  | Error _ -> 0.
  | Ok j -> (
      match
        Option.bind (Harness.Jsonlite.member name j) Harness.Jsonlite.to_number
      with
      | Some f -> f
      | None -> 0.)

let census_of_stats raw =
  match Harness.Jsonlite.parse_result raw with
  | Error e -> Error ("STATS json: " ^ e)
  | Ok j ->
      let num path dflt =
        let rec walk j = function
          | [] -> Harness.Jsonlite.to_number j
          | k :: rest -> (
              match Harness.Jsonlite.member k j with
              | Some j' -> walk j' rest
              | None -> None)
        in
        match walk j path with Some f -> int_of_float f | None -> dflt
      in
      (match Harness.Jsonlite.member "census" j with
       | None -> Ok None
       | Some _ ->
           Ok
             (Some
                {
                  sc_chain_max = num [ "census"; "chain_max" ] 0;
                  sc_chain_p99 = num [ "census"; "chain_p99" ] 0;
                  sc_indirect = num [ "census"; "indirect_links" ] 0;
                  sc_reclaimable = num [ "census"; "reclaimable" ] 0;
                  sc_violations = num [ "census_violations_total" ] 0;
                }))

(* --- reporting ------------------------------------------------------------ *)

let us_percentiles kind =
  let s = Verlib.Obs.Hist.summary (hist_of_kind kind) in
  if s.Verlib.Obs.Hist.s_count = 0 then (0., 0.)
  else
    ( Verlib.Hwclock.to_us s.Verlib.Obs.Hist.s_p50,
      Verlib.Hwclock.to_us s.Verlib.Obs.Hist.s_p99 )

let row ~figure ~label ~mops ~p50 ~p99 ?(retries = 0) ?(shed = 0)
    ?(giveups = 0) ?(walk_saturation = 0) ?(phases = [])
    ?(alloc_bytes_per_op = 0.) ?(gc_minor = 0) ?(gc_major = 0) census =
  {
    Harness.Bench_json.r_figure = figure;
    r_label = label;
    r_mops = mops;
    r_p50_us = p50;
    r_p99_us = p99;
    r_chain_max = (match census with Some c -> c.sc_chain_max | None -> 0);
    r_chain_p99 = (match census with Some c -> c.sc_chain_p99 | None -> 0);
    r_indirect_links = (match census with Some c -> c.sc_indirect | None -> 0);
    r_reclaimable = (match census with Some c -> c.sc_reclaimable | None -> 0);
    r_violations = (match census with Some c -> c.sc_violations | None -> 0);
    r_space_bytes = 0.;
    r_retries = retries;
    r_shed = shed;
    r_giveups = giveups;
    r_walk_saturation = walk_saturation;
    r_phases = phases;
    r_alloc_bytes_per_op = alloc_bytes_per_op;
    r_gc_minor = gc_minor;
    r_gc_major = gc_major;
  }

let write_rows ~json_out ~merge_into ~ci rows =
  match json_out with
  | None -> ()
  | Some path ->
      let doc =
        match merge_into with
        | Some base -> (
            match Harness.Bench_json.read_file base with
            | Ok d -> Harness.Bench_json.merge_rows d rows
            | Error e ->
                Printf.eprintf
                  "verlib_loadgen: cannot merge into %s (%s); writing fresh doc\n"
                  base e;
                Harness.Bench_json.make_doc ~label:"serve"
                  ~scale:(if ci then "ci" else "quick")
                  rows)
        | None ->
            Harness.Bench_json.make_doc ~label:"serve"
              ~scale:(if ci then "ci" else "quick")
              rows
      in
      Harness.Bench_json.write_file path doc;
      Printf.eprintf "verlib_loadgen: %d row(s) -> %s\n%!" (List.length rows)
        path

(* --- trace-sample join ---------------------------------------------------- *)

let phase_sum (t : P.trace_info) =
  List.fold_left (fun acc (_, v) -> acc +. v) 0. t.P.t_phase_us

(* Mean µs per phase across the samples, in canonical phase order —
   these become the row's ["phases"] object in the Bench_json output. *)
let mean_phases samples =
  let n = List.length samples in
  if n = 0 then []
  else
    List.filter_map
      (fun p ->
        let name = Verlib.Obs.Span.phase_name p in
        let total =
          List.fold_left
            (fun acc s ->
              match List.assoc_opt name s.ts_trace.P.t_phase_us with
              | Some v -> acc +. v
              | None -> acc)
            0. samples
        in
        if total > 0. then Some (name, total /. float_of_int n) else None)
      Verlib.Obs.Span.phases

let json_of_samples samples =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"trace-join-v1\",\"samples\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\":%d,\"cmd\":\"%s\",\"rtt_us\":%.3f,\"total_us\":%.3f,\
            \"outcome\":\"%s\",\"fanout\":%d,\"phase_sum_us\":%.3f,\"phases\":{"
           s.ts_trace.P.t_id
           (Harness.Jsonlite.escape s.ts_cmd)
           s.ts_rtt_us s.ts_trace.P.t_total_us
           (Harness.Jsonlite.escape s.ts_trace.P.t_outcome)
           s.ts_trace.P.t_fanout (phase_sum s.ts_trace));
      List.iteri
        (fun j (name, v) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":%.3f" (Harness.Jsonlite.escape name) v))
        s.ts_trace.P.t_phase_us;
      Buffer.add_string b "}}")
    samples;
  Buffer.add_string b "]}";
  Buffer.contents b

(* Report the join and enforce the nesting invariant: phases are
   exclusive and the span opens at request-byte arrival and closes with
   the reply rendered, so the phase sum can never exceed the
   client-measured RTT (5% slack absorbs µs rounding and the two
   processes' independent tick calibrations).  Coverage below 1.0 is the
   un-attributed wire + syscall time on either side of the span. *)
let report_trace_join ~trace_out ~exit_bad samples =
  match samples with
  | [] -> []
  | _ ->
      let n = List.length samples in
      let covs =
        List.map
          (fun s ->
            if s.ts_rtt_us > 0. then phase_sum s.ts_trace /. s.ts_rtt_us
            else 1.)
          samples
      in
      let mean = List.fold_left ( +. ) 0. covs /. float_of_int n in
      let lo = List.fold_left min infinity covs
      and hi = List.fold_left max neg_infinity covs in
      let over =
        List.length (List.filter (fun c -> c > 1.05) covs)
      in
      let phases = mean_phases samples in
      Printf.printf
        "trace: %d sample(s), phase-sum/rtt mean=%.2f min=%.2f max=%.2f\n" n
        mean lo hi;
      Printf.printf "trace phases (mean us): %s\n"
        (String.concat " "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%.1f" k v) phases));
      if over > 0 then begin
        Printf.printf
          "trace: FAIL — %d sample(s) with phase sum > 1.05x client RTT\n"
          over;
        exit_bad := true
      end;
      (match trace_out with
       | None -> ()
       | Some path ->
           let oc = open_out path in
           output_string oc (json_of_samples samples);
           output_char oc '\n';
           close_out oc;
           Printf.eprintf "verlib_loadgen: %d trace sample(s) -> %s\n%!" n path);
      phases

(* Fetch + strictly validate the METRICS exposition; a server whose
   metrics plane emits unparsable text fails the run. *)
let check_metrics ~host ~port ~exit_bad = function
  | None -> ()
  | Some path -> (
      match fetch_metrics ~host ~port with
      | Error e ->
          Printf.eprintf "verlib_loadgen: METRICS unavailable: %s\n" e;
          exit_bad := true
      | Ok text ->
          (match Harness.Obs_report.parse_prometheus text with
           | Ok samples ->
               Printf.printf "metrics: %d sample(s) validated\n"
                 (List.length samples)
           | Error e ->
               Printf.printf "metrics: FAIL — malformed exposition: %s\n" e;
               exit_bad := true);
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Printf.eprintf "verlib_loadgen: METRICS -> %s\n%!" path)

(* Fetch + validate the PROFILE snapshot; an unparsable profile JSON
   fails the run, an empty one is fine (server may not be sampling). *)
let check_profile ~host ~port ~exit_bad = function
  | None -> ()
  | Some path -> (
      match fetch_profile ~host ~port with
      | Error e ->
          Printf.eprintf "verlib_loadgen: PROFILE unavailable: %s\n" e;
          exit_bad := true
      | Ok text ->
          (match Harness.Jsonlite.parse_result text with
           | Ok _ -> Printf.printf "profile: snapshot validated\n"
           | Error e ->
               Printf.printf "profile: FAIL — malformed snapshot: %s\n" e;
               exit_bad := true);
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Printf.eprintf "verlib_loadgen: PROFILE -> %s\n%!" path)

(* --- idle-connection pool (the c10k ballast) ------------------------------ *)

(* Raw fds on purpose: no retry transport, no reconnects — if the server
   drops one of these the final PING must see it.  A PING round-trip on a
   quiet connection is one write + one short read. *)
let idle_ping fd =
  try
    let msg = "PING\r\n" in
    let len = String.length msg in
    let rec wr off =
      if off < len then wr (off + Unix.write_substring fd msg off (len - off))
    in
    wr 0;
    let buf = Bytes.create 64 in
    let rec rd acc =
      if String.contains acc '\n' then acc
      else
        let n = Unix.read fd buf 0 (Bytes.length buf) in
        if n = 0 then acc else rd (acc ^ Bytes.sub_string buf 0 n)
    in
    let r = rd "" in
    String.length r >= 5 && String.sub r 0 5 = "+PONG"
  with _ -> false

let open_idle_pool ~host ~port n =
  if n <= 0 then [||]
  else begin
    let inet =
      try Unix.inet_addr_of_string host
      with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let addr = Unix.ADDR_INET (inet, port) in
    let fds =
      Array.init n (fun i ->
          let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try Unix.connect fd addr
           with e ->
             Unix.close fd;
             Printf.eprintf
               "verlib_loadgen: idle conn %d/%d failed to connect: %s\n" (i + 1)
               n (Printexc.to_string e);
             exit 1);
          fd)
    in
    (* Verify each connection was actually admitted (a -BUSY door answers
       the PING with an error and closes). *)
    Array.iteri
      (fun i fd ->
        if not (idle_ping fd) then begin
          Printf.eprintf
            "verlib_loadgen: idle conn %d/%d rejected at admission\n" (i + 1) n;
          exit 1
        end)
      fds;
    Printf.printf "idle pool: %d connection(s) held\n%!" n;
    fds
  end

let check_idle_pool ~exit_bad fds =
  if Array.length fds > 0 then begin
    let dead = ref 0 in
    Array.iter (fun fd -> if not (idle_ping fd) then incr dead) fds;
    Array.iter (fun fd -> try Unix.close fd with _ -> ()) fds;
    if !dead > 0 then begin
      Printf.printf "idle pool: FAIL — %d of %d held connection(s) died\n"
        !dead (Array.length fds);
      exit_bad := true
    end
    else
      Printf.printf "idle pool: %d connection(s) survived the run\n"
        (Array.length fds)
  end

(* --- driver --------------------------------------------------------------- *)

let run host port failover threads depth size updates query theta duration seed
    mix pairs no_fill ci json_out merge_into figure stats_out trace_sample
    trace_out metrics_out profile_out rt_attempts faults idle_conns =
  install_signal_handlers ();
  failover_eps := failover;
  let rt_attempts = if rt_attempts > 0 then Some rt_attempts else None in
  let plan =
    match faults with
    | None -> None
    | Some spec -> (
        match Fault.find_plan spec with
        | Ok p -> Some p
        | Error e ->
            prerr_endline ("verlib_loadgen: bad --faults plan: " ^ e);
            exit 2)
  in
  let size = if ci then min size 1_000 else size in
  let duration = if ci then min duration 0.5 else duration in
  let threads = max 1 threads and depth = max 1 depth in
  let pairs = max 1 pairs in
  let exit_bad = ref false in
  let idle_pool = open_idle_pool ~host ~port idle_conns in
  let timed_run spawn_all =
    let ds = spawn_all () in
    let nds = List.length ds in
    (* wait until every domain is connected and parked at the barrier *)
    let t_wait = Unix.gettimeofday () +. 10. in
    while Atomic.get ready < nds && Unix.gettimeofday () < t_wait do
      Unix.sleepf 0.002
    done;
    (* Fault the measured window only: the fill/seed phases ran clean,
       and the audit/STATS phase below runs clean again. *)
    Option.iter Fault.arm plan;
    Atomic.set go true;
    let t0 = Unix.gettimeofday () in
    let deadline = t0 +. duration in
    while (not (Atomic.get stop)) && Unix.gettimeofday () < deadline do
      (try Unix.sleepf 0.02 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done;
    Atomic.set stop true;
    List.iter Domain.join ds;
    if plan <> None then Fault.disarm ();
    Unix.gettimeofday () -. t0
  in
  match mix with
  | `Bank ->
      let nwriters = max 1 (threads / 2) in
      let nreaders = max 1 (threads - nwriters) in
      (* Seed every account before any writer or reader starts. *)
      (try
         let conn = C.connect ~host ~retries:50 ~port () in
         Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
         (* DEL-then-PUT so reseeding an already-populated server (a
            second bank run, or accounts left by an opgen fill) resets
            every balance to BASE instead of tripping on EXISTS. *)
         let cmds =
           List.init (2 * pairs) (fun j -> [ P.Del (j + 1); P.Put (j + 1, bank_base) ])
           |> List.concat
         in
         match C.pipeline conn cmds with
         | Ok rs ->
             List.iteri
               (fun i r ->
                 match r with
                 | P.Ok_ -> ()
                 | _ when i mod 2 = 0 -> () (* the DEL half: 0 or 1 *)
                 | r -> failwith ("bank seed reply: " ^ P.pp_reply r))
               rs
         | Error e -> failwith ("bank seed: " ^ e)
       with e ->
         prerr_endline ("verlib_loadgen: " ^ Printexc.to_string e);
         exit 1);
      let wstats = Array.init nwriters (fun _ -> new_bank_stats ()) in
      let rstats = Array.init nreaders (fun _ -> new_bank_stats ()) in
      let elapsed =
        timed_run (fun () ->
            List.init nwriters (fun w ->
                Domain.spawn
                  (bank_writer ~host ~port ~pairs ~nwriters ~wid:w wstats.(w)))
            @ List.init nreaders (fun r ->
                  Domain.spawn (bank_reader ~host ~port ~pairs ~rid:r rstats.(r))))
      in
      let sum f arr = Array.fold_left (fun acc s -> acc + f s) 0 arr in
      let transfers = sum (fun s -> s.transfers) wstats in
      let checks = sum (fun s -> s.checks) rstats in
      let skipped = sum (fun s -> s.skipped) rstats in
      let violations =
        sum (fun s -> s.violations) wstats + sum (fun s -> s.violations) rstats
      in
      let errors =
        sum (fun s -> s.berrors) wstats + sum (fun s -> s.berrors) rstats
      in
      let retries =
        sum (fun s -> s.bretries) wstats + sum (fun s -> s.bretries) rstats
      in
      let shed =
        sum (fun s -> s.bshed) wstats + sum (fun s -> s.bshed) rstats
      in
      let giveups =
        sum (fun s -> s.giveups) wstats + sum (fun s -> s.giveups) rstats
      in
      Array.iter
        (fun s -> Option.iter (Printf.eprintf "  detail: %s\n") s.detail)
        (Array.append wstats rstats);
      let audit = bank_final_audit ~host ~port ~pairs in
      Printf.printf
        "bank: %d writer(s) %d reader(s) %d pair(s), %.2fs\n\
         transfers=%d checks=%d shed_skips=%d violations=%d errors=%d\n"
        nwriters nreaders pairs elapsed transfers checks skipped violations
        errors;
      Printf.printf "wire: retries=%d shed=%d giveups=%d reconnects=%d\n"
        retries shed giveups
        (C.reconnect_total ());
      let stats_raw =
        match fetch_stats ~host ~port with Ok raw -> Some raw | Error _ -> None
      in
      (* The server-side transaction counters (exported as gauges):
         aborts and validation retries are the OCC contention signal,
         replays count EXEC tokens answered from the idempotency
         cache — each one a double-commit that tokens prevented. *)
      (match stats_raw with
       | Some raw ->
           Printf.printf
             "txn: commits=%d aborts=%d validation_retries=%d replays=%d\n"
             (gauge_of_stats raw "txn_commits")
             (gauge_of_stats raw "txn_aborts")
             (gauge_of_stats raw "txn_validation_retries")
             (gauge_of_stats raw "txn_replays")
       | None -> ());
      (match audit with
       | Ok total -> Printf.printf "final audit: OK (total %d)\n" total
       | Error e ->
           print_endline ("final audit: FAIL — " ^ e);
           exit_bad := true);
      check_metrics ~host ~port ~exit_bad metrics_out;
      check_profile ~host ~port ~exit_bad profile_out;
      (* One row per bank run so the liveness figures ([giveups] —
         asserted zero below — and wire retries) gate through
         bench_diff like the throughput rows do. *)
      if json_out <> None then begin
        let census, walk_saturation =
          match stats_raw with
          | None -> (None, 0)
          | Some raw ->
              ( (match census_of_stats raw with Ok c -> c | Error _ -> None),
                gauge_of_stats raw "diag_walk_saturated" )
        in
        let mops = float_of_int transfers /. elapsed /. 1e6 in
        write_rows ~json_out ~merge_into ~ci
          [
            row ~figure ~label:"bank" ~mops ~p50:0. ~p99:0. ~retries ~shed
              ~giveups ~walk_saturation census;
          ]
      end;
      if checks = 0 then begin
        print_endline "bank: FAIL — no atomic checks completed";
        exit_bad := true
      end;
      if giveups > 0 then begin
        Printf.printf
          "bank: FAIL — %d give-up(s); transactional retries are \
           exactly-once and budgeted to never exhaust\n"
          giveups;
        exit_bad := true
      end;
      if violations > 0 || errors > 0 then exit_bad := true;
      check_idle_pool ~exit_bad idle_pool;
      if !exit_bad then exit 1
  | `Opgen -> (
      match parse_query query with
      | Error (`Msg m) ->
          prerr_endline m;
          exit 2
      | Ok q ->
          let mk_gen wid =
            Workload.Opgen.create ~theta ~seed:(seed + wid) ~n:size
              ~update_percent:updates ~query:q ()
          in
          if not no_fill then begin
            try
              let conn = C.connect ~host ~retries:50 ~port () in
              Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
              fill_over_wire conn (mk_gen 0) (Workload.Splitmix.create seed)
            with e ->
              prerr_endline ("verlib_loadgen: " ^ Printexc.to_string e);
              exit 1
          end;
          let stats = Array.init threads (fun _ -> new_wstats ()) in
          let elapsed =
            timed_run (fun () ->
                List.init threads (fun w ->
                    Domain.spawn
                      (opgen_worker ~host ~port ~depth ~gen_of:mk_gen
                         ~trace_sample ~rt_attempts ~wid:w stats.(w))))
          in
          let total_ops =
            Array.fold_left
              (fun acc s -> acc + Array.fold_left ( + ) 0 s.ops)
              0 stats
          in
          let kind_ops k =
            Array.fold_left (fun acc s -> acc + s.ops.(kind_index k)) 0 stats
          in
          let errors = Array.fold_left (fun acc s -> acc + s.errors) 0 stats in
          let retries =
            Array.fold_left (fun acc s -> acc + s.retries) 0 stats
          in
          let shed = Array.fold_left (fun acc s -> acc + s.shed) 0 stats in
          Array.iter
            (fun s ->
              Option.iter (Printf.eprintf "  first error: %s\n") s.first_error)
            stats;
          let mops = float_of_int total_ops /. elapsed /. 1e6 in
          let qkind =
            match q with
            | Workload.Opgen.Finds -> K_find
            | Workload.Opgen.Ranges _ -> K_range
            | Workload.Opgen.Multifinds _ -> K_multifind
          in
          let qp50, qp99 = us_percentiles qkind in
          Printf.printf
            "served: %d domain(s) x depth %d, %.2fs — %.3f Mop/s (%d ops, %d \
             errors)\n"
            threads depth elapsed mops total_ops errors;
          Printf.printf
            "%s batch rtt: p50 %.1fus p99 %.1fus (batches of %d, first-command \
             attribution)\n"
            (kind_name qkind) qp50 qp99 depth;
          Printf.printf "wire: retries=%d shed=%d reconnects=%d\n" retries shed
            (C.reconnect_total ());
          let stats_raw =
            match fetch_stats ~host ~port with
            | Error e ->
                Printf.eprintf "verlib_loadgen: STATS unavailable: %s\n" e;
                None
            | Ok raw ->
                Option.iter
                  (fun path ->
                    let oc = open_out path in
                    output_string oc raw;
                    output_char oc '\n';
                    close_out oc;
                    Printf.eprintf "verlib_loadgen: STATS -> %s\n%!" path)
                  stats_out;
                Some raw
          in
          let census =
            match stats_raw with
            | None -> None
            | Some raw -> (
                match census_of_stats raw with
                | Ok c -> c
                | Error e ->
                    Printf.eprintf "verlib_loadgen: %s\n" e;
                    exit_bad := true;
                    None)
          in
          (* The bounded-walk saturation gauge of the server's census
             walker (docs/OBSERVABILITY.md) — surfaced into the row so a
             saturated (hence under-counting) census is visible in the
             benchmark trail. *)
          let walk_saturation =
            match stats_raw with
            | Some raw -> gauge_of_stats raw "diag_walk_saturated"
            | None -> 0
          in
          (match census with
           | Some c ->
               Printf.printf
                 "server census: chain_max=%d chain_p99=%d indirect=%d \
                  reclaimable=%d violations=%d\n"
                 c.sc_chain_max c.sc_chain_p99 c.sc_indirect c.sc_reclaimable
                 c.sc_violations;
               if c.sc_violations > 0 then exit_bad := true
           | None -> ());
          let samples =
            Array.fold_left (fun acc s -> s.samples @ acc) [] stats
          in
          let phases = report_trace_join ~trace_out ~exit_bad samples in
          check_metrics ~host ~port ~exit_bad metrics_out;
          check_profile ~host ~port ~exit_bad profile_out;
          let qmops = float_of_int (kind_ops qkind) /. elapsed /. 1e6 in
          (* Server-side allocation rate, from the cumulative
             [gc_alloc_bytes] gauge over the server's command total —
             includes the fill phase, so it is an upper bound on the
             steady-state per-op allocation. *)
          let alloc_bytes_per_op, gc_minor, gc_major =
            match stats_raw with
            | None -> (0., 0, 0)
            | Some raw ->
                let alloc = float_of_int (gauge_of_stats raw "gc_alloc_bytes") in
                let cmds = top_of_stats raw "commands_total" in
                ( (if cmds > 0. && alloc > 0. then alloc /. cmds else 0.),
                  gauge_of_stats raw "gc_minor_collections",
                  gauge_of_stats raw "gc_major_collections" )
          in
          let rows =
            [
              row ~figure ~label:"total" ~mops ~p50:qp50 ~p99:qp99 ~retries
                ~shed ~walk_saturation ~phases ~alloc_bytes_per_op ~gc_minor
                ~gc_major census;
              row ~figure ~label:(kind_name qkind) ~mops:qmops ~p50:qp50
                ~p99:qp99 census;
            ]
          in
          write_rows ~json_out ~merge_into ~ci rows;
          if errors > 0 then exit_bad := true;
          if total_ops = 0 then begin
            print_endline "served: FAIL — no operations completed";
            exit_bad := true
          end;
          check_idle_pool ~exit_bad idle_pool;
          if !exit_bad then exit 1)

let cmd =
  let doc = "closed-loop load generator for verlib-serve" in
  Cmd.v
    (Cmd.info "verlib_loadgen" ~doc)
    Term.(
      const run $ host $ port $ failover_to $ threads $ depth $ size $ updates
      $ query $ theta
      $ duration $ seed $ mix $ pairs $ no_fill $ ci $ json_out $ merge_into
      $ figure $ stats_out $ trace_sample $ trace_out $ metrics_out
      $ profile_out $ rt_attempts $ faults $ idle_conns)

let () = exit (Cmd.eval cmd)
