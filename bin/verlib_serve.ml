(* verlib-serve CLI: mount one versioned structure behind the wire
   protocol (docs/PROTOCOL.md) and serve it until SIGINT/SIGTERM (or
   for --duration seconds).  Shutdown is a graceful drain: accepting
   stops, in-flight connections are answered, every domain (including
   the background census domain) is joined, and the final stats report
   — with a quiescent, exact-audit chain census — is flushed before
   exit. *)

open Cmdliner

let structure =
  let doc =
    Printf.sprintf "Data structure to serve: %s."
      Harness.Registry.spec_help
  in
  Arg.(value & opt string "btree" & info [ "s"; "structure" ] ~docv:"NAME" ~doc)

let mode =
  let alist =
    [
      ("indonneed", Verlib.Vptr.Ind_on_need);
      ("indirect", Verlib.Vptr.Indirect);
      ("noshortcut", Verlib.Vptr.No_shortcut);
      ("reconce", Verlib.Vptr.Rec_once);
      ("plain", Verlib.Vptr.Plain);
    ]
  in
  Arg.(value & opt (enum alist) Verlib.Vptr.Ind_on_need & info [ "m"; "mode" ]
       ~doc:"Versioned pointer implementation.")

let port =
  Arg.(value & opt int 7379 & info [ "p"; "port" ]
       ~doc:"TCP port on 127.0.0.1; 0 picks an ephemeral port (printed on stdout).")

let domains =
  Arg.(value & opt int 4 & info [ "t"; "domains" ]
       ~doc:"Worker domains (also the max concurrent connections).")

let n_hint =
  Arg.(value & opt int 10_000 & info [ "n"; "size-hint" ]
       ~doc:"Structure size hint (e.g. hash bucket count).")

let prefill =
  Arg.(value & opt int 0 & info [ "prefill" ]
       ~doc:"Insert keys 1..$(docv) (value = key) before serving." ~docv:"N")

let queue_depth =
  Arg.(value & opt int 64 & info [ "queue-depth" ]
       ~doc:"Bound of the accept-to-worker handoff queue (backpressure).")

let census_interval =
  Arg.(value & opt float 0. & info [ "census-interval" ] ~docv:"SECONDS"
       ~doc:"Walk the structure's version chains every $(docv) seconds from a \
             background domain ([Verlib.Chainscan]); the latest census is \
             reported by STATS and a final quiescent census on shutdown.  0 \
             disables.")

let duration =
  Arg.(value & opt float 0. & info [ "d"; "duration" ]
       ~doc:"Serve for this many seconds then drain and exit; 0 = until \
             SIGINT/SIGTERM.")

let max_conns =
  Arg.(value & opt int 0 & info [ "max-conns" ]
       ~doc:"Answer -BUSY at accept beyond this many simultaneous \
             connections; 0 = unlimited.")

let idle_timeout =
  Arg.(value & opt float 0. & info [ "idle-timeout" ] ~docv:"SECONDS"
       ~doc:"Close connections idle for $(docv) seconds; 0 = never.")

let write_timeout =
  Arg.(value & opt float 5. & info [ "write-timeout" ] ~docv:"SECONDS"
       ~doc:"Kill connections whose reply flush blocks for $(docv) seconds \
             (peer stopped reading); 0 = forever.")

let shed_queue =
  Arg.(value & opt int 0 & info [ "shed-queue" ]
       ~doc:"Admission control: shed snapshot-heavy commands with -BUSY while \
             the accept-to-worker queue holds at least this many connections \
             (all data commands at twice it); 0 = off.")

let shed_epoch_lag =
  Arg.(value & opt int 0 & info [ "shed-epoch-lag" ]
       ~doc:"Shed against the epoch-lag reclamation gauge; 0 = off.")

let shed_chain_p99 =
  Arg.(value & opt int 0 & info [ "shed-chain-p99" ]
       ~doc:"Shed against the latest census's p99 version-chain length \
             (needs --census-interval); 0 = off.")

let shed_dwell_us =
  Arg.(value & opt int 0 & info [ "shed-dwell-us" ]
       ~doc:"Shed against the measured queue dwell of the last executed \
             batch, in microseconds: how long it waited between the event \
             loop's push and a worker's pop (the latency form of queue \
             pressure); 0 = off.")

let retry_after_ms =
  Arg.(value & opt int 50 & info [ "retry-after-ms" ]
       ~doc:"The retry hint carried in -BUSY replies.")

let metrics_interval =
  Arg.(value & opt float 0. & info [ "metrics-interval" ] ~docv:"SECONDS"
       ~doc:"Metrics-plane sweep period: every $(docv) seconds a background \
             census is taken and the request-phase p99s are checked against \
             --slo-p99-us; 0 = off.")

let flight_dir =
  Arg.(value & opt string "" & info [ "flight-dir" ] ~docv:"DIR"
       ~doc:"Arm the anomaly flight recorder: deadline kills, hard-shed \
             engagement, census invariant violations and SLO breaches each \
             dump the recent-span ring plus live gauges to \
             $(docv)/flight-<ms>-<trigger>.json.  Empty = off.")

let flight_min_interval =
  Arg.(value & opt float 5. & info [ "flight-min-interval" ] ~docv:"SECONDS"
       ~doc:"Flight-recorder cooldown: at most one dump per $(docv) seconds.")

let slo_p99_us =
  Arg.(value & opt float 0. & info [ "slo-p99-us" ] ~docv:"US"
       ~doc:"Flight trigger: any request phase whose p99 exceeds $(docv) \
             microseconds files a dump (checked every --metrics-interval); \
             0 = off.")

let locks =
  let alist =
    [ ("lockfree", Flock.Lock.Lock_free); ("blocking", Flock.Lock.Blocking) ]
  in
  Arg.(value & opt (enum alist) Flock.Lock.Lock_free & info [ "locks" ]
       ~doc:"Lock implementation for the mounted structure: lockfree \
             (helping, the default) or blocking (required by the \
             blocking-convoy fault preset).")

let profile_hz =
  Arg.(value & opt int 0 & info [ "profile-hz" ] ~docv:"HZ"
       ~doc:"Run the continuous sampling profiler at $(docv) samples per \
             second for the server's lifetime ([Verlib.Obs.Profile]); \
             activity stacks are served by the PROFILE wire command and \
             land in flight-recorder dumps.  0 = off.")

let profile_out =
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE"
       ~doc:"Write the accumulated profile as collapsed-stack text \
             (flamegraph.pl / speedscope compatible) to $(docv) on \
             shutdown.  Implies --profile-hz 97 (the default rate) when \
             --profile-hz is unset.")

let replica_of =
  let host_port =
    let parse s =
      match String.rindex_opt s ':' with
      | Some i -> (
          let host = String.sub s 0 i in
          let port = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 ->
              Ok ((if host = "" then "127.0.0.1" else host), p)
          | _ -> Error (`Msg ("bad port in " ^ s)))
      | None -> (
          match int_of_string_opt s with
          | Some p when p > 0 && p < 65536 -> Ok ("127.0.0.1", p)
          | _ -> Error (`Msg ("expected HOST:PORT, got " ^ s)))
    in
    let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
    Arg.conv (parse, print)
  in
  Arg.(value & opt (some host_port) None & info [ "replica-of" ] ~docv:"HOST:PORT"
       ~doc:"Run as an asynchronous read replica of that primary: bootstrap \
             via SYNC, stream its change feed (SUBSCRIBE), apply records in \
             order, serve snapshot reads at the replication watermark, and \
             refuse writes with -ERR READONLY until PROMOTE \
             (docs/REPLICATION.md).  A bare port means 127.0.0.1.")

let feed_capacity =
  Arg.(value & opt int 65536 & info [ "feed-capacity" ] ~docv:"RECORDS"
       ~doc:"Replication log ring size in records; a subscriber that falls \
             further behind than this is told to resync from a snapshot.")

let faults =
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"PLAN"
       ~doc:"Arm a fault plan (preset name or raw spec, docs/RESILIENCE.md) \
             for the lifetime of the server: injects faults at the core \
             (lock/vptr/epoch) and server wire points in this process.  \
             Disarmed before the final quiescent census.")

let stats_fmt =
  let alist = [ ("none", `None); ("json", `Json) ] in
  Arg.(value & opt (enum alist) `Json & info [ "stats" ] ~docv:"FMT"
       ~doc:"Final report on shutdown: json (stdout) or none.")

let trace_file =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
       ~doc:"Record typed events and export Chrome trace-event JSON to $(docv) \
             on shutdown.")

let stop_requested = Atomic.make false

(* First signal: graceful drain (the main loop calls [Server.stop],
   which flushes the final stats/census instead of dying mid-write).
   Second signal: force-quit. *)
let install_signal_handlers () =
  let handle _ =
    if Atomic.get stop_requested then exit 130
    else begin
      Atomic.set stop_requested true;
      prerr_endline "verlib-serve: draining (signal again to force-quit)..."
    end
  in
  List.iter
    (fun s -> try Sys.set_signal s (Sys.Signal_handle handle) with _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let run structure mode port domains n_hint prefill queue_depth census_interval
    max_conns idle_timeout write_timeout shed_queue shed_epoch_lag
    shed_chain_p99 shed_dwell_us retry_after_ms metrics_interval flight_dir
    flight_min_interval slo_p99_us locks profile_hz profile_out replica_of
    feed_capacity faults duration stats_fmt trace_file =
  let plan =
    match faults with
    | None -> None
    | Some spec -> (
        match Fault.find_plan spec with
        | Ok p -> Some p
        | Error e ->
            prerr_endline ("verlib-serve: bad --faults plan: " ^ e);
            exit 2)
  in
  let map = Harness.Registry.find structure in
  let module M = (val map : Dstruct.Map_intf.MAP) in
  if not (M.supports_mode mode) then begin
    Printf.eprintf "%s does not support mode %s\n" structure
      (Verlib.Vptr.mode_name mode);
    exit 2
  end;
  Verlib.reset ~lock_mode:locks ();
  if trace_file <> None then Verlib.Obs.set_tracing true;
  let profile_hz =
    if profile_hz = 0 && profile_out <> None then
      Verlib.Obs.Profile.default_hz
    else profile_hz
  in
  if slo_p99_us > 0. && metrics_interval <= 0. then
    prerr_endline
      "verlib-serve: note: --slo-p99-us has no effect without \
       --metrics-interval";
  let mount = Server.Mount.mount ~mode ~lock_mode:locks ~n_hint map in
  for k = 1 to prefill do
    ignore (Server.Mount.exec mount (Server.Protocol.Put (k, k)))
  done;
  let config =
    {
      Server.default_config with
      Server.port;
      domains;
      queue_depth;
      census_interval;
      max_conns;
      idle_timeout;
      write_timeout;
      shed_queue;
      shed_epoch_lag;
      shed_chain_p99;
      shed_dwell_us;
      retry_after_ms;
      metrics_interval;
      flight_dir;
      flight_min_interval;
      slo_p99_us;
      profile_hz;
      replica_of;
      feed_capacity;
    }
  in
  let srv = Server.create ~config mount in
  install_signal_handlers ();
  Server.start srv;
  (match plan with
   | None -> ()
   | Some p ->
       Fault.arm p;
       Printf.eprintf "verlib-serve: fault plan armed: %s\n%!"
         (Fault.plan_to_string p));
  Printf.printf "PORT %d\n%!" (Server.port srv);
  Printf.eprintf
    "verlib-serve: %s (%s, %s) on 127.0.0.1:%d — %d worker domain(s)%s\n%!"
    structure
    (Verlib.Vptr.mode_name mode)
    (Dstruct.Map_intf.range_capability_name M.range_capability)
    (Server.port srv) domains
    (if census_interval > 0. then
       Printf.sprintf ", census every %.2fs" census_interval
     else "");
  (match replica_of with
   | Some (h, p) ->
       Printf.eprintf "verlib-serve: replica of %s:%d (reads at watermark, \
                       writes refused until PROMOTE)\n%!" h p
   | None -> ());
  let deadline =
    if duration > 0. then Some (Unix.gettimeofday () +. duration) else None
  in
  let expired () =
    match deadline with Some d -> Unix.gettimeofday () >= d | None -> false
  in
  while not (Atomic.get stop_requested || expired ()) do
    (try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done;
  (* Disarm before the drain: crash-stopped domains resume, so the join
     inside [Server.stop] terminates and the final census is quiescent
     and fault-free. *)
  if plan <> None then begin
    Fault.disarm ();
    Unix.sleepf 0.05
  end;
  Server.stop srv;
  (match stats_fmt with
   | `None -> ()
   | `Json -> print_endline (Server.stats_json srv));
  (match trace_file with
   | None -> ()
   | Some path ->
       Verlib.Obs.set_tracing false;
       let streams = Verlib.Obs.export_trace path in
       Printf.eprintf "trace: %d domain stream(s) written to %s\n%!" streams path);
  (match profile_out with
   | None -> ()
   | Some path ->
       Verlib.Obs.Profile.write_collapsed path;
       Printf.eprintf "profile: %d sample(s) at %d Hz -> %s\n%!"
         (Verlib.Obs.Profile.samples_total ())
         profile_hz path);
  if flight_dir <> "" then
    Printf.eprintf "flight: %d dump(s)%s\n%!"
      (Server.flight_dump_count srv)
      (match Server.flight_last_path srv with
       | Some p -> ", last " ^ p
       | None -> "");
  let violations = Server.census_violations_total srv in
  if violations > 0 then begin
    Printf.eprintf "verlib-serve: %d census invariant violation(s)\n%!" violations;
    exit 1
  end

let cmd =
  let doc = "serve a versioned map over TCP (pipelined RESP-like protocol)" in
  Cmd.v
    (Cmd.info "verlib_serve" ~doc)
    Term.(
      const run $ structure $ mode $ port $ domains $ n_hint $ prefill
      $ queue_depth $ census_interval $ max_conns $ idle_timeout
      $ write_timeout $ shed_queue $ shed_epoch_lag $ shed_chain_p99
      $ shed_dwell_us $ retry_after_ms $ metrics_interval $ flight_dir $ flight_min_interval
      $ slo_p99_us $ locks $ profile_hz $ profile_out $ replica_of
      $ feed_capacity $ faults $ duration $ stats_fmt $ trace_file)

let () = exit (Cmd.eval cmd)
