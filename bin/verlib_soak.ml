(* verlib-soak: the chaos gate.  One process hosts a verlib-serve
   instance AND a set of retrying bank clients over loopback, runs the
   mixed workload under a named fault plan (docs/RESILIENCE.md), then
   disarms and audits.  Exit 0 requires ALL of:

   - the plan actually fired (faults_fired > 0) and every crash-stopped
     domain was released by disarm (stalled_now = 0);
   - the client retry layer masked every injected wire fault (no
     residual client errors);
   - real progress was made under fire (transfers > 0 and atomic
     snapshot checks > 0, each with zero invariant violations);
   - the final {e quiescent} chain census is violation-free (and no
     background census saw a violation either);
   - the bank conservation audit balances: after the drain, the sum
     over every account equals 2*BASE*pairs — transfers replayed after
     ambiguous failures (lost replies, killed connections,
     crash-stopped workers whose critical sections were finished by
     helpers) must have landed exactly once in effect.

   This is the executable form of the paper's robustness story: the
   Theorem 6.1/6.2 schedules (crash-stop lock holders, arbitrarily
   interleaved helpers) are produced on demand by [Fault], and the
   observable ledger proves the structure absorbed them. *)

open Cmdliner
module P = Server.Protocol
module C = Server.Client

let plan_arg =
  Arg.(value & opt string "crash-stop-locker" & info [ "plan" ] ~docv:"PLAN"
       ~doc:"Fault plan: a preset name (crash-stop-locker, \
             stalled-reclaimer, flaky-wire, tbd-window, yield-storm, \
             blocking-convoy, abort-storm) or a raw spec \
             (docs/RESILIENCE.md).")

let structure =
  let doc =
    Printf.sprintf "Structure to soak: %s."
      Harness.Registry.spec_help
  in
  Arg.(value & opt string "btree" & info [ "s"; "structure" ] ~doc)

let duration =
  Arg.(value & opt float 2.0 & info [ "d"; "duration" ]
       ~doc:"Seconds under fire (before the drain + audit).")

let pairs =
  Arg.(value & opt int 16 & info [ "pairs" ] ~doc:"Bank account pairs.")

let writers = Arg.(value & opt int 2 & info [ "writers" ] ~doc:"Writer domains.")

let readers = Arg.(value & opt int 2 & info [ "readers" ] ~doc:"Reader domains.")

let srv_domains =
  Arg.(value & opt int 4 & info [ "server-domains" ]
       ~doc:"Server worker domains.")

let ci =
  Arg.(value & flag & info [ "ci" ] ~doc:"Smoke scale: duration capped at 1s.")

let repl =
  Arg.(value & flag & info [ "repl" ]
       ~doc:"Replication chaos gate: host a primary AND an async replica, \
             run the bank mix against the primary while the fault plan \
             partitions the change feed (default plan becomes \
             split-brain-window), then heal and audit divergence-then-\
             convergence — lag must RISE under the partition, drain to \
             zero after it, and the replica's ledger must balance exactly \
             at the healed watermark (docs/REPLICATION.md).")

let json_out =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
       ~doc:"With $(b,--repl): write Bench_json schema-v1 rows (figure \
             $(b,repl): feed throughput and catch-up rate) to $(docv), \
             merging into an existing file.")

let profile_out =
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE"
       ~doc:"Sample the in-process server with the continuous profiler \
             (default rate) for the soak window and write the collapsed-stack \
             profile to $(docv) — shows where the domains sat while the \
             fault plan was firing.")

(* --- bank workload over the retrying client ------------------------------- *)

let bank_base = 1_000_000

let stop = Atomic.make false

let go = Atomic.make false

let ready = Atomic.make 0

let wait_go () =
  Atomic.incr ready;
  while not (Atomic.get go) do
    Domain.cpu_relax ()
  done

type cstats = {
  mutable transfers : int;
  mutable checks : int;
  mutable skipped : int;
  mutable violations : int;
  mutable errors : int;
  mutable detail : string option;
  mutable retries : int;
  mutable busy : int;
}

let new_cstats () =
  { transfers = 0; checks = 0; skipped = 0; violations = 0; errors = 0;
    detail = None; retries = 0; busy = 0 }

let note st msg =
  st.errors <- st.errors + 1;
  if st.detail = None then st.detail <- Some msg

let has_busy = List.exists (function P.Busy _ -> true | _ -> false)

(* Writer [wid] owns pairs {i | i mod nwriters = wid}.  Replaying a full
   transfer after an ambiguous failure is effect-idempotent because the
   writer owns both accounts: DEL;PUT converges to the target balance
   from any intermediate state a partial earlier attempt left behind. *)
let writer ~port ~pairs ~nwriters ~wid st () =
  let rt =
    C.connect_rt ~port ~read_timeout:0.5 ~max_attempts:30
      ~seed:(0xbad5eed + (wid * 7919)) ()
  in
  let owned =
    List.init pairs Fun.id
    |> List.filter (fun i -> i mod nwriters = wid)
    |> Array.of_list
  in
  let va = Hashtbl.create 16 and vb = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      Hashtbl.replace va i bank_base;
      Hashtbl.replace vb i bank_base)
    owned;
  let rng = Workload.Splitmix.create (0xbad5eed + (wid * 104729)) in
  wait_go ();
  (try
     while not (Atomic.get stop) && Array.length owned > 0 do
       let i = owned.(Workload.Splitmix.below rng (Array.length owned)) in
       let a = (2 * i) + 1 and b = (2 * i) + 2 in
       let na = Hashtbl.find va i - 1 and nb = Hashtbl.find vb i + 1 in
       let cmds = [ P.Del a; P.Put (a, na); P.Del b; P.Put (b, nb) ] in
       let rec exec tries =
         if tries > 10_000 then begin
           note st "transfer shed past settle budget";
           Atomic.set stop true
         end
         else
           match C.rt_pipeline rt cmds with
           | Ok [ _; P.Ok_; _; P.Ok_ ] ->
               Hashtbl.replace va i na;
               Hashtbl.replace vb i nb;
               st.transfers <- st.transfers + 1
           | Ok rs when has_busy rs ->
               Unix.sleepf 0.005;
               exec (tries + 1)
           | Ok rs ->
               note st
                 ("transfer replies: "
                 ^ String.concat " " (List.map P.pp_reply rs));
               Atomic.set stop true
           | Error e ->
               note st ("transfer: " ^ e);
               Atomic.set stop true
       in
       exec 0
     done
   with e -> note st (Printexc.to_string e));
  let r, b = C.rt_stats rt in
  st.retries <- r;
  st.busy <- b;
  C.rt_close rt

let sum_of_mget = function
  | P.Arr [ P.Int x; P.Int y ] -> Ok (Some (x + y))
  | P.Arr [ _; _ ] -> Ok None (* an account mid-transfer *)
  | P.Busy _ -> Ok None (* shed past the retry budget *)
  | r -> Error ("MGET reply: " ^ P.pp_reply r)

let reader ~port ~pairs ~rid st () =
  let rt =
    C.connect_rt ~port ~read_timeout:0.5 ~max_attempts:30
      ~seed:(0x5eed + (rid * 65537)) ()
  in
  let rng = Workload.Splitmix.create (0x5eed + (rid * 65537)) in
  wait_go ();
  (try
     while not (Atomic.get stop) do
       let i = Workload.Splitmix.below rng pairs in
       let a = (2 * i) + 1 and b = (2 * i) + 2 in
       match C.rt_request rt (P.Mget [| a; b |]) with
       | Ok r -> (
           match sum_of_mget r with
           | Ok None -> st.skipped <- st.skipped + 1
           | Ok (Some sum) ->
               st.checks <- st.checks + 1;
               if sum <> 2 * bank_base && sum <> (2 * bank_base) - 1 then begin
                 st.violations <- st.violations + 1;
                 if st.detail = None then
                   st.detail <-
                     Some
                       (Printf.sprintf
                          "pair (%d,%d): sum %d outside {%d,%d} — \
                           non-atomic multi-read"
                          a b sum (2 * bank_base)
                          ((2 * bank_base) - 1))
               end
           | Error e ->
               note st e;
               Atomic.set stop true)
       | Error e ->
           note st ("mget: " ^ e);
           Atomic.set stop true
     done
   with e -> note st (Printexc.to_string e));
  let r, b = C.rt_stats rt in
  st.retries <- r;
  st.busy <- b;
  C.rt_close rt

(* Quiescent conservation audit, directly against a mount: every domain
   is joined when this runs, so the read is exact. *)
let conservation_audit mount ~pairs =
  let missing = ref 0 and total = ref 0 in
  (match
     Server.Mount.exec mount (P.Mget (Array.init (2 * pairs) (fun j -> j + 1)))
   with
   | P.Arr items ->
       List.iter
         (function P.Int v -> total := !total + v | _ -> incr missing)
         items
   | r -> failwith ("audit reply: " ^ P.pp_reply r));
  if !missing > 0 then Error (Printf.sprintf "%d account(s) missing" !missing)
  else if !total <> 2 * bank_base * pairs then
    Error
      (Printf.sprintf "total %d, expected %d (money %s)" !total
         (2 * bank_base * pairs)
         (if !total < 2 * bank_base * pairs then "destroyed" else "created"))
  else Ok !total

let seed_ledger mount ~pairs =
  for i = 0 to pairs - 1 do
    (match Server.Mount.exec mount (P.Put ((2 * i) + 1, bank_base)) with
     | P.Ok_ -> ()
     | r -> failwith ("seed: " ^ P.pp_reply r));
    match Server.Mount.exec mount (P.Put ((2 * i) + 2, bank_base)) with
    | P.Ok_ -> ()
    | r -> failwith ("seed: " ^ P.pp_reply r)
  done

(* --- the replication gate -------------------------------------------------- *)

(* Divergence-then-convergence: a primary/replica pair with the bank mix
   on the primary while the plan partitions the change feed (repl.send).
   The orphaned stream cursor keeps the lag gauges honest through the
   window, so the audit can demand the full arc: lag RISES while the
   wire is down, the healed replica drains it to zero, and its ledger
   then balances to the stamp. *)
let run_repl ~plan ~structure ~duration ~pairs ~writers ~readers ~srv_domains
    ~ci ~json_out =
  let map = Harness.Registry.find structure in
  Verlib.reset ();
  let pmount = Server.Mount.mount ~n_hint:(4 * pairs) map in
  seed_ledger pmount ~pairs;
  (* The replica's stream pins one primary worker for its whole life
     (connection-per-worker pool, docs/REPLICATION.md), and every bank
     client holds a persistent connection — without headroom for all of
     them the replica starves behind the clients and the feed never
     streams. *)
  let config =
    {
      Server.default_config with
      Server.port = 0;
      domains = max srv_domains (writers + readers + 2);
      queue_depth = 16;
      census_interval = 0.05;
      write_timeout = 2.;
      idle_timeout = 10.;
      retry_after_ms = 5;
    }
  in
  let primary = Server.create ~config pmount in
  Server.start primary;
  let pport = Server.port primary in
  let rmount = Server.Mount.mount ~n_hint:(4 * pairs) map in
  let replica =
    Server.create
      ~config:{ config with Server.replica_of = Some ("127.0.0.1", pport) }
      rmount
  in
  Server.start replica;
  Printf.printf
    "soak(repl): plan=%s structure=%s primary=%d replica=%d %.1fs %d pair(s)\n%!"
    (Fault.plan_to_string plan) structure pport (Server.port replica) duration
    pairs;
  let wstats = Array.init writers (fun _ -> new_cstats ()) in
  let rstats = Array.init readers (fun _ -> new_cstats ()) in
  let ds =
    List.init writers (fun w ->
        Domain.spawn
          (writer ~port:pport ~pairs ~nwriters:writers ~wid:w wstats.(w)))
    @ List.init readers (fun r ->
          Domain.spawn (reader ~port:pport ~pairs ~rid:r rstats.(r)))
  in
  let n = List.length ds in
  let t_wait = Unix.gettimeofday () +. 10. in
  while Atomic.get ready < n && Unix.gettimeofday () < t_wait do
    Unix.sleepf 0.002
  done;
  Fault.arm plan;
  Atomic.set go true;
  (* Sample the lag gauges through the window: the partition severs the
     stream, the orphaned cursor pins the acked mark, and the writers
     keep moving the tail — divergence must be visible here. *)
  let max_lag_s = ref 0 and max_lag_b = ref 0 in
  let t0 = Unix.gettimeofday () in
  let records0 = Repl.records_total () in
  while Unix.gettimeofday () -. t0 < duration do
    max_lag_s := max !max_lag_s (Repl.lag_stamps ());
    max_lag_b := max !max_lag_b (Repl.lag_bytes ());
    Unix.sleepf 0.01
  done;
  Atomic.set stop true;
  List.iter Domain.join ds;
  let elapsed = Unix.gettimeofday () -. t0 in
  let records_fed = Repl.records_total () - records0 in
  (* Heal: disarm releases any still-latched window; the replica loop
     redials, resubscribes (resyncing if it fell below the trim) and
     drains the backlog, acking as it goes. *)
  Fault.disarm ();
  let t_heal = Unix.gettimeofday () in
  let caught = ref false in
  while
    (not !caught)
    && Unix.gettimeofday () < t_heal +. 30.
  do
    if Repl.lag_stamps () = 0 && Repl.lag_bytes () = 0 then caught := true
    else Unix.sleepf 0.01
  done;
  let catchup_s = Unix.gettimeofday () -. t_heal in
  Server.stop replica;
  Server.stop primary;
  (* ---- verdicts ---- *)
  let fired = Fault.fired_total () in
  let stalled = Fault.stalled_now () in
  let sum f arr = Array.fold_left (fun acc s -> acc + f s) 0 arr in
  let transfers = sum (fun s -> s.transfers) wstats in
  let checks = sum (fun s -> s.checks) rstats in
  let violations =
    sum (fun s -> s.violations) wstats + sum (fun s -> s.violations) rstats
  in
  let errors = sum (fun s -> s.errors) wstats + sum (fun s -> s.errors) rstats in
  let retries =
    sum (fun s -> s.retries) wstats + sum (fun s -> s.retries) rstats
  in
  Array.iter
    (fun s -> Option.iter (Printf.eprintf "  detail: %s\n") s.detail)
    (Array.append wstats rstats);
  let census_viol =
    Server.census_violations_total primary
    + Server.census_violations_total replica
  in
  let final_ok srv =
    match Server.final_census srv with
    | Some c -> c.Verlib.Chainscan.c_violation_count = 0
    | None -> false
  in
  Printf.printf
    "under fire: transfers=%d checks=%d violations=%d errors=%d records=%d\n"
    transfers checks violations errors records_fed;
  Printf.printf
    "divergence: max_lag=%d stamps / %dB  resyncs=%d dups_dropped=%d\n"
    !max_lag_s !max_lag_b (Repl.resyncs_total ())
    (Repl.dup_dropped_total ());
  Printf.printf
    "convergence: caught_up=%b in %.2fs  applied=%d  watermark=%d\n"
    !caught catchup_s (Repl.applied_total ()) (Repl.watermark_now ());
  let fail = ref false in
  let check ok msg =
    if not ok then begin
      Printf.printf "FAIL: %s\n" msg;
      fail := true
    end
  in
  check (fired > 0) "plan never fired (no fault injected — dead soak)";
  check (stalled = 0) "domains still parked after disarm";
  check (transfers > 0) "no transfers completed under fire (no progress)";
  check (checks > 0) "no atomic snapshot checks completed under fire";
  check (violations = 0) "snapshot invariant violated";
  check (errors = 0) "client errors survived the retry layer";
  check (records_fed > 0) "the change feed carried no records";
  check (!max_lag_s > 0)
    "replication lag never rose — the partition did not bite the feed";
  check !caught "replication lag did not drain to zero after the heal";
  check (census_viol = 0)
    (Printf.sprintf "%d census invariant violation(s)" census_viol);
  check (final_ok primary) "primary final census missing or violated";
  check (final_ok replica) "replica final census missing or violated";
  (match conservation_audit pmount ~pairs with
   | Ok total -> Printf.printf "primary conservation audit: OK (total %d)\n" total
   | Error e -> check false ("primary conservation audit: " ^ e));
  (match conservation_audit rmount ~pairs with
   | Ok total ->
       Printf.printf
         "replica conservation audit: OK (total %d at the healed watermark)\n"
         total
   | Error e -> check false ("replica conservation audit: " ^ e));
  (* Figure rows: "feed" is feed throughput; "catchup" folds the
     catch-up time into the denominator, so a slower post-heal drain
     reads as a (one-sided-gated) throughput regression. *)
  (match json_out with
   | None -> ()
   | Some path ->
       let row r_label r_mops =
         {
           Harness.Bench_json.r_figure = "repl";
           r_label;
           r_mops;
           r_p50_us = 0.;
           r_p99_us = 0.;
           r_chain_max = 0;
           r_chain_p99 = 0;
           r_indirect_links = 0;
           r_reclaimable = 0;
           r_violations = violations + census_viol;
           r_space_bytes = 0.;
           r_retries = retries;
           r_shed = Server.shed_count primary;
           r_giveups = 0;
           r_walk_saturation = 0;
           r_phases = [];
           r_alloc_bytes_per_op = 0.;
           r_gc_minor = 0;
           r_gc_major = 0;
         }
       in
       let rows =
         [
           row "feed" (float_of_int records_fed /. elapsed /. 1e6);
           row "catchup"
             (float_of_int records_fed /. (elapsed +. catchup_s) /. 1e6);
         ]
       in
       let doc =
         match
           if Sys.file_exists path then Harness.Bench_json.read_file path
           else Error "absent"
         with
         | Ok d -> Harness.Bench_json.merge_rows d rows
         | Error _ ->
             Harness.Bench_json.make_doc ~label:"repl"
               ~scale:(if ci then "ci" else "quick")
               rows
       in
       Harness.Bench_json.write_file path doc;
       Printf.printf "bench_json: repl rows -> %s\n" path);
  if !fail then begin
    print_endline "soak(repl): FAIL";
    exit 1
  end
  else print_endline "soak(repl): OK"

(* --- the gate -------------------------------------------------------------- *)

let run plan_spec structure duration pairs writers readers srv_domains ci repl
    json_out profile_out =
  let duration = if ci then min duration 1.0 else duration in
  let pairs = max 1 pairs in
  let writers = max 1 writers and readers = max 1 readers in
  (* The replication gate defaults to the partition preset; an explicit
     --plan still wins. *)
  let plan_spec =
    if repl && plan_spec = "crash-stop-locker" then "split-brain-window"
    else plan_spec
  in
  let plan =
    match Fault.find_plan plan_spec with
    | Ok p -> p
    | Error e ->
        prerr_endline ("verlib-soak: bad plan: " ^ e);
        exit 2
  in
  if repl then
    run_repl ~plan ~structure ~duration ~pairs ~writers ~readers ~srv_domains
      ~ci ~json_out
  else begin
    let map = Harness.Registry.find structure in
    Verlib.reset ();
    let mount = Server.Mount.mount ~n_hint:(4 * pairs) map in
    (* Seed the ledger before anything can fail. *)
    seed_ledger mount ~pairs;
  let config =
    {
      Server.default_config with
      Server.port = 0;
      domains = max 2 srv_domains;
      queue_depth = 16;
      census_interval = 0.05;
      write_timeout = 2.;
      idle_timeout = 10.;
      retry_after_ms = 5;
    }
  in
  let srv = Server.create ~config mount in
  Server.start srv;
  let port = Server.port srv in
  Printf.printf "soak: plan=%s structure=%s port=%d %.1fs %d pair(s)\n%!"
    (Fault.plan_to_string plan) structure port duration pairs;
  let wstats = Array.init writers (fun _ -> new_cstats ()) in
  let rstats = Array.init readers (fun _ -> new_cstats ()) in
  let ds =
    List.init writers (fun w ->
        Domain.spawn (writer ~port ~pairs ~nwriters:writers ~wid:w wstats.(w)))
    @ List.init readers (fun r ->
          Domain.spawn (reader ~port ~pairs ~rid:r rstats.(r)))
  in
  let n = List.length ds in
  let t_wait = Unix.gettimeofday () +. 10. in
  while Atomic.get ready < n && Unix.gettimeofday () < t_wait do
    Unix.sleepf 0.002
  done;
  if profile_out <> None then Verlib.Obs.Profile.start ();
  (* Light the fire only once every client is connected and parked. *)
  Fault.arm plan;
  Atomic.set go true;
  Unix.sleepf duration;
  Atomic.set stop true;
  List.iter Domain.join ds;
  (* Disarm BEFORE the server drain: crash-stopped workers resume, so
     the joins inside [Server.stop] terminate; the grace sleep lets
     them finish their interrupted critical sections. *)
  Fault.disarm ();
  Unix.sleepf 0.1;
  Server.stop srv;
  (match profile_out with
   | None -> ()
   | Some path ->
       Verlib.Obs.Profile.stop ();
       Verlib.Obs.Profile.write_collapsed path;
       Printf.eprintf "profile: %d sample(s) -> %s\n%!"
         (Verlib.Obs.Profile.samples_total ()) path);
  (* ---- verdicts ---- *)
  let fired = Fault.fired_total () in
  let stalled = Fault.stalled_now () in
  let sum f arr = Array.fold_left (fun acc s -> acc + f s) 0 arr in
  let transfers = sum (fun s -> s.transfers) wstats in
  let checks = sum (fun s -> s.checks) rstats in
  let skipped = sum (fun s -> s.skipped) rstats in
  let violations =
    sum (fun s -> s.violations) wstats + sum (fun s -> s.violations) rstats
  in
  let errors = sum (fun s -> s.errors) wstats + sum (fun s -> s.errors) rstats in
  let retries =
    sum (fun s -> s.retries) wstats + sum (fun s -> s.retries) rstats
  in
  let busy = sum (fun s -> s.busy) wstats + sum (fun s -> s.busy) rstats in
  Array.iter
    (fun s -> Option.iter (Printf.eprintf "  detail: %s\n") s.detail)
    (Array.append wstats rstats);
  let audit = conservation_audit mount ~pairs in
  let census_viol = Server.census_violations_total srv in
  let final_ok =
    match Server.final_census srv with
    | Some c -> c.Verlib.Chainscan.c_violation_count = 0
    | None -> false
  in
  Printf.printf
    "under fire: transfers=%d checks=%d inflight_skips=%d violations=%d \
     errors=%d\n"
    transfers checks skipped violations errors;
  Printf.printf
    "resilience: faults_fired=%d stalled_after_disarm=%d retries=%d busy=%d \
     shed=%d deadline_kills=%d reconnects=%d\n"
    fired stalled retries busy (Server.shed_count srv)
    (Server.deadline_kill_count srv)
    (C.reconnect_total ());
  let fail = ref false in
  let check ok msg =
    if not ok then begin
      Printf.printf "FAIL: %s\n" msg;
      fail := true
    end
  in
  check (fired > 0) "plan never fired (no fault injected — dead soak)";
  check (stalled = 0) "domains still parked after disarm";
  check (transfers > 0) "no transfers completed under fire (no progress)";
  check (checks > 0) "no atomic snapshot checks completed under fire";
  check (violations = 0) "snapshot invariant violated";
  check (errors = 0) "client errors survived the retry layer";
  check (census_viol = 0)
    (Printf.sprintf "%d census invariant violation(s)" census_viol);
  check final_ok "final quiescent census missing or violated";
  (match audit with
   | Ok total -> Printf.printf "conservation audit: OK (total %d)\n" total
   | Error e -> check false ("conservation audit: " ^ e));
  if !fail then begin
    print_endline "soak: FAIL";
    exit 1
  end
  else print_endline "soak: OK"
  end

let cmd =
  let doc = "run the bank workload against an in-process server under a fault \
             plan, then audit (chaos gate)" in
  Cmd.v
    (Cmd.info "verlib_soak" ~doc)
    Term.(
      const run $ plan_arg $ structure $ duration $ pairs $ writers $ readers
      $ srv_domains $ ci $ repl $ json_out $ profile_out)

let () = exit (Cmd.eval cmd)
