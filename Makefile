.PHONY: all build test bench bench-full bench-json bench-check examples obs-smoke serve-smoke serve-baseline c10k-smoke chaos-smoke trace-smoke profile-smoke txn-smoke repl-smoke repl-baseline ci doc clean

# Sections that produce BENCH json rows (see bench/main.ml --json).
BENCH_JSON_SECTIONS = fig8a fig9 fig12 extra_skiplist shard_sweep txn
# The same list as a comma-separated figure filter for bench_diff: the
# committed baseline additionally carries "serve" rows (gated by
# serve-smoke), which bench-check must not report as missing.
comma := ,
empty :=
space := $(empty) $(empty)
BENCH_JSON_FIGURES = $(subst $(space),$(comma),$(strip $(BENCH_JSON_SECTIONS)))
# Generous on purpose: CI-scale runs on a time-shared core are noisy;
# the gate catches collapses and census violations, not drift.
BENCH_THRESHOLD = 60
# The profiler-overhead gate is tight by design: default-rate sampling
# (97 Hz) must stay within this percentage of the profiler-off figure.
PROFILE_OVERHEAD_THRESHOLD = 5

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

bench-full:
	dune exec bench/main.exe -- --full

# Regenerate the committed machine-readable baseline (BENCH_PR7.json):
# one row per benchmark cell with throughput, latency percentiles, the
# final chain census and bytes-per-entry.  Schema: Harness.Bench_json.
bench-json:
	dune build bench/main.exe
	dune exec bench/main.exe -- --ci --label baseline \
	  --json BENCH_PR7.json $(BENCH_JSON_SECTIONS)
	$(MAKE) serve-baseline

# Perf trajectory gate: rerun the same sections at the same scale and
# diff against the committed baseline; non-zero exit on regression.
bench-check:
	dune build bench/main.exe bin/bench_diff.exe
	dune exec bench/main.exe -- --ci --label check \
	  --json /tmp/verlib_bench_current.json $(BENCH_JSON_SECTIONS)
	dune exec bin/bench_diff.exe -- BENCH_PR7.json \
	  /tmp/verlib_bench_current.json --figures $(BENCH_JSON_FIGURES) \
	  --threshold $(BENCH_THRESHOLD)

examples:
	dune exec examples/quickstart.exe
	dune exec examples/order_book.exe
	dune exec examples/ip_routes.exe
	dune exec examples/metrics_cut.exe

# End-to-end observability smoke: a short instrumented run through the
# CLI (with a chain census and the background census sampler on), then
# the exported stats JSON and Chrome trace validated by the test binary
# (the same alcotest cases `dune runtest` runs on freshly generated
# artefacts), and finally a zero-violation census check on every
# versioned structure.
obs-smoke:
	dune build bin/verlib_run.exe test/test_obs.exe
	dune exec bin/verlib_run.exe -- -d 0.2 -r 1 --stats=json \
	  --census --census-interval 0.05 \
	  --trace /tmp/verlib_trace.json > /tmp/verlib_stats.json
	OBS_SMOKE_TRACE=/tmp/verlib_trace.json \
	  OBS_SMOKE_STATS=/tmp/verlib_stats.json \
	  dune exec test/test_obs.exe -- test smoke
	@for s in dlist hashtable btree arttree skiplist sharded-btree:4; do \
	  echo "census check: $$s"; \
	  dune exec bin/verlib_run.exe -- -s $$s -n 500 -d 0.1 -r 1 \
	    --census --stats=json > /tmp/verlib_census_$$s.json || exit 1; \
	  grep -q '"census":{' /tmp/verlib_census_$$s.json \
	    || { echo "FAIL: no census block for $$s"; exit 1; }; \
	  if grep -Eq '"violations":[1-9][0-9]*\}' /tmp/verlib_census_$$s.json; then \
	    echo "FAIL: census violations for $$s"; exit 1; \
	  fi; \
	done
	@echo "obs-smoke: census clean on the versioned structures (incl. a sharded mount)"

# Wire-path smoke: boot verlib-serve on an ephemeral port, prove the
# snapshot invariant from concurrent client domains (bank mix: MGET/RANGE
# pair sums stay in {2B, 2B-1}, money conserved at quiescence), drive an
# opgen throughput run whose rows gate through bench_diff against the
# committed baseline's "serve" figure, require a clean census in the
# served STATS, and check the SIGINT drain path flushes the final report.
serve-smoke:
	dune build bin/verlib_serve.exe bin/verlib_loadgen.exe bin/bench_diff.exe
	@set -e; \
	./_build/default/bin/verlib_serve.exe -s btree -p 0 -t 6 \
	  --census-interval 0.1 --duration 120 --stats json \
	  > /tmp/verlib_serve_report.json 2>/tmp/verlib_serve.log & \
	srv=$$!; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	sleep 1; \
	port=$$(awk 'NR==1 && $$1=="PORT" {print $$2}' /tmp/verlib_serve_report.json); \
	test -n "$$port" || { echo "FAIL: server did not report a port"; exit 1; }; \
	echo "serve-smoke: server on port $$port"; \
	echo "serve-smoke: bank snapshot invariant (4 client domains)"; \
	./_build/default/bin/verlib_loadgen.exe --port $$port --mix bank \
	  -t 4 -d 1 --pairs 32; \
	echo "serve-smoke: opgen throughput + bench gate"; \
	./_build/default/bin/verlib_loadgen.exe --port $$port --ci \
	  -t 4 -p 8 -q multifind:8 -u 20 -d 1 \
	  --json /tmp/verlib_serve_rows.json \
	  --stats-out /tmp/verlib_serve_stats.json; \
	grep -q '"violations":0' /tmp/verlib_serve_stats.json \
	  || { echo "FAIL: census violations in served STATS"; exit 1; }; \
	./_build/default/bin/bench_diff.exe BENCH_PR7.json \
	  /tmp/verlib_serve_rows.json --figures serve \
	  --threshold $(BENCH_THRESHOLD); \
	kill -INT $$srv; \
	wait $$srv; \
	trap - EXIT; \
	grep -q 'draining' /tmp/verlib_serve.log \
	  || { echo "FAIL: server did not drain on SIGINT"; exit 1; }; \
	grep -q '"census":{' /tmp/verlib_serve_report.json \
	  || { echo "FAIL: no final census in the drained report"; exit 1; }; \
	echo "serve-smoke: sharded mount (sharded-btree:4): bank + opgen + gate"; \
	./_build/default/bin/verlib_serve.exe -s sharded-btree:4 -p 0 -t 6 \
	  --census-interval 0.1 --duration 120 --stats json \
	  > /tmp/verlib_serve_sh_report.json 2>/tmp/verlib_serve_sh.log & \
	srv=$$!; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	sleep 1; \
	port=$$(awk 'NR==1 && $$1=="PORT" {print $$2}' /tmp/verlib_serve_sh_report.json); \
	test -n "$$port" || { echo "FAIL: sharded server did not report a port"; exit 1; }; \
	./_build/default/bin/verlib_loadgen.exe --port $$port --mix bank \
	  -t 4 -d 1 --pairs 32; \
	./_build/default/bin/verlib_loadgen.exe --port $$port --ci \
	  -t 4 -p 8 -q multifind:8 -u 20 -d 1 --figure serve-sharded \
	  --json /tmp/verlib_serve_sh_rows.json \
	  --stats-out /tmp/verlib_serve_sh_stats.json; \
	grep -q '"violations":0' /tmp/verlib_serve_sh_stats.json \
	  || { echo "FAIL: census violations in sharded served STATS"; exit 1; }; \
	./_build/default/bin/bench_diff.exe BENCH_PR7.json \
	  /tmp/verlib_serve_sh_rows.json --figures serve-sharded \
	  --threshold $(BENCH_THRESHOLD); \
	kill -INT $$srv; \
	wait $$srv; \
	trap - EXIT; \
	echo "serve-smoke: OK"

# Refresh the served-throughput rows (figure "serve") in the committed
# baseline, at the same scale serve-smoke replays them.
serve-baseline:
	dune build bin/verlib_serve.exe bin/verlib_loadgen.exe
	@set -e; \
	./_build/default/bin/verlib_serve.exe -s btree -p 0 -t 6 \
	  --census-interval 0.1 --duration 120 --stats none \
	  > /tmp/verlib_serve_report.json 2>/tmp/verlib_serve.log & \
	srv=$$!; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	sleep 1; \
	port=$$(awk 'NR==1 && $$1=="PORT" {print $$2}' /tmp/verlib_serve_report.json); \
	test -n "$$port" || { echo "FAIL: server did not report a port"; exit 1; }; \
	./_build/default/bin/verlib_loadgen.exe --port $$port --ci \
	  -t 4 -p 8 -q multifind:8 -u 20 -d 1 \
	  --json BENCH_PR7.json --merge-into BENCH_PR7.json; \
	kill -INT $$srv; \
	wait $$srv; \
	trap - EXIT; \
	./_build/default/bin/verlib_serve.exe -s sharded-btree:4 -p 0 -t 6 \
	  --census-interval 0.1 --duration 120 --stats none \
	  > /tmp/verlib_serve_sh_report.json 2>/tmp/verlib_serve_sh.log & \
	srv=$$!; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	sleep 1; \
	port=$$(awk 'NR==1 && $$1=="PORT" {print $$2}' /tmp/verlib_serve_sh_report.json); \
	test -n "$$port" || { echo "FAIL: sharded server did not report a port"; exit 1; }; \
	./_build/default/bin/verlib_loadgen.exe --port $$port --ci \
	  -t 4 -p 8 -q multifind:8 -u 20 -d 1 --figure serve-sharded \
	  --json BENCH_PR7.json --merge-into BENCH_PR7.json; \
	kill -INT $$srv; \
	wait $$srv; \
	trap - EXIT

# c10k gate (docs/ASYNC.md): the event loop holds thousands of
# mostly-idle connections while a pipelined hot set drives load — the
# posture the old serving core could never reach (select(2) dies past
# FD_SETSIZE=1024 fds; thread-per-connection capped concurrency at the
# worker-domain count).  Asserts:
#   - every idle connection survives the run (the loadgen PINGs each at
#     open and again after the workload, exiting non-zero on any death);
#   - zero census violations under the c10k posture;
#   - the queue-dwell p99 stays bounded (latency, not capacity, is the
#     -BUSY currency under the event loop);
#   - SIGINT drains gracefully and the final report shows zero
#     registered connections — no leaked fds.
# Needs ~2.2k fds: raise the soft ulimit if the hard limit allows.
C10K_IDLE = 2048
c10k-smoke:
	dune build bin/verlib_serve.exe bin/verlib_loadgen.exe
	@set -e; \
	ulimit -n 16384 2>/dev/null || true; \
	./_build/default/bin/verlib_serve.exe -s btree -p 0 -t 4 \
	  --census-interval 0.2 --duration 180 --stats json \
	  > /tmp/verlib_c10k_report.json 2>/tmp/verlib_c10k.log & \
	srv=$$!; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	sleep 1; \
	port=$$(awk 'NR==1 && $$1=="PORT" {print $$2}' /tmp/verlib_c10k_report.json); \
	test -n "$$port" || { echo "FAIL: server did not report a port"; exit 1; }; \
	echo "c10k-smoke: $(C10K_IDLE) idle conns + pipelined hot set on port $$port"; \
	./_build/default/bin/verlib_loadgen.exe --port $$port --ci \
	  --idle-conns $(C10K_IDLE) -t 4 -p 8 -q multifind:8 -u 20 -d 2 \
	  --stats-out /tmp/verlib_c10k_stats.json; \
	grep -q '"violations":0' /tmp/verlib_c10k_stats.json \
	  || { echo "FAIL: census violations under the c10k posture"; exit 1; }; \
	dwell=$$(sed -n 's/.*"phase_queue_cycles":{[^}]*"p99_us":\([0-9.]*\).*/\1/p' \
	  /tmp/verlib_c10k_stats.json); \
	test -n "$$dwell" || { echo "FAIL: no queue-phase histogram in STATS"; exit 1; }; \
	awk -v d="$$dwell" 'BEGIN { exit !(d+0 < 500000) }' \
	  || { echo "FAIL: queue dwell p99 $${dwell}us is unbounded"; exit 1; }; \
	echo "c10k-smoke: queue dwell p99 $${dwell}us"; \
	sleep 1; \
	kill -INT $$srv; \
	wait $$srv; \
	trap - EXIT; \
	grep -q 'draining' /tmp/verlib_c10k.log \
	  || { echo "FAIL: server did not drain on SIGINT"; exit 1; }; \
	grep -q '"connections_active":0' /tmp/verlib_c10k_report.json \
	  || { echo "FAIL: connections still registered after the drain"; exit 1; }; \
	echo "c10k-smoke: OK"

# Chaos gate (docs/RESILIENCE.md).  Three stanzas:
#   1. bin/verlib_soak: the bank mix against a live in-process server
#      while a named fault plan fires at the versioning core and the
#      wire; exits non-zero unless the final quiescent census is
#      violation-free, no domain is left parked, clients saw zero
#      errors, and money is conserved exactly.
#   2. Overload: a 1-worker server with admission control is overdriven
#      by 6 client domains — the loadgen must observe -BUSY sheds
#      (shed > 0) — and must then serve an untroubled follow-up run
#      (shed = 0, 0 errors): shedding engages and releases.
#   3. The loadgen's own --faults path: the bank invariant holds over a
#      flaky wire masked by the client retry layer.
chaos-smoke:
	dune build bin/verlib_soak.exe bin/verlib_serve.exe bin/verlib_loadgen.exe
	@set -e; \
	for plan in crash-stop-locker flaky-wire stalled-reclaimer yield-storm; do \
	  echo "chaos-smoke: soak under $$plan"; \
	  ./_build/default/bin/verlib_soak.exe --plan $$plan --duration 1.5 --ci; \
	done; \
	echo "chaos-smoke: sharded soak (cross-shard snapshots under fire)"; \
	./_build/default/bin/verlib_soak.exe --plan crash-stop-locker \
	  -s sharded-btree:4 --duration 1.5 --ci; \
	./_build/default/bin/verlib_soak.exe --plan flaky-wire \
	  -s sharded-hashtable:2 --duration 1.5 --ci
	@set -e; \
	echo "chaos-smoke: overload shedding (1 worker, admission control)"; \
	./_build/default/bin/verlib_serve.exe -s btree -p 0 -t 1 --queue-depth 8 \
	  --shed-queue 1 --retry-after-ms 1 --duration 120 --stats none \
	  > /tmp/verlib_shed_port.txt 2>/tmp/verlib_shed_srv.log & \
	srv=$$!; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	sleep 1; \
	port=$$(awk '$$1=="PORT"{print $$2}' /tmp/verlib_shed_port.txt); \
	test -n "$$port" || { echo "FAIL: server did not report a port"; exit 1; }; \
	./_build/default/bin/verlib_loadgen.exe --port $$port -t 6 -p 4 -u 20 \
	  -d 1.5 -n 2000 | tee /tmp/verlib_shed_over.txt; \
	grep -Eq 'shed=[1-9]' /tmp/verlib_shed_over.txt \
	  || { echo "FAIL: overdrive produced no -BUSY sheds"; exit 1; }; \
	./_build/default/bin/verlib_loadgen.exe --port $$port -t 1 -p 4 -u 20 \
	  -d 0.5 -n 2000 --no-fill | tee /tmp/verlib_shed_rec.txt; \
	grep -Eq 'shed=0' /tmp/verlib_shed_rec.txt \
	  || { echo "FAIL: server still shedding after the overdrive"; exit 1; }; \
	grep -Eq '0 errors' /tmp/verlib_shed_rec.txt \
	  || { echo "FAIL: errors after recovery"; exit 1; }; \
	echo "chaos-smoke: bank invariant over a flaky wire (loadgen --faults)"; \
	./_build/default/bin/verlib_loadgen.exe --port $$port --mix bank \
	  -t 4 -d 1 --pairs 16 --faults flaky-wire; \
	kill -INT $$srv; \
	wait $$srv; \
	trap - EXIT; \
	echo "chaos-smoke: OK"

# Observability gate (docs/OBSERVABILITY.md).  One server under a
# deterministic stall plan (a 30 ms pause at lock.acquire every 40th
# per-domain hit) with the full metrics plane armed — request tracing,
# METRICS sweeps, SLO watchdog, flight recorder — driven by a traced
# loadgen run.  Asserts the whole pipeline end to end:
#   - traced samples joined client-side, every phase decomposition
#     nesting inside its client-measured RTT (the loadgen exits non-zero
#     otherwise);
#   - the METRICS exposition parses under the strict line-format parser;
#   - the shutdown Chrome trace carries per-request span tracks;
#   - at least one flight dump was filed by the SLO watchdog naming the
#     injected [stall] phase, and the stall dominates a dump's span
#     aggregate — chaos shows up attributed, not as mystery latency.
# Artifacts (uploaded by CI): /tmp/verlib_req_trace.json,
# /tmp/verlib_trace_join.json, /tmp/verlib_metrics.txt, /tmp/verlib_flight/.
trace-smoke:
	dune build bin/verlib_serve.exe bin/verlib_loadgen.exe
	@set -e; \
	rm -rf /tmp/verlib_flight /tmp/verlib_req_trace.json; \
	./_build/default/bin/verlib_serve.exe -s sharded-btree:4 -p 0 -t 4 \
	  --census-interval 0.2 --metrics-interval 0.2 \
	  --flight-dir /tmp/verlib_flight --flight-min-interval 0 \
	  --slo-p99-us 5000 \
	  --faults 'lock.acquire:pause=30@every=40' \
	  --duration 120 --stats none --trace /tmp/verlib_req_trace.json \
	  > /tmp/verlib_trace_port.txt 2>/tmp/verlib_trace_srv.log & \
	srv=$$!; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	sleep 1; \
	port=$$(awk '$$1=="PORT"{print $$2}' /tmp/verlib_trace_port.txt); \
	test -n "$$port" || { echo "FAIL: server did not report a port"; exit 1; }; \
	echo "trace-smoke: traced opgen against the stalling server (port $$port)"; \
	./_build/default/bin/verlib_loadgen.exe --port $$port -t 2 -p 4 \
	  -n 1000 -u 30 -d 2 --trace-sample 7 \
	  --trace-out /tmp/verlib_trace_join.json \
	  --metrics-out /tmp/verlib_metrics.txt \
	  | tee /tmp/verlib_trace_out.txt; \
	grep -Eq 'trace: [1-9][0-9]* sample' /tmp/verlib_trace_out.txt \
	  || { echo "FAIL: no traced samples joined"; exit 1; }; \
	grep -Eq 'metrics: [0-9]+ sample\(s\) validated' /tmp/verlib_trace_out.txt \
	  || { echo "FAIL: METRICS exposition did not validate"; exit 1; }; \
	sleep 1; \
	kill -INT $$srv; \
	wait $$srv; \
	trap - EXIT; \
	grep -q 'requests-domain' /tmp/verlib_req_trace.json \
	  || { echo "FAIL: no request-span tracks in the Chrome trace"; exit 1; }; \
	ls /tmp/verlib_flight/flight-*.json >/dev/null 2>&1 \
	  || { echo "FAIL: no flight-recorder dumps"; exit 1; }; \
	grep -l '"slo_phase":"stall"' /tmp/verlib_flight/flight-*.json >/dev/null \
	  || { echo "FAIL: no slo-breach dump naming the injected stall phase"; exit 1; }; \
	grep -l '"dominant_phase":"stall"' /tmp/verlib_flight/flight-*.json >/dev/null \
	  || { echo "FAIL: injected stall dominates no dump's span aggregate"; exit 1; }; \
	echo "trace-smoke: OK ($$(ls /tmp/verlib_flight | wc -l) flight dump(s), join in /tmp/verlib_trace_join.json)"

# Profiling gate (docs/OBSERVABILITY.md, Profiling).  Two stanzas:
#   1. Convoy attribution: a blocking-locks sharded server under the
#      blocking-convoy preset (the first lock.acquire stalls holding the
#      lock until disarm) with the sampling profiler at 97 Hz.  Update
#      traffic on unfilled trees trips the stall at the btree root-slot
#      lock; --rt-attempts 1 stops the client retry layer from replaying
#      wedged requests onto fresh workers (each stuck connection parks
#      one of the 8 server workers, leaving spares for the dashboard),
#      and timeout -s KILL reaps the loadgen since its cooperative stop
#      waits on the wedged workers.  Workload health is chaos-smoke's
#      business; this gate only asserts the profiler SAW the convoy:
#      verlib_top --once must render from the live server, name the
#      convoyed site as the top contention entry and attribute >= 10% of
#      samples to it (PROFILE fetched and strictly parsed over the
#      wire), and the shutdown collapsed-stack export must be non-empty
#      and mention the site.
#   2. Overhead: the serve opgen figure with 97 Hz sampling must stay
#      within $(PROFILE_OVERHEAD_THRESHOLD)% of the profiler-off figure
#      (bench_diff gate).  Both sides are best-of-3: on a time-shared
#      single-core runner the run-to-run scheduler noise (~12%) dwarfs
#      true sampler overhead, and the max of three runs estimates each
#      config's unperturbed capacity — real overhead still shows up in
#      the max, so the tight threshold stays meaningful.  The sampled
#      runs also exercise the loadgen's --profile-out fetch+validate
#      path.
# Artifacts (uploaded by CI): /tmp/verlib_profile_collapsed.txt,
# /tmp/verlib_profile.json, /tmp/verlib_top_once.txt.
profile-smoke:
	dune build bin/verlib_serve.exe bin/verlib_loadgen.exe \
	  bin/verlib_top.exe bin/bench_diff.exe
	@set -e; \
	rm -f /tmp/verlib_profile_collapsed.txt /tmp/verlib_profile.json \
	  /tmp/verlib_top_once.txt; \
	./_build/default/bin/verlib_serve.exe -s sharded-btree:4 -p 0 -t 8 \
	  --locks blocking --faults blocking-convoy \
	  --profile-hz 97 --profile-out /tmp/verlib_profile_collapsed.txt \
	  --duration 120 --stats none \
	  > /tmp/verlib_profile_port.txt 2>/tmp/verlib_profile_srv.log & \
	srv=$$!; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	sleep 1; \
	port=$$(awk '$$1=="PORT"{print $$2}' /tmp/verlib_profile_port.txt); \
	test -n "$$port" || { echo "FAIL: server did not report a port"; exit 1; }; \
	echo "profile-smoke: convoy traffic against blocking locks (port $$port)"; \
	timeout -s KILL 15 ./_build/default/bin/verlib_loadgen.exe \
	  --port $$port --no-fill -t 3 -p 4 -u 100 -n 4000 -d 5 \
	  --rt-attempts 1 >/dev/null 2>&1 || true; \
	sleep 2; \
	echo "profile-smoke: verlib_top --once + convoy assertions"; \
	./_build/default/bin/verlib_top.exe -p $$port --once \
	  --expect-lock-site btree.rlock --expect-percent 10 \
	  | tee /tmp/verlib_top_once.txt; \
	kill -INT $$srv; \
	wait $$srv; \
	trap - EXIT; \
	test -s /tmp/verlib_profile_collapsed.txt \
	  || { echo "FAIL: collapsed-stack profile empty"; exit 1; }; \
	grep -q 'lock:btree.rlock' /tmp/verlib_profile_collapsed.txt \
	  || { echo "FAIL: convoyed site missing from collapsed stacks"; exit 1; }; \
	echo "profile-smoke: overhead gate (97 Hz sampling vs profiler off, best of 3)"; \
	./_build/default/bin/verlib_serve.exe -s sharded-btree:4 -p 0 -t 4 \
	  --census-interval 0.1 --duration 180 --stats none \
	  > /tmp/verlib_profbase_port.txt 2>/dev/null & \
	srv=$$!; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	sleep 1; \
	port=$$(awk '$$1=="PORT"{print $$2}' /tmp/verlib_profbase_port.txt); \
	test -n "$$port" || { echo "FAIL: baseline server did not report a port"; exit 1; }; \
	best=1; bestv=0; \
	for i in 1 2 3; do \
	  ./_build/default/bin/verlib_loadgen.exe --port $$port -t 4 -p 8 \
	    -n 1000 -q multifind:8 -u 20 -d 3 \
	    --json /tmp/verlib_profile_base_$$i.json \
	    2>&1 | tee /tmp/verlib_profbase_$$i.log; \
	  v=$$(sed -n 's|.* \([0-9.]*\) Mop/s.*|\1|p' /tmp/verlib_profbase_$$i.log | head -1); \
	  if awk "BEGIN{exit !($$v > $$bestv)}"; then best=$$i; bestv=$$v; fi; \
	done; \
	cp /tmp/verlib_profile_base_$$best.json /tmp/verlib_profile_base.json; \
	echo "profile-smoke: profiler-off best of 3 = $$bestv Mop/s (run $$best)"; \
	kill -INT $$srv; \
	wait $$srv; \
	trap - EXIT; \
	./_build/default/bin/verlib_serve.exe -s sharded-btree:4 -p 0 -t 4 \
	  --census-interval 0.1 --profile-hz 97 --duration 180 --stats none \
	  > /tmp/verlib_profon_port.txt 2>/dev/null & \
	srv=$$!; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	sleep 1; \
	port=$$(awk '$$1=="PORT"{print $$2}' /tmp/verlib_profon_port.txt); \
	test -n "$$port" || { echo "FAIL: sampled server did not report a port"; exit 1; }; \
	best=1; bestv=0; \
	for i in 1 2 3; do \
	  ./_build/default/bin/verlib_loadgen.exe --port $$port -t 4 -p 8 \
	    -n 1000 -q multifind:8 -u 20 -d 3 \
	    --json /tmp/verlib_profile_cur_$$i.json \
	    --profile-out /tmp/verlib_profile.json \
	    2>&1 | tee /tmp/verlib_profon_$$i.log; \
	  grep -q 'profile: snapshot validated' /tmp/verlib_profon_$$i.log \
	    || { echo "FAIL: PROFILE did not validate over the wire"; exit 1; }; \
	  v=$$(sed -n 's|.* \([0-9.]*\) Mop/s.*|\1|p' /tmp/verlib_profon_$$i.log | head -1); \
	  if awk "BEGIN{exit !($$v > $$bestv)}"; then best=$$i; bestv=$$v; fi; \
	done; \
	cp /tmp/verlib_profile_cur_$$best.json /tmp/verlib_profile_cur.json; \
	echo "profile-smoke: 97 Hz best of 3 = $$bestv Mop/s (run $$best)"; \
	kill -INT $$srv; \
	wait $$srv; \
	trap - EXIT; \
	./_build/default/bin/bench_diff.exe /tmp/verlib_profile_base.json \
	  /tmp/verlib_profile_cur.json --figures serve \
	  --threshold $(PROFILE_OVERHEAD_THRESHOLD); \
	echo "profile-smoke: OK"

# Transactional end-to-end gate: a fault-armed server (abort-storm
# fires on the txn commit path) driven by the transactional bank mix
# over a flaky wire.  The loadgen itself exits non-zero on any
# violation, give-up or conservation failure (docs/TRANSACTIONS.md);
# on top of that we require that transactions actually committed and
# that the storm actually fired.  A second pass covers a sharded
# mount, where one transaction spans several shards.
txn-smoke:
	dune build bin/verlib_serve.exe bin/verlib_loadgen.exe
	@set -e; \
	for spec in btree sharded-btree:4; do \
	  echo "txn-smoke: $$spec under abort-storm + flaky-wire"; \
	  ./_build/default/bin/verlib_serve.exe -s $$spec -p 0 -t 6 \
	    --census-interval 0.1 --duration 120 --stats json \
	    --faults abort-storm \
	    > /tmp/verlib_txn_report.json 2>/tmp/verlib_txn.log & \
	  srv=$$!; \
	  trap 'kill $$srv 2>/dev/null || true' EXIT; \
	  sleep 1; \
	  port=$$(awk 'NR==1 && $$1=="PORT" {print $$2}' /tmp/verlib_txn_report.json); \
	  test -n "$$port" || { echo "FAIL: server did not report a port"; exit 1; }; \
	  ./_build/default/bin/verlib_loadgen.exe --port $$port --mix bank \
	    -t 4 -d 1.5 --pairs 16 --faults flaky-wire \
	    | tee /tmp/verlib_txn_bank.out; \
	  grep -q 'txn: commits=' /tmp/verlib_txn_bank.out \
	    || { echo "FAIL: no txn gauges in the bank report"; exit 1; }; \
	  grep -Eq 'txn: commits=[1-9]' /tmp/verlib_txn_bank.out \
	    || { echo "FAIL: no transactions committed"; exit 1; }; \
	  kill -INT $$srv; \
	  wait $$srv; \
	  trap - EXIT; \
	  grep -q '"faults_fired":[1-9]' /tmp/verlib_txn_report.json \
	    || { echo "FAIL: abort-storm never fired on the server"; exit 1; }; \
	done; \
	echo "txn-smoke: OK"

# Replication end-to-end gate: an in-process primary/replica pair runs
# the bank mix while the split-brain-window plan partitions the change
# feed.  The soak binary itself demands the full divergence arc — lag
# gauges RISE under the partition, drain to zero after the heal, the
# replica's ledger balances exactly at the healed watermark, and both
# sides finish with zero census violations (docs/REPLICATION.md).  On
# top, the emitted feed-throughput and catch-up figure rows (figure
# "repl") are gated against the committed baseline.
repl-smoke:
	dune build bin/verlib_soak.exe bin/bench_diff.exe
	@set -e; \
	./_build/default/bin/verlib_soak.exe --repl --ci \
	  --json /tmp/verlib_repl_rows.json \
	  2>&1 | tee /tmp/verlib_repl_smoke.log; \
	grep -q 'soak(repl): OK' /tmp/verlib_repl_smoke.log \
	  || { echo "FAIL: replication soak did not pass"; exit 1; }; \
	grep -Eq 'divergence: max_lag=[1-9]' /tmp/verlib_repl_smoke.log \
	  || { echo "FAIL: no divergence observed under the partition"; exit 1; }; \
	./_build/default/bin/bench_diff.exe BENCH_PR7.json \
	  /tmp/verlib_repl_rows.json --figures repl \
	  --threshold $(BENCH_THRESHOLD); \
	echo "repl-smoke: OK"

# Refresh the replication rows (figure "repl") in the committed
# baseline, at the same scale repl-smoke replays them.
repl-baseline:
	dune build bin/verlib_soak.exe
	./_build/default/bin/verlib_soak.exe --repl --ci --json BENCH_PR7.json

# Everything the CI workflow (.github/workflows/ci.yml) runs, callable
# locally: full build, the test suites, the perf-trajectory gate at
# --ci scale, the observability gate, the profiling gate, the
# transactional end-to-end gate and the replication chaos gate.  The
# heavier smoke targets (serve-smoke, chaos-smoke, obs-smoke) stay
# opt-in.
ci: build test bench-check trace-smoke profile-smoke txn-smoke repl-smoke c10k-smoke

doc:
	dune build @doc

clean:
	dune clean
