.PHONY: all build test bench bench-full bench-json bench-check examples obs-smoke doc clean

# Sections that produce BENCH json rows (see bench/main.ml --json).
BENCH_JSON_SECTIONS = fig8a fig9 fig12 extra_skiplist
# Generous on purpose: CI-scale runs on a time-shared core are noisy;
# the gate catches collapses and census violations, not drift.
BENCH_THRESHOLD = 60

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

bench-full:
	dune exec bench/main.exe -- --full

# Regenerate the committed machine-readable baseline (BENCH_PR2.json):
# one row per benchmark cell with throughput, latency percentiles, the
# final chain census and bytes-per-entry.  Schema: Harness.Bench_json.
bench-json:
	dune build bench/main.exe
	dune exec bench/main.exe -- --ci --label baseline \
	  --json BENCH_PR2.json $(BENCH_JSON_SECTIONS)

# Perf trajectory gate: rerun the same sections at the same scale and
# diff against the committed baseline; non-zero exit on regression.
bench-check:
	dune build bench/main.exe bin/bench_diff.exe
	dune exec bench/main.exe -- --ci --label check \
	  --json /tmp/verlib_bench_current.json $(BENCH_JSON_SECTIONS)
	dune exec bin/bench_diff.exe -- BENCH_PR2.json \
	  /tmp/verlib_bench_current.json --threshold $(BENCH_THRESHOLD)

examples:
	dune exec examples/quickstart.exe
	dune exec examples/order_book.exe
	dune exec examples/ip_routes.exe
	dune exec examples/metrics_cut.exe

# End-to-end observability smoke: a short instrumented run through the
# CLI (with a chain census and the background census sampler on), then
# the exported stats JSON and Chrome trace validated by the test binary
# (the same alcotest cases `dune runtest` runs on freshly generated
# artefacts), and finally a zero-violation census check on every
# versioned structure.
obs-smoke:
	dune build bin/verlib_run.exe test/test_obs.exe
	dune exec bin/verlib_run.exe -- -d 0.2 -r 1 --stats=json \
	  --census --census-interval 0.05 \
	  --trace /tmp/verlib_trace.json > /tmp/verlib_stats.json
	OBS_SMOKE_TRACE=/tmp/verlib_trace.json \
	  OBS_SMOKE_STATS=/tmp/verlib_stats.json \
	  dune exec test/test_obs.exe -- test smoke
	@for s in dlist hashtable btree arttree skiplist; do \
	  echo "census check: $$s"; \
	  dune exec bin/verlib_run.exe -- -s $$s -n 500 -d 0.1 -r 1 \
	    --census --stats=json > /tmp/verlib_census_$$s.json || exit 1; \
	  grep -q '"census":{' /tmp/verlib_census_$$s.json \
	    || { echo "FAIL: no census block for $$s"; exit 1; }; \
	  if grep -Eq '"violations":[1-9][0-9]*\}' /tmp/verlib_census_$$s.json; then \
	    echo "FAIL: census violations for $$s"; exit 1; \
	  fi; \
	done
	@echo "obs-smoke: census clean on all five versioned structures"

doc:
	dune build @doc

clean:
	dune clean
