.PHONY: all build test bench bench-full examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

bench-full:
	dune exec bench/main.exe -- --full

examples:
	dune exec examples/quickstart.exe
	dune exec examples/order_book.exe
	dune exec examples/ip_routes.exe
	dune exec examples/metrics_cut.exe

doc:
	dune build @doc

clean:
	dune clean
