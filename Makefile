.PHONY: all build test bench bench-full examples obs-smoke doc clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

bench-full:
	dune exec bench/main.exe -- --full

examples:
	dune exec examples/quickstart.exe
	dune exec examples/order_book.exe
	dune exec examples/ip_routes.exe
	dune exec examples/metrics_cut.exe

# End-to-end observability smoke: a short instrumented run through the
# CLI, then the exported stats JSON and Chrome trace validated by the
# test binary (the same alcotest cases `dune runtest` runs on freshly
# generated artefacts).
obs-smoke:
	dune build bin/verlib_run.exe test/test_obs.exe
	dune exec bin/verlib_run.exe -- -d 0.2 -r 1 --stats=json \
	  --trace /tmp/verlib_trace.json > /tmp/verlib_stats.json
	OBS_SMOKE_TRACE=/tmp/verlib_trace.json \
	  OBS_SMOKE_STATS=/tmp/verlib_stats.json \
	  dune exec test/test_obs.exe -- test smoke

doc:
	dune build @doc

clean:
	dune clean
