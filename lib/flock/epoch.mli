(** Epoch-based reclamation (EBR).

    In the C++ original, epochs delimit when retired memory may be freed.
    Under OCaml's GC, freeing is automatic, but the epoch structure is still
    the substrate the paper's algorithms observe: operations run inside
    {!with_epoch}, helpers run in the same epoch as the thread they help,
    and deferred actions (the OCaml analogue of deallocation: clearing
    caches, running finalizers, statistics) execute only once every domain
    has left the epoch in which they were deferred. *)

val with_epoch : (unit -> 'a) -> 'a
(** Announce the calling domain as active, run the operation, withdraw the
    announcement.  Nests (inner calls are no-ops apart from depth
    tracking).  Inside a lock-free critical section the announcement of the
    original owner is already in place, matching the paper's observation
    that helpers run in the same epoch as the original. *)

val in_epoch : unit -> bool

val current_epoch : unit -> int
(** The global epoch counter (monotone). *)

val defer : (unit -> unit) -> unit
(** Schedule a callback to run once every domain currently inside an epoch
    has left it.  Callbacks run on whichever domain notices the epoch has
    safely advanced (during a later [with_epoch]).  Must be called from
    inside {!with_epoch}. *)

val flush : unit -> unit
(** Run all callbacks that have become safe.  Called opportunistically by
    [with_epoch]; exposed for tests and for quiescent points. *)

val pending_count : unit -> int
(** Number of deferred callbacks not yet executed (racy, for tests). *)

val epoch_lag : unit -> int
(** How far the slowest active domain trails the global epoch; 0 when all
    domains are quiescent or caught up.  Also registered as the
    [epoch_lag] gauge ({!Telemetry.Gauge}), alongside [epoch_pending]
    (the deferred-callback queue depth): the reclamation-health pair the
    multiversion-GC literature watches. *)
