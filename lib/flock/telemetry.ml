(* Generic observability machinery shared by Flock and the layers above
   it (Verlib's [Obs] module builds its instrument catalogue on top).

   Two primitives live here because Flock is the bottom of the stack and
   its own hot paths (lock acquisition, epoch advance) want to record
   into them:

   - {!Hist}: per-domain sharded, power-of-two-bucketed histograms, the
     distribution-valued sibling of [Verlib.Stats]' flat counters.
   - a fixed-size per-domain event ring for typed trace events with
     caller-supplied integer codes, exported by higher layers (Chrome
     trace-event JSON in [Verlib.Obs]).

   Both follow the same discipline as [Stats]: writes are plain stores
   into a slot owned exclusively by the writing domain (slots come from
   {!Registry.my_id}), and aggregate reads are only exact when the
   writers are quiesced (e.g. after [Domain.join]).  Concurrent reads
   are safe but may miss in-flight updates. *)

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

module Hist = struct
  let nbuckets = 64

  (* Per-slot block: 64 buckets + count + sum + max, padded to a
     multiple of 8 words so no two domains share a cache line. *)
  let off_count = nbuckets

  let off_sum = nbuckets + 1

  let off_max = nbuckets + 2

  let block = nbuckets + 8

  type t = { hname : string; cells : int array }

  let registry : t list ref = ref []

  let registry_mutex = Mutex.create ()

  let make hname =
    let h = { hname; cells = Array.make (Registry.max_slots * block) 0 } in
    Mutex.lock registry_mutex;
    registry := h :: !registry;
    Mutex.unlock registry_mutex;
    h

  let name h = h.hname

  let all () =
    Mutex.lock registry_mutex;
    let l = !registry in
    Mutex.unlock registry_mutex;
    List.rev l

  (* Bucket [i] holds the values with [i] significant bits: bucket 0 is
     [v <= 0], bucket i (i >= 1) is [2^(i-1) <= v < 2^i].  OCaml ints
     have at most 63 significant bits, so 64 buckets always suffice. *)
  let bucket_of v =
    if v <= 0 then 0
    else begin
      let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
      go 0 v
    end

  (* Inclusive upper bound of bucket [i] (used for percentile reports). *)
  let bucket_bound i = if i <= 0 then 0 else if i >= 62 then max_int else (1 lsl i) - 1

  let observe h v =
    let base = Registry.my_id () * block in
    let c = h.cells in
    let b = base + bucket_of v in
    c.(b) <- c.(b) + 1;
    c.(base + off_count) <- c.(base + off_count) + 1;
    c.(base + off_sum) <- c.(base + off_sum) + v;
    if v > c.(base + off_max) then c.(base + off_max) <- v

  let reset h = Array.fill h.cells 0 (Array.length h.cells) 0

  type summary = {
    s_name : string;
    s_count : int;
    s_sum : int;
    s_max : int;  (** exact maximum observed value *)
    s_p50 : int;  (** bucket upper bounds: <= a factor of 2 above truth *)
    s_p90 : int;
    s_p99 : int;
  }

  let mean s = if s.s_count = 0 then 0. else Float.of_int s.s_sum /. Float.of_int s.s_count

  let percentile buckets count q =
    if count = 0 then 0
    else begin
      let target = Float.to_int (Float.round (q *. Float.of_int count)) in
      let target = max 1 (min count target) in
      let res = ref 0 in
      let cum = ref 0 in
      (try
         for i = 0 to nbuckets - 1 do
           cum := !cum + buckets.(i);
           if !cum >= target then begin
             res := bucket_bound i;
             raise Exit
           end
         done
       with Exit -> ());
      !res
    end

  (* Aggregate the per-domain shards.  Exact only when writers are
     quiesced; see the module comment. *)
  let summary h =
    let buckets = Array.make nbuckets 0 in
    let count = ref 0 and sum = ref 0 and mx = ref 0 in
    for slot = 0 to Registry.max_slots - 1 do
      let base = slot * block in
      for i = 0 to nbuckets - 1 do
        buckets.(i) <- buckets.(i) + h.cells.(base + i)
      done;
      count := !count + h.cells.(base + off_count);
      sum := !sum + h.cells.(base + off_sum);
      if h.cells.(base + off_max) > !mx then mx := h.cells.(base + off_max)
    done;
    {
      s_name = h.hname;
      s_count = !count;
      s_sum = !sum;
      s_max = !mx;
      s_p50 = percentile buckets !count 0.50;
      s_p90 = percentile buckets !count 0.90;
      s_p99 = percentile buckets !count 0.99;
    }

  (* Aggregated raw buckets, for tests that check exact bucket sums. *)
  let buckets h =
    let buckets = Array.make nbuckets 0 in
    for slot = 0 to Registry.max_slots - 1 do
      let base = slot * block in
      for i = 0 to nbuckets - 1 do
        buckets.(i) <- buckets.(i) + h.cells.(base + i)
      done
    done;
    buckets
end

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)

(* A gauge is a named instantaneous reading — a closure evaluated at
   report-capture time, not a stored value.  Reclamation health lives
   here: epoch lag, deferred-callback queue depth (registered by
   [Epoch]), and the verlib layer adds stamp lag.  Reading a gauge is
   as racy as its closure; captures happen at (or near) quiescence. *)

module Gauge = struct
  type t = { gname : string; gread : unit -> int }

  let registry : t list ref = ref []

  let registry_mutex = Mutex.create ()

  let make gname gread =
    let g = { gname; gread } in
    Mutex.lock registry_mutex;
    registry := g :: !registry;
    Mutex.unlock registry_mutex;
    g

  let name g = g.gname

  (* A gauge closure that raises would poison every capture; clamp to 0
     instead (gauges are diagnostics, not control flow). *)
  let read g = try g.gread () with _ -> 0

  let all () =
    Mutex.lock registry_mutex;
    let l = !registry in
    Mutex.unlock registry_mutex;
    List.rev l

  let capture () = List.map (fun g -> (g.gname, read g)) (all ())
end

(* ------------------------------------------------------------------ *)
(* Activity publication (the sampling profiler's write side)           *)

(* Each domain publishes what it is doing right now — the operation it
   serves and the lock site it holds / waits on — as interned integer
   ids in slot-private cells.  A sampler (Verlib.Obs.Profile) reads the
   cells at its own cadence; the published path is one atomic load (the
   gate) plus plain stores, so the cost on workers is near zero and
   exactly zero allocation.  Names are interned once (registration
   time, or first use) under a mutex; the hot path never touches it. *)

module Activity = struct
  let dim_op = 0

  let dim_lock_hold = 1

  let dim_lock_wait = 2

  let dim_stall = 3

  (* Padded so no two slots share a cache line. *)
  let stride = 8

  let cells = Array.make (Registry.max_slots * stride) 0

  let enabled = Atomic.make false

  let set_enabled b =
    Atomic.set enabled b;
    if not b then Array.fill cells 0 (Array.length cells) 0

  let on () = Atomic.get enabled

  (* Intern table: id 0 is reserved for "" (no activity).  Appends only;
     ids stay valid for the process lifetime so samplers can resolve
     them without holding the mutex. *)
  let names = ref [| "" |]

  let names_mutex = Mutex.create ()

  let intern s =
    Mutex.lock names_mutex;
    let arr = !names in
    let n = Array.length arr in
    let rec find i = if i >= n then -1 else if arr.(i) = s then i else find (i + 1) in
    let id =
      match find 0 with
      | -1 ->
          let arr' = Array.make (n + 1) s in
          Array.blit arr 0 arr' 0 n;
          names := arr';
          n
      | i -> i
    in
    Mutex.unlock names_mutex;
    id

  let name_of id =
    let arr = !names in
    if id >= 0 && id < Array.length arr then arr.(id) else ""

  let set dim id =
    if Atomic.get enabled then
      cells.((Registry.my_id () * stride) + dim) <- id

  let get slot dim = cells.((slot * stride) + dim)

  let clear_my_slot () =
    let base = Registry.my_id () * stride in
    for d = 0 to stride - 1 do
      cells.(base + d) <- 0
    done
end

(* ------------------------------------------------------------------ *)
(* GC telemetry                                                        *)

(* Per-slot published [Gc.quick_stat] absolutes (OCaml 5 GC counters
   are per-domain).  Workers call {!Gcstat.publish} amortized on their
   loops; readers sum the slots — exact at quiescence, advisory while
   running, like every other slot-sharded instrument here. *)

module Gcstat = struct
  let off_minor = 0  (** minor words allocated (absolute) *)

  let off_promoted = 1

  let off_major = 2  (** major words allocated directly *)

  let off_minor_col = 3

  let off_major_col = 4

  let stride = 8

  let cells = Array.make (Registry.max_slots * stride) 0

  let publish () =
    let s = Gc.quick_stat () in
    let base = Registry.my_id () * stride in
    cells.(base + off_minor) <- int_of_float s.Gc.minor_words;
    cells.(base + off_promoted) <- int_of_float s.Gc.promoted_words;
    cells.(base + off_major) <- int_of_float s.Gc.major_words;
    cells.(base + off_minor_col) <- s.Gc.minor_collections;
    cells.(base + off_major_col) <- s.Gc.major_collections

  let total off =
    let acc = ref 0 in
    for slot = 0 to Registry.max_slots - 1 do
      acc := !acc + cells.((slot * stride) + off)
    done;
    !acc

  let minor_words () = total off_minor

  let promoted_words () = total off_promoted

  let major_words () = total off_major

  let minor_collections () = total off_minor_col

  let major_collections () = total off_major_col

  (* Words a mutator allocated = minor + direct-major (promotions move
     words already counted as minor); 8 bytes per word on 64-bit. *)
  let alloc_bytes () = 8 * (minor_words () + major_words ())

  let heap_words () = (Gc.quick_stat ()).Gc.heap_words

  let reset () = Array.fill cells 0 (Array.length cells) 0
end

(* ------------------------------------------------------------------ *)
(* Event tracing                                                       *)

(* Event codes are small ints; the catalogue (names, Chrome phases)
   lives in the exporting layer.  Flock reserves 32.. for its own
   events; Verlib uses 1..31. *)

let ev_lock_acquire = 32

let ev_lock_help = 33

let ev_epoch_advance = 34

(* Power of two so the ring index is a mask. *)
let ring_capacity = 8192

type ring = {
  r_ts : int array;
  r_code : int array;
  r_arg : int array;
  mutable r_n : int;  (** total events ever emitted (wraps the ring) *)
}

(* One ring per registry slot, allocated lazily by the owning domain the
   first time it emits — so tracing costs no memory until enabled. *)
let rings : ring option array = Array.make Registry.max_slots None

let tracing = Atomic.make false

let set_tracing b = Atomic.set tracing b

let tracing_on () = Atomic.get tracing

(* Timestamp source for events.  Defaults to a zero clock; [Verlib.Obs]
   installs [Hwclock.now] at module initialisation, which happens before
   any instrumented Verlib code runs (it depends on [Obs]). *)
let clock : (unit -> int) ref = ref (fun () -> 0)

let set_clock f = clock := f

let now () = !clock ()

let my_ring () =
  let i = Registry.my_id () in
  match rings.(i) with
  | Some r -> r
  | None ->
      let r =
        {
          r_ts = Array.make ring_capacity 0;
          r_code = Array.make ring_capacity 0;
          r_arg = Array.make ring_capacity 0;
          r_n = 0;
        }
      in
      rings.(i) <- Some r;
      r

(* The single branch-predictable gate of the whole tracing subsystem:
   when disabled this is one atomic load and a not-taken branch. *)
let emit code arg =
  if Atomic.get tracing then begin
    let r = my_ring () in
    let i = r.r_n land (ring_capacity - 1) in
    r.r_ts.(i) <- !clock ();
    r.r_code.(i) <- code;
    r.r_arg.(i) <- arg;
    r.r_n <- r.r_n + 1
  end

(* Events of slot [i] in emission order, oldest first.  When the ring
   wrapped, only the newest [ring_capacity] events survive. *)
let events_of_slot i =
  match rings.(i) with
  | None -> []
  | Some r ->
      let total = r.r_n in
      let len = min total ring_capacity in
      let start = total - len in
      List.init len (fun k ->
          let j = (start + k) land (ring_capacity - 1) in
          (r.r_ts.(j), r.r_code.(j), r.r_arg.(j)))

let dropped_of_slot i =
  match rings.(i) with None -> 0 | Some r -> max 0 (r.r_n - ring_capacity)

let reset_traces () =
  Array.iter (function Some r -> r.r_n <- 0 | None -> ()) rings

(* Reset histograms, trace rings and GC shards.  Same quiescence
   contract as [Stats.reset_all]. *)
let reset_all () =
  List.iter Hist.reset (Hist.all ());
  Gcstat.reset ();
  reset_traces ()
