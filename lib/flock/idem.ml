(* Write-once logs.  A log is a chain of fixed-size chunks of CAS-once
   slots.  The [empty] sentinel is a private heap block, so physical
   equality can never confuse it with a logged value. *)

let empty : Obj.t = Obj.repr (ref 0)

let chunk_size = 32

type chunk = { slots : Obj.t Atomic.t array; next : chunk option Atomic.t }

type log = chunk

let make_chunk () =
  { slots = Array.init chunk_size (fun _ -> Atomic.make empty);
    next = Atomic.make None }

let create_log () = make_chunk ()

(* A frame is one helper's cursor into a shared log. *)
type frame = { mutable chunk : chunk; mutable pos : int }

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let in_frame () = !(stack ()) <> []

let frame_depth () = List.length !(stack ())

let enter log =
  let s = stack () in
  s := { chunk = log; pos = 0 } :: !s

let exit () =
  let s = stack () in
  match !s with
  | [] -> invalid_arg "Idem.exit: no active frame"
  | _ :: rest -> s := rest

(* Advance past a full chunk.  The successor chunk is itself agreed on with
   a CAS so all helpers traverse the same chain. *)
let next_chunk c =
  match Atomic.get c.next with
  | Some n -> n
  | None ->
      let candidate = make_chunk () in
      if Atomic.compare_and_set c.next None (Some candidate) then candidate
      else
        (match Atomic.get c.next with
         | Some n -> n
         | None -> assert false)

let next_slot fr =
  if fr.pos >= chunk_size then begin
    fr.chunk <- next_chunk fr.chunk;
    fr.pos <- 0
  end;
  let slot = fr.chunk.slots.(fr.pos) in
  fr.pos <- fr.pos + 1;
  slot

(* Fault-injection site: between computing a candidate value and the
   CAS-once that publishes it — pausing here widens the window in which
   a racing helper computes its own candidate and the two must agree
   through the slot (Theorem 6.2's idempotence argument). *)
let fp_cas = Fault.Point.make "idem.cas"

let once (type a) (f : unit -> a) : a =
  match !(stack ()) with
  | [] -> f ()
  | fr :: _ ->
      let slot = next_slot fr in
      let v = Atomic.get slot in
      if v != empty then Obj.obj v
      else begin
        let x = f () in
        Fault.hit fp_cas;
        if Atomic.compare_and_set slot empty (Obj.repr x) then x
        else Obj.obj (Atomic.get slot)
      end

(* A private heap block distinct from [empty]: the token a claim winner
   installs.  Its value is never read back, only compared away. *)
let claimed : Obj.t = Obj.repr (ref 1)

let claim () =
  match !(stack ()) with
  | [] -> true
  | fr :: _ ->
      let slot = next_slot fr in
      Atomic.get slot == empty && Atomic.compare_and_set slot empty claimed
