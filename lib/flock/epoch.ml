let quiescent = max_int

(* announcement.(i) = epoch domain [i] entered, or [quiescent]. *)
let announcement : int Atomic.t array =
  Array.init Registry.max_slots (fun _ -> Atomic.make quiescent)

let global = Atomic.make 0

let current_epoch () = Atomic.get global

(* Deferred callbacks, tagged with the epoch in which they were retired.
   A single mutex-protected queue keeps this simple; deferral is rare
   compared to epoch entry, which stays lock-free. *)
let pending : (int * (unit -> unit)) list ref = ref []

let pending_mutex = Mutex.create ()

let pending_count () =
  Mutex.lock pending_mutex;
  let n = List.length !pending in
  Mutex.unlock pending_mutex;
  n

(* Reclamation-health gauges (captured into [Verlib.Obs] reports):

   - [epoch_pending]: depth of the deferred-callback queue — the EBR
     analogue of the deferred-free list whose growth the multiversion-GC
     line of work (Ben-David et al., Wei & Fatourou) identifies as the
     space failure mode;
   - [epoch_lag]: how far the slowest active domain trails the global
     epoch (0 when every domain is quiescent or caught up).  A large lag
     means deferred callbacks — and, above us, version chains — cannot
     drain. *)
let epoch_lag () =
  let m = ref quiescent in
  Registry.iter_ids (fun i ->
      let a = Atomic.get announcement.(i) in
      if a < !m then m := a);
  if !m = quiescent then 0 else max 0 (Atomic.get global - !m)

let (_ : Telemetry.Gauge.t) = Telemetry.Gauge.make "epoch_pending" pending_count

let (_ : Telemetry.Gauge.t) = Telemetry.Gauge.make "epoch_lag" epoch_lag

let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let in_epoch () = !(Domain.DLS.get depth_key) > 0

let min_announced () =
  let m = ref quiescent in
  Registry.iter_ids (fun i ->
      let a = Atomic.get announcement.(i) in
      if a < !m then m := a);
  !m

(* A callback deferred in epoch [e] is safe once no domain is still inside
   an epoch <= e. *)
let flush () =
  let safe_before = min_announced () in
  let to_run = ref [] in
  Mutex.lock pending_mutex;
  let keep =
    List.filter
      (fun (e, cb) ->
        if e < safe_before then begin
          to_run := cb :: !to_run;
          false
        end
        else true)
      !pending
  in
  pending := keep;
  Mutex.unlock pending_mutex;
  List.iter (fun cb -> cb ()) !to_run

let defer cb =
  if not (in_epoch ()) then invalid_arg "Epoch.defer: not inside with_epoch";
  let e = Atomic.get global in
  Mutex.lock pending_mutex;
  pending := (e, cb) :: !pending;
  Mutex.unlock pending_mutex

(* Fault-injection sites: [epoch.enter] fires with the domain announced
   in the current epoch — a pause there is a stalled reclaimer (the
   global epoch cannot pass it; [epoch_lag] climbs and deferred
   callbacks pile up until it releases).  [epoch.advance] fires between
   reading the global epoch and the advance CAS. *)
let fp_enter = Fault.Point.make "epoch.enter"

let fp_advance = Fault.Point.make "epoch.advance"

(* Advance the global epoch if every active domain has caught up with it;
   called on epoch entry so that the clock moves as long as operations keep
   arriving (the standard lazy EBR advance). *)
let try_advance () =
  let g = Atomic.get global in
  Fault.hit fp_advance;
  if min_announced () >= g && Atomic.compare_and_set global g (g + 1) then
    Telemetry.emit Telemetry.ev_epoch_advance (g + 1)

let with_epoch f =
  let depth = Domain.DLS.get depth_key in
  if !depth > 0 then begin
    incr depth;
    Fun.protect ~finally:(fun () -> decr depth) f
  end
  else begin
    let slot = announcement.(Registry.my_id ()) in
    try_advance ();
    Atomic.set slot (Atomic.get global);
    (* Announced and pinned: a pause here stalls reclamation for
       everyone (see fp_enter above).  A [fail] rule must not leak the
       announcement — unpin before propagating. *)
    (try Fault.hit fp_enter
     with e ->
       Atomic.set slot quiescent;
       raise e);
    incr depth;
    let finally () =
      decr depth;
      Atomic.set slot quiescent;
      flush ()
    in
    Fun.protect ~finally f
  end
