let quiescent = max_int

(* announcement.(i) = epoch domain [i] entered, or [quiescent]. *)
let announcement : int Atomic.t array =
  Array.init Registry.max_slots (fun _ -> Atomic.make quiescent)

let global = Atomic.make 0

let current_epoch () = Atomic.get global

(* Deferred callbacks, tagged with the epoch in which they were retired.

   One lock-free bucket (a Treiber-style list head) per registry slot:
   a domain pushes onto its OWN bucket with an uncontended CAS and
   flushes it locally on epoch exit, so deferral never crosses a cache
   line another domain is writing and never takes a mutex.  The only
   cross-domain traffic is [flush_all] (tests, quiescent points), which
   steals whole buckets with [Atomic.exchange] — an entry lives in
   exactly one list at a time, so a stolen callback cannot run twice.

   [counts.(i)] tracks bucket [i]'s depth so the [epoch_pending] gauge
   is a sum of [max_slots] atomic reads — O(slots), independent of how
   many callbacks are pending — instead of the previous [List.length]
   under a global mutex (O(pending) inside the hot lock). *)
type entry = { e_epoch : int; e_cb : unit -> unit }

let buckets : entry list Atomic.t array =
  Array.init Registry.max_slots (fun _ -> Atomic.make [])

let counts : int Atomic.t array =
  Array.init Registry.max_slots (fun _ -> Atomic.make 0)

let pending_count () =
  let n = ref 0 in
  for i = 0 to Registry.max_slots - 1 do
    n := !n + Atomic.get counts.(i)
  done;
  !n

(* Reclamation-health gauges (captured into [Verlib.Obs] reports):

   - [epoch_pending]: total depth of the deferred-callback buckets — the
     EBR analogue of the deferred-free list whose growth the
     multiversion-GC line of work (Ben-David et al., Wei & Fatourou)
     identifies as the space failure mode.  Same semantics as before the
     per-domain split: the sum across all buckets.
   - [epoch_lag]: how far the slowest active domain trails the global
     epoch (0 when every domain is quiescent or caught up).  A large lag
     means deferred callbacks — and, above us, version chains — cannot
     drain. *)
let epoch_lag () =
  let m = ref quiescent in
  Registry.iter_ids (fun i ->
      let a = Atomic.get announcement.(i) in
      if a < !m then m := a);
  if !m = quiescent then 0 else max 0 (Atomic.get global - !m)

let (_ : Telemetry.Gauge.t) = Telemetry.Gauge.make "epoch_pending" pending_count

let (_ : Telemetry.Gauge.t) = Telemetry.Gauge.make "epoch_lag" epoch_lag

let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let in_epoch () = !(Domain.DLS.get depth_key) > 0

let min_announced () =
  let m = ref quiescent in
  Registry.iter_ids (fun i ->
      let a = Atomic.get announcement.(i) in
      if a < !m then m := a);
  !m

(* Push a batch back onto a bucket (entries that are not yet safe).
   CAS loop because the owner may be pushing concurrently with a
   stealing [flush_all]. *)
let rec push_back slot batch =
  if batch <> [] then begin
    let cur = Atomic.get buckets.(slot) in
    let merged = List.rev_append batch cur in
    if Atomic.compare_and_set buckets.(slot) cur merged then
      ignore (Atomic.fetch_and_add counts.(slot) (List.length batch))
    else push_back slot batch
  end

(* Drain one bucket: steal the whole list, run the entries deferred in
   epochs every domain has since left, re-push the rest.  A callback
   deferred in epoch [e] is safe once no domain is still inside an
   epoch <= e.  Counts are decremented for the stolen batch up front and
   re-added by [push_back], so [pending_count] can transiently dip
   during a flush but never over-reports. *)
let flush_bucket slot =
  match Atomic.exchange buckets.(slot) [] with
  | [] -> ()
  | stolen ->
      ignore (Atomic.fetch_and_add counts.(slot) (-(List.length stolen)));
      let safe_before = min_announced () in
      let run, keep =
        List.partition (fun e -> e.e_epoch < safe_before) stolen
      in
      push_back slot keep;
      List.iter (fun e -> e.e_cb ()) run

(* Local flush: the common path, run on epoch exit — only the calling
   domain's bucket, so exits never scan other domains' deferrals. *)
let flush_local () = flush_bucket (Registry.my_id ())

(* Global flush: every bucket, including those of exited domains.  Used
   by tests and quiescent points (the [flush] of the public API). *)
let flush () =
  for i = 0 to Registry.max_slots - 1 do
    flush_bucket i
  done

let defer cb =
  if not (in_epoch ()) then invalid_arg "Epoch.defer: not inside with_epoch";
  let e = Atomic.get global in
  let slot = Registry.my_id () in
  push_back slot [ { e_epoch = e; e_cb = cb } ]

(* Fault-injection sites: [epoch.enter] fires with the domain announced
   in the current epoch — a pause there is a stalled reclaimer (the
   global epoch cannot pass it; [epoch_lag] climbs and deferred
   callbacks pile up until it releases).  [epoch.advance] fires between
   reading the global epoch and the advance CAS. *)
let fp_enter = Fault.Point.make "epoch.enter"

let fp_advance = Fault.Point.make "epoch.advance"

(* Advance the global epoch if every active domain has caught up with it;
   called on epoch entry so that the clock moves as long as operations keep
   arriving (the standard lazy EBR advance). *)
let try_advance () =
  let g = Atomic.get global in
  Fault.hit fp_advance;
  if min_announced () >= g && Atomic.compare_and_set global g (g + 1) then
    Telemetry.emit Telemetry.ev_epoch_advance (g + 1)

let with_epoch f =
  let depth = Domain.DLS.get depth_key in
  if !depth > 0 then begin
    incr depth;
    Fun.protect ~finally:(fun () -> decr depth) f
  end
  else begin
    let slot = announcement.(Registry.my_id ()) in
    try_advance ();
    Atomic.set slot (Atomic.get global);
    (* Announced and pinned: a pause here stalls reclamation for
       everyone (see fp_enter above).  A [fail] rule must not leak the
       announcement — unpin before propagating. *)
    (try Fault.hit fp_enter
     with e ->
       Atomic.set slot quiescent;
       raise e);
    incr depth;
    let finally () =
      decr depth;
      Atomic.set slot quiescent;
      flush_local ()
    in
    Fun.protect ~finally f
  end
