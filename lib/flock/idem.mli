(** Idempotence support for lock-free locks.

    A critical section run under a lock-free lock may be executed
    concurrently by its owner and by any number of helpers, yet must appear
    to run exactly once.  Following Ben-David, Blelloch and Wei (FLOCK,
    PPoPP 2022), each critical-section descriptor carries a {e log}: a
    sequence of write-once slots.  Helpers replay the thunk deterministically
    and agree on the outcome of every shared-memory step by racing to fill
    the next slot with CAS; the first value installed wins and every replica
    uses it.

    Determinism contract: inside a critical section, every read of shared
    mutable state must go through {!once} (directly or via {!Fatomic}), so
    that all helpers follow the same control path and consume log slots in
    the same order.  Reads the algorithm has proven benign (e.g. Verlib's
    timestamp reads, Theorem 6.2 of the VERLIB paper) are exempt.

    Sharing contract: logged operations may only target {e shared} state —
    locations that are identical for every helper of the section.  A fresh
    object allocated inside the section is replica-private until it is
    published through a logged write, so it must be {e fully initialised at
    construction} (e.g. [Vptr.make], [Fatomic.make], plain record fields),
    never populated with logged stores: a helper replaying such a store
    would pair the log's agreed old/new values, which belong to another
    replica's object, with its own object, silently dropping the write. *)

type log
(** A write-once log shared by all helpers of one critical section. *)

val create_log : unit -> log

val in_frame : unit -> bool
(** Whether the calling domain is currently replaying a critical section. *)

val enter : log -> unit
(** Begin (re-)executing a critical section whose agreed results live in
    [log].  Frames nest: helping an inner lock pushes a new frame. *)

val exit : unit -> unit
(** Leave the innermost frame.  Must pair with {!enter}. *)

val once : (unit -> 'a) -> 'a
(** [once f] runs [f] and returns the value agreed on by all helpers: the
    first helper to complete [f] installs its result in the next log slot;
    everyone returns the installed value.  Outside a frame this is just
    [f ()].  [f] itself may run several times (once per helper), so it must
    be safe to repeat; only its {e result} is deduplicated.  Allocation is
    the canonical use: losers' objects are dropped and reclaimed by the
    GC. *)

val claim : unit -> bool
(** A claim point: among all helpers replaying this position of a
    critical section, exactly one receives [true]; the rest (and every
    later replay) receive [false].  Outside a frame it is always [true].
    The winner performs the section's once-per-critical-section side
    effects — statistics increments, retire notices, trace events — so
    helped executions do not inflate them.  Like {!once} it consumes one
    log slot, so it must sit on the same control path for every
    helper. *)

val frame_depth : unit -> int
(** Nesting depth of the calling domain (0 when outside any frame). *)
