type mode = Blocking | Lock_free

let mode_ref = Atomic.make Lock_free

let set_default_mode m = Atomic.set mode_ref m

let default_mode () = Atomic.get mode_ref

(* Outcome of running a critical-section thunk.  Stored once per
   descriptor; every helper agrees on it. *)
type outcome = Value of Obj.t | Raised of exn

(* Acquire status of a descriptor.  Monotone: [Pending] moves exactly once
   to [Taken] or [Aborted].  The constructors are immediates, so CAS on the
   status field uses reliable physical equality. *)
type status = Pending | Taken | Aborted

type descr = {
  thunk : unit -> Obj.t;
  log : Idem.log;
  status : status Atomic.t;
  result : outcome option Atomic.t;
  mutable owner_slot : int;
      (** registry slot of the installer; -1 until known.  A plain
          store by the installer before its install CAS; waiters read
          it to attribute convoy edges (racy, sampled, advisory). *)
}

(* The lock word holds a descriptor; a distinguished sentinel descriptor
   stands for "unlocked" so that CAS compares descriptor identities
   directly (wrapping in an option or variant would allocate a fresh block
   per transition and break physical-equality CAS). *)
let unlocked : descr =
  { thunk = (fun () -> assert false);
    log = Idem.create_log ();
    status = Atomic.make Aborted;
    result = Atomic.make None;
    owner_slot = -1 }

(* ------------------------------------------------------------------ *)
(* Per-site contention accounting (the lock-contention profiler).

   A site is a static label shared by every lock created at one call
   site ("btree.ilock", "dlist.lock", ...).  Counters are slot-sharded
   plain stores like every other Flock instrument; the waits-on edge
   map is the one exception — sampled racy increments keyed by the
   {e holder's} slot, which is exactly the convoy signature (one holder
   slot accumulating sampled waits from many waiters at one site). *)

module Site = struct
  let off_acquires = 0

  let off_contended = 1

  let off_wait_cycles = 2

  let off_helps = 3

  let stride = 8

  type site = {
    st_name : string;
    st_activity : int;  (** interned name for activity publication *)
    st_cells : int array;  (** slot-sharded counters, [stride] per slot *)
    st_edges : int array;
        (** sampled waits observed per {e holder} slot (racy) *)
  }

  let registry : site list ref = ref []

  let registry_mutex = Mutex.create ()

  let make st_name =
    Mutex.lock registry_mutex;
    let s =
      match List.find_opt (fun s -> s.st_name = st_name) !registry with
      | Some s -> s
      | None ->
          let s =
            {
              st_name;
              st_activity = Telemetry.Activity.intern ("lock:" ^ st_name);
              st_cells = Array.make (Registry.max_slots * stride) 0;
              st_edges = Array.make Registry.max_slots 0;
            }
          in
          registry := s :: !registry;
          s
    in
    Mutex.unlock registry_mutex;
    s

  let all () =
    Mutex.lock registry_mutex;
    let l = !registry in
    Mutex.unlock registry_mutex;
    List.rev l

  let bump s off =
    let base = (Registry.my_id () * stride) + off in
    s.st_cells.(base) <- s.st_cells.(base) + 1

  let add s off v =
    let base = (Registry.my_id () * stride) + off in
    s.st_cells.(base) <- s.st_cells.(base) + v

  (* 1-in-8 sampling of waits-on edges, per-slot tick counters so the
     wait loop performs no RNG. *)
  let edge_ticks = Array.make Registry.max_slots 0

  let note_edge s ~holder =
    if holder >= 0 && holder < Registry.max_slots then begin
      let me = Registry.my_id () in
      let v = edge_ticks.(me) + 1 in
      edge_ticks.(me) <- v;
      if v land 7 = 0 then s.st_edges.(holder) <- s.st_edges.(holder) + 1
    end

  let total s off =
    let acc = ref 0 in
    for slot = 0 to Registry.max_slots - 1 do
      acc := !acc + s.st_cells.((slot * stride) + off)
    done;
    !acc

  type summary = {
    sm_site : string;
    sm_acquires : int;
    sm_contended : int;  (** failed try_lock attempts *)
    sm_wait_cycles : int;  (** clock ticks spent in acquisition retry loops *)
    sm_helps : int;
    sm_edges : (int * int) list;
        (** (holder slot, sampled waits), busiest first *)
  }

  let summary s =
    let edges = ref [] in
    Array.iteri
      (fun slot n -> if n > 0 then edges := (slot, n) :: !edges)
      s.st_edges;
    {
      sm_site = s.st_name;
      sm_acquires = total s off_acquires;
      sm_contended = total s off_contended;
      sm_wait_cycles = total s off_wait_cycles;
      sm_helps = total s off_helps;
      sm_edges =
        List.sort (fun (_, a) (_, b) -> compare b a) !edges;
    }

  let summaries () = List.map summary (all ())

  let reset () =
    List.iter
      (fun s ->
        Array.fill s.st_cells 0 (Array.length s.st_cells) 0;
        Array.fill s.st_edges 0 (Array.length s.st_edges) 0)
      (all ())
end

type site_summary = Site.summary = {
  sm_site : string;
  sm_acquires : int;
  sm_contended : int;
  sm_wait_cycles : int;
  sm_helps : int;
  sm_edges : (int * int) list;
}

let site_summaries = Site.summaries

let reset_sites = Site.reset

type t = { state : descr Atomic.t; mode : mode; site : Site.site option }

let create ?mode ?site () =
  let mode = match mode with Some m -> m | None -> default_mode () in
  { state = Atomic.make unlocked; mode; site = Option.map Site.make site }

let mode_of t = t.mode

(* Distribution of [with_lock] acquisition retries (failed [try_lock]
   attempts before success).  Uncontended acquisitions (0 retries) are
   not recorded so the uncontended fast path stays store-free; derive
   their count from the operation count if needed. *)
let retries_hist = Telemetry.Hist.make "lock_retries"

(* Fault-injection sites (docs/RESILIENCE.md): the paper's helping
   windows.  [lock.acquire] fires with the lock {e held} by the hitting
   domain — its descriptor installed and taken but its critical section
   not yet run — so a [stall] there is the Theorem 6.1 crash-stop
   schedule (peers finish via helping in lock-free mode; in blocking
   mode contenders convoy, which is the point of that control).
   [lock.help] fires on entry to a help, [lock.release] just before the
   release CAS. *)
let fp_acquire = Fault.Point.make "lock.acquire"

let fp_help = Fault.Point.make "lock.help"

let fp_release = Fault.Point.make "lock.release"

let helps = Atomic.make 0

let retires = Atomic.make 0

let help_count () = Atomic.get helps

let retire_count () = Atomic.get retires

let new_obj f = Idem.once f

let retire _x = Atomic.incr retires

let holding_lock () = Idem.in_frame ()

(* Run [d]'s thunk (as owner or helper), record the agreed outcome and
   release the lock.  Safe to call repeatedly and concurrently: the thunk
   is idempotent by the FLOCK contract, the outcome is installed with a
   CAS-once, and the release only succeeds from this exact descriptor.

   A descriptor observed inside the lock with status [Pending] belongs to
   an owner that installed it but was preempted before voting; completing
   the acquire on its behalf (CAS to [Taken]) is safe because abort votes
   only arise from acquire participants that observed the install failing,
   which cannot have happened while [d] still occupies the lock. *)
let run_and_release t d =
  (match Atomic.get d.status with
   | Pending -> ignore (Atomic.compare_and_set d.status Pending Taken)
   | Taken | Aborted -> ());
  (match Atomic.get d.status with
   | Taken ->
       (match Atomic.get d.result with
        | Some _ -> ()
        | None ->
            Idem.enter d.log;
            let out = (try Value (d.thunk ()) with e -> Raised e) in
            Idem.exit ();
            ignore (Atomic.compare_and_set d.result None (Some out)))
   | Aborted | Pending ->
       (* Aborted descriptors can transiently occupy the lock when a slow
          helper's install CAS lands after the abort decision; they are
          simply removed below without running anything. *)
       ());
  Fault.hit fp_release;
  ignore (Atomic.compare_and_set t.state d unlocked)

let help t d =
  Atomic.incr helps;
  (match t.site with Some s -> Site.bump s Site.off_helps | None -> ());
  Telemetry.emit Telemetry.ev_lock_help 0;
  Fault.hit fp_help;
  run_and_release t d

(* Publish (or clear) the calling domain's "holding <site>" activity
   frame.  Used to bracket the [lock.acquire] fault point: a stall there
   parks the owner with the lock held but its critical section not yet
   run, which is exactly when [instrumented] below has not published the
   hold frame yet — without this the sampler shows a convoyed owner with
   no site attribution at all. *)
let publish_hold t v =
  match t.site with
  | Some s when Telemetry.Activity.on () ->
      Telemetry.Activity.set Telemetry.Activity.dim_lock_hold
        (if v then s.Site.st_activity else 0)
  | Some _ | None -> ()

(* Lock-free acquisition.  The decision (taken/aborted) must be identical
   for the original caller and every helper replaying the enclosing
   critical section, so (1) the candidate descriptor is allocated through
   the log, (2) the observed lock state is read through the log, and (3)
   the final verdict is the descriptor's monotone status field rather than
   the outcome of any individual machine CAS. *)
let try_lock_free t (f : unit -> Obj.t) : Obj.t option =
  let d =
    Idem.once (fun () ->
        { thunk = f;
          log = Idem.create_log ();
          status = Atomic.make Pending;
          result = Atomic.make None;
          owner_slot = Registry.my_id () })
  in
  let observed = Idem.once (fun () -> Atomic.get t.state) in
  if observed != unlocked then begin
    help t observed;
    None
  end
  else begin
    let installed = Atomic.compare_and_set t.state unlocked d in
    if installed then begin
      ignore (Atomic.compare_and_set d.status Pending Taken);
      (* The acquirer owns the lock but has not run its critical section:
         a stall here is the crash-stop schedule of Theorem 6.1.  A
         [fail] rule must not leak the held lock — complete the acquire
         (thunk + release) before propagating. *)
      publish_hold t true;
      (try Fault.hit fp_acquire
       with e ->
         publish_hold t false;
         run_and_release t d;
         raise e);
      publish_hold t false
    end
    else if Atomic.get t.state == d then
      (* Another helper of this same acquire installed d. *)
      ignore (Atomic.compare_and_set d.status Pending Taken)
    else
      (* Contended: vote to abort.  If a racing helper already took it,
         the CAS fails and the agreed verdict below is Taken. *)
      ignore (Atomic.compare_and_set d.status Pending Aborted);
    match Atomic.get d.status with
    | Taken -> begin
        run_and_release t d;
        match Atomic.get d.result with
        | Some (Value v) -> Some v
        | Some (Raised e) -> raise e
        | None -> assert false
      end
    | Aborted -> begin
        (* Our install may still land later (a slow helper); anyone seeing
           an aborted descriptor in the lock removes it (run_and_release).
           Meanwhile help whoever actually holds the lock. *)
        let cur = Atomic.get t.state in
        if cur != unlocked then help t cur;
        None
      end
    | Pending -> assert false
  end

(* Blocking mode: plain test-and-set with a fresh descriptor as the
   ownership token; no helping, so a preempted owner stalls contenders —
   the behaviour the oversubscription experiments measure. *)
let try_lock_blocking t f =
  let token =
    { thunk = (fun () -> assert false);
      log = unlocked.log;
      status = Atomic.make Taken;
      result = Atomic.make None;
      owner_slot = Registry.my_id () }
  in
  if Atomic.compare_and_set t.state unlocked token then begin
    (* Same crash-stop site as the lock-free path, but with no helping:
       a stall here convoys every contender until disarm — the blocking
       control the oversubscription experiments measure.  Inside the
       try so a [fail] rule releases the token like any raising critical
       section. *)
    publish_hold t true;
    let out =
      try
        Fault.hit fp_acquire;
        Ok (f ())
      with e -> Error e
    in
    Atomic.set t.state unlocked;
    publish_hold t false;
    match out with Ok v -> Some v | Error e -> raise e
  end
  else None

(* When the profiler gate is open and the lock carries a site, wrap the
   critical section so whichever domain actually runs it (owner or
   helper) publishes "holding <site>" for the sampler's benefit.  The
   wrapper (one closure) is only built on profiled runs. *)
let instrumented t (f : unit -> 'a) : unit -> 'a =
  match t.site with
  | Some s when Telemetry.Activity.on () ->
      fun () ->
        Telemetry.Activity.set Telemetry.Activity.dim_lock_hold
          s.Site.st_activity;
        Fun.protect
          ~finally:(fun () ->
            Telemetry.Activity.set Telemetry.Activity.dim_lock_hold 0)
          f
  | Some _ | None -> f

let try_lock (type a) t (f : unit -> a) : a option =
  let f = instrumented t f in
  let r =
    match t.mode with
    | Blocking -> try_lock_blocking t f
    | Lock_free -> begin
        match try_lock_free t (fun () -> Obj.repr (f ())) with
        | None -> None
        | Some v -> Some (Obj.obj v)
      end
  in
  (match t.site with
   | None -> ()
   | Some s -> (
       match r with
       | Some _ -> Site.bump s Site.off_acquires
       | None ->
           Site.bump s Site.off_contended;
           Site.note_edge s ~holder:(Atomic.get t.state).owner_slot));
  r

let try_lock_bool t f =
  match try_lock t f with None -> false | Some b -> b

let with_lock t f =
  let b = Backoff.create () in
  let clear_wait () =
    if Telemetry.Activity.on () then
      Telemetry.Activity.set Telemetry.Activity.dim_lock_wait 0
  in
  let rec loop t0 retries =
    match try_lock t f with
    | Some v ->
        if retries > 0 then begin
          Telemetry.Hist.observe retries_hist retries;
          (match t.site with
           | Some s ->
               Site.add s Site.off_wait_cycles
                 (max 0 (Telemetry.now () - t0))
           | None -> ());
          clear_wait ()
        end;
        Telemetry.emit Telemetry.ev_lock_acquire retries;
        v
    | None ->
        let t0 =
          if retries = 0 then begin
            (match t.site with
             | Some s when Telemetry.Activity.on () ->
                 Telemetry.Activity.set Telemetry.Activity.dim_lock_wait
                   s.Site.st_activity
             | Some _ | None -> ());
            Telemetry.now ()
          end
          else t0
        in
        Backoff.once b;
        loop t0 (retries + 1)
  in
  try loop 0 0
  with e ->
    clear_wait ();
    raise e
