type mode = Blocking | Lock_free

let mode_ref = Atomic.make Lock_free

let set_default_mode m = Atomic.set mode_ref m

let default_mode () = Atomic.get mode_ref

(* Outcome of running a critical-section thunk.  Stored once per
   descriptor; every helper agrees on it. *)
type outcome = Value of Obj.t | Raised of exn

(* Acquire status of a descriptor.  Monotone: [Pending] moves exactly once
   to [Taken] or [Aborted].  The constructors are immediates, so CAS on the
   status field uses reliable physical equality. *)
type status = Pending | Taken | Aborted

type descr = {
  thunk : unit -> Obj.t;
  log : Idem.log;
  status : status Atomic.t;
  result : outcome option Atomic.t;
}

(* The lock word holds a descriptor; a distinguished sentinel descriptor
   stands for "unlocked" so that CAS compares descriptor identities
   directly (wrapping in an option or variant would allocate a fresh block
   per transition and break physical-equality CAS). *)
let unlocked : descr =
  { thunk = (fun () -> assert false);
    log = Idem.create_log ();
    status = Atomic.make Aborted;
    result = Atomic.make None }

type t = { state : descr Atomic.t; mode : mode }

let create ?mode () =
  let mode = match mode with Some m -> m | None -> default_mode () in
  { state = Atomic.make unlocked; mode }

let mode_of t = t.mode

(* Distribution of [with_lock] acquisition retries (failed [try_lock]
   attempts before success).  Uncontended acquisitions (0 retries) are
   not recorded so the uncontended fast path stays store-free; derive
   their count from the operation count if needed. *)
let retries_hist = Telemetry.Hist.make "lock_retries"

(* Fault-injection sites (docs/RESILIENCE.md): the paper's helping
   windows.  [lock.acquire] fires with the lock {e held} by the hitting
   domain — its descriptor installed and taken but its critical section
   not yet run — so a [stall] there is the Theorem 6.1 crash-stop
   schedule (peers finish via helping in lock-free mode; in blocking
   mode contenders convoy, which is the point of that control).
   [lock.help] fires on entry to a help, [lock.release] just before the
   release CAS. *)
let fp_acquire = Fault.Point.make "lock.acquire"

let fp_help = Fault.Point.make "lock.help"

let fp_release = Fault.Point.make "lock.release"

let helps = Atomic.make 0

let retires = Atomic.make 0

let help_count () = Atomic.get helps

let retire_count () = Atomic.get retires

let new_obj f = Idem.once f

let retire _x = Atomic.incr retires

let holding_lock () = Idem.in_frame ()

(* Run [d]'s thunk (as owner or helper), record the agreed outcome and
   release the lock.  Safe to call repeatedly and concurrently: the thunk
   is idempotent by the FLOCK contract, the outcome is installed with a
   CAS-once, and the release only succeeds from this exact descriptor.

   A descriptor observed inside the lock with status [Pending] belongs to
   an owner that installed it but was preempted before voting; completing
   the acquire on its behalf (CAS to [Taken]) is safe because abort votes
   only arise from acquire participants that observed the install failing,
   which cannot have happened while [d] still occupies the lock. *)
let run_and_release t d =
  (match Atomic.get d.status with
   | Pending -> ignore (Atomic.compare_and_set d.status Pending Taken)
   | Taken | Aborted -> ());
  (match Atomic.get d.status with
   | Taken ->
       (match Atomic.get d.result with
        | Some _ -> ()
        | None ->
            Idem.enter d.log;
            let out = (try Value (d.thunk ()) with e -> Raised e) in
            Idem.exit ();
            ignore (Atomic.compare_and_set d.result None (Some out)))
   | Aborted | Pending ->
       (* Aborted descriptors can transiently occupy the lock when a slow
          helper's install CAS lands after the abort decision; they are
          simply removed below without running anything. *)
       ());
  Fault.hit fp_release;
  ignore (Atomic.compare_and_set t.state d unlocked)

let help t d =
  Atomic.incr helps;
  Telemetry.emit Telemetry.ev_lock_help 0;
  Fault.hit fp_help;
  run_and_release t d

(* Lock-free acquisition.  The decision (taken/aborted) must be identical
   for the original caller and every helper replaying the enclosing
   critical section, so (1) the candidate descriptor is allocated through
   the log, (2) the observed lock state is read through the log, and (3)
   the final verdict is the descriptor's monotone status field rather than
   the outcome of any individual machine CAS. *)
let try_lock_free t (f : unit -> Obj.t) : Obj.t option =
  let d =
    Idem.once (fun () ->
        { thunk = f;
          log = Idem.create_log ();
          status = Atomic.make Pending;
          result = Atomic.make None })
  in
  let observed = Idem.once (fun () -> Atomic.get t.state) in
  if observed != unlocked then begin
    help t observed;
    None
  end
  else begin
    let installed = Atomic.compare_and_set t.state unlocked d in
    if installed then begin
      ignore (Atomic.compare_and_set d.status Pending Taken);
      (* The acquirer owns the lock but has not run its critical section:
         a stall here is the crash-stop schedule of Theorem 6.1.  A
         [fail] rule must not leak the held lock — complete the acquire
         (thunk + release) before propagating. *)
      try Fault.hit fp_acquire
      with e ->
        run_and_release t d;
        raise e
    end
    else if Atomic.get t.state == d then
      (* Another helper of this same acquire installed d. *)
      ignore (Atomic.compare_and_set d.status Pending Taken)
    else
      (* Contended: vote to abort.  If a racing helper already took it,
         the CAS fails and the agreed verdict below is Taken. *)
      ignore (Atomic.compare_and_set d.status Pending Aborted);
    match Atomic.get d.status with
    | Taken -> begin
        run_and_release t d;
        match Atomic.get d.result with
        | Some (Value v) -> Some v
        | Some (Raised e) -> raise e
        | None -> assert false
      end
    | Aborted -> begin
        (* Our install may still land later (a slow helper); anyone seeing
           an aborted descriptor in the lock removes it (run_and_release).
           Meanwhile help whoever actually holds the lock. *)
        let cur = Atomic.get t.state in
        if cur != unlocked then help t cur;
        None
      end
    | Pending -> assert false
  end

(* Blocking mode: plain test-and-set with a fresh descriptor as the
   ownership token; no helping, so a preempted owner stalls contenders —
   the behaviour the oversubscription experiments measure. *)
let try_lock_blocking t f =
  let token =
    { thunk = (fun () -> assert false);
      log = unlocked.log;
      status = Atomic.make Taken;
      result = Atomic.make None }
  in
  if Atomic.compare_and_set t.state unlocked token then begin
    (* Same crash-stop site as the lock-free path, but with no helping:
       a stall here convoys every contender until disarm — the blocking
       control the oversubscription experiments measure.  Inside the
       try so a [fail] rule releases the token like any raising critical
       section. *)
    let out =
      try
        Fault.hit fp_acquire;
        Ok (f ())
      with e -> Error e
    in
    Atomic.set t.state unlocked;
    match out with Ok v -> Some v | Error e -> raise e
  end
  else None

let try_lock (type a) t (f : unit -> a) : a option =
  match t.mode with
  | Blocking -> try_lock_blocking t f
  | Lock_free -> begin
      match try_lock_free t (fun () -> Obj.repr (f ())) with
      | None -> None
      | Some v -> Some (Obj.obj v)
    end

let try_lock_bool t f =
  match try_lock t f with None -> false | Some b -> b

let with_lock t f =
  let b = Backoff.create () in
  let rec loop retries =
    match try_lock t f with
    | Some v ->
        if retries > 0 then Telemetry.Hist.observe retries_hist retries;
        Telemetry.emit Telemetry.ev_lock_acquire retries;
        v
    | None ->
        Backoff.once b;
        loop (retries + 1)
  in
  loop 0
