(** Generic observability machinery: per-domain sharded histograms and a
    per-domain lock-free event ring.

    Lives in Flock (the bottom of the stack) so that lock and epoch hot
    paths can record into it; Verlib's [Obs] module layers the instrument
    catalogue, sampling policy and Chrome-trace export on top.

    Writes are plain stores into registry-slot-private shards (the
    [Stats] discipline); aggregate reads ({!Hist.summary},
    {!events_of_slot}) are exact only when writing domains are quiesced,
    e.g. after [Domain.join]. *)

module Hist : sig
  type t

  val nbuckets : int
  (** 64: bucket [i] holds values with [i] significant bits, i.e.
      bucket 0 is [v <= 0] and bucket [i >= 1] is [2^(i-1) <= v < 2^i]. *)

  val make : string -> t
  (** Create and register a histogram (named shards appear in
      [Verlib.Obs] reports automatically). *)

  val name : t -> string

  val observe : t -> int -> unit
  (** Record one value into the calling domain's shard.  Plain stores;
      never racy because each domain owns its shard. *)

  val reset : t -> unit

  val all : unit -> t list
  (** Registered histograms, oldest first. *)

  val bucket_of : int -> int

  val bucket_bound : int -> int
  (** Inclusive upper bound of a bucket; percentile reports quote these,
      so they overshoot the true quantile by at most 2x. *)

  type summary = {
    s_name : string;
    s_count : int;
    s_sum : int;
    s_max : int;  (** exact maximum observed value *)
    s_p50 : int;  (** bucket upper bound (within 2x of the true quantile) *)
    s_p90 : int;
    s_p99 : int;
  }

  val mean : summary -> float

  val summary : t -> summary

  val buckets : t -> int array
  (** Bucket counts aggregated across all domain shards. *)
end

(** {1 Gauges}

    Named instantaneous readings, evaluated (not stored) at capture
    time.  [Epoch] registers reclamation-health gauges here; the verlib
    layer adds its own.  Closures must be cheap and side-effect free;
    a raising closure reads as 0. *)

module Gauge : sig
  type t

  val make : string -> (unit -> int) -> t
  (** Create and register a gauge; it appears in every subsequent
      {!capture} (and hence in [Verlib.Obs] reports). *)

  val name : t -> string

  val read : t -> int

  val all : unit -> t list

  val capture : unit -> (string * int) list
  (** All registered gauges, read now, oldest first. *)
end

(** {1 Activity publication}

    The write side of the sampling profiler ([Verlib.Obs.Profile]
    drives the read side).  Each domain publishes its current activity
    — served op, held lock site, waited-on lock site — as interned
    integer ids in slot-private cells; disabled (the default) every
    {!Activity.set} is one atomic load and a not-taken branch. *)

module Activity : sig
  val dim_op : int
  (** Cell dimension: the operation this domain currently serves. *)

  val dim_lock_hold : int
  (** Cell dimension: the lock site this domain currently holds. *)

  val dim_lock_wait : int
  (** Cell dimension: the lock site this domain currently waits on. *)

  val dim_stall : int
  (** Cell dimension: non-zero while an injected blocking fault parks
      this domain ([Fault] stall attribution). *)

  val set_enabled : bool -> unit
  (** Open/close the publication gate; closing clears every cell. *)

  val on : unit -> bool

  val intern : string -> int
  (** Intern a frame name (mutexed; call at registration time, never on
      hot paths).  Id 0 is reserved for [""] = no activity. *)

  val name_of : int -> string
  (** Resolve an interned id; [""] for unknown ids. *)

  val set : int -> int -> unit
  (** [set dim id] publishes [id] into the calling domain's cell for
      [dim]; no-op when the gate is closed. *)

  val get : int -> int -> int
  (** [get slot dim]: the sampler's read side (racy by design). *)

  val clear_my_slot : unit -> unit
end

(** {1 GC telemetry}

    Per-slot published [Gc.quick_stat] absolutes; workers call
    {!Gcstat.publish} amortized, readers sum the slots (exact at
    quiescence). *)

module Gcstat : sig
  val publish : unit -> unit
  (** Publish the calling domain's current GC counters into its slot. *)

  val minor_words : unit -> int

  val promoted_words : unit -> int

  val major_words : unit -> int

  val minor_collections : unit -> int

  val major_collections : unit -> int

  val alloc_bytes : unit -> int
  (** [8 * (minor + major direct) words] summed over published slots. *)

  val heap_words : unit -> int
  (** Live read of the shared major heap size (not slot-summed). *)

  val reset : unit -> unit
end

(** {1 Event tracing}

    Fixed-size per-domain rings of [(timestamp, code, arg)] triples.
    Disabled (the default) the {!emit} fast path is a single
    branch-predictable atomic load. *)

val ev_lock_acquire : int
(** Flock-reserved event codes (32..); Verlib defines 1..31. *)

val ev_lock_help : int

val ev_epoch_advance : int

val ring_capacity : int

val set_tracing : bool -> unit

val tracing_on : unit -> bool

val set_clock : (unit -> int) -> unit
(** Install the timestamp source ([Verlib.Obs] installs [Hwclock.now]). *)

val now : unit -> int
(** Read the installed timestamp source (0 before installation).  Lets
    Flock hot paths time contended sections without depending on the
    clock above them. *)

val emit : int -> int -> unit
(** [emit code arg] appends an event to the calling domain's ring when
    tracing is enabled; no-op (one atomic load) otherwise. *)

val events_of_slot : int -> (int * int * int) list
(** [(ts, code, arg)] events of a registry slot, oldest first; at most
    {!ring_capacity} survive a wrap. *)

val dropped_of_slot : int -> int
(** Events lost to ring wrap-around for a slot. *)

val reset_traces : unit -> unit

val reset_all : unit -> unit
(** Reset all histograms and trace rings.  Only safe when writers are
    quiesced (same contract as [Verlib.Stats.reset_all]). *)
