(** FLOCK — lock-free locks with idempotent helping (Ben-David, Blelloch,
    Wei, PPoPP 2022), rebuilt in OCaml as the substrate for Verlib.

    The modules re-exported here mirror the [flck::] namespace of the C++
    library the paper builds on:

    - {!Lock} — blocking and lock-free locks ([flck::lock]);
    - {!Fatomic} — idempotent atomic cells ([flck::atomic<T>]);
    - {!Epoch} — epoch-based reclamation ([flck::with_epoch]);
    - {!Idem} — the idempotence machinery behind helping;
    - {!Registry}, {!Backoff}, {!Telemetry} — shared infrastructure. *)

module Backoff = Backoff
module Registry = Registry
module Telemetry = Telemetry
module Idem = Idem
module Fatomic = Fatomic
module Lock = Lock
module Epoch = Epoch

let new_obj = Lock.new_obj

let retire = Lock.retire

let with_epoch = Epoch.with_epoch
