(** Locks in two flavours: standard blocking (test-and-set with backoff)
    and lock-free (FLOCK-style helping locks).

    A lock-free lock stores, while held, a descriptor containing the
    critical section as a thunk plus an idempotence log ({!Idem}).  Any
    thread that finds the lock taken helps run the thunk to completion and
    helps release the lock, so the system makes progress even if the owner
    is preempted or stalls — the property the paper exploits when the
    machine is oversubscribed.

    Critical-section thunks must follow the FLOCK contract: all shared
    mutable state they touch is accessed through {!Fatomic} cells or Verlib
    versioned pointers (both idempotence-aware), and allocation inside the
    section goes through {!new_obj}. *)

type mode = Blocking | Lock_free

val set_default_mode : mode -> unit
(** Mode given to subsequently created locks (default [Lock_free]).
    Benchmarks flip this to compare the two regimes, as the paper does with
    compile flags. *)

val default_mode : unit -> mode

type t

val create : ?mode:mode -> ?site:string -> unit -> t
(** [site] labels the call site for the lock-contention profiler: every
    lock created with the same [site] shares one accounting record
    (acquires, contended attempts, wait cycles, helps, sampled waits-on
    edges — see {!site_summaries}).  Unlabelled locks skip per-site
    accounting entirely. *)

val mode_of : t -> mode

(** {1 Lock-contention profiler}

    Per-site counters are slot-sharded plain stores (exact at
    quiescence); the waits-on edge map is sampled (1-in-8) and racy by
    design — its shape, one {e holder} slot accumulating waits from
    many waiters at one site, is the convoy signature the chaos
    [blocking-convoy] preset exercises. *)

type site_summary = {
  sm_site : string;
  sm_acquires : int;  (** successful [try_lock] acquisitions *)
  sm_contended : int;  (** failed [try_lock] attempts *)
  sm_wait_cycles : int;
      (** clock ticks spent inside [with_lock] retry loops *)
  sm_helps : int;  (** helping-path executions against this site *)
  sm_edges : (int * int) list;
      (** (holder registry slot, sampled waits), busiest first *)
}

val site_summaries : unit -> site_summary list
(** Every registered site, registration order. *)

val reset_sites : unit -> unit
(** Zero all per-site counters and edge maps (quiescence contract). *)

val try_lock : t -> (unit -> 'a) -> 'a option
(** [try_lock t f] attempts to acquire [t]; on success runs [f] as the
    critical section and returns [Some (f ())], otherwise returns [None].
    In lock-free mode a [None] answer may be spurious (the lock was held, or
    a helping race resolved against this attempt); callers retry their
    whole operation, re-validating state, exactly as in the paper's data
    structures.  Contending callers help the current holder first. *)

val try_lock_bool : t -> (unit -> bool) -> bool
(** Paper-style convenience: [false] means "not acquired or the critical
    section asked to retry". *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Retry [try_lock] with backoff until acquired. *)

val new_obj : (unit -> 'a) -> 'a
(** Idempotent allocation ([flck::New]): inside a critical section all
    helpers receive the same object; outside it simply runs the
    allocator. *)

val retire : 'a -> unit
(** [flck::Retire].  Reclamation itself is the GC's job in OCaml; this
    counts the retirement (the [retires] figure in stats reports).  The
    count is a plain increment: call sites inside critical sections gate
    it through {!Idem.claim} so one retirement counts once per critical
    section, never once per helper (as {!Vptr} does). *)

val holding_lock : unit -> bool
(** Whether the calling domain is currently inside a lock-free critical
    section (its own or one it is helping). *)

val help_count : unit -> int
(** Number of critical sections executed via the helping path since start
    (monotone, racy read; for experiments and tests). *)

val retire_count : unit -> int
