(** Locks in two flavours: standard blocking (test-and-set with backoff)
    and lock-free (FLOCK-style helping locks).

    A lock-free lock stores, while held, a descriptor containing the
    critical section as a thunk plus an idempotence log ({!Idem}).  Any
    thread that finds the lock taken helps run the thunk to completion and
    helps release the lock, so the system makes progress even if the owner
    is preempted or stalls — the property the paper exploits when the
    machine is oversubscribed.

    Critical-section thunks must follow the FLOCK contract: all shared
    mutable state they touch is accessed through {!Fatomic} cells or Verlib
    versioned pointers (both idempotence-aware), and allocation inside the
    section goes through {!new_obj}. *)

type mode = Blocking | Lock_free

val set_default_mode : mode -> unit
(** Mode given to subsequently created locks (default [Lock_free]).
    Benchmarks flip this to compare the two regimes, as the paper does with
    compile flags. *)

val default_mode : unit -> mode

type t

val create : ?mode:mode -> unit -> t

val mode_of : t -> mode

val try_lock : t -> (unit -> 'a) -> 'a option
(** [try_lock t f] attempts to acquire [t]; on success runs [f] as the
    critical section and returns [Some (f ())], otherwise returns [None].
    In lock-free mode a [None] answer may be spurious (the lock was held, or
    a helping race resolved against this attempt); callers retry their
    whole operation, re-validating state, exactly as in the paper's data
    structures.  Contending callers help the current holder first. *)

val try_lock_bool : t -> (unit -> bool) -> bool
(** Paper-style convenience: [false] means "not acquired or the critical
    section asked to retry". *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Retry [try_lock] with backoff until acquired. *)

val new_obj : (unit -> 'a) -> 'a
(** Idempotent allocation ([flck::New]): inside a critical section all
    helpers receive the same object; outside it simply runs the
    allocator. *)

val retire : 'a -> unit
(** [flck::Retire].  Reclamation itself is the GC's job in OCaml; this
    counts the retirement (the [retires] figure in stats reports).  The
    count is a plain increment: call sites inside critical sections gate
    it through {!Idem.claim} so one retirement counts once per critical
    section, never once per helper (as {!Vptr} does). *)

val holding_lock : unit -> bool
(** Whether the calling domain is currently inside a lock-free critical
    section (its own or one it is helping). *)

val help_count : unit -> int
(** Number of critical sections executed via the helping path since start
    (monotone, racy read; for experiments and tests). *)

val retire_count : unit -> int
