(* Primary-side change feed + replica-side apply engine.  See repl.mli
   and docs/REPLICATION.md for the model; implementation notes:

   - The log assigns its own dense [seq] under the log mutex.  The tap
     runs while the commit's stripe latches are still held (Txn's
     observer contract), so records touching a common key are appended
     in versionstamp order; records for disjoint key sets may be
     appended out of stamp order but commute — applying in seq order
     converges to the primary's state.  Aborted commits draw stamps
     too, so stamps are NOT dense: gap detection and dedup run on seq,
     never on stamp.
   - Appends never block the commit path on a slow consumer: the ring
     overwrites its oldest record and a laggard whose cursor fell below
     the trim point is told to resync (full snapshot), which is the
     bounded-feed contract the multiversion-GC papers motivate.
   - Timed waits poll under the mutex (OCaml's Condition has no timed
     wait); the 1ms tick bounds push latency, which the feed consumers
     (replica apply, WATCH) are happy with. *)

type record = {
  r_seq : int;
  r_stamp : int;
  r_writes : (int * int option) list;
}

(* Wire-size estimate: seq + stamp + one (key, value-or-nil) frame per
   write, ~12 bytes per integer token.  Only relative magnitudes matter
   — the lag-bytes gauge tracks backlog, not exact socket bytes. *)
let record_bytes r = 24 + (24 * List.length r.r_writes)

let touches lo hi r = List.exists (fun (k, _) -> k >= lo && k <= hi) r.r_writes

(* ------------------------------------------------------------------ *)
(* Process-wide counters, exported as [repl_*] gauges below.           *)

let records_ctr = Atomic.make 0

let resyncs_ctr = Atomic.make 0

let applied_ctr = Atomic.make 0

let dup_dropped_ctr = Atomic.make 0

let watermark_g = Atomic.make 0

let records_total () = Atomic.get records_ctr

let resyncs_total () = Atomic.get resyncs_ctr

let applied_total () = Atomic.get applied_ctr

let dup_dropped_total () = Atomic.get dup_dropped_ctr

let watermark_now () = Atomic.get watermark_g

(* ------------------------------------------------------------------ *)

let fp_send = Fault.Point.make "repl.send"

let fp_apply = Fault.Point.make "repl.apply"

let fp_ack = Fault.Point.make "repl.ack"

(* ------------------------------------------------------------------ *)

module Log = struct
  type sub = {
    mutable s_seq : int;
    mutable s_stamp : int;
    mutable s_bytes : int;  (** cumulative bytes at the acked seq *)
    mutable s_orphan : bool;
        (** stream severed abnormally (partition, dead peer): the cursor
            keeps aging — and driving the lag gauges — until a new
            subscriber adopts it or it is explicitly dropped *)
  }

  type t = {
    mu : Mutex.t;
    capacity : int;
    ring : record option array;  (** slot [seq mod capacity] *)
    cum : int array;  (** cumulative bytes at that slot's record *)
    mutable tail : int;  (** last assigned seq; 0 = empty *)
    mutable tail_stamp : int;
    mutable total_bytes : int;  (** cumulative bytes ever appended *)
    mutable trim_bytes : int;  (** cumulative bytes at the trim point *)
    subs : (int, sub) Hashtbl.t;
    mutable next_sub : int;
  }

  let logs : t list ref = ref []

  let logs_mu = Mutex.create ()

  let create ?(capacity = 65536) () =
    let t =
      {
        mu = Mutex.create ();
        capacity = max 16 capacity;
        ring = Array.make (max 16 capacity) None;
        cum = Array.make (max 16 capacity) 0;
        tail = 0;
        tail_stamp = 0;
        total_bytes = 0;
        trim_bytes = 0;
        subs = Hashtbl.create 8;
        next_sub = 1;
      }
    in
    Mutex.lock logs_mu;
    logs := t :: !logs;
    Mutex.unlock logs_mu;
    t

  (* Oldest seq still retained is [trim t + 1]. *)
  let trim t = max 0 (t.tail - t.capacity)

  let append t ~stamp writes =
    if writes <> [] then begin
      Mutex.lock t.mu;
      let seq = t.tail + 1 in
      let r = { r_seq = seq; r_stamp = stamp; r_writes = writes } in
      let slot = seq mod t.capacity in
      (match t.ring.(slot) with
       | Some old when old.r_seq = seq - t.capacity ->
           (* overwriting the oldest record: advance the trim point *)
           t.trim_bytes <- t.cum.(slot)
       | _ -> ());
      t.total_bytes <- t.total_bytes + record_bytes r;
      t.ring.(slot) <- Some r;
      t.cum.(slot) <- t.total_bytes;
      t.tail <- seq;
      t.tail_stamp <- max t.tail_stamp stamp;
      Mutex.unlock t.mu;
      Atomic.incr records_ctr
    end

  (* Install this log as [store]'s commit observer. *)
  let tap t store =
    Txn.set_commit_observer store (fun stamp writes -> append t ~stamp writes)

  let tail_seq t =
    Mutex.lock t.mu;
    let v = t.tail in
    Mutex.unlock t.mu;
    v

  let tail_stamp t =
    Mutex.lock t.mu;
    let v = t.tail_stamp in
    Mutex.unlock t.mu;
    v

  (* Records with [r_seq > seq], oldest first; [`Resync] when the ring
     has already overwritten part of that suffix. *)
  let read_after_locked t seq =
    if seq < trim t then begin
      Atomic.incr resyncs_ctr;
      `Resync
    end
    else begin
      let acc = ref [] in
      for s = t.tail downto seq + 1 do
        match t.ring.(s mod t.capacity) with
        | Some r when r.r_seq = s -> acc := r :: !acc
        | _ -> ()
      done;
      `Records !acc
    end

  let read_after t ~seq =
    Mutex.lock t.mu;
    let r = read_after_locked t seq in
    Mutex.unlock t.mu;
    r

  (* Timed wait for anything past [seq]; polls at 1ms. *)
  let wait_after t ~seq ~deadline =
    let rec go () =
      Mutex.lock t.mu;
      let r = if t.tail > seq then read_after_locked t seq else `Nothing in
      Mutex.unlock t.mu;
      match r with
      | `Records l when l <> [] -> `Records l
      | `Resync -> `Resync
      | _ ->
          if Unix.gettimeofday () >= deadline then `Timeout
          else begin
            Unix.sleepf 0.001;
            go ()
          end
    in
    go ()

  (* One-shot WATCH: the first record past [seq] touching [lo, hi]. *)
  let wait_matching t ~seq ~lo ~hi ~deadline =
    let rec go seq =
      match wait_after t ~seq ~deadline with
      | (`Resync | `Timeout) as r -> r
      | `Records l -> (
          match List.find_opt (touches lo hi) l with
          | Some r -> `Record r
          | None -> (
              match List.rev l with
              | last :: _ -> go last.r_seq
              | [] -> go seq))
    in
    go seq

  (* Subscriber cursors: what the lag gauges measure against.  A fresh
     cursor adopts the stalest orphan if one exists — that is how a
     replica reconnecting after a partition resumes the same lag
     lineage instead of resetting the gauges — and otherwise starts at
     the current tail (zero lag until real backlog accrues). *)
  let subscribe t =
    Mutex.lock t.mu;
    let adopted =
      Hashtbl.fold
        (fun id s acc ->
          if s.s_orphan then
            match acc with
            | Some (_, s') when s'.s_seq <= s.s_seq -> acc
            | _ -> Some (id, s)
          else acc)
        t.subs None
    in
    let id =
      match adopted with
      | Some (id, s) ->
          s.s_orphan <- false;
          id
      | None ->
          let id = t.next_sub in
          t.next_sub <- id + 1;
          Hashtbl.replace t.subs id
            {
              s_seq = t.tail;
              s_stamp = t.tail_stamp;
              s_bytes = t.total_bytes;
              s_orphan = false;
            };
          id
    in
    Mutex.unlock t.mu;
    id

  let unsubscribe t id =
    Mutex.lock t.mu;
    Hashtbl.remove t.subs id;
    Mutex.unlock t.mu

  let orphan t id =
    Mutex.lock t.mu;
    (match Hashtbl.find_opt t.subs id with
     | Some s -> s.s_orphan <- true
     | None -> ());
    Mutex.unlock t.mu

  let ack t ~id ~seq ~stamp =
    Mutex.lock t.mu;
    (match Hashtbl.find_opt t.subs id with
     | Some s ->
         if seq > s.s_seq then begin
           s.s_seq <- seq;
           s.s_stamp <- max s.s_stamp stamp;
           s.s_bytes <-
             (if seq > trim t && seq <= t.tail then
                match t.ring.(seq mod t.capacity) with
                | Some r when r.r_seq = seq -> t.cum.(seq mod t.capacity)
                | _ -> t.trim_bytes
              else if seq >= t.tail then t.total_bytes
              else t.trim_bytes)
         end
     | None -> ());
    Mutex.unlock t.mu

  (* Worst lag across this log's subscribers; (0, 0) with none. *)
  let lag_locked t =
    Hashtbl.fold
      (fun _ s (ls, lb) ->
        ( max ls (max 0 (t.tail_stamp - s.s_stamp)),
          max lb (max 0 (t.total_bytes - s.s_bytes)) ))
      t.subs (0, 0)

  let lag t =
    Mutex.lock t.mu;
    let r = lag_locked t in
    Mutex.unlock t.mu;
    r

  let subscriber_count t =
    Mutex.lock t.mu;
    let n = Hashtbl.length t.subs in
    Mutex.unlock t.mu;
    n
end

let lag_stamps () =
  Mutex.lock Log.logs_mu;
  let logs = !Log.logs in
  Mutex.unlock Log.logs_mu;
  List.fold_left (fun acc l -> max acc (fst (Log.lag l))) 0 logs

let lag_bytes () =
  Mutex.lock Log.logs_mu;
  let logs = !Log.logs in
  Mutex.unlock Log.logs_mu;
  List.fold_left (fun acc l -> max acc (snd (Log.lag l))) 0 logs

let () =
  List.iter
    (fun (n, f) -> ignore (Flock.Telemetry.Gauge.make n f))
    [
      ("repl_records_total", records_total);
      ("repl_lag_stamps", lag_stamps);
      ("repl_lag_bytes", lag_bytes);
      ("repl_resyncs", resyncs_total);
      ("repl_applied_total", applied_total);
      ("repl_dup_dropped", dup_dropped_total);
      ("repl_watermark", watermark_now);
    ]

(* ------------------------------------------------------------------ *)
(* Replica apply engine.                                               *)

module Apply = struct
  (* How many out-of-order records we resequence before declaring the
     stream unrecoverable (caller resyncs). *)
  let max_pending = 128

  type t = {
    store : Txn.Store.t;
    mutable last_seq : int;
    mutable watermark : int;  (** max primary stamp applied *)
    mutable last_stamp : int;  (** stamp of the last applied record *)
    pending : (int, record) Hashtbl.t;  (** reorder buffer, seq -> rec *)
    mu : Mutex.t;
  }

  let create store =
    {
      store;
      last_seq = 0;
      watermark = 0;
      last_stamp = 0;
      pending = Hashtbl.create 16;
      mu = Mutex.create ();
    }

  let reset t ~seq ~stamp =
    Mutex.lock t.mu;
    t.last_seq <- seq;
    t.watermark <- max t.watermark stamp;
    t.last_stamp <- stamp;
    Hashtbl.reset t.pending;
    if stamp > Atomic.get watermark_g then Atomic.set watermark_g stamp;
    Mutex.unlock t.mu

  let ops_of_writes writes =
    List.concat_map
      (function
        | k, Some v -> [ Txn.Del k; Txn.Put (k, v) ]
        | k, None -> [ Txn.Del k ])
      writes

  (* Install one record as a single transaction, so serialized readers
     on the replica never observe a half-applied batch.  Replica-local
     contention is read-only, so commits land in a few attempts; the
     loop is a liveness backstop, not a hot path. *)
  let rec install t r =
    Fault.hit fp_apply;
    match Txn.exec ~max_attempts:64 t.store (ops_of_writes r.r_writes) with
    | Txn.Committed _ ->
        t.last_seq <- r.r_seq;
        t.watermark <- max t.watermark r.r_stamp;
        t.last_stamp <- r.r_stamp;
        Atomic.incr applied_ctr;
        if t.watermark > Atomic.get watermark_g then
          Atomic.set watermark_g t.watermark
    | Txn.Aborted _ -> install t r

  (* Offer one received record: dedup on seq, resequence gaps, apply
     every in-order record (including buffered successors a gap fill
     releases). *)
  let offer t r =
    Mutex.lock t.mu;
    let out =
      if r.r_seq <= t.last_seq then begin
        Atomic.incr dup_dropped_ctr;
        `Dup
      end
      else if r.r_seq > t.last_seq + 1 then
        if Hashtbl.length t.pending >= max_pending then `Overflow
        else begin
          Hashtbl.replace t.pending r.r_seq r;
          `Buffered
        end
      else begin
        install t r;
        let n = ref 1 in
        let rec drain () =
          match Hashtbl.find_opt t.pending (t.last_seq + 1) with
          | Some nxt ->
              Hashtbl.remove t.pending nxt.r_seq;
              install t nxt;
              incr n;
              drain ()
          | None -> ()
        in
        drain ();
        `Applied !n
      end
    in
    Mutex.unlock t.mu;
    out

  let last_seq t =
    Mutex.lock t.mu;
    let v = t.last_seq in
    Mutex.unlock t.mu;
    v

  let watermark t =
    Mutex.lock t.mu;
    let v = t.watermark in
    Mutex.unlock t.mu;
    v

  let last_stamp t =
    Mutex.lock t.mu;
    let v = t.last_stamp in
    Mutex.unlock t.mu;
    v

  let pending_count t =
    Mutex.lock t.mu;
    let v = Hashtbl.length t.pending in
    Mutex.unlock t.mu;
    v
end
