(** The replication plane: a primary-side change feed tapped off
    committed writes, and the replica-side apply engine.

    Every committed write set — a whole [MULTI/EXEC] batch or one plain
    [PUT]/[DEL] — already carries a versionstamp ([Txn]); this module
    turns that order into a {e bounded} change feed:

    - {b Records.}  [(seq, stamp, writes)].  The {b seq} is assigned by
      the log, dense and gap-free; the {b stamp} is the commit's
      versionstamp and is {e not} dense (aborted commits draw stamps
      too).  Dedup and gap detection therefore run on seq; stamp is
      what watermarks and staleness are expressed in.
    - {b Ordering.}  The tap runs while the commit's stripe latches are
      held, so two records touching a common key are appended in stamp
      order; disjoint records may interleave out of stamp order but
      commute — a replica applying in seq order converges to the
      primary's state (docs/REPLICATION.md).
    - {b Bounded, with backpressure on the laggard.}  Appends never
      block a commit: the ring overwrites its oldest record, and a
      subscriber whose cursor fell behind the trim point is told to
      resync from a snapshot.  This is the laggard-shedding contract
      the multiversion-GC line of work motivates: replica lag is
      measured ([repl_lag_stamps]/[repl_lag_bytes]), capped (the ring),
      and shed (resync) — never allowed to pin unbounded history.

    Process-wide [repl_*] gauges (Obs reports, STATS, METRICS):
    [repl_records_total], [repl_lag_stamps], [repl_lag_bytes],
    [repl_resyncs], [repl_applied_total], [repl_dup_dropped],
    [repl_watermark]. *)

type record = {
  r_seq : int;  (** dense log sequence (1-based; 0 = before the first) *)
  r_stamp : int;  (** the commit's versionstamp *)
  r_writes : (int * int option) list;
      (** the installed state per key: [Some v] = bound to [v],
          [None] = absent *)
}

val record_bytes : record -> int
(** Wire-size estimate used by the lag-bytes accounting. *)

val touches : int -> int -> record -> bool
(** [touches lo hi r]: does [r] write a key in [\[lo, hi\]]? *)

(** {1 Fault points} *)

val fp_send : Fault.Point.t
(** [repl.send] — hit per record shipped to a subscriber; the
    [partition]/[dup]/[reorder] actions interpret here. *)

val fp_apply : Fault.Point.t
(** [repl.apply] — hit per record installed on a replica. *)

val fp_ack : Fault.Point.t
(** [repl.ack] — hit per cursor acknowledgement. *)

(** {1 The primary-side log} *)

module Log : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] (default 65536) is the record count the ring retains;
      older records are overwritten (the feed's space bound). *)

  val tap : t -> Txn.Store.t -> unit
  (** Install this log as the store's commit observer: every committed
      write set appends one record. *)

  val append : t -> stamp:int -> (int * int option) list -> unit
  (** The raw tap (exposed for tests); empty write sets are ignored. *)

  val tail_seq : t -> int

  val tail_stamp : t -> int

  val read_after : t -> seq:int -> [ `Records of record list | `Resync ]
  (** Records with [r_seq > seq], oldest first; [`Resync] when the ring
      has overwritten part of that suffix (cursor behind the trim
      point). *)

  val wait_after :
    t ->
    seq:int ->
    deadline:float ->
    [ `Records of record list | `Resync | `Timeout ]
  (** Block (poll) until something lands past [seq] or [deadline]. *)

  val wait_matching :
    t ->
    seq:int ->
    lo:int ->
    hi:int ->
    deadline:float ->
    [ `Record of record | `Resync | `Timeout ]
  (** One-shot WATCH: first record past [seq] touching [\[lo, hi\]]. *)

  val subscribe : t -> int
  (** Register a cursor; the id keys {!ack}/{!unsubscribe} and the lag
      gauges measure against the slowest registered cursor.  Adopts the
      stalest {!orphan}ed cursor when one exists (lag-lineage continuity
      across a partition), otherwise starts at the current tail. *)

  val unsubscribe : t -> int -> unit
  (** Drop the cursor entirely (clean stream shutdown). *)

  val orphan : t -> int -> unit
  (** Mark the cursor severed-but-live: it keeps aging — and driving
      [repl_lag_stamps]/[repl_lag_bytes] — until a reconnecting
      subscriber adopts it.  The partition story depends on this:
      unsubscribing on abnormal death would zero the lag gauges exactly
      when they must rise. *)

  val ack : t -> id:int -> seq:int -> stamp:int -> unit

  val lag : t -> int * int
  (** Worst [(stamps, bytes)] lag across subscribers; [(0, 0)] with
      none. *)

  val subscriber_count : t -> int
end

(** {1 The replica-side apply engine} *)

module Apply : sig
  type t

  val create : Txn.Store.t -> t

  val reset : t -> seq:int -> stamp:int -> unit
  (** Adopt a snapshot's position (after SYNC): the next expected
      record is [seq + 1] and the watermark starts at [stamp]. *)

  val offer :
    t -> record -> [ `Applied of int | `Dup | `Buffered | `Overflow ]
  (** Offer one received record.  In-order records install immediately
      (each as one transaction, so replica readers never observe a
      half-applied batch) together with any buffered successors the
      gap fill releases — [`Applied n] counts them.  A record at or
      below the cursor is [`Dup] (dropped, [repl_dup_dropped]); a
      record past the next expected seq is [`Buffered] into a bounded
      reorder buffer, or [`Overflow] when that buffer is full — the
      caller must resync. *)

  val last_seq : t -> int

  val watermark : t -> int
  (** Max primary stamp applied — monotonic. *)

  val last_stamp : t -> int
  (** Stamp of the most recently applied record (what the strict
      monotonicity test observes). *)

  val pending_count : t -> int
end

(** {1 Process-wide accounting} *)

val records_total : unit -> int

val resyncs_total : unit -> int

val applied_total : unit -> int

val dup_dropped_total : unit -> int

val watermark_now : unit -> int

val lag_stamps : unit -> int

val lag_bytes : unit -> int
