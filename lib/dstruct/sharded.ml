(* Sharding combinator: partition one logical map over N sub-maps.

   The point of building this on VERLIB rather than on lock striping is
   that cross-shard atomicity is free: a snapshot is an O(1) timestamp
   read against the global clock every shard already shares, so wrapping
   a multi-point operation in ONE [Verlib.with_snapshot] makes the walk
   over all N shards exactly as linearizable as the single-shard case.
   The base structures' own snapshot wrappers ([multifind], [scan],
   [fold_range]) nest inside the outer snapshot as no-ops, sharing its
   stamp, so per-shard calls compose without code changes underneath.

   Partitioning policy follows the base's range capability:

   - [Unordered] bases are hash-partitioned (same splitmix-style
     finalizer as the hash table, folded to a shard index), spreading
     contention evenly;
   - [Ordered_range] bases are range-partitioned into contiguous key
     intervals, so [range]/[range_count] touch only the shards that
     intersect the query and per-shard sorted output concatenates into
     globally sorted output.  The interval width is derived from
     [n_hint] at creation: the benchmark workloads draw keys from
     [0, 2n) for a size-n structure (see [Workload.Keys]), so shard [i]
     of [N] covers [i*w, (i+1)*w) with [w = max 1 (2n/N)], the first
     and last shards absorbing the open ends.  Keys outside the hinted
     universe still route correctly (monotonically, to the end shards);
     they only lose balance, never correctness. *)

module Vptr = Verlib.Vptr

module type SPEC = sig
  module Base : Map_intf.MAP

  val shards : int
end

module Make (S : SPEC) = struct
  module Base = S.Base

  let shards = S.shards

  let () =
    if shards < 1 then
      invalid_arg
        (Printf.sprintf "Sharded.Make: shard count must be >= 1 (got %d)" shards)

  let name = Printf.sprintf "sharded-%s:%d" Base.name shards

  let range_capability = Base.range_capability

  let supports_mode = Base.supports_mode

  type t = { subs : Base.t array; route : int -> int }

  (* Splitmix-style finalizer (as in [Hashtable.hash]): shard choice must
     mix all key bits or partitioned benchmarks would hammer one shard. *)
  let mix k =
    let h = k * 0x1E3779B97F4A7C15 in
    let h = h lxor (h lsr 29) in
    let h = h * 0x3F58476D1CE4E5B9 in
    h lxor (h lsr 32)

  let create ?(mode = Vptr.Ind_on_need) ?lock_mode ~n_hint () =
    let sub_hint = max 1 (n_hint / shards) in
    let subs =
      Array.init shards (fun _ -> Base.create ~mode ?lock_mode ~n_hint:sub_hint ())
    in
    let route =
      match Base.range_capability with
      | Map_intf.Unordered -> fun k -> mix k land max_int mod shards
      | Map_intf.Ordered_range ->
          let width = max 1 (2 * max 1 n_hint / shards) in
          fun k -> if k < 0 then 0 else min (shards - 1) (k / width)
    in
    { subs; route }

  let sub t k = t.subs.(t.route k)

  (* Request-span attribution: every per-shard sub-call books to the
     [route] phase of the current request span (exclusive accounting —
     inside the outer snapshot this subtracts from the [snapshot] phase)
     and bumps the span's fanout counter.  One atomic load when no span
     exists anywhere in the process. *)
  let routed f =
    Verlib.Obs.Span.note_fanout ();
    Verlib.Obs.Span.in_phase Verlib.Obs.Span.Route f

  (* Point operations touch exactly one shard — no snapshot, no fan-out. *)
  let insert t k v = routed (fun () -> Base.insert (sub t k) k v)

  let delete t k = routed (fun () -> Base.delete (sub t k) k)

  let find t k = routed (fun () -> Base.find (sub t k) k)

  (* Multi-point operations: ONE snapshot around the per-shard work.
     Every shard is then read at the same timestamp, which is the whole
     claim of this module. *)

  let range t lo hi =
    match range_capability with
    | Map_intf.Unordered ->
        invalid_arg (name ^ ": range queries are not supported on unordered maps")
    | Map_intf.Ordered_range ->
        Verlib.with_snapshot (fun () ->
            if lo > hi then []
            else begin
              let i0 = t.route lo and i1 = t.route hi in
              let acc = ref [] in
              (* Walk shards high-to-low so each sorted per-shard slice is
                 prepended in order: contiguous partitioning makes the
                 concatenation globally sorted with no merge. *)
              for i = i1 downto i0 do
                acc := routed (fun () -> Base.range t.subs.(i) lo hi) @ !acc
              done;
              !acc
            end)

  let range_count t lo hi =
    match range_capability with
    | Map_intf.Unordered ->
        invalid_arg (name ^ ": range queries are not supported on unordered maps")
    | Map_intf.Ordered_range ->
        Verlib.with_snapshot (fun () ->
            if lo > hi then 0
            else begin
              let n = ref 0 in
              for i = t.route lo to t.route hi do
                n := !n + routed (fun () -> Base.range_count t.subs.(i) lo hi)
              done;
              !n
            end)

  let multifind t keys =
    (* Per-key dispatch under one snapshot: each find lands on one shard,
       all of them resolve against the same stamp. *)
    Verlib.with_snapshot (fun () -> Array.map (fun k -> find t k) keys)

  let scan t ~init ~f =
    Verlib.with_snapshot (fun () ->
        Array.fold_left
          (fun acc s -> routed (fun () -> Base.scan s ~init:acc ~f))
          init t.subs)

  let size t =
    Verlib.with_snapshot (fun () ->
        Array.fold_left
          (fun acc s -> acc + routed (fun () -> Base.size s))
          0 t.subs)

  let to_sorted_list t =
    Verlib.with_snapshot (fun () ->
        match range_capability with
        | Map_intf.Ordered_range ->
            (* Contiguous partitioning: concatenation is already sorted. *)
            List.concat_map Base.to_sorted_list (Array.to_list t.subs)
        | Map_intf.Unordered ->
            List.sort compare
              (List.concat_map Base.to_sorted_list (Array.to_list t.subs)))

  (* Census and invariant fan-out: the chain census and the structural
     audit must see all shards or per-shard pathologies would hide. *)

  let iter_vptrs t emit = Array.iter (fun s -> Base.iter_vptrs s emit) t.subs

  let shard_views t =
    Array.to_list
      (Array.mapi
         (fun i s -> (Printf.sprintf "shard-%d" i, fun f -> Base.iter_vptrs s f))
         t.subs)

  let check t =
    Array.iteri
      (fun i s ->
        Base.check s;
        (* Partition invariant: every key a shard holds routes to it. *)
        Base.scan s ~init:() ~f:(fun () k _ ->
            if t.route k <> i then
              failwith
                (Printf.sprintf
                   "Sharded.check: key %d found in shard %d, routes to %d" k i
                   (t.route k))))
      t.subs
end

(* First-class-module convenience for call sites that pick base and shard
   count at run time (the CLI registry, the benchmark sweep). *)
let make ~shards (module M : Map_intf.MAP) : (module Map_intf.MAP) =
  let module S = struct
    module Base = M

    let shards = shards
  end in
  let module Sh = Make (S) in
  (module Sh)
