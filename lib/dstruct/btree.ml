module Vptr = Verlib.Vptr
module Fatomic = Flock.Fatomic
module Lock = Flock.Lock

let name = "btree"

let range_capability = Map_intf.Ordered_range

let supports_mode (_ : Vptr.mode) = true

(* Occupancy bounds.  Leaves hold [1 .. leaf_max] entries (0 only for an
   empty root); inner nodes hold [2 .. inner_max] children.  The paper's
   B-tree uses 4..22 children; we keep the same shape with slightly
   smaller nodes. *)
let leaf_max = 15

let leaf_min = 4

let inner_max = 16

let inner_min = 4

type node = Leaf of leaf | Inner of inner

and leaf = {
  lkeys : int array; (* sorted *)
  lvals : int array;
  lmeta : node Verlib.Vtypes.meta;
}

and inner = {
  ikeys : int array; (* separators; length = #children - 1 *)
  children : node Vptr.t array; (* immutable array of versioned cells *)
  imeta : node Verlib.Vtypes.meta;
  ilock : Lock.t;
  iremoved : bool Fatomic.t;
}

type t = {
  root : node Vptr.t;
  rlock : Lock.t;
  desc : node Vptr.desc;
  lock_mode : Lock.mode;
  rec_once : bool; (* copy instead of re-recording at root collapse *)
}

let meta_of = function Leaf l -> l.lmeta | Inner n -> n.imeta

let mk_leaf lkeys lvals = Leaf { lkeys; lvals; lmeta = Verlib.Vtypes.fresh_meta () }

let mk_inner t ikeys kids =
  Inner
    {
      ikeys;
      children = Array.map (fun c -> Vptr.make t.desc (Some c)) kids;
      imeta = Verlib.Vtypes.fresh_meta ();
      ilock = Lock.create ~mode:t.lock_mode ~site:"btree.ilock" ();
      iremoved = Fatomic.make false;
    }

let create ?(mode = Vptr.Ind_on_need) ?lock_mode ~n_hint:_ () =
  let lock_mode =
    match lock_mode with Some m -> m | None -> Lock.default_mode ()
  in
  let desc = Vptr.make_desc ~meta_of ~mode in
  {
    root = Vptr.make desc (Some (mk_leaf [||] [||]));
    rlock = Lock.create ~mode:lock_mode ~site:"btree.rlock" ();
    desc;
    lock_mode;
    rec_once = mode = Vptr.Rec_once;
  }

(* A slot is "the place a node is stored": the cell to swing plus the lock
   and liveness witness that guard it.  The root cell is a slot whose
   owner is never removed. *)
type slot = { s_lock : Lock.t; s_cell : node Vptr.t; s_live : unit -> bool }

let root_slot t = { s_lock = t.rlock; s_cell = t.root; s_live = (fun () -> true) }

let child_slot (p : inner) i =
  {
    s_lock = p.ilock;
    s_cell = p.children.(i);
    s_live = (fun () -> not (Fatomic.load p.iremoved));
  }

let load_cell cell =
  match Vptr.load cell with
  | Some n -> n
  | None -> failwith "Btree: null child cell (corrupt tree)"

(* Validation is by physical identity of the loaded node value, so all
   code paths must thread the original [node] they loaded (re-boxing a
   leaf or inner record would never compare equal). *)
let slot_holds (slot : slot) (expected : node) =
  slot.s_live ()
  && (match Vptr.load slot.s_cell with Some n -> n == expected | None -> false)

(* Child index for key [k]: first child whose interval contains [k]. *)
let child_index (p : inner) k =
  let n = Array.length p.ikeys in
  let rec go i = if i < n && k >= p.ikeys.(i) then go (i + 1) else i in
  go 0

let node_full = function
  | Leaf l -> Array.length l.lkeys >= leaf_max
  | Inner n -> Array.length n.children >= inner_max

let node_underfull = function
  | Leaf l -> Array.length l.lkeys < leaf_min
  | Inner n -> Array.length n.children < inner_min

(* --- pure array surgery on immutable nodes --------------------------- *)

let leaf_find (l : leaf) k =
  let n = Array.length l.lkeys in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let km = l.lkeys.(mid) in
      if km = k then Some l.lvals.(mid)
      else if km < k then go (mid + 1) hi
      else go lo mid
  in
  go 0 n

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let array_remove a i =
  let n = Array.length a in
  let b = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) b i (n - 1 - i);
  b

(* insertion position of k in sorted array *)
let lower_bound a k =
  let rec go i = if i < Array.length a && a.(i) < k then go (i + 1) else i in
  go 0

let leaf_with (l : leaf) k v =
  let i = lower_bound l.lkeys k in
  mk_leaf (array_insert l.lkeys i k) (array_insert l.lvals i v)

let leaf_without (l : leaf) k =
  let i = lower_bound l.lkeys k in
  mk_leaf (array_remove l.lkeys i) (array_remove l.lvals i)

let split_arrays keys vals =
  let n = Array.length keys in
  let mid = n / 2 in
  ( mk_leaf (Array.sub keys 0 mid) (Array.sub vals 0 mid),
    keys.(mid),
    mk_leaf (Array.sub keys mid (n - mid)) (Array.sub vals mid (n - mid)) )

(* Current children of an inner node; only safe while the node is locked
   (or the tree is quiescent). *)
let snapshot_children (p : inner) = Array.map load_cell p.children

(* Replace the [span] adjacent children of [p] starting at index [i] by
   [replacements], with [seps] as the separators between the replacements
   (so |seps| = |replacements| - 1), producing a fresh inner node.  The
   span-1 separators interior to the replaced range are dropped; the ones
   flanking it are kept. *)
let inner_rebuild t (p : inner) i ~span replacements seps =
  assert (Array.length seps = Array.length replacements - 1);
  let kids = snapshot_children p in
  let n = Array.length kids in
  let nreps = Array.length replacements in
  let kids' = Array.make (n - span + nreps) replacements.(0) in
  Array.blit kids 0 kids' 0 i;
  Array.blit replacements 0 kids' i nreps;
  Array.blit kids (i + span) kids' (i + nreps) (n - i - span);
  let keys' = Array.make (Array.length kids' - 1) 0 in
  Array.blit p.ikeys 0 keys' 0 i;
  Array.blit seps 0 keys' i (Array.length seps);
  Array.blit p.ikeys
    (i + span - 1)
    keys'
    (i + Array.length seps)
    (Array.length p.ikeys - (i + span - 1));
  mk_inner t keys' kids'

(* Merge children [i] and [i+1] of [p], producing the fresh inner node,
   after the caller has frozen both children. *)
let merge_or_share t (p : inner) i (a : node) (b : node) =
  match (a, b) with
  | Leaf la, Leaf lb ->
      let keys = Array.append la.lkeys lb.lkeys in
      let vals = Array.append la.lvals lb.lvals in
      if Array.length keys <= leaf_max then
        inner_rebuild t p i ~span:2 [| mk_leaf keys vals |] [||]
      else begin
        let l1, sep, l2 = split_arrays keys vals in
        inner_rebuild t p i ~span:2 [| l1; l2 |] [| sep |]
      end
  | Inner na, Inner nb ->
      let sep = p.ikeys.(i) in
      let kids = Array.append (snapshot_children na) (snapshot_children nb) in
      let keys = Array.concat [ na.ikeys; [| sep |]; nb.ikeys ] in
      if Array.length kids <= inner_max then
        inner_rebuild t p i ~span:2 [| mk_inner t keys kids |] [||]
      else begin
        let n = Array.length kids in
        let mid = n / 2 in
        let left = mk_inner t (Array.sub keys 0 (mid - 1)) (Array.sub kids 0 mid) in
        let right =
          mk_inner t (Array.sub keys mid (n - 1 - mid)) (Array.sub kids mid (n - mid))
        in
        inner_rebuild t p i ~span:2 [| left; right |] [| keys.(mid - 1) |]
      end
  | Leaf _, Inner _ | Inner _, Leaf _ ->
      failwith "Btree: siblings of different kinds (corrupt tree)"

let mark_removed (n : inner) = Fatomic.store n.iremoved true

(* --- structural repairs ----------------------------------------------
   Each repair validates under locks, replaces nodes with fresh copies and
   publishes with a single [store_locked] on the slot's cell.  Returning
   [false] means "validation failed or lock unavailable": the caller
   restarts from the root. *)

(* Split the full child at index [i] of [pnode] (an inner node stored in
   [pslot]): the parent gains a child, so the parent itself is rebuilt and
   published with one swing of [pslot]'s cell.

   Lock order is strictly top-down (pslot owner, then p, then the child),
   and every node whose cells are copied is marked removed while its own
   lock is held — after that point no leaf operation can pass validation
   under it, so the copies cannot lose updates. *)
let split_child t (pslot : slot) (pnode : node) (p : inner) i =
  Lock.try_lock_bool pslot.s_lock (fun () ->
      if not (slot_holds pslot pnode) then false
      else if Array.length p.children >= inner_max then false (* repair p first *)
      else
        match
          Lock.try_lock p.ilock (fun () ->
              match load_cell p.children.(i) with
              | Leaf l when Array.length l.lkeys >= leaf_max ->
                  let l1, sep, l2 = split_arrays l.lkeys l.lvals in
                  mark_removed p;
                  Some (inner_rebuild t p i ~span:1 [| l1; l2 |] [| sep |])
              | Inner c when Array.length c.children >= inner_max ->
                  Lock.try_lock c.ilock (fun () ->
                      let kids = snapshot_children c in
                      let n = Array.length kids in
                      let mid = n / 2 in
                      let left =
                        mk_inner t (Array.sub c.ikeys 0 (mid - 1)) (Array.sub kids 0 mid)
                      in
                      let right =
                        mk_inner t
                          (Array.sub c.ikeys mid (n - 1 - mid))
                          (Array.sub kids mid (n - mid))
                      in
                      mark_removed c;
                      mark_removed p;
                      inner_rebuild t p i ~span:1 [| left; right |] [| c.ikeys.(mid - 1) |])
              | Leaf _ | Inner _ -> None (* no longer full: nothing to do *))
        with
        | Some (Some replacement) ->
            Vptr.store_locked pslot.s_cell (Some replacement);
            true
        | Some None | None -> false)

(* Rebalance the under-occupied child at index [i] of [pnode] with its
   right (or left, at the boundary) sibling: merge or redistribute,
   rebuilding the parent. *)
let rebalance_child t (pslot : slot) (pnode : node) (p : inner) i =
  if Array.length p.children < 2 then false
  else begin
    let i = if i = Array.length p.children - 1 then i - 1 else i in
    Lock.try_lock_bool pslot.s_lock (fun () ->
        if not (slot_holds pslot pnode) then false
        else
          match
            Lock.try_lock p.ilock (fun () ->
                match (load_cell p.children.(i), load_cell p.children.(i + 1)) with
                | (Leaf _ as a), (Leaf _ as b) ->
                    if node_underfull a || node_underfull b then begin
                      mark_removed p;
                      Some (merge_or_share t p i a b)
                    end
                    else None
                | (Inner na as a), (Inner nb as b) ->
                    if node_underfull a || node_underfull b then
                      Lock.try_lock na.ilock (fun () ->
                          Lock.try_lock nb.ilock (fun () ->
                              mark_removed na;
                              mark_removed nb;
                              mark_removed p;
                              merge_or_share t p i a b))
                      |> Option.join
                    else None
                | Leaf _, Inner _ | Inner _, Leaf _ ->
                    failwith "Btree: siblings of different kinds")
          with
          | Some (Some replacement) ->
              Vptr.store_locked pslot.s_cell (Some replacement);
              true
          | Some None | None -> false)
  end

(* Root repairs: grow on a full root, shrink on a single-child root. *)
let repair_root t =
  ignore
    (Lock.try_lock t.rlock (fun () ->
         match load_cell t.root with
         | Leaf l when Array.length l.lkeys >= leaf_max ->
             let l1, sep, l2 = split_arrays l.lkeys l.lvals in
             Vptr.store_locked t.root (Some (mk_inner t [| sep |] [| l1; l2 |]))
         | Inner n when Array.length n.children >= inner_max -> begin
             match
               Lock.try_lock n.ilock (fun () ->
                   let kids = snapshot_children n in
                   let c = Array.length kids in
                   let mid = c / 2 in
                   let left = mk_inner t (Array.sub n.ikeys 0 (mid - 1)) (Array.sub kids 0 mid) in
                   let right =
                     mk_inner t (Array.sub n.ikeys mid (c - 1 - mid)) (Array.sub kids mid (c - mid))
                   in
                   mark_removed n;
                   mk_inner t [| n.ikeys.(mid - 1) |] [| left; right |])
             with
             | Some r -> Vptr.store_locked t.root (Some r)
             | None -> ()
           end
         | Inner n when Array.length n.children = 1 -> begin
             match
               Lock.try_lock n.ilock (fun () ->
                   let only = load_cell n.children.(0) in
                   mark_removed n;
                   (* re-recording [only] at the root is the one place the
                      paper's btree is not recorded-once; in RecOnce mode
                      copy it instead *)
                   if t.rec_once then
                     match only with
                     | Leaf l -> mk_leaf (Array.copy l.lkeys) (Array.copy l.lvals)
                     | Inner c -> mk_inner t (Array.copy c.ikeys) (snapshot_children c)
                   else only)
             with
             | Some r -> Vptr.store_locked t.root (Some r)
             | None -> ()
           end
         | Leaf _ | Inner _ -> ()))

(* --- finds ------------------------------------------------------------ *)

let rec find_in node k =
  match node with
  | Leaf l -> leaf_find l k
  | Inner p -> find_in (load_cell p.children.(child_index p k)) k

let find t k = find_in (load_cell t.root) k

(* --- updates ----------------------------------------------------------
   Descend eagerly repairing problematic children, then perform the leaf
   update under the leaf's slot lock.  Any validation failure restarts
   from the root (the repair that caused it made progress). *)

type op = Insert of int | Delete

(* Perform [op] on the leaf [lnode] stored in [lslot]; [None] means the
   situation changed (or the lock was contended) and the caller must
   restart from the root. *)
let leaf_op (lslot : slot) (lnode : node) (l : leaf) k op =
  Lock.try_lock lslot.s_lock (fun () ->
      if not (slot_holds lslot lnode) then None
      else
        match (op, leaf_find l k) with
        | Insert _, Some _ -> Some false (* already present *)
        | Delete, None -> Some false
        | Insert v, None ->
            if Array.length l.lkeys >= leaf_max then None (* split first *)
            else begin
              Vptr.store_locked lslot.s_cell (Some (leaf_with l k v));
              Some true
            end
        | Delete, Some _ ->
            Vptr.store_locked lslot.s_cell (Some (leaf_without l k));
            Some true)
  |> Option.join

let update t k op =
  (* [descend] returns [Some result] or [None] to restart from the root;
     each restart follows a repair (progress) or lock contention
     (backoff). *)
  let rec descend pslot node : bool option =
    match node with
    | Leaf l -> leaf_op pslot node l k op
    | Inner p ->
        if Fatomic.load p.iremoved then None
        else begin
          let i = child_index p k in
          let child = load_cell p.children.(i) in
          match op with
          | Insert _ when node_full child ->
              ignore (split_child t pslot node p i);
              None
          | Delete when node_underfull child ->
              ignore (rebalance_child t pslot node p i);
              None
          | Insert _ | Delete -> descend (child_slot p i) child
        end
  in
  let backoff = Flock.Backoff.create () in
  let rec attempt () =
    let r = load_cell t.root in
    let repair_needed =
      match (r, op) with
      | (Leaf _ as rl), Insert _ -> node_full rl
      | (Inner _ as ri), Insert _ -> node_full ri
      | Inner n, Delete -> Array.length n.children = 1
      | Leaf _, Delete -> false
    in
    if repair_needed then begin
      repair_root t;
      Flock.Backoff.once backoff;
      attempt ()
    end
    else
      match descend (root_slot t) r with
      | Some result -> result
      | None ->
          Flock.Backoff.once backoff;
          attempt ()
  in
  attempt ()

let insert t k v = Flock.with_epoch (fun () -> update t k (Insert v))

let delete t k = Flock.with_epoch (fun () -> update t k Delete)

(* --- queries ----------------------------------------------------------- *)

let fold_range t lo hi ~init ~f =
  Verlib.with_snapshot (fun () ->
      let rec go acc node =
        Verlib.Snapshot.check_abort ();
        match node with
        | Leaf l ->
            let acc = ref acc in
            for i = 0 to Array.length l.lkeys - 1 do
              let k = l.lkeys.(i) in
              if k >= lo && k <= hi then acc := f !acc k l.lvals.(i)
            done;
            !acc
        | Inner p ->
            (* child i covers [ikeys.(i-1), ikeys.(i)) *)
            let nkids = Array.length p.children in
            let acc = ref acc in
            for i = 0 to nkids - 1 do
              let child_lo = if i = 0 then min_int else p.ikeys.(i - 1) in
              let child_hi = if i = nkids - 1 then max_int else p.ikeys.(i) in
              if child_lo <= hi && (child_hi > lo || child_hi = max_int) then
                acc := go !acc (load_cell p.children.(i))
            done;
            !acc
      in
      go init (load_cell t.root))

let range t lo hi = Map_intf.range_as_list fold_range t lo hi

let range_count t lo hi = fold_range t lo hi ~init:0 ~f:(fun acc _ _ -> acc + 1)

let multifind t keys = Map_intf.multifind_via_snapshot find t keys

let scan t ~init ~f = Map_intf.scan_via_fold_range fold_range t ~init ~f

(* Census walk: the root cell plus every child cell, recursively.
   Passive ([Vptr.peek]): the census must not help, shortcut or
   truncate. *)
let iter_vptrs t emit =
  let rec walk cell =
    emit (Verlib.Chainscan.Target cell);
    match Vptr.peek cell with
    | None | Some (Leaf _) -> ()
    | Some (Inner n) -> Array.iter walk n.children
  in
  walk t.root

let shard_views t = Map_intf.single_shard_view name iter_vptrs t

let to_sorted_list t = range t min_int max_int

let size t = range_count t min_int max_int

(* --- invariant checking (quiescent) ------------------------------------ *)

let check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* returns depth *)
  let rec go node lo hi is_root =
    match node with
    | Leaf l ->
        let n = Array.length l.lkeys in
        if n <> Array.length l.lvals then fail "Btree.check: key/val length mismatch";
        if n > leaf_max then fail "Btree.check: leaf too large";
        if n = 0 && not is_root then fail "Btree.check: empty non-root leaf";
        for i = 0 to n - 1 do
          let k = l.lkeys.(i) in
          if i > 0 && l.lkeys.(i - 1) >= k then fail "Btree.check: leaf keys not sorted";
          if k < lo || k >= hi then fail "Btree.check: leaf key %d outside [%d,%d)" k lo hi
        done;
        1
    | Inner p ->
        let c = Array.length p.children in
        if c > inner_max then fail "Btree.check: inner too wide";
        if c < 2 then fail "Btree.check: inner with <2 children";
        if Array.length p.ikeys <> c - 1 then fail "Btree.check: key/child count mismatch";
        if Fatomic.load p.iremoved then fail "Btree.check: removed node reachable";
        Array.iteri
          (fun i k ->
            if k < lo || k >= hi then fail "Btree.check: separator outside range";
            if i > 0 && p.ikeys.(i - 1) >= k then fail "Btree.check: separators not sorted")
          p.ikeys;
        let depths =
          Array.to_list
            (Array.mapi
               (fun i cell ->
                 let clo = if i = 0 then lo else p.ikeys.(i - 1) in
                 let chi = if i = c - 1 then hi else p.ikeys.(i) in
                 go (load_cell cell) clo chi false)
               p.children)
        in
        (match depths with
         | d :: rest ->
             if not (List.for_all (fun x -> x = d) rest) then
               fail "Btree.check: unbalanced depths";
             d + 1
         | [] -> assert false)
  in
  ignore (go (load_cell t.root) min_int max_int true)

(* Debug aid: print the tree shape with occupancy and removal marks. *)
let debug_dump t =
  let rec go node indent =
    match node with
    | Leaf l ->
        Printf.printf "%sLeaf[%d]%s\n" indent (Array.length l.lkeys)
          (if Array.length l.lkeys = 0 then " EMPTY" else
           Printf.sprintf " %d..%d" l.lkeys.(0) l.lkeys.(Array.length l.lkeys - 1))
    | Inner p ->
        Printf.printf "%sInner[%d]%s keys=%s\n" indent (Array.length p.children)
          (if Fatomic.load p.iremoved then " REMOVED" else "")
          (String.concat "," (Array.to_list (Array.map string_of_int p.ikeys)));
        Array.iter (fun c -> go (load_cell c) (indent ^ "  ")) p.children
  in
  go (load_cell t.root) ""
