module IntMap = Map.Make (Int)

let name = "coarse"

let range_capability = Map_intf.Ordered_range

let supports_mode (m : Verlib.Vptr.mode) = m = Verlib.Vptr.Plain

type t = { mutable map : int IntMap.t; rw : Rwlock.t }

let create ?mode:_ ?lock_mode:_ ~n_hint:_ () = { map = IntMap.empty; rw = Rwlock.create () }

let insert t k v =
  Rwlock.with_write t.rw (fun () ->
      if IntMap.mem k t.map then false
      else begin
        t.map <- IntMap.add k v t.map;
        true
      end)

let delete t k =
  Rwlock.with_write t.rw (fun () ->
      if IntMap.mem k t.map then begin
        t.map <- IntMap.remove k t.map;
        true
      end
      else false)

let find t k = Rwlock.with_read t.rw (fun () -> IntMap.find_opt k t.map)

let range t lo hi =
  Rwlock.with_read t.rw (fun () ->
      let rec collect acc seq =
        match seq () with
        | Seq.Cons ((k, v), rest) when k <= hi -> collect ((k, v) :: acc) rest
        | Seq.Cons _ | Seq.Nil -> List.rev acc
      in
      collect [] (IntMap.to_seq_from lo t.map))

let range_count t lo hi = List.length (range t lo hi)

let multifind t keys =
  Rwlock.with_read t.rw (fun () -> Array.map (fun k -> IntMap.find_opt k t.map) keys)

let scan t ~init ~f =
  Rwlock.with_read t.rw (fun () -> IntMap.fold (fun k v acc -> f acc k v) t.map init)

let size t = Rwlock.with_read t.rw (fun () -> IntMap.cardinal t.map)

let to_sorted_list t = Rwlock.with_read t.rw (fun () -> IntMap.bindings t.map)

(* No versioned pointers: a reader-writer-locked functional map. *)
let iter_vptrs (_ : t) (_ : Verlib.Chainscan.target -> unit) = ()

let shard_views t = Map_intf.single_shard_view name iter_vptrs t

let check (_ : t) = ()
