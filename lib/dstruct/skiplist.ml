module Vptr = Verlib.Vptr
module Fatomic = Flock.Fatomic
module Lock = Flock.Lock

let name = "skiplist"

let range_capability = Map_intf.Ordered_range

let supports_mode (m : Vptr.mode) = m <> Vptr.Rec_once

let max_levels = 20

(* Every level's next pointer is versioned: snapshot queries use the upper
   levels to position themselves, so those pointers are "followed by
   queries" in the sense of §3.1 and must be part of the snapshot.  The
   towers also make this structure a showcase for indirection-on-need:
   linking an (already claimed) node into a higher level is exactly the
   metadata-sharing situation of Figure 1, resolved with an indirect link
   that shortcutting later removes. *)
type node = {
  key : int;
  value : int;
  nexts : node Vptr.t array; (* index = level; length = tower height *)
  removed : bool Fatomic.t; (* set at the level-0 splice (under locks) *)
  tearing : bool Fatomic.t; (* removal announced; uppers being unlinked *)
  lock : Lock.t;
  meta : node Verlib.Vtypes.meta;
}

type t = {
  head : node;
  tail : node;
  desc : node Vptr.desc;
  lock_mode : Lock.mode;
  level_rng : Workload.Splitmix.t Domain.DLS.key;
}

let height n = Array.length n.nexts

let make_node desc lock_mode key value ~levels ~next =
  {
    key;
    value;
    nexts = Array.init levels (fun i -> Vptr.make desc (next i));
    removed = Fatomic.make false;
    tearing = Fatomic.make false;
    lock = Lock.create ~mode:lock_mode ();
    meta = Verlib.Vtypes.fresh_meta ();
  }

let create ?(mode = Vptr.Ind_on_need) ?lock_mode ~n_hint:_ () =
  let lock_mode =
    match lock_mode with Some m -> m | None -> Lock.default_mode ()
  in
  let desc = Vptr.make_desc ~meta_of:(fun n -> n.meta) ~mode in
  let tail =
    make_node desc lock_mode max_int 0 ~levels:max_levels ~next:(fun _ -> None)
  in
  let head =
    make_node desc lock_mode min_int 0 ~levels:max_levels ~next:(fun _ -> Some tail)
  in
  {
    head;
    tail;
    desc;
    lock_mode;
    level_rng =
      Domain.DLS.new_key (fun () ->
          Workload.Splitmix.create (1 + Flock.Registry.my_id ()));
  }

(* Geometric tower heights with p = 1/2. *)
let random_levels t =
  let rng = Domain.DLS.get t.level_rng in
  let rec go l =
    if l < max_levels && Workload.Splitmix.below rng 2 = 0 then go (l + 1) else l
  in
  go 1

(* Predecessor of [k] at each level (preds.(l).key < k).  All loads are
   versioned, so inside a snapshot the walk observes the tower structure
   as of the snapshot's stamp. *)
let find_preds t k =
  let preds = Array.make max_levels t.head in
  let rec go node level =
    let rec advance node =
      match Vptr.load node.nexts.(level) with
      | Some nxt when nxt.key < k -> advance nxt
      | Some _ | None -> node
    in
    let node = advance node in
    preds.(level) <- node;
    if level > 0 then go node (level - 1)
  in
  go t.head (max_levels - 1);
  preds

let find t k =
  let preds = find_preds t k in
  match Vptr.load preds.(0).nexts.(0) with
  | Some n when n.key = k -> Some n.value
  | Some _ | None -> None

let is_node n = function Some m -> m == n | None -> false

let check_key k =
  if k <= min_int || k >= max_int then invalid_arg "Skiplist: key out of range"

(* Ordering discipline, for snapshot soundness of [find_preds]: a node is
   linked bottom-up and unlinked top-down, so every upper-level link's
   version interval is contained in the node's level-0 interval.  A
   snapshot that reaches a node through an upper level therefore always
   finds that node's level-0 pointers live at its stamp, and the level-0
   walk cannot skip concurrently inserted keys.

   Splice [node] into level [level] after a valid predecessor; the upper
   levels are retried a few times and otherwise abandoned — they are
   search accelerators, level 0 alone defines the contents. *)
let link_level t node level =
  let rec attempt tries =
    if tries > 0 && not (Fatomic.load node.tearing) then begin
      let preds = find_preds t node.key in
      let p = preds.(level) in
      let ok =
        Lock.try_lock_bool p.lock (fun () ->
            if Fatomic.load p.removed then false
            else
              match Vptr.load p.nexts.(level) with
              | Some s when s == node -> true (* already linked *)
              | Some s when s.key > node.key && not (Fatomic.load node.tearing) ->
                  Vptr.store_locked node.nexts.(level) (Some s);
                  Vptr.store_locked p.nexts.(level) (Some node);
                  true
              | Some _ | None -> false)
      in
      if not ok then attempt (tries - 1)
    end
  in
  attempt 3

(* Remove [node] from level [level] and do not return until its absence
   has been confirmed {e under the predecessor's lock}.  The locked
   confirmation is what makes the tearing handshake airtight: an in-flight
   linker holds the same lock while it checks [tearing] and commits, so
   either the linker commits first (and this pass, serialized after it,
   sees and removes the link) or this pass confirms absence first (and the
   linker's subsequent in-lock [tearing] check forbids the commit). *)
let unlink_level t node level =
  let backoff = Flock.Backoff.create () in
  let rec confirm () =
    let preds = find_preds t node.key in
    let p = preds.(level) in
    let verdict =
      Lock.try_lock p.lock (fun () ->
          if Fatomic.load p.removed then `Shifted
          else
            match Vptr.load p.nexts.(level) with
            | Some s when s == node ->
                Vptr.store_locked p.nexts.(level) (Vptr.load node.nexts.(level));
                `Gone
            | Some s when s.key > node.key || (s.key = node.key && s != node) ->
                `Gone (* position for node's key is occupied by another/none *)
            | None -> `Gone
            | Some _ -> `Shifted (* list moved under us; re-locate *))
    in
    match verdict with
    | Some `Gone -> ()
    | Some `Shifted | None ->
        Flock.Backoff.once backoff;
        confirm ()
  in
  confirm ()

let unlink_upper t node =
  for level = height node - 1 downto 1 do
    unlink_level t node level
  done

let link_upper t node =
  for level = 1 to height node - 1 do
    link_level t node level
  done;
  (* close the link/delete race: if removal was announced while we were
     linking, finish the unlinking on its behalf (whichever of the two
     passes runs last sees the other's work) *)
  if Fatomic.load node.tearing then unlink_upper t node

let insert t k v =
  check_key k;
  Flock.with_epoch (fun () ->
      let backoff = Flock.Backoff.create () in
      let rec loop () =
        let preds = find_preds t k in
        let pred = preds.(0) in
        match Vptr.load pred.nexts.(0) with
        | Some succ when succ.key = k -> false
        | succ_opt -> (
            let succ = match succ_opt with Some s -> s | None -> t.tail in
            let levels = random_levels t in
            let outcome =
              Lock.try_lock pred.lock (fun () ->
                  if
                    Fatomic.load pred.removed
                    || not (is_node succ (Vptr.load pred.nexts.(0)))
                  then `Retry
                  else begin
                    let node =
                      Flock.new_obj (fun () ->
                          make_node t.desc t.lock_mode k v ~levels ~next:(fun i ->
                              if i = 0 then Some succ else None))
                    in
                    (* linearization point *)
                    Vptr.store_locked pred.nexts.(0) (Some node);
                    `Done node
                  end)
            in
            match outcome with
            | Some (`Done node) ->
                if height node > 1 then link_upper t node;
                true
            | Some `Retry | None ->
                Flock.Backoff.once backoff;
                loop ())
      in
      loop ())

let delete t k =
  check_key k;
  Flock.with_epoch (fun () ->
      let backoff = Flock.Backoff.create () in
      let rec loop () =
        let preds = find_preds t k in
        let pred = preds.(0) in
        match Vptr.load pred.nexts.(0) with
        | Some victim when victim.key = k -> (
            (* announce, then unlink top-down, then splice level 0: upper
               links must disappear (version-wise) before the level-0
               presence does *)
            Fatomic.store victim.tearing true;
            if height victim > 1 then unlink_upper t victim;
            let outcome =
              Lock.try_lock pred.lock (fun () ->
                  if
                    Fatomic.load pred.removed
                    || not (is_node victim (Vptr.load pred.nexts.(0)))
                  then `Retry
                  else
                    match
                      Lock.try_lock victim.lock (fun () ->
                          Fatomic.store victim.removed true;
                          (* linearization point *)
                          Vptr.store_locked pred.nexts.(0)
                            (Vptr.load victim.nexts.(0)))
                    with
                    | Some () -> `Done
                    | None -> `Retry)
            in
            match outcome with
            | Some `Done -> true
            | Some `Retry | None ->
                Flock.Backoff.once backoff;
                loop ())
        | Some _ | None -> false
      in
      loop ())

let fold_range t lo hi ~init ~f =
  Verlib.with_snapshot (fun () ->
      let start = find_preds t lo in
      let rec collect acc node =
        match Vptr.load node.nexts.(0) with
        | Some n when n.key <= hi && n.key <> max_int ->
            Verlib.Snapshot.check_abort ();
            collect (f acc n.key n.value) n
        | Some _ | None -> acc
      in
      collect init start.(0))

let range t lo hi = Map_intf.range_as_list fold_range t lo hi

let range_count t lo hi = fold_range t lo hi ~init:0 ~f:(fun acc _ _ -> acc + 1)

let multifind t keys = Map_intf.multifind_via_snapshot find t keys

let scan t ~init ~f = Map_intf.scan_via_fold_range fold_range t ~init ~f

(* Census walk: every tower cell of every node reachable at level 0 —
   the level where all nodes appear.  Passive ([Vptr.peek]). *)
let iter_vptrs t emit =
  let rec walk n =
    Array.iter (fun c -> emit (Verlib.Chainscan.Target c)) n.nexts;
    if n.key <> max_int then
      match Vptr.peek n.nexts.(0) with Some m -> walk m | None -> ()
  in
  walk t.head

let to_sorted_list t =
  let rec collect acc node =
    match Vptr.load node.nexts.(0) with
    | Some n when n.key <> max_int -> collect ((n.key, n.value) :: acc) n
    | Some _ | None -> List.rev acc
  in
  collect [] t.head

let size t = List.length (to_sorted_list t)

(* Quiescent invariants: level 0 sorted with no removed nodes; each upper
   level a sorted sublist of level 0. *)
let check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let level0 = Hashtbl.create 256 in
  let rec walk0 node =
    match Vptr.load node.nexts.(0) with
    | Some n when n.key <> max_int ->
        if Fatomic.load n.removed then
          fail "Skiplist.check: removed node reachable at level 0";
        if n.key <= node.key then fail "Skiplist.check: level-0 keys not increasing";
        Hashtbl.replace level0 n.key ();
        walk0 n
    | Some _ | None -> ()
  in
  walk0 t.head;
  for level = 1 to max_levels - 1 do
    let rec walk node prev_key =
      match Vptr.load node.nexts.(level) with
      | Some n when n.key <> max_int ->
          if n.key <= prev_key then fail "Skiplist.check: level %d not sorted" level;
          if not (Hashtbl.mem level0 n.key) then
            fail "Skiplist.check: level %d key %d missing from level 0" level n.key;
          walk n n.key
      | Some _ | None -> ()
    in
    walk t.head min_int
  done
