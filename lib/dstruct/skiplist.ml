module Vptr = Verlib.Vptr
module Fatomic = Flock.Fatomic
module Lock = Flock.Lock

let name = "skiplist"

let range_capability = Map_intf.Ordered_range

let supports_mode (m : Vptr.mode) = m <> Vptr.Rec_once

let max_levels = 20

(* Every level's next pointer is versioned: snapshot queries use the upper
   levels to position themselves, so those pointers are "followed by
   queries" in the sense of §3.1 and must be part of the snapshot.  The
   towers also make this structure a showcase for indirection-on-need:
   linking an (already claimed) node into a higher level is exactly the
   metadata-sharing situation of Figure 1, resolved with an indirect link
   that shortcutting later removes. *)
type node = {
  key : int;
  value : int;
  nexts : node Vptr.t array; (* index = level; length = tower height *)
  removed : bool Fatomic.t; (* set at the level-0 splice (under locks) *)
  unlinked : bool Fatomic.t array;
  (* [unlinked.(l)]: this node has been spliced out of level [l] (set
     under both splice locks, monotone — a torn node is never re-linked).
     The upper-level analogue of [removed]: "p not removed" alone does NOT
     witness that p is still reachable at level l, because deletion
     unlinks the uppers first and sets [removed] only at the level-0
     splice.  Without this flag, an unlink pass with a stale predecessor
     can splice against an already-unlinked chain and silently miss its
     victim, leaving a fully-deleted node permanently reachable at an
     upper level — a ghost on which every later [find_preds] below it
     spins. *)
  tearing : bool Fatomic.t; (* removal announced; uppers being unlinked *)
  lock : Lock.t;
  meta : node Verlib.Vtypes.meta;
}

type t = {
  head : node;
  tail : node;
  desc : node Vptr.desc;
  lock_mode : Lock.mode;
  level_rng : Workload.Splitmix.t Domain.DLS.key;
}

let height n = Array.length n.nexts

let make_node desc lock_mode key value ~levels ~next =
  {
    key;
    value;
    nexts = Array.init levels (fun i -> Vptr.make desc (next i));
    removed = Fatomic.make false;
    unlinked = Array.init levels (fun _ -> Fatomic.make false);
    tearing = Fatomic.make false;
    lock = Lock.create ~mode:lock_mode ~site:"skiplist.lock" ();
    meta = Verlib.Vtypes.fresh_meta ();
  }

let create ?(mode = Vptr.Ind_on_need) ?lock_mode ~n_hint:_ () =
  let lock_mode =
    match lock_mode with Some m -> m | None -> Lock.default_mode ()
  in
  let desc = Vptr.make_desc ~meta_of:(fun n -> n.meta) ~mode in
  let tail =
    make_node desc lock_mode max_int 0 ~levels:max_levels ~next:(fun _ -> None)
  in
  let head =
    make_node desc lock_mode min_int 0 ~levels:max_levels ~next:(fun _ -> Some tail)
  in
  {
    head;
    tail;
    desc;
    lock_mode;
    level_rng =
      Domain.DLS.new_key (fun () ->
          Workload.Splitmix.create (1 + Flock.Registry.my_id ()));
  }

(* Geometric tower heights with p = 1/2. *)
let random_levels t =
  let rng = Domain.DLS.get t.level_rng in
  let rec go l =
    if l < max_levels && Workload.Splitmix.below rng 2 = 0 then go (l + 1) else l
  in
  go 1

(* Predecessor of [k] at each level (preds.(l).key < k).  All loads are
   versioned, so inside a snapshot the walk observes the tower structure
   as of the snapshot's stamp. *)
let find_preds t k =
  let preds = Array.make max_levels t.head in
  let rec go node level =
    let rec advance node =
      match Vptr.load node.nexts.(level) with
      | Some nxt when nxt.key < k -> advance nxt
      | Some _ | None -> node
    in
    let node = advance node in
    preds.(level) <- node;
    if level > 0 then go node (level - 1)
  in
  go t.head (max_levels - 1);
  preds

(* The level-0 walk continues from [preds.(0)] rather than trusting a
   single reload: between [find_preds]'s last load and a re-load of
   [preds.(0).nexts.(0)], a concurrent insert can place a key from
   (preds.(0).key, k) after the predecessor, so the re-load may surface a
   {e smaller} key.  Point operations outside snapshots must treat that
   as "keep walking" (or retry), never as evidence about [k]. *)
let find t k =
  let preds = find_preds t k in
  let rec go node =
    match Vptr.load node.nexts.(0) with
    | Some n when n.key < k -> go n
    | Some n when n.key = k -> Some n.value
    | Some _ | None -> None
  in
  go preds.(0)

let is_node n = function Some m -> m == n | None -> false

let check_key k =
  if k <= min_int || k >= max_int then invalid_arg "Skiplist: key out of range"

(* Ordering discipline, for snapshot soundness of [find_preds]: a node is
   linked bottom-up and unlinked top-down, so every upper-level link's
   version interval is contained in the node's level-0 interval.  A
   snapshot that reaches a node through an upper level therefore always
   finds that node's level-0 pointers live at its stamp, and the level-0
   walk cannot skip concurrently inserted keys.

   Splice [node] into level [level] after a valid predecessor; the upper
   levels are retried a few times and otherwise abandoned — they are
   search accelerators, level 0 alone defines the contents.  Returns
   whether the level is linked, so [link_upper] can keep towers {e prefix
   contiguous}: a node occupies levels [0..k] with no holes.  This is not
   cosmetic.  [find_preds] descends by walking level [l] starting from
   the predecessor it found at level [l+1], which is only sound if
   "reachable at [l+1] implies reachable at [l]" — a hole-y tower
   (linked at 2, abandoned at 1) breaks it: the hole node passes the
   liveness validation below yet its level-1 pointer is a vacuous [None],
   so an unlink pass descending through it confirms its victim absent
   while the victim is live in the real level-1 chain, leaving a
   fully-deleted ghost permanently reachable there (and every later walk
   below the ghost spinning on dead predecessors). *)
let link_level t node level =
  let rec attempt tries =
    if tries > 0 && not (Fatomic.load node.tearing) then begin
      let preds = find_preds t node.key in
      let p = preds.(level) in
      let ok =
        Lock.try_lock_bool p.lock (fun () ->
            if Fatomic.load p.removed || Fatomic.load p.unlinked.(level) then
              false (* p is no longer reachable at this level *)
            else
              match Vptr.load p.nexts.(level) with
              | Some s when s == node -> true (* already linked *)
              | Some s when s.key > node.key && not (Fatomic.load node.tearing) ->
                  Vptr.store_locked node.nexts.(level) (Some s);
                  Vptr.store_locked p.nexts.(level) (Some node);
                  true
              | Some _ | None -> false)
      in
      if ok then true else attempt (tries - 1)
    end
    else false
  in
  attempt 3

(* Remove [node] from level [level] and do not return until its absence
   has been confirmed {e under the predecessor's lock}.  The locked
   confirmation is what makes the tearing handshake airtight: an in-flight
   linker holds the same lock while it checks [tearing] and commits, so
   either the linker commits first (and this pass, serialized after it,
   sees and removes the link) or this pass confirms absence first (and the
   linker's subsequent in-lock [tearing] check forbids the commit).

   "The same lock" is only guaranteed because both sides re-validate that
   their predecessor is still live at this level ([removed] and
   [unlinked.(level)]): the reachable chain at a level is sorted, so two
   passes that each hold a {e live} predecessor of the same key hold the
   {e same} predecessor.  A stale (already unlinked) predecessor would let
   the two passes lock different nodes and miss each other. *)
let unlink_level t node level =
  let backoff = Flock.Backoff.create () in
  let rec confirm () =
    let preds = find_preds t node.key in
    let p = preds.(level) in
    let verdict =
      Lock.try_lock p.lock (fun () ->
          if Fatomic.load p.removed || Fatomic.load p.unlinked.(level) then
            (* p itself left this level between our walk and the lock:
               confirming [node]'s absence against p's (now orphaned)
               chain would be meaningless — re-locate on the live chain. *)
            `Shifted
          else
            match Vptr.load p.nexts.(level) with
            | Some s when s == node -> (
                (* Splice under BOTH locks.  [node.nexts.(level)] is
                   written by the unlink of [node]'s successor (which
                   holds [node.lock] as its predecessor lock), so reading
                   it with only [p.lock] races: a stale read here would
                   re-link an already-unlinked successor — a fully deleted
                   ghost permanently reachable at this level, on which
                   later unlink/link passes spin forever.  Nesting
                   [node.lock] (ascending key order, the same pred→victim
                   discipline [delete] uses at level 0; [try_lock] never
                   blocks, so lock-order cycles cannot deadlock) makes
                   read-and-splice atomic wrt successor unlinks. *)
                match
                  Lock.try_lock node.lock (fun () ->
                      Fatomic.store node.unlinked.(level) true;
                      Vptr.store_locked p.nexts.(level)
                        (Vptr.load node.nexts.(level)))
                with
                | Some () -> `Gone
                | None -> `Shifted)
            | Some s when s.key > node.key || (s.key = node.key && s != node) ->
                `Gone (* position for node's key is occupied by another/none *)
            | None -> `Gone
            | Some _ -> `Shifted (* list moved under us; re-locate *))
    in
    match verdict with
    | Some `Gone -> ()
    | Some `Shifted | None ->
        Flock.Backoff.once backoff;
        confirm ()
  in
  confirm ()

let unlink_upper t node =
  for level = height node - 1 downto 1 do
    unlink_level t node level
  done

let link_upper t node =
  (* Stop at the first abandoned level: towers are prefix contiguous
     (see [link_level]); giving up on level [l] gives up on [l+1..]. *)
  let rec go level =
    if level < height node && link_level t node level then go (level + 1)
  in
  go 1;
  (* close the link/delete race: if removal was announced while we were
     linking, finish the unlinking on its behalf (whichever of the two
     passes runs last sees the other's work) *)
  if Fatomic.load node.tearing then unlink_upper t node

let insert t k v =
  check_key k;
  Flock.with_epoch (fun () ->
      let backoff = Flock.Backoff.create () in
      let rec loop () =
        let preds = find_preds t k in
        let pred = preds.(0) in
        match Vptr.load pred.nexts.(0) with
        | Some succ when succ.key = k -> false
        | Some succ when succ.key < k ->
            (* [pred] went stale between the walk and this load (see
               [find]): a key in (pred.key, k) slid in behind it.
               Committing here would order [k] before that key and
               corrupt level 0 — re-locate instead. *)
            Flock.Backoff.once backoff;
            loop ()
        | succ_opt -> (
            let succ = match succ_opt with Some s -> s | None -> t.tail in
            let levels = random_levels t in
            let outcome =
              Lock.try_lock pred.lock (fun () ->
                  if
                    Fatomic.load pred.removed
                    || not (is_node succ (Vptr.load pred.nexts.(0)))
                  then `Retry
                  else begin
                    let node =
                      Flock.new_obj (fun () ->
                          make_node t.desc t.lock_mode k v ~levels ~next:(fun i ->
                              if i = 0 then Some succ else None))
                    in
                    (* linearization point *)
                    Vptr.store_locked pred.nexts.(0) (Some node);
                    `Done node
                  end)
            in
            match outcome with
            | Some (`Done node) ->
                if height node > 1 then link_upper t node;
                true
            | Some `Retry | None ->
                Flock.Backoff.once backoff;
                loop ())
      in
      loop ())

let delete t k =
  check_key k;
  Flock.with_epoch (fun () ->
      let backoff = Flock.Backoff.create () in
      let rec loop () =
        let preds = find_preds t k in
        let pred = preds.(0) in
        match Vptr.load pred.nexts.(0) with
        | Some n when n.key < k ->
            (* stale predecessor (see [find]): this load says nothing
               about [k]'s presence — re-locate *)
            Flock.Backoff.once backoff;
            loop ()
        | Some victim when victim.key = k -> (
            (* announce, then unlink top-down, then splice level 0: upper
               links must disappear (version-wise) before the level-0
               presence does *)
            Fatomic.store victim.tearing true;
            if height victim > 1 then unlink_upper t victim;
            let outcome =
              Lock.try_lock pred.lock (fun () ->
                  if
                    Fatomic.load pred.removed
                    || not (is_node victim (Vptr.load pred.nexts.(0)))
                  then `Retry
                  else
                    match
                      Lock.try_lock victim.lock (fun () ->
                          Fatomic.store victim.removed true;
                          (* linearization point *)
                          Vptr.store_locked pred.nexts.(0)
                            (Vptr.load victim.nexts.(0)))
                    with
                    | Some () -> `Done
                    | None -> `Retry)
            in
            match outcome with
            | Some `Done -> true
            | Some `Retry | None ->
                Flock.Backoff.once backoff;
                loop ())
        | Some _ | None -> false
      in
      loop ())

let fold_range t lo hi ~init ~f =
  Verlib.with_snapshot (fun () ->
      let start = find_preds t lo in
      let rec collect acc node =
        match Vptr.load node.nexts.(0) with
        | Some n when n.key <= hi && n.key <> max_int ->
            Verlib.Snapshot.check_abort ();
            collect (f acc n.key n.value) n
        | Some _ | None -> acc
      in
      collect init start.(0))

let range t lo hi = Map_intf.range_as_list fold_range t lo hi

let range_count t lo hi = fold_range t lo hi ~init:0 ~f:(fun acc _ _ -> acc + 1)

let multifind t keys = Map_intf.multifind_via_snapshot find t keys

let scan t ~init ~f = Map_intf.scan_via_fold_range fold_range t ~init ~f

(* Census walk: every tower cell of every node reachable at level 0 —
   the level where all nodes appear.  Passive ([Vptr.peek]). *)
let iter_vptrs t emit =
  let rec walk n =
    Array.iter (fun c -> emit (Verlib.Chainscan.Target c)) n.nexts;
    if n.key <> max_int then
      match Vptr.peek n.nexts.(0) with Some m -> walk m | None -> ()
  in
  walk t.head

let shard_views t = Map_intf.single_shard_view name iter_vptrs t

let to_sorted_list t =
  let rec collect acc node =
    match Vptr.load node.nexts.(0) with
    | Some n when n.key <> max_int -> collect ((n.key, n.value) :: acc) n
    | Some _ | None -> List.rev acc
  in
  collect [] t.head

let size t = List.length (to_sorted_list t)

(* Quiescent invariants: level 0 sorted with no removed nodes; each upper
   level a sorted sublist of level 0. *)
let check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let level0 = Hashtbl.create 256 in
  let rec walk0 node =
    match Vptr.load node.nexts.(0) with
    | Some n when n.key <> max_int ->
        if Fatomic.load n.removed then
          fail "Skiplist.check: removed node reachable at level 0";
        if n.key <= node.key then fail "Skiplist.check: level-0 keys not increasing";
        Hashtbl.replace level0 n.key ();
        walk0 n
    | Some _ | None -> ()
  in
  walk0 t.head;
  for level = 1 to max_levels - 1 do
    let rec walk node prev_key =
      match Vptr.load node.nexts.(level) with
      | Some n when n.key <> max_int ->
          if n.key <= prev_key then fail "Skiplist.check: level %d not sorted" level;
          if not (Hashtbl.mem level0 n.key) then
            fail "Skiplist.check: level %d key %d missing from level 0" level n.key;
          walk n n.key
      | Some _ | None -> ()
    in
    walk t.head min_int
  done
