(** Common interface of the concurrent maps used in the experiments.

    All maps go from [int] keys to [int] values (the paper uses 64-bit
    keys and values).  Every operation is safe to call from any domain.
    [range] and [multifind] are linearizable on structures built in a
    versioned mode; on [Plain] structures they are best-effort, exactly as
    in the paper's non-versioned baselines. *)

(** What multi-point queries a structure can serve — a typed capability
    rather than a bool, so consumers (the wire server, the benchmark
    harness, the tests) dispatch with an exhaustive match instead of
    guessing what [false] implied. *)
type range_capability =
  | Ordered_range
      (** Keys are ordered: [range] / [range_count] work (and are
          linearizable in versioned modes). *)
  | Unordered
      (** No key order: [range] raises [Invalid_argument]; multi-point
          reads go through [multifind] or the [scan] snapshot fold. *)

let range_capability_name = function
  | Ordered_range -> "ordered-range"
  | Unordered -> "unordered"

module type MAP = sig
  type t

  val name : string

  val create :
    ?mode:Verlib.Vptr.mode -> ?lock_mode:Flock.Lock.mode -> n_hint:int -> unit -> t
  (** [n_hint] sizes fixed parts (e.g. hash buckets).  [mode] defaults to
      [Ind_on_need], [lock_mode] to the Flock default. *)

  val insert : t -> int -> int -> bool
  (** [insert t k v] returns [false] if [k] was already present (no
      update occurs, as in the paper's workloads). *)

  val delete : t -> int -> bool

  val find : t -> int -> int option

  val range : t -> int -> int -> (int * int) list
  (** [range t k1 k2]: all bindings with [k1 <= k <= k2], ascending. *)

  val range_count : t -> int -> int -> int
  (** Allocation-light [range] for benchmarks. *)

  val multifind : t -> int array -> int option array
  (** Atomic batch of finds. *)

  val scan : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
  (** Snapshot-consistent fold over every binding, in unspecified order —
      the multi-point read that works on {e every} structure, including
      unordered ones ([range_capability = Unordered]).  On versioned
      structures the whole fold runs against one atomic snapshot; on
      [Plain] baselines it is best-effort, like [range]. *)

  val size : t -> int

  val to_sorted_list : t -> (int * int) list

  val check : t -> unit
  (** Validate structural invariants; raises [Failure] on violation.
      Call at quiescence. *)

  val iter_vptrs : t -> (Verlib.Chainscan.target -> unit) -> unit
  (** Emit every versioned pointer currently reachable in the structure,
      for the {!Verlib.Chainscan} census.  The walk must be passive
      ([Verlib.Vptr.peek], never [load]) so observing does not perturb
      the shortcut/truncation mechanisms under observation.  Safe to run
      concurrently with mutators (may miss in-flight nodes); emits
      nothing on structures without versioned pointers. *)

  val shard_views : t -> (string * ((Verlib.Chainscan.target -> unit) -> unit)) list
  (** Named census walkers, one per independently meaningful partition
      of the structure.  Monolithic structures return a singleton
      [(name, iter_vptrs t)]; [Sharded] returns one view per shard
      ([shard-0], [shard-1], ...) so the server's [STATS] can expose a
      per-shard chain-census breakdown.  Same passivity contract as
      {!iter_vptrs}. *)

  val range_capability : range_capability

  val supports_mode : Verlib.Vptr.mode -> bool
end

(** Shared helper: linearizable multifind as a snapshot over finds, the
    way §8 implements multi-finds for all four structures. *)
let multifind_via_snapshot find t keys =
  Verlib.with_snapshot (fun () -> Array.map (fun k -> find t k) keys)

(** Shared helper: range via collecting fold. *)
let range_as_list fold_range t lo hi =
  List.rev (fold_range t lo hi ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

(** Shared helper: [scan] for ordered structures whose [fold_range] is
    already snapshot-wrapped — a whole-keyspace fold. *)
let scan_via_fold_range ?(lo = min_int) fold_range t ~init ~f =
  fold_range t lo max_int ~init ~f

(** Shared helper: the singleton {!MAP.shard_views} of a monolithic
    structure. *)
let single_shard_view name iter_vptrs t = [ (name, fun f -> iter_vptrs t f) ]

(** Shared helper: [scan] for unordered structures with a plain (racy)
    structural fold — wrapping it in one snapshot makes the whole walk
    atomic, the same construction as {!multifind_via_snapshot}. *)
let scan_via_snapshot fold t ~init ~f =
  Verlib.with_snapshot (fun () -> fold t ~init ~f)
