(** Common interface of the concurrent maps used in the experiments.

    All maps go from [int] keys to [int] values (the paper uses 64-bit
    keys and values).  Every operation is safe to call from any domain.
    [range] and [multifind] are linearizable on structures built in a
    versioned mode; on [Plain] structures they are best-effort, exactly as
    in the paper's non-versioned baselines. *)

module type MAP = sig
  type t

  val name : string

  val create :
    ?mode:Verlib.Vptr.mode -> ?lock_mode:Flock.Lock.mode -> n_hint:int -> unit -> t
  (** [n_hint] sizes fixed parts (e.g. hash buckets).  [mode] defaults to
      [Ind_on_need], [lock_mode] to the Flock default. *)

  val insert : t -> int -> int -> bool
  (** [insert t k v] returns [false] if [k] was already present (no
      update occurs, as in the paper's workloads). *)

  val delete : t -> int -> bool

  val find : t -> int -> int option

  val range : t -> int -> int -> (int * int) list
  (** [range t k1 k2]: all bindings with [k1 <= k <= k2], ascending. *)

  val range_count : t -> int -> int -> int
  (** Allocation-light [range] for benchmarks. *)

  val multifind : t -> int array -> int option array
  (** Atomic batch of finds. *)

  val size : t -> int

  val to_sorted_list : t -> (int * int) list

  val check : t -> unit
  (** Validate structural invariants; raises [Failure] on violation.
      Call at quiescence. *)

  val iter_vptrs : t -> (Verlib.Chainscan.target -> unit) -> unit
  (** Emit every versioned pointer currently reachable in the structure,
      for the {!Verlib.Chainscan} census.  The walk must be passive
      ([Verlib.Vptr.peek], never [load]) so observing does not perturb
      the shortcut/truncation mechanisms under observation.  Safe to run
      concurrently with mutators (may miss in-flight nodes); emits
      nothing on structures without versioned pointers. *)

  val supports_range : bool

  val supports_mode : Verlib.Vptr.mode -> bool
end

(** Shared helper: linearizable multifind as a snapshot over finds, the
    way §8 implements multi-finds for all four structures. *)
let multifind_via_snapshot find t keys =
  Verlib.with_snapshot (fun () -> Array.map (fun k -> find t k) keys)

(** Shared helper: range via collecting fold. *)
let range_as_list fold_range t lo hi =
  List.rev (fold_range t lo hi ~init:[] ~f:(fun acc k v -> (k, v) :: acc))
