module Vptr = Verlib.Vptr
module Fatomic = Flock.Fatomic
module Lock = Flock.Lock

let name = "dlist"

let range_capability = Map_intf.Ordered_range

(* Removal stores an existing node into the predecessor's next pointer, so
   the list is not recorded-once (the paper, likewise, only builds a
   recorded-once variant of the B-tree). *)
let supports_mode (m : Vptr.mode) = m <> Vptr.Rec_once

(* Keys are restricted to ]min_int, max_int[ so the sentinels can carry
   the extreme keys, as the paper assumes ("a sentinel infinite key"). *)
type node = {
  key : int;
  value : int;
  next : node Vptr.t;
  prev : node option Fatomic.t; (* not versioned: queries never follow it *)
  removed : bool Fatomic.t; (* not versioned *)
  lock : Lock.t;
  meta : node Verlib.Vtypes.meta;
}

type t = { head : node; desc : node Vptr.desc; lock_mode : Lock.mode }

let make_node desc lock_mode key value ~next ~prev =
  {
    key;
    value;
    next = Vptr.make desc next;
    prev = Fatomic.make prev;
    removed = Fatomic.make false;
    lock = Lock.create ~mode:lock_mode ~site:"dlist.lock" ();
    meta = Verlib.Vtypes.fresh_meta ();
  }

let create ?(mode = Vptr.Ind_on_need) ?lock_mode ~n_hint:_ () =
  let lock_mode =
    match lock_mode with Some m -> m | None -> Lock.default_mode ()
  in
  let desc = Vptr.make_desc ~meta_of:(fun n -> n.meta) ~mode in
  let tail = make_node desc lock_mode max_int 0 ~next:None ~prev:None in
  let head = make_node desc lock_mode min_int 0 ~next:(Some tail) ~prev:None in
  Fatomic.store tail.prev (Some head);
  { head; desc; lock_mode }

let next_node n =
  match Vptr.load n.next with
  | Some m -> m
  | None -> invalid_arg "Dlist: key out of supported range"

(* First node with key >= k (Algorithm 3's find_node). *)
let find_node t k =
  let rec advance cur = if k > cur.key then advance (next_node cur) else cur in
  advance (next_node t.head)

let is_node n = function Some m -> m == n | None -> false

let find t k =
  let cur = find_node t k in
  if cur.key = k then Some cur.value else None

let check_key k =
  if k <= min_int || k >= max_int then invalid_arg "Dlist: key out of range"

let insert t k v =
  check_key k;
  Flock.with_epoch (fun () ->
      let rec loop () =
        let next = find_node t k in
        if next.key = k then false
        else begin
          let prev =
            match Fatomic.load next.prev with
            | Some p -> p
            | None -> t.head
          in
          let ok =
            prev.key < k
            && Lock.try_lock_bool prev.lock (fun () ->
                   if
                     Fatomic.load prev.removed (* validate *)
                     || not (is_node next (Vptr.load prev.next))
                   then false (* try again *)
                   else begin
                     let cur =
                       Flock.new_obj (fun () ->
                           make_node t.desc t.lock_mode k v ~next:(Some next)
                             ~prev:(Some prev))
                     in
                     Vptr.store_locked prev.next (Some cur) (* splice in *);
                     Fatomic.store next.prev (Some cur);
                     true
                   end)
          in
          if ok then true else loop ()
        end
      in
      loop ())

let delete t k =
  check_key k;
  Flock.with_epoch (fun () ->
      let rec loop () =
        let cur = find_node t k in
        if cur.key <> k then false
        else begin
          let prev =
            match Fatomic.load cur.prev with Some p -> p | None -> t.head
          in
          let outcome =
            Lock.try_lock prev.lock (fun () ->
                if
                  Fatomic.load prev.removed
                  || not (is_node cur (Vptr.load prev.next))
                then `Retry
                else
                  (* holding prev's lock with prev.next = cur pins cur in
                     the list, so cur cannot be concurrently removed *)
                  match
                    Lock.try_lock cur.lock (fun () ->
                        Fatomic.store cur.removed true;
                        let nxt = next_node cur in
                        Vptr.store_locked prev.next (Some nxt) (* splice out *);
                        Fatomic.store nxt.prev (Some prev))
                  with
                  | Some () -> `Done
                  | None -> `Retry)
          in
          match outcome with
          | Some `Done -> true
          | Some `Retry | None -> loop ()
        end
      in
      loop ())

let fold_range t lo hi ~init ~f =
  Verlib.with_snapshot (fun () ->
      let rec collect acc cur =
        if cur.key > hi || cur.key = max_int (* tail sentinel *) then acc
        else begin
          Verlib.Snapshot.check_abort ();
          collect (f acc cur.key cur.value) (next_node cur)
        end
      in
      collect init (find_node t lo))

let range t lo hi = Map_intf.range_as_list fold_range t lo hi

let range_count t lo hi = fold_range t lo hi ~init:0 ~f:(fun acc _ _ -> acc + 1)

let multifind t keys = Map_intf.multifind_via_snapshot find t keys

let scan t ~init ~f = Map_intf.scan_via_fold_range fold_range t ~init ~f

let to_sorted_list t =
  let rec collect acc cur =
    if cur.key = max_int then List.rev acc
    else collect ((cur.key, cur.value) :: acc) (next_node cur)
  in
  collect [] (next_node t.head)

let size t = List.length (to_sorted_list t)

(* Census walk: every reachable node's next pointer, head sentinel
   included.  Passive ([Vptr.peek]) so the walk never helps, shortcuts
   or truncates. *)
let iter_vptrs t emit =
  let rec walk n =
    emit (Verlib.Chainscan.Target n.next);
    match Vptr.peek n.next with Some m -> walk m | None -> ()
  in
  walk t.head

(* Quiescent structural check: strictly sorted keys, consistent back
   pointers, no removed node reachable. *)
let shard_views t = Map_intf.single_shard_view name iter_vptrs t

let check t =
  let rec walk prev cur =
    if Fatomic.load cur.removed then failwith "Dlist.check: removed node reachable";
    if cur.key <> max_int || prev.key <> min_int then
      if cur.key <= prev.key then failwith "Dlist.check: keys not increasing";
    if not (is_node prev (Fatomic.load cur.prev)) && prev.key <> min_int then
      failwith "Dlist.check: prev pointer inconsistent";
    if cur.key < max_int then walk cur (next_node cur)
  in
  walk t.head (next_node t.head)
