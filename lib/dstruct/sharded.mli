(** Sharding combinator: one logical map partitioned over N sub-maps.

    Point operations ([insert]/[delete]/[find]) route to exactly one
    shard; every multi-point operation ([range], [range_count],
    [multifind], [scan], [size], [to_sorted_list]) wraps the per-shard
    work in a {e single} [Verlib.with_snapshot], so the cross-shard read
    is exactly as linearizable as the single-shard case — the payoff of
    snapshots being an O(1) timestamp read against a clock all shards
    share.  [iter_vptrs] and [check] fan out over every shard, so the
    chain census and the invariant audit cover the whole partition (plus
    a shard-ownership check: every key a shard holds must route to it).

    Partitioning follows the base's {!Map_intf.range_capability}:
    hash-partition for [Unordered] bases; contiguous range-partition for
    [Ordered_range] bases (intervals sized from [n_hint] against the
    benchmark key universe [0, 2n)), preserving [Ordered_range] — ranges
    touch only intersecting shards and per-shard output concatenates
    sorted. *)

module type SPEC = sig
  module Base : Map_intf.MAP

  val shards : int
end

module Make (_ : SPEC) : Map_intf.MAP

val make : shards:int -> (module Map_intf.MAP) -> (module Map_intf.MAP)
(** Run-time variant of {!Make} for call sites that pick the base and
    shard count dynamically (CLI structure specs, benchmark sweeps).
    Raises [Invalid_argument] on [shards < 1]. *)
