module Vptr = Verlib.Vptr
module Fatomic = Flock.Fatomic
module Lock = Flock.Lock

let name = "arttree"

let range_capability = Map_intf.Ordered_range

(* Deletion stores null into cells, which RecOnce cannot express. *)
let supports_mode (m : Vptr.mode) = m <> Vptr.Rec_once

let small_max = 16

let indexed_max = 48

type node = Leaf of leaf | Inner of inner

and leaf = { akey : int; avalue : int; lmeta : node Verlib.Vtypes.meta }

and inner = {
  depth : int; (* byte position this node discriminates on, 0 = MSB *)
  kind : kind;
  imeta : node Verlib.Vtypes.meta;
  ilock : Lock.t;
  iremoved : bool Fatomic.t;
}

and kind =
  | Small of { bytes : int array; cells : node Vptr.t array } (* sorted *)
  | Indexed of { index : int array (* 256 entries, -1 = absent *); cells : node Vptr.t array }
  | Direct of { cells : node Vptr.t array (* 256 *) }

type t = {
  root : node Vptr.t; (* always an Inner (Direct) at depth 0 *)
  rlock : Lock.t;
  desc : node Vptr.desc;
  lock_mode : Lock.mode;
}

let meta_of = function Leaf l -> l.lmeta | Inner n -> n.imeta

let key_byte k d = (k lsr ((7 - d) * 8)) land 0xff

let mk_leaf k v = Leaf { akey = k; avalue = v; lmeta = Verlib.Vtypes.fresh_meta () }

let mk_inner t depth kind =
  Inner
    {
      depth;
      kind;
      imeta = Verlib.Vtypes.fresh_meta ();
      ilock = Lock.create ~mode:t.lock_mode ~site:"arttree.ilock" ();
      iremoved = Fatomic.make false;
    }

let mk_cell t v = Vptr.make t.desc v

let create ?(mode = Vptr.Ind_on_need) ?lock_mode ~n_hint:_ () =
  let lock_mode =
    match lock_mode with Some m -> m | None -> Lock.default_mode ()
  in
  let desc = Vptr.make_desc ~meta_of ~mode in
  let t =
    {
      root = Vptr.make desc None;
      rlock = Lock.create ~mode:lock_mode ~site:"arttree.rlock" ();
      desc;
      lock_mode;
    }
  in
  let root_node =
    mk_inner t 0 (Direct { cells = Array.init 256 (fun _ -> mk_cell t None) })
  in
  Vptr.store t.root (Some root_node);
  t

(* Cell holding byte [b]'s child, if this node has a slot for it. *)
let cell_for (n : inner) b =
  match n.kind with
  | Small s ->
      let rec scan i =
        if i >= Array.length s.bytes then None
        else if s.bytes.(i) = b then Some s.cells.(i)
        else if s.bytes.(i) > b then None
        else scan (i + 1)
      in
      scan 0
  | Indexed x -> if x.index.(b) >= 0 then Some x.cells.(x.index.(b)) else None
  | Direct d -> Some d.cells.(b)

(* Present (byte, child) pairs in ascending byte order, loading cells;
   used by rebuilds (under lock) and traversals (in snapshots). *)
let iter_children (n : inner) f =
  match n.kind with
  | Small s ->
      Array.iteri
        (fun i b -> match Vptr.load s.cells.(i) with Some c -> f b c | None -> ())
        s.bytes
  | Indexed x ->
      for b = 0 to 255 do
        if x.index.(b) >= 0 then
          match Vptr.load x.cells.(x.index.(b)) with Some c -> f b c | None -> ()
      done
  | Direct d ->
      for b = 0 to 255 do
        match Vptr.load d.cells.(b) with Some c -> f b c | None -> ()
      done

let live_children (n : inner) =
  let acc = ref [] in
  iter_children n (fun b c -> acc := (b, c) :: !acc);
  List.rev !acc

(* Rebuild [n] with byte [b] additionally mapped to [child]: drops empty
   slots and upgrades the kind when the occupancy outgrows it.  Caller
   holds [n]'s lock. *)
let grown_copy t (n : inner) b child =
  let entries =
    List.sort (fun (a, _) (b, _) -> compare a b) (live_children n @ [ (b, child) ])
  in
  let count = List.length entries in
  let kind =
    if count <= small_max then
      Small
        {
          bytes = Array.of_list (List.map fst entries);
          cells = Array.of_list (List.map (fun (_, c) -> mk_cell t (Some c)) entries);
        }
    else if count <= indexed_max then begin
      let index = Array.make 256 (-1) in
      let cells =
        Array.of_list
          (List.mapi
             (fun i (byte, c) ->
               index.(byte) <- i;
               mk_cell t (Some c))
             entries)
      in
      Indexed { index; cells }
    end
    else begin
      (* Initialise every cell at construction ([Vptr.make], an unlogged
         initialising write).  Storing into the fresh cells instead would
         be a logged operation on replica-private state, which the
         idempotence log must never see: helpers replaying this section
         would exchange chain cells across replicas and lose children. *)
      let by_byte = Array.make 256 None in
      List.iter (fun (byte, c) -> by_byte.(byte) <- Some c) entries;
      Direct { cells = Array.init 256 (fun byte -> mk_cell t by_byte.(byte)) }
    end
  in
  mk_inner t n.depth kind

(* Chain of single-child nodes from [depth] down to the first byte where
   the two keys diverge, ending in a two-leaf node (lazy expansion, no
   path compression). *)
let rec branch t depth (l1 : leaf) k2 v2 =
  let b1 = key_byte l1.akey depth and b2 = key_byte k2 depth in
  if b1 = b2 then begin
    let sub = branch t (depth + 1) l1 k2 v2 in
    mk_inner t depth (Small { bytes = [| b1 |]; cells = [| mk_cell t (Some sub) |] })
  end
  else begin
    let lo_b, lo_n, hi_b, hi_n =
      if b1 < b2 then (b1, Leaf l1, b2, mk_leaf k2 v2)
      else (b2, mk_leaf k2 v2, b1, Leaf l1)
    in
    mk_inner t depth
      (Small
         {
           bytes = [| lo_b; hi_b |];
           cells = [| mk_cell t (Some lo_n); mk_cell t (Some hi_n) |];
         })
  end

let check_key k = if k < 0 then invalid_arg "Arttree: keys must be non-negative"

let root_node t =
  match Vptr.load t.root with
  | Some n -> n
  | None -> failwith "Arttree: missing root"

(* --- find -------------------------------------------------------------- *)

let find t k =
  if k < 0 then None
  else
  let rec go node =
    match node with
    | Leaf l -> if l.akey = k then Some l.avalue else None
    | Inner n -> (
        match cell_for n (key_byte k n.depth) with
        | None -> None
        | Some cell -> ( match Vptr.load cell with None -> None | Some c -> go c))
  in
  go (root_node t)

(* --- updates ------------------------------------------------------------
   [None] result = restart from root (validation or lock failure). *)

let not_removed (n : inner) () = not (Fatomic.load n.iremoved)

let insert t k v =
  check_key k;
  Flock.with_epoch (fun () ->
      (* [pslot] is where the current inner node is stored, for grows. *)
      let rec go ~plock ~pcell ~plive node : bool option =
        match node with
        | Leaf _ -> assert false (* handled at the cell below *)
        | Inner n -> (
            let b = key_byte k n.depth in
            match cell_for n b with
            | None ->
                (* no slot: grow [n] under its parent's lock *)
                let holds_node () =
                  match Vptr.load pcell with Some x -> x == node | None -> false
                in
                Lock.try_lock plock (fun () ->
                    if not (plive () && holds_node ()) then None
                    else
                      Lock.try_lock n.ilock (fun () ->
                          Fatomic.store n.iremoved true;
                          let n' = grown_copy t n b (mk_leaf k v) in
                          Vptr.store_locked pcell (Some n');
                          true)
                      |> function
                      | Some r -> Some r
                      | None -> None)
                |> Option.join
            | Some cell -> (
                match Vptr.load cell with
                | None ->
                    (* empty slot: fill it under [n]'s lock *)
                    Lock.try_lock n.ilock (fun () ->
                        if Fatomic.load n.iremoved then None
                        else
                          match Vptr.load cell with
                          | None ->
                              Vptr.store_locked cell (Some (mk_leaf k v));
                              Some true
                          | Some _ -> None (* someone filled it; retry *))
                    |> Option.join
                | Some (Leaf l) ->
                    if l.akey = k then Some false
                    else
                      (* split the leaf into a branch under [n]'s lock *)
                      Lock.try_lock n.ilock (fun () ->
                          if Fatomic.load n.iremoved then None
                          else
                            match Vptr.load cell with
                            | Some (Leaf l') when l' == l ->
                                let sub = branch t (n.depth + 1) l k v in
                                Vptr.store_locked cell (Some sub);
                                Some true
                            | Some _ | None -> None)
                      |> Option.join
                | Some (Inner _ as child) ->
                    go ~plock:n.ilock ~pcell:cell ~plive:(not_removed n) child))
      in
      let backoff = Flock.Backoff.create () in
      let rec attempt () =
        match
          go ~plock:t.rlock ~pcell:t.root ~plive:(fun () -> true) (root_node t)
        with
        | Some r -> r
        | None ->
            Flock.Backoff.once backoff;
            attempt ()
      in
      attempt ())

let delete t k =
  check_key k;
  Flock.with_epoch (fun () ->
      let rec go node : bool option =
        match node with
        | Leaf _ -> assert false
        | Inner n -> (
            match cell_for n (key_byte k n.depth) with
            | None -> Some false
            | Some cell -> (
                match Vptr.load cell with
                | None -> Some false
                | Some (Leaf l) ->
                    if l.akey <> k then Some false
                    else
                      Lock.try_lock n.ilock (fun () ->
                          if Fatomic.load n.iremoved then None
                          else
                            match Vptr.load cell with
                            | Some (Leaf l') when l' == l ->
                                Vptr.store_locked cell None;
                                Some true
                            | Some _ | None -> None)
                      |> Option.join
                | Some (Inner _ as child) -> go child))
      in
      let backoff = Flock.Backoff.create () in
      let rec attempt () =
        match go (root_node t) with
        | Some r -> r
        | None ->
            Flock.Backoff.once backoff;
            attempt ()
      in
      attempt ())

(* --- range queries ------------------------------------------------------
   DFS in byte order inside a snapshot.  [prefix] is the key prefix of the
   path so far; a child under byte [b] at depth [d] covers the key
   interval [prefix + b*2^(8*(7-d)), prefix + (b+1)*2^(8*(7-d)) - 1]. *)

(* Like {!iter_children} but only over bytes in [bmin, bmax]: range
   queries prune whole fan-outs this way instead of loading all 256 cells
   of a [Direct] node. *)
let iter_children_between (n : inner) bmin bmax f =
  match n.kind with
  | Small s ->
      Array.iteri
        (fun i b ->
          if b >= bmin && b <= bmax then
            match Vptr.load s.cells.(i) with Some c -> f b c | None -> ())
        s.bytes
  | Indexed x ->
      for b = bmin to bmax do
        if x.index.(b) >= 0 then
          match Vptr.load x.cells.(x.index.(b)) with Some c -> f b c | None -> ()
      done
  | Direct d ->
      for b = bmin to bmax do
        match Vptr.load d.cells.(b) with Some c -> f b c | None -> ()
      done

let fold_range t lo hi ~init ~f =
  let lo = max lo 0 in
  Verlib.with_snapshot (fun () ->
      let rec go acc node prefix =
        Verlib.Snapshot.check_abort ();
        match node with
        | Leaf l -> if l.akey >= lo && l.akey <= hi then f acc l.akey l.avalue else acc
        | Inner n ->
            let width = 1 lsl (8 * (7 - n.depth)) in
            (* child byte b covers [prefix + b*width, prefix + (b+1)*width) *)
            let bmin = if lo <= prefix then 0 else min 255 ((lo - prefix) / width) in
            let bmax =
              let d = (hi - prefix) / width in
              if d > 255 then 255 else d
            in
            if bmax < 0 then acc
            else begin
              let acc = ref acc in
              iter_children_between n bmin bmax (fun b c ->
                  acc := go !acc c (prefix + (b * width)));
              !acc
            end
      in
      if hi < 0 then init else go init (root_node t) 0)

let range t lo hi = Map_intf.range_as_list fold_range t lo hi

let range_count t lo hi = fold_range t lo hi ~init:0 ~f:(fun acc _ _ -> acc + 1)

let multifind t keys = Map_intf.multifind_via_snapshot find t keys

(* ART keys are non-negative (radix on byte decomposition), so the
   whole-keyspace fold starts at 0, like [to_sorted_list]. *)
let scan t ~init ~f = Map_intf.scan_via_fold_range ~lo:0 fold_range t ~init ~f

(* Census walk: the root cell plus every child cell of every inner node,
   including empty slots (a Direct node's nil cells still carry version
   history).  Passive ([Vptr.peek]), unlike [iter_children]. *)
let iter_vptrs t emit =
  let rec walk cell =
    emit (Verlib.Chainscan.Target cell);
    match Vptr.peek cell with
    | None | Some (Leaf _) -> ()
    | Some (Inner n) -> (
        match n.kind with
        | Small s -> Array.iter walk s.cells
        | Indexed x -> Array.iter walk x.cells
        | Direct d -> Array.iter walk d.cells)
  in
  walk t.root

let shard_views t = Map_intf.single_shard_view name iter_vptrs t

let to_sorted_list t = range t 0 max_int

let size t = range_count t 0 max_int

(* --- invariants ---------------------------------------------------------- *)

let check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* [path] is the list of bytes taken from the root, most significant
     first; every leaf's key must agree with it. *)
  let rec go node depth path =
    match node with
    | Leaf l ->
        List.iteri
          (fun j b ->
            if key_byte l.akey j <> b then
              fail "Arttree.check: leaf key %d disagrees with its path" l.akey)
          (List.rev path)
    | Inner n ->
        if n.depth <> depth then fail "Arttree.check: depth mismatch";
        if depth > 7 then fail "Arttree.check: tree too deep";
        if Fatomic.load n.iremoved then fail "Arttree.check: removed node reachable";
        (match n.kind with
         | Small s ->
             if Array.length s.bytes > small_max then fail "Arttree.check: Small too big";
             if Array.length s.bytes <> Array.length s.cells then
               fail "Arttree.check: Small byte/cell mismatch";
             Array.iteri
               (fun i b ->
                 if i > 0 && s.bytes.(i - 1) >= b then
                   fail "Arttree.check: Small bytes not sorted")
               s.bytes
         | Indexed x ->
             if Array.length x.cells > indexed_max then
               fail "Arttree.check: Indexed too big";
             Array.iter
               (fun slot ->
                 if slot >= Array.length x.cells then
                   fail "Arttree.check: Indexed slot out of bounds")
               x.index
         | Direct d ->
             if Array.length d.cells <> 256 then fail "Arttree.check: Direct size");
        iter_children n (fun b c -> go c (depth + 1) (b :: path))
  in
  go (root_node t) 0 []

let debug_dump t =
  let rec go node indent =
    match node with
    | Leaf l -> Printf.printf "%sLeaf key=%d\n" indent l.akey
    | Inner n ->
        let kind_name, occ =
          match n.kind with
          | Small s -> ("Small", Array.length s.bytes)
          | Indexed x -> ("Indexed", Array.length x.cells)
          | Direct _ -> ("Direct", 256)
        in
        Printf.printf "%s%s d=%d occ=%d%s\n" indent kind_name n.depth occ
          (if Fatomic.load n.iremoved then " REMOVED" else "");
        iter_children n (fun b c ->
            Printf.printf "%s [%02x]\n" indent b;
            go c (indent ^ "  "))
  in
  go (root_node t) ""
