module Vptr = Verlib.Vptr

let name = "hashtable"

let range_capability = Map_intf.Unordered

(* RecOnce is unsound here: deleting down to a shared state re-records
   bucket objects?  No — every update installs a freshly allocated bucket,
   and empties are null; null stores are what RecOnce cannot express. *)
let supports_mode (m : Vptr.mode) = m <> Vptr.Rec_once

type bucket = { entries : (int * int) array; meta : bucket Verlib.Vtypes.meta }

type t = { cells : bucket Vptr.t array; mask : int; desc : bucket Vptr.desc }

(* Splitmix-style finalizer (constants truncated to OCaml's 63-bit ints):
   benchmark keys are arbitrary integers, so the index must mix all
   bits. *)
let hash k =
  let h = k * 0x1E3779B97F4A7C15 in
  let h = h lxor (h lsr 29) in
  let h = h * 0x3F58476D1CE4E5B9 in
  h lxor (h lsr 32)

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(mode = Vptr.Ind_on_need) ?lock_mode:_ ~n_hint () =
  let desc = Vptr.make_desc ~meta_of:(fun b -> b.meta) ~mode in
  let n = next_pow2 (max 16 n_hint) in
  { cells = Array.init n (fun _ -> Vptr.make desc None); mask = n - 1; desc }

let cell t k = t.cells.(hash k land t.mask)

let mk_bucket entries = { entries; meta = Verlib.Vtypes.fresh_meta () }

let bucket_find entries k =
  let rec scan i =
    if i >= Array.length entries then None
    else
      let k', v = entries.(i) in
      if k' = k then Some v else scan (i + 1)
  in
  scan 0

let find t k =
  match Vptr.load (cell t k) with
  | None -> None
  | Some b -> bucket_find b.entries k

let insert t k v =
  Flock.with_epoch (fun () ->
      let c = cell t k in
      let rec loop () =
        let cur = Vptr.load c in
        let entries = match cur with None -> [||] | Some b -> b.entries in
        if bucket_find entries k <> None then false
        else begin
          let n = Array.length entries in
          let entries' = Array.make (n + 1) (k, v) in
          Array.blit entries 0 entries' 0 n;
          if Vptr.cas c cur (Some (mk_bucket entries')) then true else loop ()
        end
      in
      loop ())

let delete t k =
  Flock.with_epoch (fun () ->
      let c = cell t k in
      let rec loop () =
        match Vptr.load c with
        | None -> false
        | Some b when bucket_find b.entries k = None -> false
        | Some b as cur ->
            let entries' =
              Array.of_list
                (List.filter (fun (k', _) -> k' <> k) (Array.to_list b.entries))
            in
            let next =
              if Array.length entries' = 0 then None else Some (mk_bucket entries')
            in
            if Vptr.cas c cur next then true else loop ()
      in
      loop ())

let multifind t keys = Map_intf.multifind_via_snapshot find t keys

let range (_ : t) (_ : int) (_ : int) =
  invalid_arg "Hashtable: range queries are not supported on unordered maps"

let range_count t lo hi = List.length (range t lo hi)

let fold t ~init ~f =
  Array.fold_left
    (fun acc c ->
      match Vptr.load c with
      | None -> acc
      | Some b -> Array.fold_left (fun acc (k, v) -> f acc k v) acc b.entries)
    init t.cells

let size t = fold t ~init:0 ~f:(fun acc _ _ -> acc + 1)

(* The snapshot makes the bucket-by-bucket walk atomic: every [Vptr.load]
   inside resolves against one timestamp, so an unordered map can serve
   the same multi-point read paths (wire MGET / SCAN) as the ordered
   ones. *)
let scan t ~init ~f = Map_intf.scan_via_snapshot fold t ~init ~f

let to_sorted_list t =
  List.sort compare (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

(* Census walk: one versioned cell per bucket, the whole structure. *)
let iter_vptrs t emit =
  Array.iter (fun c -> emit (Verlib.Chainscan.Target c)) t.cells

let shard_views t = Map_intf.single_shard_view name iter_vptrs t

let check t =
  Array.iteri
    (fun i c ->
      match Vptr.load c with
      | None -> ()
      | Some b ->
          if Array.length b.entries = 0 then
            failwith "Hashtable.check: empty bucket should be null";
          Array.iter
            (fun (k, _) ->
              if hash k land t.mask <> i then
                failwith "Hashtable.check: entry in wrong bucket")
            b.entries;
          let keys = Array.to_list (Array.map fst b.entries) in
          if List.length (List.sort_uniq compare keys) <> List.length keys then
            failwith "Hashtable.check: duplicate keys in bucket")
    t.cells
