let name = "vbst"

let range_capability = Map_intf.Ordered_range

let supports_mode (m : Verlib.Vptr.mode) = m = Verlib.Vptr.Plain

type node =
  | Empty
  | Leaf of { k : int; v : int }
  | Inner of inner

and inner = {
  key : int; (* keys < key go left, >= key go right *)
  left : node Atomic.t;
  right : node Atomic.t;
  ilock : Mutex.t;
  mutable removed : bool;
}

type t = {
  root : node Atomic.t;
  root_lock : Mutex.t;
  version : int Atomic.t; (* bumped once per completed update *)
  inflight : int Atomic.t; (* updates between swap-start and bump *)
  rw : Rwlock.t; (* escalation path for starved queries *)
}

let create ?mode:_ ?lock_mode:_ ~n_hint:_ () =
  {
    root = Atomic.make Empty;
    root_lock = Mutex.create ();
    version = Atomic.make 0;
    inflight = Atomic.make 0;
    rw = Rwlock.create ();
  }

(* A slot is the atomic cell a node lives in, plus the lock and liveness
   witness guarding it. *)
type slot = { cell : node Atomic.t; lock : Mutex.t; live : unit -> bool }

let root_slot t = { cell = t.root; lock = t.root_lock; live = (fun () -> true) }

let side_slot (p : inner) left =
  {
    cell = (if left then p.left else p.right);
    lock = p.ilock;
    live = (fun () -> not p.removed);
  }

let locked slot f =
  Mutex.lock slot.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock slot.lock) f

(* Publish one atomic swap: the inflight/version pair lets range queries
   detect any swap that overlaps their traversal (seqlock-style). *)
let publish t slot node =
  Atomic.incr t.inflight;
  Atomic.set slot.cell node;
  Atomic.incr t.version;
  Atomic.decr t.inflight

let find t k =
  let rec go node =
    match node with
    | Empty -> None
    | Leaf l -> if l.k = k then Some l.v else None
    | Inner n -> go (Atomic.get (if k < n.key then n.left else n.right))
  in
  go (Atomic.get t.root)

let mk_inner a b =
  (* [a] and [b] are leaves with distinct keys *)
  let ka = match a with Leaf l -> l.k | Empty | Inner _ -> assert false in
  let kb = match b with Leaf l -> l.k | Empty | Inner _ -> assert false in
  let key = max ka kb in
  let lo, hi = if ka < kb then (a, b) else (b, a) in
  Inner
    {
      key;
      left = Atomic.make lo;
      right = Atomic.make hi;
      ilock = Mutex.create ();
      removed = false;
    }

let insert t k v =
  Rwlock.with_read t.rw (fun () ->
      let rec attempt () =
        (* descend to the leaf slot *)
        let rec go slot node =
          match node with
          | Inner n -> go (side_slot n (k < n.key)) (Atomic.get (if k < n.key then n.left else n.right))
          | Empty | Leaf _ -> (slot, node)
        in
        let slot, seen = go (root_slot t) (Atomic.get t.root) in
        let r =
          locked slot (fun () ->
              if not (slot.live () && Atomic.get slot.cell == seen) then None
              else
                match seen with
                | Empty ->
                    publish t slot (Leaf { k; v });
                    Some true
                | Leaf l when l.k = k -> Some false
                | Leaf _ ->
                    publish t slot (mk_inner seen (Leaf { k; v }));
                    Some true
                | Inner _ -> None)
        in
        match r with Some b -> b | None -> attempt ()
      in
      attempt ())

let delete t k =
  Rwlock.with_read t.rw (fun () ->
      let rec attempt () =
        (* [pslot] is where [node] lives, [gslot] where its parent [p]
           lives; at the leaf this yields the splice points. *)
        let rec go gslot (p : inner option) pslot node =
          match node with
          | Inner n ->
              let left = k < n.key in
              go pslot (Some n) (side_slot n left)
                (Atomic.get (if left then n.left else n.right))
          | Empty | Leaf _ -> (gslot, p, node)
        in
        let gslot, parent, seen =
          go (root_slot t) None (root_slot t) (Atomic.get t.root)
        in
        match seen with
        | Empty -> false
        | Leaf l when l.k <> k -> false
        | Inner _ -> attempt ()
        | Leaf _ -> (
            match parent with
            | None ->
                (* leaf at root *)
                let r =
                  locked (root_slot t) (fun () ->
                      if Atomic.get t.root == seen then begin
                        publish t (root_slot t) Empty;
                        Some true
                      end
                      else None)
                in
                (match r with Some b -> b | None -> attempt ())
            | Some p ->
                let r =
                  locked gslot (fun () ->
                      if not (gslot.live ()) then None
                      else
                        match Atomic.get gslot.cell with
                        | Inner q when q == p ->
                            Mutex.lock p.ilock;
                            Fun.protect
                              ~finally:(fun () -> Mutex.unlock p.ilock)
                              (fun () ->
                                let on_left = Atomic.get p.left == seen in
                                let on_right = Atomic.get p.right == seen in
                                if not (on_left || on_right) then None
                                else begin
                                  p.removed <- true;
                                  let sibling =
                                    Atomic.get (if on_left then p.right else p.left)
                                  in
                                  publish t gslot sibling;
                                  Some true
                                end)
                        | Empty | Leaf _ | Inner _ -> None)
                in
                (match r with Some b -> b | None -> attempt ()))
      in
      attempt ())

(* Range queries: optimistic traversal validated against the update
   counter, escalating to the writer-excluding lock when starved. *)
let collect_range t lo hi =
  let acc = ref [] in
  let rec go node =
    match node with
    | Empty -> ()
    | Leaf l -> if l.k >= lo && l.k <= hi then acc := (l.k, l.v) :: !acc
    | Inner n ->
        if lo < n.key then go (Atomic.get n.left);
        if hi >= n.key then go (Atomic.get n.right)
  in
  go (Atomic.get t.root);
  List.rev !acc

let max_attempts = 8

let validated t collect =
  let rec attempt tries =
    if tries >= max_attempts then Rwlock.with_write t.rw collect
    else begin
      let v1 = Atomic.get t.version in
      if Atomic.get t.inflight <> 0 then attempt (tries + 1)
      else begin
        let r = collect () in
        if Atomic.get t.inflight = 0 && Atomic.get t.version = v1 then r
        else attempt (tries + 1)
      end
    end
  in
  attempt 0

let range t lo hi = validated t (fun () -> collect_range t lo hi)

let range_count t lo hi = List.length (range t lo hi)

let multifind t keys = validated t (fun () -> Array.map (fun k -> find t k) keys)

(* One validated collect, then a pure fold: the whole scan observes a
   single seqlock-validated state. *)
let scan t ~init ~f =
  List.fold_left
    (fun acc (k, v) -> f acc k v)
    init
    (validated t (fun () -> collect_range t min_int max_int))

(* No versioned pointers: the vbst is a plain-atomics baseline (seqlock
   range queries), so the census has nothing to walk. *)
let iter_vptrs (_ : t) (_ : Verlib.Chainscan.target -> unit) = ()

let shard_views t = Map_intf.single_shard_view name iter_vptrs t

let to_sorted_list t = range t min_int max_int

let size t = List.length (to_sorted_list t)

let check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec go node lo hi =
    match node with
    | Empty -> ()
    | Leaf l -> if l.k < lo || l.k >= hi then fail "Vbst.check: leaf out of range"
    | Inner n ->
        if n.removed then fail "Vbst.check: removed node reachable";
        if n.key < lo || n.key >= hi then fail "Vbst.check: key out of range";
        (match Atomic.get n.left with
         | Empty -> fail "Vbst.check: empty left slot in external tree"
         | _ -> ());
        (match Atomic.get n.right with
         | Empty -> fail "Vbst.check: empty right slot in external tree"
         | _ -> ());
        go (Atomic.get n.left) lo n.key;
        go (Atomic.get n.right) n.key hi
  in
  go (Atomic.get t.root) min_int max_int
