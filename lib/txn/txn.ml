(* Multi-key OCC transactions with versionstamped commits.  See
   txn.mli and docs/TRANSACTIONS.md for the model; the short version:

   - each key hashes to one of N power-of-two stripes, each a single
     [int Atomic.t] encoding [version lsl 1 lor busy];
   - reads bracket the structure access between two even reads of the
     stripe word (TL2) and record (stripe, version); range reads record
     (lo, hi, fingerprint-of-result);
   - commit CASes the written stripes even->odd in ascending order,
     re-checks every recorded version, installs the write buffer, and
     releases each stripe to [versionstamp lsl 1] where the
     versionstamp is one fresh draw of a shared commit clock.

   Correctness of the versionstamp as a serialization order: writers
   with disjoint stripe sets have disjoint key sets, so installs
   commute; writers with intersecting stripes are ordered by the stripe
   latches, and the later one either validated against the earlier
   release (reads it) or conflicts.  Read-only transactions take their
   versionstamp from the clock AFTER the read phase and BEFORE the
   validation probes: any writer with vs <= vs_ro drew its stamp before
   the probes, so it either finished installing (probes see its
   release, reads reflected it or validation fails) or still holds a
   probed stripe (odd word -> conflict); any writer with vs > vs_ro
   drew its stamp after every read completed and cannot have been
   observed.  Hence replaying commits in versionstamp order (writers
   before readers on ties) reproduces every recorded step — the
   property test/test_txn.ml's offline checker exercises.

   The in-flight-committer counters [starts]/[dones] guard range
   re-fingerprinting: a writer requires [starts = dones + 1] (itself
   alone) and a reader [starts = dones] around the re-scan, so a
   fingerprint is never computed against a half-installed buffer. *)

exception Conflict

type op =
  | Get of int
  | Put of int * int
  | Del of int
  | Mget of int array
  | Range of int * int
  | Rangecount of int * int

type step =
  | S_ok
  | S_exists
  | S_nil
  | S_int of int
  | S_vals of int option list
  | S_pairs of (int * int) list

type outcome =
  | Committed of { vs : int; steps : step list; attempts : int }
  | Aborted of { attempts : int }

(* ------------------------------------------------------------------ *)
(* Counters (process-wide; exported as gauges below).                  *)

let commits_ctr = Atomic.make 0

let aborts_ctr = Atomic.make 0

let retries_ctr = Atomic.make 0

let replays_ctr = Atomic.make 0

let idem_evictions_ctr = Atomic.make 0

let commits () = Atomic.get commits_ctr

let aborts () = Atomic.get aborts_ctr

let validation_retries () = Atomic.get retries_ctr

let replays () = Atomic.get replays_ctr

let idem_evictions () = Atomic.get idem_evictions_ctr

let () =
  List.iter
    (fun (n, f) -> ignore (Flock.Telemetry.Gauge.make n f))
    [
      ("txn_commits", commits);
      ("txn_aborts", aborts);
      ("txn_validation_retries", validation_retries);
      ("txn_replays", replays);
      ("txn_idem_evictions", idem_evictions);
    ]

(* ------------------------------------------------------------------ *)
(* Fault points (docs/RESILIENCE.md catalogue).                        *)

let fp_validate = Fault.Point.make "txn.validate"

let fp_commit = Fault.Point.make "txn.commit"

(* ------------------------------------------------------------------ *)
(* Hashing: a splitmix-style finalizer (constants truncated to fit
   OCaml's 63-bit ints) for key->stripe and for range fingerprints.
   NOT Hashtbl.hash: fingerprints must mix the full value range.       *)

let mix k =
  let h = k lxor (k lsr 33) in
  let h = h * 0xFF51AFD7ED558CC in
  let h = h lxor (h lsr 29) in
  let h = h * 0xC4CEB9FE1A85EC5 in
  let h = h lxor (h lsr 32) in
  h land max_int

let fp_pairs pairs =
  List.fold_left (fun acc (k, v) -> mix (acc lxor mix ((k * 31) + v))) 0x5bd1e995 pairs

let max_spin = 200

let idem_capacity = 4096

(* ------------------------------------------------------------------ *)

module Store = struct
  type cached = Pending | Done of int * step list

  type t =
    | Store : {
        m : (module Dstruct.Map_intf.MAP with type t = 'h);
        h : 'h;
        stripes : int Atomic.t array;
        mask : int;
        clock : int Atomic.t;
        starts : int Atomic.t;  (** writer commits entered install window *)
        dones : int Atomic.t;  (** writer commits left it (either way) *)
        mu : Mutex.t;
        cv : Condition.t;
        cache : (int, cached) Hashtbl.t;  (** token -> result *)
        fifo : int Queue.t;  (** Done tokens, eviction order *)
        feed : (int -> (int * int option) list -> unit) option Atomic.t;
            (** commit observer (the replication tap): called with
                [(vs, writes)] while the written stripes are still
                latched, so for any one key observer calls arrive in
                versionstamp order *)
      }
        -> t

  let rec pow2_ge n p = if p >= n then p else pow2_ge n (p * 2)

  let create ?(stripes = 512) m h =
    let n = pow2_ge (max 1 stripes) 1 in
    Store
      {
        m;
        h;
        stripes = Array.init n (fun _ -> Atomic.make 0);
        mask = n - 1;
        clock = Atomic.make 0;
        starts = Atomic.make 0;
        dones = Atomic.make 0;
        mu = Mutex.create ();
        cv = Condition.create ();
        cache = Hashtbl.create 64;
        fifo = Queue.create ();
        feed = Atomic.make None;
      }

  let quiescent (Store st) =
    Array.for_all (fun a -> Atomic.get a land 1 = 0) st.stripes
    && Atomic.get st.starts = Atomic.get st.dones
end

let set_commit_observer (Store.Store st) f = Atomic.set st.feed (Some f)

let clear_commit_observer (Store.Store st) = Atomic.set st.feed None

(* Emit one committed write set to the observer.  Called with the
   written stripes still latched (commit path) or the key's stripe still
   held (single-key path): per-key observer order therefore equals
   versionstamp order, which is what lets the replication log apply
   records in receipt order and still converge (disjoint records
   commute).  The observer must never break a commit whose writes are
   already installed, so failures are swallowed — the feed is
   best-effort at this layer; loss shows up as replica lag, not as a
   primary abort. *)
let emit_feed (Store.Store st) vs writes =
  match Atomic.get st.feed with
  | None -> ()
  | Some f -> ( try f vs writes with _ -> ())

module Span = Verlib.Obs.Span

(* ------------------------------------------------------------------ *)
(* Token cache: claim exactly one executor per token; losers wait and
   replay the cached result.  Aborts unclaim (a retry with the same
   token executes afresh), so only committed results are cached.       *)

let claim (Store.Store st) token =
  Mutex.lock st.mu;
  let rec go () =
    match Hashtbl.find_opt st.cache token with
    | Some (Store.Done (vs, steps)) ->
        Mutex.unlock st.mu;
        `Cached (vs, steps)
    | Some Store.Pending ->
        Condition.wait st.cv st.mu;
        go ()
    | None ->
        Hashtbl.replace st.cache token Store.Pending;
        Mutex.unlock st.mu;
        `Mine
  in
  go ()

let complete (Store.Store st) token vs steps =
  Mutex.lock st.mu;
  Hashtbl.replace st.cache token (Store.Done (vs, steps));
  Queue.push token st.fifo;
  while Queue.length st.fifo > idem_capacity do
    (* FIFO eviction past the idempotency window.  A replay of an
       evicted token re-executes (a double commit from the client's
       point of view), so evictions must be visible: the
       [txn_idem_evictions] gauge is how soaks detect that the window
       was outrun. *)
    Hashtbl.remove st.cache (Queue.pop st.fifo);
    Atomic.incr idem_evictions_ctr
  done;
  Condition.broadcast st.cv;
  Mutex.unlock st.mu

let unclaim (Store.Store st) token =
  Mutex.lock st.mu;
  Hashtbl.remove st.cache token;
  Condition.broadcast st.cv;
  Mutex.unlock st.mu

(* ------------------------------------------------------------------ *)
(* One attempt: read phase (building steps + read set + write buffer)
   then validate-and-install.  Raises [Conflict] to request a retry.   *)

type wentry = W_put of int * bool  (** value, underlying-present *) | W_del

let run_once store ops =
  match store with
  | Store.Store st ->
      let module M = (val st.m) in
      let stripe_of k = mix k land st.mask in
      (* read set: stripe -> version observed at first read *)
      let reads : (int, int) Hashtbl.t = Hashtbl.create 16 in
      (* range read set: (lo, hi, fingerprint) *)
      let ranges : (int * int * int) list ref = ref [] in
      (* write buffer *)
      let buf : (int, wentry) Hashtbl.t = Hashtbl.create 16 in
      let spin = Flock.Backoff.create () in
      (* An even read of a stripe word, spinning briefly past a held
         latch; past the bound the whole attempt conflicts (never
         blocks on another domain's progress). *)
      let read_vlock s =
        let rec go n =
          let v = Atomic.get st.stripes.(s) in
          if v land 1 = 0 then v
          else if n >= max_spin then raise Conflict
          else begin
            Flock.Backoff.once spin;
            go (n + 1)
          end
        in
        go 0
      in
      let check s r = if Atomic.get st.stripes.(s) <> r then raise Conflict in
      (* TL2 bracket around one find; first read of a stripe records
         its version, later reads re-check against the recording. *)
      let point_read k =
        let s = stripe_of k in
        match Hashtbl.find_opt reads s with
        | Some r ->
            check s r;
            let v = M.find st.h k in
            check s r;
            v
        | None ->
            let v1 = read_vlock s in
            let v = M.find st.h k in
            check s v1;
            Hashtbl.replace reads s v1;
            v
      in
      let do_get k =
        match Hashtbl.find_opt buf k with
        | Some (W_put (v, _)) -> S_int v
        | Some W_del -> S_nil
        | None -> ( match point_read k with Some v -> S_int v | None -> S_nil)
      in
      (* PUT keeps the map interface's insert-only semantics against
         the transaction's effective state; the presence check is a
         recorded read, so a racing insert aborts us at validation. *)
      let do_put k v =
        match Hashtbl.find_opt buf k with
        | Some (W_put _) -> S_exists
        | Some W_del ->
            Hashtbl.replace buf k (W_put (v, true));
            S_ok
        | None -> (
            match point_read k with
            | Some _ -> S_exists
            | None ->
                Hashtbl.replace buf k (W_put (v, false));
                S_ok)
      in
      let do_del k =
        match Hashtbl.find_opt buf k with
        | Some (W_put (_, underlying)) ->
            if underlying then Hashtbl.replace buf k W_del
            else Hashtbl.remove buf k;
            S_int 1
        | Some W_del -> S_int 0
        | None -> (
            match point_read k with
            | Some _ ->
                Hashtbl.replace buf k W_del;
                S_int 1
            | None -> S_int 0)
      in
      let do_mget keys =
        (* Keys the buffer doesn't resolve go through one atomic
           multifind, bracketed per distinct stripe. *)
        let pending =
          Array.to_list keys |> List.filter (fun k -> not (Hashtbl.mem buf k))
        in
        let pend = Array.of_list pending in
        let stripes =
          List.sort_uniq compare (List.map stripe_of pending)
        in
        let pre =
          List.map
            (fun s ->
              match Hashtbl.find_opt reads s with
              | Some r ->
                  check s r;
                  (s, r, false)
              | None -> (s, read_vlock s, true))
            stripes
        in
        let vals = M.multifind st.h pend in
        List.iter (fun (s, r, _) -> check s r) pre;
        List.iter
          (fun (s, r, fresh) -> if fresh then Hashtbl.replace reads s r)
          pre;
        let found : (int, int option) Hashtbl.t = Hashtbl.create 8 in
        Array.iteri (fun i k -> Hashtbl.replace found k vals.(i)) pend;
        S_vals
          (Array.to_list keys
          |> List.map (fun k ->
                 match Hashtbl.find_opt buf k with
                 | Some (W_put (v, _)) -> Some v
                 | Some W_del -> None
                 | None -> Hashtbl.find found k))
      in
      (* Range result with the write buffer overlaid, so transactions
         read their own (pending) writes in range queries too. *)
      let overlay lo hi pairs =
        let touched k = k >= lo && k <= hi in
        let dead =
          Hashtbl.fold
            (fun k e acc ->
              match e with
              | (W_del | W_put _) when touched k -> k :: acc
              | _ -> acc)
            buf []
        in
        let base = List.filter (fun (k, _) -> not (List.mem k dead)) pairs in
        let added =
          Hashtbl.fold
            (fun k e acc ->
              match e with
              | W_put (v, _) when touched k -> (k, v) :: acc
              | _ -> acc)
            buf []
        in
        List.sort compare (base @ added)
      in
      let do_range lo hi =
        let pairs = M.range st.h lo hi in
        ranges := (lo, hi, fp_pairs pairs) :: !ranges;
        overlay lo hi pairs
      in
      (* ---- read phase ------------------------------------------- *)
      let steps =
        List.map
          (function
            | Get k -> do_get k
            | Put (k, v) -> do_put k v
            | Del k -> do_del k
            | Mget keys -> do_mget keys
            | Range (lo, hi) -> S_pairs (do_range lo hi)
            | Rangecount (lo, hi) -> S_int (List.length (do_range lo hi)))
          ops
      in
      (* ---- commit ------------------------------------------------ *)
      let validate_ranges () =
        List.iter
          (fun (lo, hi, fp) ->
            if fp_pairs (M.range st.h lo hi) <> fp then raise Conflict)
          !ranges
      in
      if Hashtbl.length buf = 0 then begin
        (* Read-only: no stripe acquisition, no clock bump.  The
           versionstamp read sits between the read phase and the
           probes — see the serialization argument at the top. *)
        let vs = Atomic.get st.clock in
        (try
           Span.in_phase Span.Validate (fun () ->
               Fault.hit fp_validate;
               Hashtbl.iter (fun s r -> check s r) reads;
               if !ranges <> [] then begin
                 let s0 = Atomic.get st.starts in
                 if s0 <> Atomic.get st.dones then raise Conflict;
                 validate_ranges ();
                 if Atomic.get st.starts <> s0 then raise Conflict
               end)
         with Fault.Injected _ -> raise Conflict);
        (vs, steps)
      end
      else begin
        let wstripes =
          List.sort_uniq compare
            (Hashtbl.fold (fun k _ acc -> stripe_of k :: acc) buf [])
        in
        (* stripe -> even word it was acquired from *)
        let held : (int, int) Hashtbl.t = Hashtbl.create 8 in
        let release_held () =
          Hashtbl.iter (fun s v -> Atomic.set st.stripes.(s) v) held
        in
        let acquire s =
          let rec go n =
            let v = Atomic.get st.stripes.(s) in
            if
              v land 1 = 0
              && Atomic.compare_and_set st.stripes.(s) v (v lor 1)
            then Hashtbl.replace held s v
            else if n >= max_spin then begin
              release_held ();
              raise Conflict
            end
            else begin
              Flock.Backoff.once spin;
              go (n + 1)
            end
          in
          go 0
        in
        List.iter acquire wstripes;
        Atomic.incr st.starts;
        let vs = 1 + Atomic.fetch_and_add st.clock 1 in
        (try
           Span.in_phase Span.Validate (fun () ->
               Fault.hit fp_validate;
               Hashtbl.iter
                 (fun s r ->
                   match Hashtbl.find_opt held s with
                   | Some v0 -> if v0 <> r then raise Conflict
                   | None -> check s r)
                 reads;
               if !ranges <> [] then begin
                 if Atomic.get st.starts <> Atomic.get st.dones + 1 then
                   raise Conflict;
                 let s0 = Atomic.get st.starts in
                 validate_ranges ();
                 if Atomic.get st.starts <> s0 then raise Conflict
               end);
           Span.in_phase Span.Install (fun () ->
               (* The fault point precedes the first mutation, so a
                  [Fail] rule aborts cleanly (nothing installed) and a
                  pause/stall merely delays a commit that then
                  completes — the leak-free contract. *)
               Fault.hit fp_commit;
               Hashtbl.iter
                 (fun k e ->
                   match e with
                   | W_del -> ignore (M.delete st.h k)
                   | W_put (v, true) ->
                       ignore (M.delete st.h k);
                       ignore (M.insert st.h k v)
                   | W_put (v, false) -> ignore (M.insert st.h k v))
                 buf;
               (* Feed tap: emit the whole batch at its versionstamp
                  BEFORE releasing the stripes — a conflicting later
                  commit cannot install (or emit) until these latches
                  drop, so per-key feed order equals stamp order. *)
               (match Atomic.get st.feed with
                | None -> ()
                | Some _ ->
                    emit_feed store vs
                      (Hashtbl.fold
                         (fun k e acc ->
                           (match e with
                            | W_put (v, _) -> (k, Some v)
                            | W_del -> (k, None))
                           :: acc)
                         buf []));
               Hashtbl.iter
                 (fun s _ -> Atomic.set st.stripes.(s) (vs lsl 1))
                 held)
         with e ->
           release_held ();
           Atomic.incr st.dones;
           (match e with
           | Conflict | Fault.Injected _ -> raise Conflict
           | e -> raise e));
        Atomic.incr st.dones;
        (vs, steps)
      end

let run store ops max_attempts =
  let b = Flock.Backoff.create () in
  let rec go attempt =
    match run_once store ops with
    | vs, steps ->
        Atomic.incr commits_ctr;
        Committed { vs; steps; attempts = attempt }
    | exception Conflict ->
        Atomic.incr retries_ctr;
        if attempt >= max_attempts then begin
          Atomic.incr aborts_ctr;
          Aborted { attempts = attempt }
        end
        else begin
          Flock.Backoff.once b;
          go (attempt + 1)
        end
  in
  go 1

let exec ?(token = 0) ?(max_attempts = 8) store ops =
  if token = 0 then run store ops max_attempts
  else
    match claim store token with
    | `Cached (vs, steps) ->
        Atomic.incr replays_ctr;
        Committed { vs; steps; attempts = 0 }
    | `Mine -> (
        match run store ops max_attempts with
        | Committed { vs; steps; _ } as r ->
            complete store token vs steps;
            r
        | Aborted _ as r ->
            unclaim store token;
            r
        | exception e ->
            unclaim store token;
            raise e)

(* ------------------------------------------------------------------ *)
(* Liveness grace for the stripe brackets.  Stripe latches are held
   for bounded work (one map call, or one buffered install), so under
   any *bounded* stall — including the fault plans the smoke gates arm
   (txn.commit pauses are milliseconds) — waiters always get through
   by spinning.  An *unbounded* stall (a crash-stopped domain parked
   inside a structure operation while holding a stripe latch, the
   Theorem 6.1 chaos schedule) must not convoy plain traffic behind a
   latch nobody will release: lock-freedom of plain single-key
   operations is the paper's central liveness claim and tier-1 tested.
   So every plain-path bracket spins through a grace and then
   degrades: writes apply latch-free and bump the stripe only if it is
   free (the parked holder's own release moves the word anyway,
   conservatively invalidating readers), reads fall back to the
   structure-level snapshot.  The degraded window is unreachable
   without a crash-stop fault on the write path; transactions
   themselves stay strict — their validation treats a busy stripe as a
   conflict and aborts past [max_attempts] rather than blocking.

   The grace MUST be wall-clock bounded, not iteration bounded: past
   the backoff limit each spin is a [Thread.yield], and on an
   unloaded domain 5k yields finish in well under a millisecond — an
   iteration count that comfortably outlasts a paused installer on
   one machine silently shrinks below the pause on another, and a
   reader that degrades during a {e bounded} mid-install pause can
   observe a torn state.  So the first [grace_spins] iterations are
   counted (cheap, no clock reads), and from there the bracket keeps
   spinning until [grace_seconds] of real time elapse.  Bounded
   pauses are milliseconds; 50ms of wall grace cannot be beaten by
   load. *)
let grace_spins = 5_000
let grace_seconds = 0.05

(* Returns a thunk that flips to [true] only once the grace is
   exhausted: spin-counted first, then wall-clock from the first
   post-count call. *)
let grace_clock () =
  let n = ref 0 and deadline = ref nan in
  fun () ->
    incr n;
    if !n <= grace_spins then false
    else
      let now = Unix.gettimeofday () in
      if Float.is_nan !deadline then begin
        deadline := now +. grace_seconds;
        false
      end
      else now >= !deadline

(* Single-key writes, routed through the stripe table so plain PUT/DEL
   traffic serializes with transactional commits.  The install is one
   map call under the held stripe, so there is no validation window and
   no [starts]/[dones] participation; a no-op (insert on present,
   delete on absent) releases the stripe to its ORIGINAL version to
   avoid aborting readers over a state that did not change.            *)

let single_write store k w apply =
  match store with
  | Store.Store st ->
      let s = mix k land st.mask in
      let b = Flock.Backoff.create () in
      let expired = grace_clock () in
      let rec acq () =
        if expired () then None
        else
          let v = Atomic.get st.stripes.(s) in
          if v land 1 = 0 && Atomic.compare_and_set st.stripes.(s) v (v lor 1)
          then Some v
          else begin
            Flock.Backoff.once b;
            acq ()
          end
      in
      (match acq () with
       | Some v0 ->
           let changed =
             try apply ()
             with e ->
               Atomic.set st.stripes.(s) v0;
               raise e
           in
           if changed then begin
             let vs = 1 + Atomic.fetch_and_add st.clock 1 in
             (* Same discipline as the commit path: tap before the
                stripe release so per-key feed order is stamp order. *)
             emit_feed store vs [ (k, w) ];
             Atomic.set st.stripes.(s) (vs lsl 1)
           end
           else Atomic.set st.stripes.(s) v0;
           changed
       | None ->
           (* Grace exceeded: a latch holder is parked (crash-stop
              chaos).  Apply latch-free — the structure itself is
              lock-free via helping — and bump the version only if the
              stripe is free; when it is still held, the parked
              holder's eventual release changes the word, which
              invalidates any reader that recorded it.               *)
           let changed = apply () in
           if changed then begin
             let rec bump () =
               let v = Atomic.get st.stripes.(s) in
               if v land 1 = 0 then
                 let nv = (1 + Atomic.fetch_and_add st.clock 1) lsl 1 in
                 if not (Atomic.compare_and_set st.stripes.(s) v nv) then
                   bump ()
             in
             bump ();
             (* Degraded (crash-stop) window: best-effort tap at the
                clock's current value; per-key ordering is already
                conceded here, exactly-once is not (one emit per
                applied write). *)
             emit_feed store (Atomic.get st.clock) [ (k, w) ]
           end;
           changed)

let put store k v =
  match store with
  | Store.Store st ->
      let module M = (val st.m) in
      single_write store k (Some v) (fun () -> M.insert st.h k v)

let del store k =
  match store with
  | Store.Store st ->
      let module M = (val st.m) in
      single_write store k None (fun () -> M.delete st.h k)

(* ------------------------------------------------------------------ *)
(* Serialized plain reads.  A structure-level snapshot (find /
   multifind / range) is atomic with respect to individual map calls
   but NOT with respect to a transactional install, which is a
   {e sequence} of map calls: a raw read can land between a commit's
   [DEL k] and its [PUT k v] and observe a state no serial execution
   produces.  These readers close that window seqlock-style: a result
   counts only if its bracket — the covering stripe words for point
   reads, the installer counters for ranges — held one even/quiet value
   across the whole structure read.  A failed bracket retries with
   backoff rather than aborting: it means a commit truly overlapped,
   and installs are short (apply one buffer under latches), so quiet
   windows recur the way they do for any seqlock reader.  Single-key
   writes need no bracket coverage beyond this: each is exactly one map
   call, which the structure-level snapshot already serializes.        *)

let get store k =
  match store with
  | Store.Store st ->
      let module M = (val st.m) in
      let s = mix k land st.mask in
      let b = Flock.Backoff.create () in
      let expired = grace_clock () in
      let rec go () =
        if expired () then M.find st.h k
        else
          let v1 = Atomic.get st.stripes.(s) in
          if v1 land 1 <> 0 then begin
            Flock.Backoff.once b;
            go ()
          end
          else
            let r = M.find st.h k in
            if Atomic.get st.stripes.(s) = v1 then r
            else begin
              Flock.Backoff.once b;
              go ()
            end
      in
      go ()

let mget store keys =
  match store with
  | Store.Store st ->
      let module M = (val st.m) in
      let stripes =
        List.sort_uniq compare
          (Array.fold_left (fun acc k -> (mix k land st.mask) :: acc) [] keys)
      in
      let b = Flock.Backoff.create () in
      let expired = grace_clock () in
      let rec go () =
        if expired () then M.multifind st.h keys
        else
          let pre =
            List.map (fun s -> (s, Atomic.get st.stripes.(s))) stripes
          in
          if List.exists (fun (_, v) -> v land 1 <> 0) pre then begin
            Flock.Backoff.once b;
            go ()
          end
          else
            let r = M.multifind st.h keys in
            if List.for_all (fun (s, v) -> Atomic.get st.stripes.(s) = v) pre
            then r
            else begin
              Flock.Backoff.once b;
              go ()
            end
      in
      go ()

(* Ranges cannot enumerate their covering stripes up front, so they
   bracket with the installer counters instead: a result computed while
   [starts = dones] held and [starts] did not advance overlapped no
   multi-op install. *)
let quiet : 'a. Store.t -> (unit -> 'a) -> 'a =
 fun store f ->
  match store with
  | Store.Store st ->
      let b = Flock.Backoff.create () in
      let expired = grace_clock () in
      let rec go () =
        if expired () then f ()
        else
          let d = Atomic.get st.dones in
          let s = Atomic.get st.starts in
          if s <> d then begin
            Flock.Backoff.once b;
            go ()
          end
          else
            let r = f () in
            if Atomic.get st.starts = s then r
            else begin
              Flock.Backoff.once b;
              go ()
            end
      in
      go ()

let range store lo hi =
  match store with
  | Store.Store st ->
      let module M = (val st.m) in
      quiet store (fun () -> M.range st.h lo hi)

let range_count store lo hi =
  match store with
  | Store.Store st ->
      let module M = (val st.m) in
      quiet store (fun () -> M.range_count st.h lo hi)
