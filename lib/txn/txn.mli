(** Multi-key optimistic transactions with versionstamped commits.

    The paper's O(1) snapshots make consistent multi-point {e reads}
    free; this module adds the other half — multi-key read-write
    transactions — with TL2-style optimistic concurrency control on top
    of any {!Dstruct.Map_intf.MAP}:

    - {b Read set.}  Point reads are bracketed by a versioned stripe
      lock ([v1]; find; [v2 = v1]) and recorded as [(stripe, version)]
      pairs; range reads are recorded as [(lo, hi, fingerprint)] of the
      result.  Reads observe current state (read-your-writes against
      the transaction's buffer).
    - {b Write buffer.}  PUT/DEL are buffered, never touching the
      structure until commit.  PUT keeps the repo-wide insert-only
      semantics: it fails with {!S_exists} when the key is (effectively)
      present.
    - {b Validate-and-install.}  Commit acquires the stripes of all
      written keys in canonical (ascending) order via single-word CAS
      latches, re-checks every recorded read version, then installs all
      writes and releases each stripe to one fresh global stamp — the
      {b versionstamp} — drawn from a shared commit clock.  Committed
      transactions are therefore totally ordered by versionstamp, and
      replaying them in that order reproduces the final state (the
      property [test/test_txn.ml]'s offline checker verifies).

    The stripe latches are deliberately {e not} [Flock.Lock]: FLOCK's
    lock-free locks run helper-replayed idempotent thunks, and a commit
    body (validate + install + release-to-new-stamp) is not idempotent
    under helping.  Plain CAS words keep the protocol's writes owned by
    exactly one domain; lock-freedom of the served stack is preserved
    by bounded spins that abort (and retry the whole transaction)
    rather than block.

    Tokens make EXEC replay exactly-once: passing the same non-zero
    [token] again returns the cached [(versionstamp, steps)] of the
    first commit instead of re-executing, closing the PUT/DEL
    reply-idempotency caveat of docs/RESILIENCE.md.  The cache keeps
    the most recent {!idem_capacity} committed tokens (FDB-style
    bounded idempotency window). *)

exception Conflict
(** Raised internally when validation fails; [exec] converts it into
    retries and, past [max_attempts], an {!Aborted} outcome. *)

(** One operation of a transaction, mirroring the wire commands. *)
type op =
  | Get of int
  | Put of int * int  (** key, value — insert-only, like wire PUT *)
  | Del of int
  | Mget of int array
  | Range of int * int  (** ordered structures only *)
  | Rangecount of int * int

(** Per-operation result, observed at the transaction's (serialized)
    read point. *)
type step =
  | S_ok  (** PUT succeeded *)
  | S_exists  (** PUT refused: key present *)
  | S_nil  (** GET on an absent key *)
  | S_int of int  (** GET value / DEL 0|1 / RANGECOUNT *)
  | S_vals of int option list  (** MGET *)
  | S_pairs of (int * int) list  (** RANGE, ascending *)

type outcome =
  | Committed of { vs : int; steps : step list; attempts : int }
      (** [vs] is the versionstamp: a fresh, globally-ordered commit
          token.  [attempts = 0] marks an idempotent replay served from
          the token cache. *)
  | Aborted of { attempts : int }
      (** Validation kept failing for [attempts] tries. *)

module Store : sig
  type t
  (** A transactional facade over one map handle: the stripe-latch
      table, commit clock and token cache.  Create exactly one per
      mounted structure and route {e all} writes (including single-key
      PUT/DEL) through it, so plain writes participate in stripe
      versioning and transactions validate against them. *)

  val create :
    ?stripes:int ->
    (module Dstruct.Map_intf.MAP with type t = 'h) ->
    'h ->
    t
  (** [stripes] (default 512) is rounded up to a power of two. *)

  val quiescent : t -> bool
  (** No stripe latch held and no commit in flight — the leak-free
      contract chaos tests assert after [Fault.disarm]. *)
end

val idem_capacity : int
(** Committed tokens retained per store (4096). *)

val grace_seconds : float
(** Wall-clock liveness grace for the plain-path stripe brackets
    (50ms).  A bracket that cannot complete within the grace — only
    possible when a latch holder is crash-stopped, never under the
    bounded pauses fault plans inject — degrades to latch-free
    operation so plain single-key traffic stays lock-free
    (Theorem 6.1).  Transactions never degrade: a busy stripe is a
    validation conflict. *)

(** {1 Commit feed (the replication tap)}

    At most one observer per store.  The observer is called once per
    installed commit — whole [MULTI/EXEC] batches as one call, plain
    single-key writes as a one-element call — with the versionstamp and
    the written key set ([(k, Some v)] = key now bound to [v],
    [(k, None)] = key now absent).  Calls happen {e while the written
    stripes are still latched}, so for any single key observer calls
    arrive in versionstamp order; calls for disjoint key sets may
    arrive out of stamp order (they commute).  Exactly-once replays
    served from the token cache do not re-emit.  Observer exceptions
    are swallowed: the tap must never turn an installed commit into an
    abort.  [lib/repl] is the intended observer. *)

val set_commit_observer : Store.t -> (int -> (int * int option) list -> unit) -> unit

val clear_commit_observer : Store.t -> unit

val idem_evictions : unit -> int
(** Committed tokens evicted FIFO past {!idem_capacity} — the
    [txn_idem_evictions] gauge.  A replay of an evicted token
    re-executes, so a nonzero rate means the exactly-once window is
    being outrun. *)

val exec : ?token:int -> ?max_attempts:int -> Store.t -> op list -> outcome
(** Run one transaction: execute [ops] against current state (buffering
    writes), then validate-and-install.  On validation conflict the
    whole transaction re-executes, up to [max_attempts] (default 8)
    times with backoff, then reports {!Aborted}.  A non-zero [token]
    makes the call exactly-once per store: a token already committed
    replays its cached result; concurrent calls with one token are
    serialized so exactly one executes.  Read-only transactions
    validate without acquiring any stripe and return the commit clock's
    current value as their versionstamp. *)

val put : Store.t -> int -> int -> bool
(** Single-key insert through the stripe table: acquires the key's
    stripe, performs the insert, and releases to a fresh versionstamp
    (or to the unchanged version when the key was already present).
    Same result contract as [MAP.insert]. *)

val del : Store.t -> int -> bool
(** Single-key delete through the stripe table; same contract as
    [MAP.delete]. *)

(** {1 Serialized plain reads}

    A structure-level snapshot is atomic against individual map calls
    but not against a transactional install (a {e sequence} of map
    calls): a raw read can observe the state between a commit's [DEL k]
    and its [PUT k v] — a state no serial execution produces.  These
    wrappers close that window seqlock-style and retry with backoff
    until a read overlapped no install, so every plain read returns a
    committed state.  The server routes GET/MGET/RANGE/RANGECOUNT
    through them (SCAN and SIZE stay structure-level diagnostics). *)

val get : Store.t -> int -> int option
(** [find] bracketed by the key's stripe word. *)

val mget : Store.t -> int array -> int option array
(** Atomic [multifind] bracketed by all covering stripe words. *)

val range : Store.t -> int -> int -> (int * int) list
(** [range] bracketed by the installer counters (quiet window: no
    multi-op install in flight or started during the scan). *)

val range_count : Store.t -> int -> int -> int
(** [range_count] under the same quiet-window bracket. *)

(** {1 Counters}

    Process-wide, also exported as [txn_*] gauges via
    [Flock.Telemetry.Gauge] (so they appear in Obs reports, STATS and
    METRICS). *)

val commits : unit -> int
(** Transactions committed (excluding cache replays). *)

val aborts : unit -> int
(** Transactions that exhausted [max_attempts]. *)

val validation_retries : unit -> int
(** Individual validation conflicts (every retried attempt counts). *)

val replays : unit -> int
(** Exactly-once replays served from a token cache. *)
