(* Fault injection for the versioning core and the wire layer.  See the
   interface for the model; the implementation notes that matter:

   - The only cost when disarmed is [Atomic.get gate] + a not-taken
     branch in {!hit}/{!io_check}.
   - Trigger state is per-domain (DLS): a hit counter per rule and one
     splitmix RNG seeded from [(plan seed, domain ordinal)].  Arming
     bumps a generation counter; each domain lazily resets its state
     when it notices the generation moved, so replaying a plan replays
     its decisions.
   - [Stall_forever] parks in a sleep loop until the generation moves
     (disarm or re-arm) — crash-stop for the armed window, joinable at
     shutdown.
   - This module sits below [Flock] in the dependency order (Flock's own
     hot paths carry points), so it must not use [Flock.Registry] or
     [Flock.Telemetry]; it keeps its own domain ordinals and counters,
     and [Verlib.Obs] re-exports {!fired_total} as the [faults_fired]
     gauge. *)

exception Injected of string

type action =
  | Pause of float
  | Stall_forever
  | Yield_storm of int
  | Fail of exn
  | Short_write of int
  | Econnreset
  | Eagain_burst of int
  | Partition of float
  | Dup
  | Reorder

type trigger = Always | Once | Nth of int | Every of int | Prob of float

type rule = { r_point : string; r_trigger : trigger; r_action : action }

type plan = { p_name : string; p_seed : int; p_rules : rule list }

let plan ?(name = "custom") ?(seed = 1) rules =
  { p_name = name; p_seed = seed; p_rules = rules }

(* ------------------------------------------------------------------ *)
(* Armed state                                                         *)

type armed_state = {
  a_plan : plan;
  a_gen : int;
  a_rules : rule array;
  a_once : bool Atomic.t array;  (** per-rule process-wide Once latch *)
}

let gate = Atomic.make false

let generation = Atomic.make 0

let state : armed_state option Atomic.t = Atomic.make None

let fired = Atomic.make 0

let stalled = Atomic.make 0

let fired_total () = Atomic.get fired

let stalled_now () = Atomic.get stalled

let armed () =
  if Atomic.get gate then
    match Atomic.get state with Some a -> Some a.a_plan | None -> None
  else None

let disarm () =
  Atomic.set gate false;
  Atomic.set state None;
  Atomic.incr generation

let arm p =
  Atomic.set gate false;
  let a =
    {
      a_plan = p;
      a_gen = Atomic.get generation + 1;
      a_rules = Array.of_list p.p_rules;
      a_once = Array.init (List.length p.p_rules) (fun _ -> Atomic.make false);
    }
  in
  Atomic.set state (Some a);
  Atomic.incr generation;
  Atomic.set gate true

(* ------------------------------------------------------------------ *)
(* Per-domain trigger state                                            *)

(* Domain ordinals: assigned once per domain, first fault-state access.
   Deterministic whenever domain spawn order is (the tests pin a single
   domain, where the ordinal is irrelevant). *)
let next_ord = Atomic.make 0

type dstate = {
  d_ord : int;
  mutable d_gen : int;  (** generation the fields below belong to *)
  mutable d_rng : int;
  mutable d_counts : int array;  (** hits per rule index *)
}

let dkey : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { d_ord = Atomic.fetch_and_add next_ord 1; d_gen = -1; d_rng = 0;
        d_counts = [||] })

(* Splitmix (same construction as Workload.Splitmix, inlined because
   this library sits below everything): constants truncated to OCaml's
   63-bit int range. *)
let golden_gamma = 0x1E3779B97F4A7C15

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14B06A1E3769D9 in
  z lxor (z lsr 31)

let rng_next st =
  st.d_rng <- st.d_rng + golden_gamma;
  mix st.d_rng land max_int

let rng_span = Float.of_int max_int +. 1.

let rng_float st = Float.of_int (rng_next st) /. rng_span

let dstate (a : armed_state) =
  let st = Domain.DLS.get dkey in
  if st.d_gen <> a.a_gen then begin
    st.d_gen <- a.a_gen;
    st.d_rng <- ((a.a_plan.p_seed * 0x2545F4914F6CDD1D) + st.d_ord) * 0x9E3779B9;
    st.d_counts <- Array.make (Array.length a.a_rules) 0
  end;
  st

(* ------------------------------------------------------------------ *)
(* Points                                                              *)

module Point = struct
  type t = {
    pt_name : string;
    pt_fired : int Atomic.t;
    (* armed-plan rule indices matching this point, cached per
       generation; only touched when the gate is open *)
    mutable pt_cache_gen : int;
    mutable pt_cache : int list;
    (* [Partition] latch: while [gettimeofday () < pt_down_until] (and
       the generation matches — disarm heals instantly) every hit at
       this point raises, so reconnect attempts fail for the whole
       window, not just the call that drew the action. *)
    pt_down_until : float Atomic.t;
    pt_down_gen : int Atomic.t;
  }

  let registry : t list ref = ref []

  let registry_mutex = Mutex.create ()

  let make pt_name =
    Mutex.lock registry_mutex;
    let p =
      match List.find_opt (fun p -> p.pt_name = pt_name) !registry with
      | Some p -> p
      | None ->
          let p =
            { pt_name; pt_fired = Atomic.make 0; pt_cache_gen = -1;
              pt_cache = []; pt_down_until = Atomic.make 0.;
              pt_down_gen = Atomic.make (-1) }
          in
          registry := p :: !registry;
          p
    in
    Mutex.unlock registry_mutex;
    p

  let name p = p.pt_name

  let all_names () =
    Mutex.lock registry_mutex;
    let l = List.rev_map (fun p -> p.pt_name) !registry in
    Mutex.unlock registry_mutex;
    l

  let find pt_name =
    Mutex.lock registry_mutex;
    let p = List.find_opt (fun p -> p.pt_name = pt_name) !registry in
    Mutex.unlock registry_mutex;
    p
end

let fired_at name =
  match Point.find name with
  | Some p -> Atomic.get p.Point.pt_fired
  | None -> 0

(* ["server.*"] and ["*"] are prefix patterns; anything else matches
   exactly. *)
let pattern_matches pat name =
  let n = String.length pat in
  if n > 0 && pat.[n - 1] = '*' then
    let prefix = String.sub pat 0 (n - 1) in
    String.length name >= n - 1 && String.sub name 0 (n - 1) = prefix
  else String.equal pat name

let matching_rules (a : armed_state) (p : Point.t) =
  if p.Point.pt_cache_gen = a.a_gen then p.Point.pt_cache
  else begin
    let idxs = ref [] in
    Array.iteri
      (fun i r ->
        if pattern_matches r.r_point p.Point.pt_name then idxs := i :: !idxs)
      a.a_rules;
    let idxs = List.rev !idxs in
    p.Point.pt_cache <- idxs;
    p.Point.pt_cache_gen <- a.a_gen;
    idxs
  end

(* ------------------------------------------------------------------ *)
(* Decision and execution                                              *)

(* Every matching rule's counter advances on every hit (and every Prob
   rule draws), whether or not an earlier rule already fired — firing
   must not perturb the trigger sequence, or replay would diverge. *)
let decide (a : armed_state) st idx =
  let r = a.a_rules.(idx) in
  let n = st.d_counts.(idx) + 1 in
  st.d_counts.(idx) <- n;
  match r.r_trigger with
  | Always -> true
  | Once ->
      (not (Atomic.get a.a_once.(idx)))
      && Atomic.compare_and_set a.a_once.(idx) false true
  | Nth k -> n = k
  | Every k -> k > 0 && n mod k = 0
  | Prob p ->
      let draw = rng_float st in
      draw < p

let evaluate (p : Point.t) : action option =
  match Atomic.get state with
  | None -> None
  | Some a -> (
      match matching_rules a p with
      | [] -> None
      | idxs ->
          let st = dstate a in
          let chosen = ref None in
          List.iter
            (fun idx ->
              let fire = decide a st idx in
              if fire && !chosen = None then
                chosen := Some a.a_rules.(idx).r_action)
            idxs;
          (match !chosen with
           | Some _ ->
               Atomic.incr fired;
               Atomic.incr p.Point.pt_fired
           | None -> ());
          !chosen)

(* Observer for blocking actions (pause/stall/yield): layers above can
   wrap the blocked interval to attribute it — [Verlib.Obs] installs a
   wrapper that books the time into the current request span's "stall"
   phase, which is how injected chaos shows up as a named phase in
   request traces instead of silently inflating whatever phase was
   open.  The default is transparent.  This module sits below Flock, so
   the hook is how attribution crosses the layering without a
   dependency. *)
let blocking_observer : ((unit -> unit) -> unit) ref = ref (fun f -> f ())

let set_blocking_observer f = blocking_observer := f

let observe_blocking f = !blocking_observer f

(* Park until the generation moves (disarm or a new plan). *)
let stall_here () =
  let g = Atomic.get generation in
  Atomic.incr stalled;
  Fun.protect
    ~finally:(fun () -> Atomic.decr stalled)
    (fun () ->
      while Atomic.get generation = g do
        Unix.sleepf 0.002
      done)

(* Partition windows: latched on the point when the action fires, so
   subsequent hits (including reconnect attempts from other domains)
   keep failing until the wall clock passes the window or the plan is
   disarmed. *)
let down_now (p : Point.t) =
  match Atomic.get state with
  | None -> false
  | Some a ->
      Atomic.get p.Point.pt_down_gen = a.a_gen
      && Unix.gettimeofday () < Atomic.get p.Point.pt_down_until

let latch_partition (p : Point.t) d =
  (match Atomic.get state with
   | Some a ->
       Atomic.set p.Point.pt_down_until (Unix.gettimeofday () +. d);
       Atomic.set p.Point.pt_down_gen a.a_gen
   | None -> ());
  raise (Injected "partition")

let perform_at (p : Point.t) = function
  | Pause d -> if d > 0. then observe_blocking (fun () -> Unix.sleepf d)
  | Stall_forever -> observe_blocking stall_here
  | Yield_storm n ->
      observe_blocking (fun () ->
          for _ = 1 to n do
            Thread.yield ()
          done)
  | Fail e -> raise e
  | Partition d -> latch_partition p d
  | Short_write _ | Econnreset | Eagain_burst _ | Dup | Reorder ->
      (* Caller-interpreted actions (I/O trio against a file descriptor,
         Dup/Reorder against a record stream); at an uninterpreted site
         they are inert. *)
      ()

let raise_down (p : Point.t) =
  Atomic.incr fired;
  Atomic.incr p.Point.pt_fired;
  raise (Injected "partition")

let hit p =
  if Atomic.get gate then begin
    if down_now p then raise_down p;
    match evaluate p with None -> () | Some a -> perform_at p a
  end

let io_check p =
  if Atomic.get gate then begin
    if down_now p then raise_down p;
    match evaluate p with
    | None -> None
    | Some ((Short_write _ | Econnreset | Eagain_burst _) as io) -> Some io
    | Some a ->
        perform_at p a;
        None
  end
  else None

let feed_check p =
  if Atomic.get gate then begin
    if down_now p then raise_down p;
    match evaluate p with
    | None -> None
    | Some ((Dup | Reorder) as a) -> Some a
    | Some a ->
        perform_at p a;
        None
  end
  else None

(* ------------------------------------------------------------------ *)
(* Plan grammar                                                        *)

let trigger_to_string = function
  | Always -> "always"
  | Once -> "once"
  | Nth n -> Printf.sprintf "nth=%d" n
  | Every n -> Printf.sprintf "every=%d" n
  | Prob p -> Printf.sprintf "p=%g" p

let action_to_string = function
  | Pause s -> Printf.sprintf "pause=%g" (s *. 1000.)
  | Stall_forever -> "stall"
  | Yield_storm n -> Printf.sprintf "yield=%d" n
  | Fail (Injected msg) -> if msg = "fault" then "fail" else "fail=" ^ msg
  | Fail e -> "fail=" ^ Printexc.to_string e
  | Short_write n -> Printf.sprintf "shortwrite=%d" n
  | Econnreset -> "econnreset"
  | Eagain_burst n -> Printf.sprintf "eagain=%d" n
  | Partition s -> Printf.sprintf "partition=%g" (s *. 1000.)
  | Dup -> "dup"
  | Reorder -> "reorder"

let rule_to_string r =
  Printf.sprintf "%s:%s@%s" r.r_point
    (action_to_string r.r_action)
    (trigger_to_string r.r_trigger)

let plan_to_string p =
  Printf.sprintf "seed=%d;%s" p.p_seed
    (String.concat ";" (List.map rule_to_string p.p_rules))

let ( let* ) = Result.bind

let int_of name s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> Ok v
  | Some _ | None -> Error (Printf.sprintf "%s: bad integer %S" name s)

let float_of name s =
  match float_of_string_opt s with
  | Some v when v >= 0. -> Ok v
  | Some _ | None -> Error (Printf.sprintf "%s: bad number %S" name s)

let parse_trigger s =
  match String.split_on_char '=' s with
  | [ "always" ] -> Ok Always
  | [ "once" ] -> Ok Once
  | [ "nth"; n ] ->
      let* n = int_of "nth" n in
      if n >= 1 then Ok (Nth n) else Error "nth: must be >= 1"
  | [ "every"; n ] ->
      let* n = int_of "every" n in
      if n >= 1 then Ok (Every n) else Error "every: must be >= 1"
  | [ "p"; f ] ->
      let* f = float_of "p" f in
      if f <= 1. then Ok (Prob f) else Error "p: must be in [0,1]"
  | _ -> Error (Printf.sprintf "bad trigger %S" s)

let parse_action ~point s =
  (* One rule carries exactly one action.  A comma'd action spec is the
     common way to try for more, so diagnose it by name: the error must
     tell the user which point the overloaded rule was aimed at, and
     that the supported spelling is one rule per action (the same point
     may appear in any number of rules; see docs/RESILIENCE.md). *)
  if String.contains s ',' then
    Error
      (Printf.sprintf
         "point %s: multiple actions on one point in a single rule (%S); a \
          rule carries exactly one action — repeat the point instead, e.g. \
          %S"
         point s
         (String.concat ";"
            (List.map
               (fun a -> point ^ ":" ^ String.trim a)
               (String.split_on_char ',' s))))
  else
    match String.split_on_char '=' s with
    | [ "stall" ] -> Ok Stall_forever
    | [ "econnreset" ] -> Ok Econnreset
    | [ "dup" ] -> Ok Dup
    | [ "reorder" ] -> Ok Reorder
    | [ "fail" ] -> Ok (Fail (Injected "fault"))
    | [ "fail"; msg ] -> Ok (Fail (Injected msg))
    | [ "pause"; ms ] ->
        let* ms = float_of "pause" ms in
        Ok (Pause (ms /. 1000.))
    | [ "partition"; ms ] ->
        let* ms = float_of "partition" ms in
        if ms > 0. then Ok (Partition (ms /. 1000.))
        else Error "partition: must be > 0"
    | [ "yield"; n ] ->
        let* n = int_of "yield" n in
        Ok (Yield_storm n)
    | [ "shortwrite"; n ] ->
        let* n = int_of "shortwrite" n in
        if n >= 1 then Ok (Short_write n) else Error "shortwrite: must be >= 1"
    | [ "eagain"; n ] ->
        let* n = int_of "eagain" n in
        if n >= 1 then Ok (Eagain_burst n) else Error "eagain: must be >= 1"
    | _ -> Error (Printf.sprintf "point %s: bad action %S" point s)

let parse_rule s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "rule %S: expected POINT:ACTION[@TRIGGER]" s)
  | Some i ->
      let point = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      if point = "" then Error (Printf.sprintf "rule %S: empty point" s)
      else
        let* action, trigger =
          match String.index_opt rest '@' with
          | None ->
              let* a = parse_action ~point rest in
              Ok (a, Always)
          | Some j ->
              let* a = parse_action ~point (String.sub rest 0 j) in
              let* t =
                parse_trigger
                  (String.sub rest (j + 1) (String.length rest - j - 1))
              in
              Ok (a, t)
        in
        Ok { r_point = point; r_trigger = trigger; r_action = action }

let plan_of_string spec =
  let parts =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let seed, rules_spec =
    match parts with
    | first :: rest when String.length first > 5 && String.sub first 0 5 = "seed="
      -> (
        match int_of_string_opt (String.sub first 5 (String.length first - 5)) with
        | Some s -> (s, rest)
        | None -> (1, parts))
    | _ -> (1, parts)
  in
  if rules_spec = [] then Error "empty plan"
  else
    let* rules =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          let* r = parse_rule s in
          Ok (r :: acc))
        (Ok []) rules_spec
    in
    Ok { p_name = "spec"; p_seed = seed; p_rules = List.rev rules }

(* ------------------------------------------------------------------ *)
(* Presets (the named schedules the soak and smoke targets run under)   *)

let presets =
  [
    (* The Theorem 6.1 schedule: the first domain to win a lock-free
       lock acquisition crash-stops inside its critical section; peers
       must finish via helping. *)
    ("crash-stop-locker", "lock.acquire:stall@once");
    (* The same schedule against blocking locks: the convoy the paper's
       oversubscription experiments measure (no helping, contenders
       wait until disarm). *)
    ("blocking-convoy", "lock.acquire:stall@once");
    (* One domain parks inside an epoch: the global epoch cannot pass
       it, [epoch_lag] climbs and deferred reclamation stalls until the
       pause ends. *)
    ("stalled-reclaimer", "epoch.enter:pause=250@once");
    (* Widen the TBD window: sleep between observing a TBD stamp and
       CASing it, forcing other threads through the set-stamp helping
       path (Theorem 6.2). *)
    ("tbd-window", "seed=11;stamp.set:pause=1@p=0.02");
    (* Preemption storms at the CAS sites. *)
    ("yield-storm", "seed=5;vptr.cas:yield=40@p=0.05;idem.cas:yield=40@p=0.05");
    (* Torn wire: resets and short writes on both ends; the client
       retry layer and the server's partial-write loops must mask all
       of it. *)
    ( "flaky-wire",
      "seed=23;client.write:econnreset@p=0.01;client.read:econnreset@p=0.01;\
       server.write:shortwrite=7@p=0.05;server.read:eagain=2@p=0.03" );
    (* Transaction chaos: a quarter of commit validations fail outright
       (forced OCC aborts — the retry storm), and a sprinkle of commits
       pause mid-install with the stripe latches held, stretching the
       window racing validators must either wait out or abort on.  The
       [Txn] contract under this plan: every commit completes or aborts
       cleanly (no latch leaked, no partial install) — [make txn-smoke]
       and test_txn assert it. *)
    ( "abort-storm",
      "seed=77;txn.validate:fail@p=0.25;txn.commit:pause=1@p=0.05" );
    (* Split brain: the replication feed partitions for a window
       mid-workload (sends fail, reconnects keep failing until the
       window closes), and reconnect catch-up redelivers a sprinkle of
       records.  The contract the soak's divergence-then-converge audit
       enforces: lag gauges rise during the window, the replica dedups
       redelivery by seq, and after heal the replica's watermark state
       conserves the bank exactly (docs/REPLICATION.md). *)
    ( "split-brain-window",
      "seed=42;repl.send:partition=600@once;repl.send:dup@p=0.05" );
  ]

let find_plan name =
  match List.assoc_opt name presets with
  | Some spec -> (
      match plan_of_string spec with
      | Ok p -> Ok { p with p_name = name }
      | Error e -> Error (Printf.sprintf "preset %s: %s" name e))
  | None -> plan_of_string name
