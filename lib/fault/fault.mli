(** Fault injection for the versioning core and the wire layer.

    VERLIB's central theorems are adversarial-schedule claims: a
    lock-free lock finishes even when its acquirer stalls forever
    (helping, Theorem 6.1); set-stamp and shortcutting converge under
    arbitrary interleavings of non-idempotent helpers (Theorem 6.2);
    version chains stay bounded only while reclamation keeps pace.  The
    scheduler will not produce those schedules on demand — this module
    does.

    Design, mirroring [Flock.Telemetry]'s discipline:

    - {b Named points.}  Instrumented sites create a {!Point.t} once at
      module init ([Fault.Point.make "lock.acquire"]) and call
      {!hit} / {!io_check} inline.  The catalogue of shipped points is
      documented in docs/RESILIENCE.md.
    - {b Zero cost when disabled.}  [hit] starts with a single
      [Atomic.get] of the global gate and a not-taken branch — the same
      cost class as [Telemetry.emit] with tracing off, already paid on
      these paths.
    - {b Deterministic seeded plans.}  A {!plan} is a list of
      [point-pattern / trigger / action] rules plus a seed.  Triggers
      are evaluated against per-domain hit counters and a per-domain
      splitmix RNG derived from [(seed, domain ordinal)], so replaying
      the same plan against the same per-domain hit sequence reproduces
      the same fire/no-fire decisions ([test/test_fault.ml] checks
      this).
    - {b Crash-stop, not crash-dead.}  {!action.Stall_forever} parks the
      hitting domain until the plan is disarmed (or replaced), modelling
      a crash-stopped thread for the duration of the experiment while
      still allowing a quiescent join at shutdown. *)

exception Injected of string
(** What [Fail] rules raise at the injection site. *)

(** {1 Actions} *)

type action =
  | Pause of float  (** sleep this many seconds at the site *)
  | Stall_forever
      (** park until {!disarm} (crash-stop for the armed window) *)
  | Yield_storm of int  (** [Thread.yield] this many times *)
  | Fail of exn  (** raise at the site (wire points; see docs) *)
  | Short_write of int
      (** I/O: cap one [write] at this many bytes (caller-interpreted) *)
  | Econnreset  (** I/O: raise [Unix_error (ECONNRESET, _, _)] *)
  | Eagain_burst of int
      (** I/O: answer the next call with [EAGAIN] (caller-interpreted;
          the argument is a burst hint carried to the site) *)
  | Partition of float
      (** network partition: raise [Injected "partition"] at the site
          {e and} latch the point down for this many seconds — every
          subsequent {!hit}/{!io_check}/{!feed_check} at the point
          raises until the window elapses (or {!disarm} heals it), so
          reconnect attempts fail for the whole window *)
  | Dup
      (** feed: deliver the next record twice (caller-interpreted via
          {!feed_check}; receivers must dedup) *)
  | Reorder
      (** feed: swap the next record with its successor
          (caller-interpreted via {!feed_check}) *)

(** {1 Triggers} *)

type trigger =
  | Always
  | Once  (** fire exactly once process-wide (first domain to arrive) *)
  | Nth of int  (** fire on the n-th hit of each domain (1-based) *)
  | Every of int  (** fire on every n-th hit of each domain *)
  | Prob of float  (** fire with this probability (per-domain seeded RNG) *)

(** {1 Plans} *)

type rule = {
  r_point : string;
      (** exact point name, or a prefix pattern ending in ['*']
          (["server.*"], ["*"]) *)
  r_trigger : trigger;
  r_action : action;
}

type plan = { p_name : string; p_seed : int; p_rules : rule list }

val plan : ?name:string -> ?seed:int -> rule list -> plan
(** Default seed 1. *)

val plan_of_string : string -> (plan, string) result
(** Parse the plan grammar (docs/RESILIENCE.md):
    [\[seed=N;\] RULE (";" RULE)*] where
    [RULE := POINT ":" ACTION \["@" TRIGGER\]],
    [ACTION := pause=MS | stall | yield=N | fail\[=MSG\] | shortwrite=N
    | econnreset | eagain=N | partition=MS | dup | reorder] and
    [TRIGGER := always | once | nth=N | every=N | p=F] (default
    [always]).  Example:
    ["seed=7;lock.acquire:stall@once;client.write:econnreset@p=0.02"].

    A rule carries exactly {e one} action; to layer several actions on
    one point, repeat the point in separate rules
    (["repl.send:partition=600@once;repl.send:dup@p=0.05"]).  A comma'd
    action spec is rejected with an error naming the offending point. *)

val plan_to_string : plan -> string
(** Canonical spec; [plan_of_string] round-trips it. *)

val presets : (string * string) list
(** Named plans shipped with the repo: [crash-stop-locker],
    [blocking-convoy], [stalled-reclaimer], [tbd-window], [yield-storm],
    [flaky-wire], [abort-storm], [split-brain-window]. *)

val find_plan : string -> (plan, string) result
(** A preset name, or a raw spec via {!plan_of_string}. *)

(** {1 Arming} *)

val arm : plan -> unit
(** Install [plan] as the process-wide armed plan (replacing any other)
    and open the gate.  Per-domain trigger state (hit counters, RNG)
    restarts from the plan seed. *)

val disarm : unit -> unit
(** Close the gate and release every domain parked in
    [Stall_forever].  Idempotent. *)

val armed : unit -> plan option

(** {1 Points} *)

module Point : sig
  type t

  val make : string -> t
  (** Create-or-intern: points are process-global and live forever;
      calling [make] twice with one name returns the same point. *)

  val name : t -> string

  val all_names : unit -> string list
  (** Registered points, registration order — the live catalogue. *)
end

val hit : Point.t -> unit
(** Evaluate the armed plan at this site.  Scheduling actions (pause /
    stall / yield) are performed in place; [Fail e] raises [e]; I/O
    actions are {e ignored} here (they need caller interpretation — use
    {!io_check} at wire sites). *)

val io_check : Point.t -> action option
(** Like {!hit}, but returns [Short_write]/[Econnreset]/[Eagain_burst]
    to the caller for interpretation against the actual file
    descriptor.  Scheduling actions are still performed in place (and
    return [None]); [Fail e] still raises. *)

val feed_check : Point.t -> action option
(** Like {!io_check} for record-stream sites ([repl.send] and friends):
    returns [Dup]/[Reorder] for the caller to interpret against the
    record it is about to ship; everything else behaves as in {!hit}.
    [Partition] (from any of the three entry points) raises and latches
    the point's down window. *)

(** {1 Attribution} *)

val set_blocking_observer : ((unit -> unit) -> unit) -> unit
(** Install a wrapper around the blocking actions ([Pause],
    [Stall_forever], [Yield_storm]): [perform] runs the blocked interval
    as [wrapper sleep] instead of [sleep].  [Verlib.Obs] installs a
    wrapper that books the interval into the current request span's
    [stall] phase, so injected chaos is attributed by name in request
    traces rather than inflating whichever phase happened to be open.
    The wrapper must call its argument exactly once; the default is
    [fun f -> f ()]. *)

(** {1 Accounting} *)

val fired_total : unit -> int
(** Faults fired since process start (all points, all plans) — exported
    as the [faults_fired] gauge by [Verlib.Obs]. *)

val fired_at : string -> int
(** Fired count of one named point (0 for unknown points). *)

val stalled_now : unit -> int
(** Domains currently parked in [Stall_forever]. *)
