type command =
  | Ping
  | Get of int
  | Put of int * int
  | Del of int
  | Mget of int array
  | Range of int * int
  | Rangecount of int * int
  | Scan of int
  | Size
  | Stats
  | Metrics
  | Profile of int
      (** profiler snapshot; the arg is a window in ms (0 = cumulative) *)
  | Multi
  | Exec of int
      (** commit the queued transaction; the arg is an idempotency token
          (0 = none) *)
  | Discard
  | Subscribe of int * int * int
      (** stream committed change records touching [lo, hi], starting
          after log seq [from] (0 = from now) — the connection becomes a
          push stream (docs/REPLICATION.md) *)
  | Watch of int * int * int
      (** one-shot: block until a committed change touches [lo, hi] (or
          the timeout in ms elapses; 0 = server default) *)
  | Sync
      (** snapshot handshake: one frame carrying (seq, stamp) and every
          binding — the replica bootstrap *)
  | Replstats
  | Promote  (** replica -> primary: stop applying, accept writes *)
  | Ack of int * int
      (** subscriber cursor advance: (seq, stamp) applied downstream *)
  | Quit

type reply =
  | Ok_
  | Pong
  | Exists
  | Err of string
  | Busy of int
  | Int of int
  | Nil
  | Bulk of string
  | Arr of reply list
  | Queued
  | Aborted of int
      (** transaction validation kept failing; the arg is the attempt
          count spent server-side *)

(* --- command classification ---------------------------------------------- *)

(* Safe to re-issue after an ambiguous failure.  Reads trivially; PUT and
   DEL because re-applying the same binding/removal converges to the same
   map state (effect idempotence — see docs/RESILIENCE.md for the caveat
   about interleaved writers to the same key).  QUIT is excluded: blindly
   re-sending it after a reconnect would close the fresh connection. *)
let idempotent = function
  | Ping | Get _ | Put _ | Del _ | Mget _ | Range _ | Rangecount _ | Scan _
  | Size | Stats | Metrics | Profile _ | Multi | Discard
  (* Replication verbs: SUBSCRIBE/SYNC re-issue from the client's
     cursor, ACK is a monotone cursor advance, PROMOTE of a primary is
     a no-op — all safe to blind-resend. *)
  | Subscribe _ | Watch _ | Sync | Replstats | Promote | Ack _ ->
      true
  | Exec t ->
      (* With a token the commit is exactly-once server-side, so blind
         re-send is safe; without one a replayed EXEC could commit
         twice. *)
      t > 0
  | Quit -> false

(* Commands whose execution takes a snapshot and walks many versioned
   pointers — the expensive class, shed first under overload.  EXEC
   belongs here: a transaction commit validates a whole read set and
   may retry. *)
let snapshot_heavy = function
  | Mget _ | Range _ | Rangecount _ | Scan _ | Exec _ | Sync | Watch _ -> true
  | Ping | Get _ | Put _ | Del _ | Size | Stats | Metrics | Profile _ | Multi
  | Discard | Subscribe _ | Replstats | Promote | Ack _ | Quit ->
      false

(* --- command parsing ---------------------------------------------------- *)

(* Tokenise one line: split on single spaces, drop empty tokens (so runs
   of spaces and a trailing \r are harmless). *)
let tokens line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let int_arg name s k =
  match int_of_string_opt s with
  | Some v -> k v
  | None -> Error (Printf.sprintf "%s: not an integer %S" name s)

let parse_command_tokens toks =
  (* Total by construction; the catch-all is belt-and-braces so a parser
     bug can never take a connection (or the server) down. *)
  try
    match toks with
    | [] -> Error "empty command"
    | verb :: args -> (
        match (String.uppercase_ascii verb, args) with
        | "PING", [] -> Ok Ping
        | "GET", [ k ] -> int_arg "key" k (fun k -> Ok (Get k))
        | "PUT", [ k; v ] ->
            int_arg "key" k (fun k -> int_arg "value" v (fun v -> Ok (Put (k, v))))
        | "DEL", [ k ] -> int_arg "key" k (fun k -> Ok (Del k))
        | "MGET", (_ :: _ as ks) ->
            let rec go acc = function
              | [] -> Ok (Mget (Array.of_list (List.rev acc)))
              | k :: rest -> int_arg "key" k (fun k -> go (k :: acc) rest)
            in
            go [] ks
        | "MGET", [] -> Error "MGET needs at least one key"
        | "RANGE", [ lo; hi ] ->
            int_arg "lo" lo (fun lo -> int_arg "hi" hi (fun hi -> Ok (Range (lo, hi))))
        | "RANGECOUNT", [ lo; hi ] ->
            int_arg "lo" lo (fun lo ->
                int_arg "hi" hi (fun hi -> Ok (Rangecount (lo, hi))))
        | "SCAN", [] -> Ok (Scan 0)
        | "SCAN", [ n ] -> int_arg "limit" n (fun n -> Ok (Scan (max 0 n)))
        | "SIZE", [] -> Ok Size
        | "STATS", [] -> Ok Stats
        | "METRICS", [] -> Ok Metrics
        | "PROFILE", [] -> Ok (Profile 0)
        | "PROFILE", [ ms ] ->
            int_arg "window" ms (fun ms -> Ok (Profile (max 0 ms)))
        | "MULTI", [] -> Ok Multi
        | "EXEC", [] -> Ok (Exec 0)
        | "EXEC", [ t ] ->
            int_arg "token" t (fun t ->
                if t > 0 then Ok (Exec t) else Error "EXEC: token must be > 0")
        | "DISCARD", [] -> Ok Discard
        | "SUBSCRIBE", [ lo; hi ] ->
            int_arg "lo" lo (fun lo ->
                int_arg "hi" hi (fun hi -> Ok (Subscribe (lo, hi, 0))))
        | "SUBSCRIBE", [ lo; hi; seq ] ->
            int_arg "lo" lo (fun lo ->
                int_arg "hi" hi (fun hi ->
                    int_arg "seq" seq (fun seq ->
                        if seq >= 0 then Ok (Subscribe (lo, hi, seq))
                        else Error "SUBSCRIBE: seq must be >= 0")))
        | "WATCH", [ lo; hi ] ->
            int_arg "lo" lo (fun lo ->
                int_arg "hi" hi (fun hi -> Ok (Watch (lo, hi, 0))))
        | "WATCH", [ lo; hi; ms ] ->
            int_arg "lo" lo (fun lo ->
                int_arg "hi" hi (fun hi ->
                    int_arg "timeout" ms (fun ms -> Ok (Watch (lo, hi, max 0 ms)))))
        | "SYNC", [] -> Ok Sync
        | "REPLSTATS", [] -> Ok Replstats
        | "PROMOTE", [] -> Ok Promote
        | "ACK", [ seq; stamp ] ->
            int_arg "seq" seq (fun seq ->
                int_arg "stamp" stamp (fun stamp ->
                    if seq >= 0 && stamp >= 0 then Ok (Ack (seq, stamp))
                    else Error "ACK: seq and stamp must be >= 0"))
        | "QUIT", [] -> Ok Quit
        | ( (("PING" | "GET" | "PUT" | "DEL" | "RANGE" | "RANGECOUNT" | "SCAN"
             | "SIZE" | "STATS" | "METRICS" | "PROFILE" | "MULTI" | "EXEC"
             | "DISCARD" | "SUBSCRIBE" | "WATCH" | "SYNC" | "REPLSTATS"
             | "PROMOTE" | "ACK" | "QUIT") as v),
            _ ) ->
            Error (Printf.sprintf "wrong number of arguments for %s" v)
        | v, _ ->
            (* Cap the echoed verb so garbage can't bloat the error. *)
            let v = if String.length v > 32 then String.sub v 0 32 ^ "..." else v in
            Error (Printf.sprintf "unknown command %S" v))
  with _ -> Error "unparsable command"

(* Trace-context propagation (docs/PROTOCOL.md): any command may be
   prefixed [TRACE <id>], asking the server to record a request span and
   answer with an [@]-framed phase decomposition ahead of the data
   reply.  The id is an opaque positive integer chosen by the client
   (the loadgen uses it to join client RTT with the server-side span);
   [TRACE] composes with every verb and is invisible to classification —
   tracing a command never changes its idempotence or shedding class. *)
let parse_command_traced line =
  match tokens line with
  | verb :: id :: rest when String.uppercase_ascii verb = "TRACE" -> (
      match int_of_string_opt id with
      | Some id when id > 0 ->
          Result.map (fun c -> (Some id, c)) (parse_command_tokens rest)
      | Some _ | None -> Error (Printf.sprintf "TRACE: bad trace id %S" id))
  | toks -> Result.map (fun c -> (None, c)) (parse_command_tokens toks)

let parse_command line = parse_command_tokens (tokens line)

(* --- command rendering --------------------------------------------------- *)

let render_command ?trace_id buf c =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match trace_id with
   | Some id when id > 0 -> p "TRACE %d " id
   | Some _ | None -> ());
  (match c with
   | Ping -> p "PING"
   | Get k -> p "GET %d" k
   | Put (k, v) -> p "PUT %d %d" k v
   | Del k -> p "DEL %d" k
   | Mget ks ->
       p "MGET";
       Array.iter (fun k -> p " %d" k) ks
   | Range (lo, hi) -> p "RANGE %d %d" lo hi
   | Rangecount (lo, hi) -> p "RANGECOUNT %d %d" lo hi
   | Scan n -> p "SCAN %d" n
   | Size -> p "SIZE"
   | Stats -> p "STATS"
   | Metrics -> p "METRICS"
   | Profile 0 -> p "PROFILE"
   | Profile ms -> p "PROFILE %d" ms
   | Multi -> p "MULTI"
   | Exec 0 -> p "EXEC"
   | Exec t -> p "EXEC %d" t
   | Discard -> p "DISCARD"
   | Subscribe (lo, hi, 0) -> p "SUBSCRIBE %d %d" lo hi
   | Subscribe (lo, hi, seq) -> p "SUBSCRIBE %d %d %d" lo hi seq
   | Watch (lo, hi, 0) -> p "WATCH %d %d" lo hi
   | Watch (lo, hi, ms) -> p "WATCH %d %d %d" lo hi ms
   | Sync -> p "SYNC"
   | Replstats -> p "REPLSTATS"
   | Promote -> p "PROMOTE"
   | Ack (seq, stamp) -> p "ACK %d %d" seq stamp
   | Quit -> p "QUIT");
  Buffer.add_string buf "\r\n"

let command_line ?trace_id c =
  let b = Buffer.create 32 in
  render_command ?trace_id b c;
  Buffer.contents b

(* --- reply rendering ----------------------------------------------------- *)

(* Error messages travel on a single line: control bytes would break
   framing, so they are mapped to spaces. *)
let sanitize msg =
  String.map (fun ch -> if Char.code ch < 0x20 then ' ' else ch) msg

let rec render_reply buf r =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match r with
  | Ok_ -> p "+OK\r\n"
  | Pong -> p "+PONG\r\n"
  | Exists -> p "+EXISTS\r\n"
  | Err msg -> p "-ERR %s\r\n" (sanitize msg)
  | Busy ms -> p "-BUSY %d\r\n" (max 0 ms)
  | Int n -> p ":%d\r\n" n
  | Nil -> p "$-1\r\n"
  | Bulk s ->
      p "$%d\r\n" (String.length s);
      Buffer.add_string buf s;
      Buffer.add_string buf "\r\n"
  | Arr rs ->
      p "*%d\r\n" (List.length rs);
      List.iter (render_reply buf) rs
  | Queued -> p "+QUEUED\r\n"
  | Aborted n -> p "-ABORT %d\r\n" (max 0 n)

let rec reply_equal a b =
  match (a, b) with
  | Ok_, Ok_ | Pong, Pong | Exists, Exists | Nil, Nil | Queued, Queued -> true
  | Err x, Err y | Bulk x, Bulk y -> String.equal x y
  | Int x, Int y | Busy x, Busy y | Aborted x, Aborted y -> x = y
  | Arr x, Arr y ->
      List.length x = List.length y && List.for_all2 reply_equal x y
  | _ -> false

let rec pp_reply = function
  | Ok_ -> "OK"
  | Pong -> "PONG"
  | Exists -> "EXISTS"
  | Err m -> "ERR " ^ m
  | Busy ms -> Printf.sprintf "BUSY %d" ms
  | Int n -> string_of_int n
  | Nil -> "nil"
  | Bulk s ->
      if String.length s > 40 then Printf.sprintf "bulk[%d]" (String.length s)
      else Printf.sprintf "bulk(%s)" s
  | Arr rs -> "[" ^ String.concat "; " (List.map pp_reply rs) ^ "]"
  | Queued -> "QUEUED"
  | Aborted n -> Printf.sprintf "ABORT %d" n

(* --- change-record frames -------------------------------------------------- *)

(* A streamed change record rides the existing reply framing — an array
   [seq; stamp; k1; v1-or-nil; ...] — so the incremental {!Reader}
   handles split delivery of streamed records for free.  A deleted key's
   value slot is the nil bulk. *)

let reply_of_record (r : Repl.record) =
  Arr
    (Int r.r_seq :: Int r.r_stamp
    :: List.concat_map
         (fun (k, v) ->
           [ Int k; (match v with Some v -> Int v | None -> Nil) ])
         r.r_writes)

let record_of_reply = function
  | Arr (Int seq :: Int stamp :: rest) when seq > 0 ->
      let rec pairs acc = function
        | [] -> Ok (List.rev acc)
        | Int k :: Int v :: tl -> pairs ((k, Some v) :: acc) tl
        | Int k :: Nil :: tl -> pairs ((k, None) :: acc) tl
        | _ -> Error "bad change record: malformed write pair"
      in
      Result.map
        (fun writes -> { Repl.r_seq = seq; r_stamp = stamp; r_writes = writes })
        (pairs [] rest)
  | _ -> Error "bad change record frame"

(* --- trace-info frames ---------------------------------------------------- *)

(* The server's answer to a [TRACE]-prefixed command: one [@]-framed
   line carrying the request's phase decomposition, written {e ahead of}
   the data reply so an incremental reader never has to peek past a
   reply to know whether trace info follows.  Grammar:

     @<id> total=<us> outcome=<word> [fanout=<n>] [<phase>=<us>]*

   Phases appear in pipeline order and only when non-zero.  µs values
   carry three decimals.  Untraced clients never see these frames. *)

type trace_info = {
  t_id : int;
  t_total_us : float;
  t_outcome : string;
  t_fanout : int;
  t_phase_us : (string * float) list;
}

let render_trace buf (t : trace_info) =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "@%d total=%.3f outcome=%s" t.t_id t.t_total_us (sanitize t.t_outcome);
  if t.t_fanout > 0 then p " fanout=%d" t.t_fanout;
  List.iter (fun (name, us) -> if us > 0. then p " %s=%.3f" name us) t.t_phase_us;
  p "\r\n"

let trace_line t =
  let b = Buffer.create 64 in
  render_trace b t;
  Buffer.contents b

(* [body] is the frame line without the leading ['@']. *)
let parse_trace body =
  let fail () = Error (Printf.sprintf "bad trace frame %S" body) in
  match tokens body with
  | [] -> fail ()
  | id :: kvs -> (
      match int_of_string_opt id with
      | None -> fail ()
      | Some id when id <= 0 -> fail ()
      | Some id -> (
          let split kv =
            match String.index_opt kv '=' with
            | Some i when i > 0 && i < String.length kv - 1 ->
                Some
                  ( String.sub kv 0 i,
                    String.sub kv (i + 1) (String.length kv - i - 1) )
            | Some _ | None -> None
          in
          match List.map split kvs with
          | pairs when List.exists (fun p -> p = None) pairs -> fail ()
          | pairs -> (
              let pairs = List.filter_map Fun.id pairs in
              let total = ref None and outcome = ref None in
              let fanout = ref 0 in
              let phases = ref [] in
              let ok = ref true in
              List.iter
                (fun (k, v) ->
                  match k with
                  | "total" -> (
                      match float_of_string_opt v with
                      | Some f -> total := Some f
                      | None -> ok := false)
                  | "outcome" -> outcome := Some v
                  | "fanout" -> (
                      match int_of_string_opt v with
                      | Some n when n >= 0 -> fanout := n
                      | Some _ | None -> ok := false)
                  | _ -> (
                      match float_of_string_opt v with
                      | Some f -> phases := (k, f) :: !phases
                      | None -> ok := false))
                pairs;
              match (!ok, !total, !outcome) with
              | true, Some total, Some outcome ->
                  Ok
                    {
                      t_id = id;
                      t_total_us = total;
                      t_outcome = outcome;
                      t_fanout = !fanout;
                      t_phase_us = List.rev !phases;
                    }
              | _ -> fail ())))

(* --- incremental line reassembly ----------------------------------------- *)

(* Stateful '\n'-framed line reassembly shared by every path that reads
   the wire in arbitrary-sized chunks: the event loop's per-connection
   inbox and the replica ACK drain.  The invariant that matters — and
   that an earlier ad-hoc splitter got subtly right only by luck — is
   that a trailing partial line after the last '\n' stays buffered
   until its terminator arrives, no matter how the kernel splits the
   delivery.  A terminating '\r' before the '\n' is stripped. *)
module Linebuf = struct
  type t = {
    buf : Buffer.t;  (** received, not yet consumed *)
    mutable pos : int;  (** consumed prefix of [buf] *)
  }

  let create () = { buf = Buffer.create 256; pos = 0 }

  let feed t b off len = Buffer.add_subbytes t.buf b off len
  let feed_string t s = Buffer.add_string t.buf s

  (* Bytes buffered past the last complete line — the partial tail. *)
  let pending t = Buffer.length t.buf - t.pos

  let compact t =
    if t.pos > 0 && t.pos >= Buffer.length t.buf then begin
      Buffer.clear t.buf;
      t.pos <- 0
    end
    else if t.pos > 65536 then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  (* Pops the next complete line ('\n' consumed, optional '\r' before it
     stripped), or [None] when only a partial tail remains. *)
  let next t =
    let len = Buffer.length t.buf in
    let rec find i = if i >= len then -1 else if Buffer.nth t.buf i = '\n' then i else find (i + 1) in
    let nl = find t.pos in
    if nl < 0 then begin
      compact t;
      None
    end
    else begin
      let stop = if nl > t.pos && Buffer.nth t.buf (nl - 1) = '\r' then nl - 1 else nl in
      let line = Buffer.sub t.buf t.pos (stop - t.pos) in
      t.pos <- nl + 1;
      compact t;
      Some line
    end

  let drain t f =
    let rec go () =
      match next t with
      | Some l ->
          f l;
          go ()
      | None -> ()
    in
    go ()
end

(* --- incremental reply reader -------------------------------------------- *)

module Reader = struct
  type t = {
    read : bytes -> int -> int -> int;
    chunk : bytes;
    buf : Buffer.t;  (** bytes received, not yet consumed *)
    mutable pos : int;  (** consumed prefix of [buf] *)
    mutable last_trace : trace_info option;
        (** trace frame attached to the most recently parsed reply *)
  }

  let create read =
    { read; chunk = Bytes.create 65536; buf = Buffer.create 4096; pos = 0;
      last_trace = None }

  let of_string s =
    let consumed = ref 0 in
    create (fun b p l ->
        let n = min l (String.length s - !consumed) in
        Bytes.blit_string s !consumed b p n;
        consumed := !consumed + n;
        n)

  (* Compact once the consumed prefix dominates, so long-lived
     connections don't grow the buffer without bound. *)
  let compact t =
    if t.pos > 0 && t.pos >= Buffer.length t.buf then begin
      Buffer.clear t.buf;
      t.pos <- 0
    end
    else if t.pos > 65536 then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let refill t =
    compact t;
    match t.read t.chunk 0 (Bytes.length t.chunk) with
    | 0 -> false
    | n ->
        Buffer.add_subbytes t.buf t.chunk 0 n;
        true
    | exception _ -> false

  let max_line = 1 lsl 20

  (* One CRLF/LF-terminated line, without the terminator. *)
  let rec line t =
    let len = Buffer.length t.buf in
    let rec find i = if i >= len then None else if Buffer.nth t.buf i = '\n' then Some i else find (i + 1) in
    match find t.pos with
    | Some i ->
        let stop = if i > t.pos && Buffer.nth t.buf (i - 1) = '\r' then i - 1 else i in
        let l = Buffer.sub t.buf t.pos (stop - t.pos) in
        t.pos <- i + 1;
        Ok l
    | None ->
        if len - t.pos > max_line then Error "reply line too long"
        else if refill t then line t
        else Error "connection closed mid-reply"

  (* Exactly [n] payload bytes followed by CRLF (or LF). *)
  let rec payload t n =
    let avail = Buffer.length t.buf - t.pos in
    if avail >= n + 1 then begin
      match Buffer.nth t.buf (t.pos + n) with
      | '\n' ->
          let s = Buffer.sub t.buf t.pos n in
          t.pos <- t.pos + n + 1;
          Ok s
      | '\r' when avail >= n + 2 ->
          if Buffer.nth t.buf (t.pos + n + 1) = '\n' then begin
            let s = Buffer.sub t.buf t.pos n in
            t.pos <- t.pos + n + 2;
            Ok s
          end
          else Error "bulk reply not newline-terminated"
      | '\r' ->
          (* only the \r of the CRLF has arrived — wait for the \n *)
          if refill t then payload t n else Error "connection closed mid-bulk"
      | _ -> Error "bulk reply not newline-terminated"
    end
    else if refill t then payload t n
    else Error "connection closed mid-bulk"

  let ( let* ) = Result.bind

  let last_trace t = t.last_trace

  let rec reply_frame t =
    let* l = line t in
    if String.length l = 0 then Error "empty reply line"
    else
      let body = String.sub l 1 (String.length l - 1) in
      match l.[0] with
      | '@' ->
          (* Trace frame: precedes the data reply it describes.  Record
             it and keep parsing — the reply that follows carries it
             (readable via {!last_trace} until the next reply). *)
          let* info = parse_trace body in
          t.last_trace <- Some info;
          reply_frame t
      | '+' -> (
          match body with
          | "OK" -> Ok Ok_
          | "PONG" -> Ok Pong
          | "EXISTS" -> Ok Exists
          | "QUEUED" -> Ok Queued
          | other -> Error (Printf.sprintf "unknown simple reply %S" other))
      | '-' ->
          if String.length body >= 5 && String.sub body 0 5 = "BUSY " then
            match int_of_string_opt (String.sub body 5 (String.length body - 5)) with
            | Some ms when ms >= 0 -> Ok (Busy ms)
            | Some _ | None -> Error (Printf.sprintf "bad BUSY reply %S" body)
          else if String.length body >= 6 && String.sub body 0 6 = "ABORT " then
            match int_of_string_opt (String.sub body 6 (String.length body - 6)) with
            | Some n when n >= 0 -> Ok (Aborted n)
            | Some _ | None -> Error (Printf.sprintf "bad ABORT reply %S" body)
          else
            let msg =
              if String.length body >= 4 && String.sub body 0 4 = "ERR " then
                String.sub body 4 (String.length body - 4)
              else body
            in
            Ok (Err msg)
      | ':' -> (
          match int_of_string_opt body with
          | Some n -> Ok (Int n)
          | None -> Error (Printf.sprintf "bad integer reply %S" body))
      | '$' -> (
          match int_of_string_opt body with
          | Some -1 -> Ok Nil
          | Some n when n >= 0 && n <= max_line ->
              let* s = payload t n in
              Ok (Bulk s)
          | Some _ | None -> Error (Printf.sprintf "bad bulk length %S" body))
      | '*' -> (
          match int_of_string_opt body with
          | Some n when n >= 0 && n <= 16_777_216 ->
              let rec go acc i =
                if i = 0 then Ok (Arr (List.rev acc))
                else
                  let* r = reply_frame t in
                  go (r :: acc) (i - 1)
              in
              go [] n
          | Some _ | None -> Error (Printf.sprintf "bad array length %S" body))
      | c -> Error (Printf.sprintf "unknown reply type %C" c)

  (* Each top-level reply starts with a clean trace slot, so a frame
     only ever describes the reply it immediately precedes. *)
  let reply t =
    t.last_trace <- None;
    reply_frame t
end
