type command =
  | Ping
  | Get of int
  | Put of int * int
  | Del of int
  | Mget of int array
  | Range of int * int
  | Rangecount of int * int
  | Scan of int
  | Size
  | Stats
  | Quit

type reply =
  | Ok_
  | Pong
  | Exists
  | Err of string
  | Busy of int
  | Int of int
  | Nil
  | Bulk of string
  | Arr of reply list

(* --- command classification ---------------------------------------------- *)

(* Safe to re-issue after an ambiguous failure.  Reads trivially; PUT and
   DEL because re-applying the same binding/removal converges to the same
   map state (effect idempotence — see docs/RESILIENCE.md for the caveat
   about interleaved writers to the same key).  QUIT is excluded: blindly
   re-sending it after a reconnect would close the fresh connection. *)
let idempotent = function
  | Ping | Get _ | Put _ | Del _ | Mget _ | Range _ | Rangecount _ | Scan _
  | Size | Stats ->
      true
  | Quit -> false

(* Commands whose execution takes a snapshot and walks many versioned
   pointers — the expensive class, shed first under overload. *)
let snapshot_heavy = function
  | Mget _ | Range _ | Rangecount _ | Scan _ -> true
  | Ping | Get _ | Put _ | Del _ | Size | Stats | Quit -> false

(* --- command parsing ---------------------------------------------------- *)

(* Tokenise one line: split on single spaces, drop empty tokens (so runs
   of spaces and a trailing \r are harmless). *)
let tokens line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let int_arg name s k =
  match int_of_string_opt s with
  | Some v -> k v
  | None -> Error (Printf.sprintf "%s: not an integer %S" name s)

let parse_command line =
  (* Total by construction; the catch-all is belt-and-braces so a parser
     bug can never take a connection (or the server) down. *)
  try
    match tokens line with
    | [] -> Error "empty command"
    | verb :: args -> (
        match (String.uppercase_ascii verb, args) with
        | "PING", [] -> Ok Ping
        | "GET", [ k ] -> int_arg "key" k (fun k -> Ok (Get k))
        | "PUT", [ k; v ] ->
            int_arg "key" k (fun k -> int_arg "value" v (fun v -> Ok (Put (k, v))))
        | "DEL", [ k ] -> int_arg "key" k (fun k -> Ok (Del k))
        | "MGET", (_ :: _ as ks) ->
            let rec go acc = function
              | [] -> Ok (Mget (Array.of_list (List.rev acc)))
              | k :: rest -> int_arg "key" k (fun k -> go (k :: acc) rest)
            in
            go [] ks
        | "MGET", [] -> Error "MGET needs at least one key"
        | "RANGE", [ lo; hi ] ->
            int_arg "lo" lo (fun lo -> int_arg "hi" hi (fun hi -> Ok (Range (lo, hi))))
        | "RANGECOUNT", [ lo; hi ] ->
            int_arg "lo" lo (fun lo ->
                int_arg "hi" hi (fun hi -> Ok (Rangecount (lo, hi))))
        | "SCAN", [] -> Ok (Scan 0)
        | "SCAN", [ n ] -> int_arg "limit" n (fun n -> Ok (Scan (max 0 n)))
        | "SIZE", [] -> Ok Size
        | "STATS", [] -> Ok Stats
        | "QUIT", [] -> Ok Quit
        | ( (("PING" | "GET" | "PUT" | "DEL" | "RANGE" | "RANGECOUNT" | "SCAN"
             | "SIZE" | "STATS" | "QUIT") as v),
            _ ) ->
            Error (Printf.sprintf "wrong number of arguments for %s" v)
        | v, _ ->
            (* Cap the echoed verb so garbage can't bloat the error. *)
            let v = if String.length v > 32 then String.sub v 0 32 ^ "..." else v in
            Error (Printf.sprintf "unknown command %S" v))
  with _ -> Error "unparsable command"

(* --- command rendering --------------------------------------------------- *)

let render_command buf c =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match c with
   | Ping -> p "PING"
   | Get k -> p "GET %d" k
   | Put (k, v) -> p "PUT %d %d" k v
   | Del k -> p "DEL %d" k
   | Mget ks ->
       p "MGET";
       Array.iter (fun k -> p " %d" k) ks
   | Range (lo, hi) -> p "RANGE %d %d" lo hi
   | Rangecount (lo, hi) -> p "RANGECOUNT %d %d" lo hi
   | Scan n -> p "SCAN %d" n
   | Size -> p "SIZE"
   | Stats -> p "STATS"
   | Quit -> p "QUIT");
  Buffer.add_string buf "\r\n"

let command_line c =
  let b = Buffer.create 32 in
  render_command b c;
  Buffer.contents b

(* --- reply rendering ----------------------------------------------------- *)

(* Error messages travel on a single line: control bytes would break
   framing, so they are mapped to spaces. *)
let sanitize msg =
  String.map (fun ch -> if Char.code ch < 0x20 then ' ' else ch) msg

let rec render_reply buf r =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match r with
  | Ok_ -> p "+OK\r\n"
  | Pong -> p "+PONG\r\n"
  | Exists -> p "+EXISTS\r\n"
  | Err msg -> p "-ERR %s\r\n" (sanitize msg)
  | Busy ms -> p "-BUSY %d\r\n" (max 0 ms)
  | Int n -> p ":%d\r\n" n
  | Nil -> p "$-1\r\n"
  | Bulk s ->
      p "$%d\r\n" (String.length s);
      Buffer.add_string buf s;
      Buffer.add_string buf "\r\n"
  | Arr rs ->
      p "*%d\r\n" (List.length rs);
      List.iter (render_reply buf) rs

let rec reply_equal a b =
  match (a, b) with
  | Ok_, Ok_ | Pong, Pong | Exists, Exists | Nil, Nil -> true
  | Err x, Err y | Bulk x, Bulk y -> String.equal x y
  | Int x, Int y | Busy x, Busy y -> x = y
  | Arr x, Arr y ->
      List.length x = List.length y && List.for_all2 reply_equal x y
  | _ -> false

let rec pp_reply = function
  | Ok_ -> "OK"
  | Pong -> "PONG"
  | Exists -> "EXISTS"
  | Err m -> "ERR " ^ m
  | Busy ms -> Printf.sprintf "BUSY %d" ms
  | Int n -> string_of_int n
  | Nil -> "nil"
  | Bulk s ->
      if String.length s > 40 then Printf.sprintf "bulk[%d]" (String.length s)
      else Printf.sprintf "bulk(%s)" s
  | Arr rs -> "[" ^ String.concat "; " (List.map pp_reply rs) ^ "]"

(* --- incremental reply reader -------------------------------------------- *)

module Reader = struct
  type t = {
    read : bytes -> int -> int -> int;
    chunk : bytes;
    buf : Buffer.t;  (** bytes received, not yet consumed *)
    mutable pos : int;  (** consumed prefix of [buf] *)
  }

  let create read = { read; chunk = Bytes.create 65536; buf = Buffer.create 4096; pos = 0 }

  let of_string s =
    let consumed = ref 0 in
    create (fun b p l ->
        let n = min l (String.length s - !consumed) in
        Bytes.blit_string s !consumed b p n;
        consumed := !consumed + n;
        n)

  (* Compact once the consumed prefix dominates, so long-lived
     connections don't grow the buffer without bound. *)
  let compact t =
    if t.pos > 0 && t.pos >= Buffer.length t.buf then begin
      Buffer.clear t.buf;
      t.pos <- 0
    end
    else if t.pos > 65536 then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let refill t =
    compact t;
    match t.read t.chunk 0 (Bytes.length t.chunk) with
    | 0 -> false
    | n ->
        Buffer.add_subbytes t.buf t.chunk 0 n;
        true
    | exception _ -> false

  let max_line = 1 lsl 20

  (* One CRLF/LF-terminated line, without the terminator. *)
  let rec line t =
    let len = Buffer.length t.buf in
    let rec find i = if i >= len then None else if Buffer.nth t.buf i = '\n' then Some i else find (i + 1) in
    match find t.pos with
    | Some i ->
        let stop = if i > t.pos && Buffer.nth t.buf (i - 1) = '\r' then i - 1 else i in
        let l = Buffer.sub t.buf t.pos (stop - t.pos) in
        t.pos <- i + 1;
        Ok l
    | None ->
        if len - t.pos > max_line then Error "reply line too long"
        else if refill t then line t
        else Error "connection closed mid-reply"

  (* Exactly [n] payload bytes followed by CRLF (or LF). *)
  let rec payload t n =
    let avail = Buffer.length t.buf - t.pos in
    if avail >= n + 1 then begin
      match Buffer.nth t.buf (t.pos + n) with
      | '\n' ->
          let s = Buffer.sub t.buf t.pos n in
          t.pos <- t.pos + n + 1;
          Ok s
      | '\r' when avail >= n + 2 ->
          if Buffer.nth t.buf (t.pos + n + 1) = '\n' then begin
            let s = Buffer.sub t.buf t.pos n in
            t.pos <- t.pos + n + 2;
            Ok s
          end
          else Error "bulk reply not newline-terminated"
      | '\r' ->
          (* only the \r of the CRLF has arrived — wait for the \n *)
          if refill t then payload t n else Error "connection closed mid-bulk"
      | _ -> Error "bulk reply not newline-terminated"
    end
    else if refill t then payload t n
    else Error "connection closed mid-bulk"

  let ( let* ) = Result.bind

  let rec reply t =
    let* l = line t in
    if String.length l = 0 then Error "empty reply line"
    else
      let body = String.sub l 1 (String.length l - 1) in
      match l.[0] with
      | '+' -> (
          match body with
          | "OK" -> Ok Ok_
          | "PONG" -> Ok Pong
          | "EXISTS" -> Ok Exists
          | other -> Error (Printf.sprintf "unknown simple reply %S" other))
      | '-' ->
          if String.length body >= 5 && String.sub body 0 5 = "BUSY " then
            match int_of_string_opt (String.sub body 5 (String.length body - 5)) with
            | Some ms when ms >= 0 -> Ok (Busy ms)
            | Some _ | None -> Error (Printf.sprintf "bad BUSY reply %S" body)
          else
            let msg =
              if String.length body >= 4 && String.sub body 0 4 = "ERR " then
                String.sub body 4 (String.length body - 4)
              else body
            in
            Ok (Err msg)
      | ':' -> (
          match int_of_string_opt body with
          | Some n -> Ok (Int n)
          | None -> Error (Printf.sprintf "bad integer reply %S" body))
      | '$' -> (
          match int_of_string_opt body with
          | Some -1 -> Ok Nil
          | Some n when n >= 0 && n <= max_line ->
              let* s = payload t n in
              Ok (Bulk s)
          | Some _ | None -> Error (Printf.sprintf "bad bulk length %S" body))
      | '*' -> (
          match int_of_string_opt body with
          | Some n when n >= 0 && n <= 16_777_216 ->
              let rec go acc i =
                if i = 0 then Ok (Arr (List.rev acc))
                else
                  let* r = reply t in
                  go (r :: acc) (i - 1)
              in
              go [] n
          | Some _ | None -> Error (Printf.sprintf "bad array length %S" body))
      | c -> Error (Printf.sprintf "unknown reply type %C" c)
end
