module Protocol = Protocol
module Bqueue = Bqueue
module Mount = Mount
module Client = Client

type config = {
  port : int;
  domains : int;
  backlog : int;
  queue_depth : int;
  census_interval : float;
  max_conns : int;
  idle_timeout : float;
  write_timeout : float;
  shed_queue : int;
  shed_epoch_lag : int;
  shed_chain_p99 : int;
  retry_after_ms : int;
  metrics_interval : float;
  flight_dir : string;
  flight_min_interval : float;
  slo_p99_us : float;
  profile_hz : int;
  replica_of : (string * int) option;
      (** follow this primary: apply its change feed, refuse writes
          until PROMOTE (docs/REPLICATION.md) *)
  feed_capacity : int;  (** replication log ring size, in records *)
}

let default_config =
  {
    port = 7379;
    domains = 4;
    backlog = 64;
    queue_depth = 64;
    census_interval = 0.;
    max_conns = 0;
    idle_timeout = 0.;
    write_timeout = 5.;
    shed_queue = 0;
    shed_epoch_lag = 0;
    shed_chain_p99 = 0;
    retry_after_ms = 50;
    metrics_interval = 0.;
    flight_dir = "";
    flight_min_interval = 5.;
    slo_p99_us = 0.;
    profile_hz = 0;
    replica_of = None;
    feed_capacity = 65536;
  }

module Span = Verlib.Obs.Span

(* --- resilience accounting ----------------------------------------------- *)

(* Process-wide totals (all server instances), exported as gauges so they
   land in every [Verlib.Obs] report next to [faults_fired]. *)
let shed_total_a = Atomic.make 0

let deadline_kills_a = Atomic.make 0

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "shed_total" (fun () -> Atomic.get shed_total_a)

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "deadline_kills" (fun () ->
      Atomic.get deadline_kills_a)

(* Wire-layer fault points (docs/RESILIENCE.md): interpreted against the
   live file descriptor by [write_all] / the read loop below. *)
let fp_read = Fault.Point.make "server.read"

let fp_write = Fault.Point.make "server.write"

type role = Primary | Replica

type t = {
  mount : Mount.t;
  cfg : config;
  stop_flag : bool Atomic.t;
  role : role Atomic.t;
  feed : Repl.Log.t;
      (** change-feed tap over the mount's store — what SUBSCRIBE /
          WATCH / SYNC serve from *)
  apply : Repl.Apply.t option;  (** replica servers only *)
  mutable replica_d : unit Domain.t option;
  (* Handoff carries the accept-time and push-time tick stamps so the
     worker can book accept work and queue dwell into the connection's
     first request span. *)
  queue : (Unix.file_descr * int * int) Bqueue.t;
  flight : Harness.Flight.t option;
  hard_shed_on : bool Atomic.t;  (* edge detector for the flight trigger *)
  mutable lsock : Unix.file_descr option;
  mutable bound_port : int;
  mutable accept_d : unit Domain.t option;
  mutable worker_ds : unit Domain.t list;
  mutable census_d : unit Domain.t option;
  mutable metrics_d : unit Domain.t option;
  mutable census_reg : Verlib.Chainscan.registration option;
  mutable started : bool;
  mutable stopped : bool;
  mutable started_at : float;
  (* counters (read approximately by STATS, exactly after stop) *)
  conns_total : int Atomic.t;
  conns_active : int Atomic.t;
  commands_total : int Atomic.t;
  errors_total : int Atomic.t;
  census_samples : int Atomic.t;
  census_violations : int Atomic.t;
  shed : int Atomic.t;
  deadline_kills : int Atomic.t;
  latest_census : Verlib.Chainscan.census option Atomic.t;
  final_census : Verlib.Chainscan.census option Atomic.t;
}

let create ?(config = default_config) mount =
  let feed = Repl.Log.create ~capacity:config.feed_capacity () in
  Repl.Log.tap feed (Mount.store mount);
  {
    mount;
    cfg = config;
    stop_flag = Atomic.make false;
    role =
      Atomic.make (match config.replica_of with Some _ -> Replica | None -> Primary);
    feed;
    apply =
      (match config.replica_of with
       | Some _ -> Some (Repl.Apply.create (Mount.store mount))
       | None -> None);
    replica_d = None;
    queue = Bqueue.create config.queue_depth;
    flight =
      (if config.flight_dir = "" then None
       else
         Some
           (Harness.Flight.create ~min_interval:config.flight_min_interval
              ~dir:config.flight_dir ()));
    hard_shed_on = Atomic.make false;
    lsock = None;
    bound_port = config.port;
    accept_d = None;
    worker_ds = [];
    census_d = None;
    metrics_d = None;
    census_reg = None;
    started = false;
    stopped = false;
    started_at = 0.;
    conns_total = Atomic.make 0;
    conns_active = Atomic.make 0;
    commands_total = Atomic.make 0;
    errors_total = Atomic.make 0;
    census_samples = Atomic.make 0;
    census_violations = Atomic.make 0;
    shed = Atomic.make 0;
    deadline_kills = Atomic.make 0;
    latest_census = Atomic.make None;
    final_census = Atomic.make None;
  }

let port t = t.bound_port

let running t = t.started && not t.stopped

(* --- flight recorder ------------------------------------------------------ *)

let flight_extra t =
  [
    ("queue_depth", string_of_int (Bqueue.length t.queue));
    ("connections_active", string_of_int (Atomic.get t.conns_active));
    ("shed", string_of_int (Atomic.get t.shed));
    ("deadline_kills", string_of_int (Atomic.get t.deadline_kills));
  ]

let flight_record t ~trigger ?census () =
  match t.flight with
  | None -> ()
  | Some f ->
      ignore
        (Harness.Flight.record f ~trigger ?census ~extra:(flight_extra t) ())

let flight_dump_count t =
  match t.flight with None -> 0 | Some f -> Harness.Flight.dump_count f

let flight_last_path t =
  match t.flight with None -> None | Some f -> Harness.Flight.last_path f

(* --- STATS --------------------------------------------------------------- *)

let stats_json t =
  let uptime = if t.started then Unix.gettimeofday () -. t.started_at else 0. in
  let census_extra =
    match
      (match Atomic.get t.final_census with
       | Some c -> Some c
       | None -> Atomic.get t.latest_census)
    with
    | None -> []
    | Some c ->
        [
          ("census", Harness.Obs_report.json_of_census c);
          ("census_samples", string_of_int (Atomic.get t.census_samples));
          ( "census_violations_total",
            string_of_int (Atomic.get t.census_violations) );
        ]
  in
  (* Per-shard census breakdown for sharded mounts: one fresh (passive,
     approximate-under-mutators) census per shard view, so a hot or
     pathological shard is visible instead of averaged away in the
     merged totals. *)
  let shard_extra =
    match Mount.shard_views t.mount with
    | [] | [ _ ] -> []
    | views ->
        let b = Buffer.create 1024 in
        Buffer.add_char b '{';
        List.iteri
          (fun i (name, iter) ->
            if i > 0 then Buffer.add_char b ',';
            let c = Verlib.Chainscan.census_of_iter iter in
            Buffer.add_string b
              (Printf.sprintf "\"%s\":%s" name
                 (Harness.Obs_report.json_of_census c)))
          views;
        Buffer.add_char b '}';
        [ ("census_shards", Buffer.contents b) ]
  in
  let census_extra = census_extra @ shard_extra in
  let extra =
    [
      ("server", "\"verlib-serve\"");
      ("structure", Printf.sprintf "%S" (Mount.name t.mount));
      ( "range_capability",
        Printf.sprintf "%S"
          (Dstruct.Map_intf.range_capability_name (Mount.range_capability t.mount))
      );
      ("uptime_s", Printf.sprintf "%.3f" uptime);
      ("domains", string_of_int t.cfg.domains);
      ("connections_total", string_of_int (Atomic.get t.conns_total));
      ("connections_active", string_of_int (Atomic.get t.conns_active));
      ("commands_total", string_of_int (Atomic.get t.commands_total));
      ("protocol_errors", string_of_int (Atomic.get t.errors_total));
      ("shed", string_of_int (Atomic.get t.shed));
      ("deadline_kills", string_of_int (Atomic.get t.deadline_kills));
      ("size", string_of_int (Mount.size t.mount));
    ]
    @ census_extra
  in
  Harness.Obs_report.to_json ~extra (Verlib.Obs.capture ())

(* --- METRICS -------------------------------------------------------------- *)

(* The live metrics plane: everything [Flock.Telemetry] holds plus the
   server's own counters, as Prometheus text exposition.  Like [Ping]
   and [Stats], never shed — an overloaded server stays measurable. *)
let metrics_text t =
  let uptime = if t.started then Unix.gettimeofday () -. t.started_at else 0. in
  Harness.Obs_report.prometheus
    ~extra:
      [
        ("server_uptime_s", int_of_float uptime);
        ("server_connections_total", Atomic.get t.conns_total);
        ("server_connections_active", Atomic.get t.conns_active);
        ("server_commands_total", Atomic.get t.commands_total);
        ("server_protocol_errors", Atomic.get t.errors_total);
        ("server_shed", Atomic.get t.shed);
        ("server_deadline_kills", Atomic.get t.deadline_kills);
        ("server_queue_depth", Bqueue.length t.queue);
        ("server_flight_dumps", flight_dump_count t);
      ]
    ()

(* --- replication plane ---------------------------------------------------- *)

let is_replica t = Atomic.get t.role = Replica

let replica_readonly_msg =
  "READONLY: replica refuses writes; PROMOTE it or write to the primary"

let replstats_json t =
  let role = if is_replica t then "replica" else "primary" in
  let lag_s, lag_b = Repl.Log.lag t.feed in
  let apply_fields =
    match t.apply with
    | None -> ""
    | Some a ->
        Printf.sprintf
          ",\"apply_last_seq\":%d,\"apply_watermark\":%d,\"apply_pending\":%d"
          (Repl.Apply.last_seq a) (Repl.Apply.watermark a)
          (Repl.Apply.pending_count a)
  in
  Printf.sprintf
    "{\"role\":%S,\"tail_seq\":%d,\"tail_stamp\":%d,\"subscribers\":%d,\"lag_stamps\":%d,\"lag_bytes\":%d,\"records_total\":%d,\"resyncs\":%d,\"applied_total\":%d,\"dup_dropped\":%d,\"watermark\":%d%s}"
    role (Repl.Log.tail_seq t.feed)
    (Repl.Log.tail_stamp t.feed)
    (Repl.Log.subscriber_count t.feed)
    lag_s lag_b (Repl.records_total ()) (Repl.resyncs_total ())
    (Repl.applied_total ()) (Repl.dup_dropped_total ())
    (Repl.watermark_now ()) apply_fields

(* SYNC: the replica-bootstrap snapshot, positioned at the feed's tail.
   Order is load-bearing: the tail is read BEFORE the fold, so any
   record at or below it was fully installed before the fold began
   (install happens-before append happens-before this read) — snapshot
   plus suffix replay from that seq converges.  Records racing past the
   tail during the fold are delivered again by the stream; re-applying
   them is idempotent (records carry installed state, not deltas).
   Hits [repl.send] so a latched partition severs bootstraps too. *)
let sync_reply t =
  Fault.hit Repl.fp_send;
  let seq = Repl.Log.tail_seq t.feed in
  let stamp = Repl.Log.tail_stamp t.feed in
  let pairs = Mount.dump t.mount in
  Protocol.Arr
    (Protocol.Int seq :: Protocol.Int stamp
    :: List.concat_map (fun (k, v) -> Protocol.[ Int k; Int v ]) pairs)

(* WATCH: park this worker (in 200ms slices, so stop stays responsive)
   until a record touching [lo, hi] lands. *)
let run_watch t lo hi ms =
  let ms = if ms <= 0 then 5000 else min ms 30000 in
  let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
  let start = Repl.Log.tail_seq t.feed in
  let rec go () =
    if Atomic.get t.stop_flag then Protocol.Nil
    else
      let slice = min deadline (Unix.gettimeofday () +. 0.2) in
      match
        Repl.Log.wait_matching t.feed ~seq:start ~lo ~hi ~deadline:slice
      with
      | `Record r -> Protocol.reply_of_record r
      | `Resync -> Protocol.Err "resync required: WATCH outpaced by the log"
      | `Timeout ->
          if Unix.gettimeofday () >= deadline then Protocol.Nil else go ()
  in
  go ()

(* --- connection serving -------------------------------------------------- *)

exception Write_deadline

(* Push every byte of [s] to [fd], surviving EINTR and partial writes
   (short TCP buffers, SO_SNDTIMEO expiry, injected [Short_write]).  A
   peer that stops reading cannot wedge the worker: once [deadline]
   (absolute, [infinity] = none) passes with bytes still queued the
   write is abandoned with [Write_deadline] and the connection is
   killed.  EPIPE/ECONNRESET propagate to the caller (dead peer); with
   SIGPIPE ignored (see [start]) EPIPE is an exception, not a signal. *)
let write_all ?(deadline = infinity) fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then begin
      let cap =
        match Fault.io_check fp_write with
        | Some (Fault.Short_write n) -> max 1 (min n (len - off))
        | Some Fault.Econnreset ->
            raise (Unix.Unix_error (Unix.ECONNRESET, "write", "fault"))
        | Some (Fault.Eagain_burst _) | Some _ | None -> len - off
      in
      match Unix.write fd b off cap with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if Unix.gettimeofday () > deadline then raise Write_deadline
          else go off
    end
  in
  go 0

let max_line = 1 lsl 20

(* Commands one MULTI may queue before EXEC refuses more (bounds the
   per-connection buffered transaction). *)
let multi_queue_cap = 1024

(* --- the push stream (SUBSCRIBE) ------------------------------------------ *)

(* After SUBSCRIBE's +OK the connection inverts: the server pushes one
   record frame per committed change touching [lo, hi] past the cursor,
   plus an +OK heartbeat on idle rounds (keeps the peer's read timeout
   quiet, and gives a latched partition something to sever even when the
   feed is idle); the peer sends ACK lines back on the same socket.

   The [repl.send] fault point interprets here: [partition] latches the
   point down and kills the stream (and [sync_reply]/re-subscription for
   the window), [dup] ships a record twice, [reorder] holds a record
   back one round — the at-least-once, possibly-reordered delivery the
   replica's apply engine must absorb.

   On abnormal death the cursor is orphaned, not dropped: the lag gauges
   must keep rising through a partition, and the reconnecting replica
   adopts the orphan (see [Repl.Log.subscribe]). *)
let stream_serve t fd ~lo ~hi ~start_seq =
  let log = t.feed in
  Fault.hit Repl.fp_send;
  let id = Repl.Log.subscribe log in
  let clean = ref false in
  Fun.protect
    ~finally:(fun () ->
      if !clean then Repl.Log.unsubscribe log id else Repl.Log.orphan log id)
  @@ fun () ->
  let out = Buffer.create 4096 in
  let inbuf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let cursor = ref start_seq in
  let held = ref None in
  let quit = ref false in
  let push r = Protocol.render_reply out (Protocol.reply_of_record r) in
  let release_held () =
    match !held with
    | Some r ->
        held := None;
        push r
    | None -> ()
  in
  let emit r =
    match Fault.feed_check Repl.fp_send with
    | Some Fault.Dup ->
        push r;
        push r;
        release_held ()
    | Some Fault.Reorder when !held = None -> held := Some r
    | Some _ | None ->
        push r;
        release_held ()
  in
  let drain_acks () =
    match Unix.select [ fd ] [] [] 0. with
    | [ _ ], _, _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
            clean := true;
            quit := true
        | n ->
            Buffer.add_subbytes inbuf chunk 0 n;
            let s = Buffer.contents inbuf in
            Buffer.clear inbuf;
            let len = String.length s in
            let start = ref 0 in
            for i = 0 to len - 1 do
              if s.[i] = '\n' then begin
                let stop = if i > !start && s.[i - 1] = '\r' then i - 1 else i in
                (match
                   Protocol.parse_command (String.sub s !start (stop - !start))
                 with
                 | Ok (Protocol.Ack (seq, stamp)) -> (
                     (* A dropped ack is invisible to the peer; the lag
                        gauges simply stay high until the next one. *)
                     try
                       Fault.hit Repl.fp_ack;
                       Repl.Log.ack log ~id ~seq ~stamp
                     with Fault.Injected _ -> ())
                 | Ok Protocol.Quit ->
                     clean := true;
                     quit := true
                 | Ok _ | Error _ -> () (* stream peers speak ACK/QUIT only *));
                start := i + 1
              end
            done;
            if !start < len then
              Buffer.add_substring inbuf s !start (len - !start)
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          -> ())
    | _ -> ()
  in
  let flush () =
    if Buffer.length out > 0 then begin
      let deadline =
        if t.cfg.write_timeout > 0. then
          Unix.gettimeofday () +. t.cfg.write_timeout
        else infinity
      in
      write_all ~deadline fd (Buffer.contents out);
      Buffer.clear out
    end
  in
  try
    while not (!quit || Atomic.get t.stop_flag) do
      drain_acks ();
      (match
         Repl.Log.wait_after log ~seq:!cursor
           ~deadline:(Unix.gettimeofday () +. 0.2)
       with
       | `Timeout ->
           Fault.hit Repl.fp_send;
           (* Nothing follows a held record soon: stop reordering it. *)
           release_held ();
           Protocol.render_reply out Protocol.Ok_
       | `Resync ->
           (* Laggard shed: the ring trimmed past this cursor.  A clean
              refusal — the peer re-bootstraps via SYNC. *)
           Protocol.render_reply out (Protocol.Err "resync required");
           clean := true;
           quit := true
       | `Records rs ->
           List.iter
             (fun r ->
               cursor := r.Repl.r_seq;
               if Repl.touches lo hi r then emit r)
             rs);
      flush ()
    done;
    if Atomic.get t.stop_flag then clean := true
  with
  | Write_deadline ->
      Atomic.incr t.deadline_kills;
      Atomic.incr deadline_kills_a
  | Fault.Injected _ | Unix.Unix_error _ -> ()

(* Admission control.  0 = admit everything; 1 = shed snapshot-heavy
   commands; 2 = shed every data command (PING/STATS/QUIT are always
   answered — an overloaded server stays observable).  Any configured
   pressure signal at its threshold sheds the expensive class; the same
   signal at twice its threshold sheds point ops too.  The signals are
   the handoff-queue depth (work the workers have not reached) and the
   reclamation-health gauges the census line of work watches: epoch lag
   and the p99 version-chain length — exactly the quantities that grow
   when snapshot-heavy load outruns truncation. *)
let overload_level t =
  let level = ref 0 in
  let look v thr =
    if thr > 0 && v >= thr then level := max !level (if v >= 2 * thr then 2 else 1)
  in
  look (Bqueue.length t.queue) t.cfg.shed_queue;
  look (Flock.Epoch.epoch_lag ()) t.cfg.shed_epoch_lag;
  (match Atomic.get t.latest_census with
   | Some c -> look (Verlib.Chainscan.chain_p99 c) t.cfg.shed_chain_p99
   | None -> ());
  !level

let count_shed t =
  Atomic.incr t.shed;
  Atomic.incr shed_total_a

(* The @-frame for a traced command, built from its finished span. *)
let trace_info_of (sp : Span.t) id outcome : Protocol.trace_info =
  {
    Protocol.t_id = id;
    t_total_us = Verlib.Hwclock.to_us (Span.total_ticks sp);
    t_outcome = outcome;
    t_fanout = sp.Span.sp_fanout;
    t_phase_us =
      List.filter_map
        (fun p ->
          let v = Span.phase_ticks sp p in
          if v > 0 then Some (Span.phase_name p, Verlib.Hwclock.to_us v)
          else None)
        Span.phases;
  }

let command_verb : Protocol.command -> string = function
  | Protocol.Ping -> "PING"
  | Protocol.Get _ -> "GET"
  | Protocol.Put _ -> "PUT"
  | Protocol.Del _ -> "DEL"
  | Protocol.Mget _ -> "MGET"
  | Protocol.Range _ -> "RANGE"
  | Protocol.Rangecount _ -> "RANGECOUNT"
  | Protocol.Scan _ -> "SCAN"
  | Protocol.Size -> "SIZE"
  | Protocol.Stats -> "STATS"
  | Protocol.Metrics -> "METRICS"
  | Protocol.Profile _ -> "PROFILE"
  | Protocol.Multi -> "MULTI"
  | Protocol.Exec _ -> "EXEC"
  | Protocol.Discard -> "DISCARD"
  | Protocol.Subscribe _ -> "SUBSCRIBE"
  | Protocol.Watch _ -> "WATCH"
  | Protocol.Sync -> "SYNC"
  | Protocol.Replstats -> "REPLSTATS"
  | Protocol.Promote -> "PROMOTE"
  | Protocol.Ack _ -> "ACK"
  | Protocol.Quit -> "QUIT"

(* Per-verb activity frames for the sampling profiler.  Interning is
   mutexed and must stay off hot paths, so every verb is interned once
   at module-load time (single-domain); [run_command] then publishes a
   pre-computed id — two gated plain stores per command. *)
module Activity = Flock.Telemetry.Activity

let verb_activity : Protocol.command -> int =
  let ping = Activity.intern "PING"
  and get = Activity.intern "GET"
  and put = Activity.intern "PUT"
  and del = Activity.intern "DEL"
  and mget = Activity.intern "MGET"
  and range = Activity.intern "RANGE"
  and rangecount = Activity.intern "RANGECOUNT"
  and scan = Activity.intern "SCAN"
  and size = Activity.intern "SIZE"
  and stats = Activity.intern "STATS"
  and metrics = Activity.intern "METRICS"
  and profile = Activity.intern "PROFILE"
  and multi = Activity.intern "MULTI"
  and exec = Activity.intern "EXEC"
  and discard = Activity.intern "DISCARD"
  and subscribe = Activity.intern "SUBSCRIBE"
  and watch = Activity.intern "WATCH"
  and sync = Activity.intern "SYNC"
  and replstats = Activity.intern "REPLSTATS"
  and promote = Activity.intern "PROMOTE"
  and ack = Activity.intern "ACK"
  and quit = Activity.intern "QUIT" in
  function
  | Protocol.Ping -> ping
  | Protocol.Get _ -> get
  | Protocol.Put _ -> put
  | Protocol.Del _ -> del
  | Protocol.Mget _ -> mget
  | Protocol.Range _ -> range
  | Protocol.Rangecount _ -> rangecount
  | Protocol.Scan _ -> scan
  | Protocol.Size -> size
  | Protocol.Stats -> stats
  | Protocol.Metrics -> metrics
  | Protocol.Profile _ -> profile
  | Protocol.Multi -> multi
  | Protocol.Exec _ -> exec
  | Protocol.Discard -> discard
  | Protocol.Subscribe _ -> subscribe
  | Protocol.Watch _ -> watch
  | Protocol.Sync -> sync
  | Protocol.Replstats -> replstats
  | Protocol.Promote -> promote
  | Protocol.Ack _ -> ack
  | Protocol.Quit -> quit

(* Serve one connection to completion.  Reads are buffered; every
   complete line in a read chunk is parsed and executed, and all the
   replies are flushed in a single write — this is what makes pipelining
   pay.  A short receive timeout keeps the worker responsive to the stop
   flag even against an idle client; [idle_timeout] (if set) reclaims
   the worker from a client that connects and goes silent. *)
let serve_conn ?(accept_ticks = 0) ?(queue_ticks = 0) t fd =
  Atomic.incr t.conns_active;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.2 with _ -> ());
  if t.cfg.write_timeout > 0. then
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO (min 0.2 t.cfg.write_timeout)
     with _ -> ());
  let chunk = Bytes.create 65536 in
  let pending = Buffer.create 4096 in
  let scanned = ref 0 in
  (* first index of [pending] not yet scanned for '\n' *)
  let out = Buffer.create 4096 in
  let scratch = Buffer.create 256 in
  let quit = ref false in
  (* SUBSCRIBE mode-switch: set by run_command; the line loop exits and
     the connection becomes a push stream.  Pipelined bytes after the
     SUBSCRIBE line are ignored — a stream peer has nothing to pipeline. *)
  let stream_req = ref None in
  (* MULTI state: a transaction being queued on this connection.
     [dirty] poisons it (parse error, bad command, overflow) so EXEC
     refuses instead of committing a half-understood sequence. *)
  let in_multi = ref false in
  let queued : Protocol.command list ref = ref [] (* reversed *) in
  let dirty = ref false in
  let multi_reset () =
    in_multi := false;
    queued := [];
    dirty := false
  in
  let last_act = ref (Unix.gettimeofday ()) in
  (* Tick stamp of the read chunk being processed: the first command of
     a chunk backdates its span to the bytes' arrival, so (for the
     non-pipelined case) the span covers what the client experiences
     minus the wire.  Later commands in the same chunk start "now" —
     they were being worked on continuously. *)
  let chunk_mark = ref 0 in
  let first_span = ref true in
  let run_command line =
    Atomic.incr t.commands_total;
    let sp = Span.start ~begin_ticks:!chunk_mark ~cmd:"?" () in
    chunk_mark := 0;
    if !first_span then begin
      (* The connection's first request also pays accept and
         handoff-queue dwell, stamped by the accept loop. *)
      first_span := false;
      Span.add_to sp Span.Accept accept_ticks;
      Span.add_to sp Span.Queue queue_ticks
    end;
    let parsed =
      Span.in_phase Span.Parse (fun () -> Protocol.parse_command_traced line)
    in
    let trace_id, outcome, r =
      match parsed with
      | Error msg ->
          Atomic.incr t.errors_total;
          (* A garbage line inside MULTI poisons the transaction: the
             client and server may disagree on what was queued. *)
          if !in_multi then dirty := true;
          (None, "error", Protocol.Err msg)
      | Ok (tid, c) -> (
          Span.set_cmd sp (command_verb c);
          (match tid with Some id -> Span.set_trace_id sp id | None -> ());
          if Activity.on () then Activity.set Activity.dim_op (verb_activity c);
          match c with
          | Protocol.Quit ->
              quit := true;
              (tid, "ok", Protocol.Ok_)
          | Protocol.Multi ->
              if !in_multi then begin
                Atomic.incr t.errors_total;
                dirty := true;
                (tid, "error", Protocol.Err "MULTI: nested MULTI")
              end
              else begin
                multi_reset ();
                in_multi := true;
                (tid, "ok", Protocol.Ok_)
              end
          | Protocol.Discard ->
              if !in_multi then begin
                multi_reset ();
                (tid, "ok", Protocol.Ok_)
              end
              else begin
                Atomic.incr t.errors_total;
                (tid, "error", Protocol.Err "DISCARD without MULTI")
              end
          | Protocol.Exec token ->
              if not !in_multi then begin
                Atomic.incr t.errors_total;
                (tid, "error", Protocol.Err "EXEC without MULTI")
              end
              else if !dirty then begin
                multi_reset ();
                Atomic.incr t.errors_total;
                ( tid,
                  "error",
                  Protocol.Err
                    "EXECABORT: transaction discarded because of previous \
                     errors" )
              end
              else if is_replica t then begin
                (* The queued writes must come through the feed, not the
                   wire — a replica that committed its own transactions
                   would diverge from the primary. *)
                multi_reset ();
                Atomic.incr t.errors_total;
                (tid, "error", Protocol.Err replica_readonly_msg)
              end
              else begin
                let lvl = Span.in_phase Span.Shed (fun () -> overload_level t) in
                if lvl >= 2 then begin
                  if not (Atomic.exchange t.hard_shed_on true) then
                    flight_record t ~trigger:Harness.Flight.Hard_shed ()
                end
                else if lvl = 0 then Atomic.set t.hard_shed_on false;
                if lvl >= 1 then begin
                  (* EXEC is snapshot-heavy, so it sheds at soft level —
                     but WITHOUT dropping the queued transaction: a
                     backed-off retry of just EXEC still commits it. *)
                  count_shed t;
                  (tid, "shed", Protocol.Busy t.cfg.retry_after_ms)
                end
                else begin
                  let cs = List.rev !queued in
                  multi_reset ();
                  match Mount.exec_txn t.mount ~token cs with
                  | Protocol.Err _ as r ->
                      Atomic.incr t.errors_total;
                      (tid, "error", r)
                  | Protocol.Aborted _ as r -> (tid, "abort", r)
                  | r -> (tid, "ok", r)
                end
              end
          | ( Protocol.Get _ | Protocol.Put _ | Protocol.Del _
            | Protocol.Mget _ | Protocol.Range _ | Protocol.Rangecount _ )
            when !in_multi -> (
              let unsupported_range =
                match (c, Mount.range_capability t.mount) with
                | ( (Protocol.Range _ | Protocol.Rangecount _),
                    Dstruct.Map_intf.Unordered ) ->
                    true
                | _ -> false
              in
              match () with
              | _ when unsupported_range ->
                  (* Reject at queue time: queuing a command that can
                     never execute would guarantee an EXECABORT later. *)
                  Atomic.incr t.errors_total;
                  dirty := true;
                  ( tid,
                    "error",
                    Protocol.Err
                      (Printf.sprintf
                         "unsupported: RANGE on unordered structure %S; use \
                          MGET"
                         (Mount.name t.mount)) )
              | _ when List.length !queued >= multi_queue_cap ->
                  Atomic.incr t.errors_total;
                  dirty := true;
                  (tid, "error", Protocol.Err "MULTI: transaction too large")
              | _ ->
                  queued := c :: !queued;
                  (tid, "ok", Protocol.Queued))
          | c when !in_multi ->
              (* PING/STATS/SCAN/... make no sense inside a transaction;
                 poison it so EXEC cannot silently commit a sequence the
                 client mis-stated. *)
              Atomic.incr t.errors_total;
              dirty := true;
              ( tid,
                "error",
                Protocol.Err
                  (Printf.sprintf "%s not allowed in MULTI" (command_verb c))
              )
          | Protocol.Stats -> (tid, "ok", Protocol.Bulk (stats_json t))
          | Protocol.Metrics -> (tid, "ok", Protocol.Bulk (metrics_text t))
          | Protocol.Profile ms ->
              (* Like [Stats]/[Metrics]: answered at the connection
                 level, never shed — an overloaded server must stay
                 profileable (the whole point of the plane).  A
                 positive window parks this worker for its duration
                 (clamped inside [Profile.json]); pipelined commands
                 behind it simply wait. *)
              (tid, "ok", Protocol.Bulk (Verlib.Obs.Profile.json ~window_ms:ms ()))
          | Protocol.Ping -> (tid, "ok", Protocol.Pong)
          | Protocol.Replstats ->
              (* Like STATS: never shed — the replication plane stays
                 observable under overload and partitions. *)
              (tid, "ok", Protocol.Bulk (replstats_json t))
          | Protocol.Promote ->
              (* Idempotent failover: accept writes from now on; the
                 apply loop (if any) notices the role flip and exits. *)
              Atomic.set t.role Primary;
              (tid, "ok", Protocol.Ok_)
          | Protocol.Sync -> (
              (* Snapshot-heavy (an uncapped fold) — shed before
                 dumping, and a latched partition severs it. *)
              let lvl = Span.in_phase Span.Shed (fun () -> overload_level t) in
              if lvl >= 1 then begin
                count_shed t;
                (tid, "shed", Protocol.Busy t.cfg.retry_after_ms)
              end
              else
                match sync_reply t with
                | r -> (tid, "ok", r)
                | exception Fault.Injected _ ->
                    quit := true;
                    (tid, "error", Protocol.Err "partitioned"))
          | Protocol.Ack _ ->
              Atomic.incr t.errors_total;
              (tid, "error", Protocol.Err "ACK outside a SUBSCRIBE stream")
          | Protocol.Watch (lo, hi, ms) ->
              let lvl = Span.in_phase Span.Shed (fun () -> overload_level t) in
              if lvl >= 1 then begin
                count_shed t;
                (tid, "shed", Protocol.Busy t.cfg.retry_after_ms)
              end
              else (tid, "ok", run_watch t lo hi ms)
          | Protocol.Subscribe (lo, hi, seq) ->
              stream_req := Some (lo, hi, seq);
              quit := true;
              (tid, "ok", Protocol.Ok_)
          | (Protocol.Put _ | Protocol.Del _) when is_replica t ->
              Atomic.incr t.errors_total;
              (tid, "error", Protocol.Err replica_readonly_msg)
          | c ->
              let lvl = Span.in_phase Span.Shed (fun () -> overload_level t) in
              (* Hard-shed engagement is a flight trigger on the rising
                 edge only — the first refused command files the report,
                 steady-state refusals stay cheap. *)
              if lvl >= 2 then begin
                if not (Atomic.exchange t.hard_shed_on true) then
                  flight_record t ~trigger:Harness.Flight.Hard_shed ()
              end
              else if lvl = 0 then Atomic.set t.hard_shed_on false;
              if lvl >= 2 || (lvl >= 1 && Protocol.snapshot_heavy c) then begin
                count_shed t;
                (tid, "shed", Protocol.Busy t.cfg.retry_after_ms)
              end
              else begin
                let r = Mount.exec t.mount c in
                match r with
                | Protocol.Err _ ->
                    Atomic.incr t.errors_total;
                    (tid, "error", r)
                | _ -> (tid, "ok", r)
              end)
    in
    if Activity.on () then Activity.set Activity.dim_op 0;
    (* Render under the [reply] phase, finish the span, then emit: a
       traced command's @-frame goes ahead of its data bytes (the
       incremental reader never peeks past a reply).  The batched
       socket flush is shared across pipelined commands and is not
       attributed to any span. *)
    Buffer.clear scratch;
    Span.in_phase Span.Reply (fun () -> Protocol.render_reply scratch r);
    Span.finish ~outcome sp;
    (match trace_id with
     | Some id -> Protocol.render_trace out (trace_info_of sp id outcome)
     | None -> ());
    Buffer.add_buffer out scratch
  in
  (* Split the pending buffer into complete lines, execute each; keep
     the trailing partial line for the next read. *)
  let process_pending () =
    let s = Buffer.contents pending in
    let len = String.length s in
    let start = ref 0 in
    let i = ref !scanned in
    while (not !quit) && !i < len do
      if s.[!i] = '\n' then begin
        let stop = if !i > !start && s.[!i - 1] = '\r' then !i - 1 else !i in
        run_command (String.sub s !start (stop - !start));
        start := !i + 1
      end;
      incr i
    done;
    Buffer.clear pending;
    if (not !quit) && !start < len then
      Buffer.add_substring pending s !start (len - !start);
    scanned := Buffer.length pending
  in
  let flush_out () =
    if Buffer.length out > 0 then begin
      let deadline =
        if t.cfg.write_timeout > 0. then
          Unix.gettimeofday () +. t.cfg.write_timeout
        else infinity
      in
      (try write_all ~deadline fd (Buffer.contents out)
       with Write_deadline ->
         (* Peer stopped reading: reclaim the worker. *)
         Atomic.incr t.deadline_kills;
         Atomic.incr deadline_kills_a;
         flight_record t ~trigger:Harness.Flight.Deadline_kill ();
         quit := true);
      Buffer.clear out
    end
  in
  (try
     while not !quit do
       let read_cap =
         match Fault.io_check fp_read with
         | Some Fault.Econnreset -> -1 (* injected peer reset *)
         | Some (Fault.Eagain_burst _) -> 0 (* injected spurious wakeup *)
         | Some (Fault.Short_write n) -> max 1 n
         | Some _ | None -> Bytes.length chunk
       in
       if read_cap < 0 then quit := true
       else if read_cap = 0 then begin
         Thread.yield ();
         if Atomic.get t.stop_flag then quit := true
       end
       else
         match Unix.read fd chunk 0 read_cap with
         | 0 -> quit := true
         | n ->
             last_act := Unix.gettimeofday ();
             chunk_mark := Verlib.Hwclock.now ();
             Buffer.add_subbytes pending chunk 0 n;
             if Buffer.length pending > max_line then begin
               Protocol.render_reply out (Protocol.Err "line too long");
               Atomic.incr t.errors_total;
               quit := true
             end
             else process_pending ();
             (* Amortized GC telemetry: one [quick_stat] per read chunk
                (dozens-to-thousands of commands), published into this
                worker's slot for the gauges and PROFILE to sum. *)
             Flock.Telemetry.Gcstat.publish ();
             flush_out ();
             (* Graceful drain: everything read so far is answered; stop
                taking more. *)
             if Atomic.get t.stop_flag then quit := true
         | exception
             Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
           ->
             if Atomic.get t.stop_flag then quit := true
             else if
               t.cfg.idle_timeout > 0.
               && Unix.gettimeofday () -. !last_act > t.cfg.idle_timeout
             then begin
               (* Idle deadline: the client connected and went silent. *)
               Atomic.incr t.deadline_kills;
               Atomic.incr deadline_kills_a;
               flight_record t ~trigger:Harness.Flight.Deadline_kill ();
               quit := true
             end
         | exception Unix.Unix_error _ -> quit := true
     done
   with _ -> ());
  (match !stream_req with
   | Some (lo, hi, seq) when not (Atomic.get t.stop_flag) -> (
       try stream_serve t fd ~lo ~hi ~start_seq:seq with _ -> ())
   | _ -> ());
  (try Unix.close fd with _ -> ());
  Atomic.decr t.conns_active

(* --- the replica (follower) loop ------------------------------------------ *)

(* Make the local store equal to the SYNC snapshot.  Writes go through
   [Txn] like everything else, so local readers serialize against the
   reconciliation; bindings already correct cost one read. *)
let replica_reconcile t pairs =
  let store = Mount.store t.mount in
  let snap = Hashtbl.create (max 16 (List.length pairs)) in
  List.iter (fun (k, v) -> Hashtbl.replace snap k v) pairs;
  List.iter
    (fun (k, _) -> if not (Hashtbl.mem snap k) then ignore (Txn.del store k))
    (Mount.dump t.mount);
  List.iter
    (fun (k, v) ->
      match Txn.get store k with
      | Some v0 when v0 = v -> ()
      | Some _ ->
          ignore (Txn.del store k);
          ignore (Txn.put store k v)
      | None -> ignore (Txn.put store k v))
    pairs

let parse_sync_pairs rest =
  let rec go acc = function
    | [] -> List.rev acc
    | Protocol.Int k :: Protocol.Int v :: tl -> go ((k, v) :: acc) tl
    | _ -> failwith "bad SYNC frame"
  in
  go [] rest

(* Follow the primary: bootstrap from SYNC, stream the suffix, apply in
   seq order, ack the cursor.  Any failure — partition, resync demand,
   reorder-buffer overflow, dead primary — tears the connection down and
   starts over from SYNC; records already applied dedup as [`Dup].  The
   loop exits when the server stops or the replica is PROMOTEd. *)
let replica_loop t host port () =
  let apply = match t.apply with Some a -> a | None -> assert false in
  let running () = (not (Atomic.get t.stop_flag)) && is_replica t in
  while running () do
    (try
       let c = Client.connect ~host ~read_timeout:2.0 ~port () in
       Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
       (match Client.request c Protocol.Sync with
        | Ok (Protocol.Arr (Protocol.Int seq :: Protocol.Int stamp :: rest)) ->
            replica_reconcile t (parse_sync_pairs rest);
            Repl.Apply.reset apply ~seq ~stamp
        | Ok (Protocol.Err e) -> failwith e
        | Ok _ -> failwith "bad SYNC reply"
        | Error e -> failwith e);
       (match
          Client.request c
            (Protocol.Subscribe (min_int, max_int, Repl.Apply.last_seq apply))
        with
        | Ok Protocol.Ok_ -> ()
        | Ok (Protocol.Err e) -> failwith e
        | Ok _ | Error _ -> failwith "SUBSCRIBE refused");
       let ack () =
         (* Best-effort: a lost ack only delays the primary's lag
            gauges until the next one. *)
         try
           Client.send_raw c
             (Printf.sprintf "ACK %d %d\r\n" (Repl.Apply.last_seq apply)
                (Repl.Apply.last_stamp apply))
         with _ -> ()
       in
       let rec pump () =
         if running () then
           match Client.read_reply c with
           | Ok Protocol.Ok_ -> pump () (* heartbeat *)
           | Ok (Protocol.Err _) -> failwith "stream demands resync"
           | Ok r -> (
               match Protocol.record_of_reply r with
               | Error _ -> pump () (* not a record frame; ignore *)
               | Ok rc -> (
                   match Repl.Apply.offer apply rc with
                   | `Applied _ ->
                       ack ();
                       pump ()
                   | `Dup | `Buffered -> pump ()
                   | `Overflow -> failwith "reorder buffer overflow"))
           | Error e -> failwith e
       in
       pump ()
     with _ -> if running () then Unix.sleepf 0.05)
  done

(* --- domains ------------------------------------------------------------- *)

let accept_loop t lsock () =
  (* select-with-timeout so the loop observes the stop flag without
     relying on cross-domain close semantics. *)
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ lsock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept lsock with
        | fd, _ ->
            let t_accept = Verlib.Hwclock.now () in
            Atomic.incr t.conns_total;
            if
              t.cfg.max_conns > 0
              && Atomic.get t.conns_active + Bqueue.length t.queue
                 >= t.cfg.max_conns
            then begin
              (* Connection cap: answer [-BUSY] at the door and close,
                 instead of parking the socket in a queue no worker will
                 reach soon.  Best-effort write: the client may already
                 be gone. *)
              count_shed t;
              let b = Buffer.create 32 in
              Protocol.render_reply b (Protocol.Busy t.cfg.retry_after_ms);
              (try write_all ~deadline:(Unix.gettimeofday () +. 0.2) fd
                     (Buffer.contents b)
               with _ -> ());
              try Unix.close fd with _ -> ()
            end
            else begin
              (* Two stamps bracket the push: accept→push books as
                 accept work, push→pop (including any block on a full
                 queue) as queue dwell — on the connection's first
                 request span. *)
              let t_push = Verlib.Hwclock.now () in
              if not (Bqueue.push t.queue (fd, t_accept, t_push)) then
                try Unix.close fd with _ -> ()
            end
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
  done

let rec worker_loop t () =
  match Bqueue.pop t.queue with
  | None -> ()
  | Some (fd, t_accept, t_push) ->
      let t_pop = Verlib.Hwclock.now () in
      serve_conn t fd
        ~accept_ticks:(max 0 (t_push - t_accept))
        ~queue_ticks:(max 0 (t_pop - t_push));
      worker_loop t ()

let take_census t =
  let c = Verlib.Chainscan.census_of_iter (Mount.iter_vptrs t.mount) in
  Atomic.set t.latest_census (Some c);
  Atomic.incr t.census_samples;
  if c.Verlib.Chainscan.c_violation_count > 0 then begin
    ignore
      (Atomic.fetch_and_add t.census_violations c.Verlib.Chainscan.c_violation_count);
    (* A chain-invariant violation is exactly the incident the flight
       recorder exists for: dump with the offending census attached. *)
    flight_record t ~trigger:Harness.Flight.Census_violation ~census:c ()
  end;
  c

let census_loop t () =
  while not (Atomic.get t.stop_flag) do
    let deadline = Unix.gettimeofday () +. t.cfg.census_interval in
    while (not (Atomic.get t.stop_flag)) && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.01
    done;
    if not (Atomic.get t.stop_flag) then ignore (take_census t)
  done

(* SLO sweep: any request phase whose p99 (µs) exceeds the configured
   budget files a flight report naming the offending phase.  The
   recorder's cooldown keeps a persistently slow phase from spamming. *)
let slo_check t =
  if t.cfg.slo_p99_us > 0. then
    List.iter
      (fun p ->
        let s = Flock.Telemetry.Hist.summary (Span.phase_hist p) in
        if
          s.Flock.Telemetry.Hist.s_count > 0
          && Verlib.Hwclock.to_us s.Flock.Telemetry.Hist.s_p99
             > t.cfg.slo_p99_us
        then
          flight_record t
            ~trigger:(Harness.Flight.Slo_breach (Span.phase_name p))
            ())
      Span.phases

(* The metrics plane's background cadence: a fresh census (so STATS and
   shedding see current chain health even with the dedicated census
   domain off) plus the SLO sweep, every [metrics_interval] seconds. *)
let metrics_loop t () =
  while not (Atomic.get t.stop_flag) do
    let deadline = Unix.gettimeofday () +. t.cfg.metrics_interval in
    while (not (Atomic.get t.stop_flag)) && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.01
    done;
    if not (Atomic.get t.stop_flag) then begin
      ignore (take_census t);
      slo_check t
    end
  done

let start t =
  if t.started then invalid_arg "Server.start: already started";
  (* A peer that resets mid-reply must cost an EPIPE exception on the
     writing worker, never a process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, t.cfg.port));
  Unix.listen lsock t.cfg.backlog;
  (match Unix.getsockname lsock with
   | Unix.ADDR_INET (_, p) -> t.bound_port <- p
   | _ -> ());
  t.lsock <- Some lsock;
  t.started <- true;
  t.started_at <- Unix.gettimeofday ();
  if t.cfg.census_interval > 0. then begin
    t.census_reg <-
      Some
        (Verlib.Chainscan.register
           ~name:("serve:" ^ Mount.name t.mount)
           (Mount.iter_vptrs t.mount));
    t.census_d <- Some (Domain.spawn (census_loop t))
  end;
  if t.cfg.metrics_interval > 0. then
    t.metrics_d <- Some (Domain.spawn (metrics_loop t));
  if t.cfg.profile_hz > 0 then
    Verlib.Obs.Profile.start ~hz:t.cfg.profile_hz ();
  t.worker_ds <-
    List.init (max 1 t.cfg.domains) (fun _ -> Domain.spawn (worker_loop t));
  (match t.cfg.replica_of with
   | Some (host, port) ->
       t.replica_d <- Some (Domain.spawn (replica_loop t host port))
   | None -> ());
  t.accept_d <- Some (Domain.spawn (accept_loop t lsock))

let stop t =
  if t.started && not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop_flag true;
    Option.iter Domain.join t.accept_d;
    t.accept_d <- None;
    (match t.lsock with
     | Some fd ->
         (try Unix.close fd with _ -> ());
         t.lsock <- None
     | None -> ());
    (* Drain: queued connections are still served (their loops exit as
       soon as they have answered what was already sent). *)
    Bqueue.close t.queue;
    List.iter Domain.join t.worker_ds;
    t.worker_ds <- [];
    Option.iter Domain.join t.replica_d;
    t.replica_d <- None;
    Option.iter Domain.join t.census_d;
    t.census_d <- None;
    Option.iter Domain.join t.metrics_d;
    t.metrics_d <- None;
    (* Stop the sampler after the workers are joined so the final ticks
       still see their activity; stacks stay accumulated for export. *)
    if t.cfg.profile_hz > 0 then Verlib.Obs.Profile.stop ();
    (* Quiescent final census: workers are joined, so the audit is
       exact. *)
    if t.cfg.census_interval > 0. || t.cfg.metrics_interval > 0. then begin
      let c = take_census t in
      Atomic.set t.final_census (Some c)
    end;
    Option.iter Verlib.Chainscan.unregister t.census_reg;
    t.census_reg <- None
  end

let final_census t = Atomic.get t.final_census

let census_violations_total t = Atomic.get t.census_violations

let shed_count t = Atomic.get t.shed

let deadline_kill_count t = Atomic.get t.deadline_kills
