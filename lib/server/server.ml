module Protocol = Protocol
module Bqueue = Bqueue
module Mount = Mount
module Client = Client
module Evpoll = Evpoll
module Evloop = Evloop

type config = {
  port : int;
  domains : int;
  backlog : int;
  queue_depth : int;
  census_interval : float;
  max_conns : int;
  idle_timeout : float;
  write_timeout : float;
  shed_queue : int;
  shed_epoch_lag : int;
  shed_chain_p99 : int;
  shed_dwell_us : int;
      (** shed when the last handoff batch waited this long (µs) for a
          worker — the latency signal that replaces "queue full" as the
          overload definition under the event loop; 0 disables *)
  retry_after_ms : int;
  metrics_interval : float;
  flight_dir : string;
  flight_min_interval : float;
  slo_p99_us : float;
  profile_hz : int;
  replica_of : (string * int) option;
      (** follow this primary: apply its change feed, refuse writes
          until PROMOTE (docs/REPLICATION.md) *)
  feed_capacity : int;  (** replication log ring size, in records *)
}

let default_config =
  {
    port = 7379;
    domains = 4;
    backlog = 64;
    queue_depth = 64;
    census_interval = 0.;
    max_conns = 0;
    idle_timeout = 0.;
    write_timeout = 5.;
    shed_queue = 0;
    shed_epoch_lag = 0;
    shed_chain_p99 = 0;
    shed_dwell_us = 0;
    retry_after_ms = 50;
    metrics_interval = 0.;
    flight_dir = "";
    flight_min_interval = 5.;
    slo_p99_us = 0.;
    profile_hz = 0;
    replica_of = None;
    feed_capacity = 65536;
  }

module Span = Verlib.Obs.Span

(* --- resilience accounting ----------------------------------------------- *)

(* Process-wide totals (all server instances), exported as gauges so they
   land in every [Verlib.Obs] report next to [faults_fired]. *)
let shed_total_a = Atomic.make 0

let deadline_kills_a = Atomic.make 0

(* Most recent handoff-queue dwell (µs): how long the last executed
   batch sat between the event loop's push and a worker's pop — the
   live overload signal behind [shed_dwell_us]. *)
let queue_dwell_us_a = Atomic.make 0

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "shed_total" (fun () -> Atomic.get shed_total_a)

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "deadline_kills" (fun () ->
      Atomic.get deadline_kills_a)

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "queue_dwell_us" (fun () ->
      Atomic.get queue_dwell_us_a)

(* Wire-layer fault points (docs/RESILIENCE.md): interpreted against the
   live file descriptor by the event loop's read/flush paths and the
   stream writer below. *)
let fp_read = Fault.Point.make "server.read"

let fp_write = Fault.Point.make "server.write"

type role = Primary | Replica

(* Per-connection protocol state, owned by whichever worker holds the
   connection's in-flight batch (the loop admits one batch at a time,
   so no two workers ever touch the same session). *)
type session = {
  s_admitted : bool;
      (** false for door-shed connections that only exist to carry the
          [-BUSY] refusal out; they never counted as active *)
  mutable s_multi : bool;  (** inside MULTI...EXEC *)
  mutable s_queued : Protocol.command list;  (** reversed *)
  mutable s_dirty : bool;  (** transaction poisoned *)
  mutable s_stream : (int * int * int) option;
      (** SUBSCRIBE mode-switch: (lo, hi, start_seq) *)
  mutable s_first : bool;  (** next span is the connection's first *)
}

let new_session ~admitted () =
  {
    s_admitted = admitted;
    s_multi = false;
    s_queued = [];
    s_dirty = false;
    s_stream = None;
    s_first = true;
  }

(* One read chunk's complete lines, pushed from the event loop to a
   worker domain.  [b_mark] is the chunk's arrival tick stamp (the
   first command's span is backdated to it); [b_push] brackets queue
   dwell with the worker's pop. *)
type batch = {
  b_conn : session Evloop.conn;
  b_lines : string list;
  b_mark : int;
  b_push : int;
}

type t = {
  mount : Mount.t;
  cfg : config;
  stop_flag : bool Atomic.t;
  role : role Atomic.t;
  feed : Repl.Log.t;
      (** change-feed tap over the mount's store — what SUBSCRIBE /
          WATCH / SYNC serve from *)
  apply : Repl.Apply.t option;  (** replica servers only *)
  mutable replica_d : unit Domain.t option;
  queue : batch Bqueue.t;
  mutable loop : session Evloop.t option;
  flight : Harness.Flight.t option;
  hard_shed_on : bool Atomic.t;  (* edge detector for the flight trigger *)
  mutable lsock : Unix.file_descr option;
  mutable bound_port : int;
  mutable net_d : unit Domain.t option;  (** the event-loop domain *)
  mutable worker_ds : unit Domain.t list;
  mutable census_d : unit Domain.t option;
  mutable metrics_d : unit Domain.t option;
  mutable census_reg : Verlib.Chainscan.registration option;
  mutable started : bool;
  mutable stopped : bool;
  mutable started_at : float;
  (* counters (read approximately by STATS, exactly after stop) *)
  conns_total : int Atomic.t;
  conns_active : int Atomic.t;
  commands_total : int Atomic.t;
  errors_total : int Atomic.t;
  census_samples : int Atomic.t;
  census_violations : int Atomic.t;
  shed : int Atomic.t;
  deadline_kills : int Atomic.t;
  queue_dwell_us : int Atomic.t;
  latest_census : Verlib.Chainscan.census option Atomic.t;
  final_census : Verlib.Chainscan.census option Atomic.t;
}

let create ?(config = default_config) mount =
  let feed = Repl.Log.create ~capacity:config.feed_capacity () in
  Repl.Log.tap feed (Mount.store mount);
  {
    mount;
    cfg = config;
    stop_flag = Atomic.make false;
    role =
      Atomic.make (match config.replica_of with Some _ -> Replica | None -> Primary);
    feed;
    apply =
      (match config.replica_of with
       | Some _ -> Some (Repl.Apply.create (Mount.store mount))
       | None -> None);
    replica_d = None;
    queue = Bqueue.create config.queue_depth;
    loop = None;
    flight =
      (if config.flight_dir = "" then None
       else
         Some
           (Harness.Flight.create ~min_interval:config.flight_min_interval
              ~dir:config.flight_dir ()));
    hard_shed_on = Atomic.make false;
    lsock = None;
    bound_port = config.port;
    net_d = None;
    worker_ds = [];
    census_d = None;
    metrics_d = None;
    census_reg = None;
    started = false;
    stopped = false;
    started_at = 0.;
    conns_total = Atomic.make 0;
    conns_active = Atomic.make 0;
    commands_total = Atomic.make 0;
    errors_total = Atomic.make 0;
    census_samples = Atomic.make 0;
    census_violations = Atomic.make 0;
    shed = Atomic.make 0;
    deadline_kills = Atomic.make 0;
    queue_dwell_us = Atomic.make 0;
    latest_census = Atomic.make None;
    final_census = Atomic.make None;
  }

let port t = t.bound_port

let running t = t.started && not t.stopped

(* --- flight recorder ------------------------------------------------------ *)

let flight_extra t =
  [
    ("queue_depth", string_of_int (Bqueue.length t.queue));
    ("queue_dwell_us", string_of_int (Atomic.get t.queue_dwell_us));
    ("connections_active", string_of_int (Atomic.get t.conns_active));
    ("shed", string_of_int (Atomic.get t.shed));
    ("deadline_kills", string_of_int (Atomic.get t.deadline_kills));
  ]

let flight_record t ~trigger ?census () =
  match t.flight with
  | None -> ()
  | Some f ->
      ignore
        (Harness.Flight.record f ~trigger ?census ~extra:(flight_extra t) ())

let flight_dump_count t =
  match t.flight with None -> 0 | Some f -> Harness.Flight.dump_count f

let flight_last_path t =
  match t.flight with None -> None | Some f -> Harness.Flight.last_path f

(* --- STATS --------------------------------------------------------------- *)

let stats_json t =
  let uptime = if t.started then Unix.gettimeofday () -. t.started_at else 0. in
  let census_extra =
    match
      (match Atomic.get t.final_census with
       | Some c -> Some c
       | None -> Atomic.get t.latest_census)
    with
    | None -> []
    | Some c ->
        [
          ("census", Harness.Obs_report.json_of_census c);
          ("census_samples", string_of_int (Atomic.get t.census_samples));
          ( "census_violations_total",
            string_of_int (Atomic.get t.census_violations) );
        ]
  in
  (* Per-shard census breakdown for sharded mounts: one fresh (passive,
     approximate-under-mutators) census per shard view, so a hot or
     pathological shard is visible instead of averaged away in the
     merged totals. *)
  let shard_extra =
    match Mount.shard_views t.mount with
    | [] | [ _ ] -> []
    | views ->
        let b = Buffer.create 1024 in
        Buffer.add_char b '{';
        List.iteri
          (fun i (name, iter) ->
            if i > 0 then Buffer.add_char b ',';
            let c = Verlib.Chainscan.census_of_iter iter in
            Buffer.add_string b
              (Printf.sprintf "\"%s\":%s" name
                 (Harness.Obs_report.json_of_census c)))
          views;
        Buffer.add_char b '}';
        [ ("census_shards", Buffer.contents b) ]
  in
  let census_extra = census_extra @ shard_extra in
  let extra =
    [
      ("server", "\"verlib-serve\"");
      ("structure", Printf.sprintf "%S" (Mount.name t.mount));
      ( "range_capability",
        Printf.sprintf "%S"
          (Dstruct.Map_intf.range_capability_name (Mount.range_capability t.mount))
      );
      ("uptime_s", Printf.sprintf "%.3f" uptime);
      ("domains", string_of_int t.cfg.domains);
      ("connections_total", string_of_int (Atomic.get t.conns_total));
      ("connections_active", string_of_int (Atomic.get t.conns_active));
      ("commands_total", string_of_int (Atomic.get t.commands_total));
      ("protocol_errors", string_of_int (Atomic.get t.errors_total));
      ("shed", string_of_int (Atomic.get t.shed));
      ("deadline_kills", string_of_int (Atomic.get t.deadline_kills));
      ("queue_dwell_us", string_of_int (Atomic.get t.queue_dwell_us));
      ("size", string_of_int (Mount.size t.mount));
    ]
    @ census_extra
  in
  Harness.Obs_report.to_json ~extra (Verlib.Obs.capture ())

(* --- METRICS -------------------------------------------------------------- *)

(* The live metrics plane: everything [Flock.Telemetry] holds plus the
   server's own counters, as Prometheus text exposition.  Like [Ping]
   and [Stats], never shed — an overloaded server stays measurable. *)
let metrics_text t =
  let uptime = if t.started then Unix.gettimeofday () -. t.started_at else 0. in
  Harness.Obs_report.prometheus
    ~extra:
      [
        ("server_uptime_s", int_of_float uptime);
        ("server_connections_total", Atomic.get t.conns_total);
        ("server_connections_active", Atomic.get t.conns_active);
        ("server_commands_total", Atomic.get t.commands_total);
        ("server_protocol_errors", Atomic.get t.errors_total);
        ("server_shed", Atomic.get t.shed);
        ("server_deadline_kills", Atomic.get t.deadline_kills);
        ("server_queue_depth", Bqueue.length t.queue);
        ("server_queue_dwell_us", Atomic.get t.queue_dwell_us);
        ("server_flight_dumps", flight_dump_count t);
      ]
    ()

(* --- replication plane ---------------------------------------------------- *)

let is_replica t = Atomic.get t.role = Replica

let replica_readonly_msg =
  "READONLY: replica refuses writes; PROMOTE it or write to the primary"

let replstats_json t =
  let role = if is_replica t then "replica" else "primary" in
  let lag_s, lag_b = Repl.Log.lag t.feed in
  let apply_fields =
    match t.apply with
    | None -> ""
    | Some a ->
        Printf.sprintf
          ",\"apply_last_seq\":%d,\"apply_watermark\":%d,\"apply_pending\":%d"
          (Repl.Apply.last_seq a) (Repl.Apply.watermark a)
          (Repl.Apply.pending_count a)
  in
  Printf.sprintf
    "{\"role\":%S,\"tail_seq\":%d,\"tail_stamp\":%d,\"subscribers\":%d,\"lag_stamps\":%d,\"lag_bytes\":%d,\"records_total\":%d,\"resyncs\":%d,\"applied_total\":%d,\"dup_dropped\":%d,\"watermark\":%d%s}"
    role (Repl.Log.tail_seq t.feed)
    (Repl.Log.tail_stamp t.feed)
    (Repl.Log.subscriber_count t.feed)
    lag_s lag_b (Repl.records_total ()) (Repl.resyncs_total ())
    (Repl.applied_total ()) (Repl.dup_dropped_total ())
    (Repl.watermark_now ()) apply_fields

(* SYNC: the replica-bootstrap snapshot, positioned at the feed's tail.
   Order is load-bearing: the tail is read BEFORE the fold, so any
   record at or below it was fully installed before the fold began
   (install happens-before append happens-before this read) — snapshot
   plus suffix replay from that seq converges.  Records racing past the
   tail during the fold are delivered again by the stream; re-applying
   them is idempotent (records carry installed state, not deltas).
   Hits [repl.send] so a latched partition severs bootstraps too. *)
let sync_reply t =
  Fault.hit Repl.fp_send;
  let seq = Repl.Log.tail_seq t.feed in
  let stamp = Repl.Log.tail_stamp t.feed in
  let pairs = Mount.dump t.mount in
  Protocol.Arr
    (Protocol.Int seq :: Protocol.Int stamp
    :: List.concat_map (fun (k, v) -> Protocol.[ Int k; Int v ]) pairs)

(* WATCH: park this worker (in 200ms slices, so stop stays responsive)
   until a record touching [lo, hi] lands. *)
let run_watch t lo hi ms =
  let ms = if ms <= 0 then 5000 else min ms 30000 in
  let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
  let start = Repl.Log.tail_seq t.feed in
  let rec go () =
    if Atomic.get t.stop_flag then Protocol.Nil
    else
      let slice = min deadline (Unix.gettimeofday () +. 0.2) in
      match
        Repl.Log.wait_matching t.feed ~seq:start ~lo ~hi ~deadline:slice
      with
      | `Record r -> Protocol.reply_of_record r
      | `Resync -> Protocol.Err "resync required: WATCH outpaced by the log"
      | `Timeout ->
          if Unix.gettimeofday () >= deadline then Protocol.Nil else go ()
  in
  go ()

(* --- stream writes -------------------------------------------------------- *)

exception Write_deadline

(* Push every byte of [s] to [fd], surviving EINTR and partial writes
   (short TCP buffers, injected [Short_write]).  Stream fds are
   nonblocking (they were registered in the event loop before the
   SUBSCRIBE detach), so EAGAIN parks on poll-writable instead of hot
   spinning.  A peer that stops reading cannot wedge the worker: once
   [deadline] (absolute, [infinity] = none) passes with bytes still
   queued the write is abandoned with [Write_deadline] and the
   connection is killed.  EPIPE/ECONNRESET propagate to the caller
   (dead peer); with SIGPIPE ignored (see [start]) EPIPE is an
   exception, not a signal. *)
let write_all ?(deadline = infinity) fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then begin
      let cap =
        match Fault.io_check fp_write with
        | Some (Fault.Short_write n) -> max 1 (min n (len - off))
        | Some Fault.Econnreset ->
            raise (Unix.Unix_error (Unix.ECONNRESET, "write", "fault"))
        | Some (Fault.Eagain_burst _) | Some _ | None -> len - off
      in
      match Unix.write fd b off cap with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if Unix.gettimeofday () > deadline then raise Write_deadline
          else begin
            ignore (Evpoll.writable ~timeout:0.05 fd);
            go off
          end
    end
  in
  go 0

let max_line = 1 lsl 20

(* Commands one MULTI may queue before EXEC refuses more (bounds the
   per-connection buffered transaction). *)
let multi_queue_cap = 1024

(* --- the push stream (SUBSCRIBE) ------------------------------------------ *)

(* After SUBSCRIBE's +OK the connection inverts: the server pushes one
   record frame per committed change touching [lo, hi] past the cursor,
   plus an +OK heartbeat on idle rounds (keeps the peer's read timeout
   quiet, and gives a latched partition something to sever even when the
   feed is idle); the peer sends ACK lines back on the same socket.

   The [repl.send] fault point interprets here: [partition] latches the
   point down and kills the stream (and [sync_reply]/re-subscription for
   the window), [dup] ships a record twice, [reorder] holds a record
   back one round — the at-least-once, possibly-reordered delivery the
   replica's apply engine must absorb.

   On abnormal death the cursor is orphaned, not dropped: the lag gauges
   must keep rising through a partition, and the reconnecting replica
   adopts the orphan (see [Repl.Log.subscribe]). *)
let stream_serve t fd ~lo ~hi ~start_seq =
  let log = t.feed in
  Fault.hit Repl.fp_send;
  let id = Repl.Log.subscribe log in
  let clean = ref false in
  Fun.protect
    ~finally:(fun () ->
      if !clean then Repl.Log.unsubscribe log id else Repl.Log.orphan log id)
  @@ fun () ->
  let out = Buffer.create 4096 in
  let inbuf = Protocol.Linebuf.create () in
  let chunk = Bytes.create 4096 in
  let cursor = ref start_seq in
  let held = ref None in
  let quit = ref false in
  let push r = Protocol.render_reply out (Protocol.reply_of_record r) in
  let release_held () =
    match !held with
    | Some r ->
        held := None;
        push r
    | None -> ()
  in
  let emit r =
    match Fault.feed_check Repl.fp_send with
    | Some Fault.Dup ->
        push r;
        push r;
        release_held ()
    | Some Fault.Reorder when !held = None -> held := Some r
    | Some _ | None ->
        push r;
        release_held ()
  in
  (* ACK lines arrive in arbitrary kernel-sized pieces; [Linebuf]
     re-buffers a trailing partial until its '\n' lands, so a split
     delivery never drops or mangles a frame.  The poll-readable probe
     replaces the old [Unix.select], which broke outright on fds past
     FD_SETSIZE — precisely the many-connection regime this server now
     runs in. *)
  let drain_acks () =
    if Evpoll.readable ~timeout:0. fd then
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 ->
          clean := true;
          quit := true
      | n ->
          Protocol.Linebuf.feed inbuf chunk 0 n;
          Protocol.Linebuf.drain inbuf (fun line ->
              match Protocol.parse_command line with
              | Ok (Protocol.Ack (seq, stamp)) -> (
                  (* A dropped ack is invisible to the peer; the lag
                     gauges simply stay high until the next one. *)
                  try
                    Fault.hit Repl.fp_ack;
                    Repl.Log.ack log ~id ~seq ~stamp
                  with Fault.Injected _ -> ())
              | Ok Protocol.Quit ->
                  clean := true;
                  quit := true
              | Ok _ | Error _ -> () (* stream peers speak ACK/QUIT only *))
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
  in
  let flush () =
    if Buffer.length out > 0 then begin
      let deadline =
        if t.cfg.write_timeout > 0. then
          Unix.gettimeofday () +. t.cfg.write_timeout
        else infinity
      in
      write_all ~deadline fd (Buffer.contents out);
      Buffer.clear out
    end
  in
  try
    while not (!quit || Atomic.get t.stop_flag) do
      drain_acks ();
      (match
         Repl.Log.wait_after log ~seq:!cursor
           ~deadline:(Unix.gettimeofday () +. 0.2)
       with
       | `Timeout ->
           Fault.hit Repl.fp_send;
           (* Nothing follows a held record soon: stop reordering it. *)
           release_held ();
           Protocol.render_reply out Protocol.Ok_
       | `Resync ->
           (* Laggard shed: the ring trimmed past this cursor.  A clean
              refusal — the peer re-bootstraps via SYNC. *)
           Protocol.render_reply out (Protocol.Err "resync required");
           clean := true;
           quit := true
       | `Records rs ->
           List.iter
             (fun r ->
               cursor := r.Repl.r_seq;
               if Repl.touches lo hi r then emit r)
             rs);
      flush ()
    done;
    if Atomic.get t.stop_flag then clean := true
  with
  | Write_deadline ->
      Atomic.incr t.deadline_kills;
      Atomic.incr deadline_kills_a
  | Fault.Injected _ | Unix.Unix_error _ -> ()

(* Admission control.  0 = admit everything; 1 = shed snapshot-heavy
   commands; 2 = shed every data command (PING/STATS/QUIT are always
   answered — an overloaded server stays observable).  Any configured
   pressure signal at its threshold sheds the expensive class; the same
   signal at twice its threshold sheds point ops too.  The signals:
   handoff-queue depth (batches the workers have not reached), the
   measured queue dwell of the last executed batch (the latency form of
   the same pressure — under the event loop, -BUSY is a latency policy,
   not a capacity one), and the reclamation-health gauges the census
   line of work watches: epoch lag and the p99 version-chain length —
   exactly the quantities that grow when snapshot-heavy load outruns
   truncation. *)
let overload_level t =
  let level = ref 0 in
  let look v thr =
    if thr > 0 && v >= thr then level := max !level (if v >= 2 * thr then 2 else 1)
  in
  look (Bqueue.length t.queue) t.cfg.shed_queue;
  look (Atomic.get t.queue_dwell_us) t.cfg.shed_dwell_us;
  look (Flock.Epoch.epoch_lag ()) t.cfg.shed_epoch_lag;
  (match Atomic.get t.latest_census with
   | Some c -> look (Verlib.Chainscan.chain_p99 c) t.cfg.shed_chain_p99
   | None -> ());
  !level

let count_shed t =
  Atomic.incr t.shed;
  Atomic.incr shed_total_a

(* The @-frame for a traced command, built from its finished span. *)
let trace_info_of (sp : Span.t) id outcome : Protocol.trace_info =
  {
    Protocol.t_id = id;
    t_total_us = Verlib.Hwclock.to_us (Span.total_ticks sp);
    t_outcome = outcome;
    t_fanout = sp.Span.sp_fanout;
    t_phase_us =
      List.filter_map
        (fun p ->
          let v = Span.phase_ticks sp p in
          if v > 0 then Some (Span.phase_name p, Verlib.Hwclock.to_us v)
          else None)
        Span.phases;
  }

let command_verb : Protocol.command -> string = function
  | Protocol.Ping -> "PING"
  | Protocol.Get _ -> "GET"
  | Protocol.Put _ -> "PUT"
  | Protocol.Del _ -> "DEL"
  | Protocol.Mget _ -> "MGET"
  | Protocol.Range _ -> "RANGE"
  | Protocol.Rangecount _ -> "RANGECOUNT"
  | Protocol.Scan _ -> "SCAN"
  | Protocol.Size -> "SIZE"
  | Protocol.Stats -> "STATS"
  | Protocol.Metrics -> "METRICS"
  | Protocol.Profile _ -> "PROFILE"
  | Protocol.Multi -> "MULTI"
  | Protocol.Exec _ -> "EXEC"
  | Protocol.Discard -> "DISCARD"
  | Protocol.Subscribe _ -> "SUBSCRIBE"
  | Protocol.Watch _ -> "WATCH"
  | Protocol.Sync -> "SYNC"
  | Protocol.Replstats -> "REPLSTATS"
  | Protocol.Promote -> "PROMOTE"
  | Protocol.Ack _ -> "ACK"
  | Protocol.Quit -> "QUIT"

(* Per-verb activity frames for the sampling profiler.  Interning is
   mutexed and must stay off hot paths, so every verb is interned once
   at module-load time (single-domain); [exec_line] then publishes a
   pre-computed id — two gated plain stores per command. *)
module Activity = Flock.Telemetry.Activity

let verb_activity : Protocol.command -> int =
  let ping = Activity.intern "PING"
  and get = Activity.intern "GET"
  and put = Activity.intern "PUT"
  and del = Activity.intern "DEL"
  and mget = Activity.intern "MGET"
  and range = Activity.intern "RANGE"
  and rangecount = Activity.intern "RANGECOUNT"
  and scan = Activity.intern "SCAN"
  and size = Activity.intern "SIZE"
  and stats = Activity.intern "STATS"
  and metrics = Activity.intern "METRICS"
  and profile = Activity.intern "PROFILE"
  and multi = Activity.intern "MULTI"
  and exec = Activity.intern "EXEC"
  and discard = Activity.intern "DISCARD"
  and subscribe = Activity.intern "SUBSCRIBE"
  and watch = Activity.intern "WATCH"
  and sync = Activity.intern "SYNC"
  and replstats = Activity.intern "REPLSTATS"
  and promote = Activity.intern "PROMOTE"
  and ack = Activity.intern "ACK"
  and quit = Activity.intern "QUIT" in
  function
  | Protocol.Ping -> ping
  | Protocol.Get _ -> get
  | Protocol.Put _ -> put
  | Protocol.Del _ -> del
  | Protocol.Mget _ -> mget
  | Protocol.Range _ -> range
  | Protocol.Rangecount _ -> rangecount
  | Protocol.Scan _ -> scan
  | Protocol.Size -> size
  | Protocol.Stats -> stats
  | Protocol.Metrics -> metrics
  | Protocol.Profile _ -> profile
  | Protocol.Multi -> multi
  | Protocol.Exec _ -> exec
  | Protocol.Discard -> discard
  | Protocol.Subscribe _ -> subscribe
  | Protocol.Watch _ -> watch
  | Protocol.Sync -> sync
  | Protocol.Replstats -> replstats
  | Protocol.Promote -> promote
  | Protocol.Ack _ -> ack
  | Protocol.Quit -> quit

(* --- command execution (worker side) -------------------------------------- *)

(* Execute one wire line against [sess], appending the rendered reply
   (and any @-trace frame) to [out].  Runs on a worker domain; the
   event loop guarantees at most one batch per connection in flight, so
   session mutation is single-threaded per connection.  [mark] (0 =
   none) backdates the span to the read chunk's arrival; [accept_ticks]
   and [queue_ticks] book the connection-accept and handoff-dwell
   phases on the batch's first span. *)
let exec_line t sess ~out ~scratch ~mark ~accept_ticks ~queue_ticks ~quit line =
  Atomic.incr t.commands_total;
  let sp = Span.start ~begin_ticks:mark ~cmd:"?" () in
  if accept_ticks > 0 then Span.add_to sp Span.Accept accept_ticks;
  if queue_ticks > 0 then Span.add_to sp Span.Queue queue_ticks;
  let multi_reset () =
    sess.s_multi <- false;
    sess.s_queued <- [];
    sess.s_dirty <- false
  in
  let parsed =
    Span.in_phase Span.Parse (fun () -> Protocol.parse_command_traced line)
  in
  let trace_id, outcome, r =
    match parsed with
    | Error msg ->
        Atomic.incr t.errors_total;
        (* A garbage line inside MULTI poisons the transaction: the
           client and server may disagree on what was queued. *)
        if sess.s_multi then sess.s_dirty <- true;
        (None, "error", Protocol.Err msg)
    | Ok (tid, c) -> (
        Span.set_cmd sp (command_verb c);
        (match tid with Some id -> Span.set_trace_id sp id | None -> ());
        if Activity.on () then Activity.set Activity.dim_op (verb_activity c);
        match c with
        | Protocol.Quit ->
            quit := true;
            (tid, "ok", Protocol.Ok_)
        | Protocol.Multi ->
            if sess.s_multi then begin
              Atomic.incr t.errors_total;
              sess.s_dirty <- true;
              (tid, "error", Protocol.Err "MULTI: nested MULTI")
            end
            else begin
              multi_reset ();
              sess.s_multi <- true;
              (tid, "ok", Protocol.Ok_)
            end
        | Protocol.Discard ->
            if sess.s_multi then begin
              multi_reset ();
              (tid, "ok", Protocol.Ok_)
            end
            else begin
              Atomic.incr t.errors_total;
              (tid, "error", Protocol.Err "DISCARD without MULTI")
            end
        | Protocol.Exec token ->
            if not sess.s_multi then begin
              Atomic.incr t.errors_total;
              (tid, "error", Protocol.Err "EXEC without MULTI")
            end
            else if sess.s_dirty then begin
              multi_reset ();
              Atomic.incr t.errors_total;
              ( tid,
                "error",
                Protocol.Err
                  "EXECABORT: transaction discarded because of previous \
                   errors" )
            end
            else if is_replica t then begin
              (* The queued writes must come through the feed, not the
                 wire — a replica that committed its own transactions
                 would diverge from the primary. *)
              multi_reset ();
              Atomic.incr t.errors_total;
              (tid, "error", Protocol.Err replica_readonly_msg)
            end
            else begin
              let lvl = Span.in_phase Span.Shed (fun () -> overload_level t) in
              if lvl >= 2 then begin
                if not (Atomic.exchange t.hard_shed_on true) then
                  flight_record t ~trigger:Harness.Flight.Hard_shed ()
              end
              else if lvl = 0 then Atomic.set t.hard_shed_on false;
              if lvl >= 1 then begin
                (* EXEC is snapshot-heavy, so it sheds at soft level —
                   but WITHOUT dropping the queued transaction: a
                   backed-off retry of just EXEC still commits it. *)
                count_shed t;
                (tid, "shed", Protocol.Busy t.cfg.retry_after_ms)
              end
              else begin
                let cs = List.rev sess.s_queued in
                multi_reset ();
                match Mount.exec_txn t.mount ~token cs with
                | Protocol.Err _ as r ->
                    Atomic.incr t.errors_total;
                    (tid, "error", r)
                | Protocol.Aborted _ as r -> (tid, "abort", r)
                | r -> (tid, "ok", r)
              end
            end
        | ( Protocol.Get _ | Protocol.Put _ | Protocol.Del _
          | Protocol.Mget _ | Protocol.Range _ | Protocol.Rangecount _ )
          when sess.s_multi -> (
            let unsupported_range =
              match (c, Mount.range_capability t.mount) with
              | ( (Protocol.Range _ | Protocol.Rangecount _),
                  Dstruct.Map_intf.Unordered ) ->
                  true
              | _ -> false
            in
            match () with
            | _ when unsupported_range ->
                (* Reject at queue time: queuing a command that can
                   never execute would guarantee an EXECABORT later. *)
                Atomic.incr t.errors_total;
                sess.s_dirty <- true;
                ( tid,
                  "error",
                  Protocol.Err
                    (Printf.sprintf
                       "unsupported: RANGE on unordered structure %S; use \
                        MGET"
                       (Mount.name t.mount)) )
            | _ when List.length sess.s_queued >= multi_queue_cap ->
                Atomic.incr t.errors_total;
                sess.s_dirty <- true;
                (tid, "error", Protocol.Err "MULTI: transaction too large")
            | _ ->
                sess.s_queued <- c :: sess.s_queued;
                (tid, "ok", Protocol.Queued))
        | c when sess.s_multi ->
            (* PING/STATS/SCAN/... make no sense inside a transaction;
               poison it so EXEC cannot silently commit a sequence the
               client mis-stated. *)
            Atomic.incr t.errors_total;
            sess.s_dirty <- true;
            ( tid,
              "error",
              Protocol.Err
                (Printf.sprintf "%s not allowed in MULTI" (command_verb c))
            )
        | Protocol.Stats -> (tid, "ok", Protocol.Bulk (stats_json t))
        | Protocol.Metrics -> (tid, "ok", Protocol.Bulk (metrics_text t))
        | Protocol.Profile ms ->
            (* Like [Stats]/[Metrics]: answered unconditionally, never
               shed — an overloaded server must stay profileable (the
               whole point of the plane).  A positive window parks this
               worker for its duration (clamped inside [Profile.json]);
               pipelined commands behind it simply wait. *)
            (tid, "ok", Protocol.Bulk (Verlib.Obs.Profile.json ~window_ms:ms ()))
        | Protocol.Ping -> (tid, "ok", Protocol.Pong)
        | Protocol.Replstats ->
            (* Like STATS: never shed — the replication plane stays
               observable under overload and partitions. *)
            (tid, "ok", Protocol.Bulk (replstats_json t))
        | Protocol.Promote ->
            (* Idempotent failover: accept writes from now on; the
               apply loop (if any) notices the role flip and exits. *)
            Atomic.set t.role Primary;
            (tid, "ok", Protocol.Ok_)
        | Protocol.Sync -> (
            (* Snapshot-heavy (an uncapped fold) — shed before
               dumping, and a latched partition severs it. *)
            let lvl = Span.in_phase Span.Shed (fun () -> overload_level t) in
            if lvl >= 1 then begin
              count_shed t;
              (tid, "shed", Protocol.Busy t.cfg.retry_after_ms)
            end
            else
              match sync_reply t with
              | r -> (tid, "ok", r)
              | exception Fault.Injected _ ->
                  quit := true;
                  (tid, "error", Protocol.Err "partitioned"))
        | Protocol.Ack _ ->
            Atomic.incr t.errors_total;
            (tid, "error", Protocol.Err "ACK outside a SUBSCRIBE stream")
        | Protocol.Watch (lo, hi, ms) ->
            let lvl = Span.in_phase Span.Shed (fun () -> overload_level t) in
            if lvl >= 1 then begin
              count_shed t;
              (tid, "shed", Protocol.Busy t.cfg.retry_after_ms)
            end
            else (tid, "ok", run_watch t lo hi ms)
        | Protocol.Subscribe (lo, hi, seq) ->
            sess.s_stream <- Some (lo, hi, seq);
            quit := true;
            (tid, "ok", Protocol.Ok_)
        | (Protocol.Put _ | Protocol.Del _) when is_replica t ->
            Atomic.incr t.errors_total;
            (tid, "error", Protocol.Err replica_readonly_msg)
        | c ->
            let lvl = Span.in_phase Span.Shed (fun () -> overload_level t) in
            (* Hard-shed engagement is a flight trigger on the rising
               edge only — the first refused command files the report,
               steady-state refusals stay cheap. *)
            if lvl >= 2 then begin
              if not (Atomic.exchange t.hard_shed_on true) then
                flight_record t ~trigger:Harness.Flight.Hard_shed ()
            end
            else if lvl = 0 then Atomic.set t.hard_shed_on false;
            if lvl >= 2 || (lvl >= 1 && Protocol.snapshot_heavy c) then begin
              count_shed t;
              (tid, "shed", Protocol.Busy t.cfg.retry_after_ms)
            end
            else begin
              let r = Mount.exec t.mount c in
              match r with
              | Protocol.Err _ ->
                  Atomic.incr t.errors_total;
                  (tid, "error", r)
              | _ -> (tid, "ok", r)
            end)
  in
  if Activity.on () then Activity.set Activity.dim_op 0;
  (* Render under the [reply] phase, finish the span, then emit: a
     traced command's @-frame goes ahead of its data bytes (the
     incremental reader never peeks past a reply).  The batched socket
     flush is shared across pipelined commands and is not attributed to
     any span. *)
  Buffer.clear scratch;
  Span.in_phase Span.Reply (fun () -> Protocol.render_reply scratch r);
  Span.finish ~outcome sp;
  (match trace_id with
   | Some id -> Protocol.render_trace out (trace_info_of sp id outcome)
   | None -> ());
  Buffer.add_buffer out scratch

(* Execute one handoff batch: run every line, publish the coalesced
   reply bytes to the connection in a single [Evloop.output], report
   completion, and — when a SUBSCRIBE flipped the session — adopt the
   fd and run the push stream right here on the worker domain. *)
let exec_batch t loop (b : batch) =
  let t_pop = Verlib.Hwclock.now () in
  let queue_ticks = max 0 (t_pop - b.b_push) in
  let dwell_us = int_of_float (Verlib.Hwclock.to_us queue_ticks) in
  Atomic.set t.queue_dwell_us dwell_us;
  Atomic.set queue_dwell_us_a dwell_us;
  let conn = b.b_conn in
  let sess = conn.Evloop.data in
  let out = Buffer.create 512 in
  let scratch = Buffer.create 256 in
  let quit = ref false in
  let first = ref true in
  List.iter
    (fun line ->
      (* A QUIT (or SUBSCRIBE) mid-batch drops the lines pipelined
         behind it, exactly as the per-connection loop used to.  A peer
         the loop has seen depart likewise forfeits its remaining
         commands: the old core stopped when the per-command reply
         write failed; here replies are buffered, so without this check
         a command stalled by a chaos plan would resume minutes later
         and apply stale mutations the client has long since replayed
         over a fresh connection (the soak's conservation audit catches
         exactly that as destroyed money). *)
      if (not !quit) && Evloop.peer_gone conn then quit := true;
      if not !quit then begin
        let mark = if !first then b.b_mark else 0 in
        let accept_ticks =
          if !first && sess.s_first then conn.Evloop.accept_ticks else 0
        in
        let queue_ticks = if !first then queue_ticks else 0 in
        if !first then begin
          sess.s_first <- false;
          first := false
        end;
        exec_line t sess ~out ~scratch ~mark ~accept_ticks ~queue_ticks ~quit
          line
      end)
    b.b_lines;
  if Buffer.length out > 0 then Evloop.output conn (Buffer.contents out);
  (* Amortized GC telemetry: one [quick_stat] per batch (dozens of
     commands), published into this worker's slot for the gauges and
     PROFILE to sum. *)
  Flock.Telemetry.Gcstat.publish ();
  let action =
    match sess.s_stream with
    | Some _ -> `Detach
    | None -> if !quit then `Close else `Continue
  in
  Evloop.complete loop conn action;
  match sess.s_stream with
  | None -> ()
  | Some (lo, hi, seq) -> (
      (* The loop flushes the +OK, deregisters the fd, and hands it
         over; from here the worker owns the socket for the stream's
         lifetime (long-lived, IO-bound — the same occupancy a
         subscriber cost under thread-per-connection). *)
      match Evloop.wait_detached conn with
      | `Dead -> () (* loop killed it; fd closed, h_close fired *)
      | `Ok ->
          (if not (Atomic.get t.stop_flag) then
             try stream_serve t conn.Evloop.fd ~lo ~hi ~start_seq:seq
             with _ -> ());
          (try Unix.close conn.Evloop.fd with Unix.Unix_error _ -> ());
          Atomic.decr t.conns_active)

(* --- the replica (follower) loop ------------------------------------------ *)

(* Make the local store equal to the SYNC snapshot.  Writes go through
   [Txn] like everything else, so local readers serialize against the
   reconciliation; bindings already correct cost one read. *)
let replica_reconcile t pairs =
  let store = Mount.store t.mount in
  let snap = Hashtbl.create (max 16 (List.length pairs)) in
  List.iter (fun (k, v) -> Hashtbl.replace snap k v) pairs;
  List.iter
    (fun (k, _) -> if not (Hashtbl.mem snap k) then ignore (Txn.del store k))
    (Mount.dump t.mount);
  List.iter
    (fun (k, v) ->
      match Txn.get store k with
      | Some v0 when v0 = v -> ()
      | Some _ ->
          ignore (Txn.del store k);
          ignore (Txn.put store k v)
      | None -> ignore (Txn.put store k v))
    pairs

let parse_sync_pairs rest =
  let rec go acc = function
    | [] -> List.rev acc
    | Protocol.Int k :: Protocol.Int v :: tl -> go ((k, v) :: acc) tl
    | _ -> failwith "bad SYNC frame"
  in
  go [] rest

(* Follow the primary: bootstrap from SYNC, stream the suffix, apply in
   seq order, ack the cursor.  Any failure — partition, resync demand,
   reorder-buffer overflow, dead primary — tears the connection down and
   starts over from SYNC; records already applied dedup as [`Dup].  The
   loop exits when the server stops or the replica is PROMOTEd. *)
let replica_loop t host port () =
  let apply = match t.apply with Some a -> a | None -> assert false in
  let running () = (not (Atomic.get t.stop_flag)) && is_replica t in
  while running () do
    (try
       let c = Client.connect ~host ~read_timeout:2.0 ~port () in
       Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
       (match Client.request c Protocol.Sync with
        | Ok (Protocol.Arr (Protocol.Int seq :: Protocol.Int stamp :: rest)) ->
            replica_reconcile t (parse_sync_pairs rest);
            Repl.Apply.reset apply ~seq ~stamp
        | Ok (Protocol.Err e) -> failwith e
        | Ok _ -> failwith "bad SYNC reply"
        | Error e -> failwith e);
       (match
          Client.request c
            (Protocol.Subscribe (min_int, max_int, Repl.Apply.last_seq apply))
        with
        | Ok Protocol.Ok_ -> ()
        | Ok (Protocol.Err e) -> failwith e
        | Ok _ | Error _ -> failwith "SUBSCRIBE refused");
       let ack () =
         (* Best-effort: a lost ack only delays the primary's lag
            gauges until the next one. *)
         try
           Client.send_raw c
             (Printf.sprintf "ACK %d %d\r\n" (Repl.Apply.last_seq apply)
                (Repl.Apply.last_stamp apply))
         with _ -> ()
       in
       let rec pump () =
         if running () then
           match Client.read_reply c with
           | Ok Protocol.Ok_ -> pump () (* heartbeat *)
           | Ok (Protocol.Err _) -> failwith "stream demands resync"
           | Ok r -> (
               match Protocol.record_of_reply r with
               | Error _ -> pump () (* not a record frame; ignore *)
               | Ok rc -> (
                   match Repl.Apply.offer apply rc with
                   | `Applied _ ->
                       ack ();
                       pump ()
                   | `Dup | `Buffered -> pump ()
                   | `Overflow -> failwith "reorder buffer overflow"))
           | Error e -> failwith e
       in
       pump ()
     with _ -> if running () then Unix.sleepf 0.05)
  done

(* --- domains ------------------------------------------------------------- *)

let rec worker_loop t loop () =
  match Bqueue.pop t.queue with
  | None -> ()
  | Some b ->
      exec_batch t loop b;
      worker_loop t loop ()

let take_census t =
  let c = Verlib.Chainscan.census_of_iter (Mount.iter_vptrs t.mount) in
  Atomic.set t.latest_census (Some c);
  Atomic.incr t.census_samples;
  if c.Verlib.Chainscan.c_violation_count > 0 then begin
    ignore
      (Atomic.fetch_and_add t.census_violations c.Verlib.Chainscan.c_violation_count);
    (* A chain-invariant violation is exactly the incident the flight
       recorder exists for: dump with the offending census attached. *)
    flight_record t ~trigger:Harness.Flight.Census_violation ~census:c ()
  end;
  c

let census_loop t () =
  while not (Atomic.get t.stop_flag) do
    let deadline = Unix.gettimeofday () +. t.cfg.census_interval in
    while (not (Atomic.get t.stop_flag)) && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.01
    done;
    if not (Atomic.get t.stop_flag) then ignore (take_census t)
  done

(* SLO sweep: any request phase whose p99 (µs) exceeds the configured
   budget files a flight report naming the offending phase.  The
   recorder's cooldown keeps a persistently slow phase from spamming. *)
let slo_check t =
  if t.cfg.slo_p99_us > 0. then
    List.iter
      (fun p ->
        let s = Flock.Telemetry.Hist.summary (Span.phase_hist p) in
        if
          s.Flock.Telemetry.Hist.s_count > 0
          && Verlib.Hwclock.to_us s.Flock.Telemetry.Hist.s_p99
             > t.cfg.slo_p99_us
        then
          flight_record t
            ~trigger:(Harness.Flight.Slo_breach (Span.phase_name p))
            ())
      Span.phases

(* The metrics plane's background cadence: a fresh census (so STATS and
   shedding see current chain health even with the dedicated census
   domain off) plus the SLO sweep, every [metrics_interval] seconds. *)
let metrics_loop t () =
  while not (Atomic.get t.stop_flag) do
    let deadline = Unix.gettimeofday () +. t.cfg.metrics_interval in
    while (not (Atomic.get t.stop_flag)) && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.01
    done;
    if not (Atomic.get t.stop_flag) then begin
      ignore (take_census t);
      slo_check t
    end
  done

(* --- event-loop handlers -------------------------------------------------- *)

let busy_bytes t =
  let b = Buffer.create 32 in
  Protocol.render_reply b (Protocol.Busy t.cfg.retry_after_ms);
  Buffer.contents b

let handlers t : session Evloop.handlers =
  {
    Evloop.h_accept =
      (fun _fd ->
        Atomic.incr t.conns_total;
        if t.cfg.max_conns > 0 && Atomic.get t.conns_active >= t.cfg.max_conns
        then begin
          (* Connection cap: answer [-BUSY] at the door and close.  The
             refusal rides the normal nonblocking flush machinery — the
             loop never blocks on a slow victim. *)
          count_shed t;
          `Reject (new_session ~admitted:false (), busy_bytes t)
        end
        else begin
          Atomic.incr t.conns_active;
          `Admit (new_session ~admitted:true ())
        end);
    h_dispatch =
      (fun conn lines ~mark ->
        let b_push = Verlib.Hwclock.now () in
        Bqueue.try_push t.queue
          { b_conn = conn; b_lines = lines; b_mark = mark; b_push });
    h_overflow =
      (fun _sess ->
        Atomic.incr t.errors_total;
        let b = Buffer.create 32 in
        Protocol.render_reply b (Protocol.Err "line too long");
        Buffer.contents b);
    h_kill =
      (fun _reason ->
        Atomic.incr t.deadline_kills;
        Atomic.incr deadline_kills_a;
        flight_record t ~trigger:Harness.Flight.Deadline_kill ());
    h_close = (fun sess -> if sess.s_admitted then Atomic.decr t.conns_active);
  }

let start t =
  if t.started then invalid_arg "Server.start: already started";
  (* A peer that resets mid-reply must cost an EPIPE exception on the
     writing domain, never a process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, t.cfg.port));
  Unix.listen lsock t.cfg.backlog;
  (match Unix.getsockname lsock with
   | Unix.ADDR_INET (_, p) -> t.bound_port <- p
   | _ -> ());
  t.lsock <- Some lsock;
  t.started <- true;
  t.started_at <- Unix.gettimeofday ();
  let loop =
    Evloop.create ~lsock ~handlers:(handlers t) ~stop_flag:t.stop_flag
      ~idle_timeout:t.cfg.idle_timeout ~write_timeout:t.cfg.write_timeout
      ~max_line ~fp_read ~fp_write ()
  in
  t.loop <- Some loop;
  if t.cfg.census_interval > 0. then begin
    t.census_reg <-
      Some
        (Verlib.Chainscan.register
           ~name:("serve:" ^ Mount.name t.mount)
           (Mount.iter_vptrs t.mount));
    t.census_d <- Some (Domain.spawn (census_loop t))
  end;
  if t.cfg.metrics_interval > 0. then
    t.metrics_d <- Some (Domain.spawn (metrics_loop t));
  if t.cfg.profile_hz > 0 then
    Verlib.Obs.Profile.start ~hz:t.cfg.profile_hz ();
  t.worker_ds <-
    List.init (max 1 t.cfg.domains) (fun _ -> Domain.spawn (worker_loop t loop));
  (match t.cfg.replica_of with
   | Some (host, port) ->
       t.replica_d <- Some (Domain.spawn (replica_loop t host port))
   | None -> ());
  t.net_d <- Some (Domain.spawn (fun () -> Evloop.run loop))

let stop t =
  if t.started && not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop_flag true;
    (* The net domain drains on its way out: every complete line already
       read is dispatched and answered, outbufs flush, fds close.  The
       workers must still be alive for that, so they join after. *)
    Option.iter Evloop.wake t.loop;
    Option.iter Domain.join t.net_d;
    t.net_d <- None;
    (match t.lsock with
     | Some fd ->
         (try Unix.close fd with _ -> ());
         t.lsock <- None
     | None -> ());
    Bqueue.close t.queue;
    List.iter Domain.join t.worker_ds;
    t.worker_ds <- [];
    Option.iter Domain.join t.replica_d;
    t.replica_d <- None;
    Option.iter Domain.join t.census_d;
    t.census_d <- None;
    Option.iter Domain.join t.metrics_d;
    t.metrics_d <- None;
    (* Stop the sampler after the workers are joined so the final ticks
       still see their activity; stacks stay accumulated for export. *)
    if t.cfg.profile_hz > 0 then Verlib.Obs.Profile.stop ();
    (* Quiescent final census: workers are joined, so the audit is
       exact. *)
    if t.cfg.census_interval > 0. || t.cfg.metrics_interval > 0. then begin
      let c = take_census t in
      Atomic.set t.final_census (Some c)
    end;
    Option.iter Verlib.Chainscan.unregister t.census_reg;
    t.census_reg <- None
  end

let final_census t = Atomic.get t.final_census

let census_violations_total t = Atomic.get t.census_violations

let shed_count t = Atomic.get t.shed

let deadline_kill_count t = Atomic.get t.deadline_kills

let queue_dwell_us t = Atomic.get t.queue_dwell_us
