(** verlib-serve — an event-loop multi-domain TCP front end over the
    versioned maps (docs/ASYNC.md).

    Architecture: one net domain runs a poll(2)-backed readiness loop
    ({!Evloop} over {!Evpoll} — no [select], no FD_SETSIZE ceiling)
    holding {e every} connection: it accepts from a nonblocking
    listener, reads ready sockets, reassembles complete command lines,
    and hands each read chunk's lines to the [domains] worker domains
    as one batch through a bounded {!Bqueue}.  Workers parse, execute
    and render; the coalesced reply bytes come back to the loop, which
    flushes them nonblockingly — all replies for the commands found in
    one read are written together, so pipelined clients get batched
    responses, and concurrent connections are bounded by [ulimit -n],
    not by the domain count.  While a batch is in flight the
    connection's read interest is off (structural pipelining
    backpressure); a full worker queue parks the batch on its
    connection rather than ever blocking the loop.  An optional census
    domain walks the mounted structure's versioned pointers every
    [census_interval] seconds ([Verlib.Chainscan]), keeping the latest
    census for [STATS] and accumulating the invariant-violation count.

    {!stop} is a graceful drain: the listener stops accepting, every
    complete line already read is dispatched and answered, outbufs
    flush, all fds close, every domain is joined, and a final
    {e quiescent} census (exact audit) is taken. *)

module Protocol = Protocol
module Bqueue = Bqueue
module Mount = Mount
module Client = Client
module Evpoll = Evpoll
module Evloop = Evloop

type config = {
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  domains : int;  (** worker (execution) domains — {e not} a connection cap *)
  backlog : int;  (** listen(2) backlog *)
  queue_depth : int;  (** loop→worker batch handoff bound *)
  census_interval : float;  (** seconds; 0 disables the census domain *)
  max_conns : int;
      (** connection cap: beyond [max_conns] simultaneously registered
          connections, new arrivals are answered [-BUSY] at accept and
          closed; 0 = unlimited *)
  idle_timeout : float;
      (** seconds a connection may sit with no bytes arriving before the
          loop closes it (a [deadline_kill]); 0 = never *)
  write_timeout : float;
      (** seconds reply bytes may sit unflushed against a peer that
          stopped reading before the connection is killed; 0 = forever *)
  shed_queue : int;
      (** admission control: shed snapshot-heavy commands while the
          loop→worker queue holds at least this many batches
          (and {e all} data commands at twice it); 0 = off *)
  shed_epoch_lag : int;  (** same, against [Flock.Epoch.epoch_lag]; 0 = off *)
  shed_chain_p99 : int;
      (** same, against the p99 version-chain length of the latest
          census (needs [census_interval > 0]); 0 = off *)
  shed_dwell_us : int;
      (** same, against the measured queue dwell (µs) of the last
          executed batch — the {e latency} form of queue pressure:
          under the event loop [-BUSY] is a latency policy, not a
          capacity one; 0 = off *)
  retry_after_ms : int;  (** the hint carried in [-BUSY] replies *)
  metrics_interval : float;
      (** seconds between metrics-plane sweeps (background census + SLO
          check on the request-phase histograms); 0 = off *)
  flight_dir : string;
      (** directory for anomaly flight-recorder dumps
          ([flight-<ms>-<trigger>.json]); "" disables the recorder *)
  flight_min_interval : float;  (** recorder cooldown between dumps *)
  slo_p99_us : float;
      (** flight trigger: any request phase whose p99 exceeds this many
          µs files a dump (checked every [metrics_interval]); 0 = off *)
  profile_hz : int;
      (** sampling rate of the continuous profiler
          ([Verlib.Obs.Profile]): {!start} spawns the sampler domain and
          opens the activity-publication gate, {!stop} joins it after
          the workers; 0 = profiler off (PROFILE still answers, with
          whatever was accumulated by an externally started sampler) *)
  replica_of : (string * int) option;
      (** follow that primary: {!start} spawns an apply domain that
          bootstraps via [SYNC], streams the change feed via a
          full-range [SUBSCRIBE], and installs records in seq order;
          the server answers reads at the replica's watermark and
          refuses writes ([-ERR READONLY ...]) until [PROMOTE].
          [None] = this server is a primary (docs/REPLICATION.md). *)
  feed_capacity : int;
      (** records the replication log ring retains; a subscriber that
          falls further behind is told to resync (the bounded-feed /
          laggard-shedding contract) *)
}

val default_config : config
(** port 7379, 4 domains, backlog 64, queue_depth 64, no census; no
    connection cap, no idle timeout, 5 s write timeout, shedding off,
    retry hint 50 ms; metrics plane, flight recorder and profiler off;
    primary role, 65536-record feed. *)

type t

val create : ?config:config -> Mount.t -> t

val start : t -> unit
(** Bind, listen and spawn the domains.  Raises [Unix.Unix_error] if
    the port cannot be bound. *)

val port : t -> int
(** The bound port (resolves port 0); only valid after {!start}. *)

val running : t -> bool

val stop : t -> unit
(** Graceful drain as described above; idempotent; blocks until all
    domains are joined. *)

val final_census : t -> Verlib.Chainscan.census option
(** The quiescent census {!stop} took (when the census domain was
    enabled); [None] before {!stop}. *)

val census_violations_total : t -> int
(** Cumulative invariant violations over every census taken (background
    samples + final); 0 is the healthy reading. *)

val shed_count : t -> int
(** Commands/connections this instance refused with [-BUSY] (admission
    control + the [max_conns] door).  The process-wide total is the
    [shed_total] gauge in every [Verlib.Obs] report. *)

val deadline_kill_count : t -> int
(** Connections this instance killed for blowing the idle or write
    deadline (process-wide: the [deadline_kills] gauge). *)

val queue_dwell_us : t -> int
(** Queue dwell (µs) of the most recently executed batch: how long it
    sat between the loop's push and a worker's pop — the live latency
    signal behind [shed_dwell_us] (process-wide: the [queue_dwell_us]
    gauge). *)

val flight_dump_count : t -> int
(** Flight-recorder dumps written so far (0 when the recorder is off). *)

val flight_last_path : t -> string option
(** Path of the most recent flight dump. *)

val stats_json : t -> string
(** The [STATS] payload: one jsonlite object — server counters
    (connections, commands, errors, uptime), the [Verlib.Obs] report
    (counters / histograms / gauges), when the census domain is on the
    latest census headline ([Harness.Obs_report.json_of_census]), and
    for [sharded-*] mounts a ["census_shards"] object with one census
    per shard. *)

val metrics_text : t -> string
(** The [METRICS] payload: Prometheus text exposition of every
    counter / histogram / gauge plus the server's own live figures
    ([Harness.Obs_report.prometheus]). *)
