type t =
  | Mount : {
      m : (module Dstruct.Map_intf.MAP with type t = 'a);
      h : 'a;
      store : Txn.Store.t;
          (** transactional facade over [h]; ALL writes (including
              single-key PUT/DEL) route through it so plain traffic
              participates in stripe versioning and transactions
              validate against it *)
    }
      -> t

let mount ?mode ?lock_mode ~n_hint (map : (module Dstruct.Map_intf.MAP)) =
  let module M = (val map) in
  let h = M.create ?mode ?lock_mode ~n_hint () in
  Mount { m = (module M); h; store = Txn.Store.create (module M) h }

let name (Mount { m = (module M); _ }) = M.name

let size (Mount { m = (module M); h; _ }) = M.size h

let range_capability (Mount { m = (module M); _ }) = M.range_capability

let iter_vptrs (Mount { m = (module M); h; _ }) emit = M.iter_vptrs h emit

let shard_views (Mount { m = (module M); h; _ }) = M.shard_views h

let store (Mount { store; _ }) = store

let scan_limit_cap = 1 lsl 20

(* Uncapped snapshot fold — the SYNC bootstrap payload.  Read the feed's
   tail {e before} calling this: any record at or below that tail was
   fully installed before the fold's snapshot, so snapshot + suffix
   replay converges (docs/REPLICATION.md). *)
let dump (Mount { m = (module M); h; _ }) =
  List.rev (M.scan h ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

let unsupported_range name =
  Protocol.Err
    (Printf.sprintf
       "unsupported: RANGE on unordered structure %S; use MGET or SCAN" name)

(* Flat [k; v; k; v; ...] arrays, Redis-style, so the reply grammar
   needs no nesting. *)
let pairs_reply pairs =
  Protocol.Arr (List.concat_map (fun (k, v) -> Protocol.[ Int k; Int v ]) pairs)

let exec (Mount { m = (module M); h; store }) (c : Protocol.command) :
    Protocol.reply =
  (* The whole structure execution books to the request span's [op]
     phase; snapshot dwell and per-shard fan-out nested inside subtract
     from it (exclusive accounting), so [op] ends up meaning "structure
     work that is neither snapshot overhead nor shard dispatch". *)
  Verlib.Obs.Span.in_phase Verlib.Obs.Span.Op @@ fun () ->
  try
    match c with
    | Protocol.Ping -> Protocol.Pong
    (* Data reads go through [Txn]'s serialized wrappers, not the bare
       structure: a transactional install is a sequence of map calls,
       and an unbracketed snapshot could observe its intermediate
       state.  SCAN and SIZE below stay structure-level diagnostics. *)
    | Protocol.Get k -> (
        match Txn.get store k with
        | Some v -> Protocol.Int v
        | None -> Protocol.Nil)
    | Protocol.Put (k, v) ->
        if Txn.put store k v then Protocol.Ok_ else Protocol.Exists
    | Protocol.Del k -> Protocol.Int (if Txn.del store k then 1 else 0)
    | Protocol.Mget ks ->
        Protocol.Arr
          (Array.to_list (Txn.mget store ks)
          |> List.map (function
               | Some v -> Protocol.Int v
               | None -> Protocol.Nil))
    | Protocol.Range (lo, hi) -> (
        match M.range_capability with
        | Dstruct.Map_intf.Unordered -> unsupported_range M.name
        | Dstruct.Map_intf.Ordered_range -> pairs_reply (Txn.range store lo hi))
    | Protocol.Rangecount (lo, hi) -> (
        match M.range_capability with
        | Dstruct.Map_intf.Unordered -> unsupported_range M.name
        | Dstruct.Map_intf.Ordered_range ->
            Protocol.Int (Txn.range_count store lo hi))
    | Protocol.Scan limit ->
        let limit = if limit = 0 then scan_limit_cap else min limit scan_limit_cap in
        (* One snapshot fold; bindings beyond [limit] are walked but not
           returned (the fold has no early exit by design — it must
           visit the snapshot it was given). *)
        let _, pairs =
          M.scan h ~init:(0, []) ~f:(fun (n, acc) k v ->
              if n < limit then (n + 1, (k, v) :: acc) else (n + 1, acc))
        in
        pairs_reply (List.rev pairs)
    | Protocol.Size -> Protocol.Int (M.size h)
    | Protocol.Stats | Protocol.Metrics | Protocol.Profile _ | Protocol.Multi
    | Protocol.Exec _ | Protocol.Discard | Protocol.Quit
    | Protocol.Subscribe _ | Protocol.Watch _ | Protocol.Sync
    | Protocol.Replstats | Protocol.Promote | Protocol.Ack _ ->
        Protocol.Err "connection-level command reached the executor"
  with e -> Protocol.Err ("internal: " ^ Printexc.to_string e)

(* --- transactions -------------------------------------------------------- *)

let op_of_command : Protocol.command -> Txn.op option = function
  | Protocol.Get k -> Some (Txn.Get k)
  | Protocol.Put (k, v) -> Some (Txn.Put (k, v))
  | Protocol.Del k -> Some (Txn.Del k)
  | Protocol.Mget ks -> Some (Txn.Mget ks)
  | Protocol.Range (lo, hi) -> Some (Txn.Range (lo, hi))
  | Protocol.Rangecount (lo, hi) -> Some (Txn.Rangecount (lo, hi))
  | Protocol.Ping | Protocol.Scan _ | Protocol.Size | Protocol.Stats
  | Protocol.Metrics | Protocol.Profile _ | Protocol.Multi | Protocol.Exec _
  | Protocol.Discard | Protocol.Quit | Protocol.Subscribe _ | Protocol.Watch _
  | Protocol.Sync | Protocol.Replstats | Protocol.Promote | Protocol.Ack _ ->
      None

let reply_of_step : Txn.step -> Protocol.reply = function
  | Txn.S_ok -> Protocol.Ok_
  | Txn.S_exists -> Protocol.Exists
  | Txn.S_nil -> Protocol.Nil
  | Txn.S_int n -> Protocol.Int n
  | Txn.S_vals vs ->
      Protocol.Arr
        (List.map
           (function Some v -> Protocol.Int v | None -> Protocol.Nil)
           vs)
  | Txn.S_pairs ps -> pairs_reply ps

let exec_txn (Mount { m = (module M); store; _ }) ~token cs : Protocol.reply =
  Verlib.Obs.Span.in_phase Verlib.Obs.Span.Op @@ fun () ->
  try
    let wants_order =
      List.exists
        (function
          | Protocol.Range _ | Protocol.Rangecount _ -> true | _ -> false)
        cs
    in
    match M.range_capability with
    | Dstruct.Map_intf.Unordered when wants_order -> unsupported_range M.name
    | Dstruct.Map_intf.Unordered | Dstruct.Map_intf.Ordered_range ->
        let ops = List.filter_map op_of_command cs in
        if List.length ops <> List.length cs then
          (* The server only queues transactional commands; this is a
             belt-and-braces guard for direct callers. *)
          Protocol.Err "EXEC: non-transactional command queued"
        else (
          match Txn.exec ~token store ops with
          | Txn.Committed { vs; steps; _ } ->
              Protocol.Arr (Protocol.Int vs :: List.map reply_of_step steps)
          | Txn.Aborted { attempts } -> Protocol.Aborted attempts)
  with e -> Protocol.Err ("internal: " ^ Printexc.to_string e)
