type t =
  | Mount : {
      m : (module Dstruct.Map_intf.MAP with type t = 'a);
      h : 'a;
    }
      -> t

let mount ?mode ?lock_mode ~n_hint (map : (module Dstruct.Map_intf.MAP)) =
  let module M = (val map) in
  let h = M.create ?mode ?lock_mode ~n_hint () in
  Mount { m = (module M); h }

let name (Mount { m = (module M); _ }) = M.name

let size (Mount { m = (module M); h }) = M.size h

let range_capability (Mount { m = (module M); _ }) = M.range_capability

let iter_vptrs (Mount { m = (module M); h }) emit = M.iter_vptrs h emit

let shard_views (Mount { m = (module M); h }) = M.shard_views h

let scan_limit_cap = 1 lsl 20

let unsupported_range name =
  Protocol.Err
    (Printf.sprintf
       "unsupported: RANGE on unordered structure %S; use MGET or SCAN" name)

(* Flat [k; v; k; v; ...] arrays, Redis-style, so the reply grammar
   needs no nesting. *)
let pairs_reply pairs =
  Protocol.Arr (List.concat_map (fun (k, v) -> Protocol.[ Int k; Int v ]) pairs)

let exec (Mount { m = (module M); h }) (c : Protocol.command) : Protocol.reply =
  (* The whole structure execution books to the request span's [op]
     phase; snapshot dwell and per-shard fan-out nested inside subtract
     from it (exclusive accounting), so [op] ends up meaning "structure
     work that is neither snapshot overhead nor shard dispatch". *)
  Verlib.Obs.Span.in_phase Verlib.Obs.Span.Op @@ fun () ->
  try
    match c with
    | Protocol.Ping -> Protocol.Pong
    | Protocol.Get k -> (
        match M.find h k with Some v -> Protocol.Int v | None -> Protocol.Nil)
    | Protocol.Put (k, v) ->
        if M.insert h k v then Protocol.Ok_ else Protocol.Exists
    | Protocol.Del k -> Protocol.Int (if M.delete h k then 1 else 0)
    | Protocol.Mget ks ->
        Protocol.Arr
          (Array.to_list (M.multifind h ks)
          |> List.map (function
               | Some v -> Protocol.Int v
               | None -> Protocol.Nil))
    | Protocol.Range (lo, hi) -> (
        match M.range_capability with
        | Dstruct.Map_intf.Unordered -> unsupported_range M.name
        | Dstruct.Map_intf.Ordered_range -> pairs_reply (M.range h lo hi))
    | Protocol.Rangecount (lo, hi) -> (
        match M.range_capability with
        | Dstruct.Map_intf.Unordered -> unsupported_range M.name
        | Dstruct.Map_intf.Ordered_range -> Protocol.Int (M.range_count h lo hi))
    | Protocol.Scan limit ->
        let limit = if limit = 0 then scan_limit_cap else min limit scan_limit_cap in
        (* One snapshot fold; bindings beyond [limit] are walked but not
           returned (the fold has no early exit by design — it must
           visit the snapshot it was given). *)
        let _, pairs =
          M.scan h ~init:(0, []) ~f:(fun (n, acc) k v ->
              if n < limit then (n + 1, (k, v) :: acc) else (n + 1, acc))
        in
        pairs_reply (List.rev pairs)
    | Protocol.Size -> Protocol.Int (M.size h)
    | Protocol.Stats | Protocol.Metrics | Protocol.Profile _ | Protocol.Quit ->
        Protocol.Err "connection-level command reached the executor"
  with e -> Protocol.Err ("internal: " ^ Printexc.to_string e)
