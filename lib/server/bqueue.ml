type 'a t = {
  depth : int;
  q : 'a Queue.t;
  mutable closed : bool;
  m : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
}

let create depth =
  {
    depth = max 1 depth;
    q = Queue.create ();
    closed = false;
    m = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let push t x =
  with_lock t (fun () ->
      let rec wait () =
        if t.closed then false
        else if Queue.length t.q >= t.depth then begin
          Condition.wait t.not_full t.m;
          wait ()
        end
        else begin
          Queue.push x t.q;
          Condition.signal t.not_empty;
          true
        end
      in
      wait ())

(* Non-blocking push for the event loop: the loop thread must never
   park on a worker queue, so a full queue reports [`Full] and the
   caller keeps the item parked on the connection until a completion
   frees a slot. *)
let try_push t x =
  with_lock t (fun () ->
      if t.closed then `Closed
      else if Queue.length t.q >= t.depth then `Full
      else begin
        Queue.push x t.q;
        Condition.signal t.not_empty;
        `Ok
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        match Queue.take_opt t.q with
        | Some x ->
            Condition.signal t.not_full;
            Some x
        | None ->
            if t.closed then None
            else begin
              Condition.wait t.not_empty t.m;
              wait ()
            end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.not_full;
      Condition.broadcast t.not_empty)

let length t = with_lock t (fun () -> Queue.length t.q)
