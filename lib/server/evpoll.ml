(* Readiness notification over poll(2).

   Every [Unix.select] call site in the tree died here: select's fd_set
   is a fixed FD_SETSIZE-bit bitmap (1024 on glibc), so the moment a
   server holds a thousand connections, any new fd — the listener
   included — lands past the bitmap and select silently misbehaves or
   raises.  poll names its fds explicitly and has no such ceiling.

   Two layers:

   - [Set]: a reusable poll set over parallel int arrays, for the event
     loop proper.  Arrays grow geometrically; the C stub copies the
     live prefix out before releasing the runtime lock (the GC may move
     the arrays while poll sleeps) and writes revents back after.

   - [readable] / [writable]: one-shot single-fd waits that replace the
     scattered [Unix.select [fd] [] [] t] idioms (replica ACK drain,
     dashboard keypress wait, client flush backoff). *)

external poll_stub :
  int array -> int array -> int array -> int -> int -> int
  = "caml_verlib_poll"

(* Portable readiness bits — mirrored in evpoll_stubs.c.  [ev_rdhup]
   (POLLRDHUP) is Linux-only: requesting it elsewhere is a no-op and it
   is never reported, so callers must treat it as an optimisation — an
   early "the peer sent FIN" signal — never the sole close trigger. *)
let ev_in = 1
let ev_out = 2
let ev_err = 4
let ev_hup = 8
let ev_nval = 16
let ev_rdhup = 32

let has mask bit = mask land bit <> 0

(* On Unix, [Unix.file_descr] is the int fd itself; poll wants the raw
   number.  Isolated here so the cast appears exactly once. *)
let int_of_fd : Unix.file_descr -> int = Obj.magic

module Set = struct
  type t = {
    mutable fds : int array;
    mutable interest : int array;
    mutable revents : int array;
    mutable n : int;
  }

  let create ?(capacity = 64) () =
    let capacity = max 1 capacity in
    {
      fds = Array.make capacity (-1);
      interest = Array.make capacity 0;
      revents = Array.make capacity 0;
      n = 0;
    }

  let length t = t.n

  let grow t =
    let cap = Array.length t.fds * 2 in
    let widen a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 t.n;
      a'
    in
    t.fds <- widen t.fds (-1);
    t.interest <- widen t.interest 0;
    t.revents <- widen t.revents 0

  (* Registers [fd] and returns its slot index.  The caller owns slot
     bookkeeping (the event loop stores the slot in the connection and
     re-points it on swap-remove). *)
  let add t fd ~interest =
    if t.n = Array.length t.fds then grow t;
    let slot = t.n in
    t.fds.(slot) <- int_of_fd fd;
    t.interest.(slot) <- interest;
    t.revents.(slot) <- 0;
    t.n <- slot + 1;
    slot

  let set_interest t slot interest = t.interest.(slot) <- interest
  let interest t slot = t.interest.(slot)

  (* Swap-remove: the last live slot moves into [slot]; returns the old
     index of the moved entry ([None] when [slot] was last). *)
  let remove t slot =
    let last = t.n - 1 in
    t.n <- last;
    if slot = last then begin
      t.fds.(last) <- -1;
      None
    end
    else begin
      t.fds.(slot) <- t.fds.(last);
      t.interest.(slot) <- t.interest.(last);
      t.revents.(slot) <- t.revents.(last);
      t.fds.(last) <- -1;
      Some last
    end

  (* Waits up to [timeout_ms] (-1 = forever); readiness masks land in
     [revents] for the caller to scan.  Returns the ready count. *)
  let poll t ~timeout_ms =
    Array.fill t.revents 0 t.n 0;
    poll_stub t.fds t.interest t.revents t.n timeout_ms

  let revents t slot = t.revents.(slot)
end

(* One-shot single-fd waits.  [timeout] in seconds; [None] blocks. *)
let wait_fd fd ~interest ~timeout =
  let timeout_ms =
    match timeout with
    | None -> -1
    | Some s when s <= 0. -> 0
    | Some s -> int_of_float (ceil (s *. 1000.))
  in
  let fds = [| int_of_fd fd |] in
  let revents = [| 0 |] in
  let rc = poll_stub fds [| interest |] revents 1 timeout_ms in
  if rc = 0 then 0 else revents.(0)

let readable ?timeout fd =
  let r = wait_fd fd ~interest:ev_in ~timeout in
  has r (ev_in lor ev_err lor ev_hup lor ev_nval)

let writable ?timeout fd =
  let r = wait_fd fd ~interest:ev_out ~timeout in
  has r (ev_out lor ev_err lor ev_hup lor ev_nval)
