(** Bounded blocking queue — the accept→worker handoff with
    backpressure.  When the queue is full the accepting domain blocks in
    {!push}, which stops it calling [accept]; the kernel listen backlog
    then fills and new clients queue in the TCP layer — closed-loop load
    cannot outrun the workers.

    [close] makes the queue drain-only: {!push} returns [false], {!pop}
    keeps returning queued items and then [None] — the graceful-shutdown
    path. *)

type 'a t

val create : int -> 'a t
(** [create depth]; depth is clamped to at least 1. *)

val push : 'a t -> 'a -> bool
(** Blocks while full.  [false] iff the queue was closed (the item is
    not enqueued). *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Nonblocking {!push} for the event loop, which must never park on a
    worker queue: [`Full] hands backpressure to the caller (the loop
    parks the batch on its connection and retries as completions free
    slots). *)

val pop : 'a t -> 'a option
(** Blocks while empty and open.  [None] iff closed and drained. *)

val close : 'a t -> unit
(** Idempotent; wakes all blocked producers and consumers. *)

val length : 'a t -> int
