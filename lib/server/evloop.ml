(* The poll-backed connection multiplexer (docs/ASYNC.md).

   One net domain owns every registered socket.  Per iteration it:
   polls for readiness; drains worker completions; accepts a burst from
   the nonblocking listener; reads ready connections, reassembling
   '\n'-framed lines ([Protocol.Linebuf]) and handing each chunk's
   complete lines to [h_dispatch] as one batch; flushes pending reply
   bytes nonblockingly; and sweeps idle/write deadlines.  Workers never
   touch a registered fd — they append reply bytes with {!output} and
   report batch completion with {!complete}, which wakes the loop
   through a self-pipe.

   A connection is a state machine:

     reading --dispatch--> busy --complete--> reading
         |                   |      `Close -> closing --flushed--> closed
         |                   `----- `Detach -> detaching --flushed+
         |                                     deregistered--> worker-owned
         `-- EOF/error/deadline --> closing/closed

   Backpressure is structural: while a batch is in flight ([busy]) the
   connection's read interest is off, so a pipelining peer queues in
   the kernel, not in us; a peer that stops reading accumulates outbuf
   until [out_hwm] pauses reads and [write_timeout] kills the
   connection; a full worker queue parks the batch on the connection
   ([parked]) and retries as completions free slots, instead of ever
   blocking the loop. *)

type action = [ `Continue | `Close | `Detach ]

type 'a conn = {
  fd : Unix.file_descr;
  mutable slot : int;  (** poll-set slot; -1 once deregistered *)
  inbuf : Protocol.Linebuf.t;  (** loop-only *)
  m : Mutex.t;  (** guards [out] and the detach handshake *)
  out : Buffer.t;  (** reply bytes not yet written (under [m]) *)
  mutable out_off : int;  (** written prefix of [out]; loop-only *)
  mutable busy : bool;  (** a batch is with a worker; loop-only *)
  mutable parked : (string list * int) option;
      (** batch refused by a full queue, awaiting retry; loop-only *)
  mutable closing : bool;  (** flush what we owe, then close *)
  mutable detaching : bool;  (** flush, deregister, hand fd to worker *)
  mutable detached : bool;  (** handshake flag (under [m]) *)
  mutable dead : bool;  (** loop abandoned the connection *)
  peer_gone : bool Atomic.t;
      (** the peer departed (FIN/RST) while a batch was in flight or
          parked — its not-yet-executed commands must be dropped, not
          run with stale arguments long after the client gave up and
          replayed elsewhere (see {!peer_gone}) *)
  cv : Condition.t;  (** signals [detached] *)
  mutable last_act : float;  (** last byte read (idle deadline) *)
  mutable out_since : float;  (** outbuf first went nonempty; 0 = empty *)
  mutable accept_ticks : int;  (** accept-to-register cost, for spans *)
  data : 'a;  (** the server's session state *)
}

type 'a handlers = {
  h_accept : Unix.file_descr -> [ `Admit of 'a | `Reject of 'a * string ];
      (** admission decision; [`Reject] still registers the connection,
          pre-loaded with refusal bytes and marked closing *)
  h_dispatch : 'a conn -> string list -> mark:int -> [ `Ok | `Full | `Closed ];
      (** hand one chunk's complete lines to the workers *)
  h_overflow : 'a -> string;  (** reply bytes for an over-long line *)
  h_kill : [ `Idle | `Write ] -> unit;  (** deadline-kill accounting *)
  h_close : 'a -> unit;  (** fired once when the loop closes the fd *)
}

type 'a t = {
  lsock : Unix.file_descr;
  handlers : 'a handlers;
  stop_flag : bool Atomic.t;
  idle_timeout : float;
  write_timeout : float;
  max_line : int;
  drain_timeout : float;
  set : Evpoll.Set.t;
  mutable conns : 'a conn option array;  (** index = poll slot *)
  wake_rd : Unix.file_descr;
  wake_wr : Unix.file_descr;
  wake_pending : bool Atomic.t;
  mutable wake_open : bool;  (* loop-side; complete() rechecks under cm *)
  cm : Mutex.t;
  completions : ('a conn * action) Queue.t;
  chunk : Bytes.t;
  fp_read : Fault.Point.t;
  fp_write : Fault.Point.t;
}

(* Poll-set slot 0 is the wake pipe, slot 1 the listener; connections
   occupy slots 2.. and swap-remove among themselves. *)
let wake_slot = 0

let listen_slot = 1

(* Per-iteration accept burst cap: keeps one thundering herd from
   starving reads/flushes of already-admitted connections. *)
let accept_burst = 256

(* Stop reading from a connection whose unflushed replies exceed this;
   reads resume once the peer drains its side. *)
let out_hwm = 1 lsl 20

let create ~lsock ~handlers ~stop_flag ~idle_timeout ~write_timeout ~max_line
    ?(drain_timeout = 5.) ~fp_read ~fp_write () =
  let wake_rd, wake_wr = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_rd;
  Unix.set_nonblock wake_wr;
  Unix.set_nonblock lsock;
  let set = Evpoll.Set.create ~capacity:256 () in
  let s = Evpoll.Set.add set wake_rd ~interest:Evpoll.ev_in in
  assert (s = wake_slot);
  let s = Evpoll.Set.add set lsock ~interest:Evpoll.ev_in in
  assert (s = listen_slot);
  {
    lsock;
    handlers;
    stop_flag;
    idle_timeout;
    write_timeout;
    max_line;
    drain_timeout;
    set;
    conns = Array.make 256 None;
    wake_rd;
    wake_wr;
    wake_pending = Atomic.make false;
    wake_open = true;
    cm = Mutex.create ();
    completions = Queue.create ();
    chunk = Bytes.create 65536;
    fp_read;
    fp_write;
  }

(* --- worker-facing API ---------------------------------------------------- *)

let output conn s =
  Mutex.lock conn.m;
  Buffer.add_string conn.out s;
  Mutex.unlock conn.m

let wake t =
  if not (Atomic.exchange t.wake_pending true) then begin
    (* The pipe may already be closed during teardown; losing the wake
       is fine then — the loop is gone. *)
    Mutex.lock t.cm;
    (try
       if t.wake_open then ignore (Unix.write t.wake_wr (Bytes.make 1 '!') 0 1)
     with Unix.Unix_error _ -> ());
    Mutex.unlock t.cm
  end

let complete t conn action =
  Mutex.lock t.cm;
  Queue.push (conn, action) t.completions;
  Mutex.unlock t.cm;
  wake t

(* Parks the worker until the loop has flushed the connection's pending
   replies and deregistered the fd ([`Ok] — the worker now owns it and
   must eventually close it), or killed the connection ([`Dead] — the
   loop already closed the fd and fired [h_close]; the worker must not
   touch it). *)
let wait_detached conn =
  Mutex.lock conn.m;
  while not conn.detached do
    Condition.wait conn.cv conn.m
  done;
  let dead = conn.dead in
  Mutex.unlock conn.m;
  if dead then `Dead else `Ok

(* Worker-side liveness check, consulted between the commands of a
   batch.  True once the loop has observed the peer's departure
   (POLLRDHUP/POLLERR/POLLHUP while the batch was in flight or parked):
   the reply is undeliverable and the client's retry layer treats the
   connection as ambiguous-and-replayed, so executing the remaining
   commands anyway risks zombie writes — stale-argument mutations
   landing arbitrarily late, e.g. when a chaos stall releases — that
   break the replay-convergence contract (docs/RESILIENCE.md).  The
   command in flight when the peer left still completes (it cannot be
   recalled); everything after it is dropped. *)
let peer_gone conn = Atomic.get conn.peer_gone

(* --- loop internals ------------------------------------------------------- *)

let conn_at t slot = t.conns.(slot)

let store_conn t slot conn =
  if slot >= Array.length t.conns then begin
    let a = Array.make (max (slot + 1) (2 * Array.length t.conns)) None in
    Array.blit t.conns 0 a 0 (Array.length t.conns);
    t.conns <- a
  end;
  t.conns.(slot) <- conn

(* Removes [conn] from the poll set, keeping the conns mirror in sync
   with the set's swap-remove. *)
let deregister t conn =
  let slot = conn.slot in
  if slot >= 0 then begin
    conn.slot <- -1;
    (match Evpoll.Set.remove t.set slot with
     | None -> t.conns.(slot) <- None
     | Some moved ->
         let m = t.conns.(moved) in
         t.conns.(slot) <- m;
         (match m with Some c -> c.slot <- slot | None -> ());
         t.conns.(moved) <- None)
  end

(* The loop kills a connection: close the fd, fire [h_close], and
   release any worker parked in [wait_detached] with [`Dead] (the
   detach handshake is signalled unconditionally — for a connection
   nobody is adopting, the extra flag is inert).  The fd has exactly
   one closer: the loop here, or — after a successful detach — the
   adopting worker. *)
let close_conn t conn =
  if not conn.dead then begin
    deregister t conn;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Mutex.lock conn.m;
    conn.dead <- true;
    conn.detached <- true;
    Condition.broadcast conn.cv;
    Mutex.unlock conn.m;
    t.handlers.h_close conn.data
  end

let finish_detach t conn =
  deregister t conn;
  Mutex.lock conn.m;
  conn.detached <- true;
  Condition.broadcast conn.cv;
  Mutex.unlock conn.m

let set_read_interest t conn on =
  if conn.slot >= 0 then begin
    let i = Evpoll.Set.interest t.set conn.slot in
    let i' = if on then i lor Evpoll.ev_in else i land lnot Evpoll.ev_in in
    Evpoll.Set.set_interest t.set conn.slot i'
  end

let set_write_interest t conn on =
  if conn.slot >= 0 then begin
    let i = Evpoll.Set.interest t.set conn.slot in
    let i' = if on then i lor Evpoll.ev_out else i land lnot Evpoll.ev_out in
    Evpoll.Set.set_interest t.set conn.slot i'
  end

let out_pending conn =
  Mutex.lock conn.m;
  let n = Buffer.length conn.out - conn.out_off in
  Mutex.unlock conn.m;
  n

(* Collect every complete line currently buffered. *)
let take_lines conn =
  let rec go acc =
    match Protocol.Linebuf.next conn.inbuf with
    | Some l -> go (l :: acc)
    | None -> List.rev acc
  in
  go []

(* Hand a batch to the workers, or park it when the queue is full; a
   parked batch retries each iteration (completions free slots). *)
let dispatch t conn lines ~mark =
  if lines <> [] && not conn.dead then begin
    match t.handlers.h_dispatch conn lines ~mark with
    | `Ok ->
        conn.busy <- true;
        set_read_interest t conn false
    | `Full ->
        conn.parked <- Some (lines, mark);
        set_read_interest t conn false
    | `Closed -> conn.closing <- true
  end

let retry_parked t conn =
  match conn.parked with
  | Some (lines, mark) when not conn.busy ->
      conn.parked <- None;
      (* A parked batch whose peer has since departed is dropped whole:
         none of it executed, none of it will. *)
      if Atomic.get conn.peer_gone then conn.closing <- true
      else dispatch t conn lines ~mark
  | _ -> ()

(* Nonblocking flush of up to one 64K slice.  Returns [`Empty] when the
   outbuf fully drained, [`More] when bytes remain (write interest is
   armed), [`Closed] when the flush killed the connection. *)
let rec flush_conn t conn =
  Mutex.lock conn.m;
  let len = Buffer.length conn.out in
  let off = conn.out_off in
  let slice =
    if len > off then Buffer.sub conn.out off (min 65536 (len - off)) else ""
  in
  Mutex.unlock conn.m;
  if slice = "" then begin
    (* Fully written: reclaim the buffer (workers may have appended
       since the length read above — recheck under the lock). *)
    Mutex.lock conn.m;
    if Buffer.length conn.out = conn.out_off then begin
      Buffer.clear conn.out;
      conn.out_off <- 0
    end;
    let more = Buffer.length conn.out > conn.out_off in
    Mutex.unlock conn.m;
    if more then `More
    else begin
      conn.out_since <- 0.;
      if conn.slot >= 0 then set_write_interest t conn false;
      `Empty
    end
  end
  else begin
    if conn.out_since = 0. then conn.out_since <- Unix.gettimeofday ();
    let cap =
      match Fault.io_check t.fp_write with
      | Some (Fault.Short_write n) -> max 1 (min n (String.length slice))
      | Some Fault.Econnreset -> -1
      | Some (Fault.Eagain_burst _) | Some _ | None -> String.length slice
    in
    if cap < 0 then begin
      close_conn t conn;
      `Closed
    end
    else
      match
        Unix.write conn.fd (Bytes.unsafe_of_string slice) 0 cap
      with
      | n ->
          conn.out_off <- conn.out_off + n;
          if n < String.length slice then begin
            set_write_interest t conn true;
            `More
          end
          else flush_conn t conn
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `More
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          set_write_interest t conn true;
          if
            t.write_timeout > 0. && conn.out_since > 0.
            && Unix.gettimeofday () -. conn.out_since > t.write_timeout
          then begin
            (* Peer stopped reading: reclaim the connection. *)
            t.handlers.h_kill `Write;
            close_conn t conn;
            `Closed
          end
          else `More
      | exception Unix.Unix_error _ ->
          close_conn t conn;
          `Closed
  end

(* A connection that owes nothing and has nothing in flight can finish
   its terminal state. *)
let try_finish t conn =
  if (not conn.busy) && conn.parked = None then begin
    if conn.detaching then begin
      match flush_conn t conn with
      | `Empty -> finish_detach t conn
      | `More | `Closed -> ()
    end
    else if conn.closing then
      match flush_conn t conn with
      | `Empty -> close_conn t conn
      | `More | `Closed -> ()
  end

let process_completions t =
  Mutex.lock t.cm;
  let pending = Queue.create () in
  Queue.transfer t.completions pending;
  Mutex.unlock t.cm;
  Queue.iter
    (fun (conn, action) ->
      if not conn.dead then begin
        conn.busy <- false;
        (match action with
         | `Close -> conn.closing <- true
         | `Detach -> conn.detaching <- true
         | `Continue -> ());
        if Atomic.get conn.peer_gone then begin
          conn.parked <- None;
          if not conn.detaching then conn.closing <- true
        end;
        retry_parked t conn;
        (* Lines that arrived in the same chunk as a QUIT (or while the
           batch was parked) are already buffered; dispatch them before
           re-arming reads. *)
        if (not conn.busy) && not (conn.closing || conn.detaching) then begin
          (match take_lines conn with
           | [] -> ()
           | lines -> dispatch t conn lines ~mark:(Verlib.Hwclock.now ()));
          if not conn.busy then set_read_interest t conn true
        end;
        (match flush_conn t conn with
         | `Closed -> ()
         | `Empty | `More -> try_finish t conn)
      end)
    pending

let drain_wake t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_rd b 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
  in
  Atomic.set t.wake_pending false;
  go ()

let register t fd data ~accept_ticks ~closing ~preload =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  Unix.set_nonblock fd;
  let conn =
    {
      fd;
      slot = -1;
      inbuf = Protocol.Linebuf.create ();
      m = Mutex.create ();
      out = Buffer.create 512;
      out_off = 0;
      busy = false;
      parked = None;
      closing;
      detaching = false;
      detached = false;
      dead = false;
      peer_gone = Atomic.make false;
      cv = Condition.create ();
      last_act = Unix.gettimeofday ();
      out_since = 0.;
      accept_ticks;
      data;
    }
  in
  Buffer.add_string conn.out preload;
  (* rdhup is armed for the connection's whole life: read interest
     toggles off while a batch is in flight, and this is exactly when a
     departing peer must still be noticed (see [peer_gone]). *)
  let interest =
    if closing then Evpoll.ev_out else Evpoll.ev_in lor Evpoll.ev_rdhup
  in
  let slot = Evpoll.Set.add t.set fd ~interest in
  conn.slot <- slot;
  store_conn t slot (Some conn);
  (* A rejected connection only owes its refusal bytes; push them now
     and close if the write completes immediately. *)
  if closing then try_finish t conn

let accept_pass t =
  let continue = ref true in
  let budget = ref accept_burst in
  while !continue && !budget > 0 do
    decr budget;
    match Unix.accept ~cloexec:true t.lsock with
    | fd, _ -> (
        let a_ticks = Verlib.Hwclock.now () in
        match t.handlers.h_accept fd with
        | `Admit data ->
            register t fd data
              ~accept_ticks:(max 0 (Verlib.Hwclock.now () - a_ticks))
              ~closing:false ~preload:""
        | `Reject (data, bytes) ->
            register t fd data ~accept_ticks:0 ~closing:true ~preload:bytes)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        (* A connection that died in the backlog is not an accept-loop
           fatality; keep accepting. *)
        ()
    | exception Unix.Unix_error _ ->
        (* EMFILE/ENFILE and friends: back off until the next poll
           round rather than spinning. *)
        continue := false
  done

let read_conn t conn =
  if (not conn.busy) && conn.parked = None && not (conn.closing || conn.detaching)
  then begin
    let cap =
      match Fault.io_check t.fp_read with
      | Some Fault.Econnreset -> -1
      | Some (Fault.Eagain_burst _) -> 0 (* injected spurious wakeup *)
      | Some (Fault.Short_write n) -> max 1 n
      | Some _ | None -> Bytes.length t.chunk
    in
    if cap < 0 then close_conn t conn
    else if cap = 0 then ()
    else
      match Unix.read conn.fd t.chunk 0 cap with
      | 0 ->
          (* EOF.  Anything already read and parseable is still
             answered; the partial tail dies with the peer. *)
          conn.closing <- true;
          (match take_lines conn with
           | [] -> ()
           | lines -> dispatch t conn lines ~mark:(Verlib.Hwclock.now ()));
          try_finish t conn
      | n ->
          conn.last_act <- Unix.gettimeofday ();
          let mark = Verlib.Hwclock.now () in
          Protocol.Linebuf.feed conn.inbuf t.chunk 0 n;
          let lines = take_lines conn in
          if Protocol.Linebuf.pending conn.inbuf > t.max_line then begin
            output conn (t.handlers.h_overflow conn.data);
            conn.closing <- true;
            (* The over-long tail is unparseable; drop buffered lines
               that preceded it?  No — answer them, then refuse. *)
            dispatch t conn lines ~mark;
            try_finish t conn
          end
          else begin
            dispatch t conn lines ~mark;
            ignore (flush_conn t conn)
          end
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> close_conn t conn
  end

let sweep_deadlines t now conn =
  if not conn.dead then begin
    if
      t.idle_timeout > 0. && (not conn.busy) && conn.parked = None
      && (not (conn.closing || conn.detaching))
      && out_pending conn = 0
      && now -. conn.last_act > t.idle_timeout
    then begin
      (* The client connected and went silent. *)
      t.handlers.h_kill `Idle;
      close_conn t conn
    end
    else if
      t.write_timeout > 0. && conn.out_since > 0.
      && now -. conn.out_since > t.write_timeout
    then begin
      t.handlers.h_kill `Write;
      close_conn t conn
    end
  end

let live_conns t =
  let n = ref 0 in
  for i = 2 to Evpoll.Set.length t.set - 1 do
    match t.conns.(i) with Some _ -> incr n | None -> ()
  done;
  !n

(* Graceful drain: stop accepting; answer every complete line already
   read; flush what we owe; close everything.  Connections stuck on a
   dead worker queue or an unreadable peer are force-closed at the
   drain deadline, and workers parked in [wait_detached] are released
   with [`Dead]. *)
let drain t =
  let deadline = Unix.gettimeofday () +. t.drain_timeout in
  Evpoll.Set.set_interest t.set listen_slot 0;
  (* Final batches: everything readable was read before stop; dispatch
     whatever complete lines remain. *)
  for i = Evpoll.Set.length t.set - 1 downto 2 do
    match t.conns.(i) with
    | None -> ()
    | Some conn ->
        if (not conn.busy) && conn.parked = None then begin
          (match take_lines conn with
           | [] -> ()
           | lines -> dispatch t conn lines ~mark:(Verlib.Hwclock.now ()));
          if not (conn.busy || conn.closing || conn.detaching) then
            conn.closing <- true;
          try_finish t conn
        end
  done;
  while live_conns t > 0 && Unix.gettimeofday () < deadline do
    ignore (Evpoll.Set.poll t.set ~timeout_ms:20);
    if Evpoll.has (Evpoll.Set.revents t.set wake_slot) Evpoll.ev_in then
      drain_wake t;
    process_completions t;
    for i = Evpoll.Set.length t.set - 1 downto 2 do
      match t.conns.(i) with
      | None -> ()
      | Some conn ->
          retry_parked t conn;
          if (not conn.busy) && not (conn.closing || conn.detaching) then begin
            (match take_lines conn with
             | [] -> ()
             | lines -> dispatch t conn lines ~mark:(Verlib.Hwclock.now ()));
            if not (conn.busy || conn.detaching) then conn.closing <- true
          end;
          try_finish t conn
    done
  done;
  (* Force-close survivors.  [close_conn] also releases any worker
     parked in [wait_detached] with [`Dead], and late completions from
     still-running workers find [conn.dead] and do nothing. *)
  for i = Evpoll.Set.length t.set - 1 downto 2 do
    match t.conns.(i) with
    | None -> ()
    | Some conn -> close_conn t conn
  done;
  Mutex.lock t.cm;
  t.wake_open <- false;
  Mutex.unlock t.cm;
  (try Unix.close t.wake_rd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_wr with Unix.Unix_error _ -> ())

let run t =
  while not (Atomic.get t.stop_flag) do
    ignore (Evpoll.Set.poll t.set ~timeout_ms:200);
    if Evpoll.has (Evpoll.Set.revents t.set wake_slot) Evpoll.ev_in then
      drain_wake t;
    process_completions t;
    if Evpoll.has (Evpoll.Set.revents t.set listen_slot) Evpoll.ev_in then
      accept_pass t;
    let now = Unix.gettimeofday () in
    (* Downward scan: a swap-remove pulls an already-visited entry into
       the hole, so removal during iteration never skips a live conn. *)
    for i = Evpoll.Set.length t.set - 1 downto 2 do
      match t.conns.(i) with
      | None -> ()
      | Some conn ->
          if conn.slot >= 0 && not conn.dead then begin
            let r = Evpoll.Set.revents t.set conn.slot in
            if Evpoll.has r Evpoll.ev_nval then close_conn t conn
            else begin
              (* The peer left while its batch was in flight or parked
                 (read interest is off then, so this FIN/RST would
                 otherwise stay invisible until completion): flag it so
                 the worker stops before the not-yet-executed commands
                 and the parked batch is dropped.  A [closing]
                 connection is exempt — its final (EOF-dispatched)
                 lines are still answered politely. *)
              if
                Evpoll.has r
                  (Evpoll.ev_rdhup lor Evpoll.ev_err lor Evpoll.ev_hup)
                && (conn.busy || conn.parked <> None)
                && not conn.closing
              then Atomic.set conn.peer_gone true;
              if
                Evpoll.has r Evpoll.ev_in
                && out_pending conn < out_hwm
              then read_conn t conn;
              if
                (not conn.dead)
                && (Evpoll.has r Evpoll.ev_out || out_pending conn > 0)
              then ignore (flush_conn t conn);
              if (not conn.dead) && Evpoll.has r (Evpoll.ev_err lor Evpoll.ev_hup)
              then begin
                (* Half-closed peers still get their replies; a HUP with
                   nothing owed and nothing in flight is just a close. *)
                if
                  (not conn.busy) && conn.parked = None
                  && out_pending conn = 0
                  && Protocol.Linebuf.pending conn.inbuf = 0
                  && not (conn.closing || conn.detaching)
                then close_conn t conn
              end;
              if not conn.dead then begin
                retry_parked t conn;
                try_finish t conn;
                if not conn.dead then sweep_deadlines t now conn
              end
            end
          end
    done
  done;
  drain t
