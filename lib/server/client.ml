(* Wire-layer fault points (docs/RESILIENCE.md).  [io_check] returns the
   I/O actions for interpretation against the live socket; injected
   resets surface as the same [Unix.Unix_error] a real peer reset
   produces, so the retry layer cannot tell them apart — which is the
   point. *)
let fp_read = Fault.Point.make "client.read"

let fp_write = Fault.Point.make "client.write"

(* Process-wide retry accounting, exported as gauges so every
   [Verlib.Obs] report carries them next to [shed_total] /
   [faults_fired]. *)
let retry_total_a = Atomic.make 0

let reconnect_total_a = Atomic.make 0

let failover_total_a = Atomic.make 0

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "retry_total" (fun () -> Atomic.get retry_total_a)

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "reconnect_total" (fun () ->
      Atomic.get reconnect_total_a)

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "failover_total" (fun () ->
      Atomic.get failover_total_a)

let retry_total () = Atomic.get retry_total_a

let reconnect_total () = Atomic.get reconnect_total_a

let failover_total () = Atomic.get failover_total_a

type t = {
  fd : Unix.file_descr;
  reader : Protocol.Reader.t;
  out : Buffer.t;
}

(* EINTR-immune read for the reply reader.  Anything else —
   EOF, a real or injected reset, or EAGAIN from an expired
   SO_RCVTIMEO — propagates into [Protocol.Reader.refill], which maps
   any exception to a framing error ("connection closed mid-reply"):
   exactly the ambiguous-failure shape the retry layer handles. *)
let read_fd fd b p l =
  (match Fault.io_check fp_read with
   | Some Fault.Econnreset ->
       raise (Unix.Unix_error (Unix.ECONNRESET, "read", "fault"))
   | Some _ | None -> ());
  let rec go () =
    match Unix.read fd b p l with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let connect ?(host = "127.0.0.1") ?(retries = 0) ?read_timeout ~port () =
  (* Mirror the server: a reset peer must cost an exception, never a
     process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let rec dial attempt =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENETUNREACH), _, _)
      when attempt < retries ->
        (try Unix.close fd with _ -> ());
        Unix.sleepf 0.1;
        dial (attempt + 1)
    | exception e ->
        (try Unix.close fd with _ -> ());
        raise e
  in
  let fd = dial 0 in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  (match read_timeout with
   | Some s when s > 0. ->
       (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s with _ -> ())
   | Some _ | None -> ());
  { fd; reader = Protocol.Reader.create (read_fd fd); out = Buffer.create 4096 }

let close t = try Unix.close t.fd with _ -> ()

(* Push the whole out-buffer, surviving EINTR and partial writes.
   Injected [Short_write] caps one syscall; injected [Econnreset] (and
   real EPIPE/ECONNRESET) raise to the caller. *)
let flush t =
  let s = Buffer.contents t.out in
  Buffer.clear t.out;
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let cap =
        match Fault.io_check fp_write with
        | Some (Fault.Short_write n) -> max 1 (min n (len - off))
        | Some Fault.Econnreset ->
            raise (Unix.Unix_error (Unix.ECONNRESET, "write", "fault"))
        | Some (Fault.Eagain_burst _) | Some _ | None -> len - off
      in
      match Unix.write t.fd b off cap with
      | n -> go (off + n)
      | exception
          Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
          go off
    end
  in
  go 0

let send_raw t s =
  Buffer.add_string t.out s;
  flush t

let read_reply t = Protocol.Reader.reply t.reader

let request t c =
  Protocol.render_command t.out c;
  flush t;
  read_reply t

(* One traced command: the [TRACE <id>] prefix asks the server for an
   [@]-framed phase decomposition ahead of the data reply; the reader
   parses and stashes it, and we hand it back next to the reply.  A
   [None] trace against an old server (which echoes the unknown verb as
   an error) or a shed connection is not a transport failure — callers
   treat it as "this request was not decomposed". *)
let request_traced t ~trace_id c =
  Protocol.render_command ~trace_id t.out c;
  flush t;
  let r = read_reply t in
  (r, Protocol.Reader.last_trace t.reader)

let pipeline t cs =
  List.iter (Protocol.render_command t.out) cs;
  flush t;
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | _ :: rest -> (
        match read_reply t with
        | Ok r -> go (r :: acc) rest
        | Error e -> Error e)
  in
  go [] cs

(* --- retrying transport --------------------------------------------------- *)

type rt = {
  rt_eps : (string * int) array;  (* endpoint ring; index 0 is preferred *)
  mutable rt_ep : int;
  rt_read_timeout : float;
  rt_max_attempts : int;
  rt_retry_busy : bool;
  rt_rng : Workload.Splitmix.t;
  mutable rt_conn : t option;
  mutable rt_dialed : bool;  (* first dial is not a "reconnect" *)
  mutable rt_retries : int;
  mutable rt_busy : int;
}

let connect_rt ?(host = "127.0.0.1") ?(read_timeout = 2.) ?(max_attempts = 10)
    ?(retry_busy = true) ?(seed = 1) ?(endpoints = []) ~port () =
  {
    rt_eps = Array.of_list ((host, port) :: endpoints);
    rt_ep = 0;
    rt_read_timeout = read_timeout;
    rt_max_attempts = max max_attempts 1;
    rt_retry_busy = retry_busy;
    rt_rng = Workload.Splitmix.create (seed lxor 0x7e57c0de);
    rt_conn = None;
    rt_dialed = false;
    rt_retries = 0;
    rt_busy = 0;
  }

let rt_stats rt = (rt.rt_retries, rt.rt_busy)

let rt_drop rt =
  match rt.rt_conn with
  | Some c ->
      close c;
      rt.rt_conn <- None
  | None -> ()

let rt_close = rt_drop

(* Rotate to the next endpoint in the ring (no-op with a single one).
   Called on transport failure and on [-ERR READONLY]: a demoted or
   stale endpoint stops receiving this client's traffic until the ring
   wraps back to it. *)
let rt_rotate rt =
  if Array.length rt.rt_eps > 1 then begin
    rt_drop rt;
    rt.rt_ep <- (rt.rt_ep + 1) mod Array.length rt.rt_eps;
    Atomic.incr failover_total_a
  end

let ensure rt =
  match rt.rt_conn with
  | Some c -> c
  | None ->
      let host, port = rt.rt_eps.(rt.rt_ep) in
      (* With failover candidates, give up on a dead endpoint quickly
         and let the retry ladder rotate; alone, keep knocking. *)
      let retries = if Array.length rt.rt_eps > 1 then 3 else 50 in
      let c = connect ~host ~retries ~read_timeout:rt.rt_read_timeout ~port () in
      if rt.rt_dialed then Atomic.incr reconnect_total_a;
      rt.rt_dialed <- true;
      rt.rt_conn <- Some c;
      c

let is_readonly msg =
  String.length msg >= 8 && String.sub msg 0 8 = "READONLY"

(* Full jitter on a doubling base, capped at ~128 ms — the
   [Flock.Backoff] shape, in wall-clock seconds. *)
let backoff rt attempt =
  let base = 0.001 *. Float.of_int (1 lsl min attempt 7) in
  Unix.sleepf (base *. (0.5 +. Workload.Splitmix.float rt.rt_rng))

let busy_wait rt ms =
  let s = Float.of_int (max ms 1) /. 1000. in
  Unix.sleepf (s *. (0.5 +. Workload.Splitmix.float rt.rt_rng))

let count_retry rt =
  rt.rt_retries <- rt.rt_retries + 1;
  Atomic.incr retry_total_a

(* One command with transparent recovery.  Ambiguous transport failures
   (reset, EOF mid-reply, read timeout) are retried only for
   [Protocol.idempotent] commands — the reply may have been lost after
   execution.  [-BUSY] is shed {e before} execution, so it is retried
   (after the server's hinted delay, jittered) regardless of
   idempotency, as long as [retry_busy] is set. *)
let rt_request rt c =
  let retryable = Protocol.idempotent c in
  let rec go attempt =
    let fail_retry e =
      rt_drop rt;
      if retryable && attempt + 1 < rt.rt_max_attempts then begin
        rt_rotate rt;
        count_retry rt;
        backoff rt attempt;
        go (attempt + 1)
      end
      else Error e
    in
    match request (ensure rt) c with
    | Ok (Protocol.Busy ms) ->
        rt.rt_busy <- rt.rt_busy + 1;
        if rt.rt_retry_busy && attempt + 1 < rt.rt_max_attempts then begin
          count_retry rt;
          busy_wait rt ms;
          go (attempt + 1)
        end
        else Ok (Protocol.Busy ms)
    | Ok (Protocol.Err msg)
      when is_readonly msg
           && Array.length rt.rt_eps > 1
           && attempt + 1 < rt.rt_max_attempts ->
        (* A replica refused the write before executing anything:
           always safe to re-issue against the next endpoint. *)
        rt_rotate rt;
        count_retry rt;
        backoff rt attempt;
        go (attempt + 1)
    | Ok r -> Ok r
    | Error e -> fail_retry e
    | exception Unix.Unix_error (err, _, _) ->
        fail_retry (Unix.error_message err)
  in
  go 0

(* Traced variant of {!rt_request}: same recovery ladder, but the trace
   frame of the {e successful} attempt rides along.  A retried attempt
   discards the earlier frame with the earlier reply — the pair the
   caller sees always describes one server-side execution. *)
let rt_request_traced rt ~trace_id c =
  let retryable = Protocol.idempotent c in
  let rec go attempt =
    let fail_retry e =
      rt_drop rt;
      if retryable && attempt + 1 < rt.rt_max_attempts then begin
        rt_rotate rt;
        count_retry rt;
        backoff rt attempt;
        go (attempt + 1)
      end
      else (Error e, None)
    in
    match request_traced (ensure rt) ~trace_id c with
    | Ok (Protocol.Busy ms), tr ->
        rt.rt_busy <- rt.rt_busy + 1;
        if rt.rt_retry_busy && attempt + 1 < rt.rt_max_attempts then begin
          count_retry rt;
          busy_wait rt ms;
          go (attempt + 1)
        end
        else (Ok (Protocol.Busy ms), tr)
    | Ok (Protocol.Err msg), _
      when is_readonly msg
           && Array.length rt.rt_eps > 1
           && attempt + 1 < rt.rt_max_attempts ->
        rt_rotate rt;
        count_retry rt;
        backoff rt attempt;
        go (attempt + 1)
    | (Ok _, _) as r -> r
    | (Error e, _) -> fail_retry e
    | exception Unix.Unix_error (err, _, _) ->
        fail_retry (Unix.error_message err)
  in
  go 0

(* Pipelined batch with recovery.  The whole batch is re-sent on a
   transport failure only when {e every} command is idempotent (replies
   are only handed back once all have arrived, so a retry can't
   double-report).  [-BUSY] entries in a successful batch are re-issued
   individually through {!rt_request}. *)
let rt_pipeline rt cs =
  let retryable = List.for_all Protocol.idempotent cs in
  let fix_busy rs =
    let rec go acc cs rs =
      match (cs, rs) with
      | [], [] -> Ok (List.rev acc)
      | c :: cs', Protocol.Busy ms :: rs' when rt.rt_retry_busy -> (
          rt.rt_busy <- rt.rt_busy + 1;
          count_retry rt;
          busy_wait rt ms;
          match rt_request rt c with
          | Ok r -> go (r :: acc) cs' rs'
          | Error e -> Error e)
      | _ :: cs', r :: rs' -> go (r :: acc) cs' rs'
      | _ -> Error "pipeline reply arity mismatch"
    in
    go [] cs rs
  in
  let rec attempt_loop attempt =
    let fail_retry e =
      rt_drop rt;
      if retryable && attempt + 1 < rt.rt_max_attempts then begin
        rt_rotate rt;
        count_retry rt;
        backoff rt attempt;
        attempt_loop (attempt + 1)
      end
      else Error e
    in
    match pipeline (ensure rt) cs with
    | Ok rs -> fix_busy rs
    | Error e -> fail_retry e
    | exception Unix.Unix_error (err, _, _) ->
        fail_retry (Unix.error_message err)
  in
  attempt_loop 0

(* --- transactions --------------------------------------------------------- *)

(* One server-side transaction: [MULTI; <ops>; EXEC <token>] pipelined,
   with abort-aware retry.  The token (fresh per logical transaction,
   reused across every retry of it) makes the commit exactly-once: any
   ambiguous wire failure — reply lost after the server committed —
   resolves on retry to the cached result instead of a second commit,
   so the caller needs no settling/read-back pass.  Validation aborts
   ([-ABORT]) and shed commits ([-BUSY] on EXEC, which keeps the queued
   transaction server-side) retry with jittered backoff.  An [EXEC
   without MULTI] error means a reconnect dropped the queue between
   queueing and committing; the whole sequence is simply re-sent. *)
let rt_txn rt ?token cs =
  let token =
    match token with
    | Some tk when tk > 0 -> tk
    | Some _ | None -> 1 + Workload.Splitmix.below rt.rt_rng (max_int - 1)
  in
  let seq = (Protocol.Multi :: cs) @ [ Protocol.Exec token ] in
  let max_attempts = max rt.rt_max_attempts 16 in
  let rec go attempt =
    let retry e =
      if attempt + 1 < max_attempts then begin
        count_retry rt;
        backoff rt attempt;
        go (attempt + 1)
      end
      else Error e
    in
    match rt_pipeline rt seq with
    | Error e -> Error e
    | Ok rs -> (
        match List.rev rs with
        | [] -> Error "transaction: empty pipeline reply"
        | last :: _ -> (
            match last with
            | Protocol.Arr (Protocol.Int vs :: steps) -> Ok (vs, steps)
            | Protocol.Aborted n ->
                retry
                  (Printf.sprintf
                     "transaction aborted after %d validation attempts" n)
            | Protocol.Busy _ -> retry "transaction: EXEC shed"
            | Protocol.Err msg
              when String.length msg >= 4 && String.sub msg 0 4 = "EXEC" ->
                (* "EXEC without MULTI": a reconnect inside the pipeline
                   lost the queued transaction — re-send it whole. *)
                retry msg
            | Protocol.Err msg
              when is_readonly msg && Array.length rt.rt_eps > 1 ->
                (* A replica refused the commit (nothing executed):
                   re-send the whole transaction to the next endpoint. *)
                rt_rotate rt;
                retry msg
            | Protocol.Err msg -> Error msg
            | r -> Error ("transaction: unexpected EXEC reply " ^ Protocol.pp_reply r)))
  in
  go 0
