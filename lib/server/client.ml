type t = {
  fd : Unix.file_descr;
  reader : Protocol.Reader.t;
  out : Buffer.t;
}

let connect ?(host = "127.0.0.1") ?(retries = 0) ~port () =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let rec dial attempt =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENETUNREACH), _, _)
      when attempt < retries ->
        (try Unix.close fd with _ -> ());
        Unix.sleepf 0.1;
        dial (attempt + 1)
    | exception e ->
        (try Unix.close fd with _ -> ());
        raise e
  in
  let fd = dial 0 in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  {
    fd;
    reader = Protocol.Reader.create (fun b p l -> Unix.read fd b p l);
    out = Buffer.create 4096;
  }

let close t = try Unix.close t.fd with _ -> ()

let flush t =
  let s = Buffer.contents t.out in
  Buffer.clear t.out;
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write t.fd b off (len - off))
  in
  go 0

let send_raw t s =
  Buffer.add_string t.out s;
  flush t

let read_reply t = Protocol.Reader.reply t.reader

let request t c =
  Protocol.render_command t.out c;
  flush t;
  read_reply t

let pipeline t cs =
  List.iter (Protocol.render_command t.out) cs;
  flush t;
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | _ :: rest -> (
        match read_reply t with
        | Ok r -> go (r :: acc) rest
        | Error e -> Error e)
  in
  go [] cs
