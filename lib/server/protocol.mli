(** The verlib-serve wire protocol: a small RESP-like pipelined text
    protocol over TCP.

    Commands are single CRLF- (or LF-) terminated lines of
    space-separated tokens; replies use the RESP framing conventions
    ([+simple], [-ERR msg], [:int], [$len bulk / $-1 nil], [*n array]).
    Clients may pipeline: send any number of command lines before
    reading; the server answers strictly in order.

    The parser is {e total}: any byte sequence yields [Ok] or [Error],
    never an exception, so a garbage line costs one [-ERR] reply and the
    connection stays usable.  See docs/PROTOCOL.md for the normative
    description. *)

type command =
  | Ping
  | Get of int
  | Put of int * int
  | Del of int
  | Mget of int array  (** snapshot-consistent batch of finds *)
  | Range of int * int  (** inclusive bounds; ordered structures only *)
  | Rangecount of int * int
  | Scan of int
      (** snapshot fold over all bindings, unspecified order; the
          argument caps returned bindings (0 = unbounded) *)
  | Size
  | Stats  (** jsonlite observability report as a bulk reply *)
  | Quit

type reply =
  | Ok_  (** [+OK] *)
  | Pong  (** [+PONG] *)
  | Exists  (** [+EXISTS] — PUT of an already-present key (no update) *)
  | Err of string  (** [-ERR msg] *)
  | Busy of int
      (** [-BUSY retry-after-ms] — load shed; the command was {e not}
          executed, so retrying (after the hinted delay) is always safe *)
  | Int of int  (** [:n] *)
  | Nil  (** [$-1] — absent key *)
  | Bulk of string  (** [$len] payload *)
  | Arr of reply list  (** [*n] then n elements *)

val idempotent : command -> bool
(** Safe to re-issue after an ambiguous wire failure (the retry layer's
    criterion).  True for everything except [Quit]; [Put]/[Del] qualify
    by effect idempotence — see docs/RESILIENCE.md for the caveat. *)

val snapshot_heavy : command -> bool
(** Takes a snapshot and walks many versioned pointers ([Mget], [Range],
    [Rangecount], [Scan]) — the class an overloaded server sheds first. *)

val parse_command : string -> (command, string) result
(** Parse one line (without the trailing newline; a trailing ['\r'] is
    tolerated).  Total: never raises. *)

val render_command : Buffer.t -> command -> unit
(** Append the canonical wire form of a command, CRLF-terminated. *)

val command_line : command -> string
(** [render_command] into a fresh string. *)

val render_reply : Buffer.t -> reply -> unit
(** Append the wire form of a reply (error messages are sanitised so
    they cannot break framing). *)

val reply_equal : reply -> reply -> bool

val pp_reply : reply -> string
(** Debug rendering (not the wire form). *)

(** Incremental reply reader over any byte source — the client half of
    the protocol, also used to fuzz reply framing round-trips. *)
module Reader : sig
  type t

  val create : (bytes -> int -> int -> int) -> t
  (** [create read] where [read buf pos len] returns the number of bytes
      filled, 0 on EOF (the [Unix.read] contract). *)

  val of_string : string -> t

  val reply : t -> (reply, string) result
  (** Read exactly one reply; [Error] on EOF mid-reply or framing
      violations.  Never raises on malformed input. *)
end
