(** The verlib-serve wire protocol: a small RESP-like pipelined text
    protocol over TCP.

    Commands are single CRLF- (or LF-) terminated lines of
    space-separated tokens; replies use the RESP framing conventions
    ([+simple], [-ERR msg], [:int], [$len bulk / $-1 nil], [*n array]).
    Clients may pipeline: send any number of command lines before
    reading; the server answers strictly in order.

    The parser is {e total}: any byte sequence yields [Ok] or [Error],
    never an exception, so a garbage line costs one [-ERR] reply and the
    connection stays usable.  See docs/PROTOCOL.md for the normative
    description. *)

type command =
  | Ping
  | Get of int
  | Put of int * int
  | Del of int
  | Mget of int array  (** snapshot-consistent batch of finds *)
  | Range of int * int  (** inclusive bounds; ordered structures only *)
  | Rangecount of int * int
  | Scan of int
      (** snapshot fold over all bindings, unspecified order; the
          argument caps returned bindings (0 = unbounded) *)
  | Size
  | Stats  (** jsonlite observability report as a bulk reply *)
  | Metrics
      (** Prometheus text exposition of every counter / histogram /
          gauge as a bulk reply — the live metrics plane.  Never shed,
          like [Ping] and [Stats], so it stays observable under
          overload. *)
  | Profile of int
      (** [PROFILE \[ms\]]: a JSON profiler snapshot as a bulk reply
          ([Verlib.Obs.Profile.json]) — sampled activity stacks,
          per-site lock contention, GC telemetry.  The argument is a
          window in milliseconds: 0 (bare [PROFILE]) reports cumulative
          stacks, positive values report only the stacks accumulated
          inside the window (the serving worker sleeps for it, clamped
          server-side to 5 s).  Never shed, like [Stats]. *)
  | Multi
      (** Open a transaction: subsequent data commands are queued (each
          answered [+QUEUED]) until [EXEC] commits or [DISCARD] drops
          them.  See docs/TRANSACTIONS.md. *)
  | Exec of int
      (** [EXEC \[token\]]: atomically execute the queued commands as
          one optimistic transaction.  Success is an array reply whose
          head is the {e versionstamp} (the commit's globally-ordered
          stamp) followed by one element per queued command; validation
          exhaustion is [-ABORT n].  A positive [token] makes the
          commit exactly-once: re-sending [EXEC token] after an
          ambiguous failure replays the cached result instead of
          committing twice (0 = no token). *)
  | Discard  (** Drop the queued transaction; answers [+OK]. *)
  | Subscribe of int * int * int
      (** [SUBSCRIBE lo hi \[seq\]]: turn this connection into a push
          stream of committed change records touching [\[lo, hi\]],
          resuming after log sequence [seq] (0 = from now).  The server
          answers [+OK] and then streams one record frame per change
          (see {!reply_of_record}); the client sends [ACK] lines on the
          same connection.  [-ERR resync required] means the log
          trimmed past [seq] — bootstrap again via [SYNC].
          docs/REPLICATION.md is normative. *)
  | Watch of int * int * int
      (** [WATCH lo hi \[timeout-ms\]]: one-shot — block until the next
          committed change touching [\[lo, hi\]] and answer its record
          frame, or [$-1] on timeout (0 = server default, 5 s). *)
  | Sync
      (** Replica bootstrap: answers one array [seq; stamp; k1; v1;
          ...] — a snapshot of every binding positioned at log seq
          [seq] / watermark [stamp].  Follow with a full-range
          [SUBSCRIBE] carrying that [seq] to stream the suffix. *)
  | Replstats
      (** Replication plane introspection: one JSON bulk — role,
          tail seq/stamp, watermark, subscriber lag. *)
  | Promote
      (** Replica only: stop applying the feed, accept writes; answers
          [+OK] (idempotent — promoting a primary is a no-op).  The
          failover path (docs/REPLICATION.md). *)
  | Ack of int * int
      (** [ACK seq stamp]: subscriber cursor advance, sent on a
          streaming connection; feeds the primary's lag gauges. *)
  | Quit

type reply =
  | Ok_  (** [+OK] *)
  | Pong  (** [+PONG] *)
  | Exists  (** [+EXISTS] — PUT of an already-present key (no update) *)
  | Err of string  (** [-ERR msg] *)
  | Busy of int
      (** [-BUSY retry-after-ms] — load shed; the command was {e not}
          executed, so retrying (after the hinted delay) is always safe *)
  | Int of int  (** [:n] *)
  | Nil  (** [$-1] — absent key *)
  | Bulk of string  (** [$len] payload *)
  | Arr of reply list  (** [*n] then n elements *)
  | Queued  (** [+QUEUED] — command buffered inside MULTI *)
  | Aborted of int
      (** [-ABORT n] — EXEC gave up after [n] validation attempts; the
          transaction had {e no} effect and may be retried wholesale *)

val idempotent : command -> bool
(** Safe to re-issue after an ambiguous wire failure (the retry layer's
    criterion).  True for everything except [Quit] and token-less
    [Exec]; [Put]/[Del] qualify by effect idempotence, [Exec t] with
    [t > 0] by the server-side exactly-once token cache
    (docs/TRANSACTIONS.md). *)

val snapshot_heavy : command -> bool
(** Takes a snapshot and walks many versioned pointers ([Mget], [Range],
    [Rangecount], [Scan]) or validates a whole read set ([Exec]) — the
    class an overloaded server sheds first. *)

val parse_command : string -> (command, string) result
(** Parse one line (without the trailing newline; a trailing ['\r'] is
    tolerated).  Total: never raises. *)

val parse_command_traced : string -> (int option * command, string) result
(** Like {!parse_command} but also accepts the [TRACE <id>] prefix
    (docs/PROTOCOL.md): [TRACE 42 GET 7] parses as [(Some 42, Get 7)],
    a bare command as [(None, c)].  Trace ids are opaque positive
    integers chosen by the client; tracing never changes a command's
    idempotence or shedding class. *)

val render_command : ?trace_id:int -> Buffer.t -> command -> unit
(** Append the canonical wire form of a command, CRLF-terminated;
    [trace_id] (when positive) prepends the [TRACE <id>] prefix. *)

val command_line : ?trace_id:int -> command -> string
(** [render_command] into a fresh string. *)

val render_reply : Buffer.t -> reply -> unit
(** Append the wire form of a reply (error messages are sanitised so
    they cannot break framing). *)

val reply_equal : reply -> reply -> bool

val pp_reply : reply -> string
(** Debug rendering (not the wire form). *)

(** {1 Change-record frames}

    A streamed change record is an ordinary array reply
    [*2+2m] of [:seq :stamp (:k (:v | $-1))*] — riding the existing
    framing means the incremental {!Reader} already handles split
    delivery of streamed records. *)

val reply_of_record : Repl.record -> reply

val record_of_reply : reply -> (Repl.record, string) result
(** Total; rejects frames that are not well-formed records. *)

(** {1 Trace-info frames}

    The server's answer to a traced command: one [@]-framed line,
    written {e ahead of} the data reply it describes —
    [@<id> total=<us> outcome=<word> \[fanout=<n>\] \[<phase>=<us>\]*]
    with phases in pipeline order, non-zero only, three decimals.
    Untraced clients never receive these frames. *)

type trace_info = {
  t_id : int;  (** echo of the client's trace id *)
  t_total_us : float;  (** whole-span duration *)
  t_outcome : string;  (** [ok] / [shed] / [error] *)
  t_fanout : int;  (** per-shard sub-calls (0 for monolithic mounts) *)
  t_phase_us : (string * float) list;  (** exclusive per-phase µs *)
}

val render_trace : Buffer.t -> trace_info -> unit

val trace_line : trace_info -> string

val parse_trace : string -> (trace_info, string) result
(** Parse a frame line {e without} the leading ['@'].  Total.
    Round-trips {!render_trace} output. *)

(** Stateful '\n'-framed line reassembly, shared by every path that
    reads the wire in kernel-sized pieces (the event loop's
    per-connection inbox, the replica ACK drain): bytes are fed in
    arbitrary chunks, complete lines pop out, and a trailing partial
    line is re-buffered until its terminator arrives — a split delivery
    never drops or mangles a frame. *)
module Linebuf : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> int -> unit
  (** [feed t b off len] appends a received chunk. *)

  val feed_string : t -> string -> unit

  val next : t -> string option
  (** Pop the next complete line — terminator consumed, an optional
      ['\r'] before the ['\n'] stripped — or [None] when only a partial
      tail (possibly empty) remains buffered. *)

  val drain : t -> (string -> unit) -> unit
  (** [next] until exhausted. *)

  val pending : t -> int
  (** Bytes buffered past the last complete line: the partial tail the
      caller's line-length cap should be checked against. *)
end

(** Incremental reply reader over any byte source — the client half of
    the protocol, also used to fuzz reply framing round-trips. *)
module Reader : sig
  type t

  val create : (bytes -> int -> int -> int) -> t
  (** [create read] where [read buf pos len] returns the number of bytes
      filled, 0 on EOF (the [Unix.read] contract). *)

  val of_string : string -> t

  val reply : t -> (reply, string) result
  (** Read exactly one reply; [Error] on EOF mid-reply or framing
      violations.  Never raises on malformed input.  A leading trace
      frame is consumed and attached (see {!last_trace}). *)

  val last_trace : t -> trace_info option
  (** The trace frame that preceded the most recently parsed reply, or
      [None] if that reply was untraced.  Cleared at each {!reply}. *)
end
