(** Blocking loopback client for the verlib-serve protocol — the
    building block of [bin/verlib_loadgen] and the wire tests.

    Not domain-safe: one client per domain (each holds its own socket
    and read buffer), mirroring the benchmark discipline of one RNG per
    thread. *)

type t

val connect : ?host:string -> ?retries:int -> port:int -> unit -> t
(** [connect ~port ()] dials 127.0.0.1:[port].  [retries] (default 0)
    retries refused connections every 100 ms — lets a load generator
    start before the server finishes binding.  Raises [Unix.Unix_error]
    when the last attempt fails. *)

val close : t -> unit

val request : t -> Protocol.command -> (Protocol.reply, string) result
(** One command, one reply. *)

val pipeline : t -> Protocol.command list -> (Protocol.reply list, string) result
(** Write every command in one buffer flush, then read the replies in
    order — the pipelined closed loop. *)

val send_raw : t -> string -> unit
(** Write arbitrary bytes (protocol fuzzing). *)

val read_reply : t -> (Protocol.reply, string) result
