(** Blocking loopback client for the verlib-serve protocol — the
    building block of [bin/verlib_loadgen] and the wire tests.

    Not domain-safe: one client per domain (each holds its own socket
    and read buffer), mirroring the benchmark discipline of one RNG per
    thread.

    Two layers:

    - the bare transport ({!connect} / {!request} / {!pipeline}): one
      socket, failures surface as [Error _] or [Unix.Unix_error];
    - the {e retrying} transport ({!connect_rt} / {!rt_request} /
      {!rt_pipeline}): transparently reconnects and re-issues
      {!Protocol.idempotent} commands after ambiguous wire failures with
      jittered exponential backoff, and honours [-BUSY retry-after-ms]
      shedding (always safe to retry — shed commands never executed).
      See docs/RESILIENCE.md for the retry semantics and the [Put]/[Del]
      idempotency caveat. *)

type t

val connect :
  ?host:string -> ?retries:int -> ?read_timeout:float -> port:int -> unit -> t
(** [connect ~port ()] dials 127.0.0.1:[port].  [retries] (default 0)
    retries refused connections every 100 ms — lets a load generator
    start before the server finishes binding.  [read_timeout] (seconds)
    arms [SO_RCVTIMEO]: a reply that doesn't arrive in time surfaces as
    a reader error instead of blocking forever.  Ignores SIGPIPE
    process-wide.  Raises [Unix.Unix_error] when the last attempt
    fails. *)

val close : t -> unit

val request : t -> Protocol.command -> (Protocol.reply, string) result
(** One command, one reply. *)

val pipeline : t -> Protocol.command list -> (Protocol.reply list, string) result
(** Write every command in one buffer flush, then read the replies in
    order — the pipelined closed loop. *)

val request_traced :
  t ->
  trace_id:int ->
  Protocol.command ->
  (Protocol.reply, string) result * Protocol.trace_info option
(** One command under a [TRACE <id>] prefix (docs/PROTOCOL.md): the
    server answers with an [@]-framed phase decomposition ahead of the
    data reply, returned here alongside it.  [None] when the server did
    not emit a frame (pre-trace server, or the reply was an error the
    parser produced locally). *)

val send_raw : t -> string -> unit
(** Write arbitrary bytes (protocol fuzzing). *)

val read_reply : t -> (Protocol.reply, string) result

(** {1 Retrying transport} *)

type rt

val connect_rt :
  ?host:string ->
  ?read_timeout:float ->
  ?max_attempts:int ->
  ?retry_busy:bool ->
  ?seed:int ->
  ?endpoints:(string * int) list ->
  port:int ->
  unit ->
  rt
(** Lazy: the socket is dialed (with connect retries) on first use and
    re-dialed after any failure.  [read_timeout] default 2 s;
    [max_attempts] (per command, default 10) bounds
    reconnect+retry loops; [retry_busy] (default true) re-issues
    commands the server answered [-BUSY], after the hinted delay,
    jittered; [seed] derives the private backoff-jitter RNG.

    [endpoints] lists failover candidates behind the primary
    [host]:[port] — typically the replicas of docs/REPLICATION.md.  The
    transport rotates through the ring on transport failure and on
    [-ERR READONLY] (a write refused by a not-yet-promoted replica is
    never executed, so re-issuing it elsewhere is always safe), counting
    each hop in the [failover_total] gauge.  With candidates present,
    dial retries against a dead endpoint are cut short so rotation is
    prompt. *)

val rt_close : rt -> unit

val rt_request : rt -> Protocol.command -> (Protocol.reply, string) result
(** One command with transparent reconnect/retry.  Ambiguous transport
    failures are retried only for {!Protocol.idempotent} commands;
    [Error _] after [max_attempts] is a genuine failure.  With
    [retry_busy] a surviving [Busy _] reply means the server shed it
    [max_attempts] times running. *)

val rt_request_traced :
  rt ->
  trace_id:int ->
  Protocol.command ->
  (Protocol.reply, string) result * Protocol.trace_info option
(** {!rt_request} with a [TRACE] prefix; the returned frame belongs to
    the attempt whose reply is returned (earlier retried attempts are
    discarded wholesale). *)

val rt_pipeline :
  rt -> Protocol.command list -> (Protocol.reply list, string) result
(** Pipelined batch: re-sent wholesale on transport failure only when
    every command is idempotent; [-BUSY] entries of a successful batch
    are re-issued individually. *)

val rt_txn :
  rt ->
  ?token:int ->
  Protocol.command list ->
  (int * Protocol.reply list, string) result
(** One server-side transaction: pipelines
    [MULTI; <commands>; EXEC <token>] and returns
    [(versionstamp, per-command replies)] on commit.  [token] (fresh
    and positive; generated from the client RNG when omitted) makes the
    commit exactly-once, so ambiguous wire failures are retried
    wholesale without risk of double-commit — no settling pass needed.
    Validation aborts, shed EXECs and reconnect-dropped queues retry
    with jittered backoff up to [max rt_max_attempts 16] times;
    [Error _] past that is a genuine failure and the transaction is
    guaranteed uncommitted only in the abort case (see
    docs/TRANSACTIONS.md). *)

val rt_stats : rt -> int * int
(** [(retries, busy)] this client performed/observed so far. *)

(** {1 Process-wide accounting} (also the [retry_total] /
    [reconnect_total] gauges in [Verlib.Obs] reports) *)

val retry_total : unit -> int

val reconnect_total : unit -> int

val failover_total : unit -> int
(** Endpoint rotations performed by retrying transports (dial failures,
    severed streams, READONLY refusals) — the client-side witness of a
    failover drill. *)
