(** A mounted structure: any [Dstruct.Map_intf.MAP]-conforming map,
    packed with its handle so the server can execute wire commands
    against it without knowing the concrete type.

    Capability dispatch is typed: [RANGE]/[RANGECOUNT] against an
    [Unordered] structure produce a [-ERR unsupported ...] reply — never
    an exception — while [MGET] and [SCAN] work everywhere (the shared
    snapshot fold of [Map_intf]). *)

type t

val mount :
  ?mode:Verlib.Vptr.mode ->
  ?lock_mode:Flock.Lock.mode ->
  n_hint:int ->
  (module Dstruct.Map_intf.MAP) ->
  t

val name : t -> string

val size : t -> int

val range_capability : t -> Dstruct.Map_intf.range_capability

val iter_vptrs : t -> (Verlib.Chainscan.target -> unit) -> unit
(** For the chain census ([Verlib.Chainscan]). *)

val shard_views : t -> (string * ((Verlib.Chainscan.target -> unit) -> unit)) list
(** Named per-partition census walkers ([Map_intf.MAP.shard_views]):
    singleton for monolithic structures, one per shard for [sharded-*]
    mounts — the server's per-shard [STATS] breakdown reads these. *)

val store : t -> Txn.Store.t
(** The mount's transactional facade (one per mount; every write goes
    through it). *)

val exec : t -> Protocol.command -> Protocol.reply
(** Execute one data command, booked to the current request span's [op]
    phase.  [Ping] answers [Pong]; [Stats], [Metrics] and [Quit] are
    connection-level and answered with [-ERR] here (the server
    intercepts them first).  [Put]/[Del] route through the mount's
    {!Txn.Store} so they serialize with transactional commits.
    Structure exceptions are caught and surfaced as [-ERR internal:
    ...] so a bug cannot take the worker down. *)

val exec_txn : t -> token:int -> Protocol.command list -> Protocol.reply
(** Commit one MULTI/EXEC transaction: the queued commands execute as a
    single {!Txn.exec} (snapshot-consistent reads, buffered writes,
    validate-and-install commit).  Success is
    [Arr (Int versionstamp :: per-command replies)]; validation
    exhaustion is [Aborted n].  [token > 0] engages the exactly-once
    replay cache.  Booked to the request span's [op] phase, with
    [validate]/[install] nested inside. *)

val dump : t -> (int * int) list
(** Uncapped snapshot of every binding — the [SYNC] bootstrap payload.
    Read the replication log's tail {e before} dumping so the snapshot
    is positioned at (or past) that tail. *)

val scan_limit_cap : int
(** Upper bound the server imposes on [SCAN] results (bindings), to
    bound reply size; [SCAN 0] means "all", capped here. *)
