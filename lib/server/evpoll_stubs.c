/* poll(2) binding for the event-loop server core.
 *
 * Unix.select caps out at FD_SETSIZE (1024 on glibc): any fd number at
 * or past that limit silently corrupts the fd_set or raises, which is
 * exactly the regime a many-connection server lives in.  poll carries
 * the fd list explicitly, so the only ceiling left is ulimit -n.
 *
 * The OCaml side passes parallel int arrays (fds / interest masks /
 * revents out-slots) plus a live-prefix length, with portable event
 * bits translated here:
 *
 *   bit 0 = readable   (POLLIN)
 *   bit 1 = writable   (POLLOUT)
 *   bit 2 = error      (POLLERR)
 *   bit 3 = hangup     (POLLHUP)
 *   bit 4 = invalid fd (POLLNVAL)
 *   bit 5 = peer FIN   (POLLRDHUP, Linux; never reported elsewhere)
 *
 * POLLRDHUP matters because the loop masks POLLIN off while a batch is
 * in flight: without it a peer that disconnects mid-batch is invisible
 * until the batch completes, and the worker would go on executing the
 * abandoned (possibly already client-replayed) commands.
 *
 * The runtime lock is released around the poll syscall so worker
 * domains keep running while the loop sleeps; because the GC may move
 * young arrays while the lock is released, the fd/interest arrays are
 * copied into a malloc'd struct pollfd vector first and revents are
 * written back only after the lock is reacquired.  EINTR is reported
 * as 0 ready fds (the loop just re-polls). */

#ifndef _GNU_SOURCE
#define _GNU_SOURCE /* POLLRDHUP */
#endif

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>
#include <errno.h>
#include <poll.h>
#include <stdlib.h>

#define EV_IN 1
#define EV_OUT 2
#define EV_ERR 4
#define EV_HUP 8
#define EV_NVAL 16
#define EV_RDHUP 32

static short events_of_mask(long m)
{
    short ev = 0;
    if (m & EV_IN)
        ev |= POLLIN;
    if (m & EV_OUT)
        ev |= POLLOUT;
#ifdef POLLRDHUP
    if (m & EV_RDHUP)
        ev |= POLLRDHUP;
#endif
    return ev;
}

static long mask_of_revents(short ev)
{
    long m = 0;
    if (ev & (POLLIN | POLLPRI))
        m |= EV_IN;
    if (ev & POLLOUT)
        m |= EV_OUT;
    if (ev & POLLERR)
        m |= EV_ERR;
    if (ev & POLLHUP)
        m |= EV_HUP;
    if (ev & POLLNVAL)
        m |= EV_NVAL;
#ifdef POLLRDHUP
    if (ev & POLLRDHUP)
        m |= EV_RDHUP;
#endif
    return m;
}

/* poll(fds[0..n-1], interest[0..n-1]) -> number ready; revents[i] gets
 * the readiness mask for fds[i].  timeout_ms < 0 blocks forever. */
CAMLprim value caml_verlib_poll(value vfds, value vinterest, value vrevents,
                                value vn, value vtimeout_ms)
{
    CAMLparam5(vfds, vinterest, vrevents, vn, vtimeout_ms);
    long n = Long_val(vn);
    int timeout = (int)Long_val(vtimeout_ms);
    struct pollfd *pfds;
    int rc;
    long i;

    if (n < 0 || n > Wosize_val(vfds) || n > Wosize_val(vinterest) ||
        n > Wosize_val(vrevents))
        caml_invalid_argument("Evpoll.poll: n out of bounds");

    pfds = (struct pollfd *)malloc((n > 0 ? n : 1) * sizeof(struct pollfd));
    if (pfds == NULL)
        caml_raise_out_of_memory();
    for (i = 0; i < n; i++) {
        pfds[i].fd = (int)Long_val(Field(vfds, i));
        pfds[i].events = events_of_mask(Long_val(Field(vinterest, i)));
        pfds[i].revents = 0;
    }

    caml_release_runtime_system();
    rc = poll(pfds, (nfds_t)n, timeout);
    caml_acquire_runtime_system();

    if (rc < 0) {
        int err = errno;
        free(pfds);
        if (err == EINTR)
            CAMLreturn(Val_long(0));
        unix_error(err, "poll", Nothing);
    }

    for (i = 0; i < n; i++)
        Field(vrevents, i) = Val_long(mask_of_revents(pfds[i].revents));
    free(pfds);
    CAMLreturn(Val_long(rc));
}
