(** Version-chain census and invariant audit (the space half of
    verlib-obs).

    Walks the versioned pointers of a structure — passively: raw head
    reads, no set-stamp helping, no shortcutting — and produces a
    {!census}: the chain-length distribution, live vs. reclaimable
    version counts, outstanding indirect links, and shortcut
    effectiveness, together with an audit of the chain invariants the
    §4-§5 algorithms promise (non-increasing stamps, no buried TBD, no
    indirect link whose direct cell disagrees with its value).

    Safe to run concurrently with mutators: chains are reached through
    atomic head reads and [prev] edges that are immutable after
    publication except for truncation, which only severs an edge — a
    racing census can under-count, never observe a corrupt chain.
    Audits are exact at quiescence.

    Violations are additionally emitted as [Obs.ev_census_violation]
    trace events, and each census as one [Obs.ev_census] event. *)

type target = Target : 'a Vptr.t -> target
    (** One versioned pointer to scan, with its element type hidden —
        what a structure's [iter_vptrs] emits. *)

(** {1 Audit violations} *)

type violation =
  | Unsorted of { newer : int; older : int; depth : int }
      (** stamp increased walking towards older versions *)
  | Buried_tbd of { depth : int }
      (** unresolved TBD stamp behind the head of a chain *)
  | Dangling_link of { stamp : int }
      (** indirect link whose direct cell disagrees with its value *)

val violation_code : violation -> int
(** 1 = unsorted, 2 = buried TBD, 3 = dangling link (the
    [ev_census_violation] event argument). *)

val describe_violation : violation -> string

val max_violation_details : int
(** Cap on retained {!census.c_violations} details;
    {!census.c_violation_count} is exact regardless. *)

(** {1 The census} *)

type census = {
  c_pointers : int;  (** versioned pointers visited *)
  c_plain_pointers : int;  (** pointers in [Plain] (non-versioned) mode *)
  c_nil_heads : int;
  c_direct_heads : int;
  c_indirect_heads : int;
  c_tbd_heads : int;  (** heads whose stamp is still TBD (in-flight CAS) *)
  c_versions : int;  (** versions reachable over all chains *)
  c_live_versions : int;  (** heads, TBDs, and stamps above the done stamp *)
  c_reclaimable : int;  (** non-head versions at or below the done stamp *)
  c_indirect_links : int;  (** [Clink] cells anywhere in chains *)
  c_shortcutable : int;  (** indirect heads already at or below the done stamp *)
  c_max_chain : int;
  c_chain_hist : int array;  (** [Flock.Telemetry.Hist] bucket layout *)
  c_truncated_walks : int;  (** chains longer than the walk cap *)
  c_done_stamp : int;  (** the done stamp the audit was judged against *)
  c_clock : int;
  c_shortcuts : int;  (** [Stats.shortcuts] at census time *)
  c_indirect_created : int;  (** [Stats.indirect_created] at census time *)
  c_violations : violation list;  (** first {!max_violation_details} *)
  c_violation_count : int;  (** exact *)
}

val default_max_depth : int

val census_of_iter :
  ?max_depth:int -> ((target -> unit) -> unit) -> census
(** [census_of_iter iter] runs [iter emit] and scans every emitted
    target against one coherent done-stamp bound. *)

val census_of_targets : ?max_depth:int -> target list -> census

(** {1 Derived metrics} *)

val shortcut_ratio : census -> float
(** Links shortcut out per link created (1.0 when none were created) —
    the §5 effectiveness figure. *)

val chain_p50 : census -> int
(** Chain-length percentile as a bucket upper bound (within 2x). *)

val chain_p99 : census -> int

val percentile : census -> float -> int

(** {1 Root registry}

    Structures (or the harness driver) register an iterator over their
    versioned pointers; {!census_all} scans every registered root.
    Registrations hold the structure alive — callers that create
    structures per run must {!unregister} when done. *)

type registration

val register :
  name:string -> ((target -> unit) -> unit) -> registration

val unregister : registration -> unit

val registered : unit -> string list
(** Names of live registrations, oldest first. *)

val census_all : ?max_depth:int -> unit -> (string * census) list
