(** verlib-obs — latency histograms, version-chain telemetry and
    Chrome-trace event export.

    Layered on [Flock.Telemetry] (per-domain sharded histograms and
    per-domain event rings); this module owns the instrument and event
    catalogues, the sampling policy of the always-on instruments, the
    structured {!report} the harness embeds in driver results, and the
    Chrome trace-event JSON exporter.

    All aggregate reads follow the [Stats] quiescence contract: exact
    only when worker domains are quiesced. *)

module Hist = Flock.Telemetry.Hist

(** {1 Event catalogue} *)

val ev_snap_begin : int

val ev_snap_end : int

val ev_snap_abort : int

val ev_indirect_create : int

val ev_shortcut : int

val ev_truncate : int

val ev_stamp_incr : int

val ev_census : int
(** One census completed; arg = number of versions counted. *)

val ev_census_violation : int
(** A chain-invariant audit failure ({!Chainscan}); arg = violation
    code. *)

type phase = Instant | Span_begin | Span_end

val describe : int -> string * phase
(** Name and Chrome phase of an event code (Verlib and Flock codes). *)

val emit : int -> int -> unit
(** [emit code arg]: re-export of [Flock.Telemetry.emit] — appends to
    the calling domain's ring when tracing is on; a single
    branch-predictable atomic load otherwise. *)

val set_tracing : bool -> unit

val tracing_on : unit -> bool

(** {1 Instruments}

    Latencies and dwell times are in hardware ticks ({!Hwclock});
    convert with {!Hwclock.to_us} for reports. *)

val lat_find : Hist.t

val lat_insert : Hist.t

val lat_delete : Hist.t

val lat_range : Hist.t

val lat_multifind : Hist.t

val chain_len : Hist.t
(** Version-chain length observed at truncation/shortcut time (sampled
    1-in-16 per domain). *)

val snap_dwell : Hist.t
(** Ticks spent inside [with_snapshot] (sampled 1-in-16 per domain). *)

val chain_sample : unit -> bool
(** Cheap per-domain 1-in-16 tick, used by the chain-length instrument. *)

val dwell_sample : unit -> bool

(** {1 Request spans}

    One span per served request, decomposed into named phases with
    {e exclusive} stack-based accounting: entering a nested phase pauses
    its parent, so the per-phase ticks of a finished span sum to at most
    [end - begin] with no double counting — the property that lets
    [verlib_loadgen] reconcile server-side phase decompositions against
    client-measured RTTs.

    The current span is registry-slot-private; instrumented call sites
    elsewhere in the tree ([Snapshot.with_snapshot], [Dstruct.Sharded]
    fan-out, the [Fault] blocking observer installed by this module)
    attribute into whatever span their domain currently carries and cost
    one atomic load when no span has ever been started. *)

module Span : sig
  type phase =
    | Accept
    | Queue
    | Parse
    | Shed
    | Route
    | Snapshot
    | Op
    | Reply
    | Stall
    | Validate
    | Install

  val nphases : int

  val phases : phase list
  (** All phases, index order. *)

  val phase_index : phase -> int

  val phase_name : phase -> string
  (** Lower-case wire/report name ([accept], [queue], ...). *)

  val phase_of_name : string -> phase option

  type t = {
    mutable sp_trace_id : int;  (** 0 = untraced *)
    mutable sp_cmd : string;
    mutable sp_begin : int;  (** ticks *)
    mutable sp_end : int;  (** 0 until finished *)
    sp_phase : int array;  (** accumulated ticks, indexed by {!phase_index} *)
    mutable sp_fanout : int;  (** per-shard sub-calls performed *)
    mutable sp_outcome : string;  (** [ok] / [shed] / [error] / [killed] *)
    mutable sp_stack : int list;
    mutable sp_last : int;
    mutable sp_slot : int;
  }

  val start : ?trace_id:int -> ?begin_ticks:int -> cmd:string -> unit -> t
  (** Open a span and make it the calling domain's current span.
      [begin_ticks] backdates the start (e.g. to the accept or
      read-chunk mark); elapsed ticks before the first {!enter} are
      unattributed. *)

  val set_cmd : t -> string -> unit

  val set_trace_id : t -> int -> unit

  val current : unit -> t option

  val enter : phase -> unit
  (** Push [phase] on the current span's stack (no-op without one). *)

  val leave : unit -> unit

  val in_phase : phase -> (unit -> 'a) -> 'a
  (** [enter]/[leave] bracket, exception-safe; just runs the thunk when
      the domain has no current span. *)

  val add : phase -> int -> unit
  (** Credit externally measured ticks (e.g. queue dwell stamped by the
      producer) to the current span without opening the phase. *)

  val add_to : t -> phase -> int -> unit

  val note_fanout : unit -> unit
  (** Count one per-shard sub-call on the current span. *)

  val finish : ?outcome:string -> t -> unit
  (** Close all open phases, stamp [sp_end], feed the phase and total
      histograms, retire the span into its domain's recent-span ring and
      clear the current-span slot. *)

  val abandon : t -> unit
  (** Clear the current-span slot without recording anything. *)

  val total_ticks : t -> int

  val phase_ticks : t -> phase -> int

  val phase_hist : phase -> Hist.t
  (** The [phase_<name>_cycles] histogram. *)

  val span_total : Hist.t

  val ring_capacity : int

  val recent : unit -> t list
  (** Finished spans currently retained across all domain rings, oldest
      first per slot (approximate under concurrent writers — the flight
      recorder's contract). *)

  val reset : unit -> unit
end

(** {1 Continuous sampling profiler}

    The read side of [Flock.Telemetry.Activity]: a sampler domain ticks
    at [hz], folding one weighted stack
    [domain-<slot>;<op>;<phase>;<lock frame>] per active slot into an
    accumulation table.  Publishing domains pay plain stores behind one
    atomic gate; all sampling cost lives on the sampler.  Lock frames
    come from [Flock.Lock] site labels, phases from the current request
    span, op names from whatever the serving layer published. *)

module Profile : sig
  val default_hz : int
  (** 97 — deliberately off any round scheduler frequency. *)

  val start : ?hz:int -> unit -> unit
  (** Spawn the sampler domain and open the activity-publication gate;
      idempotent while running. *)

  val stop : unit -> unit
  (** Join the sampler and close the gate; accumulated stacks are
      retained for export.  Idempotent. *)

  val running : unit -> bool

  val hz : unit -> int

  val samples_total : unit -> int
  (** Slot-samples folded in so far (one per active slot per tick). *)

  val stacks : unit -> (string * int) list
  (** Accumulated collapsed stacks with sample counts, heaviest
      first. *)

  val activity : unit -> (int * string) list
  (** Last sampled stack per registry slot (active slots only) — the
      dashboard's per-domain activity column. *)

  val collapsed : unit -> string
  (** flamegraph.pl / speedscope-compatible collapsed-stack text, one
      ["frame;frame;frame count"] line per stack. *)

  val write_collapsed : string -> unit

  val json : ?window_ms:int -> unit -> string
  (** The [PROFILE] wire payload: one JSON object with [clock_source],
      sampler state, stacks, per-slot activity, per-site lock contention
      (including sampled waits-on edges) and GC telemetry.
      [window_ms > 0] sleeps the calling thread (clamped to 5 s) and
      reports only the stacks accumulated inside the window. *)

  val reset : unit -> unit
  (** Drop accumulated stacks and sample counts (not the sampler). *)
end

(** {1 Structured report} *)

type report = {
  counters : (string * int) list;  (** every [Stats] counter, by name *)
  hists : Hist.summary list;  (** every registered histogram *)
  gauges : (string * int) list;
      (** every [Flock.Telemetry.Gauge] (epoch lag, deferred-queue depth,
          stamp lag, ...), read at capture time *)
}

val capture : unit -> report
(** Snapshot all counters and histogram summaries (quiesced contract). *)

(** {1 Chrome trace export} *)

val export_trace : string -> int
(** [export_trace path] writes the per-domain event rings {e and} every
    retained finished request span ({!Span.recent}) as a Chrome
    trace-event JSON file (Perfetto / chrome://tracing compatible) and
    returns the number of tracks written.  Snapshot begin/end become
    "B"/"E" duration events, other instrument events instants, and
    request spans "X" complete events on [requests-domain-N] tracks with
    the per-phase µs breakdown in [args].  Streams broken by ring
    wrap-around are repaired so the file always balances. *)
