(** verlib-obs — latency histograms, version-chain telemetry and
    Chrome-trace event export.

    Layered on [Flock.Telemetry] (per-domain sharded histograms and
    per-domain event rings); this module owns the instrument and event
    catalogues, the sampling policy of the always-on instruments, the
    structured {!report} the harness embeds in driver results, and the
    Chrome trace-event JSON exporter.

    All aggregate reads follow the [Stats] quiescence contract: exact
    only when worker domains are quiesced. *)

module Hist = Flock.Telemetry.Hist

(** {1 Event catalogue} *)

val ev_snap_begin : int

val ev_snap_end : int

val ev_snap_abort : int

val ev_indirect_create : int

val ev_shortcut : int

val ev_truncate : int

val ev_stamp_incr : int

val ev_census : int
(** One census completed; arg = number of versions counted. *)

val ev_census_violation : int
(** A chain-invariant audit failure ({!Chainscan}); arg = violation
    code. *)

type phase = Instant | Span_begin | Span_end

val describe : int -> string * phase
(** Name and Chrome phase of an event code (Verlib and Flock codes). *)

val emit : int -> int -> unit
(** [emit code arg]: re-export of [Flock.Telemetry.emit] — appends to
    the calling domain's ring when tracing is on; a single
    branch-predictable atomic load otherwise. *)

val set_tracing : bool -> unit

val tracing_on : unit -> bool

(** {1 Instruments}

    Latencies and dwell times are in hardware ticks ({!Hwclock});
    convert with {!Hwclock.to_us} for reports. *)

val lat_find : Hist.t

val lat_insert : Hist.t

val lat_delete : Hist.t

val lat_range : Hist.t

val lat_multifind : Hist.t

val chain_len : Hist.t
(** Version-chain length observed at truncation/shortcut time (sampled
    1-in-16 per domain). *)

val snap_dwell : Hist.t
(** Ticks spent inside [with_snapshot] (sampled 1-in-16 per domain). *)

val chain_sample : unit -> bool
(** Cheap per-domain 1-in-16 tick, used by the chain-length instrument. *)

val dwell_sample : unit -> bool

(** {1 Structured report} *)

type report = {
  counters : (string * int) list;  (** every [Stats] counter, by name *)
  hists : Hist.summary list;  (** every registered histogram *)
  gauges : (string * int) list;
      (** every [Flock.Telemetry.Gauge] (epoch lag, deferred-queue depth,
          stamp lag, ...), read at capture time *)
}

val capture : unit -> report
(** Snapshot all counters and histogram summaries (quiesced contract). *)

(** {1 Chrome trace export} *)

val export_trace : string -> int
(** [export_trace path] writes the per-domain event rings as a Chrome
    trace-event JSON file (Perfetto / chrome://tracing compatible) and
    returns the number of domain streams written.  Snapshot begin/end
    become "B"/"E" duration events; everything else instants.  Streams
    broken by ring wrap-around are repaired so the file always
    balances. *)
