open Vtypes

type mode = Indirect | No_shortcut | Ind_on_need | Rec_once | Plain

let mode_name = function
  | Indirect -> "Indirect"
  | No_shortcut -> "NoShortcut"
  | Ind_on_need -> "IndOnNeed"
  | Rec_once -> "RecOnce"
  | Plain -> "Non-versioned"

let all_modes = [ Indirect; No_shortcut; Ind_on_need; Rec_once; Plain ]

type 'a desc = { meta_of : 'a -> 'a Vtypes.meta; dmode : mode }

let make_desc ~meta_of ~mode = { meta_of; dmode = mode }

let mode d = d.dmode

type 'a t = { head : 'a chain Atomic.t; d : 'a desc }

let desc t = t.d

(* Fault-injection sites (docs/RESILIENCE.md).  [stamp.set] fires
   between observing a TBD stamp and the CAS that resolves it — a pause
   there widens the TBD window so other threads must go through
   set-stamp helping (the non-idempotent helping of Theorem 6.2).
   [vptr.cas] fires just before the machine CAS on the head, and
   [vptr.install] while a new version (direct or indirect) is being
   built before publication. *)
let fp_stamp = Fault.Point.make "stamp.set"

let fp_cas = Fault.Point.make "vptr.cas"

let fp_install = Fault.Point.make "vptr.install"

let use_direct_stores = Atomic.make true

let set_direct_stores b = Atomic.set use_direct_stores b

let direct_stores () = Atomic.get use_direct_stores

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let claim_if_fresh d v =
  match v with
  | None -> ()
  | Some o ->
      let m = d.meta_of o in
      (* Initialisation is pre-publication, so a plain store suffices. *)
      if Atomic.get m.stamp = Stamp.tbd then Atomic.set m.stamp Stamp.zero

let make d v =
  match d.dmode with
  | Plain -> { head = Atomic.make (Cval v); d }
  | Indirect ->
      { head = Atomic.make (Clink (make_link ~stamp:Stamp.zero ~prev:(Cval None) v)); d }
  | No_shortcut | Ind_on_need | Rec_once ->
      claim_if_fresh d v;
      { head = Atomic.make (Cval v); d }

(* ------------------------------------------------------------------ *)
(* Set-stamp helping (§4): anyone who meets a TBD version at the head
   stamps it with the current clock.  Deliberately non-idempotent under
   helping (Theorem 6.2).                                              *)

let set_stamp_meta m =
  if Atomic.get m.stamp = Stamp.tbd then begin
    Fault.hit fp_stamp;
    ignore (Atomic.compare_and_set m.stamp Stamp.tbd (Stamp.read ()))
  end

let set_stamp d chain =
  match chain_meta d.meta_of chain with
  | Some m -> set_stamp_meta m
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Shortcutting (§5): splice out an indirect link as soon as no live or
   future snapshot can need the versions behind it.  Non-idempotent: it
   is a helping step, racing shortcutters converge on [l.ldirect].      *)

(* Bounded chain-length walk for the [Obs.chain_len] instrument; capped
   so a sampled observation can never turn into an O(history) scan. *)
let chain_len_cap = 64

let rec chain_length d c acc =
  if acc >= chain_len_cap then acc
  else
    match c with
    | Cval None -> acc
    | Cval (Some o) -> chain_length d (d.meta_of o).prev (acc + 1)
    | Clink l -> chain_length d l.lmeta.prev (acc + 1)

let shortcut t chain =
  match chain with
  | Cval _ -> ()
  | Clink l ->
      let s = Atomic.get l.lmeta.stamp in
      if s <> Stamp.tbd && s <= Done_stamp.get () then
        if Atomic.compare_and_set t.head chain l.ldirect then begin
          Stats.incr Stats.shortcuts;
          Obs.emit Obs.ev_shortcut s;
          if Obs.chain_sample () then
            Obs.Hist.observe Obs.chain_len (chain_length t.d chain 0);
          Flock.retire l
        end

(* Version-chain truncation — the GC analogue of the paper's epoch-based
   reclamation.  The C++ library Retires superseded versions and EBR frees
   them once no snapshot can need them, which physically severs the prev
   chain; under a tracing GC the chain itself keeps the history alive, so
   we sever it explicitly: once a version's stamp is at or below the done
   stamp, no ongoing or future snapshot can traverse past it (a reader
   reaching it has ts >= done >= stamp and accepts it), so its prev edge
   can be dropped.  Called by writers on the version they supersede, which
   bounds chain length by the number of updates concurrent with the oldest
   live snapshot — the same bound EBR gives the paper.

   Counter exactness: inside critical sections every call site gates this
   through [Flock.Idem.claim], so helpers cannot inflate [truncations].
   Outside frames two independent threads can still race [m.prev] (a
   plain mutable field) and both count one severing of the same edge; an
   atomic RMW on [prev] would close that sliver at a cost on every
   traversal, so it stays a documented margin of the counter, not of the
   mechanism (severing twice is idempotent). *)
let truncate_chain d chain =
  match chain_meta d.meta_of chain with
  | None -> ()
  | Some m -> (
      match m.prev with
      | Cval None -> ()
      | Cval (Some _) | Clink _ ->
          let s = Atomic.get m.stamp in
          if s <> Stamp.tbd && s <= Done_stamp.get () then begin
            (* Chain length is sampled *before* severing: it measures the
               history the truncation releases. *)
            if Obs.chain_sample () then
              Obs.Hist.observe Obs.chain_len (chain_length d chain 0);
            m.prev <- Cval None;
            Stats.incr Stats.truncations;
            Obs.emit Obs.ev_truncate s
          end)

(* ------------------------------------------------------------------ *)
(* Snapshot reads: walk the version chain to the newest version whose
   stamp is at or before the snapshot stamp.  Equality triggers the
   optimistic-abort signal of Algorithm 7.                             *)

let accept s v =
  if s = Snapctx.local_stamp () then Snapctx.note_equal_stamp ();
  v

let rec read_snapshot d chain ts =
  match chain with
  | Cval None -> None (* initial null: implicit zero stamp *)
  | Cval (Some o as v) ->
      let m = d.meta_of o in
      let s = Atomic.get m.stamp in
      if s > ts then read_snapshot d m.prev ts else accept s v
  | Clink l ->
      let s = Atomic.get l.lmeta.stamp in
      if s > ts then read_snapshot d l.lmeta.prev ts else accept s l.lvalue

let load t =
  let head = Flock.Idem.once (fun () -> Atomic.get t.head) in
  match t.d.dmode with
  | Plain -> chain_value head
  | Indirect | No_shortcut | Ind_on_need | Rec_once ->
      set_stamp t.d head;
      if t.d.dmode = Ind_on_need then begin
        shortcut t head;
        (* Helped loads truncate (and count) once per section; [head] is
           logged, so the claim position is the same for every helper. *)
        if Flock.Idem.claim () then truncate_chain t.d head
      end;
      let ts = Snapctx.local_stamp () in
      if ts = Snapctx.none then chain_value head else read_snapshot t.d head ts

(* ------------------------------------------------------------------ *)
(* The machine-level CAS on the head.  Inside a lock-free critical
   section this is the idempotent CAS of Theorem 6.1: a CAM followed by
   the "installed or stamped" test, which all helpers answer alike
   because they share the (idempotently allocated) new chain cell.      *)

let chain_stamp d = function
  | Clink l -> Atomic.get l.lmeta.stamp
  | Cval (Some o) -> Atomic.get (d.meta_of o).stamp
  | Cval None -> Stamp.zero

let primcas t old_chain new_chain =
  Fault.hit fp_cas;
  if Flock.Idem.in_frame () then begin
    ignore (Atomic.compare_and_set t.head old_chain new_chain);
    Atomic.get t.head == new_chain || chain_stamp t.d new_chain <> Stamp.tbd
  end
  else Atomic.compare_and_set t.head old_chain new_chain

(* Plain (non-versioned) mode has no stamps; its CAS inside critical
   sections is only used by structures that, like the paper's baselines,
   confine CAS to lock-free (lockless) code paths. *)
let plain_primcas t old_chain new_chain =
  if Flock.Idem.in_frame () then begin
    ignore (Atomic.compare_and_set t.head old_chain new_chain);
    Atomic.get t.head == new_chain
  end
  else Atomic.compare_and_set t.head old_chain new_chain

(* ------------------------------------------------------------------ *)
(* CAS (Algorithm 5 lines 39-61, plus Algorithm 4 for Indirect mode)   *)

let build_new_version t old new_v =
  Fault.hit fp_install;
  (* Decide whether this version needs an indirect link: always for null
     and for objects whose metadata is already claimed; never in Rec_once
     mode, whose contract promises fresh metadata. *)
  let indirect =
    match t.d.dmode with
    | Indirect -> true
    | Rec_once ->
        (* Fail fast on contract violations: re-recording a claimed object
           in this mode would silently corrupt version chains (possibly
           into cycles).  The check shares the cache line the direct
           install is about to write, so it costs next to nothing. *)
        (match new_v with
         | None -> invalid_arg "Vptr: Rec_once mode cannot store null"
         | Some o ->
             let s = Flock.Idem.once (fun () -> Atomic.get (t.d.meta_of o).stamp) in
             if s <> Stamp.tbd then
               invalid_arg "Vptr: Rec_once mode: object recorded more than once");
        false
    | Plain -> assert false
    | No_shortcut | Ind_on_need -> (
        match new_v with
        | None -> true
        | Some o ->
            let s = Flock.Idem.once (fun () -> Atomic.get (t.d.meta_of o).stamp) in
            s <> Stamp.tbd)
  in
  if indirect then begin
    (* Exactly once per critical section: the claim winner records the
       install; lagging helpers of the same section skip the counter and
       the event.  The [indirect] decision above is derived from logged
       reads, so every helper takes this branch and the claim point sits
       at the same log position for all of them. *)
    if Flock.Idem.claim () then begin
      Stats.incr Stats.indirect_created;
      Obs.emit Obs.ev_indirect_create 0
    end;
    Flock.Idem.once (fun () -> Clink (make_link ~stamp:Stamp.tbd ~prev:old new_v))
  end
  else begin
    if Flock.Idem.claim () then Stats.incr Stats.direct_installed;
    let o =
      match new_v with
      | Some o -> o
      | None -> invalid_arg "Vptr: Rec_once mode cannot store null"
    in
    (* Pre-publication write; lagging helpers rewrite the same value. *)
    (t.d.meta_of o).prev <- old;
    Flock.Idem.once (fun () -> Cval new_v)
  end

let is_link = function Clink _ -> true | Cval _ -> false

let cas t exp new_v =
  let old = Flock.Idem.once (fun () -> Atomic.get t.head) in
  if opt_eq exp new_v then true
  else if not (opt_eq (chain_value old) exp) then false
  else if t.d.dmode = Plain then
    plain_primcas t old (Flock.Idem.once (fun () -> Cval new_v))
  else begin
    set_stamp t.d old;
    let new_chain = build_new_version t old new_v in
    let succeeded, overwrote_link =
      if primcas t old new_chain then (true, is_link old)
      else
        match old with
        | Clink l when t.d.dmode = Ind_on_need ->
            (* The failure may be a shortcut racing us: the value did not
               change, only its representation; retry against the direct
               cell (Algorithm 5 lines 50-52). *)
            (primcas t l.ldirect new_chain, false)
        | Clink _ | Cval _ -> (false, false)
    in
    if succeeded then begin
      set_stamp t.d new_chain;
      (* Once per critical section, not per helper: the claim winner
         performs the retire notice and the truncation; lagging helpers
         skip them.  All helpers agree on [succeeded] (the primcas
         evidence is stable) and on [old]/[new_chain] (logged), so the
         claim point is position-aligned.  [shortcut] needs no gate: its
         side effects are already CAS-gated on the head, so at most one
         thread — helper or not — can claim a given splice.
         [Stamp.on_update] stays per-helper by design: timestamp traffic
         is the deliberately non-idempotent part (Theorem 6.2). *)
      let winner = Flock.Idem.claim () in
      (match old with
       | Clink l when overwrote_link -> if winner then Flock.retire l
       | Clink _ | Cval _ -> ());
      if is_link new_chain && t.d.dmode = Ind_on_need then shortcut t new_chain;
      if winner then truncate_chain t.d old;
      Stamp.on_update ();
      true
    end
    else begin
      (* The section's shared new cell (idempotently allocated, so the
         same for every helper) is dead; retire it exactly once. *)
      (match new_chain with
       | Clink l -> if Flock.Idem.claim () then Flock.retire l
       | Cval _ -> ());
      set_stamp t.d (Atomic.get t.head);
      false
    end
  end

let store t v = ignore (cas t (load t) v)

(* Direct store (Algorithm 6, store_norace): valid without write-write
   races.  The only competing writers on the head are shortcutters (for
   an indirect current version) and lagging helpers of this same store,
   both of which the CAS-from-expected handles. *)
let store_norace t new_v =
  let old = Flock.Idem.once (fun () -> Atomic.get t.head) in
  if t.d.dmode = Plain then begin
    let new_chain = Flock.Idem.once (fun () -> Cval new_v) in
    if Flock.Idem.in_frame () then ignore (Atomic.compare_and_set t.head old new_chain)
    else Atomic.set t.head new_chain
  end
  else begin
    set_stamp t.d old;
    let new_chain = build_new_version t old new_v in
    (* Claimed unconditionally (every helper reaches this point), then
       used to gate the per-section side effects below — see [cas]. *)
    let winner = Flock.Idem.claim () in
    (match old with
     | Clink l ->
         if primcas t old new_chain then (if winner then Flock.retire l)
         else ignore (Atomic.compare_and_set t.head l.ldirect new_chain)
     | Cval _ -> ignore (Atomic.compare_and_set t.head old new_chain));
    set_stamp t.d new_chain;
    if winner then truncate_chain t.d old;
    Stamp.on_update ();
    if is_link new_chain && t.d.dmode = Ind_on_need then shortcut t new_chain
  end

let store_locked t v =
  if Atomic.get use_direct_stores then store_norace t v else store t v

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let head_kind t =
  match Atomic.get t.head with
  | Clink _ -> `Indirect
  | Cval None -> `Nil
  | Cval (Some _) -> `Direct

(* Passive read for structure walkers (census roots): no set-stamp
   helping, no shortcutting, no snapshot semantics — observing must not
   perturb the mechanisms under observation. *)
let peek t = chain_value (Atomic.get t.head)

let unsafe_head t = Atomic.get t.head

let unsafe_meta_of t = t.d.meta_of

(* Diagnostic chain walks are capped like [chain_length]: a pinned
   snapshot can hold O(history) versions live, and an uncapped walk
   would turn a probe into an O(history) stall.  The cap is far above
   any healthy chain (these are test/experiment probes, not hot-path
   instruments); hitting it is reported through the [walk_saturations]
   counter and the [diag_walk_saturated] gauge so a truncated reading is
   never mistaken for a short chain. *)
let diag_walk_cap = 1024

let walk_saturated = Atomic.make 0

let walk_saturation_count () = Atomic.get walk_saturated

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "diag_walk_saturated" walk_saturation_count

let rec walk d chain depth oldest =
  if depth >= diag_walk_cap then begin
    Atomic.incr walk_saturated;
    (depth, oldest)
  end
  else
    match chain with
    | Cval None -> (depth, oldest)
    | Cval (Some o) ->
        let m = d.meta_of o in
        let s = Atomic.get m.stamp in
        if s = Stamp.tbd || s > Stamp.zero then walk d m.prev (depth + 1) s
        else (depth + 1, s)
    | Clink l ->
        let s = Atomic.get l.lmeta.stamp in
        if s = Stamp.tbd || s > Stamp.zero then walk d l.lmeta.prev (depth + 1) s
        else (depth + 1, s)

let version_depth t =
  if t.d.dmode = Plain then 1 else fst (walk t.d (Atomic.get t.head) 0 Stamp.zero)

let oldest_reachable_stamp t =
  if t.d.dmode = Plain then Stamp.zero else snd (walk t.d (Atomic.get t.head) 0 Stamp.zero)

(* Raw diagnostic description of a pointer's version chain. *)
let unsafe_describe t =
  let b = Buffer.create 64 in
  let rec chain c depth =
    if depth > 6 then Buffer.add_string b " ..."
    else
      match c with
      | Cval None -> Buffer.add_string b " Cval-None"
      | Cval (Some o) ->
          let m = t.d.meta_of o in
          Buffer.add_string b (Printf.sprintf " Cval(s=%d)" (Atomic.get m.stamp));
          chain m.prev (depth + 1)
      | Clink l ->
          Buffer.add_string b
            (Printf.sprintf " Clink(s=%d,v=%s)" (Atomic.get l.lmeta.stamp)
               (match l.lvalue with None -> "nil" | Some _ -> "obj"));
          chain l.lmeta.prev (depth + 1)
  in
  chain (Atomic.get t.head) 0;
  Buffer.contents b
