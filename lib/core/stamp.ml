type scheme = Query_ts | Update_ts | Hw_ts | Tl2_ts | Opt_ts | No_stamp

let scheme_name = function
  | Query_ts -> "QueryTS"
  | Update_ts -> "UpdateTS"
  | Hw_ts -> "HwTS"
  | Tl2_ts -> "TL2-TS"
  | Opt_ts -> "OptTS"
  | No_stamp -> "NoStamp"

let all_schemes = [ Query_ts; Update_ts; Hw_ts; Tl2_ts; Opt_ts; No_stamp ]

let tbd = -1

let zero = 0

(* The software clock starts at 1 so that [zero] is strictly below every
   stamp ever handed out. *)
let clock = Atomic.make 1

let current_scheme = Atomic.make Query_ts

let increment_successes = Atomic.make 0

let set_scheme s =
  Atomic.set current_scheme s;
  Atomic.set clock 1;
  Atomic.set increment_successes 0

let scheme () = Atomic.get current_scheme

let is_optimistic () = Atomic.get current_scheme == Opt_ts

let increments () = Atomic.get increment_successes

let read () =
  match Atomic.get current_scheme with
  | Hw_ts -> Hwclock.now ()
  | Query_ts | Update_ts | Tl2_ts | Opt_ts | No_stamp -> Atomic.get clock

(* Single-attempt increment, as in WBB+'s take_snapshot: a failed CAS means
   a concurrent operation already advanced the clock, which serves the same
   purpose. *)
let bump () =
  let s = Atomic.get clock in
  if Atomic.compare_and_set clock s (s + 1) then begin
    Atomic.incr increment_successes;
    Obs.emit Obs.ev_stamp_incr (s + 1)
  end

let bump_from s =
  if Atomic.compare_and_set clock s (s + 1) then begin
    Atomic.incr increment_successes;
    Obs.emit Obs.ev_stamp_incr (s + 1)
  end

(* A snapshot stamp must satisfy "clock strictly above the stamp before
   the snapshot's first read": any version installed afterwards is then
   stamped (by whoever helps) with a clock read strictly above the stamp,
   so it can never appear mid-snapshot.  Query_ts and Tl2_ts get this by
   returning the pre-increment value; Update_ts and Hw_ts, whose takers
   never increment, return one below the current clock — still at or
   above every completed update's stamp, because updates advance the
   clock past their own stamp before returning (Update_ts) or the
   hardware clock ticks on its own (Hw_ts).  No_stamp deliberately
   violates the invariant: it is the non-linearizable control. *)
let floor () =
  match Atomic.get current_scheme with
  | Hw_ts -> Hwclock.now () - 1
  | Update_ts -> Atomic.get clock - 1
  | Query_ts | Tl2_ts | Opt_ts | No_stamp -> Atomic.get clock

let take () =
  match Atomic.get current_scheme with
  | Hw_ts -> Hwclock.now () - 1
  | Update_ts -> Atomic.get clock - 1
  | No_stamp -> Atomic.get clock
  | Query_ts ->
      let s = Atomic.get clock in
      if Atomic.compare_and_set clock s (s + 1) then begin
        Atomic.incr increment_successes;
        Obs.emit Obs.ev_stamp_incr (s + 1)
      end;
      s
  | Tl2_ts ->
      (* TL2 GV4-style: if our increment loses the race, the winner's bump
         covers us; adopt the pre-bump value we can prove existed. *)
      let s = Atomic.get clock in
      if Atomic.compare_and_set clock s (s + 1) then begin
        Atomic.incr increment_successes;
        Obs.emit Obs.ev_stamp_incr (s + 1);
        s
      end
      else Atomic.get clock - 1
  | Opt_ts ->
      (* Pessimistic re-run path of Algorithm 7: bump, then read. *)
      bump ();
      Atomic.get clock - 1

let on_update () =
  match Atomic.get current_scheme with
  | Update_ts -> bump ()
  | Query_ts | Hw_ts | Tl2_ts | Opt_ts | No_stamp -> ()
