(** VERLIB — concurrent versioned pointers (Blelloch & Wei, PPoPP 2024),
    reproduced in OCaml.

    Quick tour (mirroring the paper's Algorithm 2 interface):

    {[
      (* a versioned object: embed metadata, the OCaml "inherit versioned" *)
      type node = { key : int; next : node Verlib.Vptr.t; meta : node Verlib.Vtypes.meta }

      let desc =
        Verlib.Vptr.make_desc ~meta_of:(fun n -> n.meta) ~mode:Verlib.Vptr.Ind_on_need

      (* atomic loads / stores / CAS on versioned pointers *)
      let v = Verlib.Vptr.load n.next

      (* a function f applied on an atomic snapshot *)
      let keys = Verlib.with_snapshot (fun () -> collect n)
    ]}

    The [Flock] library supplies the lock-free locks, idempotent atomics,
    idempotent allocation and epochs of the paper's companion interface
    ([flck::] in Algorithm 2). *)

module Stamp = Stamp
module Hwclock = Hwclock
module Vtypes = Vtypes
module Snapctx = Snapctx
module Done_stamp = Done_stamp
module Vptr = Vptr
module Snapshot = Snapshot
module Stats = Stats
module Obs = Obs
module Chainscan = Chainscan

let with_snapshot = Snapshot.with_snapshot

(** Reset global configuration to library defaults and clear statistics;
    used between experiment runs. *)
let reset ?(scheme = Stamp.Query_ts) ?(lock_mode = Flock.Lock.Lock_free)
    ?(direct_stores = true) () =
  Stamp.set_scheme scheme;
  Done_stamp.reset ();
  Flock.Lock.set_default_mode lock_mode;
  Vptr.set_direct_stores direct_stores;
  Stats.reset_all ();
  Obs.Span.reset ()
