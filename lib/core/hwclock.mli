(** Hardware timestamp source backing the HwTS scheme: [rdtsc] on x86,
    [CLOCK_MONOTONIC] elsewhere.  Values are positive, monotone and
    strictly above {!Stamp.zero}. *)

val now : unit -> int

val source : unit -> string
(** The clock backing {!now}: ["rdtsc"] when CPUID advertises an
    invariant TSC, ["monotonic"] when the stub fell back to
    [CLOCK_MONOTONIC] (non-x86, or a TSC that halts/scales and would
    make the µs calibration garbage). *)

val cycles_per_us : unit -> float
(** Hardware ticks per microsecond, calibrated once (~5 ms against
    [CLOCK_MONOTONIC]) and cached.  Intended for report/export paths,
    not for timed sections. *)

val to_us : int -> float
(** Convert a tick interval to microseconds using {!cycles_per_us}. *)
