(* verlib-obs — the observability layer of the reproduction.

   The paper's claims are mechanism claims (indirection avoided in the
   common case, links shortcut before snapshots need them, timestamp CAS
   contention bounded), and on a one-core box we verify mechanisms by
   counting and by distributions, not by raw Mops.  This module owns:

   - the instrument catalogue: latency / chain-length / dwell-time
     histograms layered on {!Flock.Telemetry.Hist};
   - the trace-event catalogue (codes, names, Chrome phases) for the
     per-domain rings in [Flock.Telemetry], plus the Chrome trace-event
     JSON exporter (load the file in Perfetto / chrome://tracing);
   - the cheap per-domain sampling ticks used by always-on instruments
     so the hot paths stay store-bounded;
   - [capture]: a structured report (counter totals + histogram
     summaries) the harness embeds in every driver result.

   Everything here follows the [Stats] quiescence contract: aggregate
   reads and resets are exact only between runs. *)

module Hist = Flock.Telemetry.Hist

(* Install the hardware clock as the trace timestamp source.  This
   module is a dependency of every instrumented call site, so the
   side effect runs before any event can be emitted. *)
let () = Flock.Telemetry.set_clock Hwclock.now

(* Resilience gauges: process-lifetime fault-injection totals ([Fault]
   sits below Flock and cannot register gauges itself).  The server and
   client wire layers register their own shed/retry gauges alongside. *)
let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "faults_fired" Fault.fired_total

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "faults_stalled" Fault.stalled_now

(* ------------------------------------------------------------------ *)
(* Event catalogue.  Verlib owns codes 1..31; Flock reserves 32..
   (see Flock.Telemetry).                                              *)

let ev_snap_begin = 1

let ev_snap_end = 2

let ev_snap_abort = 3

let ev_indirect_create = 4

let ev_shortcut = 5

let ev_truncate = 6

let ev_stamp_incr = 7

let ev_census = 8

let ev_census_violation = 9

type phase = Instant | Span_begin | Span_end

let describe code =
  if code = ev_snap_begin then ("snapshot", Span_begin)
  else if code = ev_snap_end then ("snapshot", Span_end)
  else if code = ev_snap_abort then ("snapshot_abort", Instant)
  else if code = ev_indirect_create then ("indirect_create", Instant)
  else if code = ev_shortcut then ("shortcut", Instant)
  else if code = ev_truncate then ("truncate", Instant)
  else if code = ev_stamp_incr then ("stamp_incr", Instant)
  else if code = ev_census then ("census", Instant)
  else if code = ev_census_violation then ("census_violation", Instant)
  else if code = Flock.Telemetry.ev_lock_acquire then ("lock_acquire", Instant)
  else if code = Flock.Telemetry.ev_lock_help then ("lock_help", Instant)
  else if code = Flock.Telemetry.ev_epoch_advance then ("epoch_advance", Instant)
  else ("ev" ^ string_of_int code, Instant)

let emit = Flock.Telemetry.emit

let set_tracing = Flock.Telemetry.set_tracing

let tracing_on = Flock.Telemetry.tracing_on

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)

(* Per-operation latencies in hardware ticks, recorded by the harness
   driver (sampled 1-in-N via splitmix; see Harness.Driver).           *)
let lat_find = Hist.make "lat_find_cycles"

let lat_insert = Hist.make "lat_insert_cycles"

let lat_delete = Hist.make "lat_delete_cycles"

let lat_range = Hist.make "lat_range_cycles"

let lat_multifind = Hist.make "lat_multifind_cycles"

(* Version-chain length observed at truncation/shortcut time — the
   quantity the multiversion-GC line of work bounds.                   *)
let chain_len = Hist.make "chain_len"

(* Wall time spent inside [with_snapshot], in hardware ticks.          *)
let snap_dwell = Hist.make "snap_dwell_cycles"

(* ------------------------------------------------------------------ *)
(* Cheap per-domain sampling for always-on instruments: one private
   counter per (domain, instrument), no RNG on the hot path.           *)

let tick_stride = 16

let ticks = Array.make (Flock.Registry.max_slots * tick_stride) 0

let sample_tick ~off ~mask =
  let i = (Flock.Registry.my_id () * tick_stride) + off in
  let v = ticks.(i) + 1 in
  ticks.(i) <- v;
  v land mask = 0

(* 1-in-16 each. *)
let chain_sample () = sample_tick ~off:0 ~mask:15

let dwell_sample () = sample_tick ~off:1 ~mask:15

(* ------------------------------------------------------------------ *)
(* Request spans                                                       *)

(* One span per served request, decomposed into named phases.  The
   accounting is EXCLUSIVE: a span keeps a stack of open phases and
   every tick between two transitions is booked to the phase on top, so
   nested attributions (a snapshot inside an op, a per-shard fan-out
   call inside a snapshot, an injected stall inside anything) subtract
   from their parent instead of double-counting — which is what makes
   [sum over phases <= end - begin] hold by construction, the property
   the loadgen's RTT-vs-phase-sum join relies on.

   The current span is registry-slot-private (the [ticks] discipline
   above): instrumented call sites ([Snapshot.with_snapshot],
   [Dstruct.Sharded]'s fan-out, the [Fault] blocking observer) attribute
   into whatever span their domain currently carries, and are single
   atomic-load no-ops when no span exists anywhere in the process. *)

module Span = struct
  type phase =
    | Accept  (** accept() to handoff-queue push *)
    | Queue  (** handoff-queue dwell until a worker popped the fd *)
    | Parse  (** wire line to command *)
    | Shed  (** admission-control evaluation (terminal when shed) *)
    | Route  (** per-shard fan-out work ([Dstruct.Sharded] sub-calls) *)
    | Snapshot  (** inside [with_snapshot], net of nested phases *)
    | Op  (** structure execution, net of nested phases *)
    | Reply  (** reply rendering *)
    | Stall  (** injected fault stalls ([Fault] blocking actions) *)
    | Validate  (** transaction read-set validation ([Txn]) *)
    | Install  (** transaction write install + stripe release ([Txn]) *)

  let nphases = 11

  let phase_index = function
    | Accept -> 0
    | Queue -> 1
    | Parse -> 2
    | Shed -> 3
    | Route -> 4
    | Snapshot -> 5
    | Op -> 6
    | Reply -> 7
    | Stall -> 8
    | Validate -> 9
    | Install -> 10

  let phase_names =
    [| "accept"; "queue"; "parse"; "shed"; "route"; "snapshot"; "op"; "reply";
       "stall"; "validate"; "install" |]

  let phase_name p = phase_names.(phase_index p)

  let phases =
    [ Accept; Queue; Parse; Shed; Route; Snapshot; Op; Reply; Stall;
      Validate; Install ]

  let phase_of_name n =
    List.find_opt (fun p -> phase_name p = n) phases

  type t = {
    mutable sp_trace_id : int;  (** 0 = untraced *)
    mutable sp_cmd : string;
    mutable sp_begin : int;  (** ticks *)
    mutable sp_end : int;  (** 0 until finished *)
    sp_phase : int array;  (** accumulated ticks per phase index *)
    mutable sp_fanout : int;  (** per-shard sub-calls performed *)
    mutable sp_outcome : string;  (** ok | shed | error | killed *)
    mutable sp_stack : int list;  (** open phase indices, top first *)
    mutable sp_last : int;  (** tick of the last transition *)
    mutable sp_slot : int;
  }

  (* Cheap global gate: instrumented hot paths shared with the
     in-process harness (snapshots, sharded fan-out) pay one atomic load
     while no span has ever been started in this process. *)
  let any = Atomic.make false

  let current_by_slot : t option array =
    Array.make Flock.Registry.max_slots None

  (* Per-domain rings of recently finished spans, for the flight
     recorder and the Chrome exporter.  Slot-private writes; cross-
     domain reads are approximate (same contract as the histograms). *)
  let ring_capacity = 64

  let rings : t option array array =
    Array.init Flock.Registry.max_slots (fun _ -> Array.make ring_capacity None)

  let ring_cursors = Array.make Flock.Registry.max_slots 0

  (* Phase-latency histograms (ticks; the [_cycles] suffix makes every
     report render them in µs) plus whole-request latency. *)
  let phase_hists =
    Array.map (fun n -> Hist.make ("phase_" ^ n ^ "_cycles")) phase_names

  let span_total = Hist.make "span_total_cycles"

  let phase_hist p = phase_hists.(phase_index p)

  let current () = current_by_slot.(Flock.Registry.my_id ())

  let start ?(trace_id = 0) ?begin_ticks ~cmd () =
    if not (Atomic.get any) then Atomic.set any true;
    let slot = Flock.Registry.my_id () in
    let now = Hwclock.now () in
    let b = match begin_ticks with Some t when t > 0 -> t | _ -> now in
    let sp =
      {
        sp_trace_id = trace_id;
        sp_cmd = cmd;
        sp_begin = b;
        sp_end = 0;
        sp_phase = Array.make nphases 0;
        sp_fanout = 0;
        sp_outcome = "ok";
        sp_stack = [];
        sp_last = now;
        sp_slot = slot;
      }
    in
    current_by_slot.(slot) <- Some sp;
    sp

  let set_cmd sp cmd = sp.sp_cmd <- cmd

  let set_trace_id sp id = sp.sp_trace_id <- id

  (* Book the segment since the last transition to the open phase. *)
  let account sp now =
    (match sp.sp_stack with
     | p :: _ -> sp.sp_phase.(p) <- sp.sp_phase.(p) + max 0 (now - sp.sp_last)
     | [] -> ());
    sp.sp_last <- now

  let enter_sp sp p =
    account sp (Hwclock.now ());
    sp.sp_stack <- phase_index p :: sp.sp_stack

  let leave_sp sp =
    account sp (Hwclock.now ());
    match sp.sp_stack with [] -> () | _ :: rest -> sp.sp_stack <- rest

  let enter p = match current () with None -> () | Some sp -> enter_sp sp p

  let leave () = match current () with None -> () | Some sp -> leave_sp sp

  let in_phase p f =
    if not (Atomic.get any) then f ()
    else
      match current () with
      | None -> f ()
      | Some sp ->
          enter_sp sp p;
          Fun.protect ~finally:(fun () -> leave_sp sp) f

  let add p ticks =
    match current () with
    | None -> ()
    | Some sp ->
        let i = phase_index p in
        sp.sp_phase.(i) <- sp.sp_phase.(i) + max 0 ticks

  let add_to sp p ticks =
    let i = phase_index p in
    sp.sp_phase.(i) <- sp.sp_phase.(i) + max 0 ticks

  let note_fanout () =
    if Atomic.get any then
      match current () with
      | None -> ()
      | Some sp -> sp.sp_fanout <- sp.sp_fanout + 1

  let finish ?(outcome = "ok") sp =
    let now = Hwclock.now () in
    account sp now;
    sp.sp_stack <- [];
    sp.sp_end <- now;
    sp.sp_outcome <- outcome;
    Hist.observe span_total (now - sp.sp_begin);
    Array.iteri
      (fun i v -> if v > 0 then Hist.observe phase_hists.(i) v)
      sp.sp_phase;
    let slot = sp.sp_slot in
    let cur = ring_cursors.(slot) in
    rings.(slot).(cur mod ring_capacity) <- Some sp;
    ring_cursors.(slot) <- cur + 1;
    (match current_by_slot.(slot) with
     | Some c when c == sp -> current_by_slot.(slot) <- None
     | Some _ | None -> ())

  let abandon sp =
    let slot = sp.sp_slot in
    match current_by_slot.(slot) with
    | Some c when c == sp -> current_by_slot.(slot) <- None
    | Some _ | None -> ()

  let total_ticks sp = if sp.sp_end = 0 then 0 else sp.sp_end - sp.sp_begin

  let phase_ticks sp p = sp.sp_phase.(phase_index p)

  (* All finished spans currently retained, oldest first per slot.
     Approximate under concurrent writers (the flight-recorder
     contract). *)
  let recent () =
    let acc = ref [] in
    for slot = Flock.Registry.max_slots - 1 downto 0 do
      let cur = ring_cursors.(slot) in
      if cur > 0 then begin
        let n = min cur ring_capacity in
        for i = n - 1 downto 0 do
          match rings.(slot).((cur - 1 - i) mod ring_capacity) with
          | Some sp when sp.sp_end > 0 -> acc := sp :: !acc
          | Some _ | None -> ()
        done
      end
    done;
    List.rev !acc

  let reset () =
    Array.iteri
      (fun slot ring ->
        Array.fill ring 0 (Array.length ring) None;
        ring_cursors.(slot) <- 0)
      rings
end

(* Attribute injected blocking faults (pause / stall / yield storms) to
   the current request span's [stall] phase — this is what makes a chaos
   plan legible in a request trace ("the op was fine; the stall was
   injected") instead of a mystery-slow op phase.  The same bracket
   publishes a [stall] activity frame so the sampling profiler sees the
   parked domain even where no span exists (e.g. harness workers). *)
let stall_activity = Flock.Telemetry.Activity.intern "stall"

let () =
  Fault.set_blocking_observer (fun f ->
      Span.in_phase Span.Stall (fun () ->
          if Flock.Telemetry.Activity.on () then begin
            Flock.Telemetry.Activity.set Flock.Telemetry.Activity.dim_stall
              stall_activity;
            Fun.protect
              ~finally:(fun () ->
                Flock.Telemetry.Activity.set
                  Flock.Telemetry.Activity.dim_stall 0)
              f
          end
          else f ()))

(* ------------------------------------------------------------------ *)
(* GC / allocation telemetry                                           *)

(* Per-domain [Gc.quick_stat] absolutes published into
   [Flock.Telemetry.Gcstat] slots by worker loops (amortized); these
   gauges fold the sums into every STATS / METRICS / report capture.
   Version-chain growth is fundamentally a memory story — reclamation
   tuning needs allocation visible next to the chain census. *)
let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "gc_minor_words" Flock.Telemetry.Gcstat.minor_words

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "gc_promoted_words"
    Flock.Telemetry.Gcstat.promoted_words

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "gc_major_words" Flock.Telemetry.Gcstat.major_words

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "gc_minor_collections"
    Flock.Telemetry.Gcstat.minor_collections

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "gc_major_collections"
    Flock.Telemetry.Gcstat.major_collections

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "gc_heap_words" Flock.Telemetry.Gcstat.heap_words

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "gc_alloc_bytes" Flock.Telemetry.Gcstat.alloc_bytes

(* 1 when timestamps come from the invariant TSC; reports carry the
   string form as [clock_source]. *)
let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "clock_is_tsc" (fun () ->
      if Hwclock.source () = "rdtsc" then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Continuous sampling profiler                                        *)

(* The read side of [Flock.Telemetry.Activity]: a sampler domain ticks
   at a configurable rate and, for every registry slot with any
   published activity, folds one weighted stack

     domain-<slot>;<op>;<span phase>;<lock frame>[;stall]

   into an accumulation table.  Workers pay plain stores (gated on one
   atomic load) to publish; all sampling cost lives on the sampler.
   Exports: collapsed-stack text (flamegraph.pl / speedscope), a JSON
   snapshot (the PROFILE wire command), and per-slot "current activity"
   lines for dashboards. *)

module Profile = struct
  module A = Flock.Telemetry.Activity

  let default_hz = 97

  let mutex = Mutex.create ()

  let table : (string, int ref) Hashtbl.t = Hashtbl.create 512

  let samples = Atomic.make 0

  let running_a = Atomic.make false

  let hz_a = Atomic.make 0

  let sampler : unit Domain.t option ref = ref None

  (* Last sampled stack per slot; plain writes by the sampler, racy
     reads by dashboards. *)
  let last_stack = Array.make Flock.Registry.max_slots ""

  let running () = Atomic.get running_a

  let hz () = Atomic.get hz_a

  let samples_total () = Atomic.get samples

  (* Compose one collapsed stack for a slot, "" when idle.  Reads of
     another domain's span record are racy by design (same contract as
     every cross-slot read in the stack). *)
  let stack_of_slot slot =
    let span = Span.current_by_slot.(slot) in
    let op =
      match A.name_of (A.get slot A.dim_op) with
      | "" -> (
          match span with
          | Some sp when sp.Span.sp_cmd <> "" -> sp.Span.sp_cmd
          | _ -> "")
      | s -> s
    in
    let phase =
      match span with
      | Some sp -> (
          match sp.Span.sp_stack with
          | p :: _ when p >= 0 && p < Span.nphases -> Span.phase_names.(p)
          | _ -> "")
      | None -> ""
    in
    let hold = A.name_of (A.get slot A.dim_lock_hold) in
    let wait = A.name_of (A.get slot A.dim_lock_wait) in
    let stall = A.name_of (A.get slot A.dim_stall) in
    if op = "" && phase = "" && hold = "" && wait = "" && stall = "" then ""
    else begin
      let b = Buffer.create 64 in
      Buffer.add_string b "domain-";
      Buffer.add_string b (string_of_int slot);
      let frame s =
        if s <> "" then begin
          Buffer.add_char b ';';
          Buffer.add_string b s
        end
      in
      frame op;
      frame phase;
      frame hold;
      (if wait <> "" then frame ("wait:" ^ wait));
      frame stall;
      Buffer.contents b
    end

  let sample_once () =
    for slot = 0 to Flock.Registry.max_slots - 1 do
      let s = stack_of_slot slot in
      last_stack.(slot) <- s;
      if s <> "" then begin
        Mutex.lock mutex;
        (match Hashtbl.find_opt table s with
         | Some r -> incr r
         | None -> Hashtbl.add table s (ref 1));
        Mutex.unlock mutex;
        Atomic.incr samples
      end
    done

  let start ?(hz = default_hz) () =
    Mutex.lock mutex;
    let spawn = not (Atomic.get running_a) in
    if spawn then begin
      Atomic.set running_a true;
      Atomic.set hz_a (max 1 hz);
      A.set_enabled true
    end;
    Mutex.unlock mutex;
    if spawn then begin
      let period = 1. /. float_of_int (max 1 hz) in
      let d =
        Domain.spawn (fun () ->
            while Atomic.get running_a do
              sample_once ();
              Thread.delay period
            done)
      in
      sampler := Some d
    end

  let stop () =
    if Atomic.get running_a then begin
      Atomic.set running_a false;
      (match !sampler with
       | Some d ->
           sampler := None;
           Domain.join d
       | None -> ());
      A.set_enabled false
    end

  let reset () =
    Mutex.lock mutex;
    Hashtbl.reset table;
    Mutex.unlock mutex;
    Atomic.set samples 0;
    Array.fill last_stack 0 (Array.length last_stack) ""

  (* Accumulated stacks, heaviest first. *)
  let stacks () =
    Mutex.lock mutex;
    let l = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) table [] in
    Mutex.unlock mutex;
    List.sort (fun (_, a) (_, b) -> compare b a) l

  (* Per-slot activity as last sampled, for dashboards. *)
  let activity () =
    let acc = ref [] in
    for slot = Flock.Registry.max_slots - 1 downto 0 do
      if last_stack.(slot) <> "" then acc := (slot, last_stack.(slot)) :: !acc
    done;
    !acc

  (* flamegraph.pl / speedscope collapsed-stack text: "frames count". *)
  let collapsed () =
    let b = Buffer.create 4096 in
    List.iter
      (fun (s, n) ->
        Buffer.add_string b s;
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int n);
        Buffer.add_char b '\n')
      (stacks ());
    Buffer.contents b

  let write_collapsed path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (collapsed ()))

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 32 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* JSON profile snapshot: the PROFILE wire payload.  [window_ms > 0]
     sleeps the calling thread for the window and reports the stack
     deltas accumulated inside it (clamped to 5 s — this runs on a
     server worker). *)
  let json ?(window_ms = 0) () =
    let base =
      if window_ms > 0 then begin
        let snap = stacks () and s0 = samples_total () in
        Thread.delay (min 5.0 (float_of_int window_ms /. 1000.));
        Some (snap, s0)
      end
      else None
    in
    let cur = stacks () in
    let stacks_out, nsamples, window_ms =
      match base with
      | None -> (cur, samples_total (), 0)
      | Some (snap, s0) ->
          let d =
            List.filter_map
              (fun (k, n) ->
                let n0 =
                  match List.assoc_opt k snap with Some n0 -> n0 | None -> 0
                in
                if n - n0 > 0 then Some (k, n - n0) else None)
              cur
          in
          ( List.sort (fun (_, a) (_, b) -> compare b a) d,
            samples_total () - s0,
            window_ms )
    in
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"clock_source\":\"%s\",\"running\":%b,\"hz\":%d,\"samples\":%d,\
          \"window_ms\":%d"
         (Hwclock.source ()) (running ()) (hz ()) nsamples window_ms);
    Buffer.add_string b ",\"stacks\":[";
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    List.iteri
      (fun i (s, n) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"stack\":\"%s\",\"count\":%d}" (json_escape s) n))
      (take 200 stacks_out);
    Buffer.add_string b "],\"activity\":[";
    List.iteri
      (fun i (slot, s) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"slot\":%d,\"stack\":\"%s\"}" slot (json_escape s)))
      (activity ());
    Buffer.add_string b "],\"lock_sites\":[";
    List.iteri
      (fun i sm ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "{\"site\":\"%s\",\"acquires\":%d,\"contended\":%d,\
              \"wait_us\":%.1f,\"helps\":%d,\"edges\":["
             (json_escape sm.Flock.Lock.sm_site)
             sm.Flock.Lock.sm_acquires sm.Flock.Lock.sm_contended
             (Hwclock.to_us sm.Flock.Lock.sm_wait_cycles)
             sm.Flock.Lock.sm_helps);
        List.iteri
          (fun j (holder, waits) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "{\"holder\":%d,\"waits\":%d}" holder waits))
          sm.Flock.Lock.sm_edges;
        Buffer.add_string b "]}")
      (Flock.Lock.site_summaries ());
    Buffer.add_string b
      (Printf.sprintf
         "],\"gc\":{\"minor_words\":%d,\"promoted_words\":%d,\
          \"major_words\":%d,\"minor_collections\":%d,\
          \"major_collections\":%d,\"heap_words\":%d,\"alloc_bytes\":%d}}"
         (Flock.Telemetry.Gcstat.minor_words ())
         (Flock.Telemetry.Gcstat.promoted_words ())
         (Flock.Telemetry.Gcstat.major_words ())
         (Flock.Telemetry.Gcstat.minor_collections ())
         (Flock.Telemetry.Gcstat.major_collections ())
         (Flock.Telemetry.Gcstat.heap_words ())
         (Flock.Telemetry.Gcstat.alloc_bytes ()));
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Structured report                                                   *)

type report = {
  counters : (string * int) list;  (** every [Stats] counter, by name *)
  hists : Hist.summary list;  (** every registered histogram *)
  gauges : (string * int) list;
      (** every [Flock.Telemetry.Gauge], read at capture time *)
}

let capture () =
  {
    counters =
      List.map (fun c -> (Stats.name c, Stats.total c)) (Stats.all ())
      @ [ ("lock_helps", Flock.Lock.help_count ()) ];
    hists = List.map Hist.summary (Hist.all ());
    gauges = Flock.Telemetry.Gauge.capture ();
  }

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)

(* Emit one complete JSON trace usable in Perfetto / chrome://tracing:
   snapshot begin/end become "B"/"E" duration events, everything else
   an instant ("i").  Per-domain streams are emitted in ring order
   (which is timestamp order — the clock is globally monotone), with
   two repairs for ring wrap-around: unmatched "E" at the head of a
   stream are dropped and unmatched "B" at the tail are closed at the
   stream's last timestamp, so the file always balances. *)
let export_trace path =
  let cpus = Hwclock.cycles_per_us () in
  let slots = List.init Flock.Registry.max_slots Fun.id in
  let streams =
    List.filter_map
      (fun i ->
        match Flock.Telemetry.events_of_slot i with
        | [] -> None
        | evs -> Some (i, evs))
      slots
  in
  let spans = Span.recent () in
  let base =
    List.fold_left
      (fun acc (_, evs) ->
        List.fold_left (fun acc (ts, _, _) -> min acc ts) acc evs)
      max_int streams
  in
  let base =
    List.fold_left (fun acc sp -> min acc sp.Span.sp_begin) base spans
  in
  let base = if base = max_int then 0 else base in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let add_event ~name ~ph ~tid ~ts_us ~arg =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":%S,\"cat\":\"verlib\",\"ph\":%S,\"pid\":1,\"tid\":%d,\"ts\":%.3f"
         name ph tid ts_us);
    if ph = "i" then Buffer.add_string buf ",\"s\":\"t\"";
    (match arg with
     | None -> ()
     | Some v -> Buffer.add_string buf (Printf.sprintf ",\"args\":{\"v\":%d}" v));
    Buffer.add_char buf '}'
  in
  List.iter
    (fun (tid, evs) ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
           tid tid);
      let depth = ref 0 in
      let last_ts = ref 0. in
      List.iter
        (fun (ts, code, arg) ->
          let name, kind = describe code in
          let ts_us = Float.of_int (ts - base) /. cpus in
          last_ts := ts_us;
          match kind with
          | Span_begin ->
              incr depth;
              add_event ~name ~ph:"B" ~tid ~ts_us ~arg:(Some arg)
          | Span_end ->
              (* A span whose begin fell off the ring: drop the end. *)
              if !depth > 0 then begin
                decr depth;
                add_event ~name ~ph:"E" ~tid ~ts_us ~arg:None
              end
          | Instant -> add_event ~name ~ph:"i" ~tid ~ts_us ~arg:(Some arg))
        evs;
      (* Close spans left open (export raced no one — the domain simply
         stopped emitting, e.g. the ring wrapped past the end event). *)
      while !depth > 0 do
        decr depth;
        add_event ~name:"snapshot" ~ph:"E" ~tid ~ts_us:!last_ts ~arg:None
      done;
      let dropped = Flock.Telemetry.dropped_of_slot tid in
      if dropped > 0 then
        add_event ~name:"ring_dropped" ~ph:"i" ~tid ~ts_us:!last_ts
          ~arg:(Some dropped))
    streams;
  (* Finished request spans ride along as "X" complete events on their
     own track family ([requests-domain-N]), with the exclusive
     per-phase breakdown in µs as args — one row per served request,
     next to the instrument stream of the domain that served it. *)
  let span_tids = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let tid = 1000 + sp.Span.sp_slot in
      if not (Hashtbl.mem span_tids tid) then begin
        Hashtbl.add span_tids tid ();
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"requests-domain-%d\"}}"
             tid sp.Span.sp_slot)
      end;
      let ts_us = Float.of_int (sp.Span.sp_begin - base) /. cpus in
      let dur_us = Float.of_int (Span.total_ticks sp) /. cpus in
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"cat\":\"request\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace_id\":%d,\"outcome\":%S,\"fanout\":%d"
           sp.Span.sp_cmd tid ts_us dur_us sp.Span.sp_trace_id
           sp.Span.sp_outcome sp.Span.sp_fanout);
      Array.iteri
        (fun i v ->
          if v > 0 then
            Buffer.add_string buf
              (Printf.sprintf ",\"%s_us\":%.3f" Span.phase_names.(i)
                 (Float.of_int v /. cpus)))
        sp.Span.sp_phase;
      Buffer.add_string buf "}}")
    spans;
  Buffer.add_string buf "]}";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf);
  List.length streams + Hashtbl.length span_tids
