(* verlib-obs — the observability layer of the reproduction.

   The paper's claims are mechanism claims (indirection avoided in the
   common case, links shortcut before snapshots need them, timestamp CAS
   contention bounded), and on a one-core box we verify mechanisms by
   counting and by distributions, not by raw Mops.  This module owns:

   - the instrument catalogue: latency / chain-length / dwell-time
     histograms layered on {!Flock.Telemetry.Hist};
   - the trace-event catalogue (codes, names, Chrome phases) for the
     per-domain rings in [Flock.Telemetry], plus the Chrome trace-event
     JSON exporter (load the file in Perfetto / chrome://tracing);
   - the cheap per-domain sampling ticks used by always-on instruments
     so the hot paths stay store-bounded;
   - [capture]: a structured report (counter totals + histogram
     summaries) the harness embeds in every driver result.

   Everything here follows the [Stats] quiescence contract: aggregate
   reads and resets are exact only between runs. *)

module Hist = Flock.Telemetry.Hist

(* Install the hardware clock as the trace timestamp source.  This
   module is a dependency of every instrumented call site, so the
   side effect runs before any event can be emitted. *)
let () = Flock.Telemetry.set_clock Hwclock.now

(* Resilience gauges: process-lifetime fault-injection totals ([Fault]
   sits below Flock and cannot register gauges itself).  The server and
   client wire layers register their own shed/retry gauges alongside. *)
let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "faults_fired" Fault.fired_total

let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "faults_stalled" Fault.stalled_now

(* ------------------------------------------------------------------ *)
(* Event catalogue.  Verlib owns codes 1..31; Flock reserves 32..
   (see Flock.Telemetry).                                              *)

let ev_snap_begin = 1

let ev_snap_end = 2

let ev_snap_abort = 3

let ev_indirect_create = 4

let ev_shortcut = 5

let ev_truncate = 6

let ev_stamp_incr = 7

let ev_census = 8

let ev_census_violation = 9

type phase = Instant | Span_begin | Span_end

let describe code =
  if code = ev_snap_begin then ("snapshot", Span_begin)
  else if code = ev_snap_end then ("snapshot", Span_end)
  else if code = ev_snap_abort then ("snapshot_abort", Instant)
  else if code = ev_indirect_create then ("indirect_create", Instant)
  else if code = ev_shortcut then ("shortcut", Instant)
  else if code = ev_truncate then ("truncate", Instant)
  else if code = ev_stamp_incr then ("stamp_incr", Instant)
  else if code = ev_census then ("census", Instant)
  else if code = ev_census_violation then ("census_violation", Instant)
  else if code = Flock.Telemetry.ev_lock_acquire then ("lock_acquire", Instant)
  else if code = Flock.Telemetry.ev_lock_help then ("lock_help", Instant)
  else if code = Flock.Telemetry.ev_epoch_advance then ("epoch_advance", Instant)
  else ("ev" ^ string_of_int code, Instant)

let emit = Flock.Telemetry.emit

let set_tracing = Flock.Telemetry.set_tracing

let tracing_on = Flock.Telemetry.tracing_on

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)

(* Per-operation latencies in hardware ticks, recorded by the harness
   driver (sampled 1-in-N via splitmix; see Harness.Driver).           *)
let lat_find = Hist.make "lat_find_cycles"

let lat_insert = Hist.make "lat_insert_cycles"

let lat_delete = Hist.make "lat_delete_cycles"

let lat_range = Hist.make "lat_range_cycles"

let lat_multifind = Hist.make "lat_multifind_cycles"

(* Version-chain length observed at truncation/shortcut time — the
   quantity the multiversion-GC line of work bounds.                   *)
let chain_len = Hist.make "chain_len"

(* Wall time spent inside [with_snapshot], in hardware ticks.          *)
let snap_dwell = Hist.make "snap_dwell_cycles"

(* ------------------------------------------------------------------ *)
(* Cheap per-domain sampling for always-on instruments: one private
   counter per (domain, instrument), no RNG on the hot path.           *)

let tick_stride = 16

let ticks = Array.make (Flock.Registry.max_slots * tick_stride) 0

let sample_tick ~off ~mask =
  let i = (Flock.Registry.my_id () * tick_stride) + off in
  let v = ticks.(i) + 1 in
  ticks.(i) <- v;
  v land mask = 0

(* 1-in-16 each. *)
let chain_sample () = sample_tick ~off:0 ~mask:15

let dwell_sample () = sample_tick ~off:1 ~mask:15

(* ------------------------------------------------------------------ *)
(* Structured report                                                   *)

type report = {
  counters : (string * int) list;  (** every [Stats] counter, by name *)
  hists : Hist.summary list;  (** every registered histogram *)
  gauges : (string * int) list;
      (** every [Flock.Telemetry.Gauge], read at capture time *)
}

let capture () =
  {
    counters =
      List.map (fun c -> (Stats.name c, Stats.total c)) (Stats.all ())
      @ [ ("lock_helps", Flock.Lock.help_count ()) ];
    hists = List.map Hist.summary (Hist.all ());
    gauges = Flock.Telemetry.Gauge.capture ();
  }

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)

(* Emit one complete JSON trace usable in Perfetto / chrome://tracing:
   snapshot begin/end become "B"/"E" duration events, everything else
   an instant ("i").  Per-domain streams are emitted in ring order
   (which is timestamp order — the clock is globally monotone), with
   two repairs for ring wrap-around: unmatched "E" at the head of a
   stream are dropped and unmatched "B" at the tail are closed at the
   stream's last timestamp, so the file always balances. *)
let export_trace path =
  let cpus = Hwclock.cycles_per_us () in
  let slots = List.init Flock.Registry.max_slots Fun.id in
  let streams =
    List.filter_map
      (fun i ->
        match Flock.Telemetry.events_of_slot i with
        | [] -> None
        | evs -> Some (i, evs))
      slots
  in
  let base =
    List.fold_left
      (fun acc (_, evs) ->
        List.fold_left (fun acc (ts, _, _) -> min acc ts) acc evs)
      max_int streams
  in
  let base = if base = max_int then 0 else base in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let add_event ~name ~ph ~tid ~ts_us ~arg =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":%S,\"cat\":\"verlib\",\"ph\":%S,\"pid\":1,\"tid\":%d,\"ts\":%.3f"
         name ph tid ts_us);
    if ph = "i" then Buffer.add_string buf ",\"s\":\"t\"";
    (match arg with
     | None -> ()
     | Some v -> Buffer.add_string buf (Printf.sprintf ",\"args\":{\"v\":%d}" v));
    Buffer.add_char buf '}'
  in
  List.iter
    (fun (tid, evs) ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
           tid tid);
      let depth = ref 0 in
      let last_ts = ref 0. in
      List.iter
        (fun (ts, code, arg) ->
          let name, kind = describe code in
          let ts_us = Float.of_int (ts - base) /. cpus in
          last_ts := ts_us;
          match kind with
          | Span_begin ->
              incr depth;
              add_event ~name ~ph:"B" ~tid ~ts_us ~arg:(Some arg)
          | Span_end ->
              (* A span whose begin fell off the ring: drop the end. *)
              if !depth > 0 then begin
                decr depth;
                add_event ~name ~ph:"E" ~tid ~ts_us ~arg:None
              end
          | Instant -> add_event ~name ~ph:"i" ~tid ~ts_us ~arg:(Some arg))
        evs;
      (* Close spans left open (export raced no one — the domain simply
         stopped emitting, e.g. the ring wrapped past the end event). *)
      while !depth > 0 do
        decr depth;
        add_event ~name:"snapshot" ~ph:"E" ~tid ~ts_us:!last_ts ~arg:None
      done;
      let dropped = Flock.Telemetry.dropped_of_slot tid in
      if dropped > 0 then
        add_event ~name:"ring_dropped" ~ph:"i" ~tid ~ts_us:!last_ts
          ~arg:(Some dropped))
    streams;
  Buffer.add_string buf "]}";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf);
  List.length streams
