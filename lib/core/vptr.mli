(** Versioned pointers — the paper's central abstraction.

    A ['a t] behaves like an atomic mutable location holding a ['a option]
    (a nullable pointer to a versioned object), and additionally lets
    {!Snapshot.with_snapshot} readers observe the value the location held
    at their snapshot's timestamp.

    Objects stored through versioned pointers must embed version metadata
    — the OCaml rendering of "inheriting [verlib::versioned]": give each
    object a [Vtypes.meta] field created with {!Vtypes.fresh_meta} and
    describe the containing structure once with {!make_desc}.

    The library restriction from §5 applies: after allocating an object, a
    pointer to it must first be published through a versioned pointer
    [store]/[cas]; no side channel may leak it to other threads earlier.

    Inside lock-free critical sections ({!Flock.Lock}) all operations are
    idempotence-aware: loads are logged, CAS follows the paper's Theorem
    6.1 construction, and timestamp accesses are deliberately
    non-idempotent (Theorem 6.2).  Snapshot {e reads} must not run inside
    critical sections (queries take no locks in all the paper's data
    structures). *)

type mode =
  | Indirect  (** baseline WBB+ (Algorithm 4): every version is a link *)
  | No_shortcut  (** indirection-on-need without shortcutting (ablation) *)
  | Ind_on_need  (** full §5 algorithm — the library default *)
  | Rec_once
      (** never indirect; sound only for recorded-once structures, like the
          WBB+ experiments *)
  | Plain  (** non-versioned baseline; snapshot reads are not atomic *)

val mode_name : mode -> string

val all_modes : mode list

type 'a desc
(** Per-structure description: how to reach an object's metadata, and
    which mode the structure runs in. *)

val make_desc : meta_of:('a -> 'a Vtypes.meta) -> mode:mode -> 'a desc

val mode : 'a desc -> mode

type 'a t

val make : 'a desc -> 'a option -> 'a t
(** Create a versioned pointer.  If the initial object's metadata is
    unclaimed it is claimed with the zero stamp; if it is already claimed
    the metadata is shared, which §5 shows is safe for initialisation. *)

val desc : 'a t -> 'a desc

val load : 'a t -> 'a option
(** Current value; inside [with_snapshot], the value as of the snapshot's
    stamp.  Constant time outside snapshots; inside, proportional to the
    number of concurrent updates to this location. *)

val cas : 'a t -> 'a option -> 'a option -> bool
(** [cas t expected v] — atomic compare-and-swap on the location, comparing
    pointees physically.  Linearizable even under helping (Theorem 6.1). *)

val store : 'a t -> 'a option -> unit
(** [store t v] = [cas t (load t) v] as in the paper: concurrent stores to
    the same location do not necessarily linearize. *)

val store_norace : 'a t -> 'a option -> unit
(** Direct store (Algorithm 6), valid only when the caller excludes
    write-write races, e.g. under a lock. *)

val store_locked : 'a t -> 'a option -> unit
(** [store_norace] or [store] according to {!set_direct_stores} — the
    switch behind the paper's "Direct Stores" ablation. *)

val set_direct_stores : bool -> unit

val direct_stores : unit -> bool

(** {2 Introspection (tests and experiments)} *)

val head_kind : 'a t -> [ `Direct | `Indirect | `Nil ]

val peek : 'a t -> 'a option
(** Current value without any side effect: no set-stamp helping, no
    shortcutting, no snapshot semantics.  The passive read used by
    structure walkers ({!Chainscan} roots) that must not perturb the
    mechanisms they observe. *)

val unsafe_head : 'a t -> 'a Vtypes.chain
(** Raw head chain cell, for {!Chainscan}'s census walk.  Racy by
    nature; see [Vtypes] for which fields are safe to read. *)

val unsafe_meta_of : 'a t -> 'a -> 'a Vtypes.meta
(** The metadata accessor of the pointer's descriptor (for chain
    walks). *)

val version_depth : 'a t -> int
(** Number of versions currently reachable from the head (racy walk,
    capped at {!diag_walk_cap}; a capped result is counted by
    {!walk_saturation_count} and the [diag_walk_saturated] gauge). *)

val oldest_reachable_stamp : 'a t -> int
(** Stamp of the oldest version {!version_depth} reaches; under the same
    cap, so on a saturated walk this is the oldest stamp {e seen}, not
    the oldest in history. *)

val diag_walk_cap : int
(** Upper bound on the diagnostic chain walks above — a pinned snapshot
    can hold O(history) versions live, and a diagnostic must not turn
    into an O(history) stall. *)

val walk_saturation_count : unit -> int
(** How many diagnostic walks hit {!diag_walk_cap} since start
    (monotone; also exported as the [diag_walk_saturated] gauge). *)

val unsafe_describe : 'a t -> string
(** Racy rendering of the version chain, for debugging. *)
