/* Hardware timestamp for the HwTS scheme.
 *
 * On x86-64 this is the rdtsc cycle counter the paper uses — but only
 * when CPUID advertises an invariant TSC (leaf 0x80000007, EDX bit 8):
 * a TSC that halts in deep sleep states or varies with frequency
 * scaling is not the globally monotone clock the algorithm needs, and
 * converting its ticks to µs with a one-shot calibration emits garbage.
 * Without the invariant bit (and on every non-x86 target) we fall back
 * to CLOCK_MONOTONIC nanoseconds, which preserves the property the
 * algorithm needs: a cheap, globally monotone clock read.  The value
 * is masked to 62 bits so it always fits a non-negative OCaml int.
 *
 * The selected source is exposed to OCaml (caml_verlib_clock_source)
 * so reports can carry a clock_source field. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <stdint.h>
#include <time.h>

static uint64_t mono_ticks(void)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (uint64_t)ts.tv_sec * 1000000000ull + (uint64_t)ts.tv_nsec;
}

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <x86intrin.h>

/* 1 = invariant TSC present, use rdtsc; 0 = fall back to the monotonic
 * clock.  Decided once; reads race benignly (same value every time). */
static int tsc_usable = -1;

static int tsc_invariant(void)
{
    unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid_max(0x80000000u, 0) < 0x80000007u)
        return 0;
    if (!__get_cpuid(0x80000007u, &eax, &ebx, &ecx, &edx))
        return 0;
    return (edx & (1u << 8)) != 0;
}

static uint64_t hw_ticks(void)
{
    if (tsc_usable < 0)
        tsc_usable = tsc_invariant();
    return tsc_usable ? (uint64_t)__rdtsc() : mono_ticks();
}

static int clock_is_tsc(void)
{
    if (tsc_usable < 0)
        tsc_usable = tsc_invariant();
    return tsc_usable;
}
#else
static uint64_t hw_ticks(void) { return mono_ticks(); }

static int clock_is_tsc(void) { return 0; }
#endif

CAMLprim value caml_verlib_rdtsc(value unit)
{
    (void)unit;
    return Val_long((long)(hw_ticks() & 0x3fffffffffffffffull));
}

/* 1 when timestamps come from the invariant TSC, 0 when from
 * CLOCK_MONOTONIC. */
CAMLprim value caml_verlib_clock_is_tsc(value unit)
{
    (void)unit;
    return Val_bool(clock_is_tsc());
}

/* Hardware-tick to wall-clock calibration for trace export: ticks per
 * microsecond, measured once against CLOCK_MONOTONIC over a ~5 ms sleep
 * and cached.  Only called on the (cold) export path, never while an
 * experiment is being timed.  Under the monotonic fallback this is 1e-3
 * by construction (ticks are nanoseconds) but we keep the measurement —
 * it degrades to the same answer and exercises one code path. */
CAMLprim value caml_verlib_cycles_per_us(value unit)
{
    static double cached = 0.0;
    (void)unit;
    if (cached <= 0.0) {
        struct timespec t0, t1;
        struct timespec req = { 0, 5 * 1000 * 1000 }; /* 5 ms */
        uint64_t c0, c1;
        clock_gettime(CLOCK_MONOTONIC, &t0);
        c0 = hw_ticks();
        nanosleep(&req, NULL);
        c1 = hw_ticks();
        clock_gettime(CLOCK_MONOTONIC, &t1);
        {
            double us = (double)(t1.tv_sec - t0.tv_sec) * 1e6 +
                        (double)(t1.tv_nsec - t0.tv_nsec) / 1e3;
            cached = us > 0.0 ? (double)(c1 - c0) / us : 1.0;
        }
        if (cached <= 0.0)
            cached = 1.0;
    }
    return caml_copy_double(cached);
}
