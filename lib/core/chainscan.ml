(* Version-chain census — the space-observability half of verlib-obs.

   The paper's space claims (§8, Figure 12) and the shortcutting
   argument (§4-§5) are about what version lists look like at runtime:
   how long chains get, how many indirect links are outstanding, and how
   quickly superseded versions become reclaimable once no snapshot can
   need them.  This module walks the versioned pointers of a registered
   structure and produces exactly that census, plus an audit of the
   invariants the algorithms promise:

   - stamps are non-increasing from the head towards older versions
     (equal stamps are legal: the clock need not move between updates);
   - no version behind the head is still TBD — set-stamp helping runs
     before a successor is published, so a buried TBD can only mean a
     lost stamp;
   - every indirect link's precomputed direct cell agrees with the
     link's value (a disagreement would make shortcutting swap the
     observable value — the "shortcut leak" §5 rules out).

   The walk is deliberately passive (raw head reads, no set-stamp
   helping, no shortcutting) and safe to run concurrently with mutators:
   every chain edge is reached through an atomic head read followed by
   [prev] edges that are immutable after publication except for
   truncation, which only ever severs an edge to [Cval None].  A racing
   census may therefore see a shorter chain than a quiescent one, never
   a corrupt one. *)

open Vtypes

type target = Target : 'a Vptr.t -> target

type violation =
  | Unsorted of { newer : int; older : int; depth : int }
      (** stamp increased walking towards older versions *)
  | Buried_tbd of { depth : int }
      (** unresolved TBD stamp behind the head of a chain *)
  | Dangling_link of { stamp : int }
      (** indirect link whose direct cell disagrees with its value *)

let violation_code = function
  | Unsorted _ -> 1
  | Buried_tbd _ -> 2
  | Dangling_link _ -> 3

let describe_violation = function
  | Unsorted { newer; older; depth } ->
      Printf.sprintf "unsorted chain: stamp %d behind stamp %d at depth %d" older
        newer depth
  | Buried_tbd { depth } -> Printf.sprintf "TBD stamp buried at depth %d" depth
  | Dangling_link { stamp } ->
      Printf.sprintf "indirect link (stamp %d) disagrees with its direct cell" stamp

(* Details kept per census; the count is exact regardless. *)
let max_violation_details = 16

type census = {
  c_pointers : int;  (** versioned pointers visited *)
  c_plain_pointers : int;  (** pointers in [Plain] (non-versioned) mode *)
  c_nil_heads : int;
  c_direct_heads : int;
  c_indirect_heads : int;
  c_tbd_heads : int;  (** heads whose stamp is still TBD (in-flight CAS) *)
  c_versions : int;  (** versions reachable over all chains *)
  c_live_versions : int;  (** heads, TBDs, and stamps above the done stamp *)
  c_reclaimable : int;  (** non-head versions at or below the done stamp *)
  c_indirect_links : int;  (** [Clink] cells anywhere in chains *)
  c_shortcutable : int;  (** indirect heads already at or below the done stamp *)
  c_max_chain : int;
  c_chain_hist : int array;  (** [Flock.Telemetry.Hist] bucket layout *)
  c_truncated_walks : int;  (** chains longer than the walk cap *)
  c_done_stamp : int;  (** the done stamp the audit was judged against *)
  c_clock : int;
  c_shortcuts : int;  (** [Stats.shortcuts] at census time *)
  c_indirect_created : int;  (** [Stats.indirect_created] at census time *)
  c_violations : violation list;  (** first {!max_violation_details} *)
  c_violation_count : int;  (** exact *)
}

let nbuckets = Flock.Telemetry.Hist.nbuckets

(* Chains are bounded by updates concurrent with the oldest snapshot, but
   an audit must terminate even on a pathological chain; 65536 is far
   beyond anything a healthy run produces. *)
let default_max_depth = 65_536

let shortcut_ratio c =
  if c.c_indirect_created = 0 then 1.
  else Float.of_int c.c_shortcuts /. Float.of_int c.c_indirect_created

let percentile c q =
  let count = Array.fold_left ( + ) 0 c.c_chain_hist in
  if count = 0 then 0
  else begin
    let target = Float.to_int (Float.round (q *. Float.of_int count)) in
    let target = max 1 (min count target) in
    let res = ref 0 in
    let cum = ref 0 in
    (try
       for i = 0 to nbuckets - 1 do
         cum := !cum + c.c_chain_hist.(i);
         if !cum >= target then begin
           res := Flock.Telemetry.Hist.bucket_bound i;
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

let chain_p50 c = percentile c 0.50

let chain_p99 c = percentile c 0.99

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)

type acc = {
  mutable pointers : int;
  mutable plain_pointers : int;
  mutable nil_heads : int;
  mutable direct_heads : int;
  mutable indirect_heads : int;
  mutable tbd_heads : int;
  mutable versions : int;
  mutable live : int;
  mutable reclaimable : int;
  mutable links : int;
  mutable shortcutable : int;
  mutable max_chain : int;
  mutable truncated : int;
  hist : int array;
  mutable violations : violation list;
  mutable violation_count : int;
  mutable details_left : int;
}

let fresh_acc () =
  {
    pointers = 0;
    plain_pointers = 0;
    nil_heads = 0;
    direct_heads = 0;
    indirect_heads = 0;
    tbd_heads = 0;
    versions = 0;
    live = 0;
    reclaimable = 0;
    links = 0;
    shortcutable = 0;
    max_chain = 0;
    truncated = 0;
    hist = Array.make nbuckets 0;
    violations = [];
    violation_count = 0;
    details_left = max_violation_details;
  }

let record_violation acc v =
  acc.violation_count <- acc.violation_count + 1;
  if acc.details_left > 0 then begin
    acc.details_left <- acc.details_left - 1;
    acc.violations <- v :: acc.violations
  end;
  Obs.emit Obs.ev_census_violation (violation_code v)

(* One chain element: its stamp, whether it is an indirect link, and
   (for links) whether the precomputed direct cell agrees.  Returns the
   [prev] edge to continue on, or [None] at the end of the chain. *)
let scan_chain (type a) ~max_depth ~done_st (meta_of : a -> a meta)
    (head : a chain) acc =
  (* head-kind accounting *)
  (match head with
   | Cval None -> acc.nil_heads <- acc.nil_heads + 1
   | Cval (Some _) -> acc.direct_heads <- acc.direct_heads + 1
   | Clink l ->
       acc.indirect_heads <- acc.indirect_heads + 1;
       let s = Atomic.get l.lmeta.stamp in
       if s <> Stamp.tbd && s <= done_st then
         acc.shortcutable <- acc.shortcutable + 1);
  let rec go (c : a chain) depth prev_stamp =
    if depth >= max_depth then begin
      acc.truncated <- acc.truncated + 1;
      depth
    end
    else
      match c with
      | Cval None -> depth
      | Cval (Some o) ->
          step (Atomic.get (meta_of o).stamp) (meta_of o).prev None depth
            prev_stamp
      | Clink l ->
          acc.links <- acc.links + 1;
          step (Atomic.get l.lmeta.stamp) l.lmeta.prev (Some l) depth prev_stamp
  and step stamp prev link depth prev_stamp =
    acc.versions <- acc.versions + 1;
    (* dangling-link audit: the direct cell a shortcut would install must
       hold the same value the link holds *)
    (match link with
     | Some l -> (
         match l.ldirect with
         | Cval v when opt_eq v l.lvalue -> ()
         | Cval _ | Clink _ -> record_violation acc (Dangling_link { stamp }))
     | None -> ());
    if stamp = Stamp.tbd then begin
      if depth = 0 then acc.tbd_heads <- acc.tbd_heads + 1
      else record_violation acc (Buried_tbd { depth });
      acc.live <- acc.live + 1
    end
    else begin
      (* sortedness: stamps must not increase walking towards older
         versions (equal is legal — the clock need not move between
         updates) *)
      (match prev_stamp with
       | Some ns when ns <> Stamp.tbd && stamp > ns ->
           record_violation acc (Unsorted { newer = ns; older = stamp; depth })
       | Some _ | None -> ());
      if depth > 0 && stamp <= done_st then
        acc.reclaimable <- acc.reclaimable + 1
      else acc.live <- acc.live + 1
    end;
    go prev (depth + 1) (Some stamp)
  in
  let len = go head 0 None in
  acc.max_chain <- max acc.max_chain len;
  let b = Flock.Telemetry.Hist.bucket_of len in
  acc.hist.(b) <- acc.hist.(b) + 1

let scan_target ~max_depth ~done_st acc (Target p) =
  acc.pointers <- acc.pointers + 1;
  match Vptr.mode (Vptr.desc p) with
  | Vptr.Plain ->
      (* Non-versioned baseline: one version by construction, no stamps
         to audit.  Counted separately so mixed censuses stay honest. *)
      acc.plain_pointers <- acc.plain_pointers + 1;
      (match Vptr.head_kind p with
       | `Nil -> acc.nil_heads <- acc.nil_heads + 1
       | `Direct | `Indirect -> acc.direct_heads <- acc.direct_heads + 1);
      acc.versions <- acc.versions + 1;
      acc.live <- acc.live + 1;
      acc.max_chain <- max acc.max_chain 1;
      let b = Flock.Telemetry.Hist.bucket_of 1 in
      acc.hist.(b) <- acc.hist.(b) + 1
  | Vptr.Indirect | Vptr.No_shortcut | Vptr.Ind_on_need | Vptr.Rec_once ->
      scan_chain ~max_depth ~done_st (Vptr.unsafe_meta_of p) (Vptr.unsafe_head p)
        acc

let census_of_iter ?(max_depth = default_max_depth) iter =
  (* One refresh up front: judging every chain against a single bound
     keeps the audit coherent (the bound only rises during the scan,
     and a lower bound is always sound for "reclaimable"). *)
  let done_st = Done_stamp.refresh () in
  let acc = fresh_acc () in
  iter (scan_target ~max_depth ~done_st acc);
  Obs.emit Obs.ev_census acc.versions;
  {
    c_pointers = acc.pointers;
    c_plain_pointers = acc.plain_pointers;
    c_nil_heads = acc.nil_heads;
    c_direct_heads = acc.direct_heads;
    c_indirect_heads = acc.indirect_heads;
    c_tbd_heads = acc.tbd_heads;
    c_versions = acc.versions;
    c_live_versions = acc.live;
    c_reclaimable = acc.reclaimable;
    c_indirect_links = acc.links;
    c_shortcutable = acc.shortcutable;
    c_max_chain = acc.max_chain;
    c_chain_hist = acc.hist;
    c_truncated_walks = acc.truncated;
    c_done_stamp = done_st;
    c_clock = Stamp.read ();
    c_shortcuts = Stats.total Stats.shortcuts;
    c_indirect_created = Stats.total Stats.indirect_created;
    c_violations = List.rev acc.violations;
    c_violation_count = acc.violation_count;
  }

let census_of_targets ?max_depth targets =
  census_of_iter ?max_depth (fun emit -> List.iter emit targets)

(* ------------------------------------------------------------------ *)
(* Root registry                                                       *)

type registration = {
  rg_name : string;
  rg_iter : (target -> unit) -> unit;
  mutable rg_live : bool;
}

let roots : registration list ref = ref []

let roots_mutex = Mutex.create ()

let register ~name iter =
  let r = { rg_name = name; rg_iter = iter; rg_live = true } in
  Mutex.lock roots_mutex;
  roots := r :: !roots;
  Mutex.unlock roots_mutex;
  r

let unregister r =
  Mutex.lock roots_mutex;
  r.rg_live <- false;
  roots := List.filter (fun x -> x != r) !roots;
  Mutex.unlock roots_mutex

let registered () =
  Mutex.lock roots_mutex;
  let l = !roots in
  Mutex.unlock roots_mutex;
  List.rev_map (fun r -> r.rg_name) l

let census_all ?max_depth () =
  Mutex.lock roots_mutex;
  let l = List.rev !roots in
  Mutex.unlock roots_mutex;
  List.filter_map
    (fun r ->
      if r.rg_live then Some (r.rg_name, census_of_iter ?max_depth r.rg_iter)
      else None)
    l
