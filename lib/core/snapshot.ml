exception Aborted

let active () = Snapctx.local_stamp () <> Snapctx.none

let current_stamp () =
  let s = Snapctx.local_stamp () in
  if s = Snapctx.none then None else Some s

let check_abort () =
  if Snapctx.optimistic () && Snapctx.aborted () then raise Aborted

(* Choose the snapshot stamp with the done-stamp invariant preserved at
   every instant: first pin a conservative announcement (a clock value no
   greater than any stamp we can subsequently take), then take the real
   stamp and tighten the announcement.  Announcing only after taking the
   stamp would leave a window in which a concurrent done-stamp refresh —
   not seeing us, but seeing a clock our own take just advanced — could
   compute a bound above our stamp and licence a shortcut that splices
   out exactly the versions our reads need. *)
let enter take_stamp =
  (* The pin must be at or below any stamp [take_stamp] can subsequently
     return; [Stamp.floor] is exactly that bound. *)
  Done_stamp.announce (Stamp.floor ());
  let s = take_stamp () in
  Done_stamp.announce s;
  Snapctx.set_local_stamp s;
  s

let leave () =
  Snapctx.clear_local_stamp ();
  Snapctx.set_optimistic false;
  Snapctx.clear_aborted ();
  Done_stamp.withdraw ()

let pessimistic_run f s =
  Snapctx.set_optimistic false;
  Snapctx.clear_aborted ();
  (* Algorithm 7: ensure the clock has moved past our stamp, so no future
     version can be stamped at or before it; then the re-run is an
     ordinary (always linearizable) snapshot execution. *)
  Stamp.bump_from s;
  f ()

let optimistic_with_snapshot f =
  let s = enter Stamp.read in
  Fun.protect ~finally:leave (fun () ->
      Snapctx.set_optimistic true;
      Snapctx.clear_aborted ();
      match f () with
      | r when not (Snapctx.aborted ()) -> r
      | _ ->
          Stats.incr Stats.snapshot_aborts;
          Obs.emit Obs.ev_snap_abort s;
          pessimistic_run f s
      | exception Aborted ->
          Stats.incr Stats.snapshot_aborts;
          Obs.emit Obs.ev_snap_abort s;
          pessimistic_run f s)

let with_snapshot f =
  if active () then f () (* nested: share the outer snapshot *)
  else begin
    Stats.incr Stats.snapshots;
    Obs.emit Obs.ev_snap_begin 0;
    (* Dwell time is sampled 1-in-16 per domain so the disabled-tracing
       hot path adds one private counter store and no clock reads. *)
    let t0 = if Obs.dwell_sample () then Hwclock.now () else 0 in
    let finish () =
      if t0 <> 0 then Obs.Hist.observe Obs.snap_dwell (Hwclock.now () - t0);
      Obs.emit Obs.ev_snap_end 0
    in
    (* Request-span attribution: the whole outer-snapshot window books
       to the [snapshot] phase, net of nested phases (per-shard fan-out
       opens [route] inside it) — exclusive accounting is Span's. *)
    Obs.Span.in_phase Obs.Span.Snapshot (fun () ->
        Fun.protect ~finally:finish (fun () ->
            if Stamp.is_optimistic () then optimistic_with_snapshot f
            else begin
              let (_ : int) = enter Stamp.take in
              Fun.protect ~finally:leave f
            end))
  end
