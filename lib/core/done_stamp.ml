let idle = max_int

(* announced.(i) = stamp of domain i's ongoing snapshot, or [idle]. *)
let announced : int Atomic.t array =
  Array.init Flock.Registry.max_slots (fun _ -> Atomic.make idle)

let announce s = Atomic.set announced.(Flock.Registry.my_id ()) s

let withdraw () = Atomic.set announced.(Flock.Registry.my_id ()) idle

(* Cache is monotone non-decreasing.  Any past refresh result remains a
   valid lower bound: a snapshot that starts later picks a stamp at least
   the clock value observed during the refresh. *)
let cache = Atomic.make 0

let refresh () =
  (* [Stamp.floor], not [Stamp.read]: under schemes whose snapshots take
     one below the clock, a bound equal to the clock would already exceed
     the stamp of a snapshot starting immediately afterwards. *)
  let m = ref (Stamp.floor ()) in
  Flock.Registry.iter_ids (fun i ->
      let a = Atomic.get announced.(i) in
      if a < !m then m := a);
  let fresh = !m in
  let rec raise_cache () =
    let c = Atomic.get cache in
    if fresh > c && not (Atomic.compare_and_set cache c fresh) then raise_cache ()
  in
  raise_cache ();
  Atomic.get cache

let reset () = Atomic.set cache 0

(* Reclamation lag of the version layer (a [Telemetry] gauge, captured
   into every [Obs] report): distance between the global clock and the
   lower bound on ongoing snapshot stamps.  Versions older than the
   bound are reclaimable (shortcuttable / truncatable); a growing lag
   means some snapshot is pinning history — the space failure mode the
   multiversion-GC literature bounds. *)
let (_ : Flock.Telemetry.Gauge.t) =
  Flock.Telemetry.Gauge.make "stamp_lag" (fun () ->
      max 0 (Stamp.read () - refresh ()))

let interval = 32

let countdown : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let get () =
  let c = Domain.DLS.get countdown in
  if !c > 0 then begin
    decr c;
    Atomic.get cache
  end
  else begin
    c := interval;
    refresh ()
  end
