type counter = { cname : string; cells : int array }

(* One cell per registry slot; 16-word spacing avoids the worst false
   sharing without per-cell records. *)
let stride = 16

let registry : counter list ref = ref []

let registry_mutex = Mutex.create ()

let make cname =
  let c = { cname; cells = Array.make (Flock.Registry.max_slots * stride) 0 } in
  Mutex.lock registry_mutex;
  registry := c :: !registry;
  Mutex.unlock registry_mutex;
  c

let name c = c.cname

let slot () = Flock.Registry.my_id () * stride

let incr c =
  let i = slot () in
  c.cells.(i) <- c.cells.(i) + 1

let add c n =
  let i = slot () in
  c.cells.(i) <- c.cells.(i) + n

(* Quiescence contract: [incr]/[add] are unsynchronised plain stores
   into a slot owned by exactly one live domain, so [total] and [reset]
   are exact only when every incrementing domain is quiesced (joined, or
   provably between operations).  Racing [reset] against a writer can
   silently lose increments: the writer's read-modify-write may span the
   [Array.fill].  We document rather than "fix" this — putting an
   acquire/release pair (or [Atomic.t] cells) on the increment path
   would tax every operation of every experiment to protect a
   maintenance entry point that harness code only calls between runs. *)
let total c =
  let t = ref 0 in
  for i = 0 to Flock.Registry.max_slots - 1 do
    t := !t + c.cells.(i * stride)
  done;
  !t

let reset c = Array.fill c.cells 0 (Array.length c.cells) 0

let all () =
  Mutex.lock registry_mutex;
  let l = !registry in
  Mutex.unlock registry_mutex;
  List.rev l

let indirect_created = make "indirect_created"

let direct_installed = make "direct_installed"

let shortcuts = make "shortcuts"

let snapshot_aborts = make "snapshot_aborts"

let truncations = make "truncations"

let snapshots = make "snapshots"

(* Also clears the telemetry layer (histograms and trace rings) so that
   [Verlib.reset] starts every experiment from a clean slate.  Same
   quiescence contract as [reset]. *)
let reset_all () =
  List.iter reset (all ());
  Flock.Telemetry.reset_all ()
