external rdtsc : unit -> int = "caml_verlib_rdtsc" [@@noalloc]

external cycles_per_us_stub : unit -> float = "caml_verlib_cycles_per_us"

external clock_is_tsc : unit -> bool = "caml_verlib_clock_is_tsc" [@@noalloc]

(* Which clock backs [now]: "rdtsc" only when CPUID advertises an
   invariant TSC, otherwise the stub silently reads CLOCK_MONOTONIC —
   reports carry this so µs conversions are auditable. *)
let source () = if clock_is_tsc () then "rdtsc" else "monotonic"

(* Bias by the startup reading so stamps stay comfortably small while
   remaining strictly positive (0 is the reserved "initial version"
   stamp). *)
let origin = rdtsc () - 1

let now () =
  let t = rdtsc () - origin in
  if t > 0 then t else 1

(* Calibrated against CLOCK_MONOTONIC on first call (~5 ms, cached in
   the stub); for converting tick intervals to wall time in reports. *)
let cycles_per_us () = cycles_per_us_stub ()

let to_us cycles = Float.of_int cycles /. cycles_per_us ()
