type group = {
  g_count : int;
  g_update_percent : int;
  g_query : Workload.Opgen.query_kind;
}

type spec = {
  map : (module Dstruct.Map_intf.MAP);
  mode : Verlib.Vptr.mode;
  lock_mode : Flock.Lock.mode;
  scheme : Verlib.Stamp.scheme;
  direct_stores : bool;
  n : int;
  theta : float;
  groups : group list;
  duration : float;
  repeats : int;
  seed : int;
  lat_sample : int;
  census : bool;
  census_interval : float;
}

let default_spec map =
  {
    map;
    mode = Verlib.Vptr.Ind_on_need;
    lock_mode = Flock.Lock.Lock_free;
    scheme = Verlib.Stamp.Query_ts;
    direct_stores = true;
    n = 10_000;
    theta = 0.;
    groups =
      [ { g_count = 4; g_update_percent = 20; g_query = Workload.Opgen.Multifinds 16 } ];
    duration = 0.3;
    repeats = 1;
    seed = 42;
    lat_sample = 0;
    census = false;
    census_interval = 0.;
  }

(* Cooperative external stop: the CLIs' SIGINT/SIGTERM handlers call
   [request_stop]; the measurement sleep is sliced so the run winds down
   early but {e completely} — workers and the census sampler join, the
   final census, space measurement and report still happen, nothing dies
   mid-write. *)
let external_stop = Atomic.make false

let request_stop () = Atomic.set external_stop true

let interrupted () = Atomic.get external_stop

type result = {
  total_mops : float;
  group_mops : float list;
  aborts : int;
  increments : int;
  final_size : int;
  obs : Verlib.Obs.report;
  space_bytes_per_entry : float;
  census : Verlib.Chainscan.census option;
  census_series : (float * Verlib.Chainscan.census) list;
  alloc_bytes_per_op : float;
  gc_minor : int;
  gc_major : int;
}

let run_once spec =
  let module M = (val spec.map : Dstruct.Map_intf.MAP) in
  Verlib.reset ~scheme:spec.scheme ~lock_mode:spec.lock_mode
    ~direct_stores:spec.direct_stores ();
  let mode = if M.supports_mode spec.mode then spec.mode else Verlib.Vptr.Plain in
  let t = M.create ~mode ~lock_mode:spec.lock_mode ~n_hint:spec.n () in
  let fill_gen =
    Workload.Opgen.create ~theta:spec.theta ~seed:spec.seed ~n:spec.n
      ~update_percent:100 ~query:Workload.Opgen.Finds ()
  in
  Workload.Opgen.fill fill_gen
    (Workload.Splitmix.create (spec.seed + 1))
    ~insert:(fun k v -> M.insert t k v);
  (* per-group generators share universe parameters through the seed *)
  let mk_gen g =
    Workload.Opgen.create ~theta:spec.theta ~seed:spec.seed ~n:spec.n
      ~update_percent:g.g_update_percent ~query:g.g_query ()
  in
  let gens = List.map mk_gen spec.groups in
  let stop = Atomic.make false in
  let go = Atomic.make false in
  let counts =
    List.map (fun g -> Array.init g.g_count (fun _ -> Atomic.make 0)) spec.groups
  in
  let allocs =
    List.map (fun g -> Array.init g.g_count (fun _ -> Atomic.make 0.)) spec.groups
  in
  let exec op =
    match op with
    | Workload.Opgen.Insert (k, v) -> ignore (M.insert t k v)
    | Workload.Opgen.Delete k -> ignore (M.delete t k)
    | Workload.Opgen.Find k -> ignore (M.find t k)
    | Workload.Opgen.Range (a, b) -> ignore (M.range_count t a b)
    | Workload.Opgen.Multifind ks -> ignore (M.multifind t ks)
  in
  let lat_hist op =
    match op with
    | Workload.Opgen.Insert _ -> Verlib.Obs.lat_insert
    | Workload.Opgen.Delete _ -> Verlib.Obs.lat_delete
    | Workload.Opgen.Find _ -> Verlib.Obs.lat_find
    | Workload.Opgen.Range _ -> Verlib.Obs.lat_range
    | Workload.Opgen.Multifind _ -> Verlib.Obs.lat_multifind
  in
  let worker gen cnt alloc tid () =
    let rng = Workload.Splitmix.create ((tid * 7919) + spec.seed + 100) in
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    (* Per-worker allocation accounting: [Gc.allocated_bytes] is
       domain-local, so the delta over the measured loop is exactly this
       worker's allocation — summed and divided by ops for the
       alloc-bytes-per-op figure. *)
    let a0 = Gc.allocated_bytes () in
    let ops = ref 0 in
    if spec.lat_sample > 0 then begin
      (* Sampled per-op latencies: an independent splitmix stream decides
         1-in-[lat_sample] (power of two) whether to bracket the op with
         hardware clock reads, keeping the un-sampled path identical to
         the plain loop apart from one RNG step and branch. *)
      let mask = spec.lat_sample - 1 in
      let srng = Workload.Splitmix.create ((tid * 104729) + spec.seed + 7) in
      while not (Atomic.get stop) do
        let op = Workload.Opgen.next gen rng in
        if Workload.Splitmix.next srng land mask = 0 then begin
          let t0 = Verlib.Hwclock.now () in
          exec op;
          Verlib.Obs.Hist.observe (lat_hist op) (Verlib.Hwclock.now () - t0)
        end
        else exec op;
        incr ops;
        if !ops land 15 = 0 then Atomic.set cnt !ops;
        if !ops land 1023 = 0 then Flock.Telemetry.Gcstat.publish ()
      done
    end
    else
      while not (Atomic.get stop) do
        exec (Workload.Opgen.next gen rng);
        incr ops;
        (* amortise the flag check *)
        if !ops land 15 = 0 then Atomic.set cnt !ops;
        (* amortised GC telemetry into this worker's slot (gauges,
           PROFILE snapshots) *)
        if !ops land 1023 = 0 then Flock.Telemetry.Gcstat.publish ()
      done;
    Atomic.set cnt !ops;
    Atomic.set alloc (Gc.allocated_bytes () -. a0);
    Flock.Telemetry.Gcstat.publish ()
  in
  let iter_targets emit = M.iter_vptrs t emit in
  (* Register the structure as a census root for the run, so in-process
     samplers (and anything else watching [Chainscan.census_all]) can
     see it; unregistered before returning so runs do not accumulate. *)
  let registration =
    if spec.census then Some (Verlib.Chainscan.register ~name:M.name iter_targets)
    else None
  in
  let series = ref [] in
  (* Optional low-frequency background census sampler: an extra domain
     that walks the structure every [census_interval] seconds while the
     workers run, recording a (elapsed, census) time series — chain
     growth and reclamation lag over time, not just the final state.
     Sleeps in small slices so it exits promptly at the stop flag. *)
  let sampler () =
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    let t0 = Unix.gettimeofday () in
    while not (Atomic.get stop) do
      let deadline = Unix.gettimeofday () +. spec.census_interval in
      while (not (Atomic.get stop)) && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.005
      done;
      if not (Atomic.get stop) then begin
        let c = Verlib.Chainscan.census_of_iter iter_targets in
        series := (Unix.gettimeofday () -. t0, c) :: !series
      end
    done
  in
  let sampler_domain =
    if spec.census && spec.census_interval > 0. then Some (Domain.spawn sampler)
    else None
  in
  let domains =
    List.concat
      (List.map2
         (fun ((g, gen), cnts) als ->
           List.init g.g_count (fun i ->
               Domain.spawn
                 (worker gen cnts.(i) als.(i) ((g.g_update_percent * 1000) + i))))
         (List.combine (List.combine spec.groups gens) counts)
         allocs)
  in
  let gc0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  Atomic.set go true;
  let deadline = t0 +. spec.duration in
  let rec measure () =
    let now = Unix.gettimeofday () in
    if now < deadline && not (Atomic.get external_stop) then begin
      (try Unix.sleepf (Float.min 0.05 (deadline -. now))
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      measure ()
    end
  in
  measure ();
  Atomic.set stop true;
  (* Stamp the end of the measurement window the instant the stop flag is
     raised: workers cease counting as soon as they observe it, so
     including their wind-down (and [Domain.join] scheduling noise) in
     the denominator would deflate throughput. *)
  let t1 = Unix.gettimeofday () in
  List.iter Domain.join domains;
  Option.iter Domain.join sampler_domain;
  let gc1 = Gc.quick_stat () in
  let elapsed = t1 -. t0 in
  let alloc_total =
    List.fold_left
      (fun a als -> Array.fold_left (fun a c -> a +. Atomic.get c) a als)
      0. allocs
  in
  let group_ops =
    List.map (fun cnts -> Array.fold_left (fun a c -> a + Atomic.get c) 0 cnts) counts
  in
  let total_ops = List.fold_left ( + ) 0 group_ops in
  M.check t;
  let entries = M.size t in
  (* Quiescent space measurement: workers are joined, so reachable_words
     sees the settled structure (chains may still hold old versions that
     the next update would truncate — that retained tail is part of the
     cost being measured). *)
  let space = Space.bytes_per_entry ~root:(Obj.repr t) ~entries in
  (* Final census is taken quiescently too, so its audit is exact: any
     violation it reports is a real invariant break, not a race artifact. *)
  let final_census =
    if spec.census then Some (Verlib.Chainscan.census_of_iter iter_targets)
    else None
  in
  Option.iter Verlib.Chainscan.unregister registration;
  {
    total_mops = Float.of_int total_ops /. elapsed /. 1e6;
    group_mops = List.map (fun o -> Float.of_int o /. elapsed /. 1e6) group_ops;
    aborts = Verlib.Stats.total Verlib.Stats.snapshot_aborts;
    increments = Verlib.Stamp.increments ();
    final_size = entries;
    (* Workers are joined, so the capture is exact; counters were reset
       at the top of the run, so totals are per-run deltas. *)
    obs = Verlib.Obs.capture ();
    space_bytes_per_entry = space;
    census = final_census;
    census_series = List.rev !series;
    alloc_bytes_per_op =
      (if total_ops > 0 then alloc_total /. Float.of_int total_ops else 0.);
    (* Collection deltas over the run, read from the spawning domain:
       major collections are a global counter in OCaml 5; the minor
       figure under-counts (domain-local) and is informational. *)
    gc_minor = gc1.Gc.minor_collections - gc0.Gc.minor_collections;
    gc_major = gc1.Gc.major_collections - gc0.Gc.major_collections;
  }

let run spec =
  (* Stop repeating (but keep every completed run) once an external stop
     is requested. *)
  let reps = max 1 spec.repeats in
  let rec collect acc i =
    if i >= reps then List.rev acc
    else if acc <> [] && interrupted () then List.rev acc
    else collect (run_once spec :: acc) (i + 1)
  in
  let results = collect [] 0 in
  let avg f = List.fold_left (fun a r -> a +. f r) 0. results /. Float.of_int (List.length results) in
  let last = List.nth results (List.length results - 1) in
  {
    total_mops = avg (fun r -> r.total_mops);
    group_mops =
      List.mapi
        (fun i _ -> avg (fun r -> List.nth r.group_mops i))
        (List.hd results).group_mops;
    aborts = last.aborts;
    increments = last.increments;
    final_size = last.final_size;
    obs = last.obs;
    space_bytes_per_entry = last.space_bytes_per_entry;
    census = last.census;
    census_series = last.census_series;
    alloc_bytes_per_op = avg (fun r -> r.alloc_bytes_per_op);
    gc_minor = last.gc_minor;
    gc_major = last.gc_major;
  }
