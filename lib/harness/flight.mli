(** Anomaly flight recorder.

    Dumps the observability state that explains an incident — full gauge
    and counter capture, optional chain census, and every retained
    finished request span ([Verlib.Obs.Span.recent]) with per-phase µs
    and dominant-phase attribution, plus the sampling profiler's
    cumulative snapshot ([Verlib.Obs.Profile.json]) — to one JSON file
    per trigger firing, rate-limited by a cooldown and a dump cap so a
    persistent pathology cannot fill the disk.

    The server wires four triggers: a connection killed at its
    write/idle deadline, hard shedding engaging, a chain-census
    invariant violation, and a phase-latency p99 exceeding its SLO.
    Thread-safe: triggers may fire from any server thread. *)

type trigger =
  | Deadline_kill
  | Hard_shed
  | Census_violation
  | Slo_breach of string  (** offending phase name *)

val trigger_name : trigger -> string
(** [deadline-kill] / [hard-shed] / [census-violation] / [slo-breach] —
    also the filename component. *)

type t

val create : ?min_interval:float -> ?max_dumps:int -> dir:string -> unit -> t
(** [min_interval] (default 5s) is the cooldown between dumps;
    [max_dumps] (default 16) caps files per recorder lifetime; [dir] is
    created on first dump. *)

val record :
  t ->
  trigger:trigger ->
  ?census:Verlib.Chainscan.census ->
  ?extra:(string * string) list ->
  unit ->
  string option
(** Fire a trigger.  Returns the path of the written dump
    ([flight-<epoch-ms>-<seq>-<trigger>.json] under [dir], where [seq]
    is this recorder's monotonic dump number starting at 1), or [None]
    when the cooldown or cap suppressed it.  [extra] key/value pairs (values are
    pre-rendered JSON) land at the top level of the dump — the server
    passes its live config and queue depth.  Span aggregation is
    approximate under concurrent writers (the ring contract). *)

val dump_count : t -> int

val suppressed_count : t -> int
(** Trigger firings swallowed by the cooldown or the cap. *)

val last_path : t -> string option

(** {1 Dump analysis (shared with tests and [make trace-smoke])} *)

val dominant_phase : Verlib.Obs.Span.t -> string option
(** Argmax of one span's exclusive per-phase ticks. *)

val aggregate_dominant : Verlib.Obs.Span.t list -> string option
(** Argmax of summed exclusive ticks across spans — the dump's top-level
    ["dominant_phase"]. *)
