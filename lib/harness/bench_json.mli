(** Machine-readable benchmark results (the BENCH_PR2.json format) and
    the regression comparator behind [make bench-check].

    One {!row} per (figure, label) benchmark cell: throughput, latency
    percentiles (when sampled), the final chain census's headline
    numbers, and bytes-per-entry space.  A {!doc} wraps the rows with a
    schema version and run metadata.  Serialisation is hand-rolled;
    parsing goes through [Jsonlite], keeping the format a strict-JSON
    round trip with no external dependency. *)

val schema_version : int

type row = {
  r_figure : string;  (** section id: fig8a, fig9, fig12, ... *)
  r_label : string;  (** cell id, unique within its figure *)
  r_mops : float;  (** 0. for space-only rows *)
  r_p50_us : float;  (** 0. when latency sampling was off *)
  r_p99_us : float;
  r_chain_max : int;
  r_chain_p99 : int;
  r_indirect_links : int;
  r_reclaimable : int;
  r_violations : int;  (** census chain-invariant violations (want 0) *)
  r_space_bytes : float;  (** bytes per entry; 0. when not measured *)
  r_retries : int;
      (** client wire retries the run absorbed (serve rows; parsed as 0
          from pre-resilience files, serialised only when non-zero) *)
  r_shed : int;  (** [-BUSY] sheds the run observed (same conventions) *)
  r_giveups : int;
      (** operations abandoned after retry exhaustion (loadgen bank mix;
          same serialisation conventions as [r_retries]) *)
  r_walk_saturation : int;
      (** bounded chain walks that hit the per-walk version cap — the
          PR-5 saturation diagnostic, surfaced from the
          [diag_walk_saturated] gauge *)
  r_phases : (string * float) list;
      (** mean per-request phase decomposition in µs, from server-side
          request spans (serve rows with tracing); empty = not measured,
          omitted from the serialisation *)
  r_alloc_bytes_per_op : float;
      (** GC-allocated bytes per completed operation (minor + direct
          major words summed over per-worker [Gc.quick_stat] deltas);
          0. = not measured, omitted from the serialisation; gated by
          {!diff} when both runs carry it *)
  r_gc_minor : int;
      (** minor collections during the measured run (0 = not measured /
          none; omitted when 0) *)
  r_gc_major : int;  (** major collections, same conventions *)
}

type doc = {
  d_schema : int;
  d_label : string;
  d_created : string;  (** YYYY-MM-DD, informational *)
  d_scale : string;  (** ci | quick | full *)
  d_rows : row list;
}

val make_doc : ?label:string -> ?scale:string -> row list -> doc
(** Stamps today's date and {!schema_version}. *)

val merge_rows : doc -> row list -> doc
(** Replace rows with matching (figure, label), append the rest — used
    to fold served-throughput rows into the committed baseline. *)

val to_json : doc -> string

val write_file : string -> doc -> unit

val of_string : string -> (doc, string) result
(** Strict parse + schema-version check. *)

val read_file : string -> (doc, string) result

val find : doc -> figure:string -> label:string -> row option

(** {1 Regression comparison} *)

type issue =
  | Missing_row of { figure : string; label : string }
  | Regression of {
      figure : string;
      label : string;
      metric : string;
      base : float;
      cur : float;
      limit : float;
    }
  | Violations of { figure : string; label : string; count : int }

val describe_issue : issue -> string

val diff : ?threshold:float -> ?lat_threshold:float -> doc -> doc -> issue list
(** [diff ~threshold base cur] — one-sided, tolerant policy: throughput
    may drop and space (and, when both runs measured it,
    allocation-per-op) may grow by at most [threshold] percent (default
    50); rows present in [base] must exist in [cur]; census violations
    in [cur] are an issue at any threshold.  Latency percentiles are
    informational unless [lat_threshold] is given (on an oversubscribed
    core, sub-second p99s swing by orders of magnitude from scheduler
    preemption alone).  Values near the noise floor are exempt.  Empty
    result = pass. *)
