(* Anomaly flight recorder: when the serving stack detects something it
   considers an incident — a connection killed at its deadline, hard
   shedding engaging, a census invariant violation, a phase p99 through
   its SLO — dump the evidence to disk NOW, while the recent-span rings
   still hold the requests that suffered.  A post-hoc STATS call shows
   aggregate damage; the flight dump shows the per-request phase
   decomposition of the victims, which is what makes a chaos-smoke
   failure self-diagnosing.

   The recorder is deliberately boring: a mutex, a cooldown, a dump cap,
   and one JSON file per incident
   ([flight-<epoch-ms>-<seq>-<trigger>.json] — the monotonic sequence
   number disambiguates dumps landing in the same millisecond and makes
   lexicographic order match dump order within a run).
   Everything interesting is in what it snapshots: the full gauge and
   counter capture, the optional chain census, and every finished span
   from [Verlib.Obs.Span.recent] with per-phase µs and a computed
   dominant phase. *)

module Obs = Verlib.Obs
module Span = Verlib.Obs.Span

type trigger =
  | Deadline_kill
  | Hard_shed
  | Census_violation
  | Slo_breach of string  (* offending phase name *)

let trigger_name = function
  | Deadline_kill -> "deadline-kill"
  | Hard_shed -> "hard-shed"
  | Census_violation -> "census-violation"
  | Slo_breach _ -> "slo-breach"

type t = {
  dir : string;
  min_interval : float;
  max_dumps : int;
  mutable dumps : int;
  mutable suppressed : int;
  mutable last_at : float;
  mutable last_path : string option;
  lock : Mutex.t;
}

let create ?(min_interval = 5.0) ?(max_dumps = 16) ~dir () =
  {
    dir;
    min_interval;
    max_dumps;
    dumps = 0;
    suppressed = 0;
    last_at = neg_infinity;
    last_path = None;
    lock = Mutex.create ();
  }

let dump_count t = t.dumps

let suppressed_count t = t.suppressed

let last_path t = t.last_path

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Dominant phase of one span (ticks already exclusive, so a plain
   argmax) — ties break toward the earlier pipeline phase. *)
let dominant_phase (sp : Span.t) =
  let best = ref (-1) and best_v = ref 0 in
  Array.iteri
    (fun i v -> if v > !best_v then begin best := i; best_v := v end)
    sp.Span.sp_phase;
  if !best < 0 then None
  else
    List.find_opt (fun p -> Span.phase_index p = !best) Span.phases
    |> Option.map Span.phase_name

let json_of_span (sp : Span.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"trace_id\":%d,\"cmd\":\"%s\",\"outcome\":\"%s\",\"fanout\":%d,\"total_us\":%.3f"
       sp.Span.sp_trace_id (Jsonlite.escape sp.Span.sp_cmd)
       (Jsonlite.escape sp.Span.sp_outcome)
       sp.Span.sp_fanout
       (Verlib.Hwclock.to_us (Span.total_ticks sp)));
  (match dominant_phase sp with
   | Some d -> Buffer.add_string b (Printf.sprintf ",\"dominant\":\"%s\"" d)
   | None -> ());
  Buffer.add_string b ",\"phases\":{";
  let first = ref true in
  List.iter
    (fun p ->
      let v = Span.phase_ticks sp p in
      if v > 0 then begin
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b
          (Printf.sprintf "\"%s\":%.3f" (Span.phase_name p)
             (Verlib.Hwclock.to_us v))
      end)
    Span.phases;
  Buffer.add_string b "}}";
  Buffer.contents b

(* Aggregate dominant phase over a set of spans: argmax of summed
   exclusive ticks — the headline the trace-smoke gate matches against
   the injected fault. *)
let aggregate_dominant spans =
  let totals = Array.make Span.nphases 0 in
  List.iter
    (fun (sp : Span.t) ->
      Array.iteri (fun i v -> totals.(i) <- totals.(i) + v) sp.Span.sp_phase)
    spans;
  let best = ref (-1) and best_v = ref 0 in
  Array.iteri
    (fun i v -> if v > !best_v then begin best := i; best_v := v end)
    totals;
  if !best < 0 then None
  else
    List.find_opt (fun p -> Span.phase_index p = !best) Span.phases
    |> Option.map Span.phase_name

let render ~trigger ?census ?(extra = []) () =
  let r = Obs.capture () in
  let spans = Span.recent () in
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf "{\"time\":%.3f,\"trigger\":\"%s\"" (Unix.gettimeofday ())
       (trigger_name trigger));
  (match trigger with
   | Slo_breach phase ->
       Buffer.add_string b
         (Printf.sprintf ",\"slo_phase\":\"%s\"" (Jsonlite.escape phase))
   | _ -> ());
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf ",\"%s\":%s" (Jsonlite.escape k) v))
    extra;
  (match aggregate_dominant spans with
   | Some d -> Buffer.add_string b (Printf.sprintf ",\"dominant_phase\":\"%s\"" d)
   | None -> ());
  (match census with
   | Some c ->
       Buffer.add_string b (",\"census\":" ^ Obs_report.json_of_census c)
   | None -> ());
  Buffer.add_string b ",\"gauges\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (Jsonlite.escape name) v))
    r.Obs.gauges;
  Buffer.add_string b "},\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (Jsonlite.escape name) v))
    r.Obs.counters;
  Buffer.add_string b "},\"spans\":[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (json_of_span sp))
    spans;
  (* The profiler's cumulative snapshot (stacks, lock contention, GC):
     when the sampler is running this is what the victims' domains were
     actually doing — the dump's "where was the time going" section. *)
  Buffer.add_string b "],\"profile\":";
  Buffer.add_string b (Obs.Profile.json ());
  Buffer.add_char b '}';
  Buffer.contents b

let record t ~trigger ?census ?extra () =
  Mutex.lock t.lock;
  let now = Unix.gettimeofday () in
  let allowed =
    t.dumps < t.max_dumps && now -. t.last_at >= t.min_interval
  in
  if allowed then begin
    t.dumps <- t.dumps + 1;
    t.last_at <- now
  end
  else t.suppressed <- t.suppressed + 1;
  let seq = t.dumps in
  Mutex.unlock t.lock;
  if not allowed then None
  else begin
    (* Render and write outside the lock: dumps are rare (cooldown) and
       rendering walks shared-but-stable state. *)
    let body = render ~trigger ?census ?extra () in
    mkdir_p t.dir;
    let path =
      Filename.concat t.dir
        (Printf.sprintf "flight-%.0f-%d-%s.json" (now *. 1000.) seq
           (trigger_name trigger))
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc body);
    Mutex.lock t.lock;
    t.last_path <- Some path;
    Mutex.unlock t.lock;
    Some path
  end
