(** Rendering of [Verlib.Obs] reports: aligned tables, JSON and a
    compact one-liner for benchmark trails.  Histograms whose name ends
    in [_cycles] additionally get microsecond conversions (via
    [Verlib.Hwclock.cycles_per_us]). *)

val pretty_print : ?out:out_channel -> Verlib.Obs.report -> unit
(** Counter and histogram tables in the benchmark-table style. *)

val to_json : ?extra:(string * string) list -> Verlib.Obs.report -> string
(** One JSON object:
    [{"clock_source":"rdtsc"|"monotonic", ... extra ...,
    "counters":{..}, "histograms":{..}, "gauges":{..}}] — the leading
    [clock_source] ([Verlib.Hwclock.source]) says which clock stamped
    every tick figure.  [extra] values must already be rendered JSON
    (numbers, quoted strings); keys are escaped. *)

val pretty_census : ?out:out_channel -> Verlib.Chainscan.census -> unit
(** Chain-census table plus one line per retained violation detail. *)

val json_of_census : Verlib.Chainscan.census -> string
(** The census as one flat JSON object (counts, derived percentiles,
    shortcut ratio, violation count) — suitable as a [to_json] [extra]
    value or a standalone block. *)

val one_line : Verlib.Obs.report -> string
(** Non-zero counters plus chain-length / snapshot-dwell / lock-retry
    distributions (and the bounded-walk saturation gauge when non-zero)
    on a single line. *)

(** {1 Prometheus text exposition}

    The live metrics plane: the [METRICS] wire command and the
    [--metrics-interval] background census in [verlib_serve] both speak
    the Prometheus text format (0.0.4) rendered by {!prometheus};
    {!parse_prometheus} is the validating line-format parser the test
    suite and [verlib_loadgen] share. *)

val prometheus : ?extra:(string * int) list -> unit -> string
(** Render every [Verlib.Stats] counter, every registered
    [Flock.Telemetry] histogram (cumulative [le] buckets, [_sum],
    [_count]) and every gauge as one exposition.  Metric names are
    sanitized and prefixed [verlib_]; tick-valued histograms ([_cycles])
    are converted to µs and renamed [..._us].  [extra] values are
    appended as gauges (the server adds its connection/shed/queue
    figures this way).  Quiescence contract as [Verlib.Obs.capture]. *)

type prom_sample = {
  m_name : string;
  m_labels : (string * string) list;
  m_value : float;
}

val parse_prometheus : string -> (prom_sample list, string) result
(** Strict line-format parse of a text exposition: comments and blank
    lines skipped, every sample line must be
    [name\{label="v",...\} value] (label values understand the
    backslash escapes for backslash, double-quote and newline);
    histogram series must have non-decreasing
    cumulative buckets that agree with their [_count]; NaN sample
    values are rejected, as is any negative sample whose name a
    [# TYPE ... counter] comment declared to be a counter.  Returns the
    samples in file order, or the first offending line. *)

val prom_find : prom_sample list -> string -> float option
(** Value of the first label-free sample with this exact name. *)
