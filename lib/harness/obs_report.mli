(** Rendering of [Verlib.Obs] reports: aligned tables, JSON and a
    compact one-liner for benchmark trails.  Histograms whose name ends
    in [_cycles] additionally get microsecond conversions (via
    [Verlib.Hwclock.cycles_per_us]). *)

val pretty_print : ?out:out_channel -> Verlib.Obs.report -> unit
(** Counter and histogram tables in the benchmark-table style. *)

val to_json : ?extra:(string * string) list -> Verlib.Obs.report -> string
(** One JSON object:
    [{... extra ..., "counters":{..}, "histograms":{..}, "gauges":{..}}].
    [extra] values must already be rendered JSON (numbers, quoted
    strings); keys are escaped. *)

val pretty_census : ?out:out_channel -> Verlib.Chainscan.census -> unit
(** Chain-census table plus one line per retained violation detail. *)

val json_of_census : Verlib.Chainscan.census -> string
(** The census as one flat JSON object (counts, derived percentiles,
    shortcut ratio, violation count) — suitable as a [to_json] [extra]
    value or a standalone block. *)

val one_line : Verlib.Obs.report -> string
(** Non-zero counters plus chain-length / snapshot-dwell / lock-retry
    distributions on a single line. *)
