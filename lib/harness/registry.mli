(** Name-indexed access to the concurrent maps, for CLI tools and the
    benchmark driver. *)

val all : (string * (module Dstruct.Map_intf.MAP)) list

val find : string -> (module Dstruct.Map_intf.MAP)
(** Resolve a structure spec: a bare name from {!names}, or
    [sharded-<base>:<n>] for [<base>] partitioned over [n] shards
    ({!Dstruct.Sharded}), e.g. [sharded-btree:4].  Raises [Failure] with
    a helpful message on unknown names or malformed specs. *)

val names : string list

val spec_help : string
(** Human-readable list of accepted specs, for CLI [--help] text. *)
