let all : (string * (module Dstruct.Map_intf.MAP)) list =
  [
    ("dlist", (module Dstruct.Dlist));
    ("hashtable", (module Dstruct.Hashtable));
    ("btree", (module Dstruct.Btree));
    ("arttree", (module Dstruct.Arttree));
    ("skiplist", (module Dstruct.Skiplist));
    ("vbst", (module Dstruct.Vbst));
    ("coarse", (module Dstruct.Coarse_map));
  ]

let names = List.map fst all

let spec_help =
  Printf.sprintf "%s, or sharded-<base>:<n> (e.g. sharded-btree:4)"
    (String.concat ", " names)

let unknown spec =
  failwith (Printf.sprintf "unknown structure %S (expected one of: %s)" spec spec_help)

(* [sharded-<base>:<n>]: partition <base> over <n> sub-maps
   ([Dstruct.Sharded]).  Parsed here so every CLI that mounts a structure
   by name (verlib_run, verlib_serve, verlib_soak) gets sharding for
   free. *)
let parse_sharded spec =
  match String.index_opt spec ':' with
  | None ->
      failwith
        (Printf.sprintf "bad sharded spec %S (expected sharded-<base>:<n>)" spec)
  | Some i ->
      let base = String.sub spec 8 (i - 8) in
      let count = String.sub spec (i + 1) (String.length spec - i - 1) in
      (match int_of_string_opt count with
       | Some n when n >= 1 -> (base, n)
       | Some _ | None ->
           failwith
             (Printf.sprintf "bad shard count %S in %S (expected an int >= 1)"
                count spec))

let find spec =
  match List.assoc_opt spec all with
  | Some m -> m
  | None ->
      if String.length spec > 8 && String.sub spec 0 8 = "sharded-" then begin
        let base, shards = parse_sharded spec in
        match List.assoc_opt base all with
        | Some m -> Dstruct.Sharded.make ~shards m
        | None -> unknown base
      end
      else unknown spec
