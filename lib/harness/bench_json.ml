(* Machine-readable benchmark results (BENCH_PR7.json): a flat list of
   per-figure rows carrying throughput, latency percentiles, the chain
   census and space accounting, plus a comparator for regression gating.

   The schema is deliberately flat — one object per (figure, label) cell
   — so diffs between two runs reduce to keyed row lookup, and the file
   stays readable in a terminal.  Parsing goes through [Jsonlite] (the
   repo's strict no-dependency JSON), so the committed baseline is also
   a parser round-trip fixture. *)

let schema_version = 1

type row = {
  r_figure : string;  (* section id: fig8a, fig9, fig12, ... *)
  r_label : string;  (* cell id within the section, unique per figure *)
  r_mops : float;  (* 0. for space-only rows *)
  r_p50_us : float;  (* 0. when latency sampling was off *)
  r_p99_us : float;
  r_chain_max : int;
  r_chain_p99 : int;
  r_indirect_links : int;
  r_reclaimable : int;
  r_violations : int;
  r_space_bytes : float;  (* bytes per entry; 0. when not measured *)
  r_retries : int;  (* client wire retries absorbed by the run (serve rows) *)
  r_shed : int;  (* -BUSY sheds observed by the run (serve rows) *)
  r_giveups : int;  (* operations abandoned after retry exhaustion *)
  r_walk_saturation : int;  (* bounded chain walks that hit the cap (PR 5) *)
  r_phases : (string * float) list;
      (* mean per-request phase decomposition in µs (serve rows with
         tracing on); empty = not measured *)
  r_alloc_bytes_per_op : float;
      (* GC-allocated bytes per completed operation (minor + direct
         major words, per-worker deltas); 0. = not measured *)
  r_gc_minor : int;  (* minor collections during the measured run *)
  r_gc_major : int;  (* major collections during the measured run *)
}

type doc = {
  d_schema : int;
  d_label : string;  (* free-form run description *)
  d_created : string;  (* YYYY-MM-DD, informational only *)
  d_scale : string;  (* ci | quick | full *)
  d_rows : row list;
}

let make_doc ?(label = "") ?(scale = "quick") rows =
  let created =
    let t = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02d" (t.Unix.tm_year + 1900) (t.Unix.tm_mon + 1)
      t.Unix.tm_mday
  in
  { d_schema = schema_version; d_label = label; d_created = created;
    d_scale = scale; d_rows = rows }

(* Merge fresh rows into an existing doc: a row with the same
   (figure, label) replaces the old one in place, new rows append at the
   end — how the served-throughput figures join the committed benchmark
   baseline without rewriting it. *)
let merge_rows d rows =
  let replaced =
    List.map
      (fun old ->
        match
          List.find_opt
            (fun r -> r.r_figure = old.r_figure && r.r_label = old.r_label)
            rows
        with
        | Some fresh -> fresh
        | None -> old)
      d.d_rows
  in
  let fresh_only =
    List.filter
      (fun r ->
        not
          (List.exists
             (fun old -> old.r_figure = r.r_figure && old.r_label = r.r_label)
             d.d_rows))
      rows
  in
  { d with d_rows = replaced @ fresh_only }

(* --- rendering ---------------------------------------------------------- *)

let json_of_row r =
  (* Post-baseline fields are emitted only when non-zero / non-empty:
     the committed baseline predates them and stays byte-comparable for
     fault-free untraced runs. *)
  let resilience =
    if r.r_retries = 0 && r.r_shed = 0 then ""
    else Printf.sprintf ",\"retries\":%d,\"shed\":%d" r.r_retries r.r_shed
  in
  let diag =
    (if r.r_giveups = 0 then "" else Printf.sprintf ",\"giveups\":%d" r.r_giveups)
    ^
    if r.r_walk_saturation = 0 then ""
    else Printf.sprintf ",\"walk_saturation\":%d" r.r_walk_saturation
  in
  let phases =
    if r.r_phases = [] then ""
    else
      Printf.sprintf ",\"phases\":{%s}"
        (String.concat ","
           (List.map
              (fun (name, us) ->
                Printf.sprintf "\"%s\":%.3f" (Jsonlite.escape name) us)
              r.r_phases))
  in
  let gc =
    (if r.r_alloc_bytes_per_op = 0. then ""
     else Printf.sprintf ",\"alloc_bytes_per_op\":%.1f" r.r_alloc_bytes_per_op)
    ^ (if r.r_gc_minor = 0 then ""
       else Printf.sprintf ",\"gc_minor\":%d" r.r_gc_minor)
    ^
    if r.r_gc_major = 0 then ""
    else Printf.sprintf ",\"gc_major\":%d" r.r_gc_major
  in
  Printf.sprintf
    "{\"figure\":\"%s\",\"label\":\"%s\",\"mops\":%.6f,\"p50_us\":%.3f,\
     \"p99_us\":%.3f,\"chain_max\":%d,\"chain_p99\":%d,\"indirect_links\":%d,\
     \"reclaimable\":%d,\"violations\":%d,\"space_bytes\":%.1f%s%s%s%s}"
    (Jsonlite.escape r.r_figure) (Jsonlite.escape r.r_label) r.r_mops r.r_p50_us
    r.r_p99_us r.r_chain_max r.r_chain_p99 r.r_indirect_links r.r_reclaimable
    r.r_violations r.r_space_bytes resilience diag phases gc

let to_json d =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%d,\"label\":\"%s\",\"created\":\"%s\",\"scale\":\"%s\",\"rows\":[\n"
       d.d_schema (Jsonlite.escape d.d_label) (Jsonlite.escape d.d_created)
       (Jsonlite.escape d.d_scale));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (json_of_row r))
    d.d_rows;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_file path d =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json d))

(* --- parsing ------------------------------------------------------------ *)

let ( let* ) = Option.bind

let ( =<< ) f o = Option.bind o f

let num name j = Jsonlite.to_number =<< Jsonlite.member name j

let str name j = Jsonlite.to_string =<< Jsonlite.member name j

let row_of_json j =
  let* figure = str "figure" j in
  let* label = str "label" j in
  let* mops = num "mops" j in
  let* p50 = num "p50_us" j in
  let* p99 = num "p99_us" j in
  let* chain_max = num "chain_max" j in
  let* chain_p99 = num "chain_p99" j in
  let* indirect = num "indirect_links" j in
  let* reclaimable = num "reclaimable" j in
  let* violations = num "violations" j in
  let* space = num "space_bytes" j in
  (* Optional (absent in pre-resilience baselines): default 0. *)
  let opt_int name = match num name j with Some v -> int_of_float v | None -> 0 in
  let retries = opt_int "retries" in
  let shed = opt_int "shed" in
  let giveups = opt_int "giveups" in
  let walk_saturation = opt_int "walk_saturation" in
  let alloc_bytes_per_op =
    match num "alloc_bytes_per_op" j with Some v -> v | None -> 0.
  in
  let gc_minor = opt_int "gc_minor" in
  let gc_major = opt_int "gc_major" in
  let phases =
    match Jsonlite.member "phases" j with
    | Some (Jsonlite.Obj members) ->
        List.filter_map
          (fun (k, v) ->
            match Jsonlite.to_number v with
            | Some f -> Some (k, f)
            | None -> None)
          members
    | Some _ | None -> []
  in
  Some
    {
      r_figure = figure;
      r_label = label;
      r_mops = mops;
      r_p50_us = p50;
      r_p99_us = p99;
      r_chain_max = int_of_float chain_max;
      r_chain_p99 = int_of_float chain_p99;
      r_indirect_links = int_of_float indirect;
      r_reclaimable = int_of_float reclaimable;
      r_violations = int_of_float violations;
      r_space_bytes = space;
      r_retries = retries;
      r_shed = shed;
      r_giveups = giveups;
      r_walk_saturation = walk_saturation;
      r_phases = phases;
      r_alloc_bytes_per_op = alloc_bytes_per_op;
      r_gc_minor = gc_minor;
      r_gc_major = gc_major;
    }

let of_json j =
  let* schema = num "schema" j in
  let* label = str "label" j in
  let* created = str "created" j in
  let* scale = str "scale" j in
  let* rows = Jsonlite.to_list =<< Jsonlite.member "rows" j in
  let* rows =
    List.fold_right
      (fun j acc -> let* acc = acc in let* r = row_of_json j in Some (r :: acc))
      rows (Some [])
  in
  Some
    {
      d_schema = int_of_float schema;
      d_label = label;
      d_created = created;
      d_scale = scale;
      d_rows = rows;
    }

let of_string s =
  match Jsonlite.parse_result s with
  | Error e -> Error e
  | Ok j -> (
      match of_json j with
      | Some d when d.d_schema = schema_version -> Ok d
      | Some d ->
          Error (Printf.sprintf "unsupported schema version %d" d.d_schema)
      | None -> Error "missing or ill-typed BENCH fields")

let read_file path =
  match Jsonlite.parse_file path with
  | Error e -> Error e
  | Ok j -> (
      match of_json j with
      | Some d when d.d_schema = schema_version -> Ok d
      | Some d ->
          Error (Printf.sprintf "%s: unsupported schema version %d" path d.d_schema)
      | None -> Error (path ^ ": missing or ill-typed BENCH fields"))

(* --- comparison --------------------------------------------------------- *)

type issue =
  | Missing_row of { figure : string; label : string }
  | Regression of {
      figure : string;
      label : string;
      metric : string;
      base : float;
      cur : float;
      limit : float;
    }
  | Violations of { figure : string; label : string; count : int }

let describe_issue = function
  | Missing_row { figure; label } ->
      Printf.sprintf "MISSING  %s/%s: row present in baseline, absent in current"
        figure label
  | Regression { figure; label; metric; base; cur; limit } ->
      Printf.sprintf "REGRESSION  %s/%s %s: %.3f -> %.3f (limit %.3f)" figure
        label metric base cur limit
  | Violations { figure; label; count } ->
      Printf.sprintf "VIOLATIONS  %s/%s: census reported %d chain-invariant violation(s)"
        figure label count

let find d ~figure ~label =
  List.find_opt (fun r -> r.r_figure = figure && r.r_label = label) d.d_rows

(* Regression policy, deliberately one-sided and tolerant: throughput may
   drop by at most [threshold] percent, space may grow by at most
   [threshold] percent, and census violations fail outright at any
   threshold.  Tiny absolute values are exempt (noise floor) — a
   one-core container cannot hold 5% tolerances.

   Latency percentiles are informational unless [lat_threshold] is
   given: on an oversubscribed core the p99 of a sub-second run is
   dominated by domain preemption (milliseconds of scheduler stall on
   top of microsecond ops) and power-of-two histogram buckets, so
   run-to-run "regressions" of 2-30x are routine noise there. *)
let diff ?(threshold = 50.) ?lat_threshold (base : doc) (cur : doc) =
  let frac = threshold /. 100. in
  let issues = ref [] in
  let push i = issues := i :: !issues in
  List.iter
    (fun b ->
      match find cur ~figure:b.r_figure ~label:b.r_label with
      | None -> push (Missing_row { figure = b.r_figure; label = b.r_label })
      | Some c ->
          let regression metric base_v cur_v limit =
            push
              (Regression
                 { figure = b.r_figure; label = b.r_label; metric;
                   base = base_v; cur = cur_v; limit })
          in
          (* throughput: lower is worse *)
          if b.r_mops > 0.01 then begin
            let floor_v = b.r_mops *. (1. -. frac) in
            if c.r_mops < floor_v then regression "mops" b.r_mops c.r_mops floor_v
          end;
          (* p99 latency: higher is worse; gated only on request *)
          (match lat_threshold with
           | Some t when b.r_p99_us > 1. && c.r_p99_us > 0. ->
               let cap = b.r_p99_us *. (1. +. (t /. 100.)) in
               if c.r_p99_us > cap then
                 regression "p99_us" b.r_p99_us c.r_p99_us cap
           | Some _ | None -> ());
          (* space: higher is worse *)
          if b.r_space_bytes > 1. && c.r_space_bytes > 0. then begin
            let cap = b.r_space_bytes *. (1. +. frac) in
            if c.r_space_bytes > cap then
              regression "space_bytes" b.r_space_bytes c.r_space_bytes cap
          end;
          (* allocation rate: higher is worse; gated only when both
             runs measured it and it clears the noise floor (a few
             words per op) *)
          if b.r_alloc_bytes_per_op > 16. && c.r_alloc_bytes_per_op > 0. then begin
            let cap = b.r_alloc_bytes_per_op *. (1. +. frac) in
            if c.r_alloc_bytes_per_op > cap then
              regression "alloc_bytes_per_op" b.r_alloc_bytes_per_op
                c.r_alloc_bytes_per_op cap
          end;
          if c.r_violations > 0 then
            push
              (Violations
                 { figure = c.r_figure; label = c.r_label; count = c.r_violations }))
    base.d_rows;
  List.rev !issues
